package dsisim

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5). Each BenchmarkFig*/BenchmarkTable* runs the full
// experiment grid at paper scale (32 simulated processors) and reports the
// headline series as custom metrics, so `go test -bench=.` reproduces the
// numbers EXPERIMENTS.md records. The Benchmark*Micro entries measure
// simulator throughput itself.
//
// One full iteration of a paper artifact simulates dozens of machine
// configurations; expect minutes, not microseconds.

import (
	"fmt"
	"testing"

	"dsisim/internal/cache"
	"dsisim/internal/event"
	"dsisim/internal/experiments"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
	"dsisim/internal/workload"
)

// paperOpts is the evaluation configuration: the paper's 32 processors.
func paperOpts() experiments.Options { return experiments.Options{Processors: 32} }

// BenchmarkFig3 regenerates Figure 3 (DSI under sequential consistency,
// both cache classes, 100-cycle network). Metrics: execution time of W, S,
// and V normalized to SC on the large cache class.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small, large, err := experiments.Fig3Matrices(paperOpts())
		if err != nil {
			b.Fatal(err)
		}
		_ = small
		for _, w := range workload.PaperNames() {
			for _, l := range []experiments.Label{experiments.W, experiments.S, experiments.V} {
				b.ReportMetric(large.Normalized(w, l, experiments.SC), w+"-"+string(l))
			}
		}
	}
}

// BenchmarkFig4 regenerates Figure 4 (1000-cycle network). Metrics: V
// normalized to SC on both cache classes.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small, large, err := experiments.Fig4Matrices(paperOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range workload.PaperNames() {
			b.ReportMetric(small.Normalized(w, experiments.V, experiments.SC), w+"-V-small")
			b.ReportMetric(large.Normalized(w, experiments.V, experiments.SC), w+"-V-large")
		}
	}
}

// BenchmarkFig5 regenerates Figure 5 (FIFO vs flush-at-sync). Metrics: the
// two mechanisms normalized to SC.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := experiments.Fig5Matrix(paperOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range workload.PaperNames() {
			b.ReportMetric(m.Normalized(w, experiments.VFIFO, experiments.SC), w+"-fifo")
			b.ReportMetric(m.Normalized(w, experiments.V, experiments.SC), w+"-flush")
		}
	}
}

// BenchmarkTable2 regenerates Table 2 / Figure 6 (weakly consistent DSI).
// Metrics: W+DSI normalized to W per configuration.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := experiments.Table2Matrices(paperOpts())
		if err != nil {
			b.Fatal(err)
		}
		for cell, m := range ms {
			for _, w := range workload.PaperNames() {
				name := fmt.Sprintf("%s-%v-%dcyc", w, cell.Class, cell.Latency)
				b.ReportMetric(m.Normalized(w, experiments.WDSI, experiments.W), name)
			}
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (message reduction). Metrics:
// fractional reduction of total and invalidation messages, large cache.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small, large, err := experiments.Table3Matrices(paperOpts())
		if err != nil {
			b.Fatal(err)
		}
		_ = small
		for _, w := range workload.PaperNames() {
			total, inval := experiments.MessageReduction(large, w)
			b.ReportMetric(total, w+"-total")
			b.ReportMetric(inval, w+"-inval")
		}
	}
}

// --- ablation benchmarks -----------------------------------------------------

// BenchmarkAblationFIFOCapacity sweeps the FIFO size on sparse: the paper's
// Figure 5 pathology (early self-invalidation) grows as capacity shrinks.
// Metrics: execution time normalized to the flush-at-sync mechanism, and
// forced displacements.
func BenchmarkAblationFIFOCapacity(b *testing.B) {
	flush, err := experiments.RunOne("sparse", experiments.V,
		experiments.Options{Processors: 32, Class: experiments.LargeCache})
	if err != nil {
		b.Fatal(err)
	}
	for _, capacity := range []int{4, 16, 64, 256} {
		capacity := capacity
		b.Run(fmt.Sprintf("entries=%d", capacity), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFIFO("sparse", capacity,
					experiments.Options{Processors: 32, Class: experiments.LargeCache})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.ExecTime)/float64(flush.ExecTime), "vs-flush")
				b.ReportMetric(float64(res.FIFODisplacements), "displacements")
			}
		})
	}
}

// BenchmarkAblationIdentifiers compares the identification schemes — never
// (base), states, versions, and the mark-everything bound — on the
// migratory microbenchmark where exclusive-block marking matters most.
func BenchmarkAblationIdentifiers(b *testing.B) {
	for _, id := range []string{"never", "states", "versions", "always"} {
		id := id
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunIdentifier("migratory", id,
					experiments.Options{Processors: 32, Class: experiments.LargeCache})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.ExecTime), "simcycles")
				b.ReportMetric(float64(res.Messages.Invalidation()), "inval-msgs")
			}
		})
	}
}

// BenchmarkAblationUpgradeExemption measures the §4.1 special case: marking
// lone upgrades for self-invalidation degrades SC performance.
func BenchmarkAblationUpgradeExemption(b *testing.B) {
	for _, exempt := range []bool{true, false} {
		exempt := exempt
		b.Run(fmt.Sprintf("exemption=%v", exempt), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunUpgradeExemption("tomcatv", exempt,
					experiments.Options{Processors: 32, Class: experiments.LargeCache})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.ExecTime), "simcycles")
			}
		})
	}
}

// BenchmarkAblationMigratory compares the migratory-sharing baseline and
// its composition with DSI against SC and V on the migratory pattern.
func BenchmarkAblationMigratory(b *testing.B) {
	configs := []struct {
		name string
		run  func() (Result, error)
	}{
		{"sc", func() (Result, error) {
			return experiments.RunIdentifier("migratory", "never", experiments.Options{Processors: 32, Class: experiments.LargeCache})
		}},
		{"dsi-v", func() (Result, error) {
			return experiments.RunIdentifier("migratory", "versions", experiments.Options{Processors: 32, Class: experiments.LargeCache})
		}},
		{"migratory", func() (Result, error) {
			return experiments.RunMigratory("migratory", false, experiments.Options{Processors: 32, Class: experiments.LargeCache})
		}},
		{"migratory+dsi", func() (Result, error) {
			return experiments.RunMigratory("migratory", true, experiments.Options{Processors: 32, Class: experiments.LargeCache})
		}},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := cfg.run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.ExecTime), "simcycles")
				b.ReportMetric(float64(res.Messages.Total()), "messages")
			}
		})
	}
}

// BenchmarkAblationLimitedDirectory measures how DSI relieves pointer
// pressure in a limited-pointer directory: overflows per pointer budget,
// with and without self-invalidation, on the broadcast-heavy sparse.
func BenchmarkAblationLimitedDirectory(b *testing.B) {
	for _, pointers := range []int{2, 4, 8} {
		for _, dsi := range []bool{false, true} {
			pointers, dsi := pointers, dsi
			name := fmt.Sprintf("pointers=%d/dsi=%v", pointers, dsi)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := experiments.RunLimitedDir("sparse", pointers, dsi,
						experiments.Options{Processors: 32, Class: experiments.LargeCache})
					if err != nil {
						b.Fatal(err)
					}
					var overflows int64
					for _, ds := range res.Dir {
						overflows += ds.PointerOverflows
					}
					b.ReportMetric(float64(overflows), "overflows")
					b.ReportMetric(float64(res.ExecTime), "simcycles")
				}
			})
		}
	}
}

// --- simulator micro-benchmarks ----------------------------------------------

// The three benchstat-ready kernel benchmarks below (BenchmarkEventQueue,
// BenchmarkNetworkDelivery, BenchmarkRunOne) report allocations so that a
//
//	go test -run=NONE -bench='EventQueue$|NetworkDelivery$|RunOne$' -count=10
//
// pair of runs before and after a kernel change benchstats cleanly. README.md
// §Performance records the current numbers.

// BenchmarkEventQueue measures the typed scheduling path: one pending event
// rearming itself through AfterCall. Steady state allocates nothing; heap
// growth is amortized away by the rearm pattern.
func BenchmarkEventQueue(b *testing.B) {
	b.ReportAllocs()
	var q event.Queue
	n := 0
	var rearm event.Action
	rearm = func(arg any) {
		n++
		if n < b.N {
			q.AfterCall(1, rearm, arg)
		}
	}
	q.AfterCall(1, rearm, &n)
	b.ResetTimer()
	q.Run()
}

// BenchmarkNetworkDelivery measures one message per iteration through the
// pooled delivery path: Send, deliver, recycle.
func BenchmarkNetworkDelivery(b *testing.B) {
	b.ReportAllocs()
	q := &event.Queue{}
	net := netsim.New(q, netsim.Config{Nodes: 4, Latency: 100})
	for i := 0; i < 4; i++ {
		net.SetHandler(i, func(netsim.Message) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(netsim.Message{Kind: netsim.GetS, Src: 0, Dst: 1, Addr: 32})
		q.Run()
	}
}

// BenchmarkRunOne measures one full test-scale simulation per iteration —
// the end-to-end number the ISSUE's ≥2× allocs/op target is judged on, and
// the measurement cmd/dsibench -benchjson records in BENCH_kernel.json.
func BenchmarkRunOne(b *testing.B) {
	b.ReportAllocs()
	cfg := Config{Workload: "em3d", Scale: ScaleTest, Protocol: V, Processors: 8}
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events = res.Kernel.Events
	}
	b.ReportMetric(float64(events), "events/op")
}

// BenchmarkEventQueueMicro measures raw event throughput.
func BenchmarkEventQueueMicro(b *testing.B) {
	var q event.Queue
	n := 0
	var rearm func()
	rearm = func() {
		n++
		if n < b.N {
			q.After(1, rearm)
		}
	}
	q.After(1, rearm)
	b.ResetTimer()
	q.Run()
}

// BenchmarkCacheLookupMicro measures the cache array's hit path.
func BenchmarkCacheLookupMicro(b *testing.B) {
	c := cache.New(cache.Config{SizeBytes: 256 * 1024, Assoc: 4})
	for i := 0; i < 1024; i++ {
		c.Install(mem.Addr(i*mem.BlockSize), cache.Fill{State: cache.Shared})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(mem.Addr((i % 1024) * mem.BlockSize))
	}
}

// BenchmarkNetworkMicro measures message scheduling throughput.
func BenchmarkNetworkMicro(b *testing.B) {
	q := &event.Queue{}
	net := netsim.New(q, netsim.Config{Nodes: 4, Latency: 100})
	for i := 0; i < 4; i++ {
		net.SetHandler(i, func(netsim.Message) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.At(q.Now(), func() {
			net.Send(netsim.Message{Kind: netsim.GetS, Src: 0, Dst: 1, Addr: 32})
		})
		q.Run()
	}
}

// BenchmarkSimulatorThroughput measures simulated work per wall second: one
// em3d run at paper scale per iteration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Workload: "em3d", Protocol: V, Processors: 32})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalTime), "simcycles")
	}
}

// campaignMix builds the zipf-popular request stream that
// BenchmarkCampaignThroughput and TestCampaignCacheSpeedup share: requests
// spread over distinct cells with harmonic (zipf, s=1) popularity — cell k
// is asked for 1/(k+1) as often as cell 0. That is the shape of a campaign
// revisiting its hot configurations: a few cells dominate the stream, the
// tail stays unique. Cells differ only by seed, so every request is a full
// simulation when uncached.
func campaignMix(cells, requests int) []Config {
	h := 0.0
	for k := 0; k < cells; k++ {
		h += 1 / float64(k+1)
	}
	var mix []Config
	for k := 0; k < cells; k++ {
		n := int(float64(requests) / (h * float64(k+1)))
		if n < 1 {
			n = 1
		}
		cfg := Config{Workload: "zipf", Protocol: V, Processors: 8, Scale: ScaleTest, Seed: uint64(k)<<1 | 1}
		for i := 0; i < n; i++ {
			mix = append(mix, cfg)
		}
	}
	return mix
}

// BenchmarkCampaignThroughput measures campaign request throughput over the
// zipf-popular mix, with and without the content-addressed result cache.
// The cached variant holds one cache across all iterations — repeated cells
// are free; the uncached variant simulates every request.
func BenchmarkCampaignThroughput(b *testing.B) {
	mix := campaignMix(6, 90)
	run := func(b *testing.B, cache *ResultCache) {
		for i := 0; i < b.N; i++ {
			for _, cfg := range mix {
				cfg.Cache = cache
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(mix)*b.N)/b.Elapsed().Seconds(), "requests/s")
	}
	b.Run("uncached", func(b *testing.B) { run(b, nil) })
	b.Run("cached", func(b *testing.B) { run(b, NewResultCache(256<<20)) })
}
