package dsisim

// Equivalence gates for the parallel delivery engine (Config.Workers >= 2):
//
//   - Worker-count invariance: for every cell of the fault matrix (plan x
//     protocol x workload), Workers=2 and Workers=8 must agree on every
//     observable Result field. The engine partitions by node, never by
//     worker, so the worker count may only change wall-clock concurrency.
//   - Run-to-run determinism: repeating a Workers=8 cell must be
//     bit-identical — the window schedule and merge order are functions of
//     the simulation, not of goroutine scheduling. CI runs this file under
//     -race, which turns any scheduling leak into a hard failure.
//   - Fault-free parity: without faults the parallel engine must agree with
//     the serial engine on the paper's observables (execution time,
//     breakdown, message counts) for the golden-pinned cells. With faults
//     the engines legitimately diverge (per-node fault streams vs one
//     global send-ordered stream; see DESIGN.md §5), so faulted cells
//     assert cross-worker identity only.
//
// Every cell also exercises the workloads' own kernel Asserts and the
// machine's coherence audit — Run fails if either trips — so these tests
// double as a correctness gate for the partitioned protocol stack.

import (
	"reflect"
	"testing"
)

// parallelWorkerCounts are the engine configurations pinned equal.
var parallelWorkerCounts = []int{2, 8}

func runParallelCell(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Workers=%d run failed: %v", cfg.Workers, err)
	}
	return res
}

// TestParallelWorkersEquivalentOverFaultMatrix pins Workers=2 == Workers=8
// and run-to-run determinism for every fault-matrix cell.
func TestParallelWorkersEquivalentOverFaultMatrix(t *testing.T) {
	for _, plan := range faultPlans {
		for _, protocol := range []Protocol{SC, V, WDSI} {
			for _, wl := range []string{"em3d", "ocean"} {
				plan, protocol, wl := plan, protocol, wl
				t.Run(plan.name+"/"+string(protocol)+"/"+wl, func(t *testing.T) {
					t.Parallel()
					cell := func(workers int) Result {
						fc := plan.cfg
						return runParallelCell(t, Config{
							Workload:   wl,
							Scale:      ScaleTest,
							Protocol:   protocol,
							Processors: 8,
							Workers:    workers,
							Faults:     &fc,
						})
					}
					w2, w8 := cell(2), cell(8)
					if w2.Faults.Decisions == 0 {
						t.Fatal("fault plan made no decisions; the cell tested nothing")
					}
					if !reflect.DeepEqual(w2, w8) {
						t.Errorf("Workers=2 and Workers=8 diverged:\nw2: %+v\nw8: %+v", w2, w8)
					}
					again := cell(8)
					if !reflect.DeepEqual(w8, again) {
						t.Errorf("same-seed Workers=8 runs diverged:\nfirst:  %+v\nsecond: %+v", w8, again)
					}
				})
			}
		}
	}
}

// TestParallelTracksSerialObservablesFaultFree pins the fault-free parallel
// engine to the serial engine on the paper's observables for the
// golden-pinned protocol cells, within a small tolerance. Bit-exact parity
// with Workers=1 is provably out of reach — when two nodes act in the same
// simulated cycle, the serial engine orders them by one global sequence
// counter whose interleaving no per-partition numbering can reproduce — but
// the physics must track closely: barrier counts exactly, times and traffic
// within a fraction of a percent. Kernel-internal counters (event counts,
// queue peaks, pool hits) legitimately differ and are excluded.
func TestParallelTracksSerialObservablesFaultFree(t *testing.T) {
	// within reports |a-b| <= max(abs, rel*|b|): tie-order noise allowance.
	within := func(a, b, abs int64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		if rel := b / 200; rel > abs { // 0.5%
			abs = rel
		}
		return d <= abs
	}
	for _, protocol := range []Protocol{SC, V, WDSI} {
		for _, wl := range []string{"em3d", "ocean"} {
			protocol, wl := protocol, wl
			t.Run(string(protocol)+"/"+wl, func(t *testing.T) {
				t.Parallel()
				base := Config{Workload: wl, Scale: ScaleTest, Protocol: protocol, Processors: 8}
				serial := runParallelCell(t, base)
				par := base
				par.Workers = 8
				p := runParallelCell(t, par)
				if !within(int64(p.ExecTime), int64(serial.ExecTime), 16) {
					t.Errorf("ExecTime: parallel %d, serial %d", p.ExecTime, serial.ExecTime)
				}
				if !within(int64(p.TotalTime), int64(serial.TotalTime), 16) {
					t.Errorf("TotalTime: parallel %d, serial %d", p.TotalTime, serial.TotalTime)
				}
				if !within(p.Messages.Total(), serial.Messages.Total(), 8) {
					t.Errorf("Messages: parallel %d, serial %d", p.Messages.Total(), serial.Messages.Total())
				}
				if !within(p.Messages.Invalidation(), serial.Messages.Invalidation(), 8) {
					t.Errorf("Invalidations: parallel %d, serial %d",
						p.Messages.Invalidation(), serial.Messages.Invalidation())
				}
				var pc, sc int64
				for c := range p.Breakdown.Cycles {
					pc += p.Breakdown.Cycles[c]
					sc += serial.Breakdown.Cycles[c]
				}
				if !within(pc, sc, 64) {
					t.Errorf("Breakdown cycle total: parallel %d, serial %d", pc, sc)
				}
				if p.Barriers != serial.Barriers {
					t.Errorf("Barriers: parallel %d, serial %d", p.Barriers, serial.Barriers)
				}
			})
		}
	}
}

// TestParallelSinkForcesSerial pins the observability guardrail: a run with
// a coherence sink attached ignores Workers and runs the serial engine, so
// the recorded stream stays the single globally ordered stream the sink's
// consumers (and its docs) promise.
func TestParallelSinkForcesSerial(t *testing.T) {
	sink := NewCoherenceSink()
	res, err := Run(Config{
		Workload: "em3d", Scale: ScaleTest, Protocol: V, Processors: 8,
		Workers: 8, Sink: sink,
	})
	if err != nil {
		t.Fatalf("sink run failed: %v", err)
	}
	if res.Blocks == nil {
		t.Fatal("sink attached but no block metrics derived (parallel engine ran?)")
	}
	plain, err := Run(Config{Workload: "em3d", Scale: ScaleTest, Protocol: V, Processors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime != plain.ExecTime {
		t.Errorf("sink+Workers run diverged from serial: %d vs %d", res.ExecTime, plain.ExecTime)
	}
}
