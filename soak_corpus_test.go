package dsisim

// The soak failure corpus is a one-way ratchet: every spec under
// testdata/soak-corpus/ is a minimized campaign cell that once demonstrated
// a protocol failure (see the corpus README and docs/FAULTS.md §6), and on
// the honest tree every one of them must replay clean, forever. A failure
// here means a pinned bug has come back.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsisim/internal/soak"
)

const soakCorpusDir = "testdata/soak-corpus"

func TestSoakCorpusReplaysClean(t *testing.T) {
	ents, err := os.ReadDir(soakCorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	specs := 0
	for _, ent := range ents {
		if !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		specs++
		path := filepath.Join(soakCorpusDir, ent.Name())
		t.Run(ent.Name(), func(t *testing.T) {
			spec, err := soak.LoadSpec(path)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Err == "" {
				t.Errorf("%s records no pinned failure; corpus entries document what they once caught", path)
			}
			if err := spec.Replay(); err != nil {
				t.Fatalf("pinned failure regressed: %v\n(reproduce: go run ./cmd/dsisim -replay %s)", err, path)
			}
		})
	}
	if specs == 0 {
		t.Fatalf("no specs in %s; the corpus ratchet is empty", soakCorpusDir)
	}
}
