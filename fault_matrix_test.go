package dsisim

// Robustness gates for the fault-injection and hardened-protocol layer:
//
//   - The fault matrix runs drop/dup/delay plans against base and DSI
//     protocols on two workloads; every cell must terminate, pass the
//     machine's coherence audit (Run returns an error otherwise), and be
//     bit-identical when repeated with the same seed — fault plans draw
//     from their own seeded stream, so injected chaos is replayable.
//   - Scripted faults reproduce one historical race shape deterministically
//     (a delayed writeback racing the invalidation of its successor owner).
//   - The liveness watchdog must convert an unrecoverable loss into a
//     structured diagnostic instead of a silently hung or expired run.
//   - A zero-valued fault config must be indistinguishable from no config
//     at all: same results, no plan consulted.

import (
	"reflect"
	"strings"
	"testing"

	"dsisim/internal/netsim"
)

// faultPlans are the probabilistic plans in the matrix. Rates are high
// enough that every cell actually injects faults at test scale (the
// fault counters are asserted nonzero) while still letting the bounded
// retry protocol converge.
var faultPlans = []struct {
	name string
	cfg  FaultConfig
}{
	{"drop", FaultConfig{Seed: 11, Drop: 0.03}},
	{"dup", FaultConfig{Seed: 12, Dup: 0.05}},
	{"delay", FaultConfig{Seed: 13, Delay: 0.2, Jitter: 64}},
	{"mixed", FaultConfig{Seed: 14, Drop: 0.02, Dup: 0.02, Delay: 0.1}},
}

// TestFaultMatrix is the robustness matrix: plan x protocol x workload.
// Each cell runs twice; the runs must agree on every observable field.
func TestFaultMatrix(t *testing.T) {
	for _, plan := range faultPlans {
		for _, protocol := range []Protocol{SC, V, WDSI} {
			for _, wl := range []string{"em3d", "ocean"} {
				t.Run(plan.name+"/"+string(protocol)+"/"+wl, func(t *testing.T) {
					cell := func() Result {
						fc := plan.cfg
						res, err := Run(Config{
							Workload:   wl,
							Scale:      ScaleTest,
							Protocol:   protocol,
							Processors: 8,
							Faults:     &fc,
						})
						if err != nil {
							t.Fatalf("faulted run failed: %v", err)
						}
						return res
					}
					first, second := cell(), cell()
					if first.Faults.Decisions == 0 {
						t.Fatal("fault plan made no decisions; the matrix cell tested nothing")
					}
					switch plan.name {
					case "drop", "mixed":
						if first.Faults.Dropped == 0 && first.Faults.Converted == 0 {
							t.Fatalf("drop plan injected nothing: %+v", first.Faults)
						}
					case "dup":
						if first.Faults.Duplicated == 0 && first.Faults.Converted == 0 {
							t.Fatalf("dup plan injected nothing: %+v", first.Faults)
						}
					case "delay":
						if first.Faults.Delayed == 0 {
							t.Fatalf("delay plan injected nothing: %+v", first.Faults)
						}
					}
					if !reflect.DeepEqual(first, second) {
						t.Errorf("same-seed faulted runs diverged:\nfirst:  %+v\nsecond: %+v", first, second)
					}
				})
			}
		}
	}
}

// TestScriptedWritebackRacesInvalidation pins the writeback/invalidation
// race as a deterministic regression: the first writeback is held in the
// network long past the point where the home has re-granted the block and
// started invalidating the new copies. Per-pair FIFO keeps the delayed WB
// ordered against its own (src, dst) traffic, but it now lands amid a later
// transaction's invalidation round; the hardened directory must neither
// mistake it for a stray nor double-apply it, and the run must still
// quiesce and audit clean.
func TestScriptedWritebackRacesInvalidation(t *testing.T) {
	fc := FaultConfig{
		Seed: 21,
		Rules: []FaultRule{
			{Kind: int(netsim.WB), Src: -1, Dst: -1, Nth: 1, Action: FaultDelay, Delay: 2500},
			{Kind: int(netsim.Inv), Src: -1, Dst: -1, Nth: 1, Action: FaultDrop},
		},
	}
	run := func() Result {
		cfg := fc
		res, err := Run(Config{
			Workload:   "barnes",
			Scale:      ScaleTest,
			Protocol:   SC,
			Processors: 8,
			// A small cache forces capacity evictions of dirty blocks, so
			// writebacks actually travel for the delay rule to catch.
			CacheBytes: 1024,
			Faults:     &cfg,
		})
		if err != nil {
			t.Fatalf("scripted run failed: %v", err)
		}
		return res
	}
	first, second := run(), run()
	if first.Faults.Scripted < 2 {
		t.Fatalf("scripted rules did not both fire: %+v", first.Faults)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("scripted-fault run is not reproducible")
	}
}

// TestWatchdogReportsUnrecoverableLoss drives the protocol into a genuine
// livelock — every invalidation is dropped, including retransmissions, so
// the retry cap must eventually trip — and requires the watchdog to fail
// with the structured liveness dump rather than hang or expire silently.
func TestWatchdogReportsUnrecoverableLoss(t *testing.T) {
	fc := FaultConfig{
		Rules: []FaultRule{
			{Kind: int(netsim.Inv), Src: -1, Dst: -1, Nth: 0, Action: FaultDrop},
		},
	}
	res, err := Run(Config{
		Workload:   "em3d",
		Scale:      ScaleTest,
		Protocol:   SC,
		Processors: 8,
		Faults:     &fc,
	})
	if err == nil {
		t.Fatal("run with every Inv dropped succeeded; expected a watchdog failure")
	}
	var gaveUp, watchdog, liveness bool
	for _, e := range res.Errors {
		if strings.Contains(e, "giving up") {
			gaveUp = true
		}
		if strings.Contains(e, "watchdog:") {
			watchdog = true
		}
		if strings.Contains(e, "liveness:") {
			liveness = true
		}
	}
	if !gaveUp || !watchdog || !liveness {
		t.Fatalf("missing diagnostic sections (gave-up=%v watchdog=%v liveness=%v) in:\n%s",
			gaveUp, watchdog, liveness, strings.Join(res.Errors, "\n"))
	}
}

// TestWatchdogDumpOnExpiredBudget checks the other watchdog arm: an event
// budget that expires mid-run must carry the same structured dump.
func TestWatchdogDumpOnExpiredBudget(t *testing.T) {
	res, err := Run(Config{
		Workload:   "em3d",
		Scale:      ScaleTest,
		Protocol:   SC,
		Processors: 8,
		MaxSteps:   500,
	})
	if err == nil {
		t.Fatal("500-step run succeeded; expected the budget watchdog to fire")
	}
	joined := strings.Join(res.Errors, "\n")
	if !strings.Contains(joined, "watchdog: 500 events executed without quiescing") {
		t.Fatalf("missing budget-watchdog error in:\n%s", joined)
	}
	if !strings.Contains(joined, "liveness:") {
		t.Fatalf("budget watchdog fired without the liveness dump:\n%s", joined)
	}
}

// TestZeroFaultConfigIsInert: a pointer to a zero FaultConfig installs no
// plan; results must be bit-identical to a run with Faults nil, and the
// fault counters must stay zero.
func TestZeroFaultConfigIsInert(t *testing.T) {
	base := Config{Workload: "em3d", Scale: ScaleTest, Protocol: V, Processors: 8}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withZero := base
	withZero.Faults = &FaultConfig{}
	zeroed, err := Run(withZero)
	if err != nil {
		t.Fatal(err)
	}
	if zeroed.Faults.Decisions != 0 {
		t.Fatalf("zero fault config made %d decisions", zeroed.Faults.Decisions)
	}
	if !reflect.DeepEqual(plain, zeroed) {
		t.Error("zero fault config changed simulation results")
	}
}
