package dsisim

import (
	"encoding/json"
	"os"
	"testing"
)

// TestNilSinkAllocsUnchanged is the zero-overhead-when-nil regression gate:
// with no coherence sink attached, a full simulation must allocate exactly
// what BENCH_kernel.json records — the observability layer may not add a
// single steady-state allocation to the hot path (DESIGN.md §6).
func TestNilSinkAllocsUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement needs full runs")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; budgets hold only for plain builds")
	}
	data, err := os.ReadFile("BENCH_kernel.json")
	if err != nil {
		t.Fatal(err)
	}
	// The baseline is an array, one element per tracked cell; this gate
	// measures the em3d/V cell.
	var cells []struct {
		Workload    string `json:"workload"`
		Protocol    string `json:"protocol"`
		AllocsPerOp int64  `json:"allocs_per_op"`
	}
	if err := json.Unmarshal(data, &cells); err != nil {
		t.Fatal(err)
	}
	var baseline struct{ AllocsPerOp int64 }
	for _, c := range cells {
		if c.Workload == "em3d" && c.Protocol == string(V) {
			baseline.AllocsPerOp = c.AllocsPerOp
		}
	}
	if baseline.AllocsPerOp == 0 {
		t.Fatal("BENCH_kernel.json has no em3d/V cell")
	}

	cfg := Config{Workload: "em3d", Scale: ScaleTest, Protocol: V, Processors: 8}
	// One warm-up run, then measure: lazily-initialized runtime state (map
	// growth inside pools, first-use scheduler structures) amortizes to zero
	// and must not be charged to the steady state the baseline records.
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	const iters = 10
	avg := testing.AllocsPerRun(iters, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if int64(avg) > baseline.AllocsPerOp {
		t.Fatalf("nil-sink run allocates %.0f/op, baseline BENCH_kernel.json says %d — the obs layer leaked allocations onto the hot path",
			avg, baseline.AllocsPerOp)
	}
	// Absolute ceiling, independent of the committed baseline: with the
	// block tables and machine pool in place, a warm run's allocations are
	// the per-run constant (workload setup, goroutine starts, result
	// assembly), not a function of simulated work.
	const warmRunCap = 128
	if avg > warmRunCap {
		t.Fatalf("warm run allocates %.0f/op, cap %d — map-free/pooled steady state regressed", avg, warmRunCap)
	}
}

// TestSinkAttachedStillDeterministic double-checks the other half of the
// contract from the facade level: attaching a sink records events without
// changing simulated time.
func TestSinkAttachedStillDeterministic(t *testing.T) {
	cfg := Config{Workload: "em3d", Scale: ScaleTest, Protocol: V, Processors: 8}
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sink = NewCoherenceSink()
	obsd, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.TotalTime != obsd.TotalTime {
		t.Fatalf("sink changed timing: %d != %d cycles", bare.TotalTime, obsd.TotalTime)
	}
	if cfg.Sink.Len() == 0 {
		t.Fatal("sink recorded nothing")
	}
	if obsd.Blocks == nil || obsd.Blocks.Transactions == 0 {
		t.Fatal("Result.Blocks metrics missing")
	}
	if bare.Blocks != nil {
		t.Fatal("Result.Blocks set without a sink")
	}
}
