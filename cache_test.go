package dsisim

import (
	"reflect"
	"testing"
	"time"
)

// TestCampaignCacheSpeedup pins the headline property of the result cache:
// on the zipf-popular campaign mix, serving repeated cells from memory is at
// least 5x faster end to end than simulating every request — and every
// memoized result is bit-identical to the computed one. The mix has ~15x
// more requests than distinct cells, so the bound holds with wide margin
// even on a loaded machine; a failure here means hits are doing real work.
func TestCampaignCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	mix := campaignMix(6, 90)

	runMix := func(cache *ResultCache) (time.Duration, []Result) {
		start := time.Now()
		results := make([]Result, len(mix))
		for i, cfg := range mix {
			cfg.Cache = cache
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			results[i] = res
		}
		return time.Since(start), results
	}

	uncachedTime, computed := runMix(nil)
	cachedTime, memoized := runMix(NewResultCache(256 << 20))

	for i := range mix {
		if !reflect.DeepEqual(computed[i], memoized[i]) {
			t.Fatalf("request %d (%s seed %d): memoized result differs from computed",
				i, mix[i].Workload, mix[i].Seed)
		}
	}
	if cachedTime*5 > uncachedTime {
		t.Fatalf("cache speedup below 5x: uncached %v, cached %v (%.1fx)",
			uncachedTime, cachedTime, float64(uncachedTime)/float64(cachedTime))
	}
	t.Logf("campaign mix: %d requests, uncached %v, cached %v (%.1fx)",
		len(mix), uncachedTime, cachedTime, float64(uncachedTime)/float64(cachedTime))
}
