package dsisim

// Determinism guarantees of the event kernel. The simulator promises
// bit-identical results for identical configurations: the event queue's
// (time, seq) ordering is a total order, so neither the heap's internal
// shape nor host scheduling can leak into results. These tests pin that
// promise two ways: against golden values captured from the seed kernel
// (the container/heap implementation this kernel replaced), and by running
// the same configuration twice and comparing every observable field.

import (
	"testing"
)

// goldenRun is one (workload, protocol) cell's full observable outcome,
// captured from the pre-rewrite seed kernel. Any divergence means the
// rewritten queue or the pooled event paths changed simulation behavior —
// a correctness bug, not a tuning difference.
type goldenRun struct {
	workload  string
	protocol  Protocol
	execTime  int64
	totalTime int64
	brkTotal  int64
	msgs      int64
	inval     int64
	breakdown [10]int64 // compute, synch, read-inv, read-other, write-inv, write-other, synch-wb, read-wb, wb-full, dsi
}

var seedGolden = []goldenRun{
	{"em3d", SC, 7465, 7565, 60520, 306, 122, [10]int64{8104, 18579, 94, 24893, 7705, 1145, 0, 0, 0, 0}},
	{"em3d", V, 7496, 7596, 60768, 322, 92, [10]int64{8104, 20571, 94, 24889, 5829, 1143, 0, 0, 0, 138}},
	{"em3d", WDSI, 6950, 7050, 56400, 276, 92, [10]int64{8104, 22523, 94, 25064, 0, 0, 590, 0, 0, 25}},
	{"ocean", SC, 70402, 70654, 562406, 2864, 1402, [10]int64{14857, 231485, 4378, 159652, 138946, 13081, 0, 0, 0, 7}},
	{"ocean", V, 57657, 57909, 460446, 2534, 952, [10]int64{14885, 191869, 4130, 146114, 91495, 11209, 0, 0, 0, 744}},
	{"ocean", WDSI, 37322, 37507, 297766, 1429, 414, [10]int64{14922, 172718, 3672, 90526, 0, 0, 15668, 0, 0, 260}},
}

// trafficGolden pins the traffic-shaped generators (docs/WORKLOADS.md §3)
// the same way: one fault-free golden per generator under SC, V, and W+DSI,
// captured at ScaleTest on 8 processors. The generators draw their operation
// streams from internal/rng in Setup, so these values also pin the seeded
// construction path — a changed stream shows up here before it silently
// shifts every committed traffic table in EXPERIMENTS.md.
var trafficGolden = []goldenRun{
	{"zipf", SC, 14504, 15538, 117746, 538, 186, [10]int64{1801, 63959, 7143, 39083, 3257, 2501, 0, 0, 0, 2}},
	{"zipf", V, 14553, 15587, 118138, 568, 144, [10]int64{1801, 64531, 5628, 40644, 2811, 2501, 0, 0, 0, 222}},
	{"zipf", WDSI, 10589, 10958, 85647, 532, 144, [10]int64{1801, 36046, 5633, 40698, 0, 0, 1355, 0, 0, 114}},
	{"prodring", SC, 6868, 7435, 56223, 420, 196, [10]int64{375, 14404, 9006, 19440, 6686, 6312, 0, 0, 0, 0}},
	{"prodring", V, 7461, 8028, 60967, 532, 140, [10]int64{375, 15029, 3008, 28963, 6686, 6430, 0, 0, 0, 476}},
	{"prodring", WDSI, 7421, 7762, 60215, 504, 140, [10]int64{375, 14565, 3008, 28963, 0, 0, 12960, 0, 0, 344}},
	{"lockconvoy", SC, 142506, 142506, 1133734, 3174, 1582, [10]int64{1838, 1043621, 21815, 23927, 20214, 22276, 0, 0, 0, 43}},
	{"lockconvoy", V, 163298, 163298, 1300070, 3721, 1818, [10]int64{1919, 1196382, 25072, 27030, 23304, 25558, 0, 0, 0, 805}},
	{"lockconvoy", WDSI, 52182, 52182, 411142, 1045, 482, [10]int64{1428, 360315, 4528, 5123, 0, 0, 39277, 0, 0, 471}},
	{"openloop", SC, 11963, 12997, 56279, 348, 126, [10]int64{1038, 18519, 7950, 24418, 2315, 2031, 0, 0, 0, 8}},
	{"openloop", V, 11128, 12162, 54093, 344, 116, [10]int64{1038, 17140, 7308, 24418, 2108, 2031, 0, 0, 0, 50}},
	{"openloop", WDSI, 10631, 11000, 47749, 352, 116, [10]int64{1038, 13138, 6878, 24301, 0, 0, 2329, 0, 0, 65}},
}

// TestKernelGoldenAgainstSeed runs each golden configuration and requires
// bit-identical results to the seed kernel (and, for the traffic-shaped
// generators, to the values captured when they were added).
func TestKernelGoldenAgainstSeed(t *testing.T) {
	goldens := append(append([]goldenRun{}, seedGolden...), trafficGolden...)
	for _, g := range goldens {
		g := g
		t.Run(g.workload+"/"+string(g.protocol), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Workload: g.workload, Scale: ScaleTest, Protocol: g.protocol, Processors: 8})
			if err != nil {
				t.Fatal(err)
			}
			if int64(res.ExecTime) != g.execTime {
				t.Errorf("ExecTime = %d, golden is %d", res.ExecTime, g.execTime)
			}
			if int64(res.TotalTime) != g.totalTime {
				t.Errorf("TotalTime = %d, golden is %d", res.TotalTime, g.totalTime)
			}
			if res.Breakdown.Total() != g.brkTotal {
				t.Errorf("Breakdown.Total() = %d, golden is %d", res.Breakdown.Total(), g.brkTotal)
			}
			if res.Messages.Total() != g.msgs {
				t.Errorf("Messages.Total() = %d, golden is %d", res.Messages.Total(), g.msgs)
			}
			if res.Messages.Invalidation() != g.inval {
				t.Errorf("Messages.Invalidation() = %d, golden is %d", res.Messages.Invalidation(), g.inval)
			}
			if res.Breakdown.Cycles != g.breakdown {
				t.Errorf("Breakdown.Cycles = %v, golden is %v", res.Breakdown.Cycles, g.breakdown)
			}
		})
	}
}

// TestKernelRunTwiceIdentical runs one configuration twice on fresh machines
// and requires every observable to match, including per-processor breakdowns
// and kernel counters — the pooled free lists must not make a second run see
// different state than a first.
func TestKernelRunTwiceIdentical(t *testing.T) {
	cfg := Config{Workload: "ocean", Scale: ScaleTest, Protocol: V, Processors: 8}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime || a.TotalTime != b.TotalTime {
		t.Errorf("times differ: run1 (%d, %d) vs run2 (%d, %d)",
			a.ExecTime, a.TotalTime, b.ExecTime, b.TotalTime)
	}
	if a.Breakdown != b.Breakdown {
		t.Errorf("breakdowns differ:\nrun1 %v\nrun2 %v", a.Breakdown.Cycles, b.Breakdown.Cycles)
	}
	for i := range a.PerProc {
		if a.PerProc[i] != b.PerProc[i] {
			t.Errorf("proc %d breakdowns differ:\nrun1 %v\nrun2 %v",
				i, a.PerProc[i].Cycles, b.PerProc[i].Cycles)
		}
	}
	if a.Messages != b.Messages {
		t.Errorf("message counts differ:\nrun1 %+v\nrun2 %+v", a.Messages, b.Messages)
	}
	if a.Kernel != b.Kernel {
		t.Errorf("kernel counters differ:\nrun1 %+v\nrun2 %+v", a.Kernel, b.Kernel)
	}
	if a.Kernel.Events == 0 || a.Kernel.AllocsAvoided() == 0 {
		t.Errorf("kernel counters not populated: %+v", a.Kernel)
	}
}
