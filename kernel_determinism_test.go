package dsisim

// Determinism guarantees of the event kernel. The simulator promises
// bit-identical results for identical configurations: the event queue's
// (time, seq) ordering is a total order, so neither the heap's internal
// shape nor host scheduling can leak into results. These tests pin that
// promise two ways: against golden values captured from the seed kernel
// (the container/heap implementation this kernel replaced), and by running
// the same configuration twice and comparing every observable field.

import (
	"testing"
)

// goldenRun is one (workload, protocol) cell's full observable outcome,
// captured from the pre-rewrite seed kernel. Any divergence means the
// rewritten queue or the pooled event paths changed simulation behavior —
// a correctness bug, not a tuning difference.
type goldenRun struct {
	workload  string
	protocol  Protocol
	execTime  int64
	totalTime int64
	brkTotal  int64
	msgs      int64
	inval     int64
	breakdown [10]int64 // compute, synch, read-inv, read-other, write-inv, write-other, synch-wb, read-wb, wb-full, dsi
}

var seedGolden = []goldenRun{
	{"em3d", SC, 7465, 7565, 60520, 306, 122, [10]int64{8104, 18579, 94, 24893, 7705, 1145, 0, 0, 0, 0}},
	{"em3d", V, 7496, 7596, 60768, 322, 92, [10]int64{8104, 20571, 94, 24889, 5829, 1143, 0, 0, 0, 138}},
	{"em3d", WDSI, 6950, 7050, 56400, 276, 92, [10]int64{8104, 22523, 94, 25064, 0, 0, 590, 0, 0, 25}},
	{"ocean", SC, 70402, 70654, 562406, 2864, 1402, [10]int64{14857, 231485, 4378, 159652, 138946, 13081, 0, 0, 0, 7}},
	{"ocean", V, 57657, 57909, 460446, 2534, 952, [10]int64{14885, 191869, 4130, 146114, 91495, 11209, 0, 0, 0, 744}},
	{"ocean", WDSI, 37322, 37507, 297766, 1429, 414, [10]int64{14922, 172718, 3672, 90526, 0, 0, 15668, 0, 0, 260}},
}

// TestKernelGoldenAgainstSeed runs each golden configuration and requires
// bit-identical results to the seed kernel.
func TestKernelGoldenAgainstSeed(t *testing.T) {
	for _, g := range seedGolden {
		g := g
		t.Run(g.workload+"/"+string(g.protocol), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Workload: g.workload, Scale: ScaleTest, Protocol: g.protocol, Processors: 8})
			if err != nil {
				t.Fatal(err)
			}
			if int64(res.ExecTime) != g.execTime {
				t.Errorf("ExecTime = %d, seed kernel had %d", res.ExecTime, g.execTime)
			}
			if int64(res.TotalTime) != g.totalTime {
				t.Errorf("TotalTime = %d, seed kernel had %d", res.TotalTime, g.totalTime)
			}
			if res.Breakdown.Total() != g.brkTotal {
				t.Errorf("Breakdown.Total() = %d, seed kernel had %d", res.Breakdown.Total(), g.brkTotal)
			}
			if res.Messages.Total() != g.msgs {
				t.Errorf("Messages.Total() = %d, seed kernel had %d", res.Messages.Total(), g.msgs)
			}
			if res.Messages.Invalidation() != g.inval {
				t.Errorf("Messages.Invalidation() = %d, seed kernel had %d", res.Messages.Invalidation(), g.inval)
			}
			if res.Breakdown.Cycles != g.breakdown {
				t.Errorf("Breakdown.Cycles = %v, seed kernel had %v", res.Breakdown.Cycles, g.breakdown)
			}
		})
	}
}

// TestKernelRunTwiceIdentical runs one configuration twice on fresh machines
// and requires every observable to match, including per-processor breakdowns
// and kernel counters — the pooled free lists must not make a second run see
// different state than a first.
func TestKernelRunTwiceIdentical(t *testing.T) {
	cfg := Config{Workload: "ocean", Scale: ScaleTest, Protocol: V, Processors: 8}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime || a.TotalTime != b.TotalTime {
		t.Errorf("times differ: run1 (%d, %d) vs run2 (%d, %d)",
			a.ExecTime, a.TotalTime, b.ExecTime, b.TotalTime)
	}
	if a.Breakdown != b.Breakdown {
		t.Errorf("breakdowns differ:\nrun1 %v\nrun2 %v", a.Breakdown.Cycles, b.Breakdown.Cycles)
	}
	for i := range a.PerProc {
		if a.PerProc[i] != b.PerProc[i] {
			t.Errorf("proc %d breakdowns differ:\nrun1 %v\nrun2 %v",
				i, a.PerProc[i].Cycles, b.PerProc[i].Cycles)
		}
	}
	if a.Messages != b.Messages {
		t.Errorf("message counts differ:\nrun1 %+v\nrun2 %+v", a.Messages, b.Messages)
	}
	if a.Kernel != b.Kernel {
		t.Errorf("kernel counters differ:\nrun1 %+v\nrun2 %+v", a.Kernel, b.Kernel)
	}
	if a.Kernel.Events == 0 || a.Kernel.AllocsAvoided() == 0 {
		t.Errorf("kernel counters not populated: %+v", a.Kernel)
	}
}
