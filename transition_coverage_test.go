package dsisim_test

import (
	"os"
	"testing"

	"dsisim"
	"dsisim/internal/analysis/protomodel"
	"dsisim/internal/rng"
	"dsisim/internal/workload"
)

// TestTransitionCoverage is the runtime half of the protomodel cross-check
// (docs/ANALYSIS.md §protomodel): every (controller, trigger, state) triple
// observed while running real workloads must appear as a handled transition
// in the statically extracted table docs/protomodel.json. A violation means
// the protocol took a transition the extractor calls impossible — either
// the extractor lost a path or a //dsi:unreachable waiver is wrong.
func TestTransitionCoverage(t *testing.T) {
	data, err := os.ReadFile("docs/protomodel.json")
	if err != nil {
		t.Fatalf("reading static model (regenerate with `go run ./cmd/dsivet -run protomodel -model docs/protomodel.json ./...`): %v", err)
	}
	model, err := protomodel.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := protomodel.NewCoverage(model)
	if err != nil {
		t.Fatal(err)
	}

	fold := func(label string, run func(sink *dsisim.CoherenceSink) error) {
		t.Helper()
		sink := dsisim.NewCoherenceSink()
		if err := run(sink); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		cov.FoldSink(sink)
	}

	// Paper workloads under the two main DSI protocols; the 2 KiB variant
	// forces capacity evictions (WB/Repl replacement transitions).
	faults, err := dsisim.ParseFaults("drop=0.05,dup=0.02,delay=0.1,jitter=32,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"tomcatv", "em3d"} {
		for _, pr := range []dsisim.Protocol{dsisim.V, dsisim.WDSI} {
			for _, cacheBytes := range []int{0, 2048} {
				fold(wl+"/"+string(pr), func(sink *dsisim.CoherenceSink) error {
					_, err := dsisim.Run(dsisim.Config{
						Workload: wl, Scale: dsisim.ScaleTest, Protocol: pr,
						Processors: 8, CacheBytes: cacheBytes, Sink: sink,
					})
					return err
				})
			}
		}
	}

	// One cheap workload under every protocol label, clean and faulty (the
	// fault plan enables the hardened Nack/timeout transitions).
	for _, pr := range dsisim.Protocols() {
		for _, fc := range []*dsisim.FaultConfig{nil, &faults} {
			fold("prodcons/"+string(pr), func(sink *dsisim.CoherenceSink) error {
				_, err := dsisim.Run(dsisim.Config{
					Workload: "prodcons", Scale: dsisim.ScaleTest, Protocol: pr,
					Sink: sink, Faults: fc,
				})
				return err
			})
		}
	}

	// Fuzzer litmus programs across the protocol x fault-plan matrix.
	n := 4
	if testing.Short() {
		n = 1
	}
	seeds := rng.New(0xc07e4a6e)
	for i := 0; i < n; i++ {
		spec := workload.GenLitmus(seeds.Uint64())
		for _, pr := range workload.FuzzProtocols() {
			for _, plan := range workload.FuzzFaultPlans() {
				fold("litmus/"+pr.Name+"/"+plan.Name, func(sink *dsisim.CoherenceSink) error {
					return workload.RunLitmusObserved(spec, pr, plan, sink)
				})
			}
		}
	}

	for _, v := range cov.Violations() {
		t.Errorf("observed transition outside the static model (x%d): %s", v.Count, v.Observed)
	}

	sum := cov.Summarize()
	t.Logf("%s", sum)
	if sum.Exercised < 30 {
		t.Errorf("only %d handled transitions exercised; the event fold is likely broken", sum.Exercised)
	}
	// Transitions any multiprocessor run must hit; missing one means the
	// fold misroutes messages or mistracks shadow state rather than that
	// the workloads got unlucky.
	mustSee := []protomodel.Observed{
		{Controller: "dir", Trigger: "GetS", State: "Idle"},
		{Controller: "dir", Trigger: "GetX", State: "Idle"},
		{Controller: "cache", Trigger: "DataS", State: "Invalid"},
		{Controller: "cache", Trigger: "DataX", State: "Invalid"},
		{Controller: "dir", Trigger: "WB", State: "Exclusive"},
	}
	for _, want := range mustSee {
		found := false
		for _, s := range cov.Seen() {
			if s.Observed == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("never observed %s, which every run exercises", want)
		}
	}
}
