module dsisim

go 1.22
