package dsisim_test

import (
	"fmt"

	"dsisim"
)

// Run a built-in workload under the base protocol and under DSI, and
// compare coherence traffic. Simulations are deterministic, so the example
// output is exact.
func ExampleRun() {
	sc, err := dsisim.Run(dsisim.Config{
		Workload:   "prodcons",
		Protocol:   dsisim.SC,
		Processors: 8,
		Scale:      dsisim.ScaleTest,
	})
	if err != nil {
		panic(err)
	}
	v, err := dsisim.Run(dsisim.Config{
		Workload:   "prodcons",
		Protocol:   dsisim.V,
		Processors: 8,
		Scale:      dsisim.ScaleTest,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("DSI eliminated invalidation messages:",
		v.Messages.Invalidation() < sc.Messages.Invalidation())
	fmt.Println("DSI was at least as fast:", v.ExecTime <= sc.ExecTime)
	// Output:
	// DSI eliminated invalidation messages: true
	// DSI was at least as fast: true
}

// A CoherenceSink records one structured event per protocol action — every
// message, state transition, self-invalidation — and derives per-block
// lifetime metrics. Attaching one never changes simulated timing; see
// docs/OBSERVABILITY.md for the event schema.
func ExampleNewCoherenceSink() {
	sink := dsisim.NewCoherenceSink()
	res, err := dsisim.Run(dsisim.Config{
		Workload:   "em3d",
		Scale:      dsisim.ScaleTest,
		Protocol:   dsisim.V,
		Processors: 8,
		Sink:       sink,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("cycles unchanged by sink:", res.ExecTime == 7496)
	fmt.Println("coherence events recorded:", sink.Len())
	fmt.Println("coherence transactions:", res.Blocks.Transactions)
	fmt.Println("self-invalidations:", res.Blocks.SelfInvals)
	// Output:
	// cycles unchanged by sink: true
	// coherence events recorded: 3300
	// coherence transactions: 75
	// self-invalidations: 46
}

// Custom programs implement the Program interface; kernels issue simulated
// memory operations through the Proc handle.
func ExampleRunProgram() {
	res, err := dsisim.RunProgram(dsisim.Config{
		Protocol:   dsisim.WDSI,
		Processors: 4,
	}, &counterProgram{iters: 5})
	if err != nil {
		panic(err)
	}
	fmt.Println("barriers:", res.Barriers)
	// Output:
	// barriers: 1
}

type counterProgram struct {
	iters int
	lock  dsisim.Region
	ctr   dsisim.Region
}

func (c *counterProgram) Name() string        { return "counter" }
func (c *counterProgram) WarmupBarriers() int { return 0 }

func (c *counterProgram) Setup(m *dsisim.Machine) {
	c.lock = m.Layout().AllocInterleaved("lock", dsisim.BlockSize)
	c.ctr = m.Layout().AllocInterleaved("ctr", dsisim.BlockSize)
}

func (c *counterProgram) Kernel(p *dsisim.Proc) {
	for i := 0; i < c.iters; i++ {
		p.Lock(c.lock.Addr(0))
		v := p.Read(c.ctr.Addr(0))
		p.WriteWord(c.ctr.Addr(0), v.Word+1)
		p.Unlock(c.lock.Addr(0))
	}
	p.Barrier()
	if p.ID() == 0 {
		p.Assert(p.Read(c.ctr.Addr(0)).Word == uint64(p.N()*c.iters), "lost update")
	}
}
