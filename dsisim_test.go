package dsisim

import (
	"strings"
	"testing"
)

func testCfg(wl string, p Protocol) Config {
	return Config{Workload: wl, Protocol: p, Processors: 8, Scale: ScaleTest}
}

func TestRunAllProtocolsOnAllWorkloads(t *testing.T) {
	for _, wl := range Workloads() {
		for _, p := range Protocols() {
			res, err := Run(testCfg(wl, p))
			if err != nil {
				t.Fatalf("%s/%s: %v", wl, p, err)
			}
			if res.ExecTime <= 0 {
				t.Fatalf("%s/%s: exec time %d", wl, p, res.ExecTime)
			}
		}
	}
}

func TestUnknownProtocol(t *testing.T) {
	if _, err := Run(testCfg("em3d", Protocol("bogus"))); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Run(testCfg("bogus", SC)); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestPaperWorkloadsAreRegistered(t *testing.T) {
	all := strings.Join(Workloads(), " ")
	for _, w := range PaperWorkloads() {
		if !strings.Contains(all, w) {
			t.Fatalf("paper workload %s missing from %s", w, all)
		}
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	res, err := Run(Config{Workload: "prodcons", Scale: ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	// 32 processors by default.
	if len(res.PerProc) != 32 {
		t.Fatalf("default processors = %d, want 32", len(res.PerProc))
	}
}

func TestRunProgramCustom(t *testing.T) {
	prog := &pingPong{}
	res, err := RunProgram(Config{Protocol: V, Processors: 2}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Barriers == 0 {
		t.Fatal("custom program ran no barriers")
	}
}

// pingPong is a minimal custom Program exercising the public API surface.
type pingPong struct {
	data Region
}

func (p *pingPong) Name() string        { return "pingpong" }
func (p *pingPong) WarmupBarriers() int { return 0 }
func (p *pingPong) Setup(m *Machine) {
	p.data = m.Layout().AllocInterleaved("pp", BlockSize)
}
func (p *pingPong) Kernel(pr *Proc) {
	for i := 0; i < 4; i++ {
		if i%2 == pr.ID() {
			pr.WriteWord(p.data.Addr(0), uint64(i+1))
		}
		pr.Barrier()
		v := pr.Read(p.data.Addr(0))
		pr.Assert(v.Word == uint64(i+1), "round %d word %d", i, v.Word)
		pr.Barrier()
	}
}

// The headline claims, checked at test scale so `go test` stays fast; the
// full-scale numbers live in EXPERIMENTS.md and the benchmarks.
func TestDSIReducesInvalidationTrafficOnSparse(t *testing.T) {
	sc, err := Run(Config{Workload: "sparse", Protocol: SC, Processors: 16, Scale: ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Run(Config{Workload: "sparse", Protocol: V, Processors: 16, Scale: ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	if v.Messages.Invalidation() >= sc.Messages.Invalidation() {
		t.Fatalf("V did not reduce invalidations: %d vs %d",
			v.Messages.Invalidation(), sc.Messages.Invalidation())
	}
	if v.ExecTime >= sc.ExecTime {
		t.Fatalf("V did not speed up sparse: %d vs %d", v.ExecTime, sc.ExecTime)
	}
}

func TestTearOffEliminatesMessages(t *testing.T) {
	w, err := Run(Config{Workload: "sparse", Protocol: W, Processors: 16, Scale: ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	wdsi, err := Run(Config{Workload: "sparse", Protocol: WDSI, Processors: 16, Scale: ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	if wdsi.Messages.Total() >= w.Messages.Total() {
		t.Fatalf("tear-off did not cut traffic: %d vs %d", wdsi.Messages.Total(), w.Messages.Total())
	}
}

func TestResultsAreDeterministic(t *testing.T) {
	a, err := Run(testCfg("barnes", WDSI))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testCfg("barnes", WDSI))
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime || a.Messages != b.Messages {
		t.Fatal("same config, different results")
	}
}
