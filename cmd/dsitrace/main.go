// Command dsitrace records a workload's operation stream and writes it as
// text, summarizes / replays a previously recorded trace, or records a
// coherence-event trace of a live run and renders it as text or Chrome
// trace_event JSON.
//
// Usage:
//
//	dsitrace -workload sparse -test > sparse.trace     # record operations
//	dsitrace -summary < sparse.trace                   # histogram
//	dsitrace -replay -protocol V < sparse.trace        # re-simulate
//
//	# record protocol-level coherence events (see docs/OBSERVABILITY.md):
//	dsitrace -coherence-trace -workload em3d -test -protocol V
//	dsitrace -coherence-trace -workload em3d -test -protocol V -chrome em3d.json
//	dsitrace -coherence-trace -workload sparse -test -protocol V-FIFO \
//	    -kinds fifo-displace,msg-send -node 3 -limit 50
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"dsisim"
	"dsisim/internal/core"
	"dsisim/internal/event"
	"dsisim/internal/machine"
	"dsisim/internal/mem"
	"dsisim/internal/obs"
	"dsisim/internal/proto"
	"dsisim/internal/trace"
	"dsisim/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "workload to record (writes the trace to stdout)")
	procs := flag.Int("procs", 8, "simulated processors")
	testScale := flag.Bool("test", false, "use tiny test-scale inputs")
	summary := flag.Bool("summary", false, "summarize a trace from stdin")
	replay := flag.Bool("replay", false, "replay a trace from stdin and report execution time")
	protoLabel := flag.String("protocol", "SC", "protocol label (for -replay: SC or V; for -coherence-trace: any dsisim protocol)")

	coh := flag.Bool("coherence-trace", false, "run -workload with the coherence-event sink and print the event stream")
	chrome := flag.String("chrome", "", "with -coherence-trace: write Chrome trace_event JSON to this file (open in chrome://tracing or Perfetto)")
	node := flag.Int("node", -1, "with -coherence-trace: only events at (or messaging) this node")
	block := flag.String("block", "", "with -coherence-trace: only events for this block address (hex)")
	txn := flag.Uint64("txn", 0, "with -coherence-trace: only events of this transaction id")
	from := flag.Int64("from", 0, "with -coherence-trace: only events at cycle >= from")
	to := flag.Int64("to", 0, "with -coherence-trace: only events at cycle <= to (0 = unbounded)")
	kinds := flag.String("kinds", "", "with -coherence-trace: comma-separated event kinds (e.g. msg-send,self-inval); empty = all")
	limit := flag.Int("limit", 200, "with -coherence-trace: max events printed (0 = all)")
	metrics := flag.Bool("metrics", true, "with -coherence-trace: print the block-lifetime metrics tables")
	flag.Parse()

	switch {
	case *coh:
		coherenceTrace(*wl, *procs, *testScale, *protoLabel, *chrome,
			*node, *block, *txn, *from, *to, *kinds, *limit, *metrics)
	case *wl != "":
		scale := workload.ScalePaper
		if *testScale {
			scale = workload.ScaleTest
		}
		prog, err := workload.New(*wl, scale)
		fail(err)
		tr, res := trace.Record(machine.Config{Processors: *procs}, prog)
		if res.Failed() {
			fail(fmt.Errorf("recording run failed: %s", res.Errors[0]))
		}
		fail(tr.Write(os.Stdout))
	case *summary:
		tr, err := trace.Read(os.Stdin)
		fail(err)
		fmt.Printf("workload %s, %d processors, %d events\n", tr.Workload, tr.Procs, len(tr.Events))
		counts := tr.Counts()
		kinds := make([]string, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Printf("  %-8s %d\n", k, counts[k])
		}
	case *replay:
		tr, err := trace.Read(os.Stdin)
		fail(err)
		cfg := machine.Config{Processors: tr.Procs}
		if *protoLabel == "V" {
			cfg.Policy = core.Policy{Identifier: core.Versions{}, UpgradeExemption: true}
		}
		cfg.Consistency = proto.SC
		res := machine.New(cfg).Run(trace.NewReplay(tr))
		if res.Failed() {
			fail(fmt.Errorf("replay failed: %s", res.Errors[0]))
		}
		fmt.Printf("replayed %d events on %d processors: %d cycles, %d messages\n",
			len(tr.Events), tr.Procs, res.TotalTime, res.Messages.Total())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// coherenceTrace runs the workload with a coherence-event sink attached and
// renders the recorded stream.
func coherenceTrace(wl string, procs int, testScale bool, protoLabel, chrome string,
	node int, block string, txn uint64, from, to int64, kinds string, limit int, metrics bool) {
	if wl == "" {
		fail(fmt.Errorf("-coherence-trace needs -workload"))
	}
	scale := dsisim.ScalePaper
	if testScale {
		scale = dsisim.ScaleTest
	}
	sink := dsisim.NewCoherenceSink()
	res, err := dsisim.Run(dsisim.Config{
		Workload:   wl,
		Scale:      scale,
		Protocol:   dsisim.Protocol(protoLabel),
		Processors: procs,
		Sink:       sink,
	})
	fail(err)

	if chrome != "" {
		f, err := os.Create(chrome)
		fail(err)
		fail(sink.WriteChrome(f))
		fail(f.Close())
		fmt.Printf("%s/%s on %d procs: %d cycles, %d coherence events -> %s\n",
			wl, protoLabel, procs, res.TotalTime, sink.Len(), chrome)
		return
	}

	filt := obs.NewFilter()
	filt.Node = node
	filt.Txn = txn
	filt.From = event.Time(from)
	filt.To = event.Time(to)
	if block != "" {
		a, err := strconv.ParseUint(strings.TrimPrefix(block, "0x"), 16, 64)
		fail(err)
		filt.Block = mem.Addr(a)
	}
	for _, name := range strings.Split(kinds, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		k, err := kindByName(name)
		fail(err)
		filt = filt.WithKind(k)
	}

	matched, err := sink.WriteText(os.Stdout, filt, limit)
	fail(err)
	fmt.Printf("\n%s/%s on %d procs: %d cycles, %d coherence events recorded, %d matched\n",
		wl, protoLabel, procs, res.TotalTime, sink.Len(), matched)
	if metrics {
		fmt.Println()
		fmt.Print(res.Blocks.Render())
	}
}

// kindByName resolves an event-kind name ("msg-send", "self-inval", ...) to
// its obs.Kind.
func kindByName(name string) (obs.Kind, error) {
	for k := obs.Kind(0); k < obs.NumKinds; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	var known []string
	for k := obs.Kind(0); k < obs.NumKinds; k++ {
		known = append(known, k.String())
	}
	return 0, fmt.Errorf("unknown event kind %q (known: %s)", name, strings.Join(known, ", "))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsitrace:", err)
		os.Exit(1)
	}
}
