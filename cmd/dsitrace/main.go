// Command dsitrace records a workload's operation stream and writes it as
// text, or summarizes / replays a previously recorded trace.
//
// Usage:
//
//	dsitrace -workload sparse -test > sparse.trace     # record
//	dsitrace -summary < sparse.trace                   # histogram
//	dsitrace -replay -protocol V < sparse.trace        # re-simulate
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dsisim/internal/core"
	"dsisim/internal/machine"
	"dsisim/internal/proto"
	"dsisim/internal/trace"
	"dsisim/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "workload to record (writes the trace to stdout)")
	procs := flag.Int("procs", 8, "simulated processors")
	testScale := flag.Bool("test", false, "use tiny test-scale inputs")
	summary := flag.Bool("summary", false, "summarize a trace from stdin")
	replay := flag.Bool("replay", false, "replay a trace from stdin and report execution time")
	protoLabel := flag.String("protocol", "SC", "protocol for -replay: SC or V")
	flag.Parse()

	switch {
	case *wl != "":
		scale := workload.ScalePaper
		if *testScale {
			scale = workload.ScaleTest
		}
		prog, err := workload.New(*wl, scale)
		fail(err)
		tr, res := trace.Record(machine.Config{Processors: *procs}, prog)
		if res.Failed() {
			fail(fmt.Errorf("recording run failed: %s", res.Errors[0]))
		}
		fail(tr.Write(os.Stdout))
	case *summary:
		tr, err := trace.Read(os.Stdin)
		fail(err)
		fmt.Printf("workload %s, %d processors, %d events\n", tr.Workload, tr.Procs, len(tr.Events))
		counts := tr.Counts()
		kinds := make([]string, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Printf("  %-8s %d\n", k, counts[k])
		}
	case *replay:
		tr, err := trace.Read(os.Stdin)
		fail(err)
		cfg := machine.Config{Processors: tr.Procs}
		if *protoLabel == "V" {
			cfg.Policy = core.Policy{Identifier: core.Versions{}, UpgradeExemption: true}
		}
		cfg.Consistency = proto.SC
		res := machine.New(cfg).Run(trace.NewReplay(tr))
		if res.Failed() {
			fail(fmt.Errorf("replay failed: %s", res.Errors[0]))
		}
		fmt.Printf("replayed %d events on %d processors: %d cycles, %d messages\n",
			len(tr.Events), tr.Procs, res.TotalTime, res.Messages.Total())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsitrace:", err)
		os.Exit(1)
	}
}
