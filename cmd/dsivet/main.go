// Command dsivet runs the simulator's repo-specific static checks over Go
// package patterns, in the style of go vet:
//
//	go run ./cmd/dsivet ./...
//	go run ./cmd/dsivet -list
//	go run ./cmd/dsivet -run exhaustive,hotpath ./internal/proto
//
// The suite (see docs/ANALYSIS.md):
//
//	exhaustive   switches over protocol enums cover every constant or panic
//	determinism  simulation packages avoid wall-clock, math/rand, map order,
//	             and goroutines
//	hotpath      //dsi:hotpath functions avoid allocating constructs
//	obssink      obs.Sink emissions are dominated by nil-sink checks
//
// Exit status is 1 when any finding is reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dsisim/internal/analysis"
	"dsisim/internal/analysis/determinism"
	"dsisim/internal/analysis/exhaustive"
	"dsisim/internal/analysis/hotpath"
	"dsisim/internal/analysis/obssink"
)

func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		exhaustive.Default(),
		determinism.Default(),
		hotpath.Analyzer(),
		obssink.Analyzer(),
	}
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: dsivet [-list] [-run names] [packages]\n\nruns the dsisim static-check suite (default pattern ./...)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := suite()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	analyzers := all
	if *run != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "dsivet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	ld := analysis.NewLoader(".")
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsivet: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsivet: %v\n", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dsivet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
