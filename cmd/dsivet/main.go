// Command dsivet runs the simulator's repo-specific static checks over Go
// package patterns, in the style of go vet:
//
//	go run ./cmd/dsivet ./...
//	go run ./cmd/dsivet -list
//	go run ./cmd/dsivet -run exhaustive,hotpath ./internal/proto
//
// The suite (see docs/ANALYSIS.md):
//
//	exhaustive   switches over protocol enums cover every constant or panic
//	determinism  simulation packages avoid wall-clock, math/rand, map order,
//	             and goroutines
//	hotpath      //dsi:hotpath functions avoid allocating constructs
//	obssink      obs.Sink emissions are dominated by nil-sink checks
//	protomodel   the coherence transition table is complete: every
//	             (controller, state, trigger) pair is handled, waived with
//	             //dsi:unreachable, or statically infeasible
//
// -json emits findings as one JSON object per line for tooling; -model FILE
// writes the extracted protocol transition table (docs/protomodel.json);
// -table prints it as a markdown table (DESIGN.md §Transition table).
//
// Exit status is 1 when any finding is reported, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dsisim/internal/analysis"
	"dsisim/internal/analysis/determinism"
	"dsisim/internal/analysis/exhaustive"
	"dsisim/internal/analysis/hotpath"
	"dsisim/internal/analysis/obssink"
	"dsisim/internal/analysis/protomodel"
)

func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		exhaustive.Default(),
		determinism.Default(),
		hotpath.Analyzer(),
		obssink.Analyzer(),
		protomodel.Analyzer,
	}
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as one JSON object per line")
	modelOut := flag.String("model", "", "write the extracted protocol transition table to this file")
	table := flag.Bool("table", false, "print the extracted transition table as markdown")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: dsivet [-list] [-run names] [-json] [-model file] [-table] [packages]\n\nruns the dsisim static-check suite (default pattern ./...)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := suite()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	analyzers := all
	if *run != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "dsivet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	ld := analysis.NewLoader(".")
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsivet: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(pkgs, analyzers)
	for _, f := range findings {
		if *jsonOut {
			printJSON(f)
		} else {
			fmt.Println(f)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsivet: %v\n", err)
		os.Exit(2)
	}
	if *modelOut != "" || *table {
		if exitCode := emitModel(ld, pkgs, *modelOut, *table); exitCode != 0 {
			os.Exit(exitCode)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dsivet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// printJSON emits one finding as a single-line JSON object, the machine
// interface behind CI annotation tooling.
func printJSON(f analysis.Finding) {
	b, err := json.Marshal(struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}{f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer, f.Message})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsivet: %v\n", err)
		os.Exit(2)
	}
	fmt.Println(string(b))
}

// emitModel extracts the protocol transition table and writes/prints it.
func emitModel(ld *analysis.Loader, pkgs []*analysis.Package, file string, table bool) int {
	var proto *analysis.Package
	for _, p := range pkgs {
		if p.Path == protomodel.ProtoPackage {
			proto = p
			break
		}
	}
	if proto == nil {
		loaded, err := ld.Load(protomodel.ProtoPackage)
		if err != nil || len(loaded) == 0 {
			fmt.Fprintf(os.Stderr, "dsivet: loading %s for -model: %v\n", protomodel.ProtoPackage, err)
			return 2
		}
		proto = loaded[0]
	}
	model, probs := protomodel.ExtractPackage(proto)
	if model == nil {
		fmt.Fprintf(os.Stderr, "dsivet: extraction produced no model (%d problems)\n", len(probs))
		return 2
	}
	if file != "" {
		data, err := model.Render()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsivet: rendering model: %v\n", err)
			return 2
		}
		if err := os.WriteFile(file, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dsivet: %v\n", err)
			return 2
		}
	}
	if table {
		fmt.Print(protomodel.Markdown(model))
	}
	return 0
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
