// Command dsibench regenerates the paper's tables and figures.
//
// Usage:
//
//	dsibench [-experiment all|tab1|fig3|fig4|fig5|tab2|tab3] [-procs N] [-test]
//
// Output is plain text, one table per artifact, with execution times
// normalized exactly as the paper reports them. Expect the full suite at
// paper scale to take several minutes: it simulates a 32-processor machine
// across ~60 configurations.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dsisim/internal/experiments"
	"dsisim/internal/workload"
)

func main() {
	exp := flag.String("experiment", "all", "artifact to regenerate: all, or one of tab1 fig3 fig4 fig5 tab2 tab3")
	procs := flag.Int("procs", 32, "simulated processors")
	testScale := flag.Bool("test", false, "use tiny test-scale inputs (fast smoke run)")
	flag.Parse()

	o := experiments.Options{Processors: *procs}
	if *testScale {
		o.Scale = workload.ScaleTest
	}

	names := experiments.Artifacts()
	if *exp != "all" {
		names = []string{*exp}
	}
	for _, name := range names {
		start := time.Now()
		out, err := experiments.Run(name, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsibench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), out)
	}
}
