// Command dsibench regenerates the paper's tables and figures, and measures
// the simulator itself.
//
// Usage:
//
//	dsibench [-experiment all|tab1|fig3|fig4|fig5|tab2|tab3|sweep] [-procs N] [-test]
//	         [-cpuprofile f] [-memprofile f] [-trace f]
//	         [-benchjson f] [-benchbaseline f] [-benchmaxregress frac]
//	         [-blockstats workload] [-protocol label] [-cachebytes n]
//	         [-faults spec]
//
// Output is plain text, one table per artifact, with execution times
// normalized exactly as the paper reports them. Expect the full suite at
// paper scale to take several minutes: it simulates a 32-processor machine
// across ~60 configurations.
//
// The profiling flags wrap whichever mode runs: -cpuprofile and -memprofile
// write pprof profiles, -trace writes a runtime execution trace. They make
// the simulator's own hot path measurable (`go tool pprof`, `go tool
// trace`) instead of guessed at.
//
// -benchjson skips the paper artifacts and instead benchmarks the event
// kernel end to end (repeated full simulations of one workload), writing a
// benchstat-compatible summary — ns/op, allocs/op, events/sec — as JSON.
// The repository keeps the current numbers in BENCH_kernel.json; regenerate
// with:
//
//	go run ./cmd/dsibench -benchjson BENCH_kernel.json
//
// -benchbaseline turns the same measurement into a regression gate: the
// fresh numbers are compared against a committed baseline and the exit
// status is nonzero if ns/op regressed by more than -benchmaxregress
// (default 20%) or if allocs/op increased at all. CI runs:
//
//	go run ./cmd/dsibench -benchjson /tmp/bench.json -benchbaseline BENCH_kernel.json -procs 8
//
// -blockstats runs one workload with the coherence-event sink attached and
// prints the per-block lifetime metrics (time-in-state histograms,
// premature-self-invalidation and echo-loss counters, transaction
// latencies); see docs/OBSERVABILITY.md. -protocol picks the protocol and
// -cachebytes shrinks the cache (echo losses are a frame-recycling
// phenomenon). For example:
//
//	go run ./cmd/dsibench -blockstats ocean -protocol W+DSI -test
//	go run ./cmd/dsibench -blockstats em3d -protocol V -cachebytes 32768
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"testing"
	"time"

	"dsisim"
	"dsisim/internal/experiments"
	"dsisim/internal/workload"
)

func main() {
	exp := flag.String("experiment", "all", "artifact to regenerate: all, or one of tab1 fig3 fig4 fig5 tab2 tab3 sweep")
	procs := flag.Int("procs", 32, "simulated processors")
	testScale := flag.Bool("test", false, "use tiny test-scale inputs (fast smoke run)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	benchjson := flag.String("benchjson", "", "benchmark the simulation kernel and write a JSON summary to this file instead of running experiments")
	benchWorkload := flag.String("benchworkload", "em3d", "workload for -benchjson")
	benchScale := flag.Bool("benchpaper", false, "run -benchjson at paper scale instead of test scale")
	benchBaseline := flag.String("benchbaseline", "", "compare the -benchjson measurement against this committed baseline and fail on regression")
	benchMaxRegress := flag.Float64("benchmaxregress", 0.20, "tolerated fractional ns/op regression for -benchbaseline")
	blockstats := flag.String("blockstats", "", "run this workload with the coherence-event sink and print block-lifetime metrics instead of running experiments")
	protocol := flag.String("protocol", "V", "protocol label for -blockstats")
	cacheBytes := flag.Int("cachebytes", 0, "cache size for -blockstats (0 = default 256 KiB)")
	faultSpec := flag.String("faults", "", "fault-injection spec for -benchjson/-blockstats runs, e.g. drop=0.01,seed=7 (see docs/FAULTS.md)")
	flag.Parse()

	var faults *dsisim.FaultConfig
	if *faultSpec != "" {
		fc, err := dsisim.ParseFaults(*faultSpec)
		if err != nil {
			fatal(err)
		}
		faults = &fc
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fatal(err)
		}
		defer rtrace.Stop()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}()

	if *benchjson != "" {
		out, err := runKernelBench(*benchjson, *benchWorkload, *procs, *benchScale, faults)
		if err != nil {
			fatal(err)
		}
		if *benchBaseline != "" {
			if err := checkBaseline(out, *benchBaseline, *benchMaxRegress); err != nil {
				fatal(err)
			}
		}
		return
	}
	if *benchBaseline != "" {
		fatal(fmt.Errorf("-benchbaseline requires -benchjson"))
	}

	if *blockstats != "" {
		if err := runBlockStats(*blockstats, *protocol, *procs, *cacheBytes, *testScale, faults); err != nil {
			fatal(err)
		}
		return
	}

	if faults != nil {
		fatal(fmt.Errorf("-faults applies to -benchjson and -blockstats runs, not paper artifacts"))
	}

	o := experiments.Options{Processors: *procs}
	if *testScale {
		o.Scale = workload.ScaleTest
	}

	names := experiments.Artifacts()
	if *exp != "all" {
		names = []string{*exp}
	}
	for _, name := range names {
		start := time.Now()
		out, err := experiments.Run(name, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsibench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsibench:", err)
	os.Exit(1)
}

// KernelBench is the JSON schema of -benchjson: one end-to-end measurement
// of the simulation kernel, comparable across commits.
type KernelBench struct {
	Workload   string `json:"workload"`
	Protocol   string `json:"protocol"`
	Processors int    `json:"processors"`
	Scale      string `json:"scale"`

	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`      // wall time per full simulation
	AllocsPerOp  int64   `json:"allocs_per_op"`  // heap allocations per full simulation
	BytesPerOp   int64   `json:"bytes_per_op"`   // heap bytes per full simulation
	EventsPerOp  uint64  `json:"events_per_op"`  // kernel events per simulation
	EventsPerSec float64 `json:"events_per_sec"` // simulation throughput

	SimCycles     int64  `json:"sim_cycles"`     // simulated time of one run
	PeakQueue     int    `json:"peak_queue"`     // max pending events
	AllocsAvoided uint64 `json:"allocs_avoided"` // typed/pooled events per run
	GoVersion     string `json:"go_version"`
}

// runKernelBench benchmarks repeated full simulations with testing.Benchmark
// and writes the summary JSON to path, returning the measurement.
func runKernelBench(path, wl string, procs int, paperScale bool, faults *dsisim.FaultConfig) (KernelBench, error) {
	scale := dsisim.ScaleTest
	scaleName := "test"
	if paperScale {
		scale = dsisim.ScalePaper
		scaleName = "paper"
	}
	cfg := dsisim.Config{Workload: wl, Scale: scale, Protocol: dsisim.V, Processors: procs, Faults: faults}

	// One priming run for the kernel counters (identical every iteration:
	// the simulation is deterministic).
	probe, err := dsisim.Run(cfg)
	if err != nil {
		return KernelBench{}, err
	}

	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dsisim.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	out := KernelBench{
		Workload:      wl,
		Protocol:      string(dsisim.V),
		Processors:    probeProcs(procs),
		Scale:         scaleName,
		Iterations:    r.N,
		NsPerOp:       float64(r.NsPerOp()),
		AllocsPerOp:   r.AllocsPerOp(),
		BytesPerOp:    r.AllocedBytesPerOp(),
		EventsPerOp:   probe.Kernel.Events,
		EventsPerSec:  float64(probe.Kernel.Events) / (float64(r.NsPerOp()) / 1e9),
		SimCycles:     int64(probe.TotalTime),
		PeakQueue:     probe.Kernel.PeakQueue,
		AllocsAvoided: probe.Kernel.AllocsAvoided(),
		GoVersion:     runtime.Version(),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return KernelBench{}, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return KernelBench{}, err
	}
	fmt.Printf("kernel bench: %d iter, %.2fms/op, %d allocs/op, %.0f events/sec -> %s\n",
		r.N, out.NsPerOp/1e6, out.AllocsPerOp, out.EventsPerSec, path)
	return out, nil
}

// checkBaseline compares a fresh measurement against the committed baseline
// JSON and fails on a ns/op regression beyond maxRegress (a fraction: 0.20
// tolerates 20%). Allocations are compared exactly — they are deterministic,
// so any increase is a real leak, not noise. The measurement must cover the
// same cell (workload, processors, scale) as the baseline, or the comparison
// is meaningless and rejected.
func checkBaseline(cur KernelBench, path string, maxRegress float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base KernelBench
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if cur.Workload != base.Workload || cur.Processors != base.Processors || cur.Scale != base.Scale {
		return fmt.Errorf("baseline %s measures %s/%dp/%s, current run measures %s/%dp/%s",
			path, base.Workload, base.Processors, base.Scale, cur.Workload, cur.Processors, cur.Scale)
	}
	ratio := cur.NsPerOp / base.NsPerOp
	fmt.Printf("baseline %s: %.2fms/op, current %.2fms/op (%.2fx, tolerance %.2fx)\n",
		path, base.NsPerOp/1e6, cur.NsPerOp/1e6, ratio, 1+maxRegress)
	if ratio > 1+maxRegress {
		return fmt.Errorf("ns/op regressed %.1f%% (%.0f -> %.0f), tolerance %.0f%%",
			(ratio-1)*100, base.NsPerOp, cur.NsPerOp, maxRegress*100)
	}
	if cur.AllocsPerOp > base.AllocsPerOp {
		return fmt.Errorf("allocs/op regressed: %d -> %d (allocations are deterministic; this is a leak, not noise)",
			base.AllocsPerOp, cur.AllocsPerOp)
	}
	return nil
}

// probeProcs normalizes the processor count the way machine.Config.Defaults
// does (0 means the paper's 32).
func probeProcs(n int) int {
	if n == 0 {
		return 32
	}
	return n
}

// runBlockStats simulates one workload with a coherence-event sink attached
// and prints the derived block-lifetime metrics.
func runBlockStats(wl, protocol string, procs, cacheBytes int, testScale bool, faults *dsisim.FaultConfig) error {
	scale := dsisim.ScalePaper
	if testScale {
		scale = dsisim.ScaleTest
	}
	sink := dsisim.NewCoherenceSink()
	res, err := dsisim.Run(dsisim.Config{
		Workload:   wl,
		Scale:      scale,
		Protocol:   dsisim.Protocol(protocol),
		Processors: procs,
		CacheBytes: cacheBytes,
		Sink:       sink,
		Faults:     faults,
	})
	if err != nil {
		return err
	}
	fmt.Printf("=== block lifetimes: %s / %s, %d procs ===\n", wl, protocol, probeProcs(procs))
	fmt.Printf("%d cycles simulated, %d coherence events\n\n", res.TotalTime, sink.Total())
	fmt.Print(res.Blocks.Render())
	return nil
}
