// Command dsibench regenerates the paper's tables and figures, and measures
// the simulator itself.
//
// Usage:
//
//	dsibench [-experiment all|tab1|fig3|fig4|fig5|tab2|tab3|sweep|traffic] [-procs N] [-test]
//	         [-shard i/n] [-cache] [-cachemb N]
//	         [-cpuprofile f] [-memprofile f] [-trace f]
//	         [-benchjson f] [-benchcells list] [-benchbaseline f] [-benchmaxregress frac]
//	         [-blockstats workload] [-protocol label] [-cachebytes n]
//	         [-faults spec]
//	         [-fuzz N] [-fuzzseed S] [-fuzzout dir]
//	         [-soak] [-soakcells N] [-soakdur d] [-soakseed S] [-soakjournal f]
//	         [-resume] [-soakcorpus dir] [-soakworkers N]
//	         [-transition-coverage] [-transition-model f] [-transition-litmus N]
//
// Output is plain text, one table per artifact, with execution times
// normalized exactly as the paper reports them. Expect the full suite at
// paper scale to take several minutes: it simulates a 32-processor machine
// across ~60 configurations.
//
// -cache memoizes cell results in a content-addressed cache shared across
// the whole run (budget -cachemb MiB, default 256): paper artifacts that
// revisit a configuration another figure already simulated — and soak
// campaigns re-run over the same seeds — are served bit-identical results
// from memory. The simulator is deterministic, so a hit is observationally
// indistinguishable from a re-run; cache counters are printed at the end.
// The flag applies to artifact and -soak modes, never to -benchjson, which
// exists to measure real simulations.
//
// The profiling flags wrap whichever mode runs: -cpuprofile and -memprofile
// write pprof profiles, -trace writes a runtime execution trace. They make
// the simulator's own hot path measurable (`go tool pprof`, `go tool
// trace`) instead of guessed at.
//
// -benchjson skips the paper artifacts and instead benchmarks the event
// kernel end to end (repeated full simulations of each tracked cell),
// writing a benchstat-comparable summary — ns/op, allocs/op, events/sec —
// as a JSON array, one element per cell. -benchcells picks the cells as
// comma-separated workload:protocol pairs; the default tracks em3d under V
// (the invalidation hot path), ocean under W+DSI (the tear-off/DSI hot
// path), and zipf under V (the skewed-popularity traffic mix the campaign
// cache is benchmarked on). The repository keeps the current numbers in
// BENCH_kernel.json; regenerate with:
//
//	go run ./cmd/dsibench -benchjson BENCH_kernel.json -procs 8
//
// -benchbaseline turns the same measurement into a regression gate: the
// fresh numbers are compared cell-by-cell against a committed baseline and
// the exit status is nonzero if any cell's ns/op regressed — or its
// events/sec throughput dropped — by more than -benchmaxregress (default
// 20%), or if its allocs/op increased at all. CI runs:
//
//	go run ./cmd/dsibench -benchjson /tmp/bench.json -benchbaseline BENCH_kernel.json -procs 8
//
// -shard i/n (1-based) runs only the i-th of n round-robin slices of
// whatever grid is selected — paper artifacts for -experiment, campaign
// cells for -soak — so CI can fan either suite out across jobs. Both modes
// decide ownership with the same function (soak.Shard.Owns: shard i of n
// owns every index congruent to i-1 mod n), so a sharded soak campaign and
// a sharded artifact run slice their spaces identically:
//
//	go run ./cmd/dsibench -experiment all -shard 2/3
//	go run ./cmd/dsibench -soak -shard 2/3 -soakjournal soak-2of3.jsonl
//
// -blockstats runs one workload with the coherence-event sink attached and
// prints the per-block lifetime metrics (time-in-state histograms,
// premature-self-invalidation and echo-loss counters, transaction
// latencies); see docs/OBSERVABILITY.md. -protocol picks the protocol and
// -cachebytes shrinks the cache (echo losses are a frame-recycling
// phenomenon). For example:
//
//	go run ./cmd/dsibench -blockstats ocean -protocol W+DSI -test
//	go run ./cmd/dsibench -blockstats em3d -protocol V -cachebytes 32768
//
// -fuzz N runs the seeded random-litmus fuzzer instead of experiments: N
// generated programs, each executed under every protocol (SC, W, S, V,
// W+DSI) × fault-plan (none, lossy, jitter) combination with the coherence
// audit plus an outcome cross-check against a sequential reference model.
// Failing cells are minimized by greedy op-deletion and persisted as
// replayable JSON specs under -fuzzout; the exit status is nonzero if any
// cell failed. The acceptance gate of ISSUE 7 is:
//
//	go run ./cmd/dsibench -fuzz 200 -fuzzseed 1
//
// -soak runs the fault-seed soak farm (internal/soak) instead of
// experiments: the default campaign sweeps every paper and traffic workload
// plus generated litmus programs under SC, V, and W+DSI across four fault
// templates — 2040 cells — on a work-stealing runner. -soakcells and
// -soakdur bound one sitting (unbounded by default); -soakjournal
// checkpoints every verdict so -resume continues a killed campaign exactly
// where it stopped (SIGINT/SIGTERM drain in-flight cells and flush a final
// checkpoint first); -soakcorpus collects minimized replayable specs of
// deterministic failures (replay with `dsisim -replay`). The exit status is
// nonzero if any cell failed. The ISSUE 9 acceptance gate is:
//
//	go run ./cmd/dsibench -soak -soakjournal soak.jsonl -soakcorpus soak-failures
//
// -transition-coverage runs the runtime half of the protomodel cross-check:
// paper workloads plus fuzzer litmus programs (clean and under fault
// injection) with the coherence-event sink attached, folding every observed
// (controller, trigger, state) triple against the statically extracted
// transition table (-transition-model, default docs/protomodel.json). The
// exit status is nonzero if the running protocol ever took a transition the
// static model calls impossible. CI runs:
//
//	go run ./cmd/dsibench -transition-coverage -procs 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"syscall"
	"testing"
	"time"

	"dsisim"
	"dsisim/internal/experiments"
	"dsisim/internal/soak"
	"dsisim/internal/workload"
)

func main() {
	exp := flag.String("experiment", "all", "artifact to regenerate: all, or one of tab1 fig3 fig4 fig5 tab2 tab3 sweep traffic")
	procs := flag.Int("procs", 32, "simulated processors")
	testScale := flag.Bool("test", false, "use tiny test-scale inputs (fast smoke run)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	benchjson := flag.String("benchjson", "", "benchmark the simulation kernel and write a JSON summary to this file instead of running experiments")
	benchCells := flag.String("benchcells", "em3d:V,ocean:W+DSI,zipf:V", "tracked cells for -benchjson, comma-separated workload:protocol pairs")
	benchScale := flag.Bool("benchpaper", false, "run -benchjson at paper scale instead of test scale")
	benchBaseline := flag.String("benchbaseline", "", "compare the -benchjson measurement against this committed baseline and fail on regression")
	benchMaxRegress := flag.Float64("benchmaxregress", 0.20, "tolerated fractional ns/op regression for -benchbaseline")
	blockstats := flag.String("blockstats", "", "run this workload with the coherence-event sink and print block-lifetime metrics instead of running experiments")
	protocol := flag.String("protocol", "V", "protocol label for -blockstats")
	cacheBytes := flag.Int("cachebytes", 0, "cache size for -blockstats (0 = default 256 KiB)")
	faultSpec := flag.String("faults", "", "fault-injection spec for -benchjson/-blockstats runs, e.g. drop=0.01,seed=7 (see docs/FAULTS.md)")
	shard := flag.String("shard", "", "run only the i-th of n artifact slices, as i/n (1-based), e.g. 2/3")
	fuzzN := flag.Int("fuzz", 0, "run N random litmus programs through every protocol x fault-plan combination instead of experiments")
	fuzzSeed := flag.Uint64("fuzzseed", 1, "campaign seed for -fuzz")
	fuzzOut := flag.String("fuzzout", "fuzz-failures", "directory for minimized replayable specs of -fuzz failures")
	soakRun := flag.Bool("soak", false, "run the fault-seed soak campaign instead of experiments")
	soakCells := flag.Int("soakcells", 0, "bound one -soak sitting to N cells (0 = all owned cells)")
	soakDur := flag.Duration("soakdur", 0, "stop claiming new -soak cells after this long, e.g. 10m (0 = no bound)")
	soakSeed := flag.Uint64("soakseed", 1, "campaign seed for -soak")
	soakJournal := flag.String("soakjournal", "", "append-only JSONL checkpoint journal for -soak ('' = no checkpointing)")
	soakResume := flag.Bool("resume", false, "resume the -soakjournal campaign, skipping journaled cells")
	soakCorpus := flag.String("soakcorpus", "soak-failures", "directory for minimized replayable specs of -soak failures")
	soakWorkers := flag.Int("soakworkers", 0, "work-stealing workers for -soak (0 = GOMAXPROCS)")
	transCov := flag.Bool("transition-coverage", false, "cross-check runtime transitions against the static protocol model instead of running experiments")
	transModel := flag.String("transition-model", "docs/protomodel.json", "static transition table for -transition-coverage")
	transLitmus := flag.Int("transition-litmus", 8, "litmus programs per protocol x fault cell for -transition-coverage")
	useCache := flag.Bool("cache", false, "memoize cell results in a content-addressed cache shared across the run (paper artifacts and -soak)")
	cacheMB := flag.Int64("cachemb", 256, "result-cache budget in MiB (with -cache)")
	flag.Parse()

	var cache *dsisim.ResultCache
	if *useCache {
		cache = dsisim.NewResultCache(*cacheMB << 20)
	}

	var faults *dsisim.FaultConfig
	if *faultSpec != "" {
		fc, err := dsisim.ParseFaults(*faultSpec)
		if err != nil {
			fatal(err)
		}
		faults = &fc
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fatal(err)
		}
		defer rtrace.Stop()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}()

	if *fuzzN > 0 {
		if err := runFuzz(*fuzzN, *fuzzSeed, *fuzzOut); err != nil {
			fatal(err)
		}
		return
	}

	if *soakRun {
		sh, err := soak.ParseShard(*shard)
		if err != nil {
			fatal(err)
		}
		if err := runSoak(soakOptions{
			cells:   *soakCells,
			dur:     *soakDur,
			seed:    *soakSeed,
			journal: *soakJournal,
			resume:  *soakResume,
			corpus:  *soakCorpus,
			workers: *soakWorkers,
			shard:   sh,
			cache:   cache,
		}); err != nil {
			fatal(err)
		}
		return
	}
	if *soakResume {
		fatal(fmt.Errorf("-resume requires -soak"))
	}

	if *transCov {
		if err := runTransitionCoverage(*transModel, *procs, *transLitmus); err != nil {
			fatal(err)
		}
		return
	}

	if *benchjson != "" {
		cells, err := parseBenchCells(*benchCells)
		if err != nil {
			fatal(err)
		}
		out, err := runKernelBench(*benchjson, cells, *procs, *benchScale, faults)
		if err != nil {
			fatal(err)
		}
		if *benchBaseline != "" {
			if err := checkBaseline(out, *benchBaseline, *benchMaxRegress); err != nil {
				fatal(err)
			}
		}
		return
	}
	if *benchBaseline != "" {
		fatal(fmt.Errorf("-benchbaseline requires -benchjson"))
	}

	if *blockstats != "" {
		if err := runBlockStats(*blockstats, *protocol, *procs, *cacheBytes, *testScale, faults); err != nil {
			fatal(err)
		}
		return
	}

	if faults != nil {
		fatal(fmt.Errorf("-faults applies to -benchjson and -blockstats runs, not paper artifacts"))
	}

	o := experiments.Options{Processors: *procs, Cache: cache}
	if *testScale {
		o.Scale = workload.ScaleTest
	}

	names := experiments.Artifacts()
	if *exp != "all" {
		names = []string{*exp}
	}
	if *shard != "" {
		sharded, err := shardSlice(names, *shard)
		if err != nil {
			fatal(err)
		}
		names = sharded
	}
	for _, name := range names {
		start := time.Now()
		out, err := experiments.Run(name, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsibench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), out)
	}
	if cache != nil {
		fmt.Println(cache.Stats().Table().Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsibench:", err)
	os.Exit(1)
}

// runFuzz drives the seeded litmus fuzzer (internal/workload/fuzz.go):
// n random programs, each run under every protocol x fault-plan cell.
// Failures are minimized, persisted under outDir, and fail the process.
func runFuzz(n int, seed uint64, outDir string) error {
	rep, err := workload.Fuzz(n, seed, workload.FuzzOptions{
		OutDir: outDir,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("fuzz: %d programs, %d protocol x fault cells, %d failures\n",
		rep.Programs, rep.Runs, len(rep.Failures))
	if len(rep.Failures) == 0 {
		return nil
	}
	for _, f := range rep.Failures {
		fmt.Printf("fuzz FAIL %s/%s seed %016x (%d ops minimized): %s\n    replay: go run ./cmd/dsisim -replay %s\n",
			f.Protocol, f.Plan, f.Seed, f.MinOps, f.Err, f.Path)
	}
	return fmt.Errorf("%d failing litmus cells (specs in %s)", len(rep.Failures), outDir)
}

// shardSlice returns the shard's round-robin slice of names. Ownership is
// decided by soak.Shard.Owns — the same function that slices soak campaign
// cells — so every -shard fan-out in the tool partitions its index space
// identically. Round-robin (not contiguous) so the shards stay balanced
// when the artifact list is roughly sorted by cost.
func shardSlice(names []string, spec string) ([]string, error) {
	sh, err := soak.ParseShard(spec)
	if err != nil {
		return nil, fmt.Errorf("-shard %w", err)
	}
	var out []string
	for k, name := range names {
		if sh.Owns(k) {
			out = append(out, name)
		}
	}
	return out, nil
}

// soakOptions carries the -soak* flag values into runSoak.
type soakOptions struct {
	cells   int
	dur     time.Duration
	seed    uint64
	journal string
	resume  bool
	corpus  string
	workers int
	shard   soak.Shard
	cache   *dsisim.ResultCache
}

// runSoak drives one sitting of the default soak campaign. SIGINT/SIGTERM
// trigger a graceful drain: workers stop claiming cells, in-flight cells
// finish and are journaled, and the final checkpoint is flushed, so a
// Ctrl-C'd campaign resumes with -resume exactly where it stopped.
func runSoak(o soakOptions) error {
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "dsibench: %v: draining in-flight soak cells (repeat to kill)\n", s)
		close(stop)
		signal.Stop(sigc)
	}()
	defer signal.Stop(sigc)

	opts := soak.Options{
		Seed:      o.seed,
		Cache:     o.cache,
		Shard:     o.shard,
		MaxCells:  o.cells,
		Duration:  o.dur,
		Workers:   o.workers,
		Journal:   o.journal,
		Resume:    o.resume,
		Corpus:    o.corpus,
		Stop:      stop,
		Heartbeat: 10 * time.Second,
		Log:       os.Stderr,
	}
	start := time.Now()
	rep, err := soak.Run(opts)
	if err != nil {
		return err
	}
	fmt.Printf("soak: %d/%d owned cells verdicted (%d recovered, %d run this sitting, %d still pending), %d steals, %d triage reruns, %.1fs\n",
		rep.Recovered+rep.Ran, rep.Owned, rep.Recovered, rep.Ran, rep.Drained,
		rep.Steals, rep.Reruns, time.Since(start).Seconds())
	fmt.Println(soak.Aggregate(rep.Verdicts).Render())
	if o.cache != nil {
		fmt.Println(o.cache.Stats().Table().Render())
	}
	if rep.Failures == 0 {
		return nil
	}
	for _, v := range rep.Verdicts {
		if v.Status != soak.StatusFail {
			continue
		}
		fmt.Printf("soak FAIL cell %d %s/%s/%s seed %016x [%s]: %s\n",
			v.Cell, v.Workload, v.Protocol, v.Template, v.Seed, v.Class, v.Err)
		if v.Spec != "" {
			fmt.Printf("    replay: go run ./cmd/dsisim -replay %s\n", v.Spec)
		}
	}
	return fmt.Errorf("%d failing soak cells", rep.Failures)
}

// benchCell is one tracked (workload, protocol) benchmark configuration.
type benchCell struct {
	Workload string
	Protocol dsisim.Protocol
}

// parseBenchCells parses the -benchcells list: comma-separated
// workload:protocol pairs, e.g. "em3d:V,ocean:W+DSI".
func parseBenchCells(spec string) ([]benchCell, error) {
	var cells []benchCell
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		wl, proto, ok := strings.Cut(part, ":")
		if !ok || wl == "" || proto == "" {
			return nil, fmt.Errorf("-benchcells %q: want workload:protocol, e.g. em3d:V", part)
		}
		cells = append(cells, benchCell{Workload: wl, Protocol: dsisim.Protocol(proto)})
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("-benchcells %q: no cells", spec)
	}
	return cells, nil
}

// KernelBench is the JSON schema of -benchjson: one end-to-end measurement
// of the simulation kernel, comparable across commits.
type KernelBench struct {
	Workload   string `json:"workload"`
	Protocol   string `json:"protocol"`
	Processors int    `json:"processors"`
	Scale      string `json:"scale"`

	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`      // wall time per full simulation
	AllocsPerOp  int64   `json:"allocs_per_op"`  // heap allocations per full simulation
	BytesPerOp   int64   `json:"bytes_per_op"`   // heap bytes per full simulation
	EventsPerOp  uint64  `json:"events_per_op"`  // kernel events per simulation
	EventsPerSec float64 `json:"events_per_sec"` // simulation throughput

	SimCycles     int64  `json:"sim_cycles"`     // simulated time of one run
	PeakQueue     int    `json:"peak_queue"`     // max pending events
	AllocsAvoided uint64 `json:"allocs_avoided"` // typed/pooled events per run
	GoVersion     string `json:"go_version"`
}

// runKernelBench benchmarks repeated full simulations of each tracked cell
// with testing.Benchmark and writes the summary JSON (an array, one element
// per cell) to path, returning the measurements.
func runKernelBench(path string, cells []benchCell, procs int, paperScale bool, faults *dsisim.FaultConfig) ([]KernelBench, error) {
	scale := dsisim.ScaleTest
	scaleName := "test"
	if paperScale {
		scale = dsisim.ScalePaper
		scaleName = "paper"
	}
	out := make([]KernelBench, 0, len(cells))
	for _, cell := range cells {
		cfg := dsisim.Config{Workload: cell.Workload, Scale: scale, Protocol: cell.Protocol, Processors: procs, Faults: faults}

		// One priming run for the kernel counters (identical every
		// iteration: the simulation is deterministic).
		probe, err := dsisim.Run(cfg)
		if err != nil {
			return nil, err
		}

		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dsisim.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})

		m := KernelBench{
			Workload:      cell.Workload,
			Protocol:      string(cell.Protocol),
			Processors:    probeProcs(procs),
			Scale:         scaleName,
			Iterations:    r.N,
			NsPerOp:       float64(r.NsPerOp()),
			AllocsPerOp:   r.AllocsPerOp(),
			BytesPerOp:    r.AllocedBytesPerOp(),
			EventsPerOp:   probe.Kernel.Events,
			EventsPerSec:  float64(probe.Kernel.Events) / (float64(r.NsPerOp()) / 1e9),
			SimCycles:     int64(probe.TotalTime),
			PeakQueue:     probe.Kernel.PeakQueue,
			AllocsAvoided: probe.Kernel.AllocsAvoided(),
			GoVersion:     runtime.Version(),
		}
		fmt.Printf("kernel bench %s/%s: %d iter, %.2fms/op, %d allocs/op, %.0f events/sec\n",
			m.Workload, m.Protocol, r.N, m.NsPerOp/1e6, m.AllocsPerOp, m.EventsPerSec)
		out = append(out, m)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	fmt.Printf("kernel bench: %d cells -> %s\n", len(out), path)
	return out, nil
}

// checkBaseline compares fresh measurements cell-by-cell against the
// committed baseline JSON and fails on any cell whose ns/op regressed — or
// whose events/sec throughput dropped — beyond maxRegress (a fraction: 0.20
// tolerates 20%). Allocations are compared exactly — they are deterministic,
// so any increase is a real leak, not noise. Every baseline cell must be
// covered by a current measurement of the same (workload, protocol,
// processors, scale), or the comparison is meaningless and rejected.
func checkBaseline(cur []KernelBench, path string, maxRegress float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base []KernelBench
	if err := json.Unmarshal(data, &base); err != nil {
		// Pre-array baselines held a single object; accept it so the gate
		// still reads them and reports a cell mismatch instead of a parse
		// error.
		var one KernelBench
		if err2 := json.Unmarshal(data, &one); err2 != nil {
			return fmt.Errorf("baseline %s: %w", path, err)
		}
		base = []KernelBench{one}
	}
	if len(base) == 0 {
		return fmt.Errorf("baseline %s: no cells", path)
	}
	for _, b := range base {
		var c *KernelBench
		for i := range cur {
			if cur[i].Workload == b.Workload && cur[i].Protocol == b.Protocol &&
				cur[i].Processors == b.Processors && cur[i].Scale == b.Scale {
				c = &cur[i]
				break
			}
		}
		cellName := fmt.Sprintf("%s/%s/%dp/%s", b.Workload, b.Protocol, b.Processors, b.Scale)
		if c == nil {
			return fmt.Errorf("baseline %s tracks %s, which the current run did not measure (check -benchcells/-procs)",
				path, cellName)
		}
		ratio := c.NsPerOp / b.NsPerOp
		fmt.Printf("baseline %s: %.2fms/op, current %.2fms/op (%.2fx, tolerance %.2fx); %.0f -> %.0f events/sec\n",
			cellName, b.NsPerOp/1e6, c.NsPerOp/1e6, ratio, 1+maxRegress, b.EventsPerSec, c.EventsPerSec)
		if ratio > 1+maxRegress {
			return fmt.Errorf("%s: ns/op regressed %.1f%% (%.0f -> %.0f), tolerance %.0f%%",
				cellName, (ratio-1)*100, b.NsPerOp, c.NsPerOp, maxRegress*100)
		}
		if b.EventsPerSec > 0 && c.EventsPerSec < b.EventsPerSec*(1-maxRegress) {
			return fmt.Errorf("%s: events/sec dropped %.1f%% (%.0f -> %.0f), tolerance %.0f%%",
				cellName, (1-c.EventsPerSec/b.EventsPerSec)*100, b.EventsPerSec, c.EventsPerSec, maxRegress*100)
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			return fmt.Errorf("%s: allocs/op regressed: %d -> %d (allocations are deterministic; this is a leak, not noise)",
				cellName, b.AllocsPerOp, c.AllocsPerOp)
		}
	}
	return nil
}

// probeProcs normalizes the processor count the way machine.Config.Defaults
// does (0 means the paper's 32).
func probeProcs(n int) int {
	if n == 0 {
		return 32
	}
	return n
}

// runBlockStats simulates one workload with a coherence-event sink attached
// and prints the derived block-lifetime metrics.
func runBlockStats(wl, protocol string, procs, cacheBytes int, testScale bool, faults *dsisim.FaultConfig) error {
	scale := dsisim.ScalePaper
	if testScale {
		scale = dsisim.ScaleTest
	}
	sink := dsisim.NewCoherenceSink()
	res, err := dsisim.Run(dsisim.Config{
		Workload:   wl,
		Scale:      scale,
		Protocol:   dsisim.Protocol(protocol),
		Processors: procs,
		CacheBytes: cacheBytes,
		Sink:       sink,
		Faults:     faults,
	})
	if err != nil {
		return err
	}
	fmt.Printf("=== block lifetimes: %s / %s, %d procs ===\n", wl, protocol, probeProcs(procs))
	fmt.Printf("%d cycles simulated, %d coherence events\n\n", res.TotalTime, sink.Total())
	fmt.Print(res.Blocks.Render())
	return nil
}
