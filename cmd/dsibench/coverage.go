package main

import (
	"fmt"
	"os"

	"dsisim"
	"dsisim/internal/analysis/protomodel"
	"dsisim/internal/rng"
	"dsisim/internal/workload"
)

// runTransitionCoverage is the runtime half of the protomodel cross-check
// (docs/ANALYSIS.md §protomodel): it drives the paper workloads and a batch
// of fuzzer litmus programs — with and without injected faults — through
// machines with the coherence-event sink attached, folds every event stream
// into observed (controller, trigger, state) triples, and checks each
// against the statically extracted transition table. A violation means the
// running protocol took a transition the static model claims is impossible
// (or waived with //dsi:unreachable) — either the extractor or the waiver is
// wrong. Exit status is nonzero on any violation.
func runTransitionCoverage(modelPath string, procs, litmusN int) error {
	data, err := os.ReadFile(modelPath)
	if err != nil {
		return fmt.Errorf("reading static model (regenerate with `go run ./cmd/dsivet -run protomodel -model %s ./...`): %w", modelPath, err)
	}
	model, err := protomodel.Parse(data)
	if err != nil {
		return fmt.Errorf("%s: %w", modelPath, err)
	}
	cov, err := protomodel.NewCoverage(model)
	if err != nil {
		return err
	}

	fold := func(label string, run func(sink *dsisim.CoherenceSink) error) error {
		sink := dsisim.NewCoherenceSink()
		if err := run(sink); err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		cov.FoldSink(sink)
		return nil
	}

	// Every paper workload under the two main DSI hot paths, at the default
	// cache size and at one small enough to force capacity evictions (the
	// WB/Repl replacement transitions never fire otherwise at test scale).
	runs := 0
	for _, wl := range dsisim.PaperWorkloads() {
		for _, pr := range []dsisim.Protocol{dsisim.V, dsisim.WDSI} {
			for _, cacheBytes := range []int{0, 2048} {
				runs++
				label := fmt.Sprintf("%s/%s/cache=%d", wl, pr, cacheBytes)
				err := fold(label, func(sink *dsisim.CoherenceSink) error {
					_, err := dsisim.Run(dsisim.Config{
						Workload: wl, Scale: dsisim.ScaleTest, Protocol: pr,
						Processors: procs, CacheBytes: cacheBytes, Sink: sink,
					})
					return err
				})
				if err != nil {
					return err
				}
			}
		}
	}

	// One cheap workload under every protocol label, clean and faulty (the
	// fault plan enables the hardened protocol's Nack/timeout transitions).
	faults, err := dsisim.ParseFaults("drop=0.05,dup=0.02,delay=0.1,jitter=32,seed=7")
	if err != nil {
		return err
	}
	for _, pr := range dsisim.Protocols() {
		for _, fc := range []*dsisim.FaultConfig{nil, &faults} {
			runs++
			label := fmt.Sprintf("prodcons/%s", pr)
			err := fold(label, func(sink *dsisim.CoherenceSink) error {
				_, err := dsisim.Run(dsisim.Config{
					Workload: "prodcons", Scale: dsisim.ScaleTest, Protocol: pr,
					Processors: probeProcs(procs), Sink: sink, Faults: fc,
				})
				return err
			})
			if err != nil {
				return err
			}
		}
	}

	// Fuzzer litmus programs across the full protocol x fault-plan matrix.
	seeds := rng.New(0xc07e4a6e)
	for i := 0; i < litmusN; i++ {
		spec := workload.GenLitmus(seeds.Uint64())
		for _, pr := range workload.FuzzProtocols() {
			for _, plan := range workload.FuzzFaultPlans() {
				runs++
				label := fmt.Sprintf("litmus-%x/%s/%s", spec.Seed, pr.Name, plan.Name)
				err := fold(label, func(sink *dsisim.CoherenceSink) error {
					return workload.RunLitmusObserved(spec, pr, plan, sink)
				})
				if err != nil {
					return err
				}
			}
		}
	}

	sum := cov.Summarize()
	fmt.Printf("%s (%d runs against %s)\n", sum, runs, modelPath)
	for _, m := range cov.Missing() {
		fmt.Printf("  unexercised: %s\n", m)
	}
	if vs := cov.Violations(); len(vs) > 0 {
		for _, v := range vs {
			fmt.Printf("  VIOLATION: %s observed %d time(s) but not in the static model\n", v.Observed, v.Count)
		}
		return fmt.Errorf("%d observed transition(s) outside the static model", len(vs))
	}
	return nil
}
