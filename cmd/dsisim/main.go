// Command dsisim runs one simulation and prints a detailed report: timing
// breakdown per the paper's Figure 3 categories, message counts by kind,
// and DSI activity.
//
// Usage:
//
//	dsisim -workload em3d -protocol V [-procs 32] [-cachebytes 262144] [-latency 100] [-test]
//	dsisim -replay spec.json
//
// -cache runs the cell twice through a content-addressed result cache
// (budget -cachemb): once computed, once memoized. The two results must be
// bit-identical — the command fails otherwise — and the cache counters are
// printed, making the flag a quick self-check of the memoization layer.
//
// -replay loads a persisted failure spec and re-runs it. Two formats are
// accepted, distinguished by sniffing the JSON: a bare litmus spec from the
// fuzzer (`dsibench -fuzz`, internal/workload/fuzz.go) is re-run under
// every protocol × fault-plan combination, and a soak-farm spec
// (`dsibench -soak`, internal/soak — marked by its "soak" version field)
// is re-run exactly as its campaign cell ran: same workload, protocol,
// fault plan, and seeds. The exit status is nonzero if any cell fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"

	"dsisim"
	"dsisim/internal/netsim"
	"dsisim/internal/soak"
	"dsisim/internal/stats"
	"dsisim/internal/workload"
)

func main() {
	wl := flag.String("workload", "em3d", "workload: "+strings.Join(dsisim.Workloads(), " "))
	protoLabel := flag.String("protocol", "SC", "protocol: SC W S V V-FIFO S-FIFO W+DSI W+DSI-S")
	procs := flag.Int("procs", 32, "simulated processors")
	cacheBytes := flag.Int("cachebytes", 256*1024, "simulated cache size per node in bytes")
	useCache := flag.Bool("cache", false, "memoize through a content-addressed result cache and verify the hit is bit-identical")
	cacheMB := flag.Int64("cachemb", 256, "result-cache budget in MiB (with -cache)")
	latency := flag.Int64("latency", 100, "network latency in cycles")
	testScale := flag.Bool("test", false, "use tiny test-scale inputs")
	faults := flag.String("faults", "", "fault-injection spec, e.g. drop=0.01,dup=0.005,seed=7 (see docs/FAULTS.md)")
	replay := flag.String("replay", "", "replay a persisted failure spec: a fuzzer litmus spec (every protocol x fault plan) or a soak-farm spec (its exact campaign cell)")
	flag.Parse()

	if *replay != "" {
		if err := runReplay(*replay); err != nil {
			fmt.Fprintln(os.Stderr, "dsisim:", err)
			os.Exit(1)
		}
		return
	}

	cfg := dsisim.Config{
		Workload:       *wl,
		Protocol:       dsisim.Protocol(*protoLabel),
		Processors:     *procs,
		CacheBytes:     *cacheBytes,
		NetworkLatency: *latency,
	}
	if *testScale {
		cfg.Scale = dsisim.ScaleTest
	}
	if *faults != "" {
		fc, err := dsisim.ParseFaults(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsisim:", err)
			os.Exit(1)
		}
		cfg.Faults = &fc
	}
	var cache *dsisim.ResultCache
	if *useCache {
		cache = dsisim.NewResultCache(*cacheMB << 20)
		cfg.Cache = cache
	}
	res, err := dsisim.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsisim:", err)
		os.Exit(1)
	}
	if cache != nil {
		// Second pass: must be served from memory, bit-identical.
		memo, err := dsisim.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsisim:", err)
			os.Exit(1)
		}
		if !reflect.DeepEqual(res, memo) {
			fmt.Fprintln(os.Stderr, "dsisim: memoized result differs from computed result")
			os.Exit(1)
		}
		s := cache.Stats()
		if s.Hits != 1 || s.Misses != 1 {
			fmt.Fprintf(os.Stderr, "dsisim: cache self-check expected 1 hit / 1 miss, got %d / %d\n", s.Hits, s.Misses)
			os.Exit(1)
		}
	}

	fmt.Printf("workload   %s\nprotocol   %s\nprocessors %d\ncache      %d bytes, 4-way, 32-byte blocks\nnetwork    %d cycles\n\n",
		*wl, *protoLabel, *procs, *cacheBytes, *latency)
	fmt.Printf("execution time (measured region): %d cycles\n", res.ExecTime)
	fmt.Printf("total time (with initialization): %d cycles\n", res.TotalTime)
	fmt.Printf("barrier episodes: %d\n\n", res.Barriers)

	bt := stats.Table{Title: "cycle breakdown (all processors)", Header: []string{"category", "cycles", "share"}}
	for _, c := range stats.Categories() {
		v := res.Breakdown.Cycles[c]
		if v == 0 {
			continue
		}
		bt.AddRow(c.String(), fmt.Sprint(v), stats.Pct(res.Breakdown.Share(c)))
	}
	fmt.Println(bt.Render())

	mt := stats.Table{Title: "network messages (measured region)", Header: []string{"kind", "count"}}
	type kv struct {
		k netsim.Kind
		v int64
	}
	var kinds []kv
	for k, v := range res.Messages.ByKind {
		if v > 0 {
			kinds = append(kinds, kv{netsim.Kind(k), v})
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].v > kinds[j].v })
	for _, e := range kinds {
		mt.AddRow(e.k.String(), fmt.Sprint(e.v))
	}
	mt.AddRow("TOTAL", fmt.Sprint(res.Messages.Total()))
	mt.AddRow("invalidation-class", fmt.Sprint(res.Messages.Invalidation()))
	fmt.Println(mt.Render())

	var si, tear, flushes int64
	for _, cs := range res.Cache {
		si += cs.SIReceived
		tear += cs.TearOffRecv
		flushes += cs.SyncFlushes
	}
	fmt.Printf("DSI activity: %d marked blocks received (%d tear-off), %d sync flushes, %d FIFO displacements\n",
		si, tear, flushes, res.FIFODisplacements)

	if cfg.Faults != nil {
		f := res.Faults
		var timeouts, retries, nacks int64
		for _, cs := range res.Cache {
			timeouts += cs.Timeouts
			retries += cs.Retries
			nacks += cs.NacksRecv
		}
		for _, ds := range res.Dir {
			timeouts += ds.Timeouts
			retries += ds.RetriesSent
		}
		fmt.Printf("faults: %d dropped, %d duplicated, %d delayed (%d converted, %d scripted) over %d decisions\n",
			f.Dropped, f.Duplicated, f.Delayed, f.Converted, f.Scripted, f.Decisions)
		fmt.Printf("recovery: %d timeouts, %d retransmissions, %d NACKs\n", timeouts, retries, nacks)
	}

	if cache != nil {
		fmt.Println()
		fmt.Println(cache.Stats().Table().Render())
		fmt.Println("cache self-check: memoized result bit-identical to computed result")
	}
}

// runReplay re-runs a persisted failure spec: soak-farm specs replay their
// exact campaign cell; bare litmus specs sweep the fuzzer's full protocol ×
// fault-plan matrix.
func runReplay(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if soak.IsSpec(data) {
		return runSoakReplay(path)
	}
	spec, err := workload.LoadLitmus(path)
	if err != nil {
		return err
	}
	fmt.Printf("litmus spec %s: seed %016x, %d procs, %d blocks, %d rounds, %d ops\n",
		path, spec.Seed, spec.Procs, spec.Blocks, spec.Rounds, len(spec.Ops))
	for _, op := range spec.Ops {
		fmt.Printf("  p%d r%d %-7s", op.Proc, op.Round, op.Kind)
		if op.Kind == workload.LitmusLockInc {
			fmt.Println()
		} else if op.Kind == workload.LitmusWrite {
			fmt.Printf(" block %d <- %d\n", op.Block, op.Value)
		} else {
			fmt.Printf(" block %d\n", op.Block)
		}
	}
	failures := 0
	for _, pr := range workload.FuzzProtocols() {
		for _, plan := range workload.FuzzFaultPlans() {
			if err := workload.RunLitmus(spec, pr, plan); err != nil {
				failures++
				fmt.Printf("FAIL %-6s %-7s %v\n", pr.Name, plan.Name, err)
			} else {
				fmt.Printf("ok   %-6s %-7s\n", pr.Name, plan.Name)
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d failing cells", failures)
	}
	return nil
}

// runSoakReplay re-runs one soak-farm spec exactly as its campaign cell ran.
func runSoakReplay(path string) error {
	spec, err := soak.LoadSpec(path)
	if err != nil {
		return err
	}
	fmt.Printf("soak spec %s: %s under %s, template %s, seed %016x",
		path, spec.Workload, spec.Protocol, spec.Template, spec.Seed)
	if spec.Litmus != nil {
		fmt.Printf(", %d litmus ops", len(spec.Litmus.Ops))
	}
	if spec.Faults != nil {
		fmt.Printf(", %d fault rules", len(spec.Faults.Rules))
	}
	fmt.Println()
	if spec.Err != "" {
		fmt.Printf("  pinned failure: %s\n", spec.Err)
	}
	if err := spec.Replay(); err != nil {
		fmt.Printf("FAIL %v\n", err)
		return fmt.Errorf("soak spec still fails")
	}
	fmt.Println("ok   cell replays clean")
	return nil
}
