// Tear-off blocks: the §5.3 experiment in miniature. Under weak
// consistency, DSI can hand shared copies out untracked ("tear-off"), so a
// later write needs neither invalidations nor acknowledgments. This example
// runs the broadcast-heavy sparse workload under W and W+DSI and breaks the
// message savings down by kind.
//
//	go run ./examples/teardown
package main

import (
	"fmt"
	"log"

	"dsisim"
	"dsisim/internal/netsim"
)

func main() {
	run := func(p dsisim.Protocol) dsisim.Result {
		res, err := dsisim.Run(dsisim.Config{
			Workload:   "sparse",
			Protocol:   p,
			Processors: 16,
			Scale:      dsisim.ScaleTest,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	w := run(dsisim.W)
	dsi := run(dsisim.WDSI)

	fmt.Println("sparse, 16 processors: weak consistency vs weak consistency + DSI (tear-off)")
	fmt.Printf("\n%-12s %10s %10s %10s\n", "kind", "W", "W+DSI", "saved")
	for k := netsim.Kind(0); k < netsim.NumKinds; k++ {
		a, b := w.Messages.ByKind[k], dsi.Messages.ByKind[k]
		if a == 0 && b == 0 {
			continue
		}
		fmt.Printf("%-12s %10d %10d %10d\n", k, a, b, a-b)
	}
	fmt.Printf("%-12s %10d %10d %10d\n", "TOTAL", w.Messages.Total(), dsi.Messages.Total(),
		w.Messages.Total()-dsi.Messages.Total())
	fmt.Printf("\ninvalidation messages eliminated: %d of %d (%.0f%%)\n",
		w.Messages.Invalidation()-dsi.Messages.Invalidation(), w.Messages.Invalidation(),
		100*float64(w.Messages.Invalidation()-dsi.Messages.Invalidation())/float64(w.Messages.Invalidation()))
	fmt.Printf("execution time: %d -> %d cycles\n", w.ExecTime, dsi.ExecTime)

	var tear int64
	for _, cs := range dsi.Cache {
		tear += cs.TearOffRecv
	}
	fmt.Printf("tear-off copies granted: %d (invalidated silently at sync points)\n", tear)
}
