// Protocol comparison: run one workload under every protocol configuration
// the paper evaluates and print the Figure 3-style normalized times next
// to message counts — a one-workload slice of the full reproduction.
//
//	go run ./examples/protocols [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"dsisim"
)

func main() {
	workload := "sparse" // the paper's best case for DSI
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}

	var base dsisim.Result
	fmt.Printf("%s on 16 processors (test scale), 100-cycle network\n\n", workload)
	fmt.Printf("%-8s %12s %10s %10s %8s\n", "protocol", "cycles", "norm", "messages", "inval")
	for i, p := range dsisim.Protocols() {
		res, err := dsisim.Run(dsisim.Config{
			Workload:   workload,
			Protocol:   p,
			Processors: 16,
			Scale:      dsisim.ScaleTest,
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res
		}
		fmt.Printf("%-8s %12d %10.2f %10d %8d\n",
			p, res.ExecTime,
			float64(res.ExecTime)/float64(base.ExecTime),
			res.Messages.Total(), res.Messages.Invalidation())
	}
	fmt.Println("\nSC=sequential consistency, W=weak consistency, S/V=DSI by states/versions,")
	fmt.Println("*-FIFO=64-entry FIFO self-invalidation, W+DSI*=weak consistency with tear-off blocks")
}
