// Quickstart: simulate one of the paper's workloads under the base
// sequentially consistent protocol and under DSI with version numbers, and
// show what self-invalidation removed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dsisim"
)

func main() {
	base := dsisim.Config{
		Workload:   "em3d",
		Protocol:   dsisim.SC,
		Processors: 16,
		Scale:      dsisim.ScaleTest, // keep the example snappy
	}

	sc, err := dsisim.Run(base)
	if err != nil {
		log.Fatal(err)
	}

	withDSI := base
	withDSI.Protocol = dsisim.V // SC + DSI with 4-bit version numbers
	v, err := dsisim.Run(withDSI)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("em3d on a 16-processor machine, 100-cycle network")
	fmt.Printf("  SC        : %8d cycles, %5d messages (%d invalidation-class)\n",
		sc.ExecTime, sc.Messages.Total(), sc.Messages.Invalidation())
	fmt.Printf("  SC + DSI  : %8d cycles, %5d messages (%d invalidation-class)\n",
		v.ExecTime, v.Messages.Total(), v.Messages.Invalidation())
	fmt.Printf("  speedup   : %.2fx; invalidation messages eliminated: %d\n",
		float64(sc.ExecTime)/float64(v.ExecTime),
		sc.Messages.Invalidation()-v.Messages.Invalidation())

	var marked int64
	for _, cs := range v.Cache {
		marked += cs.SIReceived
	}
	fmt.Printf("  DSI marked %d blocks for self-invalidation across all caches\n", marked)
}
