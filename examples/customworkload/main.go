// Custom workload: implement the dsisim.Program interface to simulate your
// own sharing pattern. This example builds two programs and compares the
// base protocol against DSI on each:
//
//   - workQueue: one producer enqueues tasks under a lock, all consumers
//     dequeue and process them.
//
//   - zipfFeed: a zipfian-popularity feed — a hot writer republishes the
//     most popular blocks each round while every processor reads blocks
//     drawn from the same skewed distribution (the CDN/feed-invalidation
//     analogy of DSI; the registry's "zipf" workload is the scaled-up,
//     parameterized version of this pattern — see docs/WORKLOADS.md §3).
//
//     go run ./examples/customworkload
package main

import (
	"fmt"
	"log"
	"math"

	"dsisim"
)

// workQueue is a lock-protected task queue: head/tail indices and a task
// array, all in simulated shared memory.
type workQueue struct {
	tasks int

	lock  dsisim.Region
	meta  dsisim.Region // word 0 of block 0: next task index
	items dsisim.Region
}

// Name implements dsisim.Program.
func (w *workQueue) Name() string { return "workqueue" }

// WarmupBarriers implements dsisim.Program.
func (w *workQueue) WarmupBarriers() int { return 1 }

// Setup implements dsisim.Program: allocate the queue in simulated memory.
func (w *workQueue) Setup(m *dsisim.Machine) {
	l := m.Layout()
	w.lock = l.AllocInterleaved("wq.lock", dsisim.BlockSize)
	w.meta = l.AllocInterleaved("wq.meta", dsisim.BlockSize)
	w.items = l.AllocInterleaved("wq.items", uint64(w.tasks)*dsisim.BlockSize)
}

// Kernel implements dsisim.Program: processor 0 publishes the tasks; then
// everyone races to claim and process them.
func (w *workQueue) Kernel(p *dsisim.Proc) {
	if p.ID() == 0 {
		for i := 0; i < w.tasks; i++ {
			p.WriteWord(w.items.Addr(uint64(i)*dsisim.BlockSize), uint64(i+1))
		}
	}
	p.Barrier() // publication visible; end of warm-up

	claimed := 0
	for {
		p.Lock(w.lock.Addr(0))
		next := p.Read(w.meta.Addr(0)).Word
		if next < uint64(w.tasks) {
			p.WriteWord(w.meta.Addr(0), next+1)
		}
		p.Unlock(w.lock.Addr(0))
		if next >= uint64(w.tasks) {
			break
		}
		// Process the claimed task: read its payload, compute on it.
		v := p.Read(w.items.Addr(next * dsisim.BlockSize))
		p.Assert(v.Word == next+1, "task %d payload %d", next, v.Word)
		p.Compute(200)
		claimed++
	}
	p.Barrier()
}

// zipfFeed is a zipfian-popularity feed: blocks are "articles" whose read
// popularity follows rank^-skew. Processor 0 is the hot writer — each round
// it republishes the top few articles — and every processor (writer
// included) reads articles sampled from the skewed distribution. Reads
// concentrate on exactly the blocks the writer keeps dirtying, so the
// invalidation traffic DSI targets dominates; the example is deterministic
// because sampling uses a fixed-seed splitmix64 stream per processor.
type zipfFeed struct {
	blocks int     // catalog size
	hot    int     // articles republished per round
	rounds int     // publish/read rounds, barrier-separated
	reads  int     // zipf-sampled reads per processor per round
	skew   float64 // zipf exponent
	seed   uint64
	feed   dsisim.Region
	cdf    []float64
}

// Name implements dsisim.Program.
func (z *zipfFeed) Name() string { return "zipffeed" }

// WarmupBarriers implements dsisim.Program.
func (z *zipfFeed) WarmupBarriers() int { return 1 }

// Setup implements dsisim.Program: allocate the catalog and precompute the
// popularity CDF (rank r gets weight (r+1)^-skew).
func (z *zipfFeed) Setup(m *dsisim.Machine) {
	z.feed = m.Layout().AllocInterleaved("feed", uint64(z.blocks)*dsisim.BlockSize)
	z.cdf = make([]float64, z.blocks)
	sum := 0.0
	for r := 0; r < z.blocks; r++ {
		sum += math.Pow(float64(r+1), -z.skew)
		z.cdf[r] = sum
	}
	for r := range z.cdf {
		z.cdf[r] /= sum
	}
}

// Kernel implements dsisim.Program.
func (z *zipfFeed) Kernel(p *dsisim.Proc) {
	rng := splitmix{state: z.seed ^ uint64(p.ID())*0x9e3779b97f4a7c15}
	if p.ID() == 0 {
		for b := 0; b < z.blocks; b++ {
			p.WriteWord(z.feed.Addr(uint64(b)*dsisim.BlockSize), 1)
		}
	}
	p.Barrier() // catalog published; end of warm-up

	for round := 0; round < z.rounds; round++ {
		if p.ID() == 0 {
			// Republish the hottest articles: new version, same blocks.
			for b := 0; b < z.hot; b++ {
				addr := z.feed.Addr(uint64(b) * dsisim.BlockSize)
				p.WriteWord(addr, p.Read(addr).Word+1)
			}
		}
		for i := 0; i < z.reads; i++ {
			b := z.sample(&rng)
			v := p.Read(z.feed.Addr(uint64(b) * dsisim.BlockSize))
			p.Assert(v.Word >= 1, "article %d never published (read %d)", b, v.Word)
			p.Compute(20)
		}
		p.Barrier()
	}
}

// sample draws a block index from the precomputed zipf CDF.
func (z *zipfFeed) sample(r *splitmix) int {
	u := float64(r.next()>>11) / float64(1<<53)
	lo, hi := 0, z.blocks-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// splitmix is a tiny deterministic PRNG so the example needs no imports
// beyond the standard library (simulation code proper uses internal/rng).
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func main() {
	programs := []dsisim.Program{
		&workQueue{tasks: 64},
		&zipfFeed{blocks: 64, hot: 4, rounds: 6, reads: 24, skew: 1.1, seed: 0x5eed},
	}
	for _, prog := range programs {
		fmt.Printf("%s:\n", prog.Name())
		for _, protocol := range []dsisim.Protocol{dsisim.SC, dsisim.V, dsisim.WDSI} {
			res, err := dsisim.RunProgram(dsisim.Config{
				Protocol:   protocol,
				Processors: 8,
			}, prog)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-5s: %7d cycles, %4d messages, %3d invalidation-class\n",
				protocol, res.ExecTime, res.Messages.Total(), res.Messages.Invalidation())
		}
	}
}
