// Custom workload: implement the dsisim.Program interface to simulate your
// own sharing pattern. This example builds a work-queue program — one
// producer enqueues tasks under a lock, all consumers dequeue and process
// them — and compares the base protocol against DSI.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"dsisim"
)

// workQueue is a lock-protected task queue: head/tail indices and a task
// array, all in simulated shared memory.
type workQueue struct {
	tasks int

	lock  dsisim.Region
	meta  dsisim.Region // word 0 of block 0: next task index
	items dsisim.Region
}

// Name implements dsisim.Program.
func (w *workQueue) Name() string { return "workqueue" }

// WarmupBarriers implements dsisim.Program.
func (w *workQueue) WarmupBarriers() int { return 1 }

// Setup implements dsisim.Program: allocate the queue in simulated memory.
func (w *workQueue) Setup(m *dsisim.Machine) {
	l := m.Layout()
	w.lock = l.AllocInterleaved("wq.lock", dsisim.BlockSize)
	w.meta = l.AllocInterleaved("wq.meta", dsisim.BlockSize)
	w.items = l.AllocInterleaved("wq.items", uint64(w.tasks)*dsisim.BlockSize)
}

// Kernel implements dsisim.Program: processor 0 publishes the tasks; then
// everyone races to claim and process them.
func (w *workQueue) Kernel(p *dsisim.Proc) {
	if p.ID() == 0 {
		for i := 0; i < w.tasks; i++ {
			p.WriteWord(w.items.Addr(uint64(i)*dsisim.BlockSize), uint64(i+1))
		}
	}
	p.Barrier() // publication visible; end of warm-up

	claimed := 0
	for {
		p.Lock(w.lock.Addr(0))
		next := p.Read(w.meta.Addr(0)).Word
		if next < uint64(w.tasks) {
			p.WriteWord(w.meta.Addr(0), next+1)
		}
		p.Unlock(w.lock.Addr(0))
		if next >= uint64(w.tasks) {
			break
		}
		// Process the claimed task: read its payload, compute on it.
		v := p.Read(w.items.Addr(next * dsisim.BlockSize))
		p.Assert(v.Word == next+1, "task %d payload %d", next, v.Word)
		p.Compute(200)
		claimed++
	}
	p.Barrier()
}

func main() {
	for _, protocol := range []dsisim.Protocol{dsisim.SC, dsisim.V} {
		res, err := dsisim.RunProgram(dsisim.Config{
			Protocol:   protocol,
			Processors: 8,
		}, &workQueue{tasks: 64})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s: %7d cycles, %4d messages, %3d invalidation-class\n",
			protocol, res.ExecTime, res.Messages.Total(), res.Messages.Invalidation())
	}
}
