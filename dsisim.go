// Package dsisim is a from-scratch reproduction of "Dynamic
// Self-Invalidation: Reducing Coherence Overhead in Shared-Memory
// Multiprocessors" (Lebeck & Wood, ISCA 1995): an execution-driven
// simulator of a directory-based write-invalidate multiprocessor with the
// paper's DSI extensions — identification by additional directory states or
// 4-bit version numbers, self-invalidation by FIFO buffer or
// flush-at-synchronization, and untracked tear-off blocks under weak
// consistency.
//
// The package is the public facade: configure a simulated machine, pick a
// workload (the paper's five applications are built in) or supply your own
// kernel, and Run it:
//
//	res, err := dsisim.Run(dsisim.Config{
//	    Workload: "em3d",
//	    Protocol: dsisim.V, // SC + DSI with version numbers
//	})
//
// Protocol labels follow the paper's figures: SC (base sequential
// consistency), W (weak consistency with a 16-entry coalescing write
// buffer), S (SC + DSI using additional states), V (SC + DSI using version
// numbers), VFIFO (V with a 64-entry FIFO instead of flush-at-sync), and
// WDSI (W + DSI with tear-off blocks).
//
// Any run can additionally record a protocol-level coherence trace: attach
// a CoherenceSink via Config.Sink and the simulation emits one structured
// event per protocol message, state transition, and self-invalidation,
// derives per-block lifetime metrics onto Result.Blocks, and exports the
// stream as Chrome trace_event JSON (CoherenceSink.WriteChrome) or
// filtered text (CoherenceSink.WriteText). A nil sink costs nothing and
// an attached sink never changes simulated timing; docs/OBSERVABILITY.md
// documents the event schema.
package dsisim

import (
	"fmt"

	"dsisim/internal/core"
	"dsisim/internal/cpu"
	"dsisim/internal/event"
	"dsisim/internal/faultinj"
	"dsisim/internal/machine"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
	"dsisim/internal/obs"
	"dsisim/internal/proto"
	"dsisim/internal/simcache"
	"dsisim/internal/stats"
	"dsisim/internal/workload"
)

// Protocol selects one of the paper's protocol configurations.
type Protocol string

// The protocols evaluated in the paper, labeled as in its figures.
const (
	// SC is the base sequentially consistent full-map protocol.
	SC Protocol = "SC"
	// W is weak consistency with a 16-entry coalescing write buffer.
	W Protocol = "W"
	// S is SC plus DSI identified by additional directory states,
	// self-invalidating at synchronization operations.
	S Protocol = "S"
	// V is SC plus DSI identified by 4-bit version numbers,
	// self-invalidating at synchronization operations.
	V Protocol = "V"
	// VFIFO is V with the 64-entry FIFO self-invalidation mechanism.
	VFIFO Protocol = "V-FIFO"
	// SFIFO is S with the 64-entry FIFO self-invalidation mechanism.
	SFIFO Protocol = "S-FIFO"
	// WDSI is W plus DSI (version numbers) with tear-off blocks.
	WDSI Protocol = "W+DSI"
	// WDSIStates is W plus DSI (additional states) with tear-off blocks.
	WDSIStates Protocol = "W+DSI-S"
	// VTearOff is V with sequentially consistent tear-off blocks (§3.3: at
	// most one per cache, invalidated at the next miss).
	VTearOff Protocol = "V-TO"
	// VHistory is SC with cache-side identification only (§3.1): each cache
	// marks re-fetched blocks from its own invalidation history; the
	// directory runs the unmodified base protocol.
	VHistory Protocol = "HIST"
	// VNaive is V with the naive sequential-scan flush (the §4.2 strawman
	// the flash-clear/linked-list circuits improve on).
	VNaive Protocol = "V-naive"
	// MIG is SC with the adaptive migratory-sharing optimization (the
	// related-work baseline the paper calls complementary): reads of
	// migrating blocks are granted exclusive.
	MIG Protocol = "MIG"
	// MIGV combines migratory detection with V — the complementary
	// composition §2 of the paper suggests.
	MIGV Protocol = "MIG+V"
)

// Protocols returns every defined protocol label.
func Protocols() []Protocol {
	return []Protocol{SC, W, S, V, VFIFO, SFIFO, WDSI, WDSIStates, VTearOff, VHistory, VNaive, MIG, MIGV}
}

// FIFOEntries is the self-invalidation FIFO capacity the paper evaluates.
const FIFOEntries = 64

// policyFor translates a protocol label into machine configuration pieces.
func policyFor(p Protocol) (proto.Consistency, core.Policy, error) {
	fifo := func() core.Mechanism { return core.NewFIFO(FIFOEntries) }
	switch p {
	case SC:
		return proto.SC, core.Policy{}, nil
	case W:
		return proto.WC, core.Policy{}, nil
	case S:
		return proto.SC, core.Policy{Identifier: core.States{}, UpgradeExemption: true}, nil
	case V:
		return proto.SC, core.Policy{Identifier: core.Versions{}, UpgradeExemption: true}, nil
	case VFIFO:
		return proto.SC, core.Policy{Identifier: core.Versions{}, NewMechanism: fifo, UpgradeExemption: true}, nil
	case SFIFO:
		return proto.SC, core.Policy{Identifier: core.States{}, NewMechanism: fifo, UpgradeExemption: true}, nil
	case WDSI:
		return proto.WC, core.Policy{Identifier: core.Versions{}, TearOff: true}, nil
	case WDSIStates:
		return proto.WC, core.Policy{Identifier: core.States{}, TearOff: true}, nil
	case VTearOff:
		return proto.SC, core.Policy{Identifier: core.Versions{}, SCTearOff: true, UpgradeExemption: true}, nil
	case VHistory:
		return proto.SC, core.Policy{NewHistory: func() *core.InvalHistory { return core.NewInvalHistory(64, 2) }}, nil
	case VNaive:
		return proto.SC, core.Policy{
			Identifier:       core.Versions{},
			NewMechanism:     func() core.Mechanism { return core.NaiveFlush{} },
			UpgradeExemption: true,
		}, nil
	case MIG:
		return proto.SC, core.Policy{Migratory: true}, nil
	case MIGV:
		return proto.SC, core.Policy{Migratory: true, Identifier: core.Versions{}, UpgradeExemption: true}, nil
	default:
		return 0, core.Policy{}, fmt.Errorf("dsisim: unknown protocol %q", p)
	}
}

// Scale selects workload input sizes.
type Scale = workload.Scale

// Workload scales.
const (
	// ScalePaper is the evaluation size (scaled from the paper's inputs).
	ScalePaper = workload.ScalePaper
	// ScaleTest is a small size for fast tests.
	ScaleTest = workload.ScaleTest
)

// Config describes one simulation.
type Config struct {
	// Workload names a built-in workload (see Workloads). Leave empty when
	// calling RunProgram with a custom program.
	Workload string
	// Scale selects the workload input size (default ScalePaper).
	Scale Scale
	// Protocol is the paper-style label (default SC).
	Protocol Protocol
	// Processors defaults to the paper's 32.
	Processors int
	// CacheBytes defaults to 256 KiB; CacheAssoc to 4-way.
	CacheBytes int
	CacheAssoc int
	// NetworkLatency defaults to the paper's 100 cycles.
	NetworkLatency int64
	// Seed perturbs processor-private randomness (default fixed).
	Seed uint64
	// MaxSteps bounds simulation length (watchdog); 0 means default.
	MaxSteps uint64
	// Workers selects the execution engine: 1 (default) is the serial event
	// loop every shipped experiment uses; >= 2 enables the deterministic
	// parallel delivery engine, which partitions the machine by node and
	// runs up to Workers partitions concurrently in conservative lookahead
	// windows. All Workers >= 2 settings produce bit-identical results;
	// they differ from Workers == 1 in timing details (see DESIGN.md
	// §5). Ignored (forced to 1) when a Sink is attached.
	Workers int
	// Sink, if set, records the run's coherence-event stream and derives the
	// Result's Blocks metrics (see NewCoherenceSink). A nil sink costs
	// nothing: the simulation runs its usual allocation-free steady state.
	Sink *CoherenceSink
	// Faults, if set and non-trivial, installs a deterministic
	// fault-injection plan on the interconnect: probabilistic drops,
	// duplications, and delays plus scripted per-message faults, all drawn
	// from the plan's own seeded stream (see ParseFaults and docs/FAULTS.md).
	// An active plan automatically enables the hardened protocol —
	// per-transaction timeouts, bounded retransmission with exponential
	// backoff, and NACK handling — so every run still terminates and passes
	// the coherence audit. A nil (or zero) Faults costs nothing.
	Faults *FaultConfig
	// Cache, if set, memoizes Results by the run's canonical content
	// address (workload, scale, protocol, machine parameters, fault plan,
	// seed): a repeated configuration is served from memory, bit-identical
	// to a fresh simulation. The handle is caller-owned, so one cache can
	// span many Run calls (see NewResultCache). Runs with a Sink attached
	// bypass the cache — recording is a side effect a memoized result
	// cannot replay — as do custom programs via RunProgram (no canonical
	// key). A nil Cache simulates every run.
	Cache *ResultCache
}

// ResultCache is a content-addressed, byte-budgeted LRU store of simulation
// Results with singleflight deduplication of concurrent identical requests
// (internal/simcache). Attach one via Config.Cache.
type ResultCache = simcache.Cache

// NewResultCache builds a result cache that holds at most budgetBytes of
// cached Results (<= 0 means unbounded).
func NewResultCache(budgetBytes int64) *ResultCache { return simcache.New(budgetBytes) }

// FaultConfig describes a deterministic fault-injection plan. The zero value
// injects nothing.
type FaultConfig = faultinj.Config

// FaultRule is one scripted fault ("drop the 3rd Inv from home 0 to node 7").
type FaultRule = faultinj.Rule

// FaultStats counts the fault decisions a run's plan made (Result.Faults).
type FaultStats = faultinj.Stats

// Fault actions for FaultRule.Action.
const (
	// FaultDrop discards the message (delivery never happens).
	FaultDrop = faultinj.Drop
	// FaultDuplicate delivers a second copy after a bounded spacing.
	FaultDuplicate = faultinj.Duplicate
	// FaultDelay adds bounded extra latency to the delivery.
	FaultDelay = faultinj.Delay
)

// ParseFaults builds a FaultConfig from a comma-separated spec string, e.g.
//
//	drop=0.05,dup=0.01,delay=0.2,jitter=40,seed=7
//	dropkind=Inv:0.5,droplink=2-5:0.25
//
// Message-kind names in dropkind (Inv, GetX, DataS, ...) resolve through the
// interconnect's kind table. An empty spec yields the zero FaultConfig.
func ParseFaults(spec string) (FaultConfig, error) {
	return faultinj.Parse(spec, func(name string) (int, bool) {
		k, ok := netsim.ParseKind(name)
		return int(k), ok
	})
}

// Result is the outcome of one simulation run.
type Result = machine.Result

// CoherenceSink records one structured event per protocol message, state
// transition, self-invalidation, FIFO displacement, and tear-off grant, and
// derives per-block lifetime metrics from the stream. Attach one via
// Config.Sink, then export with WriteChrome (Chrome trace_event JSON for
// chrome://tracing / Perfetto) or WriteText, or read Metrics. See
// docs/OBSERVABILITY.md for the event schema.
type CoherenceSink = obs.Sink

// CoherenceEvent is one recorded coherence event.
type CoherenceEvent = obs.Event

// CoherenceFilter selects a subset of a recorded event stream for
// CoherenceSink.WriteText.
type CoherenceFilter = obs.Filter

// BlockMetrics are the per-block lifetime metrics a CoherenceSink derives:
// time-in-state histograms, premature-self-invalidation and echo-loss
// counters, and transaction latencies.
type BlockMetrics = obs.BlockMetrics

// NewCoherenceSink builds an empty coherence-event sink with default
// settings (unbounded recording, 400-cycle premature-self-invalidation
// window).
func NewCoherenceSink() *CoherenceSink { return obs.NewSink(obs.Config{}) }

// Program is a custom workload; see the Proc API in internal/cpu for the
// kernel-side operations (Read, Write, WriteWord, Swap, Compute, Lock,
// Unlock, Barrier, Assert).
type Program = machine.Program

// Proc is the kernel-side processor handle passed to Program.Kernel.
type Proc = cpu.Proc

// Machine re-exports the assembled-machine handle (passed to
// Program.Setup, where workloads allocate simulated memory via Layout).
type Machine = machine.Machine

// Breakdown re-exports the execution-time breakdown.
type Breakdown = stats.Breakdown

// Addr is a simulated byte address.
type Addr = mem.Addr

// Region is an allocated range of the simulated address space.
type Region = mem.Region

// Layout is the machine's address-space allocator, available to custom
// programs in Setup via Machine.Layout.
type Layout = mem.Layout

// Workloads lists the built-in workload names.
func Workloads() []string { return workload.Names() }

// PaperWorkloads lists the five Table 1 applications.
func PaperWorkloads() []string { return workload.PaperNames() }

func (c Config) machineConfig() (machine.Config, error) {
	p := c.Protocol
	if p == "" {
		p = SC
	}
	cons, pol, err := policyFor(p)
	if err != nil {
		return machine.Config{}, err
	}
	return machine.Config{
		Processors:     c.Processors,
		CacheBytes:     c.CacheBytes,
		CacheAssoc:     c.CacheAssoc,
		NetworkLatency: event.Time(c.NetworkLatency),
		Consistency:    cons,
		Policy:         pol,
		Seed:           c.Seed,
		MaxSteps:       c.MaxSteps,
		Workers:        c.Workers,
		Sink:           c.Sink,
		Faults:         c.Faults,
	}, nil
}

// Run simulates the named built-in workload under cfg.
func Run(cfg Config) (Result, error) {
	if cfg.Workload == "" {
		return Result{}, fmt.Errorf("dsisim: Config.Workload is empty (use RunProgram for custom programs)")
	}
	if cfg.Cache != nil && cfg.Sink == nil {
		// Built-in workloads are fully determined by the Config, so the run
		// has a canonical content address. A Sink disables memoization: event
		// recording is a side effect a cached result cannot replay.
		mc, err := cfg.machineConfig()
		if err != nil {
			return Result{}, err
		}
		proto := cfg.Protocol
		if proto == "" {
			proto = SC
		}
		key := simcache.RequestOf(cfg.Workload, cfg.Scale.String(), string(proto), mc).Key()
		var runErr error
		res, _ := cfg.Cache.Do(key, func() machine.Result {
			var r Result
			r, runErr = runUncached(cfg)
			if runErr != nil && !r.Failed() {
				// Mark construction failures (e.g. unknown workload) so the
				// cache never stores them; hits must imply a successful run.
				r.Errors = append(r.Errors, runErr.Error())
			}
			return r
		})
		return res, runErr
	}
	return runUncached(cfg)
}

func runUncached(cfg Config) (Result, error) {
	prog, err := workload.New(cfg.Workload, cfg.Scale)
	if err != nil {
		return Result{}, err
	}
	return RunProgram(cfg, prog)
}

// pool recycles simulated machines across Run/RunProgram calls: experiment
// grids and benchmark loops that simulate the same machine shape repeatedly
// pay the structural allocation cost once. Reuse is observationally
// invisible — machine.Reset restores a just-assembled state, and the kernel
// determinism goldens (which run every protocol through this pool, twice)
// gate that invariant.
var pool machine.Pool

// RunProgram simulates a custom program under cfg. Programs are single-use;
// the machine that runs one is drawn from an internal pool and recycled.
func RunProgram(cfg Config, prog Program) (Result, error) {
	mc, err := cfg.machineConfig()
	if err != nil {
		return Result{}, err
	}
	m := pool.Get(mc)
	res := m.Run(prog)
	pool.Put(m)
	if res.Failed() {
		return res, fmt.Errorf("dsisim: run of %q failed: %s", prog.Name(), res.Errors[0])
	}
	return res, nil
}

// BlockSize is the simulated cache block size in bytes.
const BlockSize = mem.BlockSize
