// Package netsim models the interconnect of the simulated machine exactly as
// the paper's methodology describes it: a constant-latency point-to-point
// network with no switch contention, but with contention modeled at each
// node's network interface. Injecting a message occupies the sender's NI for
// 3 cycles, plus 8 more if the message carries a cache block.
//
// Because injection is serialized per node and flight time is constant,
// delivery between any ordered pair of nodes is FIFO; the coherence protocol
// in internal/proto relies on that ordering (e.g. a writeback racing an
// invalidation always reaches the home first). When a fault plan
// (internal/faultinj) is installed, messages may additionally be dropped,
// duplicated, or delayed — but deliveries are clamped so the per-pair FIFO
// guarantee still holds; see docs/FAULTS.md.
//
// The package also owns the protocol message taxonomy so that message
// counting — the subject of Table 3 of the paper — lives in one place.
package netsim

import (
	"fmt"

	"dsisim/internal/event"
	"dsisim/internal/faultinj"
	"dsisim/internal/mem"
)

// Kind enumerates every coherence message the protocols exchange.
type Kind int

const (
	// Requests, cache -> home directory.
	GetS    Kind = iota // read miss
	GetX                // write miss
	Upgrade             // write miss while holding a shared copy
	// Directory-initiated coherence actions.
	Inv    // invalidate a shared copy
	Recall // downgrade an exclusive copy to shared (read by another node)
	// Cache responses to coherence actions.
	InvAck     // invalidation acknowledged, no data
	InvAckData // invalidation of an exclusive copy, carries the dirty block
	RecallAck  // downgrade acknowledged, carries the block
	// Directory replies.
	DataS    // shared-readable block
	DataX    // exclusive block
	AckX     // upgrade granted, no data needed
	FinalAck // weak consistency: all invalidations collected for a prior DataX/AckX
	// Cache-initiated, unsolicited.
	WB         // replacement writeback of an exclusive block (data)
	Repl       // replacement hint for a shared copy (no data)
	SInvNotify // self-invalidation of a tracked shared copy (no data)
	SInvWB     // self-invalidation of an exclusive copy (data)
	// Recovery traffic, only present when the protocol runs hardened (under
	// a fault plan; see docs/FAULTS.md). Neither kind counts as invalidation
	// traffic for Table 3: they are retry-protocol overhead, not the
	// coherence messages DSI exists to eliminate.
	Nack     // directory refuses a request (per-block queue overflow); requester backs off and retries
	NackHome // cache's negative acknowledgment: an Inv/Recall found no copy; home treats it as an ack
	NumKinds
)

var kindNames = [NumKinds]string{
	"GetS", "GetX", "Upgrade", "Inv", "Recall", "InvAck", "InvAckData",
	"RecallAck", "DataS", "DataX", "AckX", "FinalAck", "WB", "Repl",
	"SInvNotify", "SInvWB", "Nack", "NackHome",
}

func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind resolves a message-kind name as produced by Kind.String.
func ParseKind(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// HasData reports whether messages of this kind carry a cache block and
// therefore pay the extra 8-cycle injection overhead.
func (k Kind) HasData() bool {
	switch k {
	case InvAckData, RecallAck, DataS, DataX, WB, SInvWB:
		return true
	case GetS, GetX, Upgrade, Inv, InvAck, Recall, AckX, FinalAck, Repl, SInvNotify, Nack, NackHome:
		return false
	default:
		panic("netsim: HasData: unknown message kind")
	}
}

// IsInvalidation reports whether the kind counts as an "invalidation
// message" for Table 3: explicit invalidations, recalls, and their
// acknowledgments — the traffic DSI exists to eliminate.
func (k Kind) IsInvalidation() bool {
	switch k {
	case Inv, InvAck, InvAckData, Recall, RecallAck:
		return true
	case GetS, GetX, Upgrade, DataS, DataX, WB, AckX, FinalAck, Repl, SInvNotify, SInvWB, Nack, NackHome:
		return false
	default:
		panic("netsim: IsInvalidation: unknown message kind")
	}
}

// Droppable reports whether the hardened protocol can recover from losing a
// message of this kind end-to-end. Requests, coherence actions, dataless
// acks, and directory replies are all covered by the timeout/retry machinery
// (the requester or the directory re-drives the transaction, and the
// directory can replay a lost grant). The remaining kinds carry the sole
// copy of information nothing retains — dirty data in InvAckData, RecallAck,
// WB, and SInvWB; the replacement/self-invalidation notices Repl and
// SInvNotify, whose loss would leave the directory tracking a copy that no
// longer exists with no transaction to flush the staleness out. Probabilistic
// fault plans convert drop/dup decisions on non-droppable kinds into bounded
// delays (see internal/faultinj); scripted rules may still force-drop them.
func (k Kind) Droppable() bool {
	switch k {
	case GetS, GetX, Upgrade, Inv, Recall, InvAck, DataS, DataX, AckX, FinalAck, Nack, NackHome:
		return true
	case InvAckData, RecallAck, WB, Repl, SInvNotify, SInvWB:
		return false
	default:
		panic("netsim: Droppable: unknown message kind")
	}
}

// Message is one coherence protocol message. Fields beyond Kind/Src/Dst/Addr
// are used by subsets of the kinds; unused fields stay zero.
type Message struct {
	Kind Kind
	Src  int
	Dst  int
	Addr mem.Addr // block address

	// Txn tags the message with the directory transaction it belongs to: ids
	// are drawn from a deterministic per-run counter at miss issue and echoed
	// through replies, coherence actions, and acks. Unsolicited traffic (WB,
	// Repl, SInvNotify, SInvWB) carries Txn 0. The base protocol never
	// branches on this field; the hardened protocol uses it to deduplicate
	// retransmitted requests and to reject stale acknowledgments.
	Txn uint64

	Data mem.Value // block contents, for kinds with HasData

	// Request annotations.
	Ver    uint8 // version number echoed by the cache (version-number DSI)
	HasVer bool  // the cache had a matching tag and supplied Ver
	// Probe marks a message about an already-consumed (or refused)
	// transaction, which the directory must never treat as a fresh request
	// or a fresh writeback (see proto/robust.go). On a re-sent GetX it is a
	// lost-FinalAck probe: if the transaction is no longer replayable from
	// directory state, the only thing the prober can still be missing is
	// the FinalAck. On a WB it is an ownership give-back whose payload is
	// stale by construction and must never overwrite home memory.
	Probe bool

	// Reply annotations.
	SI      bool       // block is marked for self-invalidation
	TearOff bool       // block granted untracked (tear-off)
	InvWait event.Time // cycles the directory waited on invalidations for this reply
	Pending bool       // weak consistency: a FinalAck will follow this DataX/AckX
}

func (m Message) String() string {
	return fmt.Sprintf("%s %d->%d blk=%#x", m.Kind, m.Src, m.Dst, uint64(m.Addr))
}

// Injection and delivery constants from the paper's methodology section.
const (
	InjectCycles = 3 // NI occupancy per message
	BlockCycles  = 8 // additional NI occupancy when carrying a block
	// LocalDelay is the delivery time for a node messaging itself (cache to
	// its own directory). Such messages never enter the network and are not
	// counted as network traffic.
	LocalDelay = 1
)

// Counts aggregates message traffic by kind.
type Counts struct {
	ByKind [NumKinds]int64
}

// Total returns the number of network messages of all kinds.
func (c Counts) Total() int64 {
	var t int64
	for _, v := range c.ByKind {
		t += v
	}
	return t
}

// Invalidation returns the number of invalidation-class messages.
func (c Counts) Invalidation() int64 {
	var t int64
	for k, v := range c.ByKind {
		if Kind(k).IsInvalidation() {
			t += v
		}
	}
	return t
}

// Sub returns c - o, kind by kind.
func (c Counts) Sub(o Counts) Counts {
	var out Counts
	for i := range c.ByKind {
		out.ByKind[i] = c.ByKind[i] - o.ByKind[i]
	}
	return out
}

// Handler consumes a delivered message at its destination node.
type Handler func(Message)

// Observer receives a callback per message injection and delivery. It exists
// so the observability layer (internal/obs) can watch traffic without this
// package importing it; a nil observer costs one predictable branch per
// send/delivery and zero allocations.
type Observer interface {
	// MsgSent fires inside Send, after the arrival time is computed. For a
	// duplicated message it fires once per delivered copy; for a dropped
	// message it does not fire at all (MsgFault reports the loss).
	MsgSent(now event.Time, m Message, arrive event.Time)
	// MsgDelivered fires at delivery time, before the destination handler.
	MsgDelivered(now event.Time, m Message)
	// MsgFault fires when the fault plan drops, duplicates, or delays m.
	// delay is the extra delivery delay (for Delay) or the spacing of the
	// second copy (for Duplicate); zero for Drop.
	MsgFault(now event.Time, m Message, action faultinj.Action, delay event.Time)
}

// Config parameterizes a Network.
type Config struct {
	Nodes   int
	Latency event.Time // constant flight time, 100 or 1000 in the paper

	// Faults, when non-nil, is consulted on every non-local Send. With a
	// plan installed the network additionally clamps every delivery to the
	// latest delivery already scheduled for its ordered (src, dst) pair, so
	// jitter and duplication never violate the per-pair FIFO guarantee the
	// protocol depends on. nil costs one predictable branch per send.
	Faults *faultinj.Plan
}

// Network is the interconnect instance. It is driven entirely by the event
// queue; Send may only be called from inside events.
type Network struct {
	q        *event.Queue
	latency  event.Time
	nis      []event.Server
	handlers []Handler
	counts   Counts
	inflight int
	obs      Observer

	// owner/remote turn this instance into one partition's port of a larger
	// machine (the parallel delivery engine): sends whose destination is not
	// the owning node are handed to the remote hook — with their fully
	// computed arrival time, after NI occupancy, fault decisions, and FIFO
	// clamping — instead of being scheduled locally. nil remote (the serial
	// machine) costs one predictable branch per scheduled delivery.
	owner  int
	remote func(m Message, arrive event.Time)

	// faults and pairLast exist only when a fault plan is installed:
	// pairLast[src*nodes+dst] is the latest delivery time scheduled for that
	// ordered pair, the floor for the pair's next delivery.
	faults   *faultinj.Plan
	pairLast []event.Time

	// free is the delivery-record free list. A simulation is single-threaded
	// (everything runs inside the event loop), so a plain stack suffices; in
	// steady state every Send reuses a record and allocates nothing.
	free     []*delivery
	recycled uint64

	// Batching state: chainTo is the most recently scheduled delivery record,
	// still eligible to absorb further same-(time, dst) sends as long as no
	// other event has been scheduled since (chainSeq matches the queue's
	// LastSeq) and the arrival time matches. Consecutive sequences at one time
	// are adjacent in the execution order, so draining the chain from a single
	// heap entry delivers every message at exactly the position its own event
	// would have had — batching is invisible to simulated results.
	chainTo     *delivery
	chainArrive event.Time
	chainDst    int
	chainSeq    uint64
	batched     uint64
}

// delivery is a pooled in-flight message record: the typed event argument
// that replaces a per-send closure. A record carries one message plus any
// batch of later messages chained onto the same (time, dst) heap entry.
type delivery struct {
	net  *Network
	msg  Message
	more []Message // chained same-(time, dst) messages, in send order
}

// deliver is the static delivery action shared by every in-flight message.
// It drains the record's whole chain — head message first, then the batch in
// send order — before recycling the record, amortizing one heap pop and one
// event dispatch across the batch.
//
//dsi:hotpath
func deliver(arg any) {
	d := arg.(*delivery)
	n := d.net
	now := n.q.Now()
	n.inflight--
	if n.obs != nil {
		n.obs.MsgDelivered(now, d.msg)
	}
	n.handlers[d.msg.Dst](d.msg)
	// Handlers may Send; a stale chain head can never be rechained (any new
	// arrival time is strictly greater than now), so d is safe to walk here.
	for i := 0; i < len(d.more); i++ {
		m := d.more[i]
		n.inflight--
		if n.obs != nil {
			n.obs.MsgDelivered(now, m)
		}
		n.handlers[m.Dst](m)
	}
	d.msg = Message{}
	clear(d.more)
	d.more = d.more[:0]
	n.free = append(n.free, d)
}

// getDelivery pops a pooled record or allocates the pool's next one. The
// recycled counter covers both: it counts deliveries carried by pooled
// records, not free-list hits, so its value does not depend on how warm the
// free list is — a reused machine reports the same Result as a fresh one.
//
//dsi:hotpath
func (n *Network) getDelivery() *delivery {
	n.recycled++
	if len(n.free) > 0 {
		d := n.free[len(n.free)-1]
		n.free = n.free[:len(n.free)-1]
		return d
	}
	return &delivery{net: n}
}

// Recycled returns the number of deliveries served through the pooled-record
// path (each one a per-send closure allocation avoided), for kernel
// observability.
func (n *Network) Recycled() uint64 { return n.recycled }

// New builds a network. Handlers start nil; the machine must register one
// per node before any traffic flows.
func New(q *event.Queue, cfg Config) *Network {
	if cfg.Nodes <= 0 {
		panic("netsim: need at least one node")
	}
	if cfg.Latency < 0 {
		panic("netsim: negative latency")
	}
	n := &Network{
		q:        q,
		latency:  cfg.Latency,
		nis:      make([]event.Server, cfg.Nodes),
		handlers: make([]Handler, cfg.Nodes),
	}
	if cfg.Faults != nil {
		n.faults = cfg.Faults
		n.pairLast = make([]event.Time, cfg.Nodes*cfg.Nodes)
	}
	return n
}

// Reset returns the network to its initial state for machine reuse: idle
// interfaces, zeroed counters, no traffic in flight. Handlers and the
// delivery free list are kept; the latency and fault plan are replaced from
// cfg (whose node count must match the network's). Any deliveries that were
// still in flight are abandoned (their records are simply not recycled).
func (n *Network) Reset(cfg Config) {
	if cfg.Nodes != len(n.nis) {
		panic("netsim: Reset with a different node count")
	}
	if cfg.Latency < 0 {
		panic("netsim: negative latency")
	}
	n.latency = cfg.Latency
	for i := range n.nis {
		n.nis[i].Reset()
	}
	n.counts = Counts{}
	n.inflight = 0
	n.obs = nil
	n.recycled = 0
	n.chainTo = nil
	n.chainArrive, n.chainDst, n.chainSeq = 0, 0, 0
	n.batched = 0
	n.faults = cfg.Faults
	if cfg.Faults != nil {
		if n.pairLast == nil {
			n.pairLast = make([]event.Time, cfg.Nodes*cfg.Nodes)
		} else {
			clear(n.pairLast)
		}
	}
}

// SetHandler registers the delivery callback for node's incoming messages.
func (n *Network) SetHandler(node int, h Handler) { n.handlers[node] = h }

// SetPort restricts this instance to serving one node of a partitioned
// machine: only owner's traffic originates here, deliveries to owner are
// scheduled locally, and every send addressed to another node is passed to
// remote with its computed arrival time. The coordinator later hands such
// messages to the destination node's port via Inject. Source-side physics
// stays entirely local to this port — NI occupancy, traffic counts, fault
// decisions, and per-pair FIFO clamping all run here, so per-(src, dst)
// delivery order is decided before a message ever crosses partitions.
func (n *Network) SetPort(owner int, remote func(m Message, arrive event.Time)) {
	if owner < 0 || owner >= len(n.nis) {
		panic("netsim: SetPort owner out of range")
	}
	n.owner, n.remote = owner, remote
}

// Inject schedules local delivery of a message that originated on another
// partition's port. arrive was computed at the source port and must not be
// in this port's past — the parallel engine's conservative window (no
// cross-partition arrival can land inside the window it was sent in)
// guarantees that, and Inject enforces it. Messages injected back to back
// share the chain-batching fast path like local sends do.
//
//dsi:hotpath
func (n *Network) Inject(m Message, arrive event.Time) {
	now := n.q.Now()
	if arrive < now {
		panic(fmt.Sprintf("netsim: Inject of %v at t=%d into a partition already at t=%d", m, int64(arrive), int64(now)))
	}
	n.sched(m, now, arrive)
}

// SetObserver installs (or, with nil, removes) the traffic observer.
func (n *Network) SetObserver(o Observer) { n.obs = o }

// Nodes returns the node count.
func (n *Network) Nodes() int { return len(n.nis) }

// Latency returns the configured flight time.
func (n *Network) Latency() event.Time { return n.latency }

// InFlight returns the number of messages sent but not yet delivered.
func (n *Network) InFlight() int { return n.inflight }

// Counts returns a snapshot of the traffic counters.
func (n *Network) Counts() Counts { return n.counts }

// InjectionTime returns the NI occupancy for a message of kind k.
func InjectionTime(k Kind) event.Time {
	t := event.Time(InjectCycles)
	if k.HasData() {
		t += BlockCycles
	}
	return t
}

// Send injects m at its source NI. Local messages (Src == Dst) bypass the
// network: they are delivered after LocalDelay, are not counted, and are
// exempt from fault injection. The return value is the time the message will
// be delivered; if the fault plan drops the message it is the time delivery
// would have happened, useful only as a scheduling hint.
//
//dsi:hotpath
func (n *Network) Send(m Message) event.Time {
	if m.Src < 0 || m.Src >= len(n.nis) || m.Dst < 0 || m.Dst >= len(n.nis) {
		panic(fmt.Sprintf("netsim: bad endpoints in %v", m))
	}
	if n.handlers[m.Dst] == nil && (n.remote == nil || m.Dst == n.owner) {
		panic(fmt.Sprintf("netsim: no handler at node %d for %v", m.Dst, m))
	}
	now := n.q.Now()
	if m.Src == m.Dst {
		arrive := now + LocalDelay
		n.sched(m, now, arrive)
		return arrive
	}
	_, injected := n.nis[m.Src].Admit(now, InjectionTime(m.Kind))
	arrive := injected + n.latency
	n.counts.ByKind[m.Kind]++
	if n.faults == nil {
		n.sched(m, now, arrive)
		return arrive
	}
	return n.faultySend(m, now, arrive)
}

// sched schedules delivery of m at arrive and notifies the observer. When m
// is provably adjacent to the previously scheduled delivery — same arrival
// time, same destination, and no event scheduled in between — it is chained
// onto that record instead of costing its own heap entry; see delivery.
//
//dsi:hotpath
func (n *Network) sched(m Message, now, arrive event.Time) {
	if n.remote != nil && m.Dst != n.owner {
		n.remote(m, arrive)
		return
	}
	n.inflight++
	if n.obs != nil {
		n.obs.MsgSent(now, m, arrive)
	}
	if n.chainTo != nil && n.chainArrive == arrive && n.chainDst == m.Dst &&
		n.chainSeq == n.q.LastSeq() {
		n.chainTo.more = append(n.chainTo.more, m)
		n.batched++
		return
	}
	d := n.getDelivery()
	d.msg = m
	n.q.AtCall(arrive, deliver, d)
	n.chainTo, n.chainArrive, n.chainDst, n.chainSeq = d, arrive, m.Dst, n.q.LastSeq()
}

// Batched returns the number of deliveries that rode an existing heap entry
// instead of scheduling their own (see sched), for kernel observability.
func (n *Network) Batched() uint64 { return n.batched }

// faultySend consults the fault plan for a non-local message and executes
// the decision. Every surviving delivery (including duplicate copies) passes
// through clampFIFO, so faults perturb timing but never per-pair ordering.
//
//dsi:hotpath
func (n *Network) faultySend(m Message, now, arrive event.Time) event.Time {
	dec := n.faults.Decide(int(m.Kind), m.Src, m.Dst, m.Kind.Droppable())
	switch dec.Action {
	case faultinj.Deliver:
		arrive = n.clampFIFO(m, arrive)
		n.sched(m, now, arrive)
		return arrive
	case faultinj.Drop:
		if n.obs != nil {
			n.obs.MsgFault(now, m, faultinj.Drop, 0)
		}
		return arrive
	case faultinj.Duplicate:
		arrive = n.clampFIFO(m, arrive)
		copyAt := n.clampFIFO(m, arrive+dec.Delay)
		if n.obs != nil {
			n.obs.MsgFault(now, m, faultinj.Duplicate, copyAt-arrive)
		}
		n.sched(m, now, arrive)
		// The copy materializes inside the network but is real traffic on
		// the receiving side; count it.
		n.counts.ByKind[m.Kind]++
		n.sched(m, now, copyAt)
		return arrive
	case faultinj.Delay:
		arrive = n.clampFIFO(m, arrive+dec.Delay)
		if n.obs != nil {
			n.obs.MsgFault(now, m, faultinj.Delay, dec.Delay)
		}
		n.sched(m, now, arrive)
		return arrive
	default:
		panic("netsim: invalid fault action")
	}
}

// clampFIFO floors arrive to the latest delivery already scheduled for m's
// ordered (src, dst) pair and records the result as the pair's new floor.
// Ties are broken by event-queue insertion order, which is send order, so
// per-pair FIFO delivery survives any fault plan.
//
//dsi:hotpath
func (n *Network) clampFIFO(m Message, arrive event.Time) event.Time {
	idx := m.Src*len(n.nis) + m.Dst
	if last := n.pairLast[idx]; arrive < last {
		arrive = last
	}
	n.pairLast[idx] = arrive
	return arrive
}

// FaultStats returns the fault plan's decision counters (zero when no plan
// is installed).
func (n *Network) FaultStats() faultinj.Stats {
	if n.faults == nil {
		return faultinj.Stats{}
	}
	return n.faults.Stats()
}

// NIBusy returns cumulative injection occupancy of a node's NI, for
// utilization reporting.
func (n *Network) NIBusy(node int) event.Time { return n.nis[node].Busy() }

// NIFree returns the earliest time node's NI can begin a new injection. The
// self-invalidation machinery uses it to model the processor stalling until
// its notification messages have all been injected.
func (n *Network) NIFree(node int) event.Time { return n.nis[node].FreeAt() }
