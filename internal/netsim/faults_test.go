package netsim

import (
	"testing"

	"dsisim/internal/event"
	"dsisim/internal/faultinj"
	"dsisim/internal/mem"
)

// newFaultyNet builds a 3-node network with the given fault plan and records
// deliveries per destination in arrival order.
func newFaultyNet(t *testing.T, plan *faultinj.Plan, lat event.Time) (*event.Queue, *Network, *[]Message) {
	t.Helper()
	q := &event.Queue{}
	n := New(q, Config{Nodes: 3, Latency: lat, Faults: plan})
	var got []Message
	for i := 0; i < 3; i++ {
		n.SetHandler(i, func(m Message) { got = append(got, m) })
	}
	return q, n, &got
}

func TestFaultDropLosesMessage(t *testing.T) {
	plan := faultinj.New(faultinj.Config{Rules: []faultinj.Rule{
		{Kind: int(GetS), Src: -1, Dst: -1, Nth: 1, Action: faultinj.Drop},
	}})
	q, n, got := newFaultyNet(t, plan, 100)
	q.At(0, func() {
		n.Send(Message{Kind: GetS, Src: 0, Dst: 1, Addr: 32})
		n.Send(Message{Kind: GetS, Src: 0, Dst: 1, Addr: 64})
	})
	q.Run()
	if len(*got) != 1 || (*got)[0].Addr != 64 {
		t.Fatalf("deliveries = %v, want only blk 64", *got)
	}
	if n.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", n.InFlight())
	}
	if st := plan.Stats(); st.Dropped != 1 {
		t.Fatalf("plan stats: %+v", st)
	}
	// The dropped message still consumed injection bandwidth.
	if n.Counts().ByKind[GetS] != 2 {
		t.Fatalf("GetS count = %d, want 2", n.Counts().ByKind[GetS])
	}
}

func TestFaultDuplicateDeliversTwice(t *testing.T) {
	plan := faultinj.New(faultinj.Config{Rules: []faultinj.Rule{
		{Kind: int(Inv), Src: -1, Dst: -1, Nth: 1, Action: faultinj.Duplicate, Delay: 7},
	}})
	q, n, got := newFaultyNet(t, plan, 100)
	q.At(0, func() {
		n.Send(Message{Kind: Inv, Src: 0, Dst: 2, Addr: 32})
	})
	q.Run()
	if len(*got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(*got))
	}
	if (*got)[0].Addr != 32 || (*got)[1].Addr != 32 {
		t.Fatalf("deliveries = %v", *got)
	}
	if n.Counts().ByKind[Inv] != 2 {
		t.Fatalf("Inv count = %d, want 2 (copy is real traffic)", n.Counts().ByKind[Inv])
	}
}

func TestFaultDelayPostponesDelivery(t *testing.T) {
	plan := faultinj.New(faultinj.Config{Rules: []faultinj.Rule{
		{Kind: int(GetS), Src: -1, Dst: -1, Nth: 1, Action: faultinj.Delay, Delay: 40},
	}})
	q, n, _ := newFaultyNet(t, plan, 100)
	var at event.Time
	q.At(0, func() {
		at = n.Send(Message{Kind: GetS, Src: 0, Dst: 1, Addr: 32})
	})
	q.Run()
	if at != 143 { // 3 inject + 100 latency + 40 fault delay
		t.Fatalf("arrival = %d, want 143", at)
	}
}

func TestFaultsPreservePairFIFO(t *testing.T) {
	// Delay the first message by a lot; the second must not overtake it.
	plan := faultinj.New(faultinj.Config{Rules: []faultinj.Rule{
		{Kind: -1, Src: 0, Dst: 1, Nth: 1, Action: faultinj.Delay, Delay: 500},
	}})
	q, n, got := newFaultyNet(t, plan, 100)
	q.At(0, func() {
		n.Send(Message{Kind: Inv, Src: 0, Dst: 1, Addr: 32})
		n.Send(Message{Kind: DataS, Src: 0, Dst: 1, Addr: 64})
	})
	q.Run()
	if len(*got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(*got))
	}
	if (*got)[0].Addr != 32 || (*got)[1].Addr != 64 {
		t.Fatalf("FIFO violated: delivery order %v, %v", (*got)[0], (*got)[1])
	}
}

func TestFaultsOtherPairsUnaffectedByClamp(t *testing.T) {
	plan := faultinj.New(faultinj.Config{Rules: []faultinj.Rule{
		{Kind: -1, Src: 0, Dst: 1, Nth: 1, Action: faultinj.Delay, Delay: 500},
	}})
	q, n, got := newFaultyNet(t, plan, 100)
	q.At(0, func() {
		n.Send(Message{Kind: Inv, Src: 0, Dst: 1, Addr: 32})  // delayed to ~603
		n.Send(Message{Kind: Inv, Src: 0, Dst: 2, Addr: 64})  // different pair: normal
		n.Send(Message{Kind: Inv, Src: 1, Dst: 2, Addr: 128}) // different pair: normal
	})
	q.Run()
	if len(*got) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(*got))
	}
	if (*got)[0].Addr == 32 {
		t.Fatalf("delayed message delivered first: %v", *got)
	}
}

func TestNonDroppableKindDelayedNotDropped(t *testing.T) {
	// Probability-1 drop on a writeback must convert to a delay.
	plan := faultinj.New(faultinj.Config{Seed: 9, Drop: 1, Jitter: 20})
	q, n, got := newFaultyNet(t, plan, 100)
	q.At(0, func() {
		n.Send(Message{Kind: WB, Src: 0, Dst: 1, Addr: 32, Data: mem.Value{Writer: 3}})
	})
	q.Run()
	if len(*got) != 1 || (*got)[0].Data.Writer != 3 {
		t.Fatalf("writeback lost: %v", *got)
	}
	if st := plan.Stats(); st.Converted != 1 || st.Dropped != 0 {
		t.Fatalf("plan stats: %+v", st)
	}
}

func TestLocalMessagesExemptFromFaults(t *testing.T) {
	plan := faultinj.New(faultinj.Config{Seed: 1, Drop: 1})
	q, n, got := newFaultyNet(t, plan, 100)
	q.At(0, func() {
		n.Send(Message{Kind: GetS, Src: 1, Dst: 1, Addr: 32})
	})
	q.Run()
	if len(*got) != 1 {
		t.Fatalf("local message not delivered: %v", *got)
	}
	if st := plan.Stats(); st.Decisions != 0 {
		t.Fatalf("local message consulted the plan: %+v", st)
	}
}

func TestDroppableClassification(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		droppable := k.Droppable()
		switch k {
		case InvAckData, RecallAck, WB, SInvWB, Repl, SInvNotify:
			if droppable {
				t.Errorf("%v droppable, but its loss is unrecoverable", k)
			}
		default:
			if !droppable {
				t.Errorf("%v not droppable, but retry covers it", k)
			}
		}
	}
}

func TestParseKind(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("NotAKind"); ok {
		t.Error("ParseKind accepted an unknown name")
	}
}
