package netsim

import (
	"testing"
	"testing/quick"

	"dsisim/internal/event"
	"dsisim/internal/mem"
)

func newNet(t *testing.T, nodes int, lat event.Time) (*event.Queue, *Network, *[]Message) {
	t.Helper()
	q := &event.Queue{}
	n := New(q, Config{Nodes: nodes, Latency: lat})
	var got []Message
	for i := 0; i < nodes; i++ {
		n.SetHandler(i, func(m Message) { got = append(got, m) })
	}
	return q, n, &got
}

func TestDeliveryTiming(t *testing.T) {
	q, n, got := newNet(t, 2, 100)
	var at event.Time
	q.At(0, func() {
		at = n.Send(Message{Kind: GetS, Src: 0, Dst: 1, Addr: 32})
	})
	q.Run()
	// 3 cycles injection + 100 latency.
	if at != 103 {
		t.Fatalf("arrival = %d, want 103", at)
	}
	if len(*got) != 1 || (*got)[0].Kind != GetS {
		t.Fatalf("delivered = %v", *got)
	}
}

func TestDataMessagePaysBlockInjection(t *testing.T) {
	q, n, _ := newNet(t, 2, 100)
	var at event.Time
	q.At(0, func() {
		at = n.Send(Message{Kind: DataX, Src: 0, Dst: 1, Addr: 32})
	})
	q.Run()
	if at != 111 { // 3+8 + 100
		t.Fatalf("arrival = %d, want 111", at)
	}
}

func TestInjectionSerializesPerNI(t *testing.T) {
	q, n, got := newNet(t, 3, 100)
	var a1, a2 event.Time
	q.At(0, func() {
		a1 = n.Send(Message{Kind: GetS, Src: 0, Dst: 1, Addr: 32})
		a2 = n.Send(Message{Kind: GetS, Src: 0, Dst: 2, Addr: 64})
	})
	q.Run()
	if a1 != 103 || a2 != 106 {
		t.Fatalf("arrivals = %d,%d; want 103,106 (second queued behind first injection)", a1, a2)
	}
	if len(*got) != 2 {
		t.Fatalf("delivered %d messages", len(*got))
	}
}

func TestDistinctNIsDoNotContend(t *testing.T) {
	q, n, _ := newNet(t, 3, 100)
	var a1, a2 event.Time
	q.At(0, func() {
		a1 = n.Send(Message{Kind: GetS, Src: 0, Dst: 2, Addr: 32})
		a2 = n.Send(Message{Kind: GetS, Src: 1, Dst: 2, Addr: 64})
	})
	q.Run()
	if a1 != 103 || a2 != 103 {
		t.Fatalf("arrivals = %d,%d; want both 103", a1, a2)
	}
}

func TestLocalMessageBypassesNetwork(t *testing.T) {
	q, n, got := newNet(t, 2, 100)
	var at event.Time
	q.At(10, func() {
		at = n.Send(Message{Kind: GetX, Src: 1, Dst: 1, Addr: 32})
	})
	q.Run()
	if at != 10+LocalDelay {
		t.Fatalf("local arrival = %d, want %d", at, 10+LocalDelay)
	}
	if n.Counts().Total() != 0 {
		t.Fatal("local message counted as network traffic")
	}
	if len(*got) != 1 {
		t.Fatal("local message not delivered")
	}
}

func TestPairwiseFIFO(t *testing.T) {
	q, n, got := newNet(t, 2, 50)
	q.At(0, func() {
		n.Send(Message{Kind: WB, Src: 0, Dst: 1, Addr: 32})     // data: 11 cycles
		n.Send(Message{Kind: InvAck, Src: 0, Dst: 1, Addr: 64}) // 3 cycles, queued behind
	})
	q.Run()
	if len(*got) != 2 || (*got)[0].Kind != WB || (*got)[1].Kind != InvAck {
		t.Fatalf("delivery order broke FIFO: %v", *got)
	}
}

func TestCounts(t *testing.T) {
	q, n, _ := newNet(t, 2, 10)
	q.At(0, func() {
		n.Send(Message{Kind: Inv, Src: 0, Dst: 1})
		n.Send(Message{Kind: InvAck, Src: 1, Dst: 0})
		n.Send(Message{Kind: DataS, Src: 0, Dst: 1})
	})
	q.Run()
	c := n.Counts()
	if c.Total() != 3 {
		t.Fatalf("total = %d, want 3", c.Total())
	}
	if c.Invalidation() != 2 {
		t.Fatalf("invalidation = %d, want 2", c.Invalidation())
	}
	d := c.Sub(Counts{})
	if d.Total() != 3 {
		t.Fatal("Sub identity broken")
	}
}

func TestKindClassification(t *testing.T) {
	dataKinds := map[Kind]bool{InvAckData: true, RecallAck: true, DataS: true, DataX: true, WB: true, SInvWB: true}
	invKinds := map[Kind]bool{Inv: true, InvAck: true, InvAckData: true, Recall: true, RecallAck: true}
	for k := Kind(0); k < NumKinds; k++ {
		if k.HasData() != dataKinds[k] {
			t.Errorf("%v HasData = %v", k, k.HasData())
		}
		if k.IsInvalidation() != invKinds[k] {
			t.Errorf("%v IsInvalidation = %v", k, k.IsInvalidation())
		}
		if k.String() == "" {
			t.Errorf("kind %d unnamed", int(k))
		}
	}
}

func TestInFlightDrains(t *testing.T) {
	q, n, _ := newNet(t, 4, 100)
	q.At(0, func() {
		for i := 0; i < 10; i++ {
			n.Send(Message{Kind: GetS, Src: 0, Dst: 1 + i%3, Addr: mem.Addr(32 * i)})
		}
		if n.InFlight() != 10 {
			t.Errorf("in-flight = %d, want 10", n.InFlight())
		}
	})
	q.Run()
	if n.InFlight() != 0 {
		t.Fatalf("in-flight after drain = %d", n.InFlight())
	}
}

func TestMissingHandlerPanics(t *testing.T) {
	q := &event.Queue{}
	n := New(q, Config{Nodes: 2, Latency: 10})
	n.SetHandler(0, func(Message) {})
	q.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("send to handlerless node did not panic")
			}
		}()
		n.Send(Message{Kind: GetS, Src: 0, Dst: 1})
	})
	q.Run()
}

// Property: for any burst of same-source same-destination messages, delivery
// preserves send order (pairwise FIFO), regardless of kinds.
func TestPairwiseFIFOProperty(t *testing.T) {
	f := func(kinds []uint8) bool {
		if len(kinds) > 40 {
			kinds = kinds[:40]
		}
		q := &event.Queue{}
		n := New(q, Config{Nodes: 2, Latency: 7})
		var got []int
		n.SetHandler(1, func(m Message) { got = append(got, int(m.Ver)) })
		n.SetHandler(0, func(Message) {})
		q.At(0, func() {
			for i, kb := range kinds {
				k := Kind(int(kb) % int(NumKinds))
				n.Send(Message{Kind: k, Src: 0, Dst: 1, Ver: uint8(i)})
			}
		})
		q.Run()
		if len(got) != len(kinds) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedLocalBurst pins the delivery-chaining fast path: back-to-back
// local sends to one destination within a single event share an arrival time
// and consecutive sequences, so they coalesce onto one heap entry — and
// still deliver in send order at the right time.
func TestBatchedLocalBurst(t *testing.T) {
	q, n, got := newNet(t, 2, 100)
	q.At(0, func() {
		for i := 0; i < 5; i++ {
			n.Send(Message{Kind: SInvNotify, Src: 0, Dst: 0, Ver: uint8(i)})
		}
	})
	q.Run()
	if len(*got) != 5 {
		t.Fatalf("delivered %d of 5", len(*got))
	}
	for i, m := range *got {
		if int(m.Ver) != i {
			t.Fatalf("delivery %d carries Ver %d (order broken)", i, m.Ver)
		}
	}
	if n.Batched() != 4 {
		t.Fatalf("Batched = %d, want 4 (one heap entry, four chained)", n.Batched())
	}
	if n.InFlight() != 0 {
		t.Fatalf("inflight = %d after drain", n.InFlight())
	}
}

// TestBatchingRequiresAdjacency: a foreign event scheduled between two
// same-(time, dst) sends makes them non-adjacent in execution order, so the
// second must NOT chain onto the first — global order would change.
func TestBatchingRequiresAdjacency(t *testing.T) {
	q, n, _ := newNet(t, 2, 100)
	var order []string
	n.SetHandler(0, func(m Message) { order = append(order, "msg") })
	q.At(0, func() {
		n.Send(Message{Kind: SInvNotify, Src: 0, Dst: 0})
		q.At(1, func() { order = append(order, "between") })
		n.Send(Message{Kind: SInvNotify, Src: 0, Dst: 0})
	})
	q.Run()
	if n.Batched() != 0 {
		t.Fatalf("Batched = %d, want 0 (an event was scheduled in between)", n.Batched())
	}
	want := []string{"msg", "between", "msg"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestBatchingDifferentDestinationsNotChained: same arrival time, different
// destination must keep separate heap entries.
func TestBatchingDifferentDestinationsNotChained(t *testing.T) {
	q, n, got := newNet(t, 3, 100)
	q.At(0, func() {
		n.Send(Message{Kind: SInvNotify, Src: 0, Dst: 0})
		n.Send(Message{Kind: SInvNotify, Src: 1, Dst: 1})
	})
	q.Run()
	if n.Batched() != 0 {
		t.Fatalf("Batched = %d, want 0 (destinations differ)", n.Batched())
	}
	if len(*got) != 2 {
		t.Fatalf("delivered %d of 2", len(*got))
	}
}

// BenchmarkBatchDelivery measures the burst-delivery path the chaining
// optimization targets: each iteration schedules a burst of local
// notifications (the self-invalidation pattern at synchronization points)
// and drains them. The batch rides one heap entry instead of eight.
func BenchmarkBatchDelivery(b *testing.B) {
	q := &event.Queue{}
	n := New(q, Config{Nodes: 1, Latency: 100})
	sink := 0
	n.SetHandler(0, func(m Message) { sink++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.At(q.Now(), func() {
			for j := 0; j < 8; j++ {
				n.Send(Message{Kind: SInvNotify, Src: 0, Dst: 0})
			}
		})
		q.Run()
	}
	if sink != 8*b.N {
		b.Fatalf("delivered %d, want %d", sink, 8*b.N)
	}
}
