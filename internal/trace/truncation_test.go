package trace

import (
	"bytes"
	"strings"
	"testing"
)

// TestReadTruncatedMidRecord feeds Read a recording cut off at every byte
// boundary: a copy interrupted mid-stream must produce a validation error or
// a clean shorter parse — never a panic and never a silently full-length
// trace.
func TestReadTruncatedMidRecord(t *testing.T) {
	tr, _ := record(t, "sparse")
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	header := bytes.IndexByte(full, '\n') + 1
	for cut := header; cut < len(full); cut += 101 {
		got, err := Read(bytes.NewReader(full[:cut]))
		if err == nil {
			// The one benign cut: losing only the final newline still yields
			// the complete event stream. Anything else must be rejected.
			if cut != len(full)-1 || len(got.Events) != len(tr.Events) {
				t.Fatalf("truncation at byte %d/%d accepted with %d events",
					cut, len(full), len(got.Events))
			}
		}
	}
}

// TestReadTruncationErrors pins the error classes specific truncation shapes
// produce.
func TestReadTruncationErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{
			name: "mid-record cut leaves short line",
			in:   "dsitrace toy procs=2 events=2\n0 read 40 0 0 0\n1 wri",
			want: "want 6 fields",
		},
		{
			name: "corrupted kind",
			in:   "dsitrace toy procs=2 events=2\n0 read 40 0 0 0\n1 wri 48 0 0 0",
			want: "unknown kind",
		},
		{
			name: "fields missing on last line",
			in:   "dsitrace toy procs=2 events=2\n0 read 40 0 0 0\n1 read 48 0",
			want: "want 6 fields",
		},
		{
			name: "whole records missing",
			in:   "dsitrace toy procs=2 events=3\n0 read 40 0 0 0\n",
			want: "header says 3 events, read 1",
		},
		{
			name: "sync flag cut off",
			in:   "dsitrace toy procs=2 events=1\n0 read 40 0 0\n",
			want: "want 6 fields",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("accepted %q", c.in)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
