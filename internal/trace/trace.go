// Package trace records and replays workload operation streams. A trace is
// the per-processor sequence of memory references and synchronization
// operations a kernel issued — the input representation trace-driven
// simulators consume. Recording runs the workload once on a reference
// machine; the text codec makes traces diffable and the Replay program
// turns a recorded trace back into a runnable workload (without the
// original's data-flow assertions).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dsisim/internal/cpu"
	"dsisim/internal/machine"
	"dsisim/internal/mem"
)

// Event is one recorded operation.
type Event struct {
	Proc   int
	Kind   string // read write swap compute barrier unlock flush halt
	Addr   mem.Addr
	Word   uint64
	Cycles int64
	Sync   bool
}

// Trace is a full recording.
type Trace struct {
	Workload string
	Procs    int
	Events   []Event

	// counts caches the per-kind totals; countsAt is the event count it was
	// computed over, so appends invalidate it.
	counts   map[string]int64
	countsAt int
}

// PerProc splits the events by processor, preserving program order.
func (t *Trace) PerProc() [][]Event {
	out := make([][]Event, t.Procs)
	for _, e := range t.Events {
		out[e.Proc] = append(out[e.Proc], e)
	}
	return out
}

// Counts returns per-kind totals. The map is cached on the trace and reused
// by later calls (earlier versions allocated a fresh map per call, which adds
// up when reports consult the totals repeatedly): it is valid until Events
// changes and must not be mutated. Use CountsInto for a private copy.
func (t *Trace) Counts() map[string]int64 {
	if t.counts == nil || t.countsAt != len(t.Events) {
		t.counts = t.CountsInto(t.counts)
		t.countsAt = len(t.Events)
	}
	return t.counts
}

// CountsInto fills dst with per-kind totals, clearing whatever it held, and
// returns it; a nil dst allocates. It lets callers reuse their own map across
// traces.
func (t *Trace) CountsInto(dst map[string]int64) map[string]int64 {
	if dst == nil {
		dst = make(map[string]int64, len(eventKinds))
	} else {
		clear(dst)
	}
	for _, e := range t.Events {
		dst[e.Kind]++
	}
	return dst
}

// Record runs prog on a machine built from cfg and captures its operation
// stream. The machine configuration affects timing but not the stream
// itself for data-independent kernels (all built-in workloads).
func Record(cfg machine.Config, prog machine.Program) (*Trace, machine.Result) {
	t := &Trace{Workload: prog.Name()}
	cfg.Tracer = func(proc int, op cpu.TraceOp) {
		t.Events = append(t.Events, Event{
			Proc: proc, Kind: op.Kind, Addr: op.Addr, Word: op.Word,
			Cycles: op.Cycles, Sync: op.Sync,
		})
	}
	m := machine.New(cfg)
	t.Procs = m.Config().Processors
	res := m.Run(prog)
	return t, res
}

// Write encodes the trace as text: a header line, then one line per event
// ("<proc> <kind> <addr-hex> <word> <cycles> <sync>").
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "dsitrace %s procs=%d events=%d\n", t.Workload, t.Procs, len(t.Events))
	for _, e := range t.Events {
		s := 0
		if e.Sync {
			s = 1
		}
		fmt.Fprintf(bw, "%d %s %x %d %d %d\n", e.Proc, e.Kind, uint64(e.Addr), e.Word, e.Cycles, s)
	}
	return bw.Flush()
}

// MaxProcs bounds the processor count a trace header may declare; it matches
// the simulator's 64-node directory limit (directory.NodeSet is a 64-bit
// full map).
const MaxProcs = 64

// eventKinds are the operation kinds Write emits and Replay understands.
var eventKinds = map[string]bool{
	"read": true, "write": true, "swap": true, "compute": true,
	"barrier": true, "unlock": true, "flush": true, "halt": true,
}

// Read decodes a text trace. Malformed input — a bad header, an out-of-range
// processor, an unknown operation kind, a non-numeric field, or an event
// count that disagrees with the header — is rejected with an error naming
// the offending line, never a panic: replaying an unvalidated Proc or Procs
// would index out of range deep inside the machine.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: line 1: %w", err)
		}
		return nil, fmt.Errorf("trace: empty input")
	}
	var t Trace
	var events int
	if _, err := fmt.Sscanf(sc.Text(), "dsitrace %s procs=%d events=%d", &t.Workload, &t.Procs, &events); err != nil {
		return nil, fmt.Errorf("trace: line 1: bad header %q: %w", sc.Text(), err)
	}
	if t.Procs < 1 || t.Procs > MaxProcs {
		return nil, fmt.Errorf("trace: line 1: procs=%d out of range [1, %d]", t.Procs, MaxProcs)
	}
	if events < 0 {
		return nil, fmt.Errorf("trace: line 1: negative event count %d", events)
	}
	line := 1
	for sc.Scan() {
		line++
		f := strings.Fields(sc.Text())
		if len(f) == 0 {
			continue // tolerate blank lines (e.g. a trailing newline)
		}
		if len(f) != 6 {
			return nil, fmt.Errorf("trace: line %d: want 6 fields, got %d in %q", line, len(f), sc.Text())
		}
		var e Event
		var err error
		if e.Proc, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("trace: line %d: bad proc %q", line, f[0])
		}
		if e.Proc < 0 || e.Proc >= t.Procs {
			return nil, fmt.Errorf("trace: line %d: proc %d out of range [0, %d)", line, e.Proc, t.Procs)
		}
		e.Kind = f[1]
		if !eventKinds[e.Kind] {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, e.Kind)
		}
		a, err := strconv.ParseUint(f[2], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad addr %q", line, f[2])
		}
		e.Addr = mem.Addr(a)
		if e.Word, err = strconv.ParseUint(f[3], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: bad word %q", line, f[3])
		}
		if e.Cycles, err = strconv.ParseInt(f[4], 10, 64); err != nil || e.Cycles < 0 {
			return nil, fmt.Errorf("trace: line %d: bad cycles %q", line, f[4])
		}
		switch f[5] {
		case "0":
		case "1":
			e.Sync = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad sync flag %q (want 0 or 1)", line, f[5])
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", line+1, err)
	}
	if len(t.Events) != events {
		return nil, fmt.Errorf("trace: header says %d events, read %d", events, len(t.Events))
	}
	return &t, nil
}

// Replay is a machine.Program that re-issues a recorded trace. Lock/unlock
// pairs are replayed as raw swaps/stores, so inter-processor timing may
// differ from the recording; replay preserves each processor's program
// order, which is the property trace-driven studies rely on.
type Replay struct {
	T *Trace
	// AddressSpace must cover the trace's highest address; Setup allocates
	// one interleaved region spanning it.
	top mem.Addr
}

// NewReplay builds a replay program for t.
func NewReplay(t *Trace) *Replay {
	r := &Replay{T: t}
	for _, e := range t.Events {
		if e.Addr > r.top {
			r.top = e.Addr
		}
	}
	return r
}

// Name implements machine.Program.
func (r *Replay) Name() string { return "replay:" + r.T.Workload }

// WarmupBarriers implements machine.Program: replays measure everything.
func (r *Replay) WarmupBarriers() int { return 0 }

// Setup implements machine.Program.
func (r *Replay) Setup(m *machine.Machine) {
	if r.top == 0 {
		return
	}
	// Reserve the whole traced range. Homes follow the default interleave,
	// which is also what Layout.Home falls back to for unallocated
	// addresses, so traced homes are stable whether or not the original
	// regions are reconstructed.
	m.Layout().AllocInterleaved("replay", uint64(r.top)+mem.BlockSize)
}

// Kernel implements machine.Program.
func (r *Replay) Kernel(p *cpu.Proc) {
	for _, e := range r.T.Events {
		if e.Proc != p.ID() {
			continue
		}
		switch e.Kind {
		case "read":
			if e.Sync {
				p.ReadSync(e.Addr)
			} else {
				p.Read(e.Addr)
			}
		case "write":
			p.WriteWord(e.Addr, e.Word)
		case "swap":
			p.Swap(e.Addr, e.Word)
		case "unlock":
			p.Unlock(e.Addr)
		case "compute":
			p.Compute(e.Cycles)
		case "barrier":
			p.Barrier()
		case "flush", "halt":
			// flushes re-occur naturally with the replayed swaps; halt ends
			// the stream.
		}
	}
}
