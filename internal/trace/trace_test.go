package trace

import (
	"bytes"
	"strings"
	"testing"

	"dsisim/internal/machine"
	"dsisim/internal/proto"
	"dsisim/internal/workload"
)

func record(t *testing.T, name string) (*Trace, machine.Result) {
	t.Helper()
	prog, err := workload.New(name, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	tr, res := Record(machine.Config{Processors: 4, Consistency: proto.SC}, prog)
	if res.Failed() {
		t.Fatalf("recording failed: %s", res.Errors[0])
	}
	return tr, res
}

func TestRecordCapturesAllProcs(t *testing.T) {
	tr, _ := record(t, "sparse")
	if tr.Procs != 4 {
		t.Fatalf("procs = %d", tr.Procs)
	}
	per := tr.PerProc()
	for i, evs := range per {
		if len(evs) == 0 {
			t.Fatalf("proc %d recorded no events", i)
		}
		if evs[len(evs)-1].Kind != "halt" {
			t.Fatalf("proc %d stream does not end in halt: %s", i, evs[len(evs)-1].Kind)
		}
	}
	c := tr.Counts()
	if c["read"] == 0 || c["write"] == 0 || c["barrier"] == 0 {
		t.Fatalf("counts missing expected kinds: %v", c)
	}
}

func TestRoundTrip(t *testing.T) {
	tr, _ := record(t, "migratory")
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload != tr.Workload || back.Procs != tr.Procs || len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip mismatch: %v vs %v", back, tr)
	}
	for i := range tr.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %v != %v", i, back.Events[i], tr.Events[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a trace\n",
		"dsitrace x procs=2 events=1\nbogus line\n",
		"dsitrace x procs=2 events=5\n0 read 20 0 0 0\n", // count mismatch
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("garbage %q accepted", c)
		}
	}
}

// TestReadValidation exercises each rejection path and checks the error names
// the offending line — the contract cmd/dsitrace relies on instead of letting
// a malformed trace panic deep inside the machine.
func TestReadValidation(t *testing.T) {
	hdr := "dsitrace x procs=2 events=1\n"
	cases := []struct {
		name, in, want string
	}{
		{"procs zero", "dsitrace x procs=0 events=0\n", "line 1"},
		{"procs over limit", "dsitrace x procs=65 events=0\n", "line 1"},
		{"negative events", "dsitrace x procs=2 events=-1\n", "line 1"},
		{"field count", hdr + "0 read 20 0 0\n", "line 2"},
		{"proc not a number", hdr + "x read 20 0 0 0\n", "line 2"},
		{"proc out of range", hdr + "2 read 20 0 0 0\n", "line 2"},
		{"proc negative", hdr + "-1 read 20 0 0 0\n", "line 2"},
		{"unknown kind", hdr + "0 jump 20 0 0 0\n", "line 2"},
		{"bad addr", hdr + "0 read zz 0 0 0\n", "line 2"},
		{"bad word", hdr + "0 read 20 x 0 0\n", "line 2"},
		{"negative cycles", hdr + "0 compute 0 0 -5 0\n", "line 2"},
		{"bad sync flag", hdr + "0 read 20 0 0 2\n", "line 2"},
		{"error on later line", hdr + "0 read 20 0 0 0\n0 read 20 0 0 9\n", "line 3"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("accepted %q", c.in)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not name %s", err, c.want)
			}
		})
	}
}

// TestReadToleratesBlankLines: a trailing newline (or blank separator lines)
// must not fail the event-count check.
func TestReadToleratesBlankLines(t *testing.T) {
	in := "dsitrace x procs=2 events=2\n0 read 20 0 0 0\n\n1 write 40 7 0 0\n\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 || tr.Events[1].Proc != 1 || tr.Events[1].Word != 7 {
		t.Fatalf("parsed %+v", tr.Events)
	}
}

func TestReplayRuns(t *testing.T) {
	tr, orig := record(t, "prodcons")
	cfg := machine.Config{Processors: tr.Procs, Consistency: proto.SC}
	res := machine.New(cfg).Run(NewReplay(tr))
	if res.Failed() {
		t.Fatalf("replay failed: %s", res.Errors[0])
	}
	if res.TotalTime == 0 {
		t.Fatal("replay did no work")
	}
	// Same machine, same stream: replay time tracks the original's total
	// time to within the warm-up accounting difference.
	if res.TotalTime < orig.TotalTime/2 || res.TotalTime > orig.TotalTime*2 {
		t.Fatalf("replay time %d wildly off original %d", res.TotalTime, orig.TotalTime)
	}
}

func TestReplayDeterministic(t *testing.T) {
	tr, _ := record(t, "em3d")
	run := func() machine.Result {
		return machine.New(machine.Config{Processors: tr.Procs}).Run(NewReplay(tr))
	}
	a, b := run(), run()
	if a.Failed() || a.TotalTime != b.TotalTime {
		t.Fatalf("replay nondeterministic: %d vs %d", a.TotalTime, b.TotalTime)
	}
}

func TestCountsCachedAcrossCalls(t *testing.T) {
	tr := &Trace{Procs: 1, Events: []Event{
		{Kind: "read"}, {Kind: "read"}, {Kind: "write"}, {Kind: "barrier"},
	}}
	c := tr.Counts()
	if c["read"] != 2 || c["write"] != 1 || c["barrier"] != 1 {
		t.Fatalf("counts = %v", c)
	}
	if allocs := testing.AllocsPerRun(10, func() { _ = tr.Counts() }); allocs != 0 {
		t.Fatalf("repeated Counts allocates %v maps/call", allocs)
	}

	// Appending events invalidates the cache.
	tr.Events = append(tr.Events, Event{Kind: "read"})
	if c = tr.Counts(); c["read"] != 3 {
		t.Fatalf("counts stale after append: %v", c)
	}

	// CountsInto reuses the caller's map.
	dst := make(map[string]int64)
	if got := tr.CountsInto(dst); got["read"] != 3 {
		t.Fatalf("CountsInto = %v", got)
	}
	other := &Trace{Events: []Event{{Kind: "halt"}}}
	dst = other.CountsInto(dst)
	if len(dst) != 1 || dst["halt"] != 1 {
		t.Fatalf("CountsInto did not clear: %v", dst)
	}
}
