// Package mem defines the simulated physical address space: block geometry,
// region allocation with placement policies, the home-node map, and the
// block value store used by the coherence checker.
//
// The paper's machine uses 32-byte cache blocks; that geometry is fixed here
// as constants and shared by every other package.
package mem

import (
	"fmt"
	"sort"

	"dsisim/internal/blockmap"
)

// Block geometry, fixed to the paper's configuration.
const (
	BlockShift = 5               // log2(block size)
	BlockSize  = 1 << BlockShift // 32 bytes
	BlockMask  = ^Addr(BlockSize - 1)
)

// Addr is a byte address in the simulated shared address space.
type Addr uint64

// BlockOf returns the address of the block containing a.
func BlockOf(a Addr) Addr { return a & BlockMask }

// BlockIndex returns a's block number (address / 32).
func BlockIndex(a Addr) uint64 { return uint64(a) >> BlockShift }

// Placement selects how a region's blocks map to home nodes.
type Placement int

const (
	// Local places every block of the region at one node. Used for
	// per-processor private heaps and locally-allocated shared data (the
	// EM3D style where writes always occur at the home).
	Local Placement = iota
	// Interleaved places consecutive blocks round-robin across all nodes,
	// the default for shared arrays without a better mapping.
	Interleaved
	// Blocked splits the region into contiguous per-node chunks, matching
	// row-partitioned grids where each processor's slice is homed with it.
	Blocked
)

func (p Placement) String() string {
	switch p {
	case Local:
		return "local"
	case Interleaved:
		return "interleaved"
	case Blocked:
		return "blocked"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Region is a contiguous allocated range of the address space with one
// placement policy.
type Region struct {
	Name  string
	Base  Addr
	Size  uint64 // bytes, multiple of BlockSize
	Place Placement
	Node  int // for Local placement
}

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool {
	return a >= r.Base && uint64(a-r.Base) < r.Size
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Addr returns the address at byte offset off into the region, panicking on
// overflow so workload indexing bugs surface immediately.
func (r Region) Addr(off uint64) Addr {
	if off >= r.Size {
		panic(fmt.Sprintf("mem: offset %d out of region %q (size %d)", off, r.Name, r.Size))
	}
	return r.Base + Addr(off)
}

// Layout is the machine's address map: an allocator plus the home function.
// It is not safe for concurrent use; workloads allocate during setup only.
type Layout struct {
	nodes   int
	next    Addr
	regions []Region // sorted by Base
}

// NewLayout returns an empty layout for a machine with nodes processor
// nodes. Allocation starts above address 0 so that the zero Addr can be
// treated as "no address" by callers.
func NewLayout(nodes int) *Layout {
	if nodes <= 0 {
		panic("mem: layout needs at least one node")
	}
	return &Layout{nodes: nodes, next: BlockSize}
}

// Nodes returns the node count the layout was built for.
func (l *Layout) Nodes() int { return l.nodes }

// Reset forgets all allocations (keeping the region slice's capacity) so a
// reused machine can run a fresh program's setup. The node count is fixed.
func (l *Layout) Reset() {
	l.next = BlockSize
	l.regions = l.regions[:0]
}

// Regions returns the allocated regions in address order.
func (l *Layout) Regions() []Region { return l.regions }

func (l *Layout) alloc(name string, size uint64, place Placement, node int) Region {
	if size == 0 {
		panic(fmt.Sprintf("mem: zero-size region %q", name))
	}
	if node < 0 || node >= l.nodes {
		panic(fmt.Sprintf("mem: region %q node %d out of range", name, node))
	}
	size = (size + BlockSize - 1) &^ (BlockSize - 1)
	r := Region{Name: name, Base: l.next, Size: size, Place: place, Node: node}
	l.next += Addr(size)
	l.regions = append(l.regions, r)
	return r
}

// AllocLocal allocates size bytes homed entirely at node.
func (l *Layout) AllocLocal(name string, size uint64, node int) Region {
	return l.alloc(name, size, Local, node)
}

// AllocInterleaved allocates size bytes with blocks homed round-robin.
func (l *Layout) AllocInterleaved(name string, size uint64) Region {
	return l.alloc(name, size, Interleaved, 0)
}

// AllocBlocked allocates size bytes split into contiguous per-node chunks.
func (l *Layout) AllocBlocked(name string, size uint64) Region {
	return l.alloc(name, size, Blocked, 0)
}

// RegionOf returns the region containing a, or false if a is unallocated.
func (l *Layout) RegionOf(a Addr) (Region, bool) {
	i := sort.Search(len(l.regions), func(i int) bool { return l.regions[i].End() > a })
	if i < len(l.regions) && l.regions[i].Contains(a) {
		return l.regions[i], true
	}
	return Region{}, false
}

// Home returns the home node of the block containing a. Unallocated
// addresses interleave by block index, so ad-hoc test addresses still have a
// well-defined home.
func (l *Layout) Home(a Addr) int {
	r, ok := l.RegionOf(a)
	if !ok {
		return int(BlockIndex(a)) % l.nodes
	}
	switch r.Place {
	case Local:
		return r.Node
	case Interleaved:
		return int(BlockIndex(a)-BlockIndex(r.Base)) % l.nodes
	case Blocked:
		blocks := r.Size / BlockSize
		idx := BlockIndex(a) - BlockIndex(r.Base)
		return int(idx * uint64(l.nodes) / blocks)
	default:
		panic("mem: unknown placement")
	}
}

// WordsPerBlock is how many 8-byte data words one cache block holds.
const WordsPerBlock = BlockSize / 8

// WordIndex returns which of the block's words address a selects.
func WordIndex(a Addr) int { return int(a>>3) & (WordsPerBlock - 1) }

// Value is the contents of a block: a coherence-checking token (who wrote
// the block last, and that writer's store sequence number) plus the
// block's four 8-byte data words, used by synchronization variables and
// workload generation counters. The zero Value is the initial contents of
// all memory.
type Value struct {
	Writer int
	Seq    uint64
	Words  [WordsPerBlock]uint64
}

// WordAt returns the data word address a selects within the block.
func (v Value) WordAt(a Addr) uint64 { return v.Words[WordIndex(a)] }

// IsZero reports whether v is the initial (never written) value.
func (v Value) IsZero() bool { return v == Value{} }

func (v Value) String() string {
	if v.IsZero() {
		return "<init>"
	}
	return fmt.Sprintf("w%d#%d%v", v.Writer, v.Seq, v.Words)
}

// Memory is a sparse block-granularity value store, used both as the
// simulated main memory contents at the homes and as the checker's golden
// image. The zero value is an all-zeroes memory. Storage is a blockmap
// block table, so reads and writes on the simulation hot path are slice
// loads, not hash lookups.
type Memory struct {
	blocks blockmap.Map[Value]
}

// Read returns the value of the block containing a.
//
//dsi:hotpath
func (m *Memory) Read(a Addr) Value {
	if p := m.blocks.Get(BlockIndex(a)); p != nil {
		return *p
	}
	return Value{}
}

// Write stores v into the block containing a.
//
//dsi:hotpath
func (m *Memory) Write(a Addr, v Value) {
	*m.blocks.Ensure(BlockIndex(a)) = v
}

// Len returns how many blocks have ever been written.
func (m *Memory) Len() int { return m.blocks.Len() }

// ForEach calls fn for every written block in first-write order.
func (m *Memory) ForEach(fn func(block Addr, v Value)) {
	m.blocks.ForEach(func(idx uint64, v *Value) {
		fn(Addr(idx)<<BlockShift, *v)
	})
}

// Reset forgets all contents while keeping the underlying block table's
// allocations for machine reuse.
func (m *Memory) Reset() { m.blocks.Reset() }
