package mem

import (
	"testing"
	"testing/quick"
)

func TestBlockOf(t *testing.T) {
	cases := []struct{ in, want Addr }{
		{0, 0}, {1, 0}, {31, 0}, {32, 32}, {63, 32}, {100, 96},
	}
	for _, c := range cases {
		if got := BlockOf(c.in); got != c.want {
			t.Errorf("BlockOf(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAllocRoundsToBlocks(t *testing.T) {
	l := NewLayout(4)
	r := l.AllocInterleaved("a", 33)
	if r.Size != 64 {
		t.Fatalf("size = %d, want 64 (rounded to blocks)", r.Size)
	}
	if r.Base%BlockSize != 0 {
		t.Fatalf("base %d not block aligned", r.Base)
	}
}

func TestRegionsDisjointAndOrdered(t *testing.T) {
	l := NewLayout(2)
	a := l.AllocLocal("a", 100, 0)
	b := l.AllocInterleaved("b", 200)
	c := l.AllocBlocked("c", 300)
	if a.End() > b.Base || b.End() > c.Base {
		t.Fatal("regions overlap")
	}
	if got, ok := l.RegionOf(b.Addr(5)); !ok || got.Name != "b" {
		t.Fatalf("RegionOf landed in %q", got.Name)
	}
	if _, ok := l.RegionOf(c.End()); ok {
		t.Fatal("RegionOf found a region past the last allocation")
	}
}

func TestHomeLocal(t *testing.T) {
	l := NewLayout(8)
	r := l.AllocLocal("priv3", 1024, 3)
	for off := uint64(0); off < r.Size; off += BlockSize {
		if h := l.Home(r.Addr(off)); h != 3 {
			t.Fatalf("home of local region offset %d = %d, want 3", off, h)
		}
	}
}

func TestHomeInterleaved(t *testing.T) {
	l := NewLayout(4)
	r := l.AllocInterleaved("arr", 16*BlockSize)
	for i := uint64(0); i < 16; i++ {
		want := int(i % 4)
		if h := l.Home(r.Addr(i * BlockSize)); h != want {
			t.Fatalf("block %d home = %d, want %d", i, h, want)
		}
	}
}

func TestHomeBlockedCoversAllNodesEvenly(t *testing.T) {
	l := NewLayout(4)
	const blocks = 64
	r := l.AllocBlocked("grid", blocks*BlockSize)
	counts := make([]int, 4)
	prev := -1
	for i := uint64(0); i < blocks; i++ {
		h := l.Home(r.Addr(i * BlockSize))
		if h < prev {
			t.Fatalf("blocked homes not monotonic: block %d home %d after %d", i, h, prev)
		}
		prev = h
		counts[h]++
	}
	for n, c := range counts {
		if c != blocks/4 {
			t.Fatalf("node %d homes %d blocks, want %d", n, c, blocks/4)
		}
	}
}

func TestHomeUnallocatedStillDefined(t *testing.T) {
	l := NewLayout(4)
	for i := 0; i < 100; i++ {
		a := Addr(i * BlockSize * 7)
		if h := l.Home(a); h < 0 || h >= 4 {
			t.Fatalf("home(%d) = %d out of range", a, h)
		}
	}
}

func TestHomeStableWithinBlockProperty(t *testing.T) {
	l := NewLayout(6)
	l.AllocLocal("a", 4096, 5)
	l.AllocInterleaved("b", 4096)
	l.AllocBlocked("c", 4096)
	f := func(raw uint32, off uint8) bool {
		a := Addr(raw)
		return l.Home(a) == l.Home(BlockOf(a)+Addr(off%BlockSize))
		// every byte of one block must share a home
	}
	// Constrain raw to the allocated range for better coverage.
	g := func(raw uint16, off uint8) bool {
		a := Addr(BlockSize) + Addr(raw)%Addr(3*4096)
		return l.Home(a) == l.Home(BlockOf(a)+Addr(off%BlockSize))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionAddrPanicsOutOfRange(t *testing.T) {
	l := NewLayout(2)
	r := l.AllocInterleaved("a", 64)
	defer func() {
		if recover() == nil {
			t.Error("Region.Addr past the end did not panic")
		}
	}()
	r.Addr(64)
}

func TestMemoryReadWrite(t *testing.T) {
	var m Memory
	if !m.Read(100).IsZero() {
		t.Fatal("fresh memory not zero")
	}
	v := Value{Writer: 3, Seq: 9}
	m.Write(100, v)
	if got := m.Read(101); got != v { // same block
		t.Fatalf("Read(101) = %v, want %v", got, v)
	}
	if got := m.Read(100 + BlockSize); !got.IsZero() {
		t.Fatalf("neighboring block contaminated: %v", got)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestValueString(t *testing.T) {
	if s := (Value{}).String(); s != "<init>" {
		t.Fatalf("zero value string = %q", s)
	}
	if s := (Value{Writer: 2, Seq: 7}).String(); s != "w2#7[0 0 0 0]" {
		t.Fatalf("value string = %q", s)
	}
}

func TestPlacementString(t *testing.T) {
	if Local.String() != "local" || Interleaved.String() != "interleaved" || Blocked.String() != "blocked" {
		t.Fatal("placement names wrong")
	}
	if Placement(9).String() != "Placement(9)" {
		t.Fatal("unknown placement not formatted defensively")
	}
}

func TestLayoutAccessors(t *testing.T) {
	l := NewLayout(4)
	if l.Nodes() != 4 {
		t.Fatalf("nodes = %d", l.Nodes())
	}
	l.AllocLocal("a", 64, 1)
	l.AllocBlocked("b", 64)
	rs := l.Regions()
	if len(rs) != 2 || rs[0].Name != "a" || rs[1].Name != "b" {
		t.Fatalf("regions = %+v", rs)
	}
}

func TestLayoutPanics(t *testing.T) {
	cases := []func(){
		func() { NewLayout(0) },
		func() { NewLayout(2).AllocLocal("z", 0, 0) },
		func() { NewLayout(2).AllocLocal("n", 64, 5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestWordIndexAndWordAt(t *testing.T) {
	var v Value
	for i := 0; i < WordsPerBlock; i++ {
		v.Words[i] = uint64(100 + i)
	}
	base := Addr(3 * BlockSize)
	for i := 0; i < WordsPerBlock; i++ {
		a := base + Addr(i*8)
		if WordIndex(a) != i {
			t.Fatalf("WordIndex(%d) = %d, want %d", a, WordIndex(a), i)
		}
		if v.WordAt(a) != uint64(100+i) {
			t.Fatalf("WordAt(%d) = %d", a, v.WordAt(a))
		}
		// Sub-word addresses select the same word.
		if WordIndex(a+3) != i {
			t.Fatalf("WordIndex(%d) = %d, want %d", a+3, WordIndex(a+3), i)
		}
	}
}

func TestMemoryForEach(t *testing.T) {
	var m Memory
	m.Write(32, Value{Writer: 1, Seq: 1})
	m.Write(96, Value{Writer: 2, Seq: 2})
	seen := map[Addr]Value{}
	m.ForEach(func(a Addr, v Value) { seen[a] = v })
	if len(seen) != 2 || seen[32].Writer != 1 || seen[96].Writer != 2 {
		t.Fatalf("ForEach = %v", seen)
	}
}
