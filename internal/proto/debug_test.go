package proto

// Temporary debugging helper for chaos failures. Kept small; safe to leave
// in the tree but skipped by default.

import (
	"fmt"
	"os"
	"testing"

	"dsisim/internal/core"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
	"dsisim/internal/rng"
)

func TestDebugChaosTrace(t *testing.T) {
	if os.Getenv("DSI_DEBUG") == "" {
		t.Skip("set DSI_DEBUG=1 to trace")
	}
	cfg := Config{Consistency: SC, Policy: core.Policy{
		Identifier:   core.Versions{},
		NewMechanism: func() core.Mechanism { return core.NewFIFO(4) },
	}}
	const watch = mem.Addr(0x100)
	for seed := uint64(1); seed <= 5; seed++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					fmt.Printf("seed %d panicked: %v\n", seed, r)
				}
			}()
			r := newRig(t, rigOpts{nodes: 6, cfg: cfg,
				cacheBytes: 2 * mem.BlockSize, assoc: 1, tolerate: true})
			// Wrap handlers to log traffic for the watched block.
			for i := 0; i < 6; i++ {
				i := i
				cc, dc := r.ccs[i], r.dcs[i]
				r.net.SetHandler(i, func(m netsim.Message) {
					if mem.BlockOf(m.Addr) == watch {
						fmt.Printf("t=%-8d %v\n", r.q.Now(), m)
					}
					switch m.Kind {
					case netsim.Inv, netsim.Recall, netsim.DataS, netsim.DataX,
						netsim.AckX, netsim.FinalAck:
						cc.Handle(m)
					default:
						dc.Handle(m)
					}
				})
			}
			runChaosBody(r, seed)
			r.run()
			if len(r.fails) > 0 {
				fmt.Printf("seed %d fails: %v\n", seed, r.fails)
			}
		}()
	}
}

// runChaosBody duplicates runChaos's op generation without the audit.
func runChaosBody(r *rig, seed uint64) {
	const (
		nodes  = 6
		blocks = 8
		ops    = 400
	)
	rnd := rng.New(seed)
	var issue func(node int, remaining int, seq uint64)
	issue = func(node int, remaining int, seq uint64) {
		if remaining == 0 {
			return
		}
		a := mem.Addr(1+rnd.Intn(blocks)) * mem.BlockSize
		next := func(Result) {
			r.q.After(event.Time(rnd.Intn(50)), func() {
				issue(node, remaining-1, seq+1)
			})
		}
		switch rnd.Intn(10) {
		case 0, 1, 2, 3:
			r.ccs[node].Read(a, next)
		case 4, 5, 6:
			r.ccs[node].Write(a, Store{Writer: node, Seq: seq}, next)
		case 7:
			cc := r.ccs[node]
			cc.DrainWB(func() {
				cc.Swap(a, uint64(node+1), Store{Writer: node, Seq: seq}, next)
			})
		default:
			cc := r.ccs[node]
			cc.DrainWB(func() { cc.SyncFlush(next) })
		}
	}
	for n := 0; n < nodes; n++ {
		n := n
		r.at(event.Time(n), func() { issue(n, ops, 1) })
	}
}
