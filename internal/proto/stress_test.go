package proto

import (
	"fmt"
	"testing"

	"dsisim/internal/core"
	"dsisim/internal/directory"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/rng"
)

// stressConfigs enumerates every protocol configuration the stress test
// exercises.
func stressConfigs() map[string]Config {
	return map[string]Config{
		"sc-base":     scCfg(),
		"sc-states":   dsiCfg(core.States{}),
		"sc-versions": dsiCfg(core.Versions{}),
		"sc-always": {Consistency: SC, Policy: core.Policy{
			Identifier: core.Always{}, UpgradeExemption: true}},
		"sc-fifo": {Consistency: SC, Policy: core.Policy{
			Identifier:   core.Versions{},
			NewMechanism: func() core.Mechanism { return core.NewFIFO(4) },
		}},
		"wc-base":    wcCfg(),
		"wc-tearoff": wcTearOffCfg(),
		"wc-always-tearoff": {Consistency: WC, WriteBufferEntries: 4,
			Policy: core.Policy{Identifier: core.Always{}, TearOff: true}},
		"sc-tearoff": {Consistency: SC, Policy: core.Policy{
			Identifier: core.Versions{}, SCTearOff: true, UpgradeExemption: true}},
		"sc-always-tearoff": {Consistency: SC, Policy: core.Policy{
			Identifier: core.Always{}, SCTearOff: true}},
		"sc-migratory": {Consistency: SC, Policy: core.Policy{Migratory: true}},
		"sc-migratory-dsi": {Consistency: SC, Policy: core.Policy{
			Migratory: true, Identifier: core.States{}, UpgradeExemption: true}},
		"sc-history": {Consistency: SC, Policy: core.Policy{
			NewHistory: func() *core.InvalHistory { return core.NewInvalHistory(8, 2) }}},
		"wc-migratory-tearoff": {Consistency: WC, WriteBufferEntries: 16,
			Policy: core.Policy{Migratory: true, Identifier: core.Versions{}, TearOff: true}},
		"sc-limited2": {Consistency: SC, SharerLimit: 2},
		"sc-limited2-dsi": {Consistency: SC, SharerLimit: 2,
			Policy: core.Policy{Identifier: core.Versions{}, UpgradeExemption: true}},
		"wc-limited3-tearoff": {Consistency: WC, WriteBufferEntries: 8, SharerLimit: 3,
			Policy: core.Policy{Identifier: core.Versions{}, TearOff: true}},
	}
}

// The chaos test: random reads/writes/swaps/flushes from every node over a
// small block set and a tiny cache (maximum eviction pressure), checking
// that the system quiesces, every operation completes, and the directory
// and caches agree at the end.
func TestProtocolChaos(t *testing.T) {
	for name, cfg := range stressConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				runChaos(t, cfg, seed)
			}
		})
	}
}

func runChaos(t *testing.T, cfg Config, seed uint64) {
	t.Helper()
	const (
		nodes  = 6
		blocks = 8
		ops    = 400
	)
	r := newRig(t, rigOpts{
		nodes: nodes, cfg: cfg,
		cacheBytes: 2 * mem.BlockSize, assoc: 1, // brutal eviction pressure
	})
	rnd := rng.New(seed)
	completed := 0
	expected := 0
	// Each node issues a random op stream, one op at a time (issue-next on
	// completion) so SC's single-outstanding-miss rule holds.
	var issue func(node int, remaining int, seq uint64)
	issue = func(node int, remaining int, seq uint64) {
		if remaining == 0 {
			return
		}
		a := mem.Addr(1+rnd.Intn(blocks)) * mem.BlockSize
		next := func(Result) {
			completed++
			// Small random think time keeps nodes out of lockstep.
			r.q.After(event.Time(rnd.Intn(50)), func() {
				issue(node, remaining-1, seq+1)
			})
		}
		expected++
		switch rnd.Intn(10) {
		case 0, 1, 2, 3:
			r.ccs[node].Read(a, next)
		case 4, 5, 6:
			r.ccs[node].Write(a, Store{Writer: node, Seq: seq}, next)
		case 7:
			// Synchronization accesses drain the write buffer first, per
			// the processor contract (internal/cpu does the same).
			cc := r.ccs[node]
			cc.DrainWB(func() {
				cc.Swap(a, uint64(node+1), Store{Writer: node, Seq: seq}, next)
			})
		default:
			cc := r.ccs[node]
			cc.DrainWB(func() { cc.SyncFlush(next) })
		}
	}
	for n := 0; n < nodes; n++ {
		n := n
		r.at(event.Time(n), func() { issue(n, ops, 1) })
	}
	r.run()
	if completed != expected {
		t.Fatalf("seed %d: %d of %d operations completed", seed, completed, expected)
	}
	auditQuiesced(t, r, seed)
}

// auditQuiesced checks directory/cache agreement once the system is idle.
func auditQuiesced(t *testing.T, r *rig, seed uint64) {
	t.Helper()
	for n, cc := range r.ccs {
		if cc.Outstanding() != 0 {
			t.Fatalf("seed %d: node %d still has %d outstanding", seed, n, cc.Outstanding())
		}
	}
	if r.net.InFlight() != 0 {
		t.Fatalf("seed %d: %d messages still in flight", seed, r.net.InFlight())
	}
	for _, dc := range r.dcs {
		if dc.BusyBlocks() != 0 {
			t.Fatalf("seed %d: home %d has busy blocks", seed, dc.Dir().Node())
		}
		dc.Dir().ForEach(func(b mem.Addr, e *directory.Entry) {
			if err := auditEntry(r, dc, b, e); err != nil {
				t.Fatalf("seed %d: block %#x: %v", seed, uint64(b), err)
			}
		})
	}
}

func auditEntry(r *rig, dc *DirCtrl, b mem.Addr, e *directory.Entry) error {
	// Collect who actually holds what.
	var holders, exclusives, tracked directory.NodeSet
	for n, cc := range r.ccs {
		f, ok := cc.Cache().Peek(b)
		if !ok {
			continue
		}
		holders = holders.Add(n)
		if f.State.String() == "Exclusive" {
			exclusives = exclusives.Add(n)
		}
		if !f.TearOff {
			tracked = tracked.Add(n)
		}
	}
	switch {
	case e.State == directory.Exclusive:
		if !exclusives.Only(e.Owner) {
			return fmt.Errorf("dir Exclusive owner %d but exclusive copies %v", e.Owner, exclusives)
		}
		if tracked != exclusives {
			return fmt.Errorf("tracked copies %v beyond the owner", tracked)
		}
	case e.State.IsShared():
		if !exclusives.Empty() {
			return fmt.Errorf("dir %v but exclusive copy exists at %v", e.State, exclusives)
		}
		if tracked != e.Sharers {
			return fmt.Errorf("dir sharers %v but tracked copies %v", e.Sharers, tracked)
		}
		// Every tracked copy agrees with home memory.
		want := dc.Memory().Read(b)
		for n := range r.ccs {
			if f, ok := r.ccs[n].Cache().Peek(b); ok && !f.TearOff && f.Data != want {
				return fmt.Errorf("node %d shared copy %v != memory %v", n, f.Data, want)
			}
		}
	case e.State.IsIdle():
		if !tracked.Empty() {
			return fmt.Errorf("dir idle (%v) but tracked copies at %v", e.State, tracked)
		}
	}
	return nil
}

// SWMR under maximal churn: at every quiesce, at most one writable copy per
// block — verified implicitly above, and here across all stress configs
// with larger caches (no eviction noise) to also check value propagation
// into swaps.
func TestSwapSerializesAcrossNodes(t *testing.T) {
	for name, cfg := range stressConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			r := newRig(t, rigOpts{nodes: 8, cfg: cfg})
			a := blockHomedAt(1, 8, 0)
			// Every node swaps in its id+1; each observed old word must be
			// the word some earlier swap wrote (or 0), and all distinct.
			results := make([]*Result, 8)
			for n := 0; n < 8; n++ {
				results[n] = r.swap(event.Time(n*3), n, a, uint64(n+1), 1)
			}
			r.run()
			seen := map[uint64]int{}
			for n, res := range results {
				mustDone(t, "swap", res)
				seen[res.OldWord]++
				_ = n
			}
			// 8 swaps: old words are 0 plus 7 of the 8 written words, all
			// distinct (a permutation chain).
			if len(seen) != 8 {
				t.Fatalf("old words not distinct: %v", seen)
			}
			if seen[0] != 1 {
				t.Fatalf("initial word 0 observed %d times, want once", seen[0])
			}
		})
	}
}
