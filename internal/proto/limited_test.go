package proto

import (
	"testing"

	"dsisim/internal/directory"
	"dsisim/internal/event"
	"dsisim/internal/netsim"
)

func limitedCfg(limit int) Config {
	return Config{Consistency: SC, SharerLimit: limit}
}

func TestLimitedDirEvictsOnOverflow(t *testing.T) {
	r := newRig(t, rigOpts{cfg: limitedCfg(2)})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.read(500, 1, a)
	res := r.read(1000, 2, a) // third sharer: one pointer must be evicted
	r.run()
	mustDone(t, "third read", res)
	// The grant waited for the eviction ack.
	if res.InvWait == 0 {
		t.Fatal("overflow grant did not wait for the eviction")
	}
	e, _ := r.home(a).Dir().Peek(a)
	if e.Sharers.Count() != 2 || !e.Sharers.Has(2) {
		t.Fatalf("sharers = %v, want 2 entries including node 2", e.Sharers)
	}
	// The evicted sharer (node 0, lowest-numbered) lost its copy.
	if _, hit := r.ccs[0].Cache().Peek(a); hit {
		t.Fatal("evicted sharer kept its copy")
	}
	if r.home(a).Stats().PointerOverflows != 1 {
		t.Fatalf("overflows = %d", r.home(a).Stats().PointerOverflows)
	}
	if r.net.Counts().ByKind[netsim.Inv] != 1 {
		t.Fatalf("Inv count = %d", r.net.Counts().ByKind[netsim.Inv])
	}
}

func TestLimitedDirNoOverflowUnderLimit(t *testing.T) {
	r := newRig(t, rigOpts{cfg: limitedCfg(4)})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.read(500, 1, a)
	r.read(1000, 2, a)
	r.run()
	if r.home(a).Stats().PointerOverflows != 0 {
		t.Fatal("overflow under the limit")
	}
}

func TestLimitedDirWriteStillInvalidatesAll(t *testing.T) {
	r := newRig(t, rigOpts{cfg: limitedCfg(2)})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.read(500, 1, a)
	r.read(1000, 2, a)            // evicts node 0
	res := r.write(3000, 0, a, 1) // node 0 writes: must invalidate 1 and 2
	r.run()
	mustDone(t, "write", res)
	for n := 1; n <= 2; n++ {
		if _, hit := r.ccs[n].Cache().Peek(a); hit {
			t.Fatalf("node %d copy survived the write", n)
		}
	}
	e, _ := r.home(a).Dir().Peek(a)
	if e.State != directory.Exclusive || e.Owner != 0 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestLimitedDirBadLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SharerLimit=1 did not panic")
		}
	}()
	newRig(t, rigOpts{cfg: limitedCfg(1)})
}

// Tear-off copies consume no pointers: under WC+DSI a limited directory
// overflows less.
func TestTearOffRelievesPointerPressure(t *testing.T) {
	base := newRig(t, rigOpts{cfg: Config{Consistency: WC, WriteBufferEntries: 16, SharerLimit: 2}})
	dsi := newRig(t, rigOpts{cfg: Config{Consistency: WC, WriteBufferEntries: 16, SharerLimit: 2,
		Policy: wcTearOffCfg().Policy}})
	a := blockHomedAt(3, 4, 0)
	run := func(r *rig) {
		// Write once to establish a version, then re-read from 3 nodes,
		// write, re-read: the second read round is tear-off under DSI.
		r.write(0, 1, a, 1)
		for round := 0; round < 3; round++ {
			base := event.Time(2000 + round*4000)
			for n := 0; n < 3; n++ {
				r.read(base+event.Time(n*500), n, a)
			}
			r.write(base+3000, 1, a, uint64(round+2))
		}
		r.run()
	}
	run(base)
	run(dsi)
	bo := base.home(a).Stats().PointerOverflows
	do := dsi.home(a).Stats().PointerOverflows
	if do >= bo {
		t.Fatalf("tear-off did not relieve pointer pressure: %d vs %d overflows", do, bo)
	}
}
