package proto

import (
	"testing"

	"dsisim/internal/core"
	"dsisim/internal/directory"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
)

// A remote reader re-reading a block that was modified in between gets a
// marked copy under the version scheme.
func TestVersionsMarkReadAfterConflict(t *testing.T) {
	r := newRig(t, rigOpts{cfg: dsiCfg(core.Versions{})})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)           // node 0 reads (version 0)
	r.write(1000, 1, a, 1)    // node 1 writes: invalidates node 0, version 1
	res := r.read(2000, 0, a) // node 0 re-reads, echoing version 0
	r.run()
	mustDone(t, "re-read", res)
	f, hit := r.ccs[0].Cache().Peek(a)
	if !hit || !f.SI {
		t.Fatalf("re-read copy not marked: %+v (hit=%v)", f, hit)
	}
	if !f.HasVer || f.Ver != 1 {
		t.Fatalf("copy version = %d/%v, want 1", f.Ver, f.HasVer)
	}
}

// A first-time reader (no version to echo) gets a normal block.
func TestVersionsFirstReadUnmarked(t *testing.T) {
	r := newRig(t, rigOpts{cfg: dsiCfg(core.Versions{})})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 1, a, 1)
	res := r.read(1000, 0, a)
	r.run()
	mustDone(t, "read", res)
	f, _ := r.ccs[0].Cache().Peek(a)
	if f.SI {
		t.Fatal("first read was marked despite no version echo")
	}
}

// The states scheme marks any read served from Exclusive, even first-timers.
func TestStatesMarkReadFromExclusive(t *testing.T) {
	r := newRig(t, rigOpts{cfg: dsiCfg(core.States{})})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 1, a, 1)
	r.read(1000, 0, a)
	res2 := r.read(1001, 2, a) // second reader: Shared_SI keeps marking
	r.run()
	mustDone(t, "read2", res2)
	f0, _ := r.ccs[0].Cache().Peek(a)
	f2, _ := r.ccs[2].Cache().Peek(a)
	if !f0.SI || !f2.SI {
		t.Fatalf("states scheme: SI flags = %v,%v; want both marked", f0.SI, f2.SI)
	}
	e, _ := r.home(a).Dir().Peek(a)
	if e.State != directory.SharedSI {
		t.Fatalf("dir state = %v, want Shared_SI", e.State)
	}
}

// Home-node copies are never marked (paper §4.1 special case).
func TestHomeNodeNeverMarked(t *testing.T) {
	r := newRig(t, rigOpts{cfg: dsiCfg(core.States{})})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 0, a, 1)
	res := r.read(1000, 3, a) // node 3 is the home
	r.run()
	mustDone(t, "home read", res)
	f, _ := r.ccs[3].Cache().Peek(a)
	if f.SI {
		t.Fatal("home-node copy was marked for self-invalidation")
	}
}

// Self-invalidation at a sync point sends notifications and moves the
// directory to the DSI idle states.
func TestSyncFlushNotifiesAndSetsIdleS(t *testing.T) {
	r := newRig(t, rigOpts{cfg: dsiCfg(core.States{})})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 1, a, 1)
	r.read(1000, 0, a) // marked (served from Exclusive; recall downgrades node 1)
	fl := r.flush(2000, 0)
	r.run()
	mustDone(t, "flush", fl)
	if _, hit := r.ccs[0].Cache().Peek(a); hit {
		t.Fatal("marked block survived the sync flush")
	}
	c := r.net.Counts()
	if c.ByKind[netsim.SInvNotify] != 1 {
		t.Fatalf("SInvNotify = %d, want 1", c.ByKind[netsim.SInvNotify])
	}
	e, _ := r.home(a).Dir().Peek(a)
	// Node 1 still holds a downgraded shared copy, so the block is not yet
	// idle; it stays in its shared flavor.
	if !e.State.IsShared() || !e.Sharers.Only(1) {
		t.Fatalf("dir entry = state=%v sharers=%v", e.State, e.Sharers)
	}
}

func TestSyncFlushLastSharerEntersIdleS(t *testing.T) {
	r := newRig(t, rigOpts{cfg: dsiCfg(core.States{})})
	a := blockHomedAt(1, 4, 0)
	r.write(0, 0, a, 1)
	// Node 0 self-invalidates its exclusive copy at a sync point.
	fl := r.flush(1000, 0)
	r.run()
	mustDone(t, "flush", fl)
	_ = fl
	// Exclusive marked? No: node 0 is not home; was the block marked?
	// Writes from Idle are unmarked, so nothing was flushed. Set up a
	// genuinely marked exclusive instead below.
	r2 := newRig(t, rigOpts{cfg: dsiCfg(core.States{})})
	b := blockHomedAt(1, 4, 1)
	r2.write(0, 0, b, 1)    // node 0 exclusive (unmarked)
	r2.write(1000, 2, b, 2) // node 2 takes it exclusive: marked (from Exclusive)
	fl2 := r2.flush(2000, 2)
	r2.run()
	mustDone(t, "flush2", fl2)
	c := r2.net.Counts()
	if c.ByKind[netsim.SInvWB] != 1 {
		t.Fatalf("SInvWB = %d, want 1", c.ByKind[netsim.SInvWB])
	}
	e, _ := r2.home(b).Dir().Peek(b)
	if e.State != directory.IdleX {
		t.Fatalf("dir state = %v, want Idle_X", e.State)
	}
	// The self-invalidated dirty data reached home.
	if v := r2.home(b).Memory().Read(b); v.Writer != 2 || v.Seq != 2 {
		t.Fatalf("home memory = %v", v)
	}
}

// After self-invalidation, the next write finds the block idle: no
// invalidation wait at all — the core effect of DSI.
func TestDSIEliminatesInvalidationWait(t *testing.T) {
	r := newRig(t, rigOpts{cfg: dsiCfg(core.Versions{})})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 1, a, 1)
	r.read(1000, 0, a)            // unmarked (first read, no echo)...
	r.write(2000, 1, a, 2)        // node 1 writes again (invalidates node 0)
	r.read(3000, 0, a)            // node 0 re-reads: marked (version mismatch)
	fl := r.flush(4000, 0)        // node 0 self-invalidates at a sync point
	res := r.write(5000, 1, a, 3) // node 1's next write: nobody to invalidate
	r.run()
	mustDone(t, "flush", fl)
	mustDone(t, "final write", res)
	if res.InvWait != 0 {
		t.Fatalf("write after self-invalidation waited %d cycles on invalidations", res.InvWait)
	}
	if !res.Hit && res.Done-5000 > 250 {
		t.Fatalf("write latency %d suggests an invalidation round trip", res.Done-5000)
	}
}

// The upgrade exemption: under SC, a lone sharer upgrading is never marked.
func TestSCUpgradeExemption(t *testing.T) {
	r := newRig(t, rigOpts{cfg: dsiCfg(core.States{})})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 0, a, 1)
	r.read(1000, 1, a) // node 1: marked shared copy (from Exclusive), recall 0
	r.flush(2000, 1)   // node 1 self-invalidates; sharers = {0}
	// Node 0 (lone remaining sharer, downgraded by the recall) upgrades.
	res := r.write(3000, 0, a, 2)
	r.run()
	mustDone(t, "upgrade", res)
	f, _ := r.ccs[0].Cache().Peek(a)
	if f.SI {
		t.Fatal("lone upgrade was marked despite the SC exemption")
	}
}

// Replacement of a marked block enters Idle_SI, which keeps marking.
func TestReplacedMarkedBlockEntersIdleSI(t *testing.T) {
	r := newRig(t, rigOpts{cfg: dsiCfg(core.States{}), cacheBytes: mem.BlockSize, assoc: 1})
	a := blockHomedAt(1, 4, 0)
	b := blockHomedAt(1, 4, 1)
	r.write(0, 2, a, 1)
	r.read(1000, 0, a) // marked copy at node 0 (recall downgrades node 2)
	r.read(2000, 2, b) // node 2's (unmarked) copy of a is displaced first
	r.read(3000, 0, b) // node 0's marked copy displaced last: Repl with SI
	r.run()
	e, _ := r.home(a).Dir().Peek(a)
	if e.State != directory.IdleSI {
		t.Fatalf("dir state = %v, want Idle_SI", e.State)
	}
	// An Idle entry whose last drop was an unmarked copy stays plain Idle:
	// rerun with the displacement order reversed.
	r2 := newRig(t, rigOpts{cfg: dsiCfg(core.States{}), cacheBytes: mem.BlockSize, assoc: 1})
	r2.write(0, 2, a, 1)
	r2.read(1000, 0, a)
	r2.read(2000, 0, b) // marked copy out first
	r2.read(3000, 2, b) // unmarked copy out last
	r2.run()
	e2, _ := r2.home(a).Dir().Peek(a)
	if e2.State != directory.Idle {
		t.Fatalf("dir state = %v, want Idle (last replaced copy was unmarked)", e2.State)
	}
}

// Version numbers survive invalidation in the cache and are echoed on the
// next miss; the FIFO mechanism self-invalidates on displacement.
func TestFIFOMechanismDisplacesEarly(t *testing.T) {
	cfg := Config{
		Consistency: SC,
		Policy: core.Policy{
			Identifier:       core.Versions{},
			NewMechanism:     func() core.Mechanism { return core.NewFIFO(2) },
			UpgradeExemption: true,
		},
	}
	r := newRig(t, rigOpts{cfg: cfg})
	// Three blocks homed at node 3, all modified by node 1 then re-read by
	// node 0 so they arrive marked; FIFO capacity 2 forces the first out.
	blocks := []mem.Addr{blockHomedAt(3, 4, 0), blockHomedAt(3, 4, 1), blockHomedAt(3, 4, 2)}
	tm := event.Time(0)
	for _, b := range blocks {
		r.read(tm, 0, b)
		r.write(tm+1000, 1, b, 1)
		tm += 2000
	}
	for _, b := range blocks {
		r.read(tm, 0, b) // marked re-reads
		tm += 2000
	}
	r.run()
	// The first marked block was displaced from the FIFO and invalidated.
	if _, hit := r.ccs[0].Cache().Peek(blocks[0]); hit {
		t.Fatal("FIFO did not displace the oldest marked block")
	}
	if _, hit := r.ccs[0].Cache().Peek(blocks[2]); !hit {
		t.Fatal("newest marked block should still be cached")
	}
	fifo := r.ccs[0].Mechanism().(*core.FIFO)
	if fifo.Displacements != 1 {
		t.Fatalf("displacements = %d, want 1", fifo.Displacements)
	}
	if r.net.Counts().ByKind[netsim.SInvNotify] != 1 {
		t.Fatalf("SInvNotify = %d, want 1", r.net.Counts().ByKind[netsim.SInvNotify])
	}
}

// Marked exclusive blocks flushed at a sync point carry their data home.
func TestFlushedExclusiveDataIntegrity(t *testing.T) {
	r := newRig(t, rigOpts{cfg: dsiCfg(core.Versions{})})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.write(1000, 1, a, 1)
	r.write(2000, 0, a, 2) // node 0 writes: version mismatch → marked exclusive
	fl := r.flush(3000, 0)
	res := r.read(4000, 2, a)
	r.run()
	mustDone(t, "flush", fl)
	mustDone(t, "read", res)
	if res.Value.Writer != 0 || res.Value.Seq != 2 {
		t.Fatalf("read after exclusive self-invalidation = %v, want w0#2", res.Value)
	}
	if res.InvWait != 0 {
		t.Fatalf("read waited %d on invalidation despite self-invalidation", res.InvWait)
	}
}
