package proto

import (
	"strconv"

	"dsisim/internal/blockmap"
	"dsisim/internal/cache"
	"dsisim/internal/core"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
	"dsisim/internal/obs"
)

type opKind int

const (
	opRead opKind = iota
	opWrite
	opSwap
)

var opKindNames = [...]string{opRead: "read", opWrite: "write", opSwap: "swap"}

func (k opKind) String() string {
	if k < 0 || int(k) >= len(opKindNames) {
		return "opKind(" + strconv.Itoa(int(k)) + ")"
	}
	return opKindNames[k]
}

// mshr is one outstanding miss. Under SC there is at most one per
// processor; under WC there can be one read plus up to WriteBufferEntries
// write misses.
type mshr struct {
	kind  opKind
	addr  mem.Addr // full faulting address (selects the word within the block)
	st    Store    // store to perform on grant (write/swap)
	cont  func(Result)
	start event.Time

	// WC swap: the grant arrived with Pending set; completion waits for the
	// FinalAck.
	waitingFinal bool
	res          Result

	// Hardened protocol (robust.go): the transaction id requests carry (so
	// retransmissions are deduplicated at the directory), the
	// retransmission count, and the timer generation — the armed timer
	// whose generation no longer matches is stale and fires as a no-op.
	txn     uint64
	retries int
	tgen    uint32
}

// wbEntry is one coalescing write buffer slot: a whole cache block's worth
// of buffered words with a per-word valid mask, as the paper describes
// ("each entry in the write buffer contains an entire cache block").
type wbEntry struct {
	addr         mem.Addr
	words        [mem.WordsPerBlock]uint64
	mask         [mem.WordsPerBlock]bool
	writer       int
	seq          uint64
	dataArrived  bool
	pendingFinal bool
	// readWaiters are reads stalled until the block's data arrives.
	readWaiters []func(Result)
	// blockedStores were issued after the block's data arrived but left the
	// cache again; they re-execute when the entry retires.
	blockedStores []pendingStore

	// Hardened protocol (robust.go): while pendingFinal, the entry owns a
	// probe timer for its lost-FinalAck recovery; see mshr for the field
	// semantics.
	txn     uint64
	retries int
	tgen    uint32
}

// coalesce folds a store into the entry.
func (e *wbEntry) coalesce(a mem.Addr, st Store) {
	e.words[mem.WordIndex(a)] = st.Word
	e.mask[mem.WordIndex(a)] = true
	e.writer = st.Writer
	e.seq = st.Seq
}

// apply merges the buffered words onto arrived block contents.
func (e *wbEntry) apply(v mem.Value) mem.Value {
	v.Writer = e.writer
	v.Seq = e.seq
	for i, ok := range e.mask {
		if ok {
			v.Words[i] = e.words[i]
		}
	}
	return v
}

type pendingStore struct {
	addr  mem.Addr
	st    Store
	start event.Time
	cont  func(Result)
}

// ccHot is the hot plane of one block's cache-controller state: the
// outstanding miss (nil when none), the one word every grant handler and
// miss issue probes. At 8 bytes, eight blocks' hot state share one cache
// line (the interleaved record fit four).
type ccHot struct {
	ms *mshr
}

// ccCold is the cold plane: the write-buffer entry (nil when none). Entries
// exist only under weak consistency — bufferStore is the sole allocator and
// runs only when cfg.Consistency == WC — so SC paths may skip this plane
// entirely.
type ccCold struct {
	wb *wbEntry
}

// CacheStats counts cache-controller events.
type CacheStats struct {
	ReadMisses      int64
	WriteMisses     int64
	Upgrades        int64
	SwapMisses      int64
	SIReceived      int64 // marked blocks installed
	CacheSideMarked int64 // blocks marked by the local invalidation-history table
	TearOffRecv     int64
	SyncFlushes     int64
	SINotifies      int64 // SInvNotify/SInvWB messages sent
	InvsReceived    int64
	RecallsRecv     int64
	WBFullStalls    int64
	ReadWBStalls    int64

	// Hardened protocol only (zero when Config.Retry is nil).
	Timeouts      int64 // retry timers that fired for a live transaction
	Retries       int64 // requests/probes retransmitted
	NacksRecv     int64 // directory Nacks received (overload backoff)
	NackHomesSent int64 // re-sent Inv/Recall answered "no copy here"
	StraysIgnored int64 // duplicate/stale messages tolerated instead of failed
	// GrantsReturned counts unsolicited grants handed straight back: the
	// directory served a stale duplicated request as fresh and recorded a
	// copy here that this cache never asked for (see giveBackGrant).
	GrantsReturned int64
}

// CacheCtrl is the cache controller of one node: it services the
// processor's loads/stores/swaps, reacts to directory coherence actions,
// and performs self-invalidation per the configured DSI mechanism.
type CacheCtrl struct {
	env    *Env
	node   int
	cfg    Config
	c      *cache.Cache
	mech   core.Mechanism
	hist   *core.InvalHistory // cache-side identification, may be nil
	server event.Server

	// scTear is the block address of the (single) sequentially consistent
	// tear-off copy, 0 when none (§3.3: invalidated at the next miss).
	scTear mem.Addr

	// blocks is the dense per-block state table holding each block's
	// outstanding miss and write-buffer entry (replaces the mshrs and
	// entries hash maps), split SoA-style: the miss pointer lives in the
	// hot plane, the WC-only write-buffer pointer in the cold one;
	// msCount/wbCount track how many records hold a live miss or unretired
	// entry.
	blocks  blockmap.SoA[ccHot, ccCold]
	msCount int
	wbCount int

	// Weak consistency write buffer overflow queue.
	stalled []pendingStore
	drain   []func()

	// Free lists for the hot-path records (single-threaded per machine):
	// retired MSHRs, retired write-buffer entries, and the typed-event
	// records that replace the per-miss and per-flush closures.
	msFree    []*mshr
	wbFree    []*wbEntry
	sendFree  []*sendCall
	flushFree []*flushCall
	rtFree    []*retryCall

	stats CacheStats
}

// sendCall is a pooled record carrying a request message across the cache
// controller occupancy delay (the typed event argument replacing the
// closure in issueMiss).
type sendCall struct {
	cc  *CacheCtrl
	msg netsim.Message
}

// doSendCall is the static action for deferred request injection.
//
//dsi:hotpath
func doSendCall(arg any) {
	c := arg.(*sendCall)
	cc, m := c.cc, c.msg
	c.msg = netsim.Message{}
	cc.sendFree = append(cc.sendFree, c)
	cc.send(m)
}

// flushCall is a pooled record resuming the processor after a sync-point
// self-invalidation flush.
type flushCall struct {
	cc   *CacheCtrl
	cont func(Result)
}

// doFlushCall is the static action completing SyncFlush; it fires exactly
// at the resume time, so Done is the current clock.
func doFlushCall(arg any) {
	c := arg.(*flushCall)
	cc, cont := c.cc, c.cont
	c.cont = nil
	cc.flushFree = append(cc.flushFree, c)
	cont(Result{Done: cc.env.Q.Now()})
}

// newMshr takes an MSHR from the free list (or allocates one) and
// initializes it to init.
func (cc *CacheCtrl) newMshr(init mshr) *mshr {
	if n := len(cc.msFree); n > 0 {
		ms := cc.msFree[n-1]
		cc.msFree = cc.msFree[:n-1]
		*ms = init
		return ms
	}
	ms := new(mshr)
	*ms = init
	return ms
}

// freeMshr recycles a retired MSHR. Callers must not touch ms afterwards.
func (cc *CacheCtrl) freeMshr(ms *mshr) {
	*ms = mshr{}
	cc.msFree = append(cc.msFree, ms)
}

// NewCacheCtrl builds the cache controller for node with geometry geo.
func NewCacheCtrl(env *Env, node int, cfg Config, geo cache.Config) *CacheCtrl {
	cc := &CacheCtrl{
		env:  env,
		node: node,
		cfg:  cfg,
		c:    cache.New(geo),
		mech: cfg.Policy.Mechanism(),
	}
	if cfg.Policy.NewHistory != nil {
		cc.hist = cfg.Policy.NewHistory()
	}
	if cfg.Consistency == WC && cfg.WriteBufferEntries <= 0 {
		panic("proto: WC requires a write buffer")
	}
	return cc
}

// Reset returns the controller to its initial state under a (possibly
// different) protocol configuration, keeping every allocation: the cache
// arrays, the per-block table, and the record free lists. The geometry is
// fixed at construction; cfg carries the per-run protocol knobs. Machine
// reuse calls this between runs.
func (cc *CacheCtrl) Reset(cfg Config) {
	if cfg.Consistency == WC && cfg.WriteBufferEntries <= 0 {
		panic("proto: WC requires a write buffer")
	}
	cc.cfg = cfg
	cc.c.Reset()
	cc.mech = cfg.Policy.Mechanism()
	cc.hist = nil
	if cfg.Policy.NewHistory != nil {
		cc.hist = cfg.Policy.NewHistory()
	}
	cc.server.Reset()
	cc.scTear = 0
	cc.blocks.Reset()
	cc.msCount, cc.wbCount = 0, 0
	clear(cc.stalled)
	cc.stalled = cc.stalled[:0]
	clear(cc.drain)
	cc.drain = cc.drain[:0]
	cc.stats = CacheStats{}
}

// block returns b's hot state plane, creating the record on first touch.
//
//dsi:hotpath
func (cc *CacheCtrl) block(b mem.Addr) *ccHot {
	_, h := cc.blocks.Ensure(mem.BlockIndex(b))
	return h
}

// wbOf returns b's cold write-buffer plane, creating the record on first
// touch.
//
//dsi:hotpath
func (cc *CacheCtrl) wbOf(b mem.Addr) *ccCold {
	id, _ := cc.blocks.Ensure(mem.BlockIndex(b))
	return cc.blocks.Cold(id)
}

// Cache exposes the cache array for checkers.
func (cc *CacheCtrl) Cache() *cache.Cache { return cc.c }

// Mechanism exposes the per-node DSI mechanism (e.g. to read FIFO
// displacement counts).
func (cc *CacheCtrl) Mechanism() core.Mechanism { return cc.mech }

// Stats returns a snapshot of the counters.
func (cc *CacheCtrl) Stats() CacheStats { return cc.stats }

// Outstanding reports in-flight misses plus unretired write-buffer entries,
// for quiesce detection.
func (cc *CacheCtrl) Outstanding() int { return cc.msCount + cc.wbCount + len(cc.stalled) }

// WBEmpty reports whether the write buffer has fully drained.
//
//dsi:hotpath
func (cc *CacheCtrl) WBEmpty() bool { return cc.wbCount == 0 && len(cc.stalled) == 0 }

//dsi:hotpath
func (cc *CacheCtrl) send(m netsim.Message) {
	m.Src = cc.node
	cc.env.Net.Send(m)
}

func (cc *CacheCtrl) home(a mem.Addr) int { return cc.env.Layout.Home(a) }

// --- processor-facing operations -------------------------------------------

// Read performs a load. cont may run synchronously on a hit.
//
//dsi:hotpath
func (cc *CacheCtrl) Read(a mem.Addr, cont func(Result)) {
	now := cc.env.Q.Now()
	if f, hit := cc.c.Lookup(a); hit {
		cont(Result{Done: now, Hit: true, Value: f.Data})
		return
	}
	b := mem.BlockOf(a)
	id, blk := cc.blocks.Ensure(mem.BlockIndex(b))
	// Write-buffer entries exist only under WC (see ccCold), so the SC read
	// miss never touches the cold plane.
	if cc.cfg.Consistency == WC {
		if e := cc.blocks.Cold(id).wb; e != nil {
			if !e.dataArrived {
				// Stalled behind an outstanding write miss ("read wb" time).
				cc.stats.ReadWBStalls++
				e.readWaiters = append(e.readWaiters, cont)
				return
			}
			// Data arrived but the block has since left the cache; fall
			// through to a fresh read miss (the earlier writeback is
			// FIFO-ordered ahead of the new request).
		}
	}
	cc.stats.ReadMisses++
	cc.issueMiss(b, blk, cc.newMshr(mshr{kind: opRead, cont: cont, start: now}))
}

// Write performs a store. Under SC the processor stalls until completion;
// under WC the store is buffered and cont runs when the write buffer
// accepts it.
//
//dsi:hotpath
func (cc *CacheCtrl) Write(a mem.Addr, st Store, cont func(Result)) {
	now := cc.env.Q.Now()
	if f, hit := cc.c.Lookup(a); hit && f.State == cache.Exclusive {
		f.Data = st.Merge(f.Data, a)
		cont(Result{Done: now, Hit: true})
		return
	}
	if cc.cfg.Consistency == WC {
		cc.bufferStore(pendingStore{addr: a, st: st, start: now, cont: cont})
		return
	}
	cc.stats.WriteMisses++
	b := mem.BlockOf(a)
	cc.issueMiss(b, cc.block(b), cc.newMshr(mshr{kind: opWrite, addr: a, st: st, cont: cont, start: now}))
}

// Swap atomically exchanges the word at a, returning the previous word. The
// caller must drain the write buffer first under WC.
func (cc *CacheCtrl) Swap(a mem.Addr, newWord uint64, st Store, cont func(Result)) {
	now := cc.env.Q.Now()
	st.Word = newWord
	if f, hit := cc.c.Lookup(a); hit && f.State == cache.Exclusive {
		old := f.Data.WordAt(a)
		prev := f.Data
		f.Data = st.Merge(f.Data, a)
		cont(Result{Done: now, Hit: true, OldWord: old, Value: prev})
		return
	}
	cc.stats.SwapMisses++
	b := mem.BlockOf(a)
	cc.issueMiss(b, cc.block(b), cc.newMshr(mshr{kind: opSwap, addr: a, st: st, cont: cont, start: now}))
}

// SyncFlush performs the DSI self-invalidation due at a synchronization
// point: tear-off blocks flash-clear in one cycle; tracked marked blocks
// are invalidated and their notifications injected back-to-back. cont runs
// once the processor may proceed (all notifications injected).
func (cc *CacheCtrl) SyncFlush(cont func(Result)) {
	now := cc.env.Q.Now()
	cc.stats.SyncFlushes++
	evs := cc.mech.OnSync(cc.c)
	resume := now + event.Time(cc.mech.ScanLatency(cc.c, len(evs)))
	for _, ev := range evs {
		if sk := cc.env.Sink; sk != nil {
			sk.OnSelfInval(now, cc.node, ev.Addr, ev.State, ev.TearOff, false)
		}
		if ev.TearOff {
			if r := now + TearOffFlash; r > resume {
				resume = r
			}
			continue
		}

		cc.notifySelfInval(ev)
	}
	if free := cc.env.Net.NIFree(cc.node); free > resume {
		resume = free
	}
	var fc *flushCall
	if n := len(cc.flushFree); n > 0 {
		fc = cc.flushFree[n-1]
		cc.flushFree = cc.flushFree[:n-1]
	} else {
		fc = &flushCall{cc: cc}
	}
	fc.cont = cont
	cc.env.Q.AtCall(resume, doFlushCall, fc)
}

// DrainWB calls cont once every buffered write has been acknowledged (a
// no-op under SC).
func (cc *CacheCtrl) DrainWB(cont func()) {
	if cc.cfg.Consistency != WC || cc.WBEmpty() {
		cont()
		return
	}
	cc.drain = append(cc.drain, cont)
}

// --- miss machinery ---------------------------------------------------------

//dsi:hotpath
func (cc *CacheCtrl) issueMiss(b mem.Addr, blk *ccHot, ms *mshr) {
	// Sequentially consistent tear-off copies die at the next cache miss
	// (Scheurich's condition): until this processor misses, it cannot
	// observe new values, so its reads order legally before the conflicting
	// write.
	if cc.scTear != 0 {
		ev, had := cc.c.Invalidate(cc.scTear) // untracked: silent
		if sk := cc.env.Sink; sk != nil && had {
			sk.OnCacheState(cc.env.Q.Now(), cc.node, cc.scTear, 0, ev.State, cache.Invalid, obs.FlagTearOff)
		}
		cc.scTear = 0
	}
	if blk.ms != nil {
		cc.env.fail("cache %d: duplicate miss for %#x", cc.node, uint64(b))
		return
	}
	if cc.cfg.Consistency == SC && cc.msCount != 0 {
		cc.env.fail("cache %d: multiple outstanding misses under SC", cc.node)
	}
	blk.ms = ms
	cc.msCount++
	// Transaction ids are drawn unconditionally: the counter advances with
	// the protocol's own deterministic order, so ids are stable run to run
	// whether or not a sink is attached (and cost nothing either way).
	// Retransmissions reuse the id so the directory can deduplicate them.
	ms.txn = cc.env.NextTxn()
	cc.sendRequest(b, ms, true)
	if cc.cfg.Retry != nil {
		cc.armMissTimer(b, ms)
	}
}

// sendRequest builds and injects the miss request for ms, deriving the kind
// from the current cache state. It serves both the initial issue and
// hardened-protocol retransmissions (first distinguishes them so counters
// are not inflated by retries).
//
//dsi:hotpath
func (cc *CacheCtrl) sendRequest(b mem.Addr, ms *mshr, first bool) {
	kind := netsim.GetS
	var ver uint8
	var hasVer bool
	if ms.kind == opRead {
		ver, hasVer = cc.c.EchoVersion(b)
	} else {
		kind = netsim.GetX
		if f, ok := cc.c.Peek(b); ok && f.State == cache.Shared {
			kind = netsim.Upgrade
			ver, hasVer = f.Ver, f.HasVer
			if first {
				cc.stats.Upgrades++
			}
		} else {
			ver, hasVer = cc.c.EchoVersion(b)
		}
	}
	_, done := cc.server.Admit(cc.env.Q.Now(), CacheOccupancy)
	sc := cc.newSendCall()
	sc.msg = netsim.Message{Kind: kind, Dst: cc.home(b), Addr: b, Ver: ver, HasVer: hasVer, Txn: ms.txn}
	cc.env.Q.AtCall(done, doSendCall, sc)
}

//dsi:hotpath
func (cc *CacheCtrl) newSendCall() *sendCall {
	if n := len(cc.sendFree); n > 0 {
		sc := cc.sendFree[n-1]
		cc.sendFree = cc.sendFree[:n-1]
		return sc
	}
	return &sendCall{cc: cc}
}

// install places an arriving block, emitting any displacement writeback.
//
//dsi:hotpath
func (cc *CacheCtrl) install(b mem.Addr, st cache.State, m netsim.Message) {
	sk := cc.env.Sink
	var old cache.State
	if sk != nil {
		if f, ok := cc.c.Peek(b); ok {
			old = f.State
		}
	}
	fill := cache.Fill{State: st, SI: m.SI, TearOff: m.TearOff, Ver: m.Ver, HasVer: m.HasVer, Data: m.Data}
	if ev, evicted := cc.c.Install(b, fill); evicted {
		if sk != nil {
			var fl uint8
			if ev.TearOff {
				fl = obs.FlagTearOff
			}
			sk.OnCacheState(cc.env.Q.Now(), cc.node, ev.Addr, 0, ev.State, cache.Invalid, fl)
		}
		cc.evictionMessage(ev)
	}
	if sk != nil {
		var fl uint8
		if m.SI {
			fl |= obs.FlagSI
		}
		if m.TearOff {
			fl |= obs.FlagTearOff
		}
		if m.HasVer {
			fl |= obs.FlagHasVer
		}
		sk.OnCacheState(cc.env.Q.Now(), cc.node, b, m.Txn, old, st, fl)
	}
	if m.SI {
		cc.stats.SIReceived++
		if m.TearOff {
			cc.stats.TearOffRecv++
		}
	}
	if m.TearOff && cc.cfg.Policy.SCTearOff {
		// At most one tear-off copy per cache under SC: displace the old
		// one (silently — it was never tracked).
		if cc.scTear != 0 && cc.scTear != b {
			ev, had := cc.c.Invalidate(cc.scTear)
			if sk != nil && had {
				sk.OnCacheState(cc.env.Q.Now(), cc.node, cc.scTear, 0, ev.State, cache.Invalid, obs.FlagTearOff)
			}
		}
		cc.scTear = b
	}
}

// postInstall applies cache-side identification and runs the DSI
// mechanism's install hook. It must run after the pending store/swap has
// been applied: a full FIFO may displace — and self-invalidate — the block
// that just arrived.
func (cc *CacheCtrl) postInstall(b mem.Addr, m netsim.Message) {
	marked := m.SI
	// Cache-side identification (§3.1): mark locally if this block's
	// invalidation history crosses the threshold. The home-node exemption
	// applies here just as it does at the directory.
	if cc.hist != nil && !marked && cc.home(b) != cc.node {
		if cc.hist.MarkLocal(cc.c, b) {
			cc.stats.CacheSideMarked++
			marked = true
		}
	}
	if !marked {
		return
	}
	for _, ev := range cc.mech.OnInstall(cc.c, b) {
		if sk := cc.env.Sink; sk != nil {
			sk.OnSelfInval(cc.env.Q.Now(), cc.node, ev.Addr, ev.State, ev.TearOff, true)
		}
		if !ev.TearOff {
			cc.notifySelfInval(ev)
		}
	}
}

// evictionMessage tells the home a displaced copy is gone: WB with data for
// Exclusive, a Repl hint for tracked Shared, silence for tear-off copies.
func (cc *CacheCtrl) evictionMessage(ev cache.Evicted) {
	if ev.TearOff {
		return
	}
	home := cc.home(ev.Addr)
	if ev.State == cache.Exclusive {
		cc.send(netsim.Message{Kind: netsim.WB, Dst: home, Addr: ev.Addr, Data: ev.Data, SI: ev.SI})
		return
	}
	cc.send(netsim.Message{Kind: netsim.Repl, Dst: home, Addr: ev.Addr, SI: ev.SI})
}

// notifySelfInval tells the home a tracked block self-invalidated.
func (cc *CacheCtrl) notifySelfInval(ev cache.Evicted) {
	home := cc.home(ev.Addr)
	cc.stats.SINotifies++
	if ev.State == cache.Exclusive {
		cc.send(netsim.Message{Kind: netsim.SInvWB, Dst: home, Addr: ev.Addr, Data: ev.Data, SI: true})
		return
	}
	cc.send(netsim.Message{Kind: netsim.SInvNotify, Dst: home, Addr: ev.Addr, SI: true})
}

// --- write buffer (weak consistency) ----------------------------------------

func (cc *CacheCtrl) bufferStore(ps pendingStore) {
	b := mem.BlockOf(ps.addr)
	now := cc.env.Q.Now()
	id, blk := cc.blocks.Ensure(mem.BlockIndex(b))
	w := cc.blocks.Cold(id)
	if e := w.wb; e != nil {
		if !e.dataArrived {
			// Coalesce into the outstanding entry.
			e.coalesce(ps.addr, ps.st)
			ps.cont(Result{Done: now, Hit: true, WBFullWait: now - ps.start})
			return
		}
		// Data arrived but the block left the cache (otherwise the store
		// would have hit Exclusive); re-execute after the entry retires.
		e.blockedStores = append(e.blockedStores, ps)
		return
	}
	if cc.wbCount >= cc.cfg.WriteBufferEntries {
		cc.stats.WBFullStalls++
		cc.stalled = append(cc.stalled, ps)
		return
	}
	cc.allocateEntry(b, blk, w, ps)
}

func (cc *CacheCtrl) allocateEntry(b mem.Addr, blk *ccHot, w *ccCold, ps pendingStore) {
	now := cc.env.Q.Now()
	var e *wbEntry
	if n := len(cc.wbFree); n > 0 {
		e = cc.wbFree[n-1]
		cc.wbFree = cc.wbFree[:n-1]
		*e = wbEntry{addr: b, readWaiters: e.readWaiters[:0], blockedStores: e.blockedStores[:0]}
	} else {
		e = &wbEntry{addr: b}
	}
	e.coalesce(ps.addr, ps.st)
	w.wb = e
	cc.wbCount++
	cc.stats.WriteMisses++
	cc.issueMiss(b, blk, cc.newMshr(mshr{kind: opWrite, addr: ps.addr, st: ps.st, start: ps.start}))
	ps.cont(Result{Done: now, WBFullWait: now - ps.start})
}

// retire frees a write-buffer slot and wakes anything waiting on it.
func (cc *CacheCtrl) retire(e *wbEntry) {
	cc.wbOf(e.addr).wb = nil
	cc.wbCount--
	blocked := e.blockedStores
	e.blockedStores = nil
	for _, ps := range blocked {
		cc.bufferStore(ps)
	}
	for len(cc.stalled) > 0 && cc.wbCount < cc.cfg.WriteBufferEntries {
		ps := cc.stalled[0]
		cc.stalled = cc.stalled[1:]
		cc.bufferStore(ps)
	}
	if cc.WBEmpty() {
		waiters := cc.drain
		cc.drain = nil
		for _, w := range waiters {
			w()
		}
	}
	*e = wbEntry{}
	cc.wbFree = append(cc.wbFree, e)
}

// --- network-facing handlers -------------------------------------------------

// Handle dispatches one incoming coherence message bound for the cache.
//
//dsi:hotpath
func (cc *CacheCtrl) Handle(m netsim.Message) {
	switch m.Kind {
	case netsim.Inv:
		cc.onInv(m)
	case netsim.Recall:
		cc.onRecall(m)
	case netsim.DataS:
		cc.onDataS(m)
	case netsim.DataX:
		cc.onDataX(m)
	case netsim.AckX:
		cc.onAckX(m)
	case netsim.FinalAck:
		cc.onFinalAck(m)
	case netsim.Nack:
		cc.onNack(m)
	default:
		// The fabric routes requests, acks, and drop notices to the home
		// directory; only grants, probes, and recall/invalidate traffic ever
		// target a cache.
		//dsi:unreachable not-routed — home-bound kinds never reach a cache
		cc.env.fail("cache %d: unexpected message %v", cc.node, m)
	}
}

func (cc *CacheCtrl) onInv(m netsim.Message) {
	cc.stats.InvsReceived++
	b := mem.BlockOf(m.Addr)
	if cc.hist != nil {
		cc.hist.OnInvalidate(b)
	}
	ev, had := cc.c.Invalidate(b)
	if sk := cc.env.Sink; sk != nil && had {
		sk.OnCacheState(cc.env.Q.Now(), cc.node, b, m.Txn, ev.State, cache.Invalid, 0)
	}
	// Acknowledge unconditionally: if the copy is gone, our replacement
	// notice is already FIFO-ordered ahead of this ack.
	if had && ev.State == cache.Exclusive {
		cc.send(netsim.Message{Kind: netsim.InvAckData, Dst: m.Src, Addr: b, Data: ev.Data, Txn: m.Txn})
		return
	}
	if !had && cc.cfg.Retry != nil {
		// Hardened: a re-sent Inv found no copy (the real ack or drop
		// notice is FIFO-ordered ahead of this reply). Answer with the
		// negative ack so the taxonomy stays clean; the directory consumes
		// it like an InvAck.
		cc.stats.NackHomesSent++
		cc.send(netsim.Message{Kind: netsim.NackHome, Dst: m.Src, Addr: b, Txn: m.Txn})
		return
	}
	cc.send(netsim.Message{Kind: netsim.InvAck, Dst: m.Src, Addr: b, Txn: m.Txn})
}

func (cc *CacheCtrl) onRecall(m netsim.Message) {
	cc.stats.RecallsRecv++
	b := mem.BlockOf(m.Addr)
	if data, ok := cc.c.Downgrade(b); ok {
		if sk := cc.env.Sink; sk != nil {
			sk.OnCacheState(cc.env.Q.Now(), cc.node, b, m.Txn, cache.Exclusive, cache.Shared, 0)
		}
		cc.send(netsim.Message{Kind: netsim.RecallAck, Dst: m.Src, Addr: b, Data: data, Txn: m.Txn})
		return
	}
	// Copy already written back or self-invalidated; the data is on its way
	// to the home ahead of this ack.
	if cc.cfg.Retry != nil {
		if _, held := cc.c.Peek(b); !held {
			cc.stats.NackHomesSent++
			cc.send(netsim.Message{Kind: netsim.NackHome, Dst: m.Src, Addr: b, Txn: m.Txn})
			return
		}
	}
	cc.send(netsim.Message{Kind: netsim.InvAck, Dst: m.Src, Addr: b, Txn: m.Txn})
}

func (cc *CacheCtrl) onDataS(m netsim.Message) {
	b := mem.BlockOf(m.Addr)
	blk := cc.block(b)
	ms := blk.ms
	if ms == nil || ms.kind != opRead || (cc.cfg.Retry != nil && ms.txn != m.Txn) {
		if cc.cfg.Retry != nil {
			// Hardened: a duplicated or replayed grant whose miss already
			// completed (the transaction id no longer matches any live
			// miss). Per-pair FIFO guarantees a fresh miss's real grant
			// cannot be overtaken by a stale one, so dropping is safe —
			// unless the grant came from a stale duplicated request served
			// as fresh: with no live state and no copy here, the directory
			// just recorded this node as a sharer, so return the phantom
			// copy with a replacement notice to keep the sharer set honest.
			if ms == nil && cc.wbOf(b).wb == nil && !m.TearOff {
				if _, held := cc.c.Peek(b); !held {
					cc.stats.GrantsReturned++
					cc.send(netsim.Message{Kind: netsim.Repl, Dst: cc.home(b), Addr: b})
					return
				}
			}
			cc.stats.StraysIgnored++
			return
		}
		cc.env.fail("cache %d: unexpected DataS for %#x", cc.node, uint64(b))
		return
	}
	blk.ms = nil
	cc.msCount--
	cc.install(b, cache.Shared, m)
	cont := ms.cont
	cc.freeMshr(ms)
	cont(Result{Done: cc.env.Q.Now(), InvWait: m.InvWait, Value: m.Data})
	cc.postInstall(b, m)
}

func (cc *CacheCtrl) onDataX(m netsim.Message) {
	b := mem.BlockOf(m.Addr)
	blk := cc.block(b)
	ms := blk.ms
	hardened := cc.cfg.Retry != nil
	if ms == nil {
		if hardened {
			cc.recoverGrantReplay(b, m)
			return
		}
		cc.env.fail("cache %d: unexpected DataX for %#x", cc.node, uint64(b))
		return
	}
	if hardened && ms.txn != m.Txn {
		cc.stats.StraysIgnored++
		return
	}
	if ms.waitingFinal {
		// The grant was already consumed and the swap applied; installing
		// again would recompute OldWord from post-swap contents. Only a
		// replayed grant with Pending cleared — standing in for the lost
		// FinalAck — completes the operation here.
		if hardened && !m.Pending {
			blk.ms = nil
			cc.msCount--
			res := ms.res
			res.Done = cc.env.Q.Now()
			cont := ms.cont
			cc.freeMshr(ms)
			cont(res)
			return
		}
		if hardened {
			cc.stats.StraysIgnored++
			return
		}
		cc.env.fail("cache %d: duplicate DataX for %#x", cc.node, uint64(b))
		return
	}
	blk.ms = nil
	cc.msCount--
	cc.install(b, cache.Exclusive, m)
	if ms.kind == opRead {
		// A migratory exclusive grant answering a read: the block arrives
		// writable in anticipation of the upgrade this processor would
		// otherwise issue.
		cont := ms.cont
		cc.freeMshr(ms)
		cont(Result{Done: cc.env.Q.Now(), InvWait: m.InvWait, Value: m.Data})
	} else {
		cc.applyGrant(b, blk, ms, m)
	}
	cc.postInstall(b, m)
}

func (cc *CacheCtrl) onAckX(m netsim.Message) {
	b := mem.BlockOf(m.Addr)
	blk := cc.block(b)
	ms := blk.ms
	if ms == nil || ms.kind == opRead || ms.waitingFinal ||
		(cc.cfg.Retry != nil && ms.txn != m.Txn) {
		if cc.cfg.Retry != nil {
			// An upgrade grant from a stale duplicated request served as
			// fresh is refused like a DataX: the AckX carries the block's
			// committed contents as bookkeeping, so the give-back writeback
			// has the data it needs (see giveBackGrant).
			if ms == nil && cc.wbOf(b).wb == nil {
				cc.giveBackGrant(b, m)
				return
			}
			cc.stats.StraysIgnored++
			return
		}
		cc.env.fail("cache %d: unexpected AckX for %#x", cc.node, uint64(b))
		return
	}
	blk.ms = nil
	cc.msCount--
	// The AckX carries the block's committed contents as simulator
	// bookkeeping (a tracked shared copy always equals home memory, so no
	// data moves on the simulated wire): even if the shared copy was
	// displaced while the upgrade was in flight — possible under WC, where
	// fills for other blocks arrive while stores are buffered — the install
	// below reconstructs it exactly.
	cc.install(b, cache.Exclusive, m)
	cc.applyGrant(b, blk, ms, m)
	cc.postInstall(b, m)
}

// applyGrant performs the buffered store or swap once exclusive ownership
// arrives, and completes the processor operation (or parks it awaiting the
// weak-consistency FinalAck).
func (cc *CacheCtrl) applyGrant(b mem.Addr, blk *ccHot, ms *mshr, m netsim.Message) {
	now := cc.env.Q.Now()
	f, ok := cc.c.Peek(b)
	if !ok {
		cc.env.fail("cache %d: granted block %#x not present", cc.node, uint64(b))
		return
	}
	switch ms.kind {
	case opRead:
		// Read grants install via onDataS and never carry a buffered store.
		cc.env.fail("cache %d: read grant routed to applyGrant for %#x", cc.node, uint64(b))
	case opWrite:
		if cc.cfg.Consistency == WC {
			// Carry the transaction identity (and timer generation, so the
			// retired miss timer goes stale) over to the entry: while
			// pendingFinal it owns the lost-FinalAck probe timer.
			txnID, gen := ms.txn, ms.tgen
			cc.freeMshr(ms)
			e := cc.wbOf(b).wb
			if e == nil {
				cc.env.fail("cache %d: WC write grant without wb entry for %#x", cc.node, uint64(b))
				return
			}
			f.Data = e.apply(f.Data)
			e.dataArrived = true
			waiters := e.readWaiters
			e.readWaiters = nil
			for _, w := range waiters {
				w(Result{Done: now, WBRead: true, Value: f.Data})
			}
			if m.Pending {
				e.pendingFinal = true
				if cc.cfg.Retry != nil {
					e.txn, e.tgen, e.retries = txnID, gen, 0
					cc.armFinalTimer(b, e)
				}
			} else {
				cc.retire(e)
			}
			return
		}
		f.Data = ms.st.Merge(f.Data, ms.addr)
		cont := ms.cont
		cc.freeMshr(ms)
		cont(Result{Done: now, InvWait: m.InvWait})
	case opSwap:
		old := f.Data.WordAt(ms.addr)
		prev := f.Data
		f.Data = ms.st.Merge(f.Data, ms.addr)
		res := Result{Done: now, InvWait: m.InvWait, OldWord: old, Value: prev}
		if m.Pending {
			// WC: the swap is a synchronization access; hold completion
			// until the directory's FinalAck.
			ms.waitingFinal = true
			ms.res = res
			blk.ms = ms
			cc.msCount++
			return
		}
		cont := ms.cont
		cc.freeMshr(ms)
		cont(res)
	}
}

func (cc *CacheCtrl) onFinalAck(m netsim.Message) {
	b := mem.BlockOf(m.Addr)
	hardened := cc.cfg.Retry != nil
	id, blk := cc.blocks.Ensure(mem.BlockIndex(b))
	if e := cc.blocks.Cold(id).wb; e != nil {
		if !e.pendingFinal || (hardened && e.txn != m.Txn) {
			if hardened {
				cc.stats.StraysIgnored++
				return
			}
			cc.env.fail("cache %d: FinalAck for unpending entry %#x", cc.node, uint64(b))
			return
		}
		cc.retire(e)
		return
	}
	if ms := blk.ms; ms != nil && ms.waitingFinal {
		if hardened && ms.txn != m.Txn {
			cc.stats.StraysIgnored++
			return
		}
		blk.ms = nil
		cc.msCount--
		res := ms.res
		res.Done = cc.env.Q.Now()
		cont := ms.cont
		cc.freeMshr(ms)
		cont(res)
		return
	}
	if hardened {
		// Duplicated FinalAck whose entry already retired.
		cc.stats.StraysIgnored++
		return
	}
	cc.env.fail("cache %d: stray FinalAck for %#x", cc.node, uint64(b))
}
