package proto

import (
	"testing"

	"dsisim/internal/cache"
	"dsisim/internal/core"
	"dsisim/internal/directory"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
)

// wcTearOffCfg is WC with DSI (version numbers) and tear-off blocks, the
// configuration of §5.3 / Table 3.
func wcTearOffCfg() Config {
	return Config{
		Consistency:        WC,
		WriteBufferEntries: 16,
		Policy:             core.Policy{Identifier: core.Versions{}, TearOff: true},
	}
}

func TestWCStoreIsBufferedNotStalled(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcCfg()})
	a := blockHomedAt(3, 4, 0)
	res := r.write(0, 0, a, 1)
	r.run()
	mustDone(t, "store", res)
	// The store is accepted as soon as the entry allocates (same cycle).
	if res.Done != 0 {
		t.Fatalf("buffered store accepted at %d, want 0", res.Done)
	}
	// The write buffer eventually drains.
	if !r.ccs[0].WBEmpty() {
		t.Fatal("write buffer did not drain")
	}
	f, _ := r.ccs[0].Cache().Peek(a)
	if f == nil || f.State != cache.Exclusive || f.Data.Seq != 1 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestWCCoalescing(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcCfg()})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 0, a, 1)
	res2 := r.write(1, 0, a, 2) // merges into the outstanding entry
	r.run()
	mustDone(t, "second store", res2)
	if res2.Done != 1 {
		t.Fatalf("coalesced store accepted at %d, want 1", res2.Done)
	}
	st := r.ccs[0].Stats()
	if st.WriteMisses != 1 {
		t.Fatalf("write misses = %d, want 1 (coalesced)", st.WriteMisses)
	}
	f, _ := r.ccs[0].Cache().Peek(a)
	if f.Data.Seq != 2 {
		t.Fatalf("merged data = %v, want seq 2", f.Data)
	}
}

func TestWCParallelGrantAndFinalAck(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcCfg()})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.read(0, 1, a)
	// Node 2 stores: the directory grants in parallel with invalidating the
	// two sharers and later forwards one FinalAck.
	r.write(2000, 2, a, 1)
	r.run()
	c := r.net.Counts()
	if c.ByKind[netsim.FinalAck] != 1 {
		t.Fatalf("FinalAck = %d, want 1", c.ByKind[netsim.FinalAck])
	}
	if c.ByKind[netsim.Inv] != 2 || c.ByKind[netsim.InvAck] != 2 {
		t.Fatalf("invalidation traffic = Inv %d InvAck %d", c.ByKind[netsim.Inv], c.ByKind[netsim.InvAck])
	}
	if !r.ccs[2].WBEmpty() {
		t.Fatal("entry not retired after FinalAck")
	}
	e, _ := r.home(a).Dir().Peek(a)
	if e.State != directory.Exclusive || e.Owner != 2 {
		t.Fatalf("dir entry = %+v", e)
	}
}

// The parallel grant arrives before the acks are collected: measure that
// the data reply does not wait for the invalidation round trip.
func TestWCGrantDoesNotWaitForAcks(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcCfg()})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.read(0, 1, a)
	// Track when the data lands by reading our own write afterwards.
	var dataAt event.Time = -1
	r.at(2000, func() {
		r.ccs[2].Write(a, Store{Writer: 2, Seq: 1}, func(Result) {})
	})
	// Poll: the frame appears when DataX arrives.
	var poll func()
	poll = func() {
		if f, ok := r.ccs[2].Cache().Peek(a); ok && f.State == cache.Exclusive {
			dataAt = r.q.Now()
			return
		}
		r.q.After(1, poll)
	}
	r.at(2001, poll)
	r.run()
	if dataAt < 0 {
		t.Fatal("data never arrived")
	}
	// GetX: 3+3+100 → dir at 2106, +10 → grant sent 2116, +11+100 → 2227.
	// Waiting for the two invalidation round trips would add ≥ 200 more.
	if dataAt > 2300 {
		t.Fatalf("DataX arrived at %d; the grant seems to have waited for acks", dataAt)
	}
}

func TestWCWriteBufferFullStalls(t *testing.T) {
	cfg := Config{Consistency: WC, WriteBufferEntries: 2}
	r := newRig(t, rigOpts{cfg: cfg})
	// Three distinct blocks, all homed remotely.
	a0, a1, a2 := blockHomedAt(3, 4, 0), blockHomedAt(3, 4, 1), blockHomedAt(3, 4, 2)
	r.write(0, 0, a0, 1)
	r.write(0, 0, a1, 1)
	res := r.write(0, 0, a2, 1) // buffer full: must wait for a retire
	r.run()
	mustDone(t, "third store", res)
	if res.WBFullWait == 0 {
		t.Fatal("third store did not report a wb-full wait")
	}
	if res.Done == 0 {
		t.Fatal("third store accepted immediately despite a full buffer")
	}
	if r.ccs[0].Stats().WBFullStalls != 1 {
		t.Fatalf("WBFullStalls = %d, want 1", r.ccs[0].Stats().WBFullStalls)
	}
}

func TestWCReadWaitsForOutstandingWrite(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcCfg()})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 0, a, 1)
	res := r.read(1, 0, a) // same block, data not yet arrived
	r.run()
	mustDone(t, "read", res)
	if !res.WBRead {
		t.Fatal("read did not report a wb-read stall")
	}
	if res.Value.Seq != 1 {
		t.Fatalf("read value = %v, want the buffered store", res.Value)
	}
	if res.Done <= 200 {
		t.Fatalf("read completed at %d, before the write's data could arrive", res.Done)
	}
}

func TestWCDrain(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcCfg()})
	a := blockHomedAt(3, 4, 0)
	b := blockHomedAt(3, 4, 1)
	r.write(0, 0, a, 1)
	r.write(0, 0, b, 1)
	var drained event.Time = -1
	r.at(1, func() { r.ccs[0].DrainWB(func() { drained = r.q.Now() }) })
	r.run()
	if drained < 0 {
		t.Fatal("drain never completed")
	}
	if drained < 200 {
		t.Fatalf("drain at %d, before the misses could round-trip", drained)
	}
	// Draining an empty buffer completes synchronously.
	ran := false
	r.at(drained+100, func() { r.ccs[0].DrainWB(func() { ran = true }) })
	r.run()
	if !ran {
		t.Fatal("drain of empty buffer did not run synchronously")
	}
}

func TestWCSwapWaitsForFinalAck(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcCfg()})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.read(0, 1, a)
	res := r.swap(2000, 2, a, 1, 1)
	r.run()
	mustDone(t, "swap", res)
	// The swap must not complete before the invalidation acks round-trip:
	// grant at ≈2227, acks collected ≈2322, FinalAck ≈2425.
	if res.Done < 2400 {
		t.Fatalf("swap completed at %d, before the FinalAck", res.Done)
	}
	if res.OldWord != 0 {
		t.Fatalf("swap old word = %d", res.OldWord)
	}
}

// --- tear-off blocks ---------------------------------------------------------

func TestTearOffGrantIsUntracked(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcTearOffCfg()})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)           // version 0, tracked (no echo → unmarked)
	r.write(1000, 1, a, 1)    // bump to version 1, invalidate node 0
	res := r.read(3000, 0, a) // echo 0 ≠ 1: marked → tear-off
	r.run()
	mustDone(t, "tear-off read", res)
	f, _ := r.ccs[0].Cache().Peek(a)
	if f == nil || !f.SI || !f.TearOff {
		t.Fatalf("frame = %+v, want marked tear-off", f)
	}
	e, _ := r.home(a).Dir().Peek(a)
	if e.Sharers.Has(0) {
		t.Fatal("tear-off copy was tracked in the sharer set")
	}
	if !e.TearOffOut {
		t.Fatal("tear-off grant not recorded in the entry")
	}
}

// A write after a tear-off grant needs no invalidation: the core message
// saving of §5.3.
func TestTearOffEliminatesInvalidationMessages(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcTearOffCfg()})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.write(1000, 1, a, 1)
	r.read(3000, 0, a) // tear-off copy at node 0
	before := r.countsAt(4999)
	r.write(5000, 1, a, 2) // upgrade; tear-off copy not invalidated
	r.run()
	diff := r.net.Counts().Sub(*before)
	if diff.Invalidation() != 0 {
		t.Fatalf("write after tear-off generated %d invalidation messages", diff.Invalidation())
	}
	// The stale tear-off copy is still readable at node 0 (weak ordering
	// allows it until node 0's next sync point).
	f, hit := r.ccs[0].Cache().Peek(a)
	if !hit || f.Data.Seq != 1 {
		t.Fatalf("tear-off copy = %+v (hit=%v), want stale seq 1", f, hit)
	}
}

// Tear-off copies die silently at sync points: one-cycle flash clear, no
// messages.
func TestTearOffFlashClearAtSync(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcTearOffCfg()})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.write(1000, 1, a, 1)
	r.read(3000, 0, a) // tear-off
	before := r.countsAt(4999)
	fl := r.flush(5000, 0)
	afterFlush := r.countsAt(5500)
	r.run()
	mustDone(t, "flush", fl)
	if fl.Done != 5000+TearOffFlash {
		t.Fatalf("flash clear took %d cycles, want %d", fl.Done-5000, TearOffFlash)
	}
	diff := afterFlush.Sub(*before)
	if diff.Total() != 0 {
		t.Fatalf("tear-off flush sent %d messages", diff.Total())
	}
	if _, hit := r.ccs[0].Cache().Peek(a); hit {
		t.Fatal("tear-off copy survived the sync flush")
	}
	// After the flush the node re-reads and sees the new data.
	res := r.read(6000, 0, a)
	r.run()
	mustDone(t, "re-read", res)
	if res.Value.Seq != 1 {
		t.Fatalf("re-read = %v, want seq 1", res.Value)
	}
}

// Tear-off evictions are silent too (the directory has no record to clean).
func TestTearOffEvictionSilent(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcTearOffCfg(), cacheBytes: mem.BlockSize, assoc: 1})
	a := blockHomedAt(1, 4, 0)
	b := blockHomedAt(1, 4, 1)
	r.read(0, 0, a)
	r.write(1000, 2, a, 1)
	r.read(3000, 0, a) // tear-off copy
	before := r.countsAt(4999)
	r.read(5000, 0, b) // displaces the tear-off copy
	r.run()
	diff := r.net.Counts().Sub(*before)
	if diff.ByKind[netsim.Repl] != 0 {
		t.Fatal("tear-off eviction sent a replacement hint")
	}
}

// WC + DSI marks exclusive blocks without the upgrade exemption.
func TestWCNoUpgradeExemption(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcTearOffCfg()})
	a := blockHomedAt(3, 4, 0)
	// Build read-by-two history so the upgrade is marked.
	r.read(0, 0, a)
	r.read(0, 1, a)
	r.write(2000, 0, a, 1) // upgrade by node 0, other sharer node 1
	r.run()
	f, ok := r.ccs[0].Cache().Peek(a)
	if !ok || f.State != cache.Exclusive {
		t.Fatalf("frame = %+v", f)
	}
	if !f.SI {
		t.Fatal("WC upgrade with read-by-two history not marked")
	}
	if f.TearOff {
		t.Fatal("exclusive grant handed out as tear-off")
	}
}

// Exclusive self-invalidation under WC still notifies home with data.
func TestWCExclusiveSelfInvalidation(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcTearOffCfg()})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.read(0, 1, a)
	r.write(2000, 0, a, 5) // marked exclusive (read by two)
	fl := r.flush(4000, 0)
	r.run()
	mustDone(t, "flush", fl)
	if r.net.Counts().ByKind[netsim.SInvWB] != 1 {
		t.Fatalf("SInvWB = %d, want 1", r.net.Counts().ByKind[netsim.SInvWB])
	}
	if v := r.home(a).Memory().Read(a); v.Seq != 5 {
		t.Fatalf("home memory = %v", v)
	}
}

// The requester gives up a block before its FinalAck arrives (eviction
// pressure); the directory must return the entry to idle.
func TestWCRequesterDropsBeforeFinalAck(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcCfg(), cacheBytes: mem.BlockSize, assoc: 1})
	a := blockHomedAt(1, 4, 0)
	b := blockHomedAt(1, 4, 1)
	// Two sharers so the grant is Pending.
	r.read(0, 2, a)
	r.read(0, 3, a)
	r.write(2000, 0, a, 1)
	// DataX lands ≈2227; evict immediately after, while acks still fly.
	r.read(2250, 0, b)
	r.run()
	if !r.ccs[0].WBEmpty() {
		t.Fatal("write buffer never drained")
	}
	e, _ := r.home(a).Dir().Peek(a)
	if e.State != directory.Idle {
		t.Fatalf("dir state = %v, want Idle after the requester dropped", e.State)
	}
	if v := r.home(a).Memory().Read(a); v.Seq != 1 {
		t.Fatalf("home memory lost the dropped write: %v", v)
	}
	// The block is freshly usable.
	res := r.read(10000, 2, a)
	r.run()
	mustDone(t, "re-read", res)
	if res.Value.Seq != 1 {
		t.Fatalf("re-read = %v", res.Value)
	}
}
