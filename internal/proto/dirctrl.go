package proto

import (
	"dsisim/internal/blockmap"
	"dsisim/internal/core"
	"dsisim/internal/directory"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
)

// txn is one in-progress directory transaction for a block: a request that
// required invalidating or recalling outstanding copies before (SC) or
// after (WC) replying. While a txn is live the block is busy and later
// requests queue behind it.
type txn struct {
	req     netsim.Message
	isRead  bool
	upgrade bool // reply with AckX (requester keeps its data)

	si      bool
	tearOff bool
	ver     uint8
	hasVer  bool

	// pending is the set of nodes whose acknowledgment is still missing;
	// the transaction completes when it empties. action is the coherence
	// action (Inv or Recall) the hardened protocol re-sends to pending
	// nodes on timeout.
	pending  directory.NodeSet
	action   netsim.Kind
	ownerWas int // node whose exclusive copy is being recalled/invalidated, -1 if none
	prev     directory.State

	// Hardened protocol (robust.go): retransmission count and timer
	// generation; see mshr in cachectrl.go for the field semantics.
	retries int
	tgen    uint32

	// ownerRetains: the recalled owner answered with a RecallAck, so it
	// still holds a downgraded shared copy. If its writeback raced the
	// recall instead, the owner has nothing left and must not be re-added
	// to the sharer set.
	ownerRetains bool

	// procDone is when directory processing finished and invalidations
	// went out; the reply's InvWait measures from here.
	procDone event.Time

	// wcPending: the data reply already went out (weak consistency); on
	// completion send FinalAck instead.
	wcPending bool

	// requesterDropped: the requester wrote back / replaced the block
	// before the transaction completed (possible under WC, where the data
	// is granted before the acks arrive).
	requesterDropped bool

	// migratoryRead: a read request served with an exclusive grant because
	// the block is in migratory mode; completion checks whether the
	// prediction held (the invalidated owner had actually written).
	migratoryRead bool
}

// DirStats counts directory-level events.
type DirStats struct {
	Requests      int64 // GetS+GetX+Upgrade processed
	Invalidates   int64 // Inv messages sent
	Recalls       int64 // Recall messages sent
	SIGrantsRead  int64 // shared grants marked for self-invalidation
	SIGrantsWrite int64
	TearOffGrants int64
	// MigratoryGrants counts read requests answered with exclusive grants
	// by the migratory-sharing optimization.
	MigratoryGrants int64
	// PointerOverflows counts sharers evicted to free a directory pointer
	// (limited-pointer directories only).
	PointerOverflows int64
	Queued           int64 // requests that waited behind a busy block

	// Hardened protocol only (zero when Config.Retry is nil).
	Timeouts    int64 // retry timers that fired for a live transaction
	RetriesSent int64 // Inv/Recall messages re-sent to unacknowledged nodes
	NacksSent   int64 // requests refused because the block's queue was full
	Replays     int64 // grants and FinalAcks re-sent from directory state for lost replies
	DupRequests int64 // retransmitted requests deduplicated and dropped
	StrayAcks   int64 // duplicate/stale acknowledgments tolerated
}

// dirHot is the hot plane of one block's directory-controller state — the
// two words every message handler reads: the live transaction and a cached
// pointer to the block's directory entry, so the steady-state request path
// does one block-table lookup, not three hash probes. At 16 bytes, four
// blocks' hot state share one cache line (the interleaved record fit two).
type dirHot struct {
	// t is the live transaction; nil when the block is not busy.
	t *txn
	// ent caches the directory entry pointer (stable for the directory's
	// lifetime), filled on first use.
	ent *directory.Entry
}

// dirCold is the cold plane: the request queue behind a busy block
// (freelist-linked through DirCtrl.qNodes, no per-block slice), touched
// only when a request actually collides with a live transaction —
// stats.Queued events, rare relative to message handling.
type dirCold struct {
	// qHead/qTail link the queued requests through DirCtrl.qNodes, stored
	// as index+1 so the zeroed record means "empty queue". qLen mirrors the
	// list length for the QueueLimit check and diagnostics.
	qHead, qTail int32
	qLen         int32
}

// queueNode is one pooled pending-request record; next is index+1 into
// DirCtrl.qNodes (0 terminates the list / the free list).
type queueNode struct {
	m    netsim.Message
	next int32
}

// DirCtrl is the directory controller of one home node.
type DirCtrl struct {
	env    *Env
	node   int
	cfg    Config
	dir    *directory.Dir
	memory mem.Memory
	server event.Server

	// blocks is the dense per-block state table (replaces the busy and
	// queue hash maps), split SoA-style: the txn/entry words handlers probe
	// on every message live in the hot plane, the queue links in the cold.
	blocks blockmap.SoA[dirHot, dirCold]
	// qNodes backs every block's pending-request list; qFree heads the free
	// list (index+1, 0 = empty). busyCount tracks blocks with a live
	// transaction for BusyBlocks.
	qNodes    []queueNode
	qFree     int32
	busyCount int

	// calls is the free list of pooled admit→process dispatch records; see
	// dirCall. Single-threaded per machine, so a plain stack suffices.
	calls []*dirCall
	// txns is the free list of completed transaction records.
	txns []*txn
	// rtFree is the free list of pooled retry-timer records (robust.go).
	rtFree []*dirRetryCall

	stats DirStats
}

// Reset returns the controller to its initial state under a (possibly
// different) protocol configuration, keeping every allocation: the
// directory's block table, the home memory image's table, the per-block
// state table with its queue-node arena, and the pooled record free lists.
// Machine reuse calls this between runs.
func (dc *DirCtrl) Reset(cfg Config) {
	if cfg.SharerLimit == 1 {
		panic("proto: SharerLimit must be 0 (full map) or >= 2")
	}
	dc.cfg = cfg
	dc.dir.Reset()
	dc.memory.Reset()
	dc.server.Reset()
	dc.blocks.Reset()
	dc.qNodes = dc.qNodes[:0]
	dc.qFree = 0
	dc.busyCount = 0
	dc.stats = DirStats{}
}

// block returns b's hot state plane, creating the record on first touch.
//
//dsi:hotpath
func (dc *DirCtrl) block(b mem.Addr) *dirHot {
	_, h := dc.blocks.Ensure(mem.BlockIndex(b))
	return h
}

// queue returns b's cold queue plane, creating the record on first touch.
//
//dsi:hotpath
func (dc *DirCtrl) queue(b mem.Addr) *dirCold {
	id, _ := dc.blocks.Ensure(mem.BlockIndex(b))
	return dc.blocks.Cold(id)
}

// entry returns b's directory entry through the record's cached pointer.
//
//dsi:hotpath
func (dc *DirCtrl) entry(db *dirHot, b mem.Addr) *directory.Entry {
	if db.ent == nil {
		db.ent = dc.dir.Entry(b)
	}
	return db.ent
}

// pushQueue appends m to q's pending-request list.
//
//dsi:hotpath
func (dc *DirCtrl) pushQueue(q *dirCold, m netsim.Message) {
	var id int32
	if dc.qFree != 0 {
		id = dc.qFree - 1
		dc.qFree = dc.qNodes[id].next
	} else {
		dc.qNodes = append(dc.qNodes, queueNode{})
		id = int32(len(dc.qNodes) - 1)
	}
	n := &dc.qNodes[id]
	n.m = m
	n.next = 0
	if q.qTail != 0 {
		dc.qNodes[q.qTail-1].next = id + 1
	} else {
		q.qHead = id + 1
	}
	q.qTail = id + 1
	q.qLen++
}

// popQueue removes and returns the head of q's pending-request list.
//
//dsi:hotpath
func (dc *DirCtrl) popQueue(q *dirCold) (netsim.Message, bool) {
	if q.qHead == 0 {
		return netsim.Message{}, false
	}
	id := q.qHead - 1
	n := &dc.qNodes[id]
	m := n.m
	q.qHead = n.next
	if q.qHead == 0 {
		q.qTail = 0
	}
	q.qLen--
	n.m = netsim.Message{}
	n.next = dc.qFree
	dc.qFree = id + 1
	return m, true
}

// dirCall is a pooled record carrying one admitted request across the
// directory-occupancy delay — the typed event argument that replaces the
// per-request closure in admit.
type dirCall struct {
	dc *DirCtrl
	m  netsim.Message
}

// processCall is the static action for admitted requests.
//
//dsi:hotpath
func processCall(arg any) {
	c := arg.(*dirCall)
	dc, m := c.dc, c.m
	c.m = netsim.Message{}
	dc.calls = append(dc.calls, c)
	dc.process(m)
}

// NewDirCtrl builds the directory controller for home node.
func NewDirCtrl(env *Env, node int, cfg Config) *DirCtrl {
	if cfg.SharerLimit == 1 {
		panic("proto: SharerLimit must be 0 (full map) or >= 2")
	}
	return &DirCtrl{
		env:  env,
		node: node,
		cfg:  cfg,
		dir:  directory.New(node),
	}
}

// Dir exposes the directory state for checkers.
func (dc *DirCtrl) Dir() *directory.Dir { return dc.dir }

// Memory exposes the home memory image for checkers.
func (dc *DirCtrl) Memory() *mem.Memory { return &dc.memory }

// Stats returns a snapshot of the counters.
func (dc *DirCtrl) Stats() DirStats { return dc.stats }

// BusyBlocks returns the number of blocks with live transactions, for
// quiesce detection.
func (dc *DirCtrl) BusyBlocks() int { return dc.busyCount }

//dsi:hotpath
func (dc *DirCtrl) send(m netsim.Message) {
	m.Src = dc.node
	dc.env.Net.Send(m)
}

// newTxn takes a transaction record from the free list (or allocates one)
// and initializes it to init.
func (dc *DirCtrl) newTxn(init txn) *txn {
	if n := len(dc.txns); n > 0 {
		t := dc.txns[n-1]
		dc.txns = dc.txns[:n-1]
		*t = init
		return t
	}
	t := new(txn)
	*t = init
	return t
}

// openTxn registers t as block b's live transaction: it records the
// coherence action to re-send on timeout, marks the block busy, emits the
// transaction-start event, and — hardened only — arms the retry timer.
// Callers send the initial action messages themselves.
func (dc *DirCtrl) openTxn(db *dirHot, b mem.Addr, t *txn, action netsim.Kind) {
	t.action = action
	db.t = t
	dc.busyCount++
	if sk := dc.env.Sink; sk != nil {
		sk.OnTxnStart(dc.env.Q.Now(), dc.node, b, t.req.Txn, t.req.Src, t.req.Kind)
	}
	if dc.cfg.Retry != nil {
		dc.armTxnTimer(b, t)
	}
}

// Handle dispatches one incoming message. It is the node's network handler
// for directory-bound kinds.
//
//dsi:hotpath
func (dc *DirCtrl) Handle(m netsim.Message) {
	switch m.Kind {
	case netsim.GetS, netsim.GetX, netsim.Upgrade:
		dc.admit(m)
	case netsim.InvAck:
		dc.onAck(m, false, false)
	case netsim.InvAckData:
		dc.onAck(m, true, false)
	case netsim.RecallAck:
		dc.onAck(m, true, true)
	case netsim.NackHome:
		// "No copy here": a re-sent Inv/Recall found the copy already gone.
		// Consumed like a dataless ack — the real data or drop notice is
		// FIFO-ordered ahead of it.
		dc.onAck(m, false, false)
	case netsim.WB:
		dc.onWriteback(m, core.CauseReplace)
	case netsim.SInvWB:
		dc.onWriteback(m, core.CauseSelfInv)
	case netsim.Repl:
		dc.onSharedDrop(m, core.CauseReplace)
	case netsim.SInvNotify:
		dc.onSharedDrop(m, core.CauseSelfInv)
	default:
		// The fabric routes grants, probes, and recall/invalidate traffic to
		// caches; only requests, acks, and drop notices target the home.
		//dsi:unreachable not-routed — cache-bound kinds never reach the home
		dc.env.fail("dir %d: unexpected message %v", dc.node, m)
	}
}

// admit runs a request through the 10-cycle directory occupancy, then
// processes it (or queues it behind a busy block).
//
//dsi:hotpath
func (dc *DirCtrl) admit(m netsim.Message) {
	_, done := dc.server.Admit(dc.env.Q.Now(), DirOccupancy)
	var c *dirCall
	if n := len(dc.calls); n > 0 {
		c = dc.calls[n-1]
		dc.calls = dc.calls[:n-1]
	} else {
		c = &dirCall{dc: dc}
	}
	c.m = m
	dc.env.Q.AtCall(done, processCall, c)
}

//dsi:hotpath
func (dc *DirCtrl) process(m netsim.Message) {
	b := mem.BlockOf(m.Addr)
	id, db := dc.blocks.Ensure(mem.BlockIndex(b))
	if t := db.t; t != nil {
		q := dc.blocks.Cold(id)
		if dc.cfg.Retry != nil {
			if dc.isDuplicate(t, q, m) {
				dc.stats.DupRequests++
				return
			}
			if lim := dc.cfg.Retry.QueueLimit; lim > 0 && int(q.qLen) >= lim {
				dc.stats.NacksSent++
				dc.send(netsim.Message{Kind: netsim.Nack, Dst: m.Src, Addr: b, Txn: m.Txn})
				return
			}
		}
		dc.stats.Queued++
		dc.pushQueue(q, m)
		return
	}
	if dc.cfg.Retry != nil && dc.replayed(b, m) {
		return
	}
	if dc.cfg.Retry != nil && m.Probe {
		// A FinalAck probe for a transaction this directory completed and
		// whose state it has since moved past (replayed above handles the
		// still-recorded case). The prober consumed its grant long ago, so
		// the only thing it can still be missing is the FinalAck: re-send
		// that and leave the directory state alone. Serving the probe as a
		// fresh request would recall the real owner and record an exclusive
		// grant the prober ignores as a stray, leaving the directory and
		// caches disagreeing at quiesce.
		dc.stats.Replays++
		dc.send(netsim.Message{Kind: netsim.FinalAck, Dst: m.Src, Addr: b, Txn: m.Txn})
		return
	}
	dc.stats.Requests++
	switch m.Kind {
	case netsim.GetS:
		dc.processRead(m, db)
	case netsim.GetX, netsim.Upgrade:
		dc.processWrite(m, db)
	default:
		dc.env.fail("dir %d: non-request kind %v reached process", dc.node, m)
	}
	// Requests served immediately (no transaction) must still release any
	// requests that queued behind the block while it was busy.
	if db.t == nil {
		dc.dequeue(dc.blocks.Cold(id))
	}
}

func (dc *DirCtrl) processRead(m netsim.Message, db *dirHot) {
	b := mem.BlockOf(m.Addr)
	e := dc.entry(db, b)
	pol := dc.cfg.Policy
	if pol.Migratory && e.Migratory && !e.State.IsShared() {
		dc.processMigratoryRead(m, db, e)
		return
	}
	if pol.Migratory {
		e.ReadersSinceWrite++
		if e.ReadersSinceWrite >= 2 {
			// Two readers between writes: not migratory after all.
			e.Migratory = false
		}
	}
	r := core.Request{Node: m.Src, Home: dc.node, Ver: m.Ver, HasVer: m.HasVer}
	si := pol.MarkRead(e, r)
	tearOff := si && (pol.TearOff || pol.SCTearOff)
	ver, hasVer := pol.ID().GrantVersion(e)
	if si {
		dc.stats.SIGrantsRead++
	}
	if tearOff {
		dc.stats.TearOffGrants++
		e.NoteTearOffGrant()
		if sk := dc.env.Sink; sk != nil {
			sk.OnTearOffGrant(dc.env.Q.Now(), dc.node, b, m.Txn, m.Src)
		}
	}

	if e.State == directory.Exclusive {
		// Recall the owner's copy; reply once the data returns.
		t := dc.newTxn(txn{
			req: m, isRead: true,
			si: si, tearOff: tearOff, ver: ver, hasVer: hasVer,
			pending: directory.NodeSet(0).Add(e.Owner), ownerWas: e.Owner, prev: e.State,
			procDone: dc.env.Q.Now(),
		})
		dc.stats.Recalls++
		dc.openTxn(db, b, t, netsim.Recall)
		dc.send(netsim.Message{Kind: netsim.Recall, Dst: e.Owner, Addr: b, Txn: m.Txn})
		return
	}

	// Data is at home: reply immediately — unless a limited-pointer
	// directory must first evict a sharer to free a pointer. The eviction
	// is a full transaction (grant only after the ack): handing out the
	// copy while the victim still holds a valid untracked one would let a
	// subsequent write miss it, breaking coherence.
	if e.State.IsShared() || e.State.IsIdle() {
		prev := e.State
		if !tearOff {
			if e.Sharers.Has(m.Src) {
				dc.env.fail("dir %d: GetS from existing sharer %d for %#x (state %v)", dc.node, m.Src, uint64(b), e.State)
			}
			if limit := dc.cfg.SharerLimit; limit > 0 && e.Sharers.Count() >= limit {
				victim := -1
				e.Sharers.ForEach(func(n int) {
					if victim < 0 && n != m.Src {
						victim = n
					}
				})
				e.Sharers = e.Sharers.Remove(victim)
				dc.stats.PointerOverflows++
				dc.stats.Invalidates++
				t := dc.newTxn(txn{
					req: m, isRead: true,
					si: si, tearOff: false, ver: ver, hasVer: hasVer,
					pending: directory.NodeSet(0).Add(victim), ownerWas: -1, prev: e.State,
					procDone: dc.env.Q.Now(),
				})
				dc.openTxn(db, b, t, netsim.Inv)
				dc.send(netsim.Message{Kind: netsim.Inv, Dst: victim, Addr: b, Txn: m.Txn})
				return
			}
			e.Sharers = e.Sharers.Add(m.Src)
			pol.ID().SetShared(e, si)
		}
		if sk := dc.env.Sink; sk != nil && e.State != prev {
			sk.OnDirState(dc.env.Q.Now(), dc.node, b, m.Txn, prev, e.State)
		}
		dc.send(netsim.Message{
			Kind: netsim.DataS, Dst: m.Src, Addr: b, Txn: m.Txn,
			Data: dc.memory.Read(b), SI: si, TearOff: tearOff, Ver: ver, HasVer: hasVer,
		})
		return
	}
	dc.env.fail("dir %d: GetS in state %v", dc.node, e.State)
}

// processMigratoryRead answers a read for a block in migratory mode with an
// exclusive grant: the previous owner is invalidated (not downgraded) and
// the reader becomes the owner, saving its anticipated upgrade. If the
// returning data shows the previous owner never actually wrote, the block
// is demoted out of migratory mode.
func (dc *DirCtrl) processMigratoryRead(m netsim.Message, db *dirHot, e *directory.Entry) {
	b := mem.BlockOf(m.Addr)
	pol := dc.cfg.Policy
	dc.stats.MigratoryGrants++
	r := core.Request{Node: m.Src, Home: dc.node, Ver: m.Ver, HasVer: m.HasVer}
	si := pol.MarkWrite(e, r)
	ver, hasVer := pol.ID().GrantVersion(e)
	e.ClearTearOff()
	e.ReadersSinceWrite = 1 // this reader
	if e.State == directory.Exclusive {
		t := dc.newTxn(txn{
			req: m, si: si, ver: ver, hasVer: hasVer,
			pending: directory.NodeSet(0).Add(e.Owner), ownerWas: e.Owner, prev: e.State,
			procDone:      dc.env.Q.Now(),
			migratoryRead: true,
		})
		dc.stats.Invalidates++
		dc.openTxn(db, b, t, netsim.Inv)
		dc.send(netsim.Message{Kind: netsim.Inv, Dst: e.Owner, Addr: b, Txn: m.Txn})
		return
	}
	// Idle flavors: grant immediately.
	prev := e.State
	e.State = directory.Exclusive
	e.Owner = m.Src
	e.LastOwner = m.Src
	if sk := dc.env.Sink; sk != nil && e.State != prev {
		sk.OnDirState(dc.env.Q.Now(), dc.node, b, m.Txn, prev, e.State)
	}
	dc.sendGrant(m.Src, b, false, si, ver, hasVer, 0, false, m.Txn)
}

func (dc *DirCtrl) processWrite(m netsim.Message, db *dirHot) {
	b := mem.BlockOf(m.Addr)
	e := dc.entry(db, b)
	pol := dc.cfg.Policy
	wasSharer := e.State.IsShared() && e.Sharers.Has(m.Src)
	others := e.Sharers.Remove(m.Src)
	if pol.Migratory {
		switch {
		case e.State == directory.Exclusive && e.Owner != m.Src && e.ReadersSinceWrite <= 1:
			// Write-after-write by a different processor with at most one
			// intervening reader: the migratory pattern.
			e.Migratory = true
		case wasSharer && e.LastOwner >= 0 && e.LastOwner != m.Src &&
			e.ReadersSinceWrite == 1 &&
			(others.Empty() || others.Only(e.LastOwner)):
			// Read-then-write by the single reader since another
			// processor's write (the previous writer may still hold its
			// downgraded copy): the same pattern seen from its read side.
			e.Migratory = true
		case !others.Empty():
			e.Migratory = false
		}
		e.ReadersSinceWrite = 0
	}
	r := core.Request{
		Node: m.Src, Home: dc.node, Ver: m.Ver, HasVer: m.HasVer,
		WasSharer: wasSharer, OtherSharers: !others.Empty(),
	}
	si := pol.MarkWrite(e, r)
	ver, hasVer := pol.ID().GrantVersion(e)
	if si {
		dc.stats.SIGrantsWrite++
	}
	e.ClearTearOff()
	upgrade := m.Kind == netsim.Upgrade && wasSharer

	switch {
	case e.State == directory.Exclusive:
		if e.Owner == m.Src {
			dc.env.fail("dir %d: GetX from current owner %d for %#x", dc.node, m.Src, uint64(b))
		}
		t := dc.newTxn(txn{
			req: m, si: si, ver: ver, hasVer: hasVer,
			pending: directory.NodeSet(0).Add(e.Owner), ownerWas: e.Owner, prev: e.State,
			procDone: dc.env.Q.Now(),
		})
		dc.stats.Invalidates++
		dc.openTxn(db, b, t, netsim.Inv)
		dc.send(netsim.Message{Kind: netsim.Inv, Dst: e.Owner, Addr: b, Txn: m.Txn})

	case e.State.IsShared() && !others.Empty():
		t := dc.newTxn(txn{
			req: m, upgrade: upgrade, si: si, ver: ver, hasVer: hasVer,
			pending: others, ownerWas: -1, prev: e.State,
			procDone: dc.env.Q.Now(),
		})
		dc.openTxn(db, b, t, netsim.Inv)
		e.Sharers = 0
		others.ForEach(func(n int) {
			dc.stats.Invalidates++
			dc.send(netsim.Message{Kind: netsim.Inv, Dst: n, Addr: b, Txn: m.Txn})
		})
		if dc.cfg.Consistency == WC {
			// Grant in parallel with invalidation; FinalAck follows.
			t.wcPending = true
			prev := e.State
			e.State = directory.Exclusive
			e.Owner = m.Src
			e.LastOwner = m.Src
			if sk := dc.env.Sink; sk != nil {
				sk.OnDirState(dc.env.Q.Now(), dc.node, b, m.Txn, prev, e.State)
			}
			dc.reply(t, db, true)
		}

	default:
		// Idle flavors, or the requester is the lone sharer: grant now.
		prev := e.State
		e.Sharers = 0
		e.State = directory.Exclusive
		e.Owner = m.Src
		e.LastOwner = m.Src
		if sk := dc.env.Sink; sk != nil && e.State != prev {
			sk.OnDirState(dc.env.Q.Now(), dc.node, b, m.Txn, prev, e.State)
		}
		dc.sendGrant(m.Src, b, upgrade, si, ver, hasVer, 0, false, m.Txn)
	}
}

// sendGrant emits the exclusive grant (DataX, or AckX for an upgrade whose
// copy is still valid at the requester).
func (dc *DirCtrl) sendGrant(dst int, b mem.Addr, upgrade, si bool, ver uint8, hasVer bool, invWait event.Time, pending bool, txnID uint64) {
	kind := netsim.DataX
	msg := netsim.Message{
		Kind: kind, Dst: dst, Addr: b, Txn: txnID,
		SI: si, Ver: ver, HasVer: hasVer, InvWait: invWait, Pending: pending,
	}
	msg.Data = dc.memory.Read(b)
	if upgrade {
		// AckX moves no data on the simulated wire (injection time stays 3
		// cycles); the Data field is simulator bookkeeping so the upgraded
		// copy can be reconstructed even if it was displaced in flight — a
		// tracked shared copy always equals home memory.
		msg.Kind = netsim.AckX
	}
	dc.send(msg)
}

// reply finishes a transaction's grant. For reads it sends DataS; for
// writes it sends the exclusive grant (used both at completion under SC and
// early under WC).
func (dc *DirCtrl) reply(t *txn, db *dirHot, early bool) {
	b := mem.BlockOf(t.req.Addr)
	var invWait event.Time
	if !early {
		invWait = dc.env.Q.Now() - t.procDone
	}
	if t.isRead {
		e := dc.entry(db, b)
		prev := e.State
		switch {
		case !t.tearOff:
			e.Sharers = e.Sharers.Add(t.req.Src)
			dc.cfg.Policy.ID().SetShared(e, t.si)
		case t.ownerWas >= 0 && e.Sharers.Empty():
			// Tear-off grant whose recalled owner wrote back mid-recall:
			// no tracked copies remain at all.
			dc.cfg.Policy.ID().SetIdle(e, core.CauseReplace, directory.Exclusive, false)
		case t.ownerWas >= 0:
			// Tear-off grant served by recall: the owner keeps a tracked
			// downgraded copy.
			dc.cfg.Policy.ID().SetShared(e, t.si)
		}
		if sk := dc.env.Sink; sk != nil && e.State != prev {
			sk.OnDirState(dc.env.Q.Now(), dc.node, b, t.req.Txn, prev, e.State)
		}
		dc.send(netsim.Message{
			Kind: netsim.DataS, Dst: t.req.Src, Addr: b, Txn: t.req.Txn,
			Data: dc.memory.Read(b), SI: t.si, TearOff: t.tearOff,
			Ver: t.ver, HasVer: t.hasVer, InvWait: invWait,
		})
		return
	}
	dc.sendGrant(t.req.Src, b, t.upgrade, t.si, t.ver, t.hasVer, invWait, early, t.req.Txn)
}

// complete finishes a transaction once all acknowledgments are in.
func (dc *DirCtrl) complete(t *txn, db *dirHot) {
	b := mem.BlockOf(t.req.Addr)
	e := dc.entry(db, b)
	switch {
	case t.isRead:
		// The recalled owner keeps a downgraded shared copy — unless its
		// writeback raced the recall, in which case it holds nothing.
		if t.ownerWas >= 0 {
			if t.ownerRetains {
				e.Sharers = e.Sharers.Add(t.ownerWas)
			}
			e.LastOwner = t.ownerWas
		}
		dc.reply(t, db, false)
	case t.wcPending:
		if t.requesterDropped {
			prev := e.State
			pol := dc.cfg.Policy
			pol.ID().SetIdle(e, core.CauseReplace, directory.Exclusive, t.si)
			e.Owner = -1
			if sk := dc.env.Sink; sk != nil && e.State != prev {
				sk.OnDirState(dc.env.Q.Now(), dc.node, b, t.req.Txn, prev, e.State)
			}
		}
		dc.send(netsim.Message{Kind: netsim.FinalAck, Dst: t.req.Src, Addr: b, Txn: t.req.Txn})
	default:
		prev := e.State
		e.State = directory.Exclusive
		e.Owner = t.req.Src
		e.LastOwner = t.req.Src
		if sk := dc.env.Sink; sk != nil && e.State != prev {
			sk.OnDirState(dc.env.Q.Now(), dc.node, b, t.req.Txn, prev, e.State)
		}
		dc.reply(t, db, false)
	}
	if sk := dc.env.Sink; sk != nil {
		sk.OnTxnEnd(dc.env.Q.Now(), dc.node, b, t.req.Txn, t.req.Src)
	}
	db.t = nil
	dc.busyCount--
	*t = txn{}
	dc.txns = append(dc.txns, t)
	dc.dequeue(dc.queue(b))
}

// dequeue re-admits the next queued request for the block, if any.
//
//dsi:hotpath
func (dc *DirCtrl) dequeue(q *dirCold) {
	if next, ok := dc.popQueue(q); ok {
		dc.admit(next)
	}
}

// onAck consumes an invalidation/recall acknowledgment (or a NackHome
// standing in for one). The pending set identifies exactly which nodes may
// still acknowledge, so duplicates and strays are detected by membership
// rather than by count; the hardened protocol tolerates dataless strays
// (duplicated acks, NackHomes answering re-sent actions after the real ack)
// while data-carrying strays remain invariant violations — the fault plan
// never drops or duplicates data carriers, so a legitimate one is
// impossible.
func (dc *DirCtrl) onAck(m netsim.Message, hasData, downgraded bool) {
	b := mem.BlockOf(m.Addr)
	hardened := dc.cfg.Retry != nil
	db := dc.block(b)
	t := db.t
	if t == nil {
		if hardened && !hasData {
			dc.stats.StrayAcks++
			return
		}
		dc.env.fail("dir %d: stray ack %v", dc.node, m)
		return
	}
	if !t.pending.Has(m.Src) || (hardened && m.Txn != 0 && m.Txn != t.req.Txn) {
		if hardened && !hasData {
			dc.stats.StrayAcks++
			return
		}
		dc.env.fail("dir %d: surplus ack %v", dc.node, m)
		return
	}
	if hasData {
		dc.memory.Write(b, m.Data)
	}
	if downgraded && m.Src == t.ownerWas {
		t.ownerRetains = true
	}
	if t.migratoryRead && hasData && m.Data.Writer != t.ownerWas {
		// The invalidated owner never wrote the block: the migratory
		// prediction cost it a copy for nothing. Demote.
		dc.entry(db, b).Migratory = false
	}
	t.pending = t.pending.Remove(m.Src)
	if t.pending.Empty() {
		dc.complete(t, db)
	}
}

// onWriteback handles WB/SInvWB: an exclusive copy coming home
// unsolicited, either by replacement or by self-invalidation.
func (dc *DirCtrl) onWriteback(m netsim.Message, cause core.IdleCause) {
	b := mem.BlockOf(m.Addr)
	db := dc.block(b)
	e := dc.entry(db, b)
	if dc.cfg.Retry != nil && m.Probe {
		// Hardened: an ownership give-back (giveBackGrant) — the sender
		// refused an unsolicited grant it never wrote under. Its payload is
		// stale by construction (the refused grant may be a fault-plan
		// duplicate of one consumed, dirtied, and written back long ago), so
		// it must never overwrite memory: a stale lock word resurrected here
		// is a mutual-exclusion violation or a livelocked spinner. If the
		// give-back's phantom ownership is still recorded, clear it; if a
		// transaction is busy recalling it, the sender's NackHome answer
		// (FIFO behind this give-back) completes that transaction against
		// home memory, which is already correct.
		dc.stats.StrayAcks++
		if db.t == nil && e.State == directory.Exclusive && e.Owner == m.Src {
			e.LastOwner = m.Src
			e.Owner = -1
			prev := e.State
			dc.cfg.Policy.ID().SetIdle(e, cause, directory.Exclusive, m.SI)
			if sk := dc.env.Sink; sk != nil && e.State != prev {
				sk.OnDirState(dc.env.Q.Now(), dc.node, b, m.Txn, prev, e.State)
			}
		}
		return
	}
	if t := db.t; t != nil {
		switch m.Src {
		case t.ownerWas:
			// The owner's writeback raced our Recall/Inv; the data is
			// captured here and the unconditional ack will complete the
			// transaction.
			dc.memory.Write(b, m.Data)
		case t.req.Src:
			// WC: the requester already received the grant and has given
			// the block up again before the FinalAck.
			dc.memory.Write(b, m.Data)
			t.requesterDropped = true
		default:
			dc.env.fail("dir %d: writeback from bystander %d during txn for %#x", dc.node, m.Src, uint64(b))
		}
		return
	}
	if e.State != directory.Exclusive || e.Owner != m.Src {
		if dc.cfg.Retry != nil {
			// Hardened: a writeback whose ownership record was already
			// cleared by a racing recovery action. A genuine dirty writeback
			// always finds its sender recorded as owner (or a live
			// transaction above), so the data here duplicates what memory
			// already holds and must not overwrite it.
			dc.stats.StrayAcks++
			return
		}
		dc.env.fail("dir %d: writeback from %d but state %v owner %d for %#x",
			dc.node, m.Src, e.State, e.Owner, uint64(b))
		return
	}
	dc.memory.Write(b, m.Data)
	e.LastOwner = m.Src
	e.Owner = -1
	prev := e.State
	dc.cfg.Policy.ID().SetIdle(e, cause, directory.Exclusive, m.SI)
	if sk := dc.env.Sink; sk != nil && e.State != prev {
		sk.OnDirState(dc.env.Q.Now(), dc.node, b, m.Txn, prev, e.State)
	}
}

// onSharedDrop handles Repl/SInvNotify: a tracked shared copy disappearing
// by replacement or self-invalidation.
func (dc *DirCtrl) onSharedDrop(m netsim.Message, cause core.IdleCause) {
	b := mem.BlockOf(m.Addr)
	db := dc.block(b)
	e := dc.entry(db, b)
	if !e.State.IsShared() || !e.Sharers.Has(m.Src) {
		// Stale: the copy was already invalidated by a racing transaction
		// (the node acked the Inv unconditionally). Nothing to do.
		return
	}
	e.Sharers = e.Sharers.Remove(m.Src)
	if e.Sharers.Empty() && db.t == nil {
		prev := e.State
		dc.cfg.Policy.ID().SetIdle(e, cause, prev, m.SI)
		if sk := dc.env.Sink; sk != nil && e.State != prev {
			sk.OnDirState(dc.env.Q.Now(), dc.node, b, m.Txn, prev, e.State)
		}
	}
}
