package proto

import (
	"testing"

	"dsisim/internal/cache"
	"dsisim/internal/core"
	"dsisim/internal/directory"
	"dsisim/internal/event"
	"dsisim/internal/netsim"
)

func migCfg() Config {
	return Config{Consistency: SC, Policy: core.Policy{Migratory: true}}
}

// Write-after-write by different processors puts a block in migratory
// mode; the next read is granted exclusive, saving the upgrade.
func TestMigratoryDetectionAndGrant(t *testing.T) {
	r := newRig(t, rigOpts{cfg: migCfg()})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 0, a, 1)
	r.write(1000, 1, a, 2) // second writer: migratory
	res := r.read(2000, 2, a)
	wres := r.write(3000, 2, a, 3) // the anticipated write: must hit
	r.run()
	mustDone(t, "read", res)
	mustDone(t, "write", wres)
	if res.Value.Seq != 2 {
		t.Fatalf("read value = %v", res.Value)
	}
	f, ok := r.ccs[2].Cache().Peek(a)
	if !ok || f.State != cache.Exclusive {
		t.Fatalf("reader's copy = %+v (ok=%v), want Exclusive", f, ok)
	}
	if !wres.Hit {
		t.Fatal("anticipated write missed despite the exclusive grant")
	}
	if r.net.Counts().ByKind[netsim.Upgrade] != 0 {
		t.Fatal("an upgrade was still issued")
	}
	if r.home(a).Stats().MigratoryGrants != 1 {
		t.Fatalf("migratory grants = %d", r.home(a).Stats().MigratoryGrants)
	}
	// The previous owner was invalidated, not downgraded.
	if _, hit := r.ccs[1].Cache().Peek(a); hit {
		t.Fatal("previous owner kept a copy")
	}
}

// A reader that never writes demotes the block (misprediction check via
// the returned data's writer).
func TestMigratoryMisprediction(t *testing.T) {
	r := newRig(t, rigOpts{cfg: migCfg()})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 0, a, 1)
	r.write(1000, 1, a, 2)    // migratory
	r.read(2000, 2, a)        // exclusive grant; node 2 never writes
	res := r.read(4000, 0, a) // invalidates node 2; data writer is 1, not 2
	r.run()
	mustDone(t, "read", res)
	e, _ := r.home(a).Dir().Peek(a)
	if e.Migratory {
		t.Fatal("block still migratory after a non-writing owner")
	}
}

// Two readers between writes demote the block before it migrates.
func TestMigratoryDemotedByTwoReaders(t *testing.T) {
	r := newRig(t, rigOpts{cfg: migCfg()})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 0, a, 1)
	r.write(1000, 1, a, 2) // migratory
	r.read(2000, 2, a)     // exclusive grant (migratory mode)
	r.read(4000, 0, a)     // demotes (data writer 1 != owner 2)
	r.read(6000, 3, a)     // second reader: normal shared grant
	r.run()
	e, _ := r.home(a).Dir().Peek(a)
	if e.Migratory {
		t.Fatal("read-shared block classified migratory")
	}
	if !e.State.IsShared() || e.Sharers.Count() < 2 {
		t.Fatalf("entry = state=%v sharers=%v, want multiple readers", e.State, e.Sharers)
	}
}

// Migratory detection composes with DSI: the exclusive-granted read is
// marked for self-invalidation like any exclusive grant.
func TestMigratoryComposesWithDSI(t *testing.T) {
	cfg := Config{Consistency: SC, Policy: core.Policy{
		Migratory: true, Identifier: core.States{}, UpgradeExemption: true}}
	r := newRig(t, rigOpts{cfg: cfg})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 0, a, 1)
	r.write(1000, 1, a, 2)
	res := r.read(2000, 2, a) // migratory grant from Exclusive: marked
	r.run()
	mustDone(t, "read", res)
	f, ok := r.ccs[2].Cache().Peek(a)
	if !ok || !f.SI {
		t.Fatalf("migratory grant unmarked: %+v", f)
	}
	e, _ := r.home(a).Dir().Peek(a)
	if e.State != directory.Exclusive || e.Owner != 2 {
		t.Fatalf("entry = %+v", e)
	}
}

// The migratory ring microbenchmark pattern end-to-end at rig level: each
// hand-off after detection costs one miss instead of read-miss + upgrade.
func TestMigratoryRingSavesUpgrades(t *testing.T) {
	base := newRig(t, rigOpts{cfg: scCfg()})
	mig := newRig(t, rigOpts{cfg: migCfg()})
	a := blockHomedAt(3, 4, 0)
	run := func(r *rig) {
		tm := event.Time(0)
		seq := uint64(1)
		for round := 0; round < 4; round++ {
			for n := 0; n < 4; n++ {
				r.read(tm, n, a)
				r.write(tm+1000, n, a, seq)
				seq++
				tm += 2000
			}
		}
		r.run()
	}
	run(base)
	run(mig)
	bu := base.net.Counts().ByKind[netsim.Upgrade]
	mu := mig.net.Counts().ByKind[netsim.Upgrade]
	if mu >= bu {
		t.Fatalf("migratory did not save upgrades: %d vs %d", mu, bu)
	}
}
