// Package proto implements the coherence protocol engines: the
// directory-side controller (dirctrl.go) and the cache-side controller
// (cachectrl.go) of the full-map write-invalidate protocol the paper
// evaluates, under both consistency models:
//
//   - Sequential consistency (SC): the processor stalls on every miss; the
//     directory invalidates outstanding copies and collects all
//     acknowledgments before forwarding the block.
//   - Weak consistency (WC): a 16-entry coalescing write buffer holds
//     outstanding exclusive requests; the directory grants exclusive access
//     in parallel with invalidation and forwards a single FinalAck once the
//     acknowledgments are collected; the processor stalls at swap/barrier
//     operations until all buffered writes are acknowledged, and on read
//     misses.
//
// DSI attaches through core.Policy: the directory controller asks the
// policy whether to mark each grant (and whether to hand shared copies out
// untracked as tear-off blocks), and the cache controller runs the policy's
// mechanism at installs and synchronization points.
package proto

import (
	"fmt"

	"dsisim/internal/core"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
	"dsisim/internal/obs"
)

// Consistency selects the memory consistency model.
type Consistency int

const (
	// SC is sequential consistency.
	SC Consistency = iota
	// WC is weak consistency with a coalescing write buffer.
	WC
)

func (c Consistency) String() string {
	if c == SC {
		return "SC"
	}
	return "WC"
}

// Timing constants from the paper's methodology section.
const (
	// CacheOccupancy is the cache controller occupancy per miss.
	CacheOccupancy = 3
	// DirOccupancy is the directory controller occupancy per request.
	DirOccupancy = 10
	// TearOffFlash is the time to flash-clear all tear-off blocks at a
	// synchronization point (a single cycle, §4.2).
	TearOffFlash = 1
)

// Env bundles the shared simulation context every controller needs.
type Env struct {
	Q      *event.Queue
	Net    *netsim.Network
	Layout *mem.Layout

	// CheckFail reports a protocol invariant violation. The machine wires
	// it to panic in tests and to error accumulation elsewhere. Never nil
	// after machine assembly.
	CheckFail func(format string, args ...any)

	// Sink is the coherence-event sink, nil unless observability was
	// requested. Controllers must guard every emission with a nil check so
	// the disabled path stays branch-only (see DESIGN.md §6).
	Sink *obs.Sink

	// TxnStride and TxnBase partition the transaction-id space when one
	// machine runs several Envs side by side (the parallel delivery engine
	// gives every node its own Env): node k draws ids TxnBase+1,
	// TxnBase+1+TxnStride, ... so ids stay globally unique without any
	// cross-partition coordination. The zero value (stride 0 or 1) is the
	// serial machine's single dense sequence 1, 2, 3, ...
	TxnStride uint64
	TxnBase   uint64

	// txnSeq is the transaction-id counter behind NextTxn.
	txnSeq uint64
}

// NextTxn returns the next coherence transaction id. Ids start at 1 so that
// 0 can mean "no transaction" on unsolicited messages. The counter advances
// deterministically with the protocol's own event order, so ids are stable
// run to run and carry no timing effect.
func (e *Env) NextTxn() uint64 {
	e.txnSeq++
	if e.TxnStride > 1 {
		return e.TxnBase + (e.txnSeq-1)*e.TxnStride + 1
	}
	return e.txnSeq
}

// Reset rewinds the transaction-id counter and installs the (possibly nil)
// sink for the next run. The queue, network, layout, and CheckFail wiring
// persist across machine reuse.
func (e *Env) Reset(sink *obs.Sink) {
	e.txnSeq = 0
	e.Sink = sink
}

// fail reports a protocol invariant violation and does not return control to
// the caller's normal path: it panics unless a test installed CheckFail.
//
//dsi:coldpath
func (e *Env) fail(format string, args ...any) {
	if e.CheckFail != nil {
		e.CheckFail(format, args...)
		return
	}
	panic(fmt.Sprintf("proto: "+format, args...))
}

// Config parameterizes one node's protocol controllers.
type Config struct {
	Consistency Consistency
	// WriteBufferEntries is the coalescing write buffer capacity under WC
	// (the paper uses 16). Ignored under SC.
	WriteBufferEntries int
	// SharerLimit caps the directory's sharer pointers per block
	// (a Dir_iNB-style limited directory, per the paper's citation [3]):
	// when a read grant would exceed the limit, the directory invalidates
	// one existing sharer to free a pointer. 0 means full map. Must be >= 2
	// when set (a recall transaction installs owner + requester together).
	SharerLimit int
	Policy      core.Policy
	// Retry enables the hardened protocol (robust.go): per-transaction
	// timeouts, bounded retransmission with exponential backoff,
	// duplicate-request deduplication, grant replay, and Nack/NackHome
	// handling. nil runs the strict base protocol, which treats every
	// anomaly as an invariant violation and arms no timers. The machine
	// installs DefaultRetry automatically when a fault plan is configured.
	Retry *RetryConfig
}

// Store is one processor store: the coherence-checking token plus the data
// word to deposit at the store's address within the block. The cache merges
// it into the block's current contents at word granularity.
type Store struct {
	Writer int
	Seq    uint64
	Word   uint64
}

// Merge applies the store to block contents v at address a.
func (s Store) Merge(v mem.Value, a mem.Addr) mem.Value {
	v.Writer = s.Writer
	v.Seq = s.Seq
	v.Words[mem.WordIndex(a)] = s.Word
	return v
}

// Result reports the completion of a processor-initiated access.
type Result struct {
	// Done is the simulated time the access completed.
	Done event.Time
	// Hit reports a cache hit (no protocol activity).
	Hit bool
	// InvWait is the portion of the miss latency the directory spent
	// invalidating or recalling outstanding copies — the coherence overhead
	// DSI eliminates; the processor attributes it to the read-inv/write-inv
	// categories.
	InvWait event.Time
	// WBRead reports that a read stalled behind an outstanding write-buffer
	// entry for the same block (weak consistency "read wb" time).
	WBRead bool
	// WBFullWait is the time a buffered store waited for a free write
	// buffer slot (weak consistency "wb full" time).
	WBFullWait event.Time
	// Value is the block contents observed by a read or swap.
	Value mem.Value
	// OldWord is the word value a swap displaced.
	OldWord uint64
}
