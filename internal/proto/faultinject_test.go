package proto

import (
	"strings"
	"testing"

	"dsisim/internal/netsim"
)

// Fault injection: deliver messages the protocol never sent and verify the
// controllers' self-checks reject them rather than silently corrupting
// state. Each test uses a tolerant rig and asserts a failure was recorded
// with the expected diagnosis.

func expectFail(t *testing.T, r *rig, substr string) {
	t.Helper()
	for _, f := range r.fails {
		if strings.Contains(f, substr) {
			return
		}
	}
	t.Fatalf("fault not detected; want %q in %v", substr, r.fails)
}

func TestInjectStrayInvAck(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg(), tolerate: true})
	a := blockHomedAt(1, 4, 0)
	r.at(0, func() {
		r.net.Send(netsim.Message{Kind: netsim.InvAck, Src: 2, Dst: 1, Addr: a})
	})
	r.run()
	expectFail(t, r, "stray ack")
}

func TestInjectDuplicateAck(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg(), tolerate: true})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.read(300, 1, a)
	// Node 2's write triggers two Invs; a forged third ack overruns the
	// count.
	r.write(1000, 2, a, 1)
	r.at(1250, func() {
		r.net.Send(netsim.Message{Kind: netsim.InvAck, Src: 0, Dst: 3, Addr: a})
	})
	r.run()
	if len(r.fails) == 0 {
		t.Fatal("duplicated ack went unnoticed")
	}
}

func TestInjectBystanderWriteback(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg(), tolerate: true})
	a := blockHomedAt(1, 4, 0)
	r.write(0, 0, a, 1) // node 0 owns the block
	r.at(1000, func() {
		// Node 2 claims to write back a block it never owned.
		r.net.Send(netsim.Message{Kind: netsim.WB, Src: 2, Dst: 1, Addr: a})
	})
	r.run()
	expectFail(t, r, "writeback")
}

func TestInjectDataWithoutRequest(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg(), tolerate: true})
	a := blockHomedAt(1, 4, 0)
	r.at(0, func() {
		r.net.Send(netsim.Message{Kind: netsim.DataS, Src: 1, Dst: 0, Addr: a})
	})
	r.run()
	expectFail(t, r, "unexpected DataS")
}

func TestInjectFinalAckWithoutPending(t *testing.T) {
	r := newRig(t, rigOpts{cfg: wcCfg(), tolerate: true})
	a := blockHomedAt(1, 4, 0)
	r.at(0, func() {
		r.net.Send(netsim.Message{Kind: netsim.FinalAck, Src: 1, Dst: 0, Addr: a})
	})
	r.run()
	expectFail(t, r, "stray FinalAck")
}

func TestInjectGetXFromOwner(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg(), tolerate: true})
	a := blockHomedAt(1, 4, 0)
	r.write(0, 0, a, 1)
	r.at(1000, func() {
		// Node 0 already owns the block; a second exclusive request from it
		// indicates state corruption.
		r.net.Send(netsim.Message{Kind: netsim.GetX, Src: 0, Dst: 1, Addr: a})
	})
	r.run()
	expectFail(t, r, "current owner")
}

// A well-behaved run through the same rig records no failures — the
// injection tests above are meaningful.
func TestNoFalsePositives(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg(), tolerate: true})
	a := blockHomedAt(1, 4, 0)
	r.write(0, 0, a, 1)
	r.read(1000, 2, a)
	r.write(2000, 3, a, 2)
	r.run()
	if len(r.fails) != 0 {
		t.Fatalf("clean run recorded failures: %v", r.fails)
	}
}
