package proto

import (
	"fmt"
	"testing"

	"dsisim/internal/cache"
	"dsisim/internal/core"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
)

// rig is a minimal machine for protocol unit tests: N nodes, each with a
// cache controller and a directory controller, wired to a network, with no
// processor model on top.
type rig struct {
	t      *testing.T
	q      *event.Queue
	net    *netsim.Network
	layout *mem.Layout
	env    *Env
	ccs    []*CacheCtrl
	dcs    []*DirCtrl
	fails  []string
}

type rigOpts struct {
	nodes      int
	latency    event.Time
	cacheBytes int
	assoc      int
	cfg        Config
	// tolerate suppresses t.Fatal on protocol check failures (for tests
	// that examine failure reporting itself).
	tolerate bool
}

func newRig(t *testing.T, o rigOpts) *rig {
	t.Helper()
	if o.nodes == 0 {
		o.nodes = 4
	}
	if o.latency == 0 {
		o.latency = 100
	}
	if o.cacheBytes == 0 {
		o.cacheBytes = 32 * mem.BlockSize * 4
	}
	if o.assoc == 0 {
		o.assoc = 4
	}
	r := &rig{t: t, q: &event.Queue{}, layout: mem.NewLayout(o.nodes)}
	r.net = netsim.New(r.q, netsim.Config{Nodes: o.nodes, Latency: o.latency})
	r.env = &Env{Q: r.q, Net: r.net, Layout: r.layout}
	r.env.CheckFail = func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		r.fails = append(r.fails, msg)
		if !o.tolerate {
			t.Fatalf("protocol check failed at t=%d: %s", r.q.Now(), msg)
		}
	}
	geo := cache.Config{SizeBytes: o.cacheBytes, Assoc: o.assoc}
	for i := 0; i < o.nodes; i++ {
		cc := NewCacheCtrl(r.env, i, o.cfg, geo)
		dc := NewDirCtrl(r.env, i, o.cfg)
		r.ccs = append(r.ccs, cc)
		r.dcs = append(r.dcs, dc)
	}
	for i := 0; i < o.nodes; i++ {
		cc, dc := r.ccs[i], r.dcs[i]
		r.net.SetHandler(i, func(m netsim.Message) {
			switch m.Kind {
			case netsim.Inv, netsim.Recall, netsim.DataS, netsim.DataX,
				netsim.AckX, netsim.FinalAck:
				cc.Handle(m)
			default:
				dc.Handle(m)
			}
		})
	}
	return r
}

// run drains the event queue with a watchdog.
func (r *rig) run() {
	r.t.Helper()
	const cap = 5_000_000
	if r.q.RunSteps(cap) == cap {
		r.t.Fatal("simulation did not quiesce (livelock?)")
	}
}

// at schedules fn at time t.
func (r *rig) at(t event.Time, fn func()) { r.q.At(t, fn) }

// read issues a load from node at time t and returns a pointer that holds
// the result after run().
func (r *rig) read(t event.Time, node int, a mem.Addr) *Result {
	res := &Result{Done: -1}
	r.at(t, func() { r.ccs[node].Read(a, func(x Result) { *res = x }) })
	return res
}

func (r *rig) write(t event.Time, node int, a mem.Addr, seq uint64) *Result {
	res := &Result{Done: -1}
	st := Store{Writer: node, Seq: seq}
	r.at(t, func() { r.ccs[node].Write(a, st, func(x Result) { *res = x }) })
	return res
}

func (r *rig) swap(t event.Time, node int, a mem.Addr, word uint64, seq uint64) *Result {
	res := &Result{Done: -1}
	st := Store{Writer: node, Seq: seq}
	r.at(t, func() { r.ccs[node].Swap(a, word, st, func(x Result) { *res = x }) })
	return res
}

func (r *rig) flush(t event.Time, node int) *Result {
	res := &Result{Done: -1}
	r.at(t, func() { r.ccs[node].SyncFlush(func(x Result) { *res = x }) })
	return res
}

// countsAt returns a pointer that, after run(), holds the network counters
// as they stood at simulated time t.
func (r *rig) countsAt(t event.Time) *netsim.Counts {
	snap := &netsim.Counts{}
	r.at(t, func() { *snap = r.net.Counts() })
	return snap
}

// home returns the directory controller that homes address a.
func (r *rig) home(a mem.Addr) *DirCtrl { return r.dcs[r.layout.Home(a)] }

// mustDone asserts the operation completed.
func mustDone(t *testing.T, name string, res *Result) {
	t.Helper()
	if res.Done < 0 {
		t.Fatalf("%s never completed", name)
	}
}

// scCfg is the base sequentially consistent configuration.
func scCfg() Config { return Config{Consistency: SC} }

// wcCfg is the base weakly consistent configuration.
func wcCfg() Config { return Config{Consistency: WC, WriteBufferEntries: 16} }

// dsiCfg returns an SC configuration with DSI enabled.
func dsiCfg(id core.Identifier) Config {
	return Config{Consistency: SC, Policy: core.Policy{Identifier: id, UpgradeExemption: true}}
}
