package proto

import (
	"testing"

	"dsisim/internal/cache"
	"dsisim/internal/directory"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
)

// blockHomedAt returns an address homed at the given node (unallocated
// addresses interleave by block index). idx picks distinct blocks.
func blockHomedAt(node, nodes, idx int) mem.Addr {
	return mem.Addr((node + idx*nodes) * mem.BlockSize)
}

func TestSCReadMissFromIdleTiming(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg()})
	a := blockHomedAt(1, 4, 0)
	res := r.read(0, 0, a)
	r.run()
	mustDone(t, "read", res)
	// 3 (cache ctrl) + 3 (inject) + 100 (net) + 10 (dir) + 11 (inject data)
	// + 100 (net) = 227.
	if res.Done != 227 {
		t.Fatalf("read latency = %d, want 227", res.Done)
	}
	if res.Hit || res.InvWait != 0 {
		t.Fatalf("res = %+v", res)
	}
	e, ok := r.home(a).Dir().Peek(a)
	if !ok || e.State != directory.Shared || !e.Sharers.Only(0) {
		t.Fatalf("dir entry = %+v", e)
	}
}

func TestSCReadHitAfterFill(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg()})
	a := blockHomedAt(1, 4, 0)
	r.read(0, 0, a)
	res := r.read(1000, 0, a)
	r.run()
	if !res.Hit || res.Done != 1000 {
		t.Fatalf("second read = %+v, want synchronous hit", res)
	}
}

func TestSCLocalMissSkipsNetwork(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg()})
	a := blockHomedAt(2, 4, 0) // homed at the requester itself
	res := r.read(0, 2, a)
	r.run()
	// 3 (cache ctrl) + 1 (local delivery) + 10 (dir) + 1 (local delivery).
	if res.Done != 15 {
		t.Fatalf("local read latency = %d, want 15", res.Done)
	}
	if r.net.Counts().Total() != 0 {
		t.Fatal("local miss generated network messages")
	}
}

func TestSCWriteMissInvalidatesSharers(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg()})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.read(0, 1, a)
	res := r.write(1000, 2, a, 1)
	r.run()
	mustDone(t, "write", res)
	e, _ := r.home(a).Dir().Peek(a)
	if e.State != directory.Exclusive || e.Owner != 2 {
		t.Fatalf("dir entry = %+v", e)
	}
	for n := 0; n <= 1; n++ {
		if _, hit := r.ccs[n].Cache().Peek(a); hit {
			t.Fatalf("node %d copy survived invalidation", n)
		}
	}
	f, hit := r.ccs[2].Cache().Peek(a)
	if !hit || f.State != cache.Exclusive || f.Data.Writer != 2 {
		t.Fatalf("writer frame = %+v (hit=%v)", f, hit)
	}
	// The write stalled for the invalidation round trip: InvWait covers
	// Inv injection + flight + ack injection + flight ≈ 206 for 2 sharers
	// (injections serialize: 3+3, then acks overlap).
	if res.InvWait <= 200 {
		t.Fatalf("InvWait = %d, want > 200", res.InvWait)
	}
	c := r.net.Counts()
	if c.ByKind[netsim.Inv] != 2 || c.ByKind[netsim.InvAck] != 2 {
		t.Fatalf("inv traffic = %+v", c)
	}
}

func TestSCReadRecallsExclusive(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg()})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 0, a, 7)
	res := r.read(1000, 1, a)
	r.run()
	mustDone(t, "read", res)
	if res.Value.Writer != 0 || res.Value.Seq != 7 {
		t.Fatalf("read value = %v, want w0#7", res.Value)
	}
	if res.InvWait <= 200 {
		t.Fatalf("recall InvWait = %d, want > 200", res.InvWait)
	}
	e, _ := r.home(a).Dir().Peek(a)
	if e.State != directory.Shared || !e.Sharers.Has(0) || !e.Sharers.Has(1) {
		t.Fatalf("dir entry = %+v", e)
	}
	// Old owner was downgraded, not invalidated.
	f, hit := r.ccs[0].Cache().Peek(a)
	if !hit || f.State != cache.Shared {
		t.Fatalf("owner frame = %+v", f)
	}
	// The home memory now has the recalled data.
	if v := r.home(a).Memory().Read(a); v.Writer != 0 || v.Seq != 7 {
		t.Fatalf("home memory = %v", v)
	}
}

func TestSCWriteToExclusiveTransfersOwnership(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg()})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 0, a, 1)
	res := r.write(1000, 1, a, 2)
	r.run()
	mustDone(t, "write", res)
	e, _ := r.home(a).Dir().Peek(a)
	if e.State != directory.Exclusive || e.Owner != 1 {
		t.Fatalf("dir entry = %+v", e)
	}
	if _, hit := r.ccs[0].Cache().Peek(a); hit {
		t.Fatal("old owner copy survived")
	}
	c := r.net.Counts()
	if c.ByKind[netsim.InvAckData] != 1 {
		t.Fatalf("expected one InvAckData, got %+v", c.ByKind)
	}
	// The new owner's data reflects its own write.
	f, _ := r.ccs[1].Cache().Peek(a)
	if f.Data.Writer != 1 || f.Data.Seq != 2 {
		t.Fatalf("new owner data = %v", f.Data)
	}
}

func TestSCUpgradeUsesAckX(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg()})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	res := r.write(1000, 0, a, 5)
	r.run()
	mustDone(t, "upgrade", res)
	c := r.net.Counts()
	if c.ByKind[netsim.Upgrade] != 1 || c.ByKind[netsim.AckX] != 1 {
		t.Fatalf("upgrade traffic: Upgrade=%d AckX=%d", c.ByKind[netsim.Upgrade], c.ByKind[netsim.AckX])
	}
	if c.ByKind[netsim.DataX] != 0 {
		t.Fatal("upgrade was served with data")
	}
	f, _ := r.ccs[0].Cache().Peek(a)
	if f.State != cache.Exclusive || f.Data.Seq != 5 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestSCUpgradeWithOtherSharersWaitsForAcks(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg()})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.read(0, 1, a)
	res := r.write(1000, 0, a, 3)
	r.run()
	mustDone(t, "upgrade", res)
	if res.InvWait <= 0 {
		t.Fatal("upgrade with other sharers had no invalidation wait")
	}
	if _, hit := r.ccs[1].Cache().Peek(a); hit {
		t.Fatal("other sharer survived")
	}
}

func TestSCSwapAtomicExchange(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg()})
	a := blockHomedAt(3, 4, 0)
	s1 := r.swap(0, 0, a, 1, 1)
	s2 := r.swap(5000, 1, a, 1, 1)
	r.run()
	mustDone(t, "swap1", s1)
	mustDone(t, "swap2", s2)
	if s1.OldWord != 0 {
		t.Fatalf("first swap old = %d, want 0 (lock acquired)", s1.OldWord)
	}
	if s2.OldWord != 1 {
		t.Fatalf("second swap old = %d, want 1 (lock held)", s2.OldWord)
	}
}

func TestSCSwapHitWhenOwned(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg()})
	a := blockHomedAt(3, 4, 0)
	r.swap(0, 0, a, 1, 1)
	res := r.swap(5000, 0, a, 0, 2) // release: still exclusive, pure hit
	r.run()
	if !res.Hit || res.OldWord != 1 {
		t.Fatalf("owned swap = %+v", res)
	}
}

func TestWritebackOnEviction(t *testing.T) {
	// One-set, one-way cache: the second block displaces the first.
	r := newRig(t, rigOpts{cfg: scCfg(), cacheBytes: mem.BlockSize, assoc: 1})
	a := blockHomedAt(1, 4, 0)
	b := blockHomedAt(1, 4, 1)
	r.write(0, 0, a, 9)
	r.read(5000, 0, b)
	r.run()
	c := r.net.Counts()
	if c.ByKind[netsim.WB] != 1 {
		t.Fatalf("WB count = %d, want 1", c.ByKind[netsim.WB])
	}
	if v := r.home(a).Memory().Read(a); v.Writer != 0 || v.Seq != 9 {
		t.Fatalf("home memory after WB = %v", v)
	}
	e, _ := r.home(a).Dir().Peek(a)
	if !e.State.IsIdle() {
		t.Fatalf("dir state after WB = %v", e.State)
	}
}

func TestSharedReplacementHint(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg(), cacheBytes: mem.BlockSize, assoc: 1})
	a := blockHomedAt(1, 4, 0)
	b := blockHomedAt(1, 4, 1)
	r.read(0, 0, a)
	r.read(5000, 0, b)
	r.run()
	c := r.net.Counts()
	if c.ByKind[netsim.Repl] != 1 {
		t.Fatalf("Repl count = %d, want 1", c.ByKind[netsim.Repl])
	}
	e, _ := r.home(a).Dir().Peek(a)
	if !e.State.IsIdle() {
		t.Fatalf("dir state after Repl = %v", e.State)
	}
}

// The classic race: the owner writes back while the directory is recalling
// its copy. The WB must be consumed as the recall data and the stale ack
// must complete the transaction.
func TestWritebackRacesRecall(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg(), cacheBytes: mem.BlockSize, assoc: 1})
	a := blockHomedAt(1, 4, 0) // homed at node 1
	b := blockHomedAt(1, 4, 1)
	r.write(0, 0, a, 4)
	// Node 2's read arrives at the home around t=216 and sends a Recall.
	// Node 0 evicts the block at t=330, while the Recall is in flight.
	res := r.read(100, 2, a)
	r.read(330, 0, b)
	r.run()
	mustDone(t, "racing read", res)
	if res.Value.Writer != 0 || res.Value.Seq != 4 {
		t.Fatalf("read got %v, want the written-back data w0#4", res.Value)
	}
	if v := r.home(a).Memory().Read(a); v.Seq != 4 {
		t.Fatalf("home memory = %v", v)
	}
	e, _ := r.home(a).Dir().Peek(a)
	if !e.State.IsShared() || !e.Sharers.Has(2) {
		t.Fatalf("dir entry after race = state=%v sharers=%v", e.State, e.Sharers)
	}
}

// Replacement hint racing an invalidation: the sharer replaces its copy,
// then the directory (serving a write) invalidates it; the unconditional
// ack keeps the count correct and the stale hint is dropped.
func TestReplacementRacesInvalidation(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg(), cacheBytes: mem.BlockSize, assoc: 1})
	a := blockHomedAt(1, 4, 0)
	b := blockHomedAt(1, 4, 1)
	r.read(0, 0, a)
	// Write from node 2 processed at home ≈ t=316; Inv heads to node 0.
	// Node 0 replaces the block at t=330 before the Inv lands.
	res := r.write(200, 2, a, 6)
	r.read(330, 0, b)
	r.run()
	mustDone(t, "write", res)
	e, _ := r.home(a).Dir().Peek(a)
	if e.State != directory.Exclusive || e.Owner != 2 {
		t.Fatalf("dir entry = %+v", e)
	}
}

func TestQueuedRequestsServeInOrder(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg()})
	a := blockHomedAt(3, 4, 0)
	r.write(0, 0, a, 1)
	// Two requests race while the home is busy recalling node 0's copy.
	res1 := r.read(1000, 1, a)
	res2 := r.write(1001, 2, a, 2)
	r.run()
	mustDone(t, "read", res1)
	mustDone(t, "write", res2)
	if res1.Done >= res2.Done {
		t.Fatalf("queued write finished before earlier read: %d vs %d", res2.Done, res1.Done)
	}
	e, _ := r.home(a).Dir().Peek(a)
	if e.State != directory.Exclusive || e.Owner != 2 {
		t.Fatalf("final dir entry = %+v", e)
	}
	if r.home(a).Stats().Queued == 0 {
		t.Fatal("no request was queued")
	}
}

func TestDirStatsCount(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scCfg()})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.write(1000, 1, a, 1)
	r.run()
	st := r.home(a).Stats()
	if st.Requests != 2 {
		t.Fatalf("requests = %d, want 2", st.Requests)
	}
	if st.Invalidates != 1 {
		t.Fatalf("invalidates = %d, want 1", st.Invalidates)
	}
}
