package proto

import (
	"strings"
	"testing"

	"dsisim/internal/cache"
	"dsisim/internal/core"
	"dsisim/internal/directory"
	"dsisim/internal/netsim"
)

// TestOpKindString checks the miss-kind names used in failure messages and
// debug output.
func TestOpKindString(t *testing.T) {
	want := map[opKind]string{opRead: "read", opWrite: "write", opSwap: "swap"}
	for k, w := range want {
		if got := k.String(); got != w {
			t.Errorf("opKind(%d).String() = %q, want %q", int(k), got, w)
		}
	}
	if got := opKind(7).String(); got != "opKind(7)" {
		t.Errorf("out-of-range opKind = %q, want opKind(7)", got)
	}
	if got := opKind(-1).String(); got != "opKind(-1)" {
		t.Errorf("negative opKind = %q, want opKind(-1)", got)
	}
}

// TestProtocolEnumNames checks that every constant of the protocol-facing
// enums renders a real name, not the numeric placeholder — the exhaustive
// analyzer keeps the switches complete, and this keeps the labels honest.
func TestProtocolEnumNames(t *testing.T) {
	for k := netsim.Kind(0); k < netsim.NumKinds; k++ {
		if s := k.String(); strings.Contains(s, "Kind(") {
			t.Errorf("netsim.Kind %d has placeholder name %q", int(k), s)
		}
	}
	for _, s := range []directory.State{
		directory.Idle, directory.Shared, directory.Exclusive,
		directory.IdleS, directory.IdleX, directory.SharedSI, directory.IdleSI,
	} {
		if n := s.String(); strings.Contains(n, "State(") {
			t.Errorf("directory.State %d has placeholder name %q", int(s), n)
		}
	}
	for _, s := range []cache.State{cache.Invalid, cache.Shared, cache.Exclusive} {
		if n := s.String(); strings.Contains(n, "State(") {
			t.Errorf("cache.State %d has placeholder name %q", int(s), n)
		}
	}
	for _, c := range []core.IdleCause{core.CauseReplace, core.CauseSelfInv} {
		if n := c.String(); strings.Contains(n, "IdleCause(") {
			t.Errorf("core.IdleCause %d has placeholder name %q", int(c), n)
		}
	}
	if got := core.IdleCause(9).String(); got != "IdleCause(9)" {
		t.Errorf("out-of-range IdleCause = %q, want IdleCause(9)", got)
	}
}
