package proto

import (
	"testing"

	"dsisim/internal/core"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
)

// scTearOffCfg is SC with version-number DSI and Scheurich-style tear-off.
func scTearOffCfg() Config {
	return Config{Consistency: SC, Policy: core.Policy{
		Identifier: core.Versions{}, SCTearOff: true, UpgradeExemption: true}}
}

// An SC tear-off grant is untracked and the write after it needs no
// invalidation, exactly as under WC.
func TestSCTearOffUntracked(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scTearOffCfg()})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.write(1000, 1, a, 1)
	res := r.read(3000, 0, a) // version mismatch → marked → tear-off
	before := r.countsAt(4999)
	resW := r.write(5000, 1, a, 2)
	r.run()
	mustDone(t, "tear-off read", res)
	mustDone(t, "write", resW)
	f, hit := r.ccs[0].Cache().Peek(a)
	if !hit || !f.TearOff {
		t.Fatalf("frame = %+v (hit=%v), want tear-off", f, hit)
	}
	e, _ := r.home(a).Dir().Peek(a)
	if e.Sharers.Has(0) {
		t.Fatal("tear-off copy tracked")
	}
	diff := r.net.Counts().Sub(*before)
	if diff.Invalidation() != 0 {
		t.Fatalf("write after SC tear-off generated %d invalidation messages", diff.Invalidation())
	}
}

// The Scheurich condition: the tear-off copy dies at the holder's next
// cache miss.
func TestSCTearOffDiesAtNextMiss(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scTearOffCfg()})
	a := blockHomedAt(3, 4, 0)
	b := blockHomedAt(2, 4, 0)
	r.read(0, 0, a)
	r.write(1000, 1, a, 1)
	r.read(3000, 0, a) // tear-off copy of a
	r.read(5000, 0, b) // unrelated miss: must invalidate the tear-off copy
	r.run()
	if _, hit := r.ccs[0].Cache().Peek(a); hit {
		t.Fatal("tear-off copy survived a subsequent miss")
	}
}

// At most one tear-off copy per cache: a second tear-off grant displaces
// the first (and the grant itself is a miss anyway).
func TestSCTearOffSingleCopy(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scTearOffCfg()})
	a := blockHomedAt(3, 4, 0)
	b := blockHomedAt(3, 4, 1)
	// Build version history on both blocks for node 0 (SC: one outstanding
	// miss at a time per node).
	r.read(0, 0, a)
	r.read(500, 0, b)
	r.write(1000, 1, a, 1)
	r.write(2000, 1, b, 1)
	r.read(3000, 0, a) // tear-off #1
	r.read(5000, 0, b) // tear-off #2 (its miss also kills #1)
	r.run()
	if _, hit := r.ccs[0].Cache().Peek(a); hit {
		t.Fatal("first tear-off copy survived the second tear-off grant")
	}
	f, hit := r.ccs[0].Cache().Peek(b)
	if !hit || !f.TearOff {
		t.Fatalf("second tear-off copy = %+v (hit=%v)", f, hit)
	}
}

// Tear-off copies still flash-clear at sync points, so barrier-based
// producer-consumer stays correct (the machine-level workload tests cover
// the end-to-end behavior; this checks the protocol directly).
func TestSCTearOffFlushAtSync(t *testing.T) {
	r := newRig(t, rigOpts{cfg: scTearOffCfg()})
	a := blockHomedAt(3, 4, 0)
	r.read(0, 0, a)
	r.write(1000, 1, a, 1)
	r.read(3000, 0, a) // tear-off
	fl := r.flush(5000, 0)
	r.run()
	mustDone(t, "flush", fl)
	if fl.Done != 5000+TearOffFlash {
		t.Fatalf("flush took %d cycles, want flash clear (%d)", fl.Done-5000, TearOffFlash)
	}
	if _, hit := r.ccs[0].Cache().Peek(a); hit {
		t.Fatal("tear-off survived sync flush")
	}
}

// Cache-side identification marks re-fetched blocks without directory
// support: after two explicit invalidations, the third fetch self-marks and
// the eventual self-invalidation notification keeps the directory exact.
func TestCacheSideIdentification(t *testing.T) {
	cfg := Config{Consistency: SC, Policy: core.Policy{
		NewHistory: func() *core.InvalHistory { return core.NewInvalHistory(16, 2) },
	}}
	r := newRig(t, rigOpts{cfg: cfg})
	a := blockHomedAt(3, 4, 0)
	// Two read-invalidate rounds to build history at node 0.
	for i := 0; i < 2; i++ {
		r.read(event.Time(i*2000), 0, a)
		r.write(event.Time(i*2000+1000), 1, a, uint64(i+1))
	}
	res := r.read(4000, 0, a) // third fetch: history marks it locally
	fl := r.flush(5000, 0)
	r.run()
	mustDone(t, "read", res)
	mustDone(t, "flush", fl)
	if r.ccs[0].Stats().CacheSideMarked != 1 {
		t.Fatalf("cache-side marked = %d, want 1", r.ccs[0].Stats().CacheSideMarked)
	}
	if _, hit := r.ccs[0].Cache().Peek(a); hit {
		t.Fatal("locally marked block survived the flush")
	}
	if r.net.Counts().ByKind[netsim.SInvNotify] != 1 {
		t.Fatal("self-invalidation notification missing")
	}
	e, _ := r.home(a).Dir().Peek(a)
	if e.Sharers.Has(0) {
		t.Fatal("directory still tracks the self-invalidated copy")
	}
}

// The naive flush pays a full cache scan at every sync point.
func TestNaiveFlushLatency(t *testing.T) {
	cfg := Config{Consistency: SC, Policy: core.Policy{
		Identifier:   core.Versions{},
		NewMechanism: func() core.Mechanism { return core.NaiveFlush{} },
	}}
	r := newRig(t, rigOpts{cfg: cfg, cacheBytes: 32 * mem.BlockSize, assoc: 4})
	fl := r.flush(100, 0) // nothing marked: still scans all 32 frames
	r.run()
	mustDone(t, "flush", fl)
	if fl.Done != 100+32 {
		t.Fatalf("naive flush took %d cycles, want 32 (full scan)", fl.Done-100)
	}
}
