// Hardened-protocol support: per-transaction timeouts, bounded retry with
// deterministic exponential backoff, duplicate-request deduplication, grant
// replay, and negative acknowledgments. All of it is gated on Config.Retry —
// when Retry is nil the controllers run the strict base protocol, treat any
// anomaly as an invariant violation, and arm no timers, so the fault-free
// fast path is untouched (docs/FAULTS.md).
//
// Recovery relies on two properties the network guarantees even under a
// fault plan: per-(src,dst) delivery stays FIFO, and the message kinds whose
// loss is unrecoverable (data carriers, unsolicited writebacks and notices —
// see netsim.Kind.Droppable) are delayed, never dropped. Everything else is
// covered by retransmission: requests and probes are deduplicated by
// (source, transaction id) at the directory, re-sent coherence actions are
// answered with NackHome when the copy is already gone, and grants are
// replayed from directory state when the original reply was lost.
package proto

import (
	"sort"

	"dsisim/internal/cache"
	"dsisim/internal/directory"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
)

// RetryConfig enables the hardened protocol and parameterizes its recovery
// machinery.
type RetryConfig struct {
	// Timeout is the base per-transaction timer: a cache-side miss or
	// directory-side transaction that has not completed within Timeout
	// cycles retransmits its request or coherence action. It should be
	// generously above the worst-case round trip so clean runs never time
	// out.
	Timeout event.Time
	// Max bounds the retransmissions per transaction; exceeding it is
	// reported as a protocol failure (livelock) instead of retrying forever.
	Max int
	// QueueLimit bounds the per-block request queue at the directory;
	// requests beyond it are refused with a Nack and retried by the
	// requester after backoff. 0 means unbounded.
	QueueLimit int
}

// DefaultRetry returns the retry parameters the machine installs when a
// fault plan is configured: a timeout comfortably above the worst-case
// round trip for the given network latency.
func DefaultRetry(latency event.Time) *RetryConfig {
	if latency <= 0 {
		latency = 1
	}
	return &RetryConfig{Timeout: 8*latency + 512, Max: 12}
}

// maxBackoffShift caps the exponential backoff doubling so the timer value
// cannot overflow and the worst-case wait stays bounded.
const maxBackoffShift = 10

// backoff returns the timer value for the retries-th retransmission:
// Timeout doubled per retry, capped at Timeout << maxBackoffShift.
//
//dsi:hotpath
func (r *RetryConfig) backoff(retries int) event.Time {
	s := retries
	if s > maxBackoffShift {
		s = maxBackoffShift
	}
	return r.Timeout << uint(s)
}

// --- cache-side timers -------------------------------------------------------

// retryCall is a pooled record for one armed cache-side transaction timer.
// The event queue cannot cancel events, so the record carries the (block,
// transaction, generation) triple it was armed for and doCacheRetry
// validates it against live state on fire; completed or re-armed
// transactions make stale timers vanish without side effects.
type retryCall struct {
	cc  *CacheCtrl
	b   mem.Addr
	txn uint64
	gen uint32
}

// armMissTimer schedules the next timeout for the outstanding miss on b,
// invalidating any previously armed timer via the generation counter.
//
//dsi:hotpath
func (cc *CacheCtrl) armMissTimer(b mem.Addr, ms *mshr) {
	ms.tgen++
	rc := cc.newRetryCall()
	rc.b, rc.txn, rc.gen = b, ms.txn, ms.tgen
	cc.env.Q.AtCall(cc.env.Q.Now()+cc.cfg.Retry.backoff(ms.retries), doCacheRetry, rc)
}

// armFinalTimer schedules the next timeout for a write-buffer entry awaiting
// its FinalAck. Callers set e.txn/e.retries before the first arm.
//
//dsi:hotpath
func (cc *CacheCtrl) armFinalTimer(b mem.Addr, e *wbEntry) {
	e.tgen++
	rc := cc.newRetryCall()
	rc.b, rc.txn, rc.gen = b, e.txn, e.tgen
	cc.env.Q.AtCall(cc.env.Q.Now()+cc.cfg.Retry.backoff(e.retries), doCacheRetry, rc)
}

//dsi:hotpath
func (cc *CacheCtrl) newRetryCall() *retryCall {
	if n := len(cc.rtFree); n > 0 {
		rc := cc.rtFree[n-1]
		cc.rtFree = cc.rtFree[:n-1]
		return rc
	}
	return &retryCall{cc: cc}
}

// doCacheRetry is the static action for cache-side timers: recycle the
// record, then fire only if the transaction it was armed for is still live
// and has not re-armed since.
//
//dsi:hotpath
func doCacheRetry(arg any) {
	rc := arg.(*retryCall)
	cc, b, txnID, gen := rc.cc, rc.b, rc.txn, rc.gen
	rc.b, rc.txn, rc.gen = 0, 0, 0
	cc.rtFree = append(cc.rtFree, rc)
	id := cc.blocks.ID(mem.BlockIndex(b))
	if id < 0 {
		return
	}
	if ms := cc.blocks.Hot(id).ms; ms != nil && ms.txn == txnID && ms.tgen == gen {
		cc.onMissTimeout(b, ms)
		return
	}
	if e := cc.blocks.Cold(id).wb; e != nil && e.pendingFinal && e.txn == txnID && e.tgen == gen {
		cc.onFinalTimeout(b, e)
	}
	// Otherwise the transaction completed before the timer fired: stale.
}

// onMissTimeout retransmits an outstanding miss whose reply is overdue.
func (cc *CacheCtrl) onMissTimeout(b mem.Addr, ms *mshr) {
	r := cc.cfg.Retry
	ms.retries++
	cc.stats.Timeouts++
	if ms.retries > r.Max {
		cc.env.fail("cache %d: giving up on %v miss for %#x (txn %d) after %d retries",
			cc.node, ms.kind, uint64(b), ms.txn, r.Max)
		return // no re-arm: the stuck miss surfaces in the watchdog dump
	}
	if sk := cc.env.Sink; sk != nil {
		sk.OnRetryTimeout(cc.env.Q.Now(), cc.node, b, ms.txn, ms.retries, false)
	}
	cc.stats.Retries++
	if ms.waitingFinal {
		// The grant was consumed but the FinalAck is missing: probe with a
		// retransmitted GetX; an idle directory that already recorded this
		// node as owner replays the grant with Pending cleared.
		cc.sendProbe(b, ms.txn)
	} else {
		cc.sendRequest(b, ms, false)
	}
	cc.armMissTimer(b, ms)
}

// onFinalTimeout probes for a FinalAck that never arrived for a pending
// write-buffer entry.
func (cc *CacheCtrl) onFinalTimeout(b mem.Addr, e *wbEntry) {
	r := cc.cfg.Retry
	e.retries++
	cc.stats.Timeouts++
	if e.retries > r.Max {
		cc.env.fail("cache %d: giving up on FinalAck for %#x (txn %d) after %d retries",
			cc.node, uint64(b), e.txn, r.Max)
		return
	}
	if sk := cc.env.Sink; sk != nil {
		sk.OnRetryTimeout(cc.env.Q.Now(), cc.node, b, e.txn, e.retries, false)
	}
	cc.stats.Retries++
	cc.sendProbe(b, e.txn)
	cc.armFinalTimer(b, e)
}

// sendProbe retransmits a GetX carrying the original transaction id, used
// to recover a lost grant or FinalAck. It is marked Probe because the
// grant was already consumed here: the directory either deduplicates it
// (transaction still busy), replays the grant from its recorded state, or —
// when the block's state has since moved past this transaction — re-sends
// the FinalAck instead of serving the probe as a fresh request.
func (cc *CacheCtrl) sendProbe(b mem.Addr, txnID uint64) {
	ver, hasVer := cc.c.EchoVersion(b)
	_, done := cc.server.Admit(cc.env.Q.Now(), CacheOccupancy)
	sc := cc.newSendCall()
	sc.msg = netsim.Message{Kind: netsim.GetX, Dst: cc.home(b), Addr: b, Ver: ver, HasVer: hasVer, Txn: txnID, Probe: true}
	cc.env.Q.AtCall(done, doSendCall, sc)
}

// onNack handles a directory Nack (request refused under overload): bump the
// retry count and re-arm the backoff timer; the timer retransmits.
func (cc *CacheCtrl) onNack(m netsim.Message) {
	b := mem.BlockOf(m.Addr)
	if cc.cfg.Retry == nil {
		cc.env.fail("cache %d: Nack without retry enabled: %v", cc.node, m)
		return
	}
	id, blk := cc.blocks.Ensure(mem.BlockIndex(b))
	if ms := blk.ms; ms != nil && ms.txn == m.Txn {
		cc.stats.NacksRecv++
		ms.retries++
		if ms.retries > cc.cfg.Retry.Max {
			cc.env.fail("cache %d: giving up on %v miss for %#x (txn %d): nacked %d times",
				cc.node, ms.kind, uint64(b), ms.txn, cc.cfg.Retry.Max)
			return
		}
		cc.armMissTimer(b, ms)
		return
	}
	if e := cc.blocks.Cold(id).wb; e != nil && e.pendingFinal && e.txn == m.Txn {
		cc.stats.NacksRecv++
		e.retries++
		if e.retries > cc.cfg.Retry.Max {
			cc.env.fail("cache %d: giving up on FinalAck probe for %#x (txn %d): nacked %d times",
				cc.node, uint64(b), e.txn, cc.cfg.Retry.Max)
			return
		}
		cc.armFinalTimer(b, e)
		return
	}
	cc.stats.StraysIgnored++
}

// recoverGrantReplay handles a DataX that matches no outstanding miss. The
// only live-state match is a write-buffer entry still waiting for a lost
// FinalAck: a replayed grant with Pending cleared stands in for it. If the
// cache no longer holds the block (it was dropped mid-transaction and the
// directory re-granted ownership), the replay is installed so directory and
// cache agree at quiesce; if the copy is live it is newer than home memory
// and must not be clobbered.
//
// With no matching write-buffer entry either, the grant came from a stale
// request — a fault-plan duplicate of a request this cache has long since
// been served for, processed by the directory as fresh after the block's
// ownership moved on. The directory now records this node as exclusive
// owner, so silently ignoring the grant would leave the two disagreeing at
// quiesce: instead the ownership is handed straight back with a writeback
// (giveBackGrant). A duplicate of a grant whose copy is still live here is
// the one genuinely ignorable case — directory and cache already agree.
func (cc *CacheCtrl) recoverGrantReplay(b mem.Addr, m netsim.Message) {
	w := cc.wbOf(b)
	if e := w.wb; e != nil && e.pendingFinal && e.txn == m.Txn && !m.Pending {
		if _, held := cc.c.Peek(b); !held {
			cc.install(b, cache.Exclusive, m)
		}
		cc.retire(e)
		return
	}
	if w.wb == nil {
		cc.giveBackGrant(b, m)
		return
	}
	cc.stats.StraysIgnored++
}

// giveBackGrant refuses an unsolicited exclusive grant. The directory may
// have just recorded this node as owner, so the refusal must reach it
// reliably — a writeback, which fault plans never drop, returns the
// ownership and restores agreement:
//
//   - exclusive copy held: the grant is a duplicate of one already
//     consumed; directory and cache agree, drop the message.
//   - shared copy held: the directory promoted this node to owner over its
//     downgraded copy; invalidate the copy and hand the ownership back.
//   - nothing held: hand the grant straight back.
//
// The give-back carries the Probe mark: its data is whatever stale payload
// the grant carried (or a clean shared copy), never a dirty line, and the
// grant itself may be a duplicate of one consumed and long since written
// back — so the directory must treat it purely as an ownership return and
// never let it overwrite memory (see onWriteback). This node wrote nothing
// under the refused grant; home memory already holds the right contents.
func (cc *CacheCtrl) giveBackGrant(b mem.Addr, m netsim.Message) {
	if f, held := cc.c.Peek(b); held {
		if f.State == cache.Exclusive {
			cc.stats.StraysIgnored++
			return
		}
		ev, _ := cc.c.Invalidate(b)
		if cc.hist != nil {
			cc.hist.OnInvalidate(b)
		}
		if sk := cc.env.Sink; sk != nil {
			sk.OnCacheState(cc.env.Q.Now(), cc.node, b, m.Txn, ev.State, cache.Invalid, 0)
		}
	}
	cc.stats.GrantsReturned++
	cc.send(netsim.Message{Kind: netsim.WB, Dst: cc.home(b), Addr: b, Txn: m.Txn, Probe: true})
}

// OutstandingMiss describes one stuck cache-side operation, for the
// liveness watchdog's diagnostic dump and check.Audit's quiesce report.
type OutstandingMiss struct {
	Addr mem.Addr
	Txn  uint64
	// Op is the operation kind: "read", "write", "swap", or "final-ack"
	// for a write-buffer entry awaiting its FinalAck.
	Op      string
	Retries int
	Start   event.Time
	// WaitingFinal marks operations whose grant arrived but whose FinalAck
	// has not.
	WaitingFinal bool
}

// DumpOutstanding lists the controller's outstanding misses and unretired
// write-buffer entries, sorted by block address for deterministic output.
func (cc *CacheCtrl) DumpOutstanding() []OutstandingMiss {
	out := make([]OutstandingMiss, 0, cc.msCount+cc.wbCount)
	cc.blocks.ForEach(func(idx uint64, blk *ccHot, w *ccCold) {
		b := mem.Addr(idx) << mem.BlockShift
		if ms := blk.ms; ms != nil {
			out = append(out, OutstandingMiss{
				Addr: b, Txn: ms.txn, Op: ms.kind.String(),
				Retries: ms.retries, Start: ms.start, WaitingFinal: ms.waitingFinal,
			})
		}
		if e := w.wb; e != nil && e.pendingFinal && blk.ms == nil {
			out = append(out, OutstandingMiss{
				Addr: b, Txn: e.txn, Op: "final-ack",
				Retries: e.retries, WaitingFinal: true,
			})
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Txn < out[j].Txn
	})
	return out
}

// --- directory-side timers and recovery --------------------------------------

// dirRetryCall is the directory-side analog of retryCall: a pooled armed
// timer validated against the live transaction on fire.
type dirRetryCall struct {
	dc  *DirCtrl
	b   mem.Addr
	txn uint64
	gen uint32
}

// armTxnTimer schedules the next timeout for block b's live transaction.
//
//dsi:hotpath
func (dc *DirCtrl) armTxnTimer(b mem.Addr, t *txn) {
	t.tgen++
	var rc *dirRetryCall
	if n := len(dc.rtFree); n > 0 {
		rc = dc.rtFree[n-1]
		dc.rtFree = dc.rtFree[:n-1]
	} else {
		rc = &dirRetryCall{dc: dc}
	}
	rc.b, rc.txn, rc.gen = b, t.req.Txn, t.tgen
	dc.env.Q.AtCall(dc.env.Q.Now()+dc.cfg.Retry.backoff(t.retries), doDirRetry, rc)
}

// doDirRetry is the static action for directory-side timers.
//
//dsi:hotpath
func doDirRetry(arg any) {
	rc := arg.(*dirRetryCall)
	dc, b, txnID, gen := rc.dc, rc.b, rc.txn, rc.gen
	rc.b, rc.txn, rc.gen = 0, 0, 0
	dc.rtFree = append(dc.rtFree, rc)
	if db := dc.blocks.Get(mem.BlockIndex(b)); db != nil && db.t != nil &&
		db.t.req.Txn == txnID && db.t.tgen == gen {
		dc.onTxnTimeout(b, db.t)
	}
}

// onTxnTimeout re-sends the transaction's coherence action (Inv or Recall)
// to every node whose acknowledgment is still missing. Nodes that already
// invalidated answer with NackHome, which the directory consumes like an
// ack; the per-pair FIFO guarantees a delayed real acknowledgment always
// arrives before the NackHome triggered by the re-sent action.
func (dc *DirCtrl) onTxnTimeout(b mem.Addr, t *txn) {
	r := dc.cfg.Retry
	t.retries++
	dc.stats.Timeouts++
	if t.retries > r.Max {
		dc.env.fail("dir %d: giving up on txn %d for %#x after %d retries (awaiting %v)",
			dc.node, t.req.Txn, uint64(b), r.Max, t.pending)
		return // no re-arm: the stuck transaction surfaces in the watchdog dump
	}
	if sk := dc.env.Sink; sk != nil {
		sk.OnRetryTimeout(dc.env.Q.Now(), dc.node, b, t.req.Txn, t.retries, true)
	}
	t.pending.ForEach(func(n int) {
		dc.stats.RetriesSent++
		dc.send(netsim.Message{Kind: t.action, Dst: n, Addr: b, Txn: t.req.Txn})
	})
	dc.armTxnTimer(b, t)
}

// isDuplicate reports whether m is a retransmission of the block's live
// transaction or of a request already queued behind it.
func (dc *DirCtrl) isDuplicate(t *txn, q *dirCold, m netsim.Message) bool {
	if t.req.Src == m.Src && t.req.Txn == m.Txn {
		return true
	}
	for id := q.qHead; id != 0; id = dc.qNodes[id-1].next {
		if q := &dc.qNodes[id-1].m; q.Src == m.Src && q.Txn == m.Txn {
			return true
		}
	}
	return false
}

// replayed handles a request whose effect is already recorded in the
// directory — the original reply was lost, or a duplicate arrived after the
// transaction completed. The grant is re-sent from directory state without
// touching the sharer set or the DSI policy (a conservative unmarked replay
// only delays self-invalidation, never breaks coherence). Reports whether
// the request was consumed.
func (dc *DirCtrl) replayed(b mem.Addr, m netsim.Message) bool {
	e := dc.dir.Entry(b)
	switch m.Kind {
	case netsim.GetS:
		if e.State.IsShared() && e.Sharers.Has(m.Src) {
			dc.stats.Replays++
			dc.send(netsim.Message{
				Kind: netsim.DataS, Dst: m.Src, Addr: b, Txn: m.Txn,
				Data: dc.memory.Read(b),
			})
			return true
		}
		if e.State == directory.Exclusive && e.Owner == m.Src {
			// A migratory read answered with an exclusive grant that was
			// lost: replay it.
			dc.stats.Replays++
			dc.send(netsim.Message{
				Kind: netsim.DataX, Dst: m.Src, Addr: b, Txn: m.Txn,
				Data: dc.memory.Read(b),
			})
			return true
		}
	case netsim.GetX, netsim.Upgrade:
		if e.State == directory.Exclusive && e.Owner == m.Src {
			// The requester already owns the block: the grant or its
			// FinalAck was lost. Replay a DataX with Pending cleared; the
			// data is simulator bookkeeping (the receiver installs it only
			// when its copy is gone).
			dc.stats.Replays++
			dc.send(netsim.Message{
				Kind: netsim.DataX, Dst: m.Src, Addr: b, Txn: m.Txn,
				Data: dc.memory.Read(b),
			})
			return true
		}
	default:
		// Handle dispatches only requests into process.
		dc.env.fail("replay check on non-request %v", m.Kind)
	}
	return false
}

// BusyTxn describes one live directory transaction, for the liveness
// watchdog's diagnostic dump and check.Audit's quiesce report.
type BusyTxn struct {
	Addr mem.Addr
	Txn  uint64
	// Req is the request kind that opened the transaction; From its source.
	Req  netsim.Kind
	From int
	// Action is the coherence action (Inv or Recall) re-sent on timeout;
	// Pending the nodes whose acknowledgments are still missing.
	Action  netsim.Kind
	Pending directory.NodeSet
	Retries int
	// Queued is the number of requests waiting behind the busy block.
	Queued int
}

// DumpBusy lists the controller's live transactions, sorted by block
// address for deterministic output.
func (dc *DirCtrl) DumpBusy() []BusyTxn {
	out := make([]BusyTxn, 0, dc.busyCount)
	dc.blocks.ForEach(func(idx uint64, db *dirHot, q *dirCold) {
		t := db.t
		if t == nil {
			return
		}
		out = append(out, BusyTxn{
			Addr: mem.Addr(idx) << mem.BlockShift, Txn: t.req.Txn, Req: t.req.Kind, From: t.req.Src,
			Action: t.action, Pending: t.pending, Retries: t.retries,
			Queued: int(q.qLen),
		})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
