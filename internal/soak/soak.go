// Package soak implements the fault-seed soak farm: a long-running campaign
// engine that sweeps a deterministic cell space — workload × protocol ×
// fault-plan template × seed — through a work-stealing runner, journals
// every per-cell verdict to an append-only JSONL checkpoint so a killed
// campaign resumes exactly where it stopped, and pushes every failure
// through a triage pipeline (bounded re-run classification, greedy
// minimization of fault-plan rules and litmus ops, persistence into a
// replayable failure corpus). "Mending Fences with Self-Invalidation and
// Self-Downgrade" (PAPERS.md) shows that self-invalidation protocols
// harbor exactly the interleaving-dependent bugs only this style of
// long-horizon randomized exploration finds; the fuzzer of docs/FAULTS.md
// §2 caught one in a single bounded sweep, and this package is that loop —
// inject, detect, minimize, pin — promoted to a first-class subsystem.
//
// Determinism contract: the cell space and every per-cell seed are pure
// functions of the campaign parameters (SeedOf), so shards, resumes, and
// re-runs agree on what cell N is and what it does. The engine itself is
// driver-side orchestration — goroutines, wall-clock heartbeats, signal
// handling — and is deliberately NOT in determinism.DefaultSimPackages;
// every simulation it launches remains internally single-threaded and
// bit-deterministic, which is what makes journal verdicts byte-stable
// across kills and resumes.
package soak

import (
	"fmt"
	"strconv"
	"strings"

	"dsisim/internal/faultinj"
	"dsisim/internal/workload"
)

// SeedOf is THE deterministic cell→seed function: one splitmix64-style
// finalizer over (campaign seed, cell index). Everything that derives
// per-cell randomness — the soak engine, shard slicing in cmd/dsibench,
// replayed corpus specs — goes through this one function, so two shards of
// the same campaign, or a resume of a killed one, agree bit-for-bit on what
// cell i runs (docs/FAULTS.md §6).
//
//dsi:hotpath
func SeedOf(campaign uint64, cell int) uint64 {
	z := campaign + 0x9e3779b97f4a7c15*(uint64(cell)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Shard selects a 1-based round-robin slice of a cell (or artifact) space:
// shard i of n owns every index congruent to i-1 mod n. The zero value
// owns everything. dsibench -shard uses the same Shard for paper-artifact
// slices and soak cells, so one function defines "who owns index k" across
// every grid fan-out.
type Shard struct {
	Index int // 1-based shard number; 0 means unsharded
	Count int // total shards; <= 1 means unsharded
}

// Owns reports whether this shard runs index k.
//
//dsi:hotpath
func (s Shard) Owns(k int) bool {
	if s.Count <= 1 {
		return true
	}
	return k%s.Count == s.Index-1
}

// String renders the shard as "i/n" ("" when unsharded).
func (s Shard) String() string {
	if s.Count <= 1 {
		return ""
	}
	return strconv.Itoa(s.Index) + "/" + strconv.Itoa(s.Count)
}

// ParseShard parses an "i/n" spec (1 <= i <= n). The empty spec is the
// unsharded Shard.
func ParseShard(spec string) (Shard, error) {
	if spec == "" {
		return Shard{}, nil
	}
	var i, n int
	if c, err := fmt.Sscanf(spec, "%d/%d", &i, &n); err != nil || c != 2 {
		return Shard{}, fmt.Errorf("shard %q: want i/n, e.g. 2/3", spec)
	}
	if n < 1 || i < 1 || i > n {
		return Shard{}, fmt.Errorf("shard %q: want 1 <= i <= n", spec)
	}
	return Shard{Index: i, Count: n}, nil
}

// Template is one named fault-plan shape of the campaign. The config's
// Seed field is ignored: the engine fills a per-cell fault seed derived
// from the cell seed, so one template covers thousands of distinct
// injected-chaos streams. A nil Faults is the fault-free template.
type Template struct {
	Name   string
	Faults *faultinj.Config
}

// DefaultTemplates returns the stock campaign templates: fault-free,
// the fuzzer's lossy and jitter plans, and a heavier mixed storm. Rates
// stay inside the envelope the fault-matrix gate proves the bounded retry
// protocol converges under.
func DefaultTemplates() []Template {
	return []Template{
		{Name: "none"},
		{Name: "lossy", Faults: &faultinj.Config{Drop: 0.02, Dup: 0.01, Delay: 0.05}},
		{Name: "jitter", Faults: &faultinj.Config{Delay: 0.2, Jitter: 64}},
		{Name: "storm", Faults: &faultinj.Config{Drop: 0.02, Dup: 0.02, Delay: 0.1, Jitter: 48}},
	}
}

// LitmusWorkload is the pseudo-workload name for generated litmus cells:
// instead of a registry program, the cell runs workload.GenLitmus(seed)
// through the fuzzer's kernel-assertion + audit + outcome cross-check
// oracles. Litmus cells are where minimization bites hardest (ops shrink as
// well as fault rules), so campaigns should usually include them.
const LitmusWorkload = "litmus"

// Space is the deterministic campaign cell space: the cross product
// workload × protocol × template, swept Reps times with fresh per-cell
// seeds. Cell i decodes by mixed radix — template fastest, then protocol,
// then workload, then repetition — so prefixes of the index range cover
// the whole matrix breadth-first.
type Space struct {
	Workloads []string
	Protocols []workload.FuzzProtocol
	Templates []Template
	Reps      int // seed sweeps over the full matrix; <= 0 means 1
}

// DefaultSpace is the stock campaign: the paper five plus the four
// traffic-shaped generators plus generated litmus programs, under SC, V,
// and W+DSI, across the default templates. With Reps left at its default
// (17) that is a 2040-cell campaign — the ISSUE 9 acceptance shape.
func DefaultSpace() Space {
	wls := append(workload.PaperNames(), workload.TrafficNames()...)
	wls = append(wls, LitmusWorkload)
	return Space{
		Workloads: wls,
		Protocols: ProtocolsByName("SC", "V", "W+DSI"),
		Templates: DefaultTemplates(),
		Reps:      17,
	}
}

// ProtocolsByName resolves fuzz-protocol labels (SC, W, S, V, W+DSI) into
// their machine configurations. It panics on an unknown name — the sets
// used here are compile-time constants.
func ProtocolsByName(names ...string) []workload.FuzzProtocol {
	all := workload.FuzzProtocols()
	out := make([]workload.FuzzProtocol, 0, len(names))
	for _, name := range names {
		found := false
		for _, pr := range all {
			if pr.Name == name {
				out = append(out, pr)
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("soak: unknown protocol %q", name))
		}
	}
	return out
}

// reps returns the effective repetition count.
func (s Space) reps() int {
	if s.Reps <= 0 {
		return 1
	}
	return s.Reps
}

// Cells returns the size of the cell space.
func (s Space) Cells() int {
	return len(s.Workloads) * len(s.Protocols) * len(s.Templates) * s.reps()
}

// Validate checks the space is runnable: non-empty axes and workload names
// that resolve (registry names or the litmus pseudo-workload).
func (s Space) Validate() error {
	if len(s.Workloads) == 0 || len(s.Protocols) == 0 || len(s.Templates) == 0 {
		return fmt.Errorf("soak: empty space axis (workloads %d, protocols %d, templates %d)",
			len(s.Workloads), len(s.Protocols), len(s.Templates))
	}
	for _, w := range s.Workloads {
		if w == LitmusWorkload {
			continue
		}
		if _, err := workload.New(w, workload.ScaleTest); err != nil {
			return fmt.Errorf("soak: %w", err)
		}
	}
	return nil
}

// Cell is one fully resolved campaign cell.
type Cell struct {
	Index    int
	Workload string
	Protocol workload.FuzzProtocol
	Template Template
	Seed     uint64
}

// Cell decodes cell i of the space under the given campaign seed.
func (s Space) Cell(campaign uint64, i int) Cell {
	r := i
	t := r % len(s.Templates)
	r /= len(s.Templates)
	p := r % len(s.Protocols)
	r /= len(s.Protocols)
	w := r % len(s.Workloads)
	return Cell{
		Index:    i,
		Workload: s.Workloads[w],
		Protocol: s.Protocols[p],
		Template: s.Templates[t],
		Seed:     SeedOf(campaign, i),
	}
}

// FaultSeedOf derives the fault-plan seed of a cell from its cell seed,
// with the same offset the litmus fuzzer uses, so a cell's injected chaos
// is replayable from the spec alone.
//
//dsi:hotpath
func FaultSeedOf(cellSeed uint64) uint64 { return cellSeed ^ 0xfa17 }

// sanitizeName makes a workload/protocol/template name filesystem-safe
// ("W+DSI" -> "W-DSI"), mirroring the fuzzer's corpus naming.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '-'
	}, s)
}
