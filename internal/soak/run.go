package soak

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dsisim/internal/faultinj"
	"dsisim/internal/machine"
	"dsisim/internal/simcache"
	"dsisim/internal/stats"
	"dsisim/internal/steal"
	"dsisim/internal/workload"
)

// Options configures one campaign sitting. Zero values mean: default space,
// seed 0, unsharded, run every owned cell, no wall-clock bound, GOMAXPROCS
// workers, no journal, no corpus, 2 triage re-runs, 8-processor machines at
// test scale, no heartbeat.
type Options struct {
	Space Space
	Seed  uint64 // campaign seed: the SeedOf base for every cell
	Shard Shard

	MaxCells int           // cells to run this sitting (0 = all owned)
	Duration time.Duration // stop claiming new cells after this long (0 = none)
	Workers  int

	Journal string // checkpoint path ("" = no journal)
	Resume  bool   // recover completed cells from an existing journal
	Corpus  string // directory for minimized failure specs ("" = no persistence)
	Reruns  int    // triage re-runs per failure (0 = 2)

	Procs      int    // registry-workload machine shape (0 = 8)
	CacheBytes int    // 0 = machine default
	Scale      string // "" = test

	Stop      <-chan struct{} // graceful drain: finish in-flight cells, checkpoint, exit
	Heartbeat time.Duration   // progress-line period (0 = silent)
	Log       io.Writer       // heartbeat destination (nil = os.Stderr)

	// Cache, if set, memoizes registry-workload cell results by their
	// canonical simcache key. The handle is caller-owned, so it survives
	// kill/resume sittings of the same process and is shared across
	// campaigns. Litmus cells always execute (generated programs have no
	// canonical request key), and triage re-runs bypass the cache — flake
	// classification needs real re-execution. Verdicts record hit-vs-computed
	// in Verdict.Cached.
	Cache *simcache.Cache

	// canary breaks litmus-cell writes (see workload.LitmusRun.Canary): the
	// test hook proving the farm detects, classifies, minimizes, and persists
	// a real protocol failure end to end.
	canary bool
}

// Report summarizes one campaign sitting.
type Report struct {
	Owned     int // cells this shard owns
	Recovered int // verdicts recovered from the journal on resume
	Ran       int // cells executed this sitting
	Drained   int // owned cells left unrun by a stop/duration/MaxCells bound
	Failures  int // failing verdicts across the union
	Steals    int64
	Reruns    int64 // triage re-executions

	// Verdicts is the union of recovered and fresh verdicts, sorted by cell
	// index. For a completed campaign this slice is bit-identical however
	// many kills and resumes it took — the resume test's acceptance bar.
	Verdicts []Verdict
}

// Run executes one campaign sitting and returns its report. A non-nil error
// means the campaign infrastructure failed (bad space, unusable journal);
// cell failures are data, not errors — they land in the journal, the
// corpus, and Report.Failures.
func Run(o Options) (*Report, error) {
	if len(o.Space.Workloads) == 0 {
		o.Space = DefaultSpace()
	}
	if err := o.Space.Validate(); err != nil {
		return nil, err
	}
	if o.Reruns <= 0 {
		o.Reruns = 2
	}
	if o.Log == nil {
		o.Log = os.Stderr
	}

	var j *Journal
	if o.Journal != "" {
		var err error
		if j, err = OpenJournal(o.Journal, o.params(), o.Resume); err != nil {
			return nil, err
		}
		defer j.Close()
	}
	if o.Corpus != "" {
		if err := os.MkdirAll(o.Corpus, 0o755); err != nil {
			return nil, err
		}
	}

	// The work list: owned cells with no journaled verdict, bounded by
	// MaxCells. Kept in index order so steal.Runner's contiguous chunks map
	// to contiguous cell ranges.
	rep := &Report{}
	var todo []int
	for i := 0; i < o.Space.Cells(); i++ {
		if !o.Shard.Owns(i) {
			continue
		}
		rep.Owned++
		if j != nil {
			if _, done := j.Done[i]; done {
				rep.Recovered++
				continue
			}
		}
		if o.MaxCells > 0 && len(todo) >= o.MaxCells {
			continue
		}
		todo = append(todo, i)
	}

	var deadline time.Time
	if o.Duration > 0 {
		deadline = time.Now().Add(o.Duration)
	}
	stopped := func() bool {
		select {
		case <-o.Stop:
			return true
		default:
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	runner := steal.New(len(todo), o.Workers)
	pools := make([]machine.Pool, runner.Workers())
	fresh := make([]*Verdict, len(todo))
	var done, failed, reruns atomic.Int64
	var appendErr error
	var appendMu sync.Mutex

	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	if o.Heartbeat > 0 {
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			tick := time.NewTicker(o.Heartbeat)
			defer tick.Stop()
			start := time.Now()
			for {
				select {
				case <-hbStop:
					return
				case <-tick.C:
					line := fmt.Sprintf("soak: %d/%d cells this sitting (%d recovered), %d fail, %d steals, %d triage reruns, %s elapsed",
						done.Load(), len(todo), rep.Recovered, failed.Load(),
						runner.Steals(), reruns.Load(), time.Since(start).Round(time.Second))
					if o.Cache != nil {
						cs := o.Cache.Stats()
						line += fmt.Sprintf(", cache %dh/%dm/%de %dKB",
							cs.Hits, cs.Misses, cs.Evictions, cs.Bytes/1024)
					}
					fmt.Fprintln(o.Log, line)
				}
			}
		}()
	}

	runner.Run(func(worker, item int) {
		if stopped() {
			return
		}
		cell := o.Space.Cell(o.Seed, todo[item])
		v := runCell(&pools[worker], cell, o)
		if v.Status == StatusFail {
			triage(&pools[worker], cell, &v, o, &reruns)
			failed.Add(1)
		}
		fresh[item] = &v
		done.Add(1)
		if j != nil {
			if err := j.Append(v); err != nil {
				appendMu.Lock()
				if appendErr == nil {
					appendErr = err
				}
				appendMu.Unlock()
			}
		}
	})
	close(hbStop)
	hbWG.Wait()
	if appendErr != nil {
		return nil, fmt.Errorf("soak: journal append: %w", appendErr)
	}

	rep.Steals = runner.Steals()
	rep.Reruns = reruns.Load()
	union := make(map[int]Verdict)
	if j != nil {
		//dsi:anyorder verdicts are re-sorted by cell index below
		for c, v := range j.Done {
			union[c] = v
		}
	}
	for _, v := range fresh {
		if v != nil {
			union[v.Cell] = *v
			rep.Ran++
		}
	}
	rep.Drained = rep.Owned - rep.Recovered - rep.Ran
	rep.Verdicts = make([]Verdict, 0, len(union))
	//dsi:anyorder verdicts are sorted by cell index below
	for _, v := range union {
		rep.Verdicts = append(rep.Verdicts, v)
	}
	sort.Slice(rep.Verdicts, func(a, b int) bool { return rep.Verdicts[a].Cell < rep.Verdicts[b].Cell })
	for _, v := range rep.Verdicts {
		if v.Status == StatusFail {
			rep.Failures++
		}
	}
	if j != nil {
		if err := j.Close(); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// faultsFor instantiates a cell's fault plan: the template config with the
// per-cell fault seed filled in (nil for the fault-free template).
func faultsFor(cell Cell) *faultinj.Config {
	if cell.Template.Faults == nil {
		return nil
	}
	fc := *cell.Template.Faults
	fc.Seed = FaultSeedOf(cell.Seed)
	return &fc
}

// machineConfig shapes a registry-workload machine for a cell.
func machineConfig(cell Cell, o Options, fc *faultinj.Config) machine.Config {
	procs := o.Procs
	if procs == 0 {
		procs = 8
	}
	return machine.Config{
		Processors:  procs,
		CacheBytes:  o.CacheBytes,
		CacheAssoc:  4,
		Consistency: cell.Protocol.Consistency,
		Policy:      cell.Protocol.Policy,
		Seed:        cell.Seed | 1,
		Faults:      fc,
	}
}

// runCell executes one cell through its oracles and returns the verdict
// (before triage).
func runCell(pool *machine.Pool, cell Cell, o Options) Verdict {
	v := Verdict{
		Cell:     cell.Index,
		Workload: cell.Workload,
		Protocol: cell.Protocol.Name,
		Template: cell.Template.Name,
		Seed:     cell.Seed,
		Status:   StatusOK,
	}
	var err error
	if cell.Workload == LitmusWorkload {
		spec := workload.GenLitmus(cell.Seed)
		plan := workload.FuzzFaultPlan{Name: cell.Template.Name, Config: cell.Template.Faults}
		v.Events, v.Cycles, err = workload.RunLitmusOpts(spec, cell.Protocol, plan, workload.LitmusRun{Canary: o.canary})
	} else {
		err = func() error {
			scale, serr := scaleOf(o.Scale)
			if serr != nil {
				return serr
			}
			cfg := machineConfig(cell, o, faultsFor(cell))
			// The workload build lives inside the compute closure so a cache
			// hit skips program construction along with the simulation; a
			// workload error surfaces as a failed Result, which the cache
			// never stores.
			var wlErr error
			compute := func() machine.Result {
				prog, perr := workload.New(cell.Workload, scale)
				if perr != nil {
					wlErr = perr
					return machine.Result{Errors: []string{perr.Error()}}
				}
				m := pool.Get(cfg)
				res := m.Run(prog)
				pool.Put(m)
				return res
			}
			key := simcache.RequestOf(cell.Workload, scale.String(), cell.Protocol.Name, cfg).Key()
			res, hit := o.Cache.Do(key, compute)
			if wlErr != nil {
				return wlErr
			}
			v.Cached = hit
			v.Events, v.Cycles = res.Kernel.Events, int64(res.TotalTime)
			if res.Failed() {
				return fmt.Errorf("%s/%s/%s: %s", cell.Workload, cell.Protocol.Name, cell.Template.Name, res.Errors[0])
			}
			return nil
		}()
	}
	if err != nil {
		v.Status = StatusFail
		v.Err = err.Error()
	}
	return v
}

// triage classifies and (when deterministic) minimizes a failing cell,
// persisting the minimized repro into the corpus and annotating the verdict.
func triage(pool *machine.Pool, cell Cell, v *Verdict, o Options, rerunCount *atomic.Int64) {
	// Triage bypasses the result cache outright: flake classification is
	// only meaningful against real re-executions. (Failed results are never
	// cached anyway; this also keeps a flaky-then-passing re-run from being
	// served memoized.)
	o.Cache = nil
	// Classification: a bit-deterministic simulation reproduces a real
	// protocol failure identically every time. Divergence across re-runs
	// means the process, not the protocol, is sick.
	v.Class = ClassDeterministic
	v.Reruns = o.Reruns
	for i := 0; i < o.Reruns; i++ {
		rerunCount.Add(1)
		rv := runCell(pool, cell, o)
		if rv.Status != v.Status || rv.Err != v.Err || rv.Events != v.Events || rv.Cycles != v.Cycles {
			v.Class = ClassFlaky
			return
		}
	}
	if o.Corpus == "" {
		return
	}

	spec := &Spec{
		Soak:     1,
		Workload: cell.Workload,
		Protocol: cell.Protocol.Name,
		Template: cell.Template.Name,
		Seed:     cell.Seed,
		Err:      v.Err,
	}
	if cell.Workload == LitmusWorkload {
		// Joint minimization: fault rules first, then litmus ops, to a
		// fixpoint of both (satellite 1 — rules-first reaches repros plain
		// op-deletion cannot).
		ls := workload.GenLitmus(cell.Seed)
		fails := func(s *workload.LitmusSpec, fc *faultinj.Config) bool {
			rerunCount.Add(1)
			plan := workload.FuzzFaultPlan{Name: cell.Template.Name, Config: fc}
			_, _, err := workload.RunLitmusOpts(s, cell.Protocol, plan, workload.LitmusRun{Canary: o.canary})
			return err != nil
		}
		minS, minF := workload.MinimizeLitmusFaults(ls, cell.Template.Faults, fails)
		if minF != nil {
			// Copy before stamping the per-cell fault seed: when nothing
			// shrank, minF may alias the template config shared by every
			// worker.
			fc := *minF
			fc.Seed = FaultSeedOf(cell.Seed)
			spec.Faults = FaultSpecOf(&fc)
			v.MinRules = len(fc.Rules)
		}
		spec.Litmus = minS
		v.MinOps = len(minS.Ops)
	} else {
		scale, err := scaleOf(o.Scale)
		if err != nil {
			return
		}
		prog, err := workload.New(cell.Workload, scale)
		if err != nil {
			return
		}
		fails := func(fc *faultinj.Config) bool {
			rerunCount.Add(1)
			m := pool.Get(machineConfig(cell, o, fc))
			res := m.Run(prog)
			pool.Put(m)
			return res.Failed()
		}
		minF := workload.MinimizeFaultConfig(faultsFor(cell), fails)
		spec.Faults = FaultSpecOf(minF)
		spec.Procs = o.Procs
		if spec.Procs == 0 {
			spec.Procs = 8
		}
		spec.CacheBytes = o.CacheBytes
		spec.Scale = o.Scale
		if minF != nil {
			v.MinRules = len(minF.Rules)
		}
	}
	name := fmt.Sprintf("soak-%016x-%s-%s-%s.json", cell.Seed,
		sanitizeName(cell.Workload), sanitizeName(cell.Protocol.Name), sanitizeName(cell.Template.Name))
	path := filepath.Join(o.Corpus, name)
	if err := SaveSpec(spec, path); err == nil {
		v.Spec = path
	}
}

// params derives the campaign fingerprint parameters from the options.
func (o Options) params() Params {
	p := Params{
		Seed:   o.Seed,
		Reps:   o.Space.reps(),
		Procs:  o.Procs,
		Cache:  o.CacheBytes,
		Scale:  o.Scale,
		Shard:  o.Shard.String(),
		Canary: o.canary,
	}
	p.Workloads = append([]string(nil), o.Space.Workloads...)
	for _, pr := range o.Space.Protocols {
		p.Protocols = append(p.Protocols, pr.Name)
	}
	for _, t := range o.Space.Templates {
		p.Templates = append(p.Templates, FaultSpecOf(t.Faults))
		p.Names = append(p.Names, t.Name)
	}
	return p
}

// Aggregate folds a verdict set into the repo's standard results table:
// one row per workload × protocol × template group, in first-seen (cell
// index) order, plus a totals row.
func Aggregate(verdicts []Verdict) stats.Table {
	t := stats.Table{
		Title:  "Soak campaign",
		Header: []string{"workload", "protocol", "template", "cells", "ok", "fail", "events", "cycles", "cached"},
	}
	type agg struct {
		cells, ok, fail, cached int
		events                  uint64
		cycles                  int64
	}
	groups := make(map[[3]string]*agg)
	var order [][3]string
	var tot agg
	for _, v := range verdicts {
		k := [3]string{v.Workload, v.Protocol, v.Template}
		g := groups[k]
		if g == nil {
			g = &agg{}
			groups[k] = g
			order = append(order, k)
		}
		g.cells++
		tot.cells++
		if v.Status == StatusOK {
			g.ok++
			tot.ok++
		} else {
			g.fail++
			tot.fail++
		}
		if v.Cached {
			g.cached++
			tot.cached++
		}
		g.events += v.Events
		tot.events += v.Events
		g.cycles += v.Cycles
		tot.cycles += v.Cycles
	}
	row := func(name [3]string, g *agg) {
		t.AddRow(name[0], name[1], name[2],
			fmt.Sprint(g.cells), fmt.Sprint(g.ok), fmt.Sprint(g.fail),
			fmt.Sprint(g.events), fmt.Sprint(g.cycles), fmt.Sprint(g.cached))
	}
	for _, k := range order {
		row(k, groups[k])
	}
	if len(order) > 1 {
		row([3]string{"TOTAL", "", ""}, &tot)
	}
	return t
}
