package soak

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// marshalVerdicts canonicalizes a verdict set for bit-identity comparison.
func marshalVerdicts(t *testing.T, vs []Verdict) []byte {
	t.Helper()
	data, err := json.Marshal(vs)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// A clean tree sweeps the test space without failures, and two independent
// runs of the same campaign produce bit-identical verdict sets.
func TestRunCleanAndDeterministic(t *testing.T) {
	o := Options{Space: testSpace(), Seed: 11, Workers: 4}
	a, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failures != 0 {
		t.Fatalf("clean tree produced %d failures: %+v", a.Failures, a.Verdicts)
	}
	if a.Ran != o.Space.Cells() {
		t.Fatalf("ran %d of %d cells", a.Ran, o.Space.Cells())
	}
	b, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Verdicts, b.Verdicts) {
		t.Fatal("two runs of the same campaign diverged")
	}
	if string(marshalVerdicts(t, a.Verdicts)) != string(marshalVerdicts(t, b.Verdicts)) {
		t.Fatal("verdict JSON not bit-identical across runs")
	}
}

// Shards partition the campaign: the union of per-shard verdicts equals the
// unsharded run's verdicts exactly.
func TestRunShardsUnionMatchesUnsharded(t *testing.T) {
	o := Options{Space: testSpace(), Seed: 23, Workers: 2}
	whole, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	var union []Verdict
	for i := 1; i <= 3; i++ {
		so := o
		so.Shard = Shard{Index: i, Count: 3}
		rep, err := Run(so)
		if err != nil {
			t.Fatal(err)
		}
		union = append(union, rep.Verdicts...)
	}
	sortVerdicts(union)
	if !reflect.DeepEqual(whole.Verdicts, union) {
		t.Fatal("shard union diverged from unsharded campaign")
	}
}

// The checkpoint/resume acceptance test: run a campaign partway, truncate
// the journal at an arbitrary byte (tearing its final line), resume, and
// require the union of verdicts to be bit-identical to an uninterrupted
// run of the same campaign.
func TestJournalResumeAfterTruncationBitIdentical(t *testing.T) {
	dir := t.TempDir()
	o := Options{Space: testSpace(), Seed: 42, Workers: 2}

	// The uninterrupted reference run.
	ref, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}

	// The interrupted run: stop after 9 cells, then tear the journal.
	jpath := filepath.Join(dir, "soak.jsonl")
	io := o
	io.Journal = jpath
	io.MaxCells = 9
	part, err := Run(io)
	if err != nil {
		t.Fatal(err)
	}
	if part.Ran != 9 || part.Drained != o.Space.Cells()-9 {
		t.Fatalf("partial sitting ran %d, drained %d", part.Ran, part.Drained)
	}
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(data) - 17 // mid-verdict: the kill landed mid-append
	if err := os.WriteFile(jpath, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume to completion.
	ro := io
	ro.MaxCells = 0
	ro.Resume = true
	res, err := Run(ro)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered != 8 {
		t.Fatalf("recovered %d verdicts from the torn journal, want 8 (9 minus the torn line)", res.Recovered)
	}
	if res.Ran != o.Space.Cells()-8 {
		t.Fatalf("resume ran %d cells, want %d", res.Ran, o.Space.Cells()-8)
	}
	if string(marshalVerdicts(t, res.Verdicts)) != string(marshalVerdicts(t, ref.Verdicts)) {
		t.Fatal("resumed union not bit-identical to the uninterrupted run")
	}

	// The journal on disk agrees too.
	onDisk, err := ReadVerdicts(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(onDisk, ref.Verdicts) {
		t.Fatal("journal on disk diverged from the uninterrupted run")
	}
}

// Resuming with changed campaign parameters is an error, not a silent
// restart: the header hash pins the campaign identity.
func TestJournalResumeRejectsChangedParams(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "soak.jsonl")
	o := Options{Space: testSpace(), Seed: 5, Workers: 2, Journal: jpath, MaxCells: 2}
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	o.Seed = 6
	o.Resume = true
	o.MaxCells = 0
	if _, err := Run(o); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("resume with changed seed: err = %v, want campaign-mismatch error", err)
	}
}

// A journal whose header itself is torn restarts the campaign from scratch
// instead of erroring out.
func TestJournalTornHeaderRestarts(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "soak.jsonl")
	if err := os.WriteFile(jpath, []byte(`{"soak_journal":1,"par`), 0o644); err != nil {
		t.Fatal(err)
	}
	o := Options{Space: testSpace(), Seed: 5, Workers: 2, Journal: jpath, Resume: true, MaxCells: 1}
	rep, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != 0 || rep.Ran != 1 {
		t.Fatalf("torn header: recovered %d, ran %d", rep.Recovered, rep.Ran)
	}
}

// The end-to-end failure pipeline: a canary-broken kernel fails litmus
// cells; triage classifies them deterministic, minimizes ops and fault
// rules jointly, persists replayable specs into the corpus, and the specs
// replay clean on the honest kernel while still failing under the canary.
func TestRunCanaryFailurePipeline(t *testing.T) {
	dir := t.TempDir()
	o := Options{
		Space: Space{
			Workloads: []string{LitmusWorkload},
			Protocols: ProtocolsByName("SC"),
			Templates: []Template{DefaultTemplates()[1]}, // lossy: gives the rule/knob minimizer something to shrink
			Reps:      6,
		},
		Seed:    77,
		Workers: 2,
		Corpus:  dir,
		canary:  true,
	}
	rep, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 {
		t.Fatal("canary-broken kernel produced no failures; the oracle pipeline is dead")
	}
	checked := 0
	for _, v := range rep.Verdicts {
		if v.Status != StatusFail {
			continue
		}
		if v.Class != ClassDeterministic {
			t.Fatalf("canary failure classified %q, want deterministic: %+v", v.Class, v)
		}
		if v.Spec == "" {
			t.Fatalf("deterministic failure not persisted: %+v", v)
		}
		spec, err := LoadSpec(v.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Litmus == nil || len(spec.Litmus.Ops) != v.MinOps || v.MinOps == 0 {
			t.Fatalf("spec ops %d disagree with verdict MinOps %d", len(spec.Litmus.Ops), v.MinOps)
		}
		// Honest replay passes — the bug was the canary's, not the spec's.
		if err := spec.Replay(); err != nil {
			t.Fatalf("honest replay of %s failed: %v", v.Spec, err)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no failing verdicts carried specs")
	}
	// The corpus directory holds exactly the persisted specs.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != checked {
		t.Fatalf("corpus holds %d files, verdicts reference %d", len(ents), checked)
	}
}

// Aggregate folds verdicts into one row per group plus a totals row, in
// cell order.
func TestAggregate(t *testing.T) {
	vs := []Verdict{
		{Cell: 0, Workload: "zipf", Protocol: "SC", Template: "none", Status: StatusOK, Events: 10, Cycles: 100},
		{Cell: 1, Workload: "zipf", Protocol: "SC", Template: "none", Status: StatusFail, Events: 4, Cycles: 40},
		{Cell: 2, Workload: "litmus", Protocol: "V", Template: "lossy", Status: StatusOK, Events: 6, Cycles: 60},
	}
	tab := Aggregate(vs)
	if len(tab.Rows) != 3 { // two groups + total
		t.Fatalf("got %d rows, want 3:\n%s", len(tab.Rows), tab.Render())
	}
	if tab.Rows[0][0] != "zipf" || tab.Rows[0][3] != "2" || tab.Rows[0][5] != "1" {
		t.Fatalf("zipf row wrong: %v", tab.Rows[0])
	}
	if tab.Rows[2][0] != "TOTAL" || tab.Rows[2][3] != "3" || tab.Rows[2][6] != "20" {
		t.Fatalf("total row wrong: %v", tab.Rows[2])
	}
}

// A Stop signal drains the sitting early: in-flight cells finish and are
// journaled; unclaimed cells stay pending for the next sitting.
func TestRunStopDrains(t *testing.T) {
	stop := make(chan struct{})
	close(stop) // stop before any cell is claimed
	jpath := filepath.Join(t.TempDir(), "soak.jsonl")
	o := Options{Space: testSpace(), Seed: 3, Workers: 2, Journal: jpath, Stop: stop}
	rep, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 0 || rep.Drained != o.Space.Cells() {
		t.Fatalf("pre-closed stop: ran %d, drained %d", rep.Ran, rep.Drained)
	}
	// The journal still checkpointed a valid (empty) campaign: resume runs
	// everything.
	o.Stop = nil
	o.Resume = true
	rep, err = Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != 0 || rep.Ran != o.Space.Cells() {
		t.Fatalf("resume after drain: recovered %d, ran %d", rep.Recovered, rep.Ran)
	}
}

// TestGenerateCorpus regenerates the committed failure corpus when
// SOAK_CORPUS_DIR is set:
//
//	SOAK_CORPUS_DIR=$PWD/testdata/soak-corpus go test -run TestGenerateCorpus ./internal/soak
//
// It runs a small canary-broken campaign (the write-dropping kernel of
// workload.LitmusRun.Canary) so the triage pipeline produces minimized,
// replayable specs; on the honest tree those specs replay clean, which is
// exactly what the repo-level corpus test pins forever. Skipped in normal
// test runs.
func TestGenerateCorpus(t *testing.T) {
	dir := os.Getenv("SOAK_CORPUS_DIR")
	if dir == "" {
		t.Skip("set SOAK_CORPUS_DIR to regenerate the committed corpus")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Options{
		Space: Space{
			Workloads: []string{LitmusWorkload},
			Protocols: ProtocolsByName("SC", "V", "W+DSI"),
			Templates: []Template{DefaultTemplates()[0], DefaultTemplates()[1]},
			Reps:      4,
		},
		Seed:    9,
		Workers: 2,
		Corpus:  dir,
		canary:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, v := range rep.Verdicts {
		if v.Spec != "" {
			t.Logf("pinned %s (%d ops, %d rules): %s", v.Spec, v.MinOps, v.MinRules, v.Err)
			n++
		}
	}
	if n == 0 {
		t.Fatal("canary campaign produced no corpus specs")
	}
}

// sortVerdicts orders a verdict slice by cell index.
func sortVerdicts(vs []Verdict) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j-1].Cell > vs[j].Cell; j-- {
			vs[j-1], vs[j] = vs[j], vs[j-1]
		}
	}
}
