package soak

import (
	"testing"
)

// SeedOf is a pure function: stable per (campaign, cell), distinct across
// neighboring cells and campaigns.
func TestSeedOfDeterministicAndSpread(t *testing.T) {
	if SeedOf(1, 5) != SeedOf(1, 5) {
		t.Fatal("SeedOf not deterministic")
	}
	seen := make(map[uint64]bool)
	for c := uint64(0); c < 4; c++ {
		for i := 0; i < 512; i++ {
			s := SeedOf(c, i)
			if seen[s] {
				t.Fatalf("seed collision at campaign %d cell %d", c, i)
			}
			seen[s] = true
		}
	}
}

// Cell decode is a bijection onto the space: every index resolves, template
// varies fastest, and the same index always resolves identically.
func TestSpaceCellDecode(t *testing.T) {
	s := Space{
		Workloads: []string{"zipf", LitmusWorkload},
		Protocols: ProtocolsByName("SC", "W+DSI"),
		Templates: DefaultTemplates(),
		Reps:      3,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Cells(), 2*2*4*3; got != want {
		t.Fatalf("Cells() = %d, want %d", got, want)
	}
	type key struct {
		w, p, tm string
	}
	counts := make(map[key]int)
	for i := 0; i < s.Cells(); i++ {
		c := s.Cell(7, i)
		if c.Index != i {
			t.Fatalf("cell %d decoded with index %d", i, c.Index)
		}
		if c.Seed != SeedOf(7, i) {
			t.Fatalf("cell %d seed not SeedOf", i)
		}
		counts[key{c.Workload, c.Protocol.Name, c.Template.Name}]++
	}
	if len(counts) != 2*2*4 {
		t.Fatalf("decode covered %d distinct combos, want 16", len(counts))
	}
	for k, n := range counts {
		if n != 3 {
			t.Fatalf("combo %v hit %d times, want Reps=3", k, n)
		}
	}
	// Template varies fastest: cells 0..3 share workload+protocol, sweep
	// all four templates.
	base := s.Cell(7, 0)
	for i := 1; i < 4; i++ {
		c := s.Cell(7, i)
		if c.Workload != base.Workload || c.Protocol.Name != base.Protocol.Name {
			t.Fatalf("cell %d changed workload/protocol before templates were exhausted", i)
		}
		if c.Template.Name == base.Template.Name {
			t.Fatalf("cell %d repeated template %q", i, c.Template.Name)
		}
	}
}

// DefaultSpace is the ISSUE 9 acceptance shape: >= 2000 cells covering the
// paper and traffic workloads plus litmus, under three protocols and at
// least three faulty templates.
func TestDefaultSpaceShape(t *testing.T) {
	s := DefaultSpace()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cells() < 2000 {
		t.Fatalf("default campaign has %d cells, want >= 2000", s.Cells())
	}
	faulty := 0
	for _, tm := range s.Templates {
		if tm.Faults != nil {
			faulty++
		}
	}
	if faulty < 3 {
		t.Fatalf("default campaign has %d faulty templates, want >= 3", faulty)
	}
	if len(s.Protocols) < 3 {
		t.Fatalf("default campaign has %d protocols, want >= 3", len(s.Protocols))
	}
}

// Shards partition the index space exactly: every index owned by exactly
// one shard, and the unsharded zero value owns everything.
func TestShardPartition(t *testing.T) {
	const n = 1000
	for _, count := range []int{2, 3, 7} {
		for k := 0; k < n; k++ {
			owners := 0
			for i := 1; i <= count; i++ {
				if (Shard{Index: i, Count: count}).Owns(k) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("index %d owned by %d of %d shards", k, owners, count)
			}
		}
	}
	for k := 0; k < n; k++ {
		if !(Shard{}).Owns(k) {
			t.Fatalf("unsharded zero value does not own %d", k)
		}
	}
}

// ParseShard round-trips valid specs and rejects malformed ones.
func TestParseShard(t *testing.T) {
	s, err := ParseShard("2/3")
	if err != nil || s.Index != 2 || s.Count != 3 || s.String() != "2/3" {
		t.Fatalf("ParseShard(2/3) = %+v, %v", s, err)
	}
	if s, err = ParseShard(""); err != nil || s.Count != 0 {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	for _, bad := range []string{"0/3", "4/3", "x/3", "3", "-1/2", "1/0"} {
		if _, err := ParseShard(bad); err == nil {
			t.Fatalf("ParseShard(%q) accepted", bad)
		}
	}
}

// ProtocolsByName resolves known labels and panics on unknown ones.
func TestProtocolsByName(t *testing.T) {
	prs := ProtocolsByName("SC", "V")
	if len(prs) != 2 || prs[0].Name != "SC" || prs[1].Name != "V" {
		t.Fatalf("resolved %+v", prs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown protocol did not panic")
		}
	}()
	ProtocolsByName("NOPE")
}

// FaultSpec round-trips every faultinj.Config field through JSON mirroring.
func TestFaultSpecRoundTrip(t *testing.T) {
	for _, tm := range DefaultTemplates() {
		fs := FaultSpecOf(tm.Faults)
		fc, err := fs.Config()
		if err != nil {
			t.Fatal(err)
		}
		if (fc == nil) != (tm.Faults == nil) {
			t.Fatalf("template %s: nil-ness changed", tm.Name)
		}
		if fc == nil {
			continue
		}
		if fc.Drop != tm.Faults.Drop || fc.Dup != tm.Faults.Dup ||
			fc.Delay != tm.Faults.Delay || fc.Jitter != tm.Faults.Jitter {
			t.Fatalf("template %s: knobs changed: %+v vs %+v", tm.Name, fc, tm.Faults)
		}
	}
}

// Space validation rejects empty axes and unknown workloads.
func TestSpaceValidate(t *testing.T) {
	if err := (Space{}).Validate(); err == nil {
		t.Fatal("empty space validated")
	}
	s := Space{
		Workloads: []string{"no-such-workload"},
		Protocols: ProtocolsByName("SC"),
		Templates: DefaultTemplates(),
	}
	if err := s.Validate(); err == nil {
		t.Fatal("unknown workload validated")
	}
}

// testSpace is the small space the engine tests sweep: one registry
// workload and the litmus generator under two protocols and two templates.
func testSpace() Space {
	return Space{
		Workloads: []string{"zipf", LitmusWorkload},
		Protocols: ProtocolsByName("SC", "W+DSI"),
		Templates: []Template{DefaultTemplates()[0], DefaultTemplates()[1]},
		Reps:      2,
	}
}
