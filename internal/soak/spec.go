package soak

import (
	"encoding/json"
	"fmt"
	"os"

	"dsisim/internal/event"
	"dsisim/internal/faultinj"
	"dsisim/internal/machine"
	"dsisim/internal/workload"
)

// FaultSpec is the JSON-safe mirror of faultinj.Config. The real config is
// not directly marshalable (DropByLink is keyed by a [2]int array), and the
// corpus format must stay stable against config-struct refactors anyway, so
// specs persist this flattened shape instead.
type FaultSpec struct {
	Seed       uint64          `json:"seed,omitempty"`
	Drop       float64         `json:"drop,omitempty"`
	Dup        float64         `json:"dup,omitempty"`
	Delay      float64         `json:"delay,omitempty"`
	Jitter     int64           `json:"jitter,omitempty"`
	DropByKind map[int]float64 `json:"drop_by_kind,omitempty"`
	DropByLink []LinkDrop      `json:"drop_by_link,omitempty"`
	Rules      []RuleSpec      `json:"rules,omitempty"`
}

// LinkDrop is one per-directed-link drop override.
type LinkDrop struct {
	Src  int     `json:"src"`
	Dst  int     `json:"dst"`
	Prob float64 `json:"prob"`
}

// RuleSpec is one scripted fault rule (see faultinj.Rule).
type RuleSpec struct {
	Kind   int    `json:"kind"`
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	Nth    int    `json:"nth,omitempty"`
	Action string `json:"action"`
	Delay  int64  `json:"delay,omitempty"`
}

// actionByName maps rule-action names back to faultinj actions.
func actionByName(name string) (faultinj.Action, error) {
	for a := faultinj.Action(0); a < faultinj.NumActions; a++ {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("soak: unknown fault action %q", name)
}

// FaultSpecOf flattens a fault config for persistence (nil in, nil out).
func FaultSpecOf(fc *faultinj.Config) *FaultSpec {
	if fc == nil {
		return nil
	}
	fs := &FaultSpec{
		Seed: fc.Seed, Drop: fc.Drop, Dup: fc.Dup, Delay: fc.Delay,
		Jitter: int64(fc.Jitter),
	}
	if len(fc.DropByKind) > 0 {
		fs.DropByKind = make(map[int]float64, len(fc.DropByKind))
		//dsi:anyorder copying into a map; JSON marshaling sorts the keys
		for k, v := range fc.DropByKind {
			fs.DropByKind[k] = v
		}
	}
	//dsi:anyorder the slice is only ever compared as a set and re-mapped
	for k, v := range fc.DropByLink {
		fs.DropByLink = append(fs.DropByLink, LinkDrop{Src: k[0], Dst: k[1], Prob: v})
	}
	for _, r := range fc.Rules {
		fs.Rules = append(fs.Rules, RuleSpec{
			Kind: r.Kind, Src: r.Src, Dst: r.Dst, Nth: r.Nth,
			Action: r.Action.String(), Delay: int64(r.Delay),
		})
	}
	return fs
}

// Config rebuilds the runnable fault config (nil in, nil out).
func (fs *FaultSpec) Config() (*faultinj.Config, error) {
	if fs == nil {
		return nil, nil
	}
	fc := &faultinj.Config{
		Seed: fs.Seed, Drop: fs.Drop, Dup: fs.Dup, Delay: fs.Delay,
		Jitter: event.Time(fs.Jitter),
	}
	if len(fs.DropByKind) > 0 {
		fc.DropByKind = make(map[int]float64, len(fs.DropByKind))
		//dsi:anyorder copying into a map consumed by faultinj.New, which compiles it densely
		for k, v := range fs.DropByKind {
			fc.DropByKind[k] = v
		}
	}
	if len(fs.DropByLink) > 0 {
		fc.DropByLink = make(map[[2]int]float64, len(fs.DropByLink))
		for _, l := range fs.DropByLink {
			fc.DropByLink[[2]int{l.Src, l.Dst}] = l.Prob
		}
	}
	for _, r := range fs.Rules {
		a, err := actionByName(r.Action)
		if err != nil {
			return nil, err
		}
		fc.Rules = append(fc.Rules, faultinj.Rule{
			Kind: r.Kind, Src: r.Src, Dst: r.Dst, Nth: r.Nth,
			Action: a, Delay: event.Time(r.Delay),
		})
	}
	return fc, nil
}

// Spec is one replayable failure: everything a fresh process needs to
// re-run the failing cell. The triage pipeline writes minimized Specs into
// the campaign's corpus directory; specs promoted to testdata/soak-corpus/
// are replayed by the repo-level corpus test (and by `dsisim -replay`)
// forever after, pinning the bug they once exposed.
type Spec struct {
	// Soak is the schema version (1).
	Soak int `json:"soak"`
	// Workload is a registry name, or "litmus" for a generated program.
	Workload string `json:"workload"`
	// Litmus carries the (minimized) program for litmus cells.
	Litmus *workload.LitmusSpec `json:"litmus,omitempty"`
	// Protocol is a fuzz-protocol label (SC, W, S, V, W+DSI).
	Protocol string `json:"protocol"`
	// Template names the fault template the cell came from (informational).
	Template string `json:"template,omitempty"`
	// Seed is the cell seed (machine seed derives as Seed|1 for registry
	// workloads; litmus cells re-derive everything from the litmus spec).
	Seed uint64 `json:"seed"`
	// Procs, CacheBytes, Scale shape registry-workload machines; litmus
	// cells take their processor count from the litmus spec.
	Procs      int    `json:"procs,omitempty"`
	CacheBytes int    `json:"cache_bytes,omitempty"`
	Scale      string `json:"scale,omitempty"`
	// Faults is the (minimized) fault plan, with the effective per-cell
	// fault seed filled in. nil replays fault-free.
	Faults *FaultSpec `json:"faults,omitempty"`
	// Err records the failure that produced this spec, for humans reading
	// the corpus.
	Err string `json:"err,omitempty"`
}

// SaveSpec persists a spec as indented JSON.
func SaveSpec(s *Spec, path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSpec reads a spec persisted by SaveSpec and validates the fields a
// replay depends on.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := new(Spec)
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Soak != 1 {
		return nil, fmt.Errorf("%s: unsupported soak spec version %d", path, s.Soak)
	}
	if s.Workload == LitmusWorkload && s.Litmus == nil {
		return nil, fmt.Errorf("%s: litmus spec without a program", path)
	}
	if _, err := protocolOf(s.Protocol); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// IsSpec reports whether raw JSON looks like a soak spec (used by `dsisim
// -replay` to dispatch between soak specs and bare litmus specs).
func IsSpec(data []byte) bool {
	var probe struct {
		Soak int `json:"soak"`
	}
	return json.Unmarshal(data, &probe) == nil && probe.Soak > 0
}

// protocolOf resolves a fuzz-protocol label.
func protocolOf(name string) (workload.FuzzProtocol, error) {
	for _, pr := range workload.FuzzProtocols() {
		if pr.Name == name {
			return pr, nil
		}
	}
	return workload.FuzzProtocol{}, fmt.Errorf("soak: unknown protocol %q", name)
}

// scaleOf parses a persisted scale name ("" defaults to test scale: soak
// campaigns sweep breadth, not input size).
func scaleOf(name string) (workload.Scale, error) {
	switch name {
	case "", "test":
		return workload.ScaleTest, nil
	case "paper":
		return workload.ScalePaper, nil
	}
	return 0, fmt.Errorf("soak: unknown scale %q", name)
}

// Replay re-runs a persisted failure spec once, exactly as the campaign
// cell ran it, and returns the cell's verdict error (nil means the bug the
// spec pinned no longer reproduces — which, for a committed corpus entry,
// is the permanently expected outcome).
func (s *Spec) Replay() error {
	pr, err := protocolOf(s.Protocol)
	if err != nil {
		return err
	}
	fc, err := s.Faults.Config()
	if err != nil {
		return err
	}
	if s.Workload == LitmusWorkload {
		plan := workload.FuzzFaultPlan{Name: s.Template, Config: fc}
		_, _, err := workload.RunLitmusOpts(s.Litmus, pr, plan, workload.LitmusRun{})
		return err
	}
	scale, err := scaleOf(s.Scale)
	if err != nil {
		return err
	}
	prog, err := workload.New(s.Workload, scale)
	if err != nil {
		return err
	}
	procs := s.Procs
	if procs == 0 {
		procs = 8
	}
	cfg := machine.Config{
		Processors:  procs,
		CacheBytes:  s.CacheBytes,
		CacheAssoc:  4,
		Consistency: pr.Consistency,
		Policy:      pr.Policy,
		Seed:        s.Seed | 1,
		Faults:      fc,
	}
	res := machine.New(cfg).Run(prog)
	if res.Failed() {
		return fmt.Errorf("%s/%s: %s", s.Workload, s.Protocol, res.Errors[0])
	}
	return nil
}
