package soak

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"
)

// Params identifies a campaign for checkpointing: everything that
// determines the cell space and each cell's verdict. The journal header
// stores these plus their hash; a resume re-verifies the hash so a journal
// can never silently continue a *different* campaign (same path, changed
// flags) and merge incompatible verdicts. Deliberately excluded: cell- or
// duration-count bounds, worker counts, and corpus/journal paths — they
// change which cells run in one sitting, never what any cell produces.
type Params struct {
	Seed      uint64       `json:"seed"`
	Workloads []string     `json:"workloads"`
	Protocols []string     `json:"protocols"`
	Templates []*FaultSpec `json:"templates"` // indexed like Space.Templates; nil = fault-free
	Names     []string     `json:"template_names"`
	Reps      int          `json:"reps"`
	Procs     int          `json:"procs"`
	Cache     int          `json:"cache_bytes"`
	Scale     string       `json:"scale"`
	Shard     string       `json:"shard,omitempty"`
	Canary    bool         `json:"canary,omitempty"`
}

// Hash returns the campaign fingerprint: FNV-1a over the canonical JSON
// encoding (struct-ordered keys, integer-keyed maps sorted by encoding/json).
func (p Params) Hash() string {
	data, err := json.Marshal(p)
	if err != nil {
		panic("soak: params not marshalable: " + err.Error())
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Status is a cell verdict status.
type Status string

const (
	// StatusOK marks a cell that terminated, passed the coherence audit,
	// and (for litmus cells) matched the reference outcome.
	StatusOK Status = "ok"
	// StatusFail marks a cell that tripped any oracle: a kernel assertion,
	// check.Audit, the liveness watchdog, or the outcome cross-check.
	StatusFail Status = "fail"
)

// Triage classification of a failing cell.
const (
	// ClassDeterministic marks a failure that reproduced identically on
	// every triage re-run: a real, replayable protocol failure.
	ClassDeterministic = "deterministic"
	// ClassFlaky marks a failure that did not reproduce identically — with
	// bit-deterministic simulations that means infrastructure trouble (OOM,
	// corrupted build), not protocol state, and the cell is not minimized.
	ClassFlaky = "flaky"
)

// Verdict is one cell's journaled outcome. Every field is a pure function
// of the campaign parameters and the cell index — no wall-clock, no worker
// ids — so the union of verdicts is byte-identical whether a campaign ran
// straight through or was killed and resumed arbitrarily often.
type Verdict struct {
	Cell     int    `json:"cell"`
	Workload string `json:"workload"`
	Protocol string `json:"protocol"`
	Template string `json:"template"`
	Seed     uint64 `json:"seed"`
	Status   Status `json:"status"`
	Events   uint64 `json:"events"`
	Cycles   int64  `json:"cycles"`
	// Cached marks a verdict served from the result cache instead of a
	// fresh simulation (Options.Cache). The payload fields are bit-identical
	// either way — this is provenance for the hit-rate bookkeeping, the one
	// verdict field that may legitimately differ between a straight-through
	// run and a resumed one.
	Cached bool `json:"cached,omitempty"`

	// Failure-only fields.
	Err      string `json:"err,omitempty"`
	Class    string `json:"class,omitempty"`
	Reruns   int    `json:"reruns,omitempty"`
	Spec     string `json:"spec,omitempty"` // corpus path of the minimized repro
	MinOps   int    `json:"min_ops,omitempty"`
	MinRules int    `json:"min_rules,omitempty"`
}

// journalHeader is the first line of a journal file.
type journalHeader struct {
	Journal int    `json:"soak_journal"` // schema version, 1
	Params  Params `json:"params"`
	Hash    string `json:"hash"`
}

// syncEvery bounds how many appended verdicts may sit un-fsynced. A crash
// loses at most this many cells' work — they simply re-run on resume.
const syncEvery = 32

// Journal is the append-only JSONL checkpoint of a campaign: one header
// line identifying the campaign, then one line per completed cell verdict.
// Append is safe for concurrent use by the runner's workers.
//
// Resume semantics: OpenJournal(path, params, resume=true) replays the
// existing file — verifying the header hash against params — recovers every
// parseable verdict into Done, tolerates a torn final line (the kill may
// have landed mid-write), and compacts the file (header + recovered
// verdicts, rewritten atomically via rename) before appending resumes. A
// journal whose header is itself torn or missing restarts the campaign
// from scratch; one whose header hash mismatches is an error, not a
// restart — silently discarding a journal because a flag changed is how
// campaigns lose days of work.
type Journal struct {
	// Done maps cell index → recovered verdict (empty for a fresh journal).
	Done map[int]Verdict

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	path    string
	pending int
}

// OpenJournal opens (or creates) the campaign journal at path. With resume
// false any existing file is overwritten; with resume true completed
// verdicts are recovered per the semantics above.
func OpenJournal(path string, p Params, resume bool) (*Journal, error) {
	j := &Journal{Done: make(map[int]Verdict), path: path}
	if resume {
		if err := j.recover(p); err != nil {
			return nil, err
		}
	}
	// Rewrite the file: header plus (on resume) the recovered verdicts in
	// cell order, atomically via a temp file + rename, so the live file is
	// never left with a torn tail we would then append after.
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	if err := enc.Encode(journalHeader{Journal: 1, Params: p, Hash: p.Hash()}); err != nil {
		f.Close()
		return nil, err
	}
	cells := make([]int, 0, len(j.Done))
	//dsi:anyorder keys are sorted before writing
	for c := range j.Done {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	for _, c := range cells {
		if err := enc.Encode(j.Done[c]); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	j.f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j.w = bufio.NewWriter(j.f)
	return j, nil
}

// recover replays an existing journal into j.Done.
func (j *Journal) recover(p Params) error {
	data, err := os.ReadFile(j.path)
	if os.IsNotExist(err) {
		return nil // fresh campaign
	}
	if err != nil {
		return err
	}
	lines := bytes.Split(data, []byte("\n"))
	// Trim trailing empty lines (the file ends with a newline when intact).
	for len(lines) > 0 && len(bytes.TrimSpace(lines[len(lines)-1])) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil
	}
	var hdr journalHeader
	if json.Unmarshal(lines[0], &hdr) != nil || hdr.Journal == 0 {
		// Torn or alien header: the campaign never completed a single
		// checkpointed cell worth trusting. Start fresh.
		return nil
	}
	if hdr.Journal != 1 {
		return fmt.Errorf("soak: journal %s: unsupported version %d", j.path, hdr.Journal)
	}
	if want := p.Hash(); hdr.Hash != want {
		return fmt.Errorf("soak: journal %s belongs to a different campaign (header hash %s, current params hash %s); refusing to merge verdicts",
			j.path, hdr.Hash, want)
	}
	for i, line := range lines[1:] {
		var v Verdict
		if err := json.Unmarshal(line, &v); err != nil {
			if i == len(lines)-2 {
				break // torn final line: the kill landed mid-append
			}
			return fmt.Errorf("soak: journal %s: corrupt verdict at line %d: %w", j.path, i+2, err)
		}
		j.Done[v.Cell] = v
	}
	return nil
}

// Append journals one verdict: a full line is buffered, flushed to the OS,
// and fsynced every syncEvery appends.
func (j *Journal) Append(v Verdict) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	j.pending++
	if j.pending >= syncEvery {
		j.pending = 0
		return j.f.Sync()
	}
	return nil
}

// Close flushes, fsyncs, and closes the journal — the final checkpoint of
// a graceful drain.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// ReadVerdicts loads every verdict of a finished journal, sorted by cell
// index — the aggregate-comparison primitive of the resume tests and the
// post-campaign tooling. The header is validated but not hash-checked
// (pass the verdicts to OpenJournal for that).
func ReadVerdicts(path string) ([]Verdict, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := bytes.Split(data, []byte("\n"))
	var out []Verdict
	for i, line := range lines {
		if i == 0 || len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var v Verdict
		if err := json.Unmarshal(line, &v); err != nil {
			return nil, fmt.Errorf("soak: %s line %d: %w", path, i+1, err)
		}
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Cell < out[b].Cell })
	return out, nil
}
