package soak

import (
	"path/filepath"
	"testing"

	"dsisim/internal/faultinj"
	"dsisim/internal/machine"
	"dsisim/internal/simcache"
)

// TestSpecRoundTripKey pins the corpus ↔ cache-key contract: a failure spec
// persisted by the triage pipeline, saved to disk, and reloaded rebuilds a
// replay configuration that hashes to the same simcache key as the
// originating campaign cell. A service can therefore answer "has this
// corpus entry's cell been simulated?" from the cache without re-deriving
// campaign state.
func TestSpecRoundTripKey(t *testing.T) {
	o := Options{Procs: 8, CacheBytes: 4096, Scale: ""}
	space := Space{
		Workloads: []string{"zipf"},
		Protocols: ProtocolsByName("W+DSI"),
		Templates: []Template{{Name: "storm", Faults: &faultinj.Config{
			Drop: 0.02, Dup: 0.02, Delay: 0.1, Jitter: 48,
			DropByKind: map[int]float64{2: 0.5, 4: 0.125},
			DropByLink: map[[2]int]float64{{1, 2}: 0.25, {0, 3}: 0.75},
			Rules:      []faultinj.Rule{{Kind: 1, Src: -1, Dst: -1, Nth: 2, Action: faultinj.Drop}},
		}}},
	}
	cell := space.Cell(42, 0)
	fc := faultsFor(cell)
	scale, err := scaleOf(o.Scale)
	if err != nil {
		t.Fatal(err)
	}
	orig := simcache.RequestOf(cell.Workload, scale.String(), cell.Protocol.Name,
		machineConfig(cell, o, fc)).Key()

	spec := &Spec{
		Soak: 1, Workload: cell.Workload, Protocol: cell.Protocol.Name,
		Template: cell.Template.Name, Seed: cell.Seed,
		Procs: o.Procs, CacheBytes: o.CacheBytes, Scale: o.Scale,
		Faults: FaultSpecOf(fc),
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := SaveSpec(spec, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the machine config exactly as Spec.Replay does.
	pr, err := protocolOf(loaded.Protocol)
	if err != nil {
		t.Fatal(err)
	}
	rfc, err := loaded.Faults.Config()
	if err != nil {
		t.Fatal(err)
	}
	rscale, err := scaleOf(loaded.Scale)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.Config{
		Processors:  loaded.Procs,
		CacheBytes:  loaded.CacheBytes,
		CacheAssoc:  4,
		Consistency: pr.Consistency,
		Policy:      pr.Policy,
		Seed:        loaded.Seed | 1,
		Faults:      rfc,
	}
	got := simcache.RequestOf(loaded.Workload, rscale.String(), loaded.Protocol, cfg).Key()
	if got != orig {
		t.Fatalf("replayed spec key %v != originating cell key %v", got, orig)
	}
}

// TestRunSharedCache runs the same registry-only campaign twice against one
// caller-owned cache: the second sitting must serve every cell from the
// cache with verdict payloads identical to the first, and litmus cells (no
// canonical request key) must never be cached.
func TestRunSharedCache(t *testing.T) {
	cache := simcache.New(64 << 20)
	space := Space{
		Workloads: []string{"zipf", LitmusWorkload},
		Protocols: ProtocolsByName("SC", "V"),
		Templates: DefaultTemplates()[:2], // none + lossy
		Reps:      2,
	}
	o := Options{Space: space, Seed: 7, Workers: 2, Cache: cache}
	first, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Verdicts) != len(second.Verdicts) {
		t.Fatalf("verdict counts differ: %d vs %d", len(first.Verdicts), len(second.Verdicts))
	}
	for i, v2 := range second.Verdicts {
		v1 := first.Verdicts[i]
		if v2.Workload == LitmusWorkload {
			if v1.Cached || v2.Cached {
				t.Fatalf("cell %d: litmus cell marked cached", v2.Cell)
			}
			continue
		}
		if v1.Cached {
			t.Fatalf("cell %d: first sitting hit a cold cache", v1.Cell)
		}
		if v1.Status == StatusOK && !v2.Cached {
			t.Fatalf("cell %d: second sitting missed a warm cache", v2.Cell)
		}
		v2.Cached = v1.Cached
		if v1 != v2 {
			t.Fatalf("cell %d: cached verdict differs from computed:\n%+v\n%+v", v2.Cell, v1, v2)
		}
	}
	s := cache.Stats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("cache never engaged: %+v", s)
	}
}
