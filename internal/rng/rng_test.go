package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := New(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformityRough(t *testing.T) {
	r := New(2024)
	const n, buckets = 100000, 10
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for i, c := range counts {
		if c < n/buckets*8/10 || c > n/buckets*12/10 {
			t.Fatalf("bucket %d badly skewed: %d of %d", i, c, n)
		}
	}
}
