// Package rng provides a tiny deterministic PRNG (splitmix64) used wherever
// the simulator or a workload needs reproducible pseudo-randomness. It is
// deliberately independent of math/rand so that results cannot drift with Go
// releases.
package rng

// RNG is a splitmix64 generator. The zero value is a valid generator seeded
// with 0; use New to seed explicitly.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Reseed rewinds the generator to the state New(seed) would produce, for
// reuse without reallocating.
func (r *RNG) Reseed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
