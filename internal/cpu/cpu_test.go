package cpu

import (
	"testing"

	"dsisim/internal/cache"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
	"dsisim/internal/proto"
	"dsisim/internal/stats"
)

// harness wires one standalone processor to a 2-node protocol stack.
type harness struct {
	q    *event.Queue
	d    *Driver
	bar  *Barrier
	proc *Proc
	brk  *stats.Breakdown
	net  *netsim.Network
}

func newHarness(t *testing.T, nprocs int, cons proto.Consistency) ([]*Proc, *harness) {
	t.Helper()
	q := &event.Queue{}
	layout := mem.NewLayout(nprocs)
	net := netsim.New(q, netsim.Config{Nodes: nprocs, Latency: 100})
	env := &proto.Env{Q: q, Net: net, Layout: layout,
		CheckFail: func(f string, a ...any) { t.Fatalf("protocol: "+f, a...) }}
	cfg := proto.Config{Consistency: cons, WriteBufferEntries: 16}
	bar := NewBarrier(q, nprocs, 100)
	d := NewDriver(q)
	var procs []*Proc
	for i := 0; i < nprocs; i++ {
		cc := proto.NewCacheCtrl(env, i, cfg, cache.Config{SizeBytes: 64 * mem.BlockSize, Assoc: 4})
		dc := proto.NewDirCtrl(env, i, cfg)
		net.SetHandler(i, func(m netsim.Message) {
			switch m.Kind {
			case netsim.Inv, netsim.Recall, netsim.DataS, netsim.DataX, netsim.AckX, netsim.FinalAck:
				cc.Handle(m)
			default:
				dc.Handle(m)
			}
		})
		brk := &stats.Breakdown{}
		p := New(i, nprocs, q, cc, bar, brk, 42)
		p.Bind(d)
		procs = append(procs, p)
	}
	d.Reset(10_000_000)
	return procs, &harness{q: q, d: d, bar: bar, proc: procs[0], brk: procs[0].Breakdown(), net: net}
}

func run(t *testing.T, h *harness, procs []*Proc) {
	t.Helper()
	steps, drained := h.d.Run()
	if !drained {
		t.Fatalf("livelock: budget expired after %d events", steps)
	}
	for i, p := range procs {
		if p.Done() {
			p.Join()
		}
		_ = i
	}
	for i, p := range procs {
		if !p.Done() {
			t.Fatalf("proc %d not done", i)
		}
		if p.Err() != nil {
			t.Fatalf("proc %d: %v", i, p.Err())
		}
	}
}

func TestComputeCharges(t *testing.T) {
	procs, h := newHarness(t, 1, proto.SC)
	procs[0].Start(func(p *Proc) {
		p.Compute(123)
		p.Compute(0) // no-op
	})
	run(t, h, procs)
	if h.brk.Cycles[stats.Compute] != 123 {
		t.Fatalf("compute = %d", h.brk.Cycles[stats.Compute])
	}
	if procs[0].HaltTime() != 123 {
		t.Fatalf("halt at %d", procs[0].HaltTime())
	}
}

func TestNegativeComputePanicsIntoErr(t *testing.T) {
	procs, h := newHarness(t, 1, proto.SC)
	procs[0].Start(func(p *Proc) { p.Compute(-1) })
	h.d.Run()
	if procs[0].Err() == nil {
		t.Fatal("negative compute did not error")
	}
}

func TestReadWriteCategories(t *testing.T) {
	procs, h := newHarness(t, 2, proto.SC)
	a := mem.Addr(1 * mem.BlockSize) // homed at node 1 (remote to proc 0)
	procs[0].Start(func(p *Proc) {
		p.Write(a) // remote write miss
		v := p.Read(a)
		p.Assert(v.Writer == 0 && v.Seq == 1, "v=%v", v)
	})
	procs[1].Start(func(p *Proc) {})
	run(t, h, procs)
	if h.brk.Cycles[stats.WriteOther] == 0 {
		t.Fatal("write miss charged nothing to write-other")
	}
	if h.brk.Cycles[stats.ReadOther] != 0 {
		t.Fatal("read hit charged read-other")
	}
	// Each memory op charges one issue cycle to compute.
	if h.brk.Cycles[stats.Compute] != 2 {
		t.Fatalf("compute = %d, want 2", h.brk.Cycles[stats.Compute])
	}
}

func TestWordIsolationWithinBlock(t *testing.T) {
	procs, h := newHarness(t, 1, proto.SC)
	base := mem.Addr(mem.BlockSize)
	procs[0].Start(func(p *Proc) {
		for i := 0; i < mem.WordsPerBlock; i++ {
			p.WriteWord(base+mem.Addr(i*8), uint64(100+i))
		}
		for i := 0; i < mem.WordsPerBlock; i++ {
			v := p.Read(base + mem.Addr(i*8))
			p.Assert(v.Word == uint64(100+i), "word %d = %d", i, v.Word)
		}
	})
	run(t, h, procs)
}

func TestSwapReturnsOldWord(t *testing.T) {
	procs, h := newHarness(t, 1, proto.SC)
	a := mem.Addr(mem.BlockSize)
	procs[0].Start(func(p *Proc) {
		p.Assert(p.Swap(a, 5) == 0, "first swap")
		p.Assert(p.Swap(a, 9) == 5, "second swap")
		p.Assert(p.Read(a).Word == 9, "final read")
	})
	run(t, h, procs)
}

func TestLockMutualExclusionTiming(t *testing.T) {
	procs, h := newHarness(t, 2, proto.SC)
	lock := mem.Addr(mem.BlockSize)
	data := mem.Addr(2 * mem.BlockSize)
	kernel := func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Lock(lock)
			v := p.Read(data)
			p.Compute(50)
			p.WriteWord(data, v.Word+1)
			p.Unlock(lock)
		}
		p.Barrier()
		if p.ID() == 0 {
			p.Assert(p.Read(data).Word == 10, "count %d", p.Read(data).Word)
		}
	}
	for _, p := range procs {
		p.Start(kernel)
	}
	run(t, h, procs)
	if h.brk.Cycles[stats.Sync] == 0 {
		t.Fatal("lock activity charged no sync time")
	}
}

func TestBarrierReleaseLatency(t *testing.T) {
	procs, h := newHarness(t, 2, proto.SC)
	var releases [2]event.Time
	for i, p := range procs {
		i, p := i, p
		p.Start(func(pp *Proc) {
			pp.Compute(int64(10 * (i + 1))) // staggered arrivals: 10 and 20
			pp.Barrier()
		})
	}
	run(t, h, procs)
	releases[0] = procs[0].HaltTime()
	releases[1] = procs[1].HaltTime()
	// Release = last arrival (≈20) + 100 latency; both release together.
	if releases[0] != releases[1] {
		t.Fatalf("releases differ: %v", releases)
	}
	if releases[0] < 120 || releases[0] > 140 {
		t.Fatalf("release at %d, want ≈ 120", releases[0])
	}
	if h.bar.Episodes != 1 {
		t.Fatalf("episodes = %d", h.bar.Episodes)
	}
}

func TestBarrierOnReleaseHook(t *testing.T) {
	procs, h := newHarness(t, 2, proto.SC)
	var eps []int64
	h.bar.OnRelease = func(ep int64) { eps = append(eps, ep) }
	for _, p := range procs {
		p.Start(func(pp *Proc) {
			pp.Barrier()
			pp.Barrier()
		})
	}
	run(t, h, procs)
	if len(eps) != 2 || eps[0] != 1 || eps[1] != 2 {
		t.Fatalf("hook episodes = %v", eps)
	}
}

func TestRNGIsPerProcessorDeterministic(t *testing.T) {
	procs, _ := newHarness(t, 2, proto.SC)
	a := procs[0].RNG().Uint64()
	b := procs[1].RNG().Uint64()
	if a == b {
		t.Fatal("distinct processors share an RNG stream")
	}
	procs2, _ := newHarness(t, 2, proto.SC)
	if procs2[0].RNG().Uint64() != a {
		t.Fatal("same seed, different stream")
	}
}

func TestTraceHookSeesProgramOrder(t *testing.T) {
	procs, h := newHarness(t, 1, proto.SC)
	var kinds []string
	procs[0].OnOp = func(op TraceOp) { kinds = append(kinds, op.Kind) }
	a := mem.Addr(mem.BlockSize)
	procs[0].Start(func(p *Proc) {
		p.Write(a)
		p.Read(a)
		p.Compute(5)
	})
	run(t, h, procs)
	want := []string{"write", "read", "compute", "halt"}
	if len(kinds) != len(want) {
		t.Fatalf("trace = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace = %v, want %v", kinds, want)
		}
	}
}

func TestWCWriteIsNonBlocking(t *testing.T) {
	procs, h := newHarness(t, 2, proto.WC)
	a := mem.Addr(1 * mem.BlockSize) // remote home
	procs[0].Start(func(p *Proc) {
		p.Write(a) // buffered: should not stall ~227 cycles
		p.Compute(1)
	})
	procs[1].Start(func(p *Proc) {})
	run(t, h, procs)
	if h.brk.Cycles[stats.WriteOther]+h.brk.Cycles[stats.WriteInval] > 5 {
		t.Fatalf("WC write stalled: %v", h.brk)
	}
}
