// Package cpu models the processors: a simple in-order core that issues
// loads, stores, swaps, compute delays, and synchronization operations
// against its node's cache controller, stalling according to the memory
// consistency model, and attributing every stalled cycle to the categories
// of the paper's Figure 3.
//
// Workload kernels are ordinary Go functions run on one goroutine per
// simulated processor, scheduled cooperatively: exactly one goroutine — the
// current "conch holder" — executes events at any moment, and the conch
// moves between goroutines only when an event resumes a different
// processor's kernel (see Driver). A kernel blocks inside each Proc method
// while the simulator advances; execution is fully serialized through the
// conch handoff, so simulations are deterministic as long as kernels do not
// mutate Go state shared between processors (read-only shared setup is
// fine).
package cpu

import (
	"fmt"

	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/proto"
	"dsisim/internal/rng"
	"dsisim/internal/stats"
)

// Kernel is the per-processor body of a workload.
type Kernel func(p *Proc)

// opKind enumerates kernel→driver requests.
type opKind int

const (
	opRead opKind = iota
	opWrite
	opSwap
	opCompute
	opBarrier
	opUnlock
	opFlush
	opHalt
)

type request struct {
	kind   opKind
	addr   mem.Addr
	word   uint64
	cycles int64
	sync   bool // charge stall time to the synchronization category
	// noFlush suppresses the self-invalidation flush after a swap: failed
	// spin-lock attempts are not treated as completed synchronization
	// points (the flush runs once, after the successful acquire).
	noFlush bool
}

// Value is what a kernel observes from a load or swap: the block's
// coherence token plus the data word at the accessed address.
type Value struct {
	Writer int
	Seq    uint64
	Word   uint64
}

type response struct {
	value Value
	old   uint64
}

// Proc is one simulated processor. Kernel-side methods (Read, Write, …)
// must only be called from the kernel goroutine; everything else belongs to
// the driver.
type Proc struct {
	id int
	n  int

	q       *event.Queue
	cc      *proto.CacheCtrl
	barrier *Barrier
	brk     *stats.Breakdown
	rnd     *rng.RNG
	drv     *Driver

	// res carries the conch into this processor's kernel goroutine: the
	// initial start gate and every cross-processor resume arrive here. A
	// self-resume (this processor's own drive loop executes its resume event)
	// uses the respReady flag instead and costs no channel operation at all —
	// the structural win over the old per-op request/response handshake.
	res chan response
	// respReady: this processor's response is in resp (set only while it
	// holds the conch). lostConch: the conch was handed to another goroutine
	// mid-event; stop driving. Both fields are only ever written by the
	// goroutine that currently holds the conch, which for these flags is the
	// owning goroutine itself (see resumeProc), so they need no atomics.
	respReady bool
	lostConch bool
	// gone receives one token when the kernel goroutine exits; see Join.
	// Allocated once at construction and reused across runs (Join consumes
	// the token), keeping Start allocation-free.
	gone chan struct{}

	seq  uint64 // store sequence for value tokens
	done bool
	halt event.Time
	err  error

	// In-order operation state: the core has at most one operation in
	// flight, so its continuation context lives here instead of in per-op
	// closures. r is the current request, start its issue time, resp the
	// response to deliver at the next resume, pending the response parked
	// across a trailing self-invalidation flush.
	r       request
	start   event.Time
	resp    response
	pending response

	// drained/arrived are the intermediate timestamps of the multi-stage
	// synchronization sequences (drain → access → flush → barrier).
	drained event.Time
	arrived event.Time

	// flushNext runs after the current self-invalidation flush completes.
	flushNext  func()
	flushStart event.Time

	// Continuations bound once at construction so issuing an operation
	// allocates nothing.
	contRead, contWrite, contSwap, contUnlockWrite func(proto.Result)
	contFlushed                                    func(proto.Result)
	contSwapDrained, contUnlockDrained             func()
	contBarrierDrained, contBarrierFlushed         func()
	contBarrierReleased, contFinishResp            func()
	contFlushFinish                                func()

	// SpinBackoffMax bounds the exponential backoff between lock retries.
	SpinBackoffMax int64

	// OnOp, if set, observes every operation the kernel issues, in program
	// order, before it executes. Used by the trace tooling.
	OnOp func(TraceOp)
}

// TraceOp is one kernel-issued operation as seen by a tracer.
type TraceOp struct {
	Kind   string // read write swap compute barrier unlock flush halt
	Addr   mem.Addr
	Word   uint64
	Cycles int64
	Sync   bool
}

var opNames = map[opKind]string{
	opRead: "read", opWrite: "write", opSwap: "swap", opCompute: "compute",
	opBarrier: "barrier", opUnlock: "unlock", opFlush: "flush", opHalt: "halt",
}

// New builds a processor. Start must be called to launch its kernel.
func New(id, n int, q *event.Queue, cc *proto.CacheCtrl, barrier *Barrier, brk *stats.Breakdown, seed uint64) *Proc {
	p := &Proc{
		id: id, n: n, q: q, cc: cc, barrier: barrier, brk: brk,
		rnd:            rng.New(seed ^ uint64(id)*0x9e3779b97f4a7c15),
		res:            make(chan response),
		gone:           make(chan struct{}, 1),
		SpinBackoffMax: 256,
	}
	p.contRead = p.onRead
	p.contWrite = p.onWrite
	p.contSwap = p.onSwap
	p.contUnlockWrite = p.onUnlockWrite
	p.contFlushed = p.onFlushed
	p.contSwapDrained = p.onSwapDrained
	p.contUnlockDrained = p.onUnlockDrained
	p.contBarrierDrained = p.onBarrierDrained
	p.contBarrierFlushed = p.onBarrierFlushed
	p.contBarrierReleased = p.onBarrierReleased
	p.contFinishResp = p.finishResp
	p.contFlushFinish = p.onFlushFinish
	return p
}

// Reset returns a halted processor to its just-built state for machine
// reuse, keeping the channels and the continuation closures bound at
// construction. The queue, cache controller, barrier, and breakdown wiring
// persist; only the run state (RNG, store sequence, halt/err, in-flight
// operation context) is cleared. Resetting a processor whose kernel has not
// halted would leave its goroutine blocked on the old run's channels, so
// that is a hard error — the machine rebuilds such processors instead.
func (p *Proc) Reset(seed uint64) {
	if !p.done {
		panic("cpu: Reset of a processor that has not halted")
	}
	p.rnd.Reseed(seed ^ uint64(p.id)*0x9e3779b97f4a7c15)
	p.respReady = false
	p.lostConch = false
	p.seq = 0
	p.done = false
	p.halt = 0
	p.err = nil
	p.r = request{}
	p.start = 0
	p.resp = response{}
	p.pending = response{}
	p.drained, p.arrived = 0, 0
	p.flushNext = nil
	p.flushStart = 0
	p.SpinBackoffMax = 256
	p.OnOp = nil
}

// ID returns the processor number.
func (p *Proc) ID() int { return p.id }

// N returns the machine's processor count.
func (p *Proc) N() int { return p.n }

// RNG returns the processor's private deterministic generator.
func (p *Proc) RNG() *rng.RNG { return p.rnd }

// Done reports whether the kernel has halted.
func (p *Proc) Done() bool { return p.done }

// HaltTime returns the simulated time the kernel halted.
func (p *Proc) HaltTime() event.Time { return p.halt }

// Err returns the kernel's panic error, if any.
func (p *Proc) Err() error { return p.err }

// Breakdown returns the processor's cycle attribution.
func (p *Proc) Breakdown() *stats.Breakdown { return p.brk }

// --- cooperative driver --------------------------------------------------------

// Driver owns one machine's event-loop run. Exactly one goroutine at a time
// — the conch holder — executes events: initially the goroutine that calls
// Run ("main"), and after the per-processor start events fire, whichever
// kernel goroutine an event most recently resumed. A kernel that issues an
// operation drives the queue itself until its own response is ready
// (respReady, no channel traffic) or until an event resumes a different
// processor, at which point the conch moves with a single channel send and
// the loser parks. Compared to the previous design — every operation
// crossing two unbuffered channels into a central loop — this removes all
// scheduler traffic from self-resumes and halves it for handoffs, without
// changing the event stream: operations are issued at exactly the same
// (time, seq) positions the central loop issued them at.
//
// Every field is only accessed by the current conch holder; the handoff
// channel sends establish the happens-before edges that make that sound
// under the race detector.
type Driver struct {
	q      *event.Queue
	max    uint64
	budget uint64

	// limit is the window boundary for RunWindow-driven runs: driving pauses
	// before executing any event at time >= limit. Negative disables the
	// check entirely — the serial Run path never looks at the clock.
	limit event.Time

	// cur is the processor holding the conch; nil means main (the Run
	// caller). mainLost tells main's drive loop the conch moved on.
	cur      *Proc
	mainLost bool

	// done receives the run outcome (drained vs budget expired) from
	// whichever holder stops driving; buffered so main can finish its own
	// drive loop before receiving.
	done chan bool
}

// NewDriver builds a driver for q. Reset arms it for a run.
func NewDriver(q *event.Queue) *Driver {
	return &Driver{q: q, done: make(chan bool, 1)}
}

// Reset arms the driver for one run with an event budget (the livelock
// watchdog). A driver is reusable: each run consumes exactly one done
// notification (Run) or one per window (RunWindow).
func (d *Driver) Reset(budget uint64) {
	d.max, d.budget = budget, budget
	d.limit = -1
	d.cur = nil
	d.mainLost = false
}

// Steps returns the number of events executed since Reset.
func (d *Driver) Steps() uint64 { return d.max - d.budget }

// step executes one event within the budget. It returns false when driving
// must stop for good — the queue drained or the budget expired — in which
// case the outcome has been posted and the conch dies with this holder.
//
//dsi:hotpath
func (d *Driver) step() bool {
	if d.budget == 0 {
		d.done <- false
		return false
	}
	if d.limit >= 0 {
		if t, ok := d.q.NextAt(); ok && t >= d.limit {
			// Window boundary: pause without executing. The conch reverts to
			// the goroutine that drives the next window (a pausing kernel
			// goroutine parks on its res channel and is resumed by event, so
			// cur must not keep pointing at it). No event ran in this call,
			// so no handoff happened and the write is still private.
			d.cur = nil
			d.done <- true
			return false
		}
	}
	// Decrement before dispatch: the event may hand the conch to another
	// goroutine mid-Step, and every driver access after the handoff send
	// belongs to the new holder. An empty queue refunds the charge (no
	// event ran, so no handoff happened and the refund is still private).
	d.budget--
	if !d.q.Step() {
		d.budget++
		d.cur = nil
		d.done <- true
		return false
	}
	return true
}

// Run drives the queue from the calling goroutine until the conch is handed
// to a kernel goroutine, then blocks until the run completes. It returns the
// number of events executed and whether the queue drained (false: the budget
// expired with events still pending).
func (d *Driver) Run() (steps uint64, drained bool) {
	for {
		if d.mainLost {
			d.mainLost = false
			break
		}
		if !d.step() {
			break
		}
	}
	drained = <-d.done
	return d.max - d.budget, drained
}

// RunWindow drives the queue from the calling goroutine until the next
// pending event's time reaches limit, the queue drains, or the budget
// expires. It returns false only when the budget expired; a true return
// means the partition quiesced for this window (boundary reached or queue
// empty — the caller distinguishes via Queue.Len). The conch survives
// pauses: a kernel goroutine blocked mid-operation at a boundary parks on
// its resume channel exactly as it does across an ordinary handoff, and the
// next RunWindow call (from any goroutine, provided calls are externally
// ordered) picks the drive loop back up. The parallel delivery engine
// (internal/machine) calls this once per conservative time window.
func (d *Driver) RunWindow(limit event.Time) bool {
	d.limit = limit
	for {
		if d.mainLost {
			d.mainLost = false
			break
		}
		if !d.step() {
			break
		}
	}
	return <-d.done
}

// --- kernel-side API ---------------------------------------------------------

// rpc issues the operation and drives the event loop until this processor's
// response is ready or the conch moves to another goroutine. Called on the
// kernel goroutine, which holds the conch whenever kernel code runs.
func (p *Proc) rpc(r request) response {
	p.issue(r)
	d := p.drv
	for {
		if p.respReady {
			p.respReady = false
			return p.resp
		}
		if p.lostConch {
			// Another processor's kernel drives now; park until an event
			// resumes us (the response rides the handoff).
			p.lostConch = false
			return <-p.res
		}
		if !d.step() {
			// The run is over (drained or budget expired) with this kernel
			// still blocked mid-operation. Park forever: the machine observes
			// Done() == false, reports the deadlock, and rebuilds this
			// processor before the next run.
			return <-p.res
		}
	}
}

// Read performs a load and returns the accessed word with its block's
// coherence token.
func (p *Proc) Read(a mem.Addr) Value {
	return p.rpc(request{kind: opRead, addr: a}).value
}

// Write performs a store of a fresh value token (Word = 0).
func (p *Proc) Write(a mem.Addr) {
	p.rpc(request{kind: opWrite, addr: a})
}

// WriteWord stores a fresh token carrying the given word (for flags).
func (p *Proc) WriteWord(a mem.Addr, w uint64) {
	p.rpc(request{kind: opWrite, addr: a, word: w})
}

// Swap atomically exchanges the block's word, returning the old word. It is
// a synchronization access: the write buffer drains first and marked blocks
// self-invalidate after.
func (p *Proc) Swap(a mem.Addr, w uint64) uint64 {
	return p.rpc(request{kind: opSwap, addr: a, word: w, sync: true}).old
}

// Compute advances the processor by the given number of cycles.
func (p *Proc) Compute(cycles int64) {
	if cycles < 0 {
		panic("cpu: negative compute")
	}
	if cycles == 0 {
		return
	}
	p.rpc(request{kind: opCompute, cycles: cycles})
}

// ComputeInstr charges instruction-count work at the 3-issue rate of the
// paper's SuperSPARC model.
func (p *Proc) ComputeInstr(instructions int64) {
	p.Compute((instructions + 2) / 3)
}

// ReadSync is Read with the stall charged to synchronization (spin loops).
func (p *Proc) ReadSync(a mem.Addr) Value {
	return p.rpc(request{kind: opRead, addr: a, sync: true}).value
}

// Lock acquires a spin lock with test&set plus exponential backoff. The
// acquire loop spins on the swap itself — not on a plain test read —
// because every swap is a synchronization access that self-invalidates
// marked blocks: a plain-read spin on a stale tear-off copy of the lock
// word would never observe the release (the forward-progress hazard §3.3
// of the paper describes).
func (p *Proc) Lock(a mem.Addr) {
	backoff := int64(8)
	for {
		if p.rpc(request{kind: opSwap, addr: a, word: 1, sync: true, noFlush: true}).old == 0 {
			p.rpc(request{kind: opFlush})
			return
		}
		p.rpc(request{kind: opCompute, cycles: backoff, sync: true})
		if backoff < p.SpinBackoffMax {
			backoff *= 2
		}
	}
}

// Unlock releases a lock. It is a synchronization access (the write buffer
// drains before the releasing store and marked blocks self-invalidate), so
// weak ordering holds for data protected by the lock.
func (p *Proc) Unlock(a mem.Addr) {
	p.rpc(request{kind: opUnlock, addr: a})
}

// Barrier joins the machine-wide hardware barrier.
func (p *Proc) Barrier() {
	p.rpc(request{kind: opBarrier})
}

// Assert aborts the kernel with a diagnostic if cond is false; the failure
// surfaces as a run error. Use it for workload-level data-flow checks.
//
//dsi:coldpath
func (p *Proc) Assert(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf("proc %d assertion failed: %s", p.id, fmt.Sprintf(format, args...)))
	}
}

// --- driver side -------------------------------------------------------------

// Bind attaches the processor to the run's driver. The machine binds every
// processor before starting kernels; a pooled processor is re-bound each
// run.
func (p *Proc) Bind(d *Driver) {
	p.drv = d
	p.respReady = false
	p.lostConch = false
}

// Start launches the kernel goroutine and schedules the processor's start
// event at the current simulation time. The goroutine parks on the conch
// gate immediately; the start event hands it the conch with an empty
// response, exactly where the old design issued the kernel's first
// operation.
func (p *Proc) Start(k Kernel) {
	select {
	case <-p.gone: // drop a stale token from an unjoined previous run
	default:
	}
	go func() {
		defer func() { p.gone <- struct{}{} }()
		<-p.res // conch gate
		func() {
			defer func() {
				if r := recover(); r != nil {
					p.err = fmt.Errorf("%v", r)
				}
			}()
			k(p)
		}()
		p.haltDrain()
	}()
	p.resp = response{}
	p.q.AfterCall(0, resumeProc, p)
}

// Join blocks until the kernel goroutine launched by Start has fully
// exited. A halted processor's goroutine may still be unwinding its drive
// loop (reading lostConch) for a few instructions after the run's outcome
// is posted; the next run's Reset would race with that read. The machine
// joins every halted processor before reusing it. Join must only be called
// for a processor whose kernel has halted — a deadlocked kernel's goroutine
// is parked forever (the machine rebuilds such processors instead).
func (p *Proc) Join() {
	<-p.gone
}

// resumeProc is the static typed-event action every operation completion
// funnels through. Executed by the current conch holder: a self-resume just
// flags the response ready; resuming any other processor hands the conch
// over with a single channel send (the holder's drive loop then stops via
// lostConch/mainLost, set before the send so no queue state is touched
// after it).
//
//dsi:hotpath
func resumeProc(arg any) {
	p := arg.(*Proc)
	d := p.drv
	h := d.cur
	if h == p {
		p.respReady = true
		return
	}
	d.cur = p
	if h != nil {
		h.lostConch = true
	} else {
		d.mainLost = true
	}
	p.res <- p.resp
}

// issue starts executing the kernel's operation at the current simulated
// time. Runs on the kernel goroutine while it holds the conch — the same
// stream position the old central loop issued from.
func (p *Proc) issue(r request) {
	if p.OnOp != nil {
		p.OnOp(TraceOp{Kind: opNames[r.kind], Addr: r.addr, Word: r.word, Cycles: r.cycles, Sync: r.sync})
	}
	p.r = r
	p.start = p.q.Now()
	switch r.kind {
	case opCompute:
		cat := stats.Compute
		if r.sync {
			cat = stats.Sync
		}
		p.brk.Add(cat, r.cycles)
		p.resp = response{}
		p.q.AfterCall(event.Time(r.cycles), resumeProc, p)
	case opRead:
		p.cc.Read(r.addr, p.contRead)
	case opWrite:
		p.cc.Write(r.addr, p.token(r.word), p.contWrite)
	case opSwap:
		p.cc.DrainWB(p.contSwapDrained)
	case opUnlock:
		p.cc.DrainWB(p.contUnlockDrained)
	case opFlush:
		p.flushThen(p.contFlushFinish)
	case opBarrier:
		p.cc.DrainWB(p.contBarrierDrained)
	case opHalt:
		panic("cpu: halt is not an issued operation")
	}
}

// haltDrain marks the kernel halted and keeps driving the event loop until
// the conch moves on or the run ends — a halted processor cannot abandon the
// conch, or the simulation would stall with events pending. Runs on the
// kernel goroutine after the kernel function returns; the goroutine exits
// when this returns.
func (p *Proc) haltDrain() {
	if p.OnOp != nil {
		p.OnOp(TraceOp{Kind: opNames[opHalt]})
	}
	p.done = true
	p.halt = p.q.Now()
	d := p.drv
	for {
		if p.lostConch {
			p.lostConch = false
			return
		}
		if !d.step() {
			return
		}
	}
}

// finish charges one issue cycle, replies to the kernel, and continues.
func (p *Proc) finish(resp response) {
	p.brk.Add(stats.Compute, 1)
	p.resp = resp
	p.q.AfterCall(1, resumeProc, p)
}

// finishResp finishes with the response parked across a flush.
func (p *Proc) finishResp() { p.finish(p.pending) }

// onFlushFinish completes a standalone flush request.
func (p *Proc) onFlushFinish() { p.finish(response{}) }

func (p *Proc) chargeRead(start event.Time, res proto.Result, sync bool) {
	stall := int64(res.Done - start)
	switch {
	case sync:
		p.brk.Add(stats.Sync, stall)
	case res.WBRead:
		p.brk.Add(stats.ReadWB, stall)
	default:
		inv := int64(res.InvWait)
		if inv > stall {
			inv = stall
		}
		p.brk.Add(stats.ReadInval, inv)
		p.brk.Add(stats.ReadOther, stall-inv)
	}
}

// onRead completes a load (contRead).
func (p *Proc) onRead(res proto.Result) {
	p.chargeRead(p.start, res, p.r.sync)
	p.finish(response{value: loaded(res.Value, p.r.addr)})
}

// loaded projects block contents onto the kernel-visible Value.
func loaded(v mem.Value, a mem.Addr) Value {
	return Value{Writer: v.Writer, Seq: v.Seq, Word: v.WordAt(a)}
}

func (p *Proc) token(word uint64) proto.Store {
	p.seq++
	return proto.Store{Writer: p.id, Seq: p.seq, Word: word}
}

// onWrite completes a store (contWrite).
func (p *Proc) onWrite(res proto.Result) {
	stall := int64(res.Done - p.start)
	switch {
	case p.r.sync:
		p.brk.Add(stats.Sync, stall)
	default:
		full := int64(res.WBFullWait)
		if full > stall {
			full = stall
		}
		inv := int64(res.InvWait)
		if inv > stall-full {
			inv = stall - full
		}
		p.brk.Add(stats.WBFull, full)
		p.brk.Add(stats.WriteInval, inv)
		p.brk.Add(stats.WriteOther, stall-full-inv)
	}
	p.finish(response{})
}

// onSwapDrained continues a swap once the write buffer has drained — the
// full synchronization-access sequence is drain, swap, self-invalidate.
func (p *Proc) onSwapDrained() {
	drained := p.q.Now()
	p.brk.Add(stats.SyncWB, int64(drained-p.start))
	p.drained = drained
	p.cc.Swap(p.r.addr, p.r.word, p.token(p.r.word), p.contSwap)
}

// onSwap completes the swap access and runs the trailing flush (contSwap).
func (p *Proc) onSwap(res proto.Result) {
	if p.r.sync {
		p.brk.Add(stats.Sync, int64(res.Done-p.drained))
	} else {
		inv := int64(res.InvWait)
		stall := int64(res.Done - p.drained)
		if inv > stall {
			inv = stall
		}
		p.brk.Add(stats.WriteInval, inv)
		p.brk.Add(stats.WriteOther, stall-inv)
	}
	p.pending = response{old: res.OldWord, value: loaded(res.Value, p.r.addr)}
	if p.r.noFlush {
		p.finishResp()
	} else {
		p.flushThen(p.contFinishResp)
	}
}

// onUnlockDrained issues the releasing store once the buffer has drained.
func (p *Proc) onUnlockDrained() {
	drained := p.q.Now()
	p.brk.Add(stats.SyncWB, int64(drained-p.start))
	p.drained = drained
	p.cc.Write(p.r.addr, p.token(0), p.contUnlockWrite)
}

// onUnlockWrite completes the releasing store and flushes (contUnlockWrite).
func (p *Proc) onUnlockWrite(res proto.Result) {
	p.brk.Add(stats.Sync, int64(res.Done-p.drained))
	p.flushThen(p.contFlushFinish)
}

// onBarrierDrained flushes marked blocks before joining the barrier.
func (p *Proc) onBarrierDrained() {
	drained := p.q.Now()
	p.brk.Add(stats.SyncWB, int64(drained-p.start))
	p.flushThen(p.contBarrierFlushed)
}

// onBarrierFlushed parks the processor at the hardware barrier.
func (p *Proc) onBarrierFlushed() {
	p.arrived = p.q.Now()
	p.barrier.Arrive(p.contBarrierReleased)
}

// onBarrierReleased charges the barrier wait and resumes the kernel.
func (p *Proc) onBarrierReleased() {
	p.brk.Add(stats.Sync, int64(p.q.Now()-p.arrived))
	p.finish(response{})
}

// flushThen runs the DSI self-invalidation flush and charges its latency.
func (p *Proc) flushThen(cont func()) {
	p.flushStart = p.q.Now()
	p.flushNext = cont
	p.cc.SyncFlush(p.contFlushed)
}

// onFlushed charges the flush stall and continues (contFlushed).
func (p *Proc) onFlushed(res proto.Result) {
	p.brk.Add(stats.DSIStall, int64(res.Done-p.flushStart))
	next := p.flushNext
	p.flushNext = nil
	next()
}

// --- hardware barrier ---------------------------------------------------------

// Barrier is the machine-wide hardware barrier: all processors are released
// a fixed latency after the last arrival (100 cycles in the paper).
type Barrier struct {
	q       *event.Queue
	n       int
	latency event.Time
	waiting []func()
	// Episodes counts completed barrier episodes.
	Episodes int64
	// OnRelease, if set, runs at each release time with the episode number
	// (1-based). The machine uses it to end workload warm-up: statistics
	// are snapshotted when the declared number of initialization barriers
	// has completed.
	OnRelease func(episode int64)

	// Collect, if set, turns this barrier into the local port of an external
	// machine-wide barrier: every arrival is handed to the coordinator
	// instead of being tallied here, and the coordinator schedules the
	// release continuations itself. The parallel delivery engine installs
	// one collecting barrier per partition; Episodes, Waiting, and OnRelease
	// are then owned by the coordinator and stay unused on this instance.
	Collect func(at event.Time, cont func())
}

// NewBarrier builds a barrier for n processors.
func NewBarrier(q *event.Queue, n int, latency event.Time) *Barrier {
	return &Barrier{q: q, n: n, latency: latency}
}

// Arrive registers a processor; cont runs at release time.
func (b *Barrier) Arrive(cont func()) {
	if b.Collect != nil {
		b.Collect(b.q.Now(), cont)
		return
	}
	b.waiting = append(b.waiting, cont)
	if len(b.waiting) < b.n {
		return
	}
	ws := b.waiting
	// Keep the backing array: re-arrivals append only after the release
	// events run, so the next episode reuses it allocation-free.
	b.waiting = b.waiting[:0]
	b.Episodes++
	ep := b.Episodes
	release := b.q.Now() + b.latency
	if hook := b.OnRelease; hook != nil {
		b.q.At(release, func() { hook(ep) })
	}
	for _, w := range ws {
		b.q.At(release, w)
	}
}

// Waiting returns how many processors are currently parked at the barrier.
func (b *Barrier) Waiting() int { return len(b.waiting) }

// Reset clears all barrier state (parked processors, the episode counter,
// the release hook) and installs a new latency, for machine reuse.
func (b *Barrier) Reset(latency event.Time) {
	clear(b.waiting)
	b.waiting = b.waiting[:0]
	b.Episodes = 0
	b.OnRelease = nil
	b.Collect = nil
	b.latency = latency
}
