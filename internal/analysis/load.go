package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (or a synthetic path for ad-hoc
	// directories loaded by LoadDir).
	Path string
	// Dir is the directory holding the source files.
	Dir string
	// Fset is the file set shared by every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression, def, and use maps.
	Info *types.Info
	// Directives indexes the package's //dsi: annotations.
	Directives *Directives
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list` with args in dir and decodes the JSON package stream.
func goList(dir string, args ...string) ([]*listPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Loader loads and type-checks packages. Dependencies are imported from
// compiler export data produced by `go list -export`, so only the analyzed
// packages themselves are type-checked from source — the same pass model the
// x/tools multichecker uses.
type Loader struct {
	// Dir is the directory `go list` runs in (any directory inside the
	// module). Empty means the current directory.
	Dir string

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	ld := &Loader{Dir: dir, fset: token.NewFileSet(), exports: make(map[string]string)}
	ld.imp = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := ld.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(e)
	})
	return ld
}

// loadExports records export-data locations for the given patterns and their
// full dependency closure, building them as needed.
func (ld *Loader) loadExports(patterns []string) error {
	if len(patterns) == 0 {
		return nil
	}
	args := append([]string{"-e", "-export", "-json=ImportPath,Export", "-deps"}, patterns...)
	pkgs, err := goList(ld.Dir, args...)
	if err != nil {
		return err
	}
	for _, p := range pkgs {
		if p.Export != "" {
			ld.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// Load lists the packages matching patterns (skipping test binaries and
// packages with no Go files), loads export data for their dependencies, and
// type-checks each matched package from source.
func (ld *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(ld.Dir, append([]string{"-json=ImportPath,Dir,GoFiles,Standard,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	if err := ld.loadExports(patterns); err != nil {
		return nil, err
	}
	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := ld.check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the non-test .go files of a single
// directory that is not necessarily a listable package (e.g. an analyzer's
// testdata tree). Imports are resolved through the module the loader is
// rooted in, so testdata may import both standard-library and module
// packages.
func (ld *Loader) LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	// Parse first to learn the import set, then fetch export data for it.
	parsed, err := ld.parse(files)
	if err != nil {
		return nil, err
	}
	var imports []string
	seen := make(map[string]bool)
	for _, f := range parsed {
		for _, im := range f.Imports {
			path := strings.Trim(im.Path.Value, `"`)
			if path == "unsafe" || seen[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	if err := ld.loadExports(imports); err != nil {
		return nil, err
	}
	name := parsed[0].Name.Name
	return ld.checkParsed(name, dir, parsed)
}

func (ld *Loader) parse(files []string) ([]*ast.File, error) {
	var out []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(ld.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		out = append(out, af)
	}
	return out, nil
}

func (ld *Loader) check(path, dir string, files []string) (*Package, error) {
	parsed, err := ld.parse(files)
	if err != nil {
		return nil, err
	}
	return ld.checkParsed(path, dir, parsed)
}

func (ld *Loader) checkParsed(path, dir string, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: ld.imp}
	pkg, err := conf.Check(path, ld.fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:       path,
		Dir:        dir,
		Fset:       ld.fset,
		Files:      parsed,
		Pkg:        pkg,
		Info:       info,
		Directives: CollectDirectives(ld.fset, parsed, info),
	}, nil
}
