// Package determinism forbids nondeterminism sources in the simulation
// packages. The simulator's results must be bit-identical run to run (the
// kernel_determinism_test.go goldens depend on it, and so does every
// experiment comparison in EXPERIMENTS.md), which means simulation code may
// not observe wall-clock time, the process-global math/rand stream, map
// iteration order, or goroutine scheduling.
//
// Checked in the configured packages (internal/event, proto, netsim,
// machine, core, directory, cache by default):
//
//   - calls into package time that read the wall clock or create timers
//     (time.Now, Since, Until, Sleep, After, Tick, NewTimer, NewTicker,
//     AfterFunc);
//   - any import of math/rand or math/rand/v2 — simulation randomness must
//     come from internal/rng, whose streams are seeded and stable;
//   - go statements — concurrency belongs in internal/experiments, which
//     fans out whole (internally single-threaded) simulations — unless the
//     statement carries a //dsi:parmerge directive asserting the goroutine
//     is part of the vetted deterministic partition/merge machinery (the
//     parallel delivery engine in internal/machine/parallel.go), where the
//     coordinator's channel handshakes order every cross-goroutine access;
//   - range over a map, unless the statement carries a //dsi:anyorder
//     directive asserting the iteration order cannot reach simulation state
//     or output (e.g. directory.Dir.ForEach, whose callers sort).
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"dsisim/internal/analysis"
)

// timeBanned are the package-time functions that read the wall clock or
// introduce timer nondeterminism.
var timeBanned = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// DefaultSimPackages lists the packages whose results feed deterministic
// simulation state: the event kernel, the protocol engines, the network, the
// fault-injection plan, the machine assembly, the DSI policies, the hardware
// structures, the workload generators (whose construction and litmus
// fuzzing must be bit-identical across runs given a seed), and the result
// cache (whose keys and stored payloads stand in for real simulations).
var DefaultSimPackages = []string{
	"dsisim/internal/event",
	"dsisim/internal/proto",
	"dsisim/internal/netsim",
	"dsisim/internal/faultinj",
	"dsisim/internal/machine",
	"dsisim/internal/core",
	"dsisim/internal/directory",
	"dsisim/internal/cache",
	"dsisim/internal/blockmap",
	"dsisim/internal/workload",
	"dsisim/internal/simcache",
}

// New returns the analyzer; simPkg reports whether a package (by import
// path) is simulation code subject to the check.
func New(simPkg func(path string) bool) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "determinism",
		Doc:  "simulation packages must not use wall-clock time, global math/rand, map iteration, or goroutines",
		Run:  func(pass *analysis.Pass) error { return run(pass, simPkg) },
	}
}

// Default returns the analyzer configured for DefaultSimPackages.
func Default() *analysis.Analyzer {
	set := make(map[string]bool, len(DefaultSimPackages))
	for _, p := range DefaultSimPackages {
		set[p] = true
	}
	return New(func(path string) bool { return set[path] })
}

func run(pass *analysis.Pass, simPkg func(string) bool) error {
	if !simPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"simulation package imports %s; use internal/rng for seeded, stable streams", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if pass.Directives.Parmerge(pass.Fset, n.Pos()) {
					return true
				}
				pass.Reportf(n.Pos(),
					"goroutine spawned in simulation package; concurrency belongs in internal/experiments (or annotate //dsi:parmerge for vetted partition/merge code)")
			case *ast.RangeStmt:
				t := pass.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if pass.Directives.Anyorder(pass.Fset, n.Pos()) {
					return true
				}
				pass.Reportf(n.Pos(),
					"map iteration in simulation package; order can reach simulation state or output (sort keys, or annotate //dsi:anyorder with a justification)")
			case *ast.SelectorExpr:
				ident, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
				if !ok || pkgName.Imported().Path() != "time" {
					return true
				}
				if timeBanned[n.Sel.Name] {
					pass.Reportf(n.Pos(),
						"time.%s in simulation package; simulated time comes from the event queue", n.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
