package determinism_test

import (
	"path/filepath"
	"testing"

	"dsisim/internal/analysis/analysistest"
	"dsisim/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	a := determinism.New(func(path string) bool { return path == "a" })
	analysistest.Run(t, filepath.Join("testdata", "a"), a)
}

// TestNonSimPackageSkipped checks that the same fixture is accepted wholesale
// when the package is not classified as simulation code.
func TestNonSimPackageSkipped(t *testing.T) {
	a := determinism.New(func(path string) bool { return false })
	dir := filepath.Join("testdata", "skip")
	analysistest.Run(t, dir, a)
}
