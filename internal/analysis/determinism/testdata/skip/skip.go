// Fixture for TestNonSimPackageSkipped: nondeterminism that would be flagged
// in a simulation package draws no findings when the package is out of scope.
package skip

import "time"

func wallClock() time.Time {
	return time.Now() // no want: package is not simulation code
}

func mapIter(m map[int]int) {
	for range m {
	}
}
