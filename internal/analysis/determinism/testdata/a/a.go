// Test fixture for the determinism analyzer. The test configures the
// analyzer to treat package a as simulation code.
package a

import (
	_ "math/rand" // want `simulation package imports math/rand; use internal/rng`
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()      // want `time\.Now in simulation package`
	return time.Since(t0) // want `time\.Since in simulation package`
}

func timeTypesOK() time.Duration { // ok: time's types and constants are pure
	var d time.Duration = 3 * time.Millisecond
	return d
}

func spawn(ch chan int) {
	go wallClock() // want `goroutine spawned in simulation package`
	_ = ch
}

func spawnWaived(work func()) {
	//dsi:parmerge coordinator handshakes order all cross-goroutine state
	go work()
	go work() //dsi:parmerge trailing form also accepted
}

func mapIter(m map[int]int) int {
	s := 0
	for k := range m { // want `map iteration in simulation package`
		s += k
	}
	return s
}

func mapIterWaived(m map[int]int) int {
	s := 0
	//dsi:anyorder summing values is order-independent
	for _, v := range m {
		s += v
	}
	for _, v := range m { //dsi:anyorder trailing form also accepted
		s += v
	}
	return s
}

func sliceIter(xs []int) int { // ok: slice iteration is ordered
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}
