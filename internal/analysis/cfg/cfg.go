// Package cfg builds intraprocedural control-flow graphs from Go syntax and
// provides the two classic clients the dsivet analyzers need: dominator
// computation and a generic forward dataflow fixpoint over per-block facts.
//
// The package is deliberately small and dependency-free (PR 3's constraint:
// no module proxy, so no x/tools). It models structured Go control flow —
// if/for/range/switch/type-switch/select, labeled break/continue/goto,
// fallthrough — at statement granularity: each basic block holds a sequence
// of *leaf* statements (assignments, expression statements, declarations);
// compound statements are decomposed into blocks and edges, with the
// controlling condition or switch recorded on the branching block so
// dataflow clients can refine facts along True/False/Case edges.
//
// Calls to panic or to functions annotated //dsi:coldpath (panic-or-record
// error paths) are treated as terminal: the block dead-ends instead of
// flowing to the function exit. That is what lets clients prove properties
// like "all paths through this (state, kind) pair hit an assertion" (the
// protomodel analyzer) or "the fallthrough path of `if sk == nil { return }`
// has a non-nil sink" (the obssink analyzer).
package cfg

import (
	"go/ast"
)

// EdgeKind classifies an outgoing edge of a block.
type EdgeKind uint8

const (
	// EdgeNext is an unconditional successor edge.
	EdgeNext EdgeKind = iota
	// EdgeTrue is the taken branch of the block's Cond (or loop entry for a
	// range statement).
	EdgeTrue
	// EdgeFalse is the not-taken branch of the block's Cond (or loop exit
	// for a range statement).
	EdgeFalse
	// EdgeCase enters one case/comm clause of the block's Stmt (a switch,
	// type switch, or select); Edge.Case holds the clause.
	EdgeCase
	// EdgeDefault leaves a switch with no matching case: either into its
	// default clause (Edge.Case is the default clause) or past the switch
	// entirely (Edge.Case is nil).
	EdgeDefault
)

var edgeKindNames = [...]string{"next", "true", "false", "case", "default"}

func (k EdgeKind) String() string {
	if int(k) < len(edgeKindNames) {
		return edgeKindNames[k]
	}
	return "EdgeKind(?)"
}

// Edge is one control-flow edge out of a block.
type Edge struct {
	To   *Block
	Kind EdgeKind
	// Case is the case/comm clause this edge enters (EdgeCase, and
	// EdgeDefault when a default clause exists).
	Case ast.Node
}

// Block is a basic block: a run of leaf statements with a single entry and a
// branching exit described by Edges.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the leaf statements executed in order. Compound statements
	// never appear here; their conditions live on Cond/Stmt of the block
	// that branches. A range statement appears as a leaf of its own head
	// block (it assigns the iteration variables).
	Nodes []ast.Node
	// Cond is the boolean condition controlling EdgeTrue/EdgeFalse edges
	// (if/for conditions), or the switch tag expression for EdgeCase edges.
	// Nil for unconditional blocks, condition-less loops, expression-less
	// switches, type switches, and selects.
	Cond ast.Expr
	// Stmt is the compound statement this block branches for (*ast.IfStmt,
	// *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.ForStmt,
	// *ast.RangeStmt), letting clients distinguish e.g. an expression-less
	// switch from a type switch. Nil for plain blocks.
	Stmt ast.Stmt
	// Edges are the outgoing control-flow edges in source order.
	Edges []Edge
	// Preds are the blocks with an edge into this one.
	Preds []*Block
	// Live reports whether the block is reachable from Entry. Code after
	// return/panic produces dead blocks; dominators and dataflow skip them.
	Live bool
}

// Graph is one function body's control-flow graph.
type Graph struct {
	// Entry is the first block (it may carry leading statements).
	Entry *Block
	// Exit is the synthetic exit block every return flows to. Terminal calls
	// (panic, //dsi:coldpath) do NOT flow here.
	Exit *Block
	// Blocks lists every block; Entry is Blocks[0]. Exit's position depends
	// on when the first return materialized it.
	Blocks []*Block

	site   map[ast.Node]Site
	idom   []int // immediate dominators, computed lazily by Dominators
	rpo    []int // reverse postorder of live blocks
	rpoPos []int // block index -> position in rpo, built lazily
}

// Site locates a leaf statement inside a graph.
type Site struct {
	Block *Block
	// Index is the node's position in Block.Nodes.
	Index int
}

// SiteOf returns the block position of a leaf node emitted during
// construction, or ok=false for nodes that are not leaves of this graph
// (compound statements, nodes inside nested function literals).
func (g *Graph) SiteOf(n ast.Node) (Site, bool) {
	s, ok := g.site[n]
	return s, ok
}

// Options configures graph construction.
type Options struct {
	// IsTerminal reports whether a call expression never returns control to
	// the caller (panic or a //dsi:coldpath panic-or-record helper). A
	// statement consisting of such a call dead-ends its block.
	IsTerminal func(*ast.CallExpr) bool
}

// New builds the control-flow graph of body.
func New(body *ast.BlockStmt, opt Options) *Graph {
	b := &builder{
		g:     &Graph{site: make(map[ast.Node]Site)},
		opt:   opt,
		gotos: make(map[string]*Block),
		pends: make(map[string][]*Block),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = &Block{}
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.jumpDeferred(b.g.Exit) // falling off the end returns
	b.materialize(b.g.Exit)
	b.g.computeLiveness()
	return b.g
}

type loopFrame struct {
	label         string
	breakTo       *Block
	continueTo    *Block
	isSwitchOrSel bool // break applies, continue does not
}

type builder struct {
	g   *Graph
	opt Options
	cur *Block // nil when the current location is unreachable

	loops        []loopFrame
	pendingLabel string
	gotos        map[string]*Block   // label -> labeled block
	pends        map[string][]*Block // forward gotos awaiting their label
	inGraph      map[*Block]bool
	// fallFrom holds blocks ending in fallthrough, to be wired to the next
	// case clause's body block.
	fallFrom []*Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	if b.inGraph == nil {
		b.inGraph = make(map[*Block]bool)
	}
	b.inGraph[blk] = true
	return blk
}

// materialize adds a detached join block to the graph on first use.
func (b *builder) materialize(j *Block) *Block {
	if !b.inGraph[j] {
		j.Index = len(b.g.Blocks)
		b.g.Blocks = append(b.g.Blocks, j)
		b.inGraph[j] = true
	}
	return j
}

// ensure makes sure there is a current block to emit into, creating a dead
// (pred-less) block for statically unreachable code.
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

// emit records a leaf statement in the current block.
func (b *builder) emit(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.ensure()
	b.g.site[n] = Site{Block: blk, Index: len(blk.Nodes)}
	blk.Nodes = append(blk.Nodes, n)
	if b.terminalStmt(n) {
		b.cur = nil // panic/coldpath: control never continues
	}
}

// terminalStmt reports whether the leaf statement is a terminal call.
func (b *builder) terminalStmt(n ast.Node) bool {
	if b.opt.IsTerminal == nil {
		return false
	}
	if st, ok := n.(*ast.ExprStmt); ok {
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			return b.opt.IsTerminal(call)
		}
	}
	return false
}

func (b *builder) edge(from, to *Block, kind EdgeKind, clause ast.Node) {
	from.Edges = append(from.Edges, Edge{To: to, Kind: kind, Case: clause})
	to.Preds = append(to.Preds, from)
}

// jumpDeferred ends the current block (if live) with an edge to target,
// materializing target on demand.
func (b *builder) jumpDeferred(target *Block) {
	if b.cur == nil {
		return
	}
	b.edge(b.cur, b.materialize(target), EdgeNext, nil)
	b.cur = nil
}

// jumpTo links the current block (if live) to an in-graph block and makes it
// current.
func (b *builder) jumpTo(target *Block) {
	if b.cur != nil {
		b.edge(b.cur, target, EdgeNext, nil)
	}
	b.cur = target
}

// openJoin makes join the current block if anything flows into it.
func (b *builder) openJoin(join *Block) {
	if len(join.Preds) == 0 {
		b.cur = nil
		return
	}
	b.cur = b.materialize(join)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, st := range list {
		b.stmt(st)
	}
}

func (b *builder) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.IfStmt:
		b.emit(st.Init)
		cond := b.ensure()
		cond.Cond = st.Cond
		cond.Stmt = st
		join := &Block{}
		then := b.newBlock()
		b.edge(cond, then, EdgeTrue, nil)
		var els *Block
		if st.Else != nil {
			els = b.newBlock()
			b.edge(cond, els, EdgeFalse, nil)
		} else {
			b.edge(cond, b.materialize(join), EdgeFalse, nil)
		}
		b.cur = then
		b.stmt(st.Body)
		b.jumpDeferred(join)
		if els != nil {
			b.cur = els
			b.stmt(st.Else)
			b.jumpDeferred(join)
		}
		b.openJoin(join)

	case *ast.ForStmt:
		label := b.takeLabel()
		b.emit(st.Init)
		head := b.newBlock()
		b.jumpTo(head)
		head.Stmt = st
		join := &Block{}
		body := b.newBlock()
		post := head
		if st.Post != nil {
			post = &Block{}
		}
		if st.Cond != nil {
			head.Cond = st.Cond
			b.edge(head, body, EdgeTrue, nil)
			b.edge(head, b.materialize(join), EdgeFalse, nil)
		} else {
			b.edge(head, body, EdgeNext, nil)
		}
		b.loops = append(b.loops, loopFrame{label: label, breakTo: join, continueTo: post})
		b.cur = body
		b.stmt(st.Body)
		if st.Post != nil {
			b.jumpDeferred(post)
			b.openJoin(post)
			b.emit(st.Post)
			b.jumpTo(head)
			b.cur = nil
		} else {
			b.jumpTo(head)
			b.cur = nil
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.openJoin(join)

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.jumpTo(head)
		head.Stmt = st
		b.g.site[st] = Site{Block: head, Index: len(head.Nodes)}
		head.Nodes = append(head.Nodes, st)
		join := &Block{}
		body := b.newBlock()
		b.edge(head, body, EdgeTrue, nil)
		b.edge(head, b.materialize(join), EdgeFalse, nil)
		b.loops = append(b.loops, loopFrame{label: label, breakTo: join, continueTo: head})
		b.cur = body
		b.stmt(st.Body)
		b.jumpTo(head)
		b.cur = nil
		b.loops = b.loops[:len(b.loops)-1]
		b.openJoin(join)

	case *ast.SwitchStmt:
		b.emit(st.Init)
		tag := b.ensure()
		tag.Cond = st.Tag
		tag.Stmt = st
		b.caseClauses(tag, st.Body.List)

	case *ast.TypeSwitchStmt:
		b.emit(st.Init)
		tag := b.ensure()
		tag.Stmt = st
		if st.Assign != nil {
			b.g.site[st.Assign] = Site{Block: tag, Index: len(tag.Nodes)}
			tag.Nodes = append(tag.Nodes, st.Assign)
		}
		b.caseClauses(tag, st.Body.List)

	case *ast.SelectStmt:
		sel := b.ensure()
		sel.Stmt = st
		b.caseClauses(sel, st.Body.List)

	case *ast.LabeledStmt:
		lbl := b.newBlock()
		b.jumpTo(lbl)
		b.gotos[st.Label.Name] = lbl
		for _, from := range b.pends[st.Label.Name] {
			b.edge(from, lbl, EdgeNext, nil)
		}
		delete(b.pends, st.Label.Name)
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.emit(st)
		b.jumpDeferred(b.g.Exit)

	case *ast.BranchStmt:
		b.branch(st)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Leaf statements (assign, expr, decl, defer, go, send, incdec) and
		// any future statement kinds flow through as block contents.
		b.emit(st)
	}
}

// takeLabel consumes the label pending from an enclosing LabeledStmt.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// caseClauses builds the clause blocks of a switch/type-switch/select whose
// dispatch block is tag.
func (b *builder) caseClauses(tag *Block, clauses []ast.Stmt) {
	label := b.takeLabel()
	join := &Block{}
	b.cur = nil
	b.loops = append(b.loops, loopFrame{label: label, breakTo: join, isSwitchOrSel: true})

	type built struct {
		body []ast.Stmt
		blk  *Block
	}
	var list []built
	hasDefault := false
	for _, cs := range clauses {
		switch cs := cs.(type) {
		case *ast.CaseClause:
			blk := b.newBlock()
			kind := EdgeCase
			if cs.List == nil {
				kind = EdgeDefault
				hasDefault = true
			}
			b.edge(tag, blk, kind, cs)
			list = append(list, built{body: cs.Body, blk: blk})
		case *ast.CommClause:
			blk := b.newBlock()
			kind := EdgeCase
			if cs.Comm == nil {
				kind = EdgeDefault
				hasDefault = true
			}
			b.edge(tag, blk, kind, cs)
			b.cur = blk
			b.emit(cs.Comm)
			blk = b.ensure() // emit of a terminal comm is impossible; keep current
			list = append(list, built{body: cs.Body, blk: blk})
			b.cur = nil
		}
	}
	if !hasDefault {
		b.edge(tag, b.materialize(join), EdgeDefault, nil)
	}
	for _, c := range list {
		b.cur = c.blk
		for _, from := range b.fallFrom {
			b.edge(from, c.blk, EdgeNext, nil)
		}
		b.fallFrom = nil
		b.stmtList(c.body)
		b.jumpDeferred(join)
	}
	b.fallFrom = nil
	b.loops = b.loops[:len(b.loops)-1]
	b.openJoin(join)
}

func (b *builder) branch(st *ast.BranchStmt) {
	switch st.Tok.String() {
	case "break":
		for i := len(b.loops) - 1; i >= 0; i-- {
			fr := b.loops[i]
			if st.Label == nil || fr.label == st.Label.Name {
				b.jumpDeferred(fr.breakTo)
				return
			}
		}
		b.cur = nil
	case "continue":
		for i := len(b.loops) - 1; i >= 0; i-- {
			fr := b.loops[i]
			if fr.isSwitchOrSel {
				continue
			}
			if st.Label == nil || fr.label == st.Label.Name {
				b.jumpDeferred(fr.continueTo)
				return
			}
		}
		b.cur = nil
	case "goto":
		if st.Label == nil || b.cur == nil {
			b.cur = nil
			return
		}
		if target, ok := b.gotos[st.Label.Name]; ok {
			b.edge(b.cur, target, EdgeNext, nil)
			b.cur = nil
			return
		}
		b.pends[st.Label.Name] = append(b.pends[st.Label.Name], b.cur)
		b.cur = nil
	case "fallthrough":
		if b.cur != nil {
			b.fallFrom = append(b.fallFrom, b.cur)
			b.cur = nil
		}
	}
}

// computeLiveness marks blocks reachable from Entry and records a reverse
// postorder over them.
func (g *Graph) computeLiveness() {
	state := make([]uint8, len(g.Blocks))
	order := make([]int, 0, len(g.Blocks))
	var dfs func(*Block)
	dfs = func(b *Block) {
		if state[b.Index] != 0 {
			return
		}
		state[b.Index] = 1
		b.Live = true
		for _, e := range b.Edges {
			dfs(e.To)
		}
		order = append(order, b.Index)
	}
	dfs(g.Entry)
	g.rpo = make([]int, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		g.rpo = append(g.rpo, order[i])
	}
}

// ReversePostorder returns the indices of live blocks in reverse postorder
// (Entry first).
func (g *Graph) ReversePostorder() []int { return g.rpo }
