package cfg

// Forward dataflow: a generic worklist fixpoint over per-block facts. The
// client supplies the lattice operations; the engine supplies iteration
// order (reverse postorder), edge-sensitive refinement (so a `sk != nil`
// condition can strengthen the fact on its true edge), and termination
// (client Equal must define a finite-height lattice — every analyzer here
// uses finite sets, so this holds by construction).

// Analysis defines one forward dataflow problem over a Graph. F is the
// per-block fact type; facts are treated as immutable values (Transfer and
// Branch must not mutate their argument in place unless they own it).
type Analysis[F any] struct {
	// Entry is the fact at the graph entry.
	Entry F
	// Transfer applies block b's Nodes to the incoming fact and returns the
	// fact at the block's exit (before edge refinement).
	Transfer func(b *Block, f F) F
	// Branch refines the block-exit fact along edge e (using b.Cond/b.Stmt).
	// Returning ok=false marks the edge as contradicted — no fact flows
	// along it. A nil Branch passes facts through unrefined.
	Branch func(b *Block, e Edge, f F) (F, bool)
	// Merge joins two facts at a control-flow join.
	Merge func(a, b F) F
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal func(a, b F) bool
}

// Result holds the fixpoint facts of a forward dataflow run.
type Result[F any] struct {
	// In and Out are the block-entry and block-exit facts, indexed by block
	// index. They are meaningful only where Reached is true.
	In, Out []F
	// Reached reports whether any fact flowed into the block: false for
	// dead blocks and for blocks cut off by contradicted edges.
	Reached []bool
}

// Forward runs the analysis to fixpoint and returns the per-block facts.
func Forward[F any](g *Graph, a Analysis[F]) Result[F] {
	n := len(g.Blocks)
	res := Result[F]{In: make([]F, n), Out: make([]F, n), Reached: make([]bool, n)}
	entry := g.Entry.Index
	res.In[entry] = a.Entry
	res.Reached[entry] = true

	inWork := make([]bool, n)
	work := make([]int, 0, n)
	push := func(i int) {
		if !inWork[i] {
			inWork[i] = true
			work = append(work, i)
		}
	}
	push(entry)
	for len(work) > 0 {
		// Pop the block earliest in reverse postorder for fast convergence;
		// the work list is small, so a linear scan is fine.
		best := 0
		for i := 1; i < len(work); i++ {
			if rpoBefore(g, work[i], work[best]) {
				best = i
			}
		}
		bi := work[best]
		work[best] = work[len(work)-1]
		work = work[:len(work)-1]
		inWork[bi] = false

		b := g.Blocks[bi]
		out := a.Transfer(b, res.In[bi])
		res.Out[bi] = out
		for _, e := range b.Edges {
			f := out
			if a.Branch != nil {
				var ok bool
				f, ok = a.Branch(b, e, out)
				if !ok {
					continue
				}
			}
			ti := e.To.Index
			if !res.Reached[ti] {
				res.Reached[ti] = true
				res.In[ti] = f
				push(ti)
			} else {
				merged := a.Merge(res.In[ti], f)
				if !a.Equal(merged, res.In[ti]) {
					res.In[ti] = merged
					push(ti)
				}
			}
		}
	}
	return res
}

// rpoBefore reports whether block index a precedes b in reverse postorder.
func rpoBefore(g *Graph, a, b int) bool {
	// Lazily build the position table on the graph.
	if g.rpoPos == nil {
		g.rpoPos = make([]int, len(g.Blocks))
		for i := range g.rpoPos {
			g.rpoPos[i] = int(^uint(0) >> 1) // dead blocks sort last
		}
		for pos, bi := range g.rpo {
			g.rpoPos[bi] = pos
		}
	}
	return g.rpoPos[a] < g.rpoPos[b]
}
