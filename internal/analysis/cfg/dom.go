package cfg

// Dominator computation: the iterative algorithm of Cooper, Harvey and
// Kennedy ("A Simple, Fast Dominance Algorithm") over the live blocks in
// reverse postorder. Handler CFGs here are tiny (tens of blocks), so the
// simple O(n^2) worst case is irrelevant and the implementation's
// obviousness wins.

// Dominators computes (and caches) the immediate-dominator relation over
// live blocks. It returns a slice indexed by block index: idom[i] is the
// index of block i's immediate dominator, idom[Entry] == Entry's own index,
// and -1 for dead blocks.
func (g *Graph) Dominators() []int {
	if g.idom != nil {
		return g.idom
	}
	n := len(g.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	// rpoPos[i] = position of block i in reverse postorder, for intersect.
	rpoPos := make([]int, n)
	for i := range rpoPos {
		rpoPos[i] = -1
	}
	for pos, bi := range g.rpo {
		rpoPos[bi] = pos
	}
	intersect := func(a, b int) int {
		for a != b {
			for rpoPos[a] > rpoPos[b] {
				a = idom[a]
			}
			for rpoPos[b] > rpoPos[a] {
				b = idom[b]
			}
		}
		return a
	}
	entry := g.Entry.Index
	idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, bi := range g.rpo {
			if bi == entry {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[bi].Preds {
				if !p.Live || idom[p.Index] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p.Index
				} else {
					newIdom = intersect(newIdom, p.Index)
				}
			}
			if newIdom != -1 && idom[bi] != newIdom {
				idom[bi] = newIdom
				changed = true
			}
		}
	}
	g.idom = idom
	return idom
}

// Dominates reports whether block a dominates block b (reflexively). Dead
// blocks dominate nothing and are dominated by nothing.
func (g *Graph) Dominates(a, b *Block) bool {
	if !a.Live || !b.Live {
		return false
	}
	idom := g.Dominators()
	entry := g.Entry.Index
	for i := b.Index; ; i = idom[i] {
		if i == a.Index {
			return true
		}
		if i == entry || idom[i] == -1 {
			return false
		}
	}
}
