package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of a function and returns its CFG, with
// calls to fail(...) treated as terminal.
func parseBody(t *testing.T, src string) (*Graph, *ast.FuncDecl) {
	t.Helper()
	file := "package p\nfunc fail(args ...any) {}\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, file)
	}
	var fd *ast.FuncDecl
	for _, d := range f.Decls {
		if d, ok := d.(*ast.FuncDecl); ok && d.Name.Name == "f" {
			fd = d
		}
	}
	g := New(fd.Body, Options{IsTerminal: func(call *ast.CallExpr) bool {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && (id.Name == "panic" || id.Name == "fail")
	}})
	return g, fd
}

// liveCount returns the number of live blocks.
func liveCount(g *Graph) int {
	n := 0
	for _, b := range g.Blocks {
		if b.Live {
			n++
		}
	}
	return n
}

func TestStraightLine(t *testing.T) {
	g, _ := parseBody(t, "x := 1\n_ = x\nreturn")
	if len(g.Entry.Nodes) != 3 { // x := 1, _ = x, return
		t.Fatalf("entry nodes = %d, want 3", len(g.Entry.Nodes))
	}
	if !g.Exit.Live {
		t.Fatal("exit unreachable in straight-line code")
	}
}

func TestIfElseJoin(t *testing.T) {
	g, _ := parseBody(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`)
	// entry(cond) -> then, else -> join -> exit
	if got := liveCount(g); got != 5 {
		t.Fatalf("live blocks = %d, want 5", got)
	}
	if g.Entry.Cond == nil {
		t.Fatal("entry block should carry the if condition")
	}
	var kinds []string
	for _, e := range g.Entry.Edges {
		kinds = append(kinds, e.Kind.String())
	}
	if strings.Join(kinds, ",") != "true,false" {
		t.Fatalf("entry edges = %v, want true,false", kinds)
	}
}

func TestTerminalCallDeadEnds(t *testing.T) {
	g, _ := parseBody(t, `
x := 1
if x == 0 {
	fail("no")
}
_ = x`)
	// The fail block must not reach exit, but the fallthrough path must.
	if !g.Exit.Live {
		t.Fatal("exit should be reachable via the non-fail path")
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "fail" {
					if len(b.Edges) != 0 {
						t.Fatalf("fail block has %d out-edges, want 0", len(b.Edges))
					}
				}
			}
		}
	}
}

func TestAllPathsFail(t *testing.T) {
	g, _ := parseBody(t, `fail("always")`)
	if g.Exit.Live {
		t.Fatal("exit reachable although every path fails")
	}
}

func TestSwitchEdges(t *testing.T) {
	g, _ := parseBody(t, `
x := 1
switch x {
case 1:
	x = 10
case 2, 3:
	x = 20
default:
	x = 30
}
_ = x`)
	var caseEdges, defEdges int
	for _, e := range g.Entry.Edges {
		switch e.Kind {
		case EdgeCase:
			caseEdges++
			if e.Case == nil {
				t.Fatal("case edge without clause")
			}
		case EdgeDefault:
			defEdges++
			if e.Case == nil {
				t.Fatal("default edge should carry the default clause")
			}
		case EdgeNext, EdgeTrue, EdgeFalse:
			t.Fatalf("unexpected edge kind %v out of switch block", e.Kind)
		}
	}
	if caseEdges != 2 || defEdges != 1 {
		t.Fatalf("case=%d default=%d, want 2/1", caseEdges, defEdges)
	}
}

func TestSwitchWithoutDefaultFallsPast(t *testing.T) {
	g, _ := parseBody(t, `
x := 1
switch x {
case 1:
	x = 10
}
_ = x`)
	found := false
	for _, e := range g.Entry.Edges {
		if e.Kind == EdgeDefault && e.Case == nil {
			found = true
		}
	}
	if !found {
		t.Fatal("missing implicit default edge past the switch")
	}
}

func TestFallthrough(t *testing.T) {
	g, _ := parseBody(t, `
x := 1
switch x {
case 1:
	x = 10
	fallthrough
case 2:
	x = 20
}
_ = x`)
	// The case-1 block must have an out edge directly into the case-2 block.
	var c1, c2 *Block
	for _, e := range g.Entry.Edges {
		cc, ok := e.Case.(*ast.CaseClause)
		if !ok || len(cc.List) == 0 {
			continue
		}
		if lit, ok := cc.List[0].(*ast.BasicLit); ok {
			switch lit.Value {
			case "1":
				c1 = e.To
			case "2":
				c2 = e.To
			}
		}
	}
	if c1 == nil || c2 == nil {
		t.Fatal("case blocks not found")
	}
	ok := false
	for _, e := range c1.Edges {
		if e.To == c2 {
			ok = true
		}
	}
	if !ok {
		t.Fatal("fallthrough edge case1 -> case2 missing")
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g, _ := parseBody(t, `
s := 0
for i := 0; i < 10; i++ {
	if i == 3 {
		continue
	}
	if i == 7 {
		break
	}
	s += i
}
_ = s`)
	if !g.Exit.Live {
		t.Fatal("exit unreachable")
	}
	// Find the loop head (block whose Stmt is the ForStmt with a Cond).
	var head *Block
	for _, b := range g.Blocks {
		if _, ok := b.Stmt.(*ast.ForStmt); ok && b.Cond != nil {
			head = b
		}
	}
	if head == nil {
		t.Fatal("loop head not found")
	}
	if len(head.Preds) < 2 {
		t.Fatalf("loop head preds = %d, want >= 2 (entry + back edge)", len(head.Preds))
	}
}

func TestRangeLoop(t *testing.T) {
	g, _ := parseBody(t, `
s := 0
for _, v := range []int{1, 2} {
	s += v
}
_ = s`)
	var head *Block
	for _, b := range g.Blocks {
		if _, ok := b.Stmt.(*ast.RangeStmt); ok {
			head = b
		}
	}
	if head == nil {
		t.Fatal("range head not found")
	}
	var kinds []string
	for _, e := range head.Edges {
		kinds = append(kinds, e.Kind.String())
	}
	if strings.Join(kinds, ",") != "true,false" {
		t.Fatalf("range head edges = %v, want true,false", kinds)
	}
	if !g.Exit.Live {
		t.Fatal("exit unreachable")
	}
}

func TestLabeledBreak(t *testing.T) {
	g, _ := parseBody(t, `
outer:
for i := 0; i < 4; i++ {
	for j := 0; j < 4; j++ {
		if i*j > 4 {
			break outer
		}
	}
}
return`)
	if !g.Exit.Live {
		t.Fatal("exit unreachable with labeled break")
	}
}

func TestGotoBackward(t *testing.T) {
	g, _ := parseBody(t, `
i := 0
loop:
i++
if i < 3 {
	goto loop
}
_ = i`)
	if !g.Exit.Live {
		t.Fatal("exit unreachable")
	}
	// The labeled block must have two preds: fallthrough and the goto.
	found := false
	for _, b := range g.Blocks {
		if b.Live && len(b.Preds) >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no block with goto back edge")
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	g, _ := parseBody(t, `
return
x := 1
_ = x`)
	dead := 0
	for _, b := range g.Blocks {
		if !b.Live && len(b.Nodes) > 0 {
			dead++
		}
	}
	if dead == 0 {
		t.Fatal("statements after return should land in a dead block")
	}
}

func TestDominators(t *testing.T) {
	g, _ := parseBody(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x
if x > 1 {
	x = 4
}
_ = x`)
	idom := g.Dominators()
	entry := g.Entry
	if idom[entry.Index] != entry.Index {
		t.Fatal("entry must be its own idom")
	}
	// Entry dominates everything live; neither arm of the first if dominates
	// the join.
	var then1 *Block
	for _, e := range entry.Edges {
		if e.Kind == EdgeTrue {
			then1 = e.To
		}
	}
	if then1 == nil {
		t.Fatal("no true edge from entry")
	}
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		if !g.Dominates(entry, b) {
			t.Fatalf("entry does not dominate live block %d", b.Index)
		}
	}
	if g.Dominates(then1, g.Exit) {
		t.Fatal("then-arm must not dominate exit")
	}
}

// TestForwardNilness runs the dataflow engine on the canonical obssink
// shape: a fact set of "proven non-nil" variable names with intersection
// merge and refinement on nil-comparison edges.
func TestForwardNilness(t *testing.T) {
	g, _ := parseBody(t, `
var sk *int
if sk != nil {
	_ = *sk // A: non-nil here
}
_ = sk // B: unknown here
if sk == nil {
	return
}
_ = *sk // C: non-nil here`)

	type fact map[string]bool
	clone := func(f fact) fact {
		c := make(fact, len(f))
		for k, v := range f {
			c[k] = v
		}
		return c
	}
	res := Forward(g, Analysis[fact]{
		Entry:    fact{},
		Transfer: func(b *Block, f fact) fact { return f },
		Branch: func(b *Block, e Edge, f fact) (fact, bool) {
			be, ok := ast.Unparen(b.Cond).(*ast.BinaryExpr)
			if !ok {
				return f, true
			}
			id, ok := ast.Unparen(be.X).(*ast.Ident)
			if !ok {
				return f, true
			}
			op := be.Op.String()
			nonNilEdge := (op == "!=" && e.Kind == EdgeTrue) || (op == "==" && e.Kind == EdgeFalse)
			if nonNilEdge {
				f = clone(f)
				f[id.Name] = true
			}
			return f, true
		},
		Merge: func(a, b fact) fact {
			m := fact{}
			for k := range a {
				if b[k] {
					m[k] = true
				}
			}
			return m
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	})

	// Locate the three _ = ... statements by their block facts.
	var comments []bool // non-nil status at each `_ = ...` site in order
	for _, bi := range g.ReversePostorder() {
		b := g.Blocks[bi]
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 {
				continue
			}
			if id, ok := as.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
				continue
			}
			comments = append(comments, res.Reached[bi] && res.In[bi]["sk"])
		}
	}
	want := []bool{true, false, true}
	if len(comments) != len(want) {
		t.Fatalf("found %d probe sites, want %d", len(comments), len(want))
	}
	for i := range want {
		if comments[i] != want[i] {
			t.Fatalf("probe %d: non-nil=%v, want %v", i, comments[i], want[i])
		}
	}
}

// TestBranchCanKillEdges checks that a Branch returning ok=false cuts
// downstream blocks off (Reached=false).
func TestBranchCanKillEdges(t *testing.T) {
	g, _ := parseBody(t, `
x := 1
if x == 1 {
	x = 2
} else {
	x = 3
}
_ = x`)
	type unit struct{}
	res := Forward(g, Analysis[unit]{
		Transfer: func(b *Block, f unit) unit { return f },
		Branch: func(b *Block, e Edge, f unit) (unit, bool) {
			// Pretend the condition is statically true: kill false edges.
			if b.Cond != nil && e.Kind == EdgeFalse {
				return f, false
			}
			return f, true
		},
		Merge: func(a, b unit) unit { return a },
		Equal: func(a, b unit) bool { return true },
	})
	// The else block (x = 3) must be unreached.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == "3" {
				if res.Reached[b.Index] {
					t.Fatal("killed edge still reached the else block")
				}
			}
		}
	}
	if !res.Reached[g.Exit.Index] {
		t.Fatal("exit should stay reachable through the true edge")
	}
}

func TestSiteOf(t *testing.T) {
	g, fd := parseBody(t, `
x := 1
if x > 0 {
	x = 2
}
_ = x`)
	n := 0
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch node.(type) {
		case *ast.AssignStmt:
			if _, ok := g.SiteOf(node); !ok {
				t.Fatalf("no site for assignment %v", node)
			}
			n++
		}
		return true
	})
	if n != 3 {
		t.Fatalf("probed %d assignments, want 3", n)
	}
}

func TestEdgeKindString(t *testing.T) {
	want := map[EdgeKind]string{
		EdgeNext: "next", EdgeTrue: "true", EdgeFalse: "false",
		EdgeCase: "case", EdgeDefault: "default",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("EdgeKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if EdgeKind(250).String() != "EdgeKind(?)" {
		t.Fatal("out-of-range EdgeKind should stringify to placeholder")
	}
}
