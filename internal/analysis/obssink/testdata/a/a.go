// Test fixture for the obssink analyzer: emission sites against *obs.Sink in
// guarded and unguarded shapes. The fixture imports the real obs package so
// the method set and receiver type match production call sites.
package a

import (
	"dsisim/internal/event"
	"dsisim/internal/faultinj"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
	"dsisim/internal/obs"
)

type env struct {
	sink *obs.Sink
	now  event.Time
}

func (e *env) guardedBranch(b mem.Addr) {
	if e.sink != nil {
		e.sink.OnTxnEnd(e.now, 0, b, 1, 2) // ok: in-branch guard
	}
}

func (e *env) guardedBound(b mem.Addr) {
	if sk := e.sink; sk != nil {
		sk.OnTxnEnd(e.now, 0, b, 1, 2) // ok: bound guard
	}
}

func (e *env) guardedConjunct(b mem.Addr, hot bool) {
	if hot && e.sink != nil {
		e.sink.OnTxnEnd(e.now, 0, b, 1, 2) // ok: non-nil conjunct
	}
}

func (e *env) guardedEarlyExit(b mem.Addr) {
	sk := e.sink
	if sk == nil {
		return
	}
	sk.OnTxnStart(e.now, 0, b, 1, 2, 0) // ok: early-exit dominator
	sk.OnTxnEnd(e.now, 0, b, 1, 2)      // ok: same dominator
}

func (e *env) guardedInLoop(bs []mem.Addr) {
	for _, b := range bs {
		if e.sink == nil {
			continue
		}
		e.sink.OnTxnEnd(e.now, 0, b, 1, 2) // ok: continue skips the iteration
	}
}

func (e *env) unguarded(b mem.Addr) {
	e.sink.OnTxnEnd(e.now, 0, b, 1, 2) // want `unguarded obs emission e\.sink\.OnTxnEnd`
}

func (e *env) wrongReceiverGuard(b mem.Addr, other *obs.Sink) {
	if other != nil {
		e.sink.OnTxnEnd(e.now, 0, b, 1, 2) // want `unguarded obs emission`
	}
}

func (e *env) elseBranch(b mem.Addr) {
	if e.sink != nil {
		_ = b
	} else {
		e.sink.OnTxnEnd(e.now, 0, b, 1, 2) // want `unguarded obs emission`
	}
}

func (e *env) disjunctNotEnough(b mem.Addr, hot bool) {
	if hot || e.sink != nil {
		e.sink.OnTxnEnd(e.now, 0, b, 1, 2) // want `unguarded obs emission`
	}
}

func (e *env) guardAfterCall(b mem.Addr) {
	e.sink.OnTxnEnd(e.now, 0, b, 1, 2) // want `unguarded obs emission`
	if e.sink == nil {
		return
	}
}

func (e *env) closureEscapesGuard(b mem.Addr) func() {
	if e.sink != nil {
		return func() {
			e.sink.OnTxnEnd(e.now, 0, b, 1, 2) // want `unguarded obs emission`
		}
	}
	return nil
}

func (e *env) readSideBare() int {
	return e.sink.Len() // ok: read-side methods are nil-safe queries
}

func (e *env) faultGuarded(m netsim.Message) {
	if e.sink != nil {
		e.sink.MsgFault(e.now, m, faultinj.Drop, 0) // ok: in-branch guard
	}
}

func (e *env) faultUnguarded(m netsim.Message) {
	e.sink.MsgFault(e.now, m, faultinj.Drop, 0) // want `unguarded obs emission e\.sink\.MsgFault`
}

func (e *env) retryTimeoutGuarded(b mem.Addr) {
	if sk := e.sink; sk != nil {
		sk.OnRetryTimeout(e.now, 0, b, 1, 2, false) // ok: bound guard
	}
}

func (e *env) retryTimeoutUnguarded(b mem.Addr) {
	e.sink.OnRetryTimeout(e.now, 0, b, 1, 2, false) // want `unguarded obs emission`
}

// The cases below exercise the PR 8 dataflow semantics: patterns the old
// syntactic checker got wrong in either direction.

func (e *env) reassignedAfterGuard(b mem.Addr) {
	if e.sink == nil {
		return
	}
	e.sink = nil                       // kill: the guard no longer holds
	e.sink.OnTxnEnd(e.now, 0, b, 1, 2) // want `unguarded obs emission`
}

func (e *env) boundAfterGuard(b mem.Addr) {
	if e.sink == nil {
		return
	}
	sk := e.sink                        // propagation: sk inherits non-nilness
	sk.OnTxnEnd(e.now, 0, b, 1, 2)      // ok: assignment propagation
	sk.OnTxnStart(e.now, 0, b, 1, 2, 0) // ok: still bound
}

func (e *env) reboundToUnknown(b mem.Addr, other *obs.Sink) {
	sk := e.sink
	if sk == nil {
		return
	}
	sk = other                     // kill: rebound to unknown value
	sk.OnTxnEnd(e.now, 0, b, 1, 2) // want `unguarded obs emission`
}

func (e *env) switchGuard(b mem.Addr) {
	switch {
	case e.sink == nil:
		return
	default:
	}
	e.sink.OnTxnEnd(e.now, 0, b, 1, 2) // ok: expression-less switch guard
}

func (e *env) elseOfNilCheck(b mem.Addr) {
	if e.sink == nil {
		_ = b
	} else {
		e.sink.OnTxnEnd(e.now, 0, b, 1, 2) // ok: else edge proves non-nil
	}
}

func (e *env) guardThenLoop(bs []mem.Addr) {
	if e.sink == nil {
		return
	}
	for _, b := range bs {
		e.sink.OnTxnEnd(e.now, 0, b, 1, 2) // ok: guard dominates the loop
	}
}

func (e *env) methodValueGuarded(b mem.Addr) func(event.Time) {
	if e.sink == nil {
		return nil
	}
	end := e.sink.OnTxnEnd // ok: bound under the guard
	return func(now event.Time) { end(now, 0, b, 1, 2) }
}

func (e *env) methodValueUnguarded() func(event.Time, int, mem.Addr, uint64, int) {
	return e.sink.OnTxnEnd // want `unguarded obs emission method value`
}

// netEnv exercises the netsim.Observer receiver surface: emissions through
// the interface are under the same contract as *obs.Sink's methods.
type netEnv struct {
	obs netsim.Observer
	now event.Time
}

func (n *netEnv) deliverGuarded(m netsim.Message) {
	if n.obs != nil {
		n.obs.MsgDelivered(n.now, m) // ok: in-branch guard
	}
}

func (n *netEnv) sentEarlyExit(m netsim.Message, arrive event.Time) {
	if n.obs == nil {
		return
	}
	n.obs.MsgSent(n.now, m, arrive) // ok: early-exit dominator
}

func (n *netEnv) faultUnguardedObserver(m netsim.Message) {
	n.obs.MsgFault(n.now, m, faultinj.Delay, 3) // want `unguarded obs emission n\.obs\.MsgFault`
}
