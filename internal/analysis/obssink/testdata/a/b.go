// Second file of the obssink fixture: guards and emissions split across
// files of one package, sinks reached through map indexes (each index
// re-reads the map, so a guard on one read proves nothing about the next),
// and more method-value shapes.
package a

import (
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/obs"
)

// crossFileGuarded is declared here over a.go's env type: the dataflow must
// resolve the receiver and its sink field across files.
func (e *env) crossFileGuarded(b mem.Addr) {
	if e.sink != nil {
		e.sink.OnTxnStart(e.now, 0, b, 1, 2, 0)
	}
}

func (e *env) crossFileUnguarded(b mem.Addr) {
	e.sink.OnTxnStart(e.now, 0, b, 1, 2, 0) // want `unguarded obs emission e\.sink\.OnTxnStart`
}

type registry struct {
	sinks map[int]*obs.Sink
	now   event.Time
}

// mapIndexRebound is the sound shape for map-held sinks: bind the element
// once, guard the binding, emit through it.
func (r *registry) mapIndexRebound(i int, b mem.Addr) {
	sk := r.sinks[i]
	if sk == nil {
		return
	}
	sk.OnTxnEnd(r.now, 0, b, 1, 2)
}

// mapIndexReread re-reads the map at the emission, so the guard on the
// first read proves nothing about the second.
func (r *registry) mapIndexReread(i int, b mem.Addr) {
	if r.sinks[i] != nil {
		r.sinks[i].OnTxnEnd(r.now, 0, b, 1, 2) // want `unguarded obs emission`
	}
}

// methodValueFromMap binds an emission method value off a map element; the
// binding site must itself be guarded.
func (r *registry) methodValueFromMap(i int) func(event.Time, int, mem.Addr, uint64, int) {
	return r.sinks[i].OnTxnEnd // want `unguarded obs emission method value`
}

func (r *registry) methodValueFromMapGuarded(i int) func(event.Time, int, mem.Addr, uint64, int) {
	sk := r.sinks[i]
	if sk == nil {
		return nil
	}
	return sk.OnTxnEnd
}

// methodValueArg passes the method value straight into a helper — creation
// is the emission point, argument position included.
func (r *registry) methodValueArg(i int, apply func(func(event.Time, int, mem.Addr, uint64, int))) {
	apply(r.sinks[i].OnTxnEnd) // want `unguarded obs emission method value`
}
