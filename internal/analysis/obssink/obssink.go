// Package obssink checks that every coherence-event emission into an
// *obs.Sink is dominated by a nil-sink check, making PR 2's zero-overhead
// contract (DESIGN.md §6) a compile-time property.
//
// Sink methods are nil-safe by construction, but the contract in
// internal/obs requires emitting call sites to branch on the sink *before*
// computing event arguments, so a machine built without observability runs
// the exact allocation-free steady state PR 1 established. An unguarded
// emission still computes and boxes its arguments on every call; this
// analyzer catches the sites the obs_allocs_test.go golden would only catch
// when the missed guard happens to sit on the benchmarked path.
//
// Accepted guard shapes (for receiver expression R, compared structurally,
// or by object identity for plain identifiers):
//
//	if R != nil { ... R.OnFoo(...) ... }         // in-branch guard
//	if sk := e.Sink; sk != nil { sk.OnFoo(...) } // bound guard
//	if R == nil { return }; ...; R.OnFoo(...)    // early-exit dominator
//
// The early-exit form also accepts panic, continue, and break as the
// terminating statement.
//
// The checked surfaces are configurable (New): each Receiver names a type by
// package path and type name plus the producer-side methods whose call sites
// must be dominated by a guard. The default set covers *obs.Sink's emission
// methods — including its netsim.Observer implementation (MsgSent,
// MsgDelivered, MsgFault) and the hardened-protocol OnRetryTimeout — and the
// netsim.Observer interface itself, so netsim's own emission sites through
// its observer field are held to the same contract.
package obssink

import (
	"go/ast"
	"go/types"

	"dsisim/internal/analysis"
)

// Receiver names one guarded emission surface: a (pointer-to-)named type or
// interface identified by defining package path and type name, plus the
// producer-side methods whose call sites must be dominated by a nil check of
// the receiver expression. Read-side methods (queries that are nil-safe and
// allocation-free) are simply left off the Methods list.
type Receiver struct {
	// Path is the import path of the package defining the type.
	Path string
	// Type is the type name within that package.
	Type string
	// Methods are the emission methods to check.
	Methods []string
	// SelfExempt skips call sites inside the defining package itself — for
	// types whose methods implement the nil-safety (obs.Sink's producer
	// methods nil-check their receiver internally). Leave false for
	// interfaces like netsim.Observer, where the defining package is
	// exactly the emitter under contract.
	SelfExempt bool
}

// DefaultReceivers is the emission surface the dsivet suite checks.
func DefaultReceivers() []Receiver {
	return []Receiver{
		{
			Path: "dsisim/internal/obs",
			Type: "Sink",
			Methods: []string{
				"MsgSent", "MsgDelivered", "MsgFault",
				"OnCacheState", "OnDirState", "OnSelfInval",
				"OnTearOffGrant", "OnTxnStart", "OnTxnEnd",
				"OnRetryTimeout",
			},
			SelfExempt: true,
		},
		{
			Path:    "dsisim/internal/netsim",
			Type:    "Observer",
			Methods: []string{"MsgSent", "MsgDelivered", "MsgFault"},
		},
	}
}

// checker is the configured analyzer state: receivers indexed by method name
// for the fast reject on non-emission calls.
type checker struct {
	recvs    []Receiver
	byMethod map[string][]int // method name -> indices into recvs
}

// New returns an obssink analyzer checking the given receiver surfaces.
func New(recvs []Receiver) *analysis.Analyzer {
	c := &checker{recvs: recvs, byMethod: make(map[string][]int)}
	for i, r := range recvs {
		for _, m := range r.Methods {
			c.byMethod[m] = append(c.byMethod[m], i)
		}
	}
	return &analysis.Analyzer{
		Name: "obssink",
		Doc:  "obs emission sites must be dominated by a nil-sink check",
		Run:  c.run,
	}
}

// Analyzer is the obssink checker over the default receiver set.
func Analyzer() *analysis.Analyzer {
	return New(DefaultReceivers())
}

func (c *checker) run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			candidates := c.byMethod[se.Sel.Name]
			if len(candidates) == 0 {
				return true
			}
			rt := pass.TypeOf(se.X)
			matched := false
			for _, i := range candidates {
				r := &c.recvs[i]
				if !isReceiverType(rt, r) {
					continue
				}
				if r.SelfExempt && pass.Pkg.Path() == r.Path {
					return true
				}
				matched = true
				break
			}
			if !matched {
				return true
			}
			if guarded(pass, parents, call, se.X) {
				return true
			}
			pass.Reportf(call.Pos(),
				"unguarded obs emission %s.%s; dominate it with a nil-sink check (if sink != nil { ... })",
				types.ExprString(se.X), se.Sel.Name)
			return true
		})
	}
	return nil
}

// isReceiverType reports whether t is r's named type, a pointer to it, or
// (for interface receivers) the named interface itself.
func isReceiverType(t types.Type, r *Receiver) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == r.Type && obj.Pkg() != nil && obj.Pkg().Path() == r.Path
}

// parentMap indexes every node's parent within f.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// guarded reports whether the call at node is dominated by a nil check of
// recv: an enclosing `if recv != nil` taken-branch, or an earlier
// `if recv == nil { return/panic/continue/break }` in an enclosing block.
func guarded(pass *analysis.Pass, parents map[ast.Node]ast.Node, node ast.Node, recv ast.Expr) bool {
	child := ast.Node(node)
	for n := parents[node]; n != nil; child, n = n, parents[n] {
		switch n := n.(type) {
		case *ast.IfStmt:
			if child == n.Body && condProvesNonNil(pass, n.Cond, recv) {
				return true
			}
		case *ast.BlockStmt:
			if earlyExitGuard(pass, n.List, child, recv) {
				return true
			}
		case *ast.CaseClause:
			if earlyExitGuard(pass, n.Body, child, recv) {
				return true
			}
		case *ast.CommClause:
			if earlyExitGuard(pass, n.Body, child, recv) {
				return true
			}
		case *ast.FuncLit, *ast.FuncDecl:
			// A closure may run later, outside any guard that encloses its
			// creation site; require the guard inside the function body.
			return false
		}
	}
	return false
}

// earlyExitGuard scans the statements before the one containing child for
// `if recv == nil { ...terminator }`.
func earlyExitGuard(pass *analysis.Pass, stmts []ast.Stmt, child ast.Node, recv ast.Expr) bool {
	for _, st := range stmts {
		if st == child {
			return false
		}
		ifs, ok := st.(*ast.IfStmt)
		if !ok || ifs.Else != nil {
			continue
		}
		if !condIsNilCheck(pass, ifs.Cond, recv) || len(ifs.Body.List) == 0 {
			continue
		}
		if terminates(ifs.Body.List[len(ifs.Body.List)-1]) {
			return true
		}
	}
	return false
}

// terminates reports whether st unconditionally leaves the enclosing
// statement list.
func terminates(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && ident.Name == "panic"
	}
	return false
}

// condProvesNonNil reports whether cond (possibly an && conjunction)
// contains the conjunct `recv != nil`.
func condProvesNonNil(pass *analysis.Pass, cond ast.Expr, recv ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "&&":
			return condProvesNonNil(pass, e.X, recv) || condProvesNonNil(pass, e.Y, recv)
		case "!=":
			return nilComparisonOf(pass, e, recv)
		}
	}
	return false
}

// condIsNilCheck reports whether cond is exactly `recv == nil`.
func condIsNilCheck(pass *analysis.Pass, cond ast.Expr, recv ast.Expr) bool {
	e, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	return ok && e.Op.String() == "==" && nilComparisonOf(pass, e, recv)
}

// nilComparisonOf reports whether the comparison e has nil on one side and
// an expression equal to recv on the other.
func nilComparisonOf(pass *analysis.Pass, e *ast.BinaryExpr, recv ast.Expr) bool {
	x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
	if isNil(pass, y) {
		return sameExpr(pass, x, recv)
	}
	if isNil(pass, x) {
		return sameExpr(pass, y, recv)
	}
	return false
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// sameExpr compares two expressions: by use-object identity for plain
// identifiers (robust against shadowing), structurally otherwise.
func sameExpr(pass *analysis.Pass, a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	if aok != bok {
		return false
	}
	if aok {
		ao := pass.TypesInfo.Uses[ai]
		bo := pass.TypesInfo.Uses[bi]
		return ao != nil && ao == bo
	}
	return types.ExprString(a) == types.ExprString(b)
}
