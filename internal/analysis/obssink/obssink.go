// Package obssink checks that every coherence-event emission into an
// *obs.Sink is dominated by a nil-sink check, making PR 2's zero-overhead
// contract (DESIGN.md §6) a compile-time property.
//
// Sink methods are nil-safe by construction, but the contract in
// internal/obs requires emitting call sites to branch on the sink *before*
// computing event arguments, so a machine built without observability runs
// the exact allocation-free steady state PR 1 established. An unguarded
// emission still computes and boxes its arguments on every call; this
// analyzer catches the sites the obs_allocs_test.go golden would only catch
// when the missed guard happens to sit on the benchmarked path.
//
// Since PR 8 the check is a real forward nil-guard dataflow over the
// function's control-flow graph (internal/analysis/cfg) instead of a
// syntactic dominator walk. The fact at each program point is the set of
// receiver expressions proven non-nil on *every* path from the function
// entry; an emission is legal iff its receiver is in that set. This retires
// the syntactic checker's known blind spots:
//
//   - a guard invalidated by a later reassignment of the receiver (or of
//     any prefix of the receiver path) is no longer trusted;
//   - guards established through assignment propagation
//     (`if e.sink == nil { return }; sk := e.sink; sk.OnFoo(...)`) are
//     recognized;
//   - guards written as expression-less switch arms
//     (`switch { case sk == nil: return }`) are recognized;
//   - the else-arm of `if sk != nil` and the fallthrough path of
//     `if sk == nil { return }` are distinguished by edge, not by syntax.
//
// Emission *method values* (`f := sk.OnTxnEnd`) are held to the same rule at
// the point the value is created, since calling one later computes and boxes
// arguments exactly like a direct call.
//
// Closures are analyzed as their own graphs: a guard enclosing the closure's
// creation site does not dominate its (later) execution, so the guard must
// be inside the closure body.
//
// The checked surfaces are configurable (New): each Receiver names a type by
// package path and type name plus the producer-side methods whose call sites
// must be dominated by a guard. The default set covers *obs.Sink's emission
// methods — including its netsim.Observer implementation (MsgSent,
// MsgDelivered, MsgFault) and the hardened-protocol OnRetryTimeout — and the
// netsim.Observer interface itself, so netsim's own emission sites through
// its observer field are held to the same contract.
package obssink

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"dsisim/internal/analysis"
	"dsisim/internal/analysis/cfg"
)

// Receiver names one guarded emission surface: a (pointer-to-)named type or
// interface identified by defining package path and type name, plus the
// producer-side methods whose call sites must be dominated by a nil check of
// the receiver expression. Read-side methods (queries that are nil-safe and
// allocation-free) are simply left off the Methods list.
type Receiver struct {
	// Path is the import path of the package defining the type.
	Path string
	// Type is the type name within that package.
	Type string
	// Methods are the emission methods to check.
	Methods []string
	// SelfExempt skips call sites inside the defining package itself — for
	// types whose methods implement the nil-safety (obs.Sink's producer
	// methods nil-check their receiver internally). Leave false for
	// interfaces like netsim.Observer, where the defining package is
	// exactly the emitter under contract.
	SelfExempt bool
}

// DefaultReceivers is the emission surface the dsivet suite checks.
func DefaultReceivers() []Receiver {
	return []Receiver{
		{
			Path: "dsisim/internal/obs",
			Type: "Sink",
			Methods: []string{
				"MsgSent", "MsgDelivered", "MsgFault",
				"OnCacheState", "OnDirState", "OnSelfInval",
				"OnTearOffGrant", "OnTxnStart", "OnTxnEnd",
				"OnRetryTimeout",
			},
			SelfExempt: true,
		},
		{
			Path:    "dsisim/internal/netsim",
			Type:    "Observer",
			Methods: []string{"MsgSent", "MsgDelivered", "MsgFault"},
		},
	}
}

// checker is the configured analyzer state: receivers indexed by method name
// for the fast reject on non-emission calls.
type checker struct {
	recvs    []Receiver
	byMethod map[string][]int // method name -> indices into recvs
}

// New returns an obssink analyzer checking the given receiver surfaces.
func New(recvs []Receiver) *analysis.Analyzer {
	c := &checker{recvs: recvs, byMethod: make(map[string][]int)}
	for i, r := range recvs {
		for _, m := range r.Methods {
			c.byMethod[m] = append(c.byMethod[m], i)
		}
	}
	return &analysis.Analyzer{
		Name: "obssink",
		Doc:  "obs emission sites must be dominated by a nil-sink check",
		Run:  c.run,
	}
}

// Analyzer is the obssink checker over the default receiver set.
func Analyzer() *analysis.Analyzer {
	return New(DefaultReceivers())
}

func (c *checker) run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Analyze each function-like body independently: a FuncDecl body
		// with its nested FuncLits each get their own graph and dataflow.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				c.checkBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// site is one emission to verify: a call or a method value.
type site struct {
	sel         *ast.SelectorExpr
	recvKey     string
	methodValue bool
}

// checkBody runs the nil-guard dataflow over one function body and reports
// unguarded emissions. Nested function literals are skipped here (they are
// analyzed as their own bodies by run).
func (c *checker) checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	sites := c.collectSites(pass, body)
	if len(sites) == 0 {
		return
	}
	g := cfg.New(body, cfg.Options{IsTerminal: func(call *ast.CallExpr) bool {
		return analysis.IsColdCall(pass.TypesInfo, pass.Directives, call)
	}})
	res := cfg.Forward(g, cfg.Analysis[nilFact]{
		Entry:    nilFact{},
		Transfer: func(b *cfg.Block, f nilFact) nilFact { return transferBlock(pass, b, f, nil) },
		Branch: func(b *cfg.Block, e cfg.Edge, f nilFact) (nilFact, bool) {
			return branchRefine(pass, b, e, f), true
		},
		Merge: intersectFacts,
		Equal: equalFacts,
	})

	for _, b := range g.Blocks {
		if !res.Reached[b.Index] {
			continue // dead code cannot emit
		}
		// Re-walk the block incrementally, checking each site against the
		// fact in force just before its containing leaf statement.
		transferBlock(pass, b, res.In[b.Index], func(f nilFact, leaf ast.Node) {
			for _, s := range sites {
				if !within(s.sel, leaf) {
					continue
				}
				if f[s.recvKey] {
					continue
				}
				what := "obs emission"
				if s.methodValue {
					what = "obs emission method value"
				}
				pass.Reportf(s.sel.Pos(),
					"unguarded %s %s.%s; dominate it with a nil-sink check (if sink != nil { ... })",
					what, types.ExprString(s.sel.X), s.sel.Sel.Name)
			}
		})
	}
}

// collectSites finds the emission calls and emission method values in body,
// excluding nested function literals.
func (c *checker) collectSites(pass *analysis.Pass, body *ast.BlockStmt) []site {
	var sites []site
	calls := make(map[*ast.SelectorExpr]bool) // selectors in call position
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				calls[se] = true
			}
		}
		return true
	})
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != root {
				return false // analyzed separately
			}
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !c.matches(pass, se) {
				return true
			}
			key, ok := keyOf(pass.TypesInfo, se.X)
			if !ok {
				// Receiver is not a trackable path (call result, index
				// expression): no guard can be proven — report via an
				// impossible key.
				key = "<untrackable>"
			}
			sites = append(sites, site{sel: se, recvKey: key, methodValue: !calls[se]})
			return true
		})
	}
	walk(body)
	return sites
}

// matches reports whether the selector is a checked emission method on a
// checked receiver type (respecting SelfExempt).
func (c *checker) matches(pass *analysis.Pass, se *ast.SelectorExpr) bool {
	candidates := c.byMethod[se.Sel.Name]
	if len(candidates) == 0 {
		return false
	}
	rt := pass.TypeOf(se.X)
	for _, i := range candidates {
		r := &c.recvs[i]
		if !isReceiverType(rt, r) {
			continue
		}
		if r.SelfExempt && pass.Pkg.Path() == r.Path {
			return false
		}
		return true
	}
	return false
}

// within reports whether node n is inside (or is) the leaf statement. A
// range statement is a leaf of its head block but spans its body too; only
// its header (range expression and iteration variables) counts as "at the
// head".
func within(n ast.Node, leaf ast.Node) bool {
	end := leaf.End()
	if rs, ok := leaf.(*ast.RangeStmt); ok {
		end = rs.Body.Pos()
	}
	return leaf.Pos() <= n.Pos() && n.End() <= end
}

// nilFact is the dataflow fact: the set of receiver keys proven non-nil on
// every path reaching the program point.
type nilFact map[string]bool

func cloneFact(f nilFact) nilFact {
	c := make(nilFact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func intersectFacts(a, b nilFact) nilFact {
	m := nilFact{}
	for k := range a {
		if b[k] {
			m[k] = true
		}
	}
	return m
}

func equalFacts(a, b nilFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// transferBlock applies the block's leaf statements to the fact. When probe
// is non-nil it is invoked before each leaf with the fact in force there
// (used for the reporting pass). The block's condition, if any, is probed
// after all leaves.
func transferBlock(pass *analysis.Pass, b *cfg.Block, f nilFact, probe func(nilFact, ast.Node)) nilFact {
	for _, n := range b.Nodes {
		if probe != nil {
			probe(f, n)
		}
		f = transferNode(pass, n, f)
	}
	if probe != nil && b.Cond != nil {
		probe(f, b.Cond)
	}
	return f
}

// transferNode applies one leaf statement: assignments kill facts about
// their targets (and any deeper path through them) and propagate non-nilness
// on direct x := y copies.
func transferNode(pass *analysis.Pass, n ast.Node, f nilFact) nilFact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Gen before kill: RHS is evaluated in the pre-assignment state.
		var gens []string
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				lk, ok := keyOf(pass.TypesInfo, lhs)
				if !ok {
					continue
				}
				if rk, ok := keyOf(pass.TypesInfo, n.Rhs[i]); ok && f[rk] {
					gens = append(gens, lk)
				}
			}
		}
		for _, lhs := range n.Lhs {
			f = killKey(pass, f, lhs)
		}
		if len(gens) > 0 {
			f = cloneFact(f)
			for _, k := range gens {
				f[k] = true
			}
		}
		return f
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return f
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				f = killKey(pass, f, name)
				if i < len(vs.Values) {
					if rk, ok := keyOf(pass.TypesInfo, vs.Values[i]); ok && f[rk] {
						lk, lok := keyOf(pass.TypesInfo, name)
						if lok {
							f = cloneFact(f)
							f[lk] = true
						}
					}
				}
			}
		}
		return f
	case *ast.RangeStmt:
		f = killKey(pass, f, n.Key)
		f = killKey(pass, f, n.Value)
		return f
	}
	return f
}

// killKey removes facts about the assigned expression and any receiver path
// extending it (assigning e kills e.sink too).
func killKey(pass *analysis.Pass, f nilFact, lhs ast.Expr) nilFact {
	if lhs == nil {
		return f
	}
	k, ok := keyOf(pass.TypesInfo, lhs)
	if !ok {
		return f
	}
	var doomed []string
	for fk := range f {
		if fk == k || strings.HasPrefix(fk, k+".") {
			doomed = append(doomed, fk)
		}
	}
	if len(doomed) == 0 {
		return f
	}
	f = cloneFact(f)
	for _, fk := range doomed {
		delete(f, fk)
	}
	return f
}

// branchRefine strengthens the fact along a branch edge using the block's
// condition (if/for) or its expression-less-switch case clauses.
func branchRefine(pass *analysis.Pass, b *cfg.Block, e cfg.Edge, f nilFact) nilFact {
	switch e.Kind {
	case cfg.EdgeTrue:
		if b.Cond != nil {
			return assume(pass, b.Cond, true, f)
		}
	case cfg.EdgeFalse:
		if b.Cond != nil {
			return assume(pass, b.Cond, false, f)
		}
	case cfg.EdgeCase, cfg.EdgeDefault:
		// Only expression-less switches act as guards: `switch { case sk ==
		// nil: return }`. Tagged switches and type switches prove nothing
		// about nilness here.
		sw, ok := b.Stmt.(*ast.SwitchStmt)
		if !ok || sw.Tag != nil {
			return f
		}
		if e.Kind == cfg.EdgeCase {
			cc, ok := e.Case.(*ast.CaseClause)
			if !ok || len(cc.List) != 1 {
				return f // multi-expr case is a disjunction; proves nothing
			}
			return assume(pass, cc.List[0], true, f)
		}
		// Default edge: every case expression was false.
		for _, edge := range b.Edges {
			cc, ok := edge.Case.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, x := range cc.List {
				f = assume(pass, x, false, f)
			}
		}
		return f
	case cfg.EdgeNext:
	}
	return f
}

// assume refines the fact under "cond evaluates to truth": non-nilness flows
// from `x != nil` being true or `x == nil` being false, through &&/||/!
// decomposition.
func assume(pass *analysis.Pass, cond ast.Expr, truth bool, f nilFact) nilFact {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op.String() == "!" {
			return assume(pass, e.X, !truth, f)
		}
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "&&":
			if truth {
				return assume(pass, e.Y, truth, assume(pass, e.X, truth, f))
			}
		case "||":
			if !truth {
				return assume(pass, e.Y, truth, assume(pass, e.X, truth, f))
			}
		case "!=":
			if truth {
				return addNonNil(pass, e, f)
			}
		case "==":
			if !truth {
				return addNonNil(pass, e, f)
			}
		}
	}
	return f
}

// addNonNil records the non-nil operand of a nil comparison.
func addNonNil(pass *analysis.Pass, e *ast.BinaryExpr, f nilFact) nilFact {
	x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
	var recv ast.Expr
	if isNil(pass, y) {
		recv = x
	} else if isNil(pass, x) {
		recv = y
	} else {
		return f
	}
	k, ok := keyOf(pass.TypesInfo, recv)
	if !ok {
		return f
	}
	f = cloneFact(f)
	f[k] = true
	return f
}

// keyOf canonicalizes a receiver path expression: identifiers resolve to
// their declaring object (robust against shadowing), selector chains append
// field names. Anything else (calls, indexing) is untrackable.
func keyOf(info *types.Info, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("%s@%d", e.Name, obj.Pos()), true
	case *ast.SelectorExpr:
		base, ok := keyOf(info, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// isReceiverType reports whether t is r's named type, a pointer to it, or
// (for interface receivers) the named interface itself.
func isReceiverType(t types.Type, r *Receiver) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == r.Type && obj.Pkg() != nil && obj.Pkg().Path() == r.Path
}
