package obssink_test

import (
	"path/filepath"
	"testing"

	"dsisim/internal/analysis/analysistest"
	"dsisim/internal/analysis/obssink"
)

func TestObssink(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "a"), obssink.Analyzer())
}
