// Package analysistest runs an analyzer over a testdata package and checks
// its findings against // want "regexp" comments, mirroring the x/tools
// package of the same name.
//
// A test package lives in a plain directory (conventionally testdata/a under
// the analyzer's package); testdata trees are invisible to the go tool, so
// deliberately-buggy fixtures never reach `go build ./...` or dsivet itself.
// Each expected diagnostic is declared on the line it occurs:
//
//	fmt.Println(x) // want `fmt\.Println call in hot path`
//
// The comment takes one or more Go string literals (quoted or backquoted),
// each a regexp that must match a distinct finding reported on that line.
// Findings with no matching want comment, and want comments with no matching
// finding, both fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dsisim/internal/analysis"
)

// expectation is one want pattern at a file:line, unmatched until a finding
// claims it.
type expectation struct {
	pos     string // "file.go:12"
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the package in dir, applies the analyzer, and reports any
// mismatch between its findings and the want comments to t.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	ld := analysis.NewLoader(dir)
	pkg, err := ld.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	findings, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, f := range findings {
		key := posKey(f.Position)
		claimed := false
		for _, w := range wants {
			if w.pos == key && !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected finding: %s", key, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no finding matched want %s", w.pos, w.raw)
		}
	}
}

func posKey(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// collectWants extracts the // want comments from the package's files.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := posKey(pkg.Fset.Position(c.Pos()))
				for _, lit := range stringLiterals(text) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", pos, pat, err)
					}
					out = append(out, &expectation{pos: pos, re: re, raw: lit})
				}
			}
		}
	}
	return out
}

var literalRe = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

// stringLiterals returns the Go string literals in s, in order.
func stringLiterals(s string) []string {
	return literalRe.FindAllString(s, -1)
}
