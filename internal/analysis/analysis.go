// Package analysis is the simulator's static-analysis framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// model (Analyzer, Pass, Diagnostic) plus a package loader built on
// `go list -export` and the standard library's export-data importer.
//
// The framework exists because the repo's three core contracts — protocol
// state machines handle every enum value, simulation code is deterministic,
// and the PR-1 hot paths stay allocation-free with nil-sink guards — are
// otherwise enforced only at runtime by golden tests. The four repo-specific
// analyzers under internal/analysis/{exhaustive,determinism,hotpath,obssink}
// turn them into compile-time properties checked by `go run ./cmd/dsivet`.
//
// The container this repo builds in has no module proxy access, so the
// framework deliberately depends only on the go toolchain and standard
// library: packages are enumerated with `go list`, dependency types are read
// from compiler export data (go/importer.ForCompiler), and analyzed packages
// are type-checked from source. The API mirrors x/tools closely enough that
// migrating to the upstream multichecker later is mechanical.
//
// docs/ANALYSIS.md documents each analyzer, the //dsi: directives, and how
// to run the suite.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzer is one static check. Run inspects a single type-checked package
// through its Pass and reports findings via Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in output and test expectations. It must
	// be a valid identifier.
	Name string
	// Doc is a one-paragraph description; the first line is the summary shown
	// by `dsivet -list`.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package: shared position
// information, the parsed files, the type-checked package and its use/def
// maps, and the //dsi: directives collected from the package's syntax.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Directives holds the package's //dsi: annotations (hotpath, coldpath,
	// anyorder). Never nil.
	Directives *Directives
	// Report delivers one diagnostic. Never nil.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if not found.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// Finding pairs a diagnostic with the analyzer that produced it, for driver
// output.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// RunAnalyzers applies each analyzer to each package and returns all
// findings sorted by file, line, column, and analyzer name.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Pkg,
				TypesInfo:  pkg.Info,
				Directives: pkg.Directives,
			}
			pass.Report = func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return out, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
