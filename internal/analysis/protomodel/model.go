// Package protomodel statically extracts the coherence protocol's transition
// table from the proto package's controller sources and checks it for
// completeness: every (controller, state, trigger) pair either reaches real
// handling code, or terminates only in an assertion that carries a
// //dsi:unreachable waiver naming why the pair cannot occur.
//
// The extractor walks each dispatch root (the controllers' Handle switches,
// the processor-facing ops, and the retry timers) symbolically over the cfg
// package's control-flow graphs: the subject block's coherence state starts
// as one concrete value per run, branch conditions that test it refine or
// prune the path, and every other condition conservatively splits the walk.
// Along each feasible path the walker records the effects the model cares
// about — state writes, message sends, stats counters, obs emissions — and
// the union over paths becomes one Transition.
//
// The same model doubles as a runtime oracle: coverage.go folds an obs.Sink
// event stream into observed (controller, trigger, state) triples and checks
// each against the static table (see dsibench -transition-coverage).
package protomodel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Schema is the protomodel JSON schema version; bump on incompatible change.
const Schema = 1

// TransitionKind classifies how a (controller, trigger, state) pair resolves.
type TransitionKind uint8

const (
	// Handled: at least one feasible path through the handler completes
	// without hitting an assertion.
	Handled TransitionKind = iota
	// Fail: every feasible path terminates in an Env.fail assertion and no
	// //dsi:unreachable waiver covers the site — a completeness finding.
	Fail
	// Waived: every feasible path terminates in an assertion whose site
	// carries a //dsi:unreachable waiver; Transition.Reason records why.
	Waived
	// Infeasible: the entry state contradicts every guard before any path
	// reaches an outcome (the pair cannot even enter the handler body).
	Infeasible
)

var transitionKindNames = [...]string{"handled", "fail", "waived", "infeasible"}

func (k TransitionKind) String() string {
	if int(k) < len(transitionKindNames) {
		return transitionKindNames[k]
	}
	return fmt.Sprintf("TransitionKind(%d)", uint8(k))
}

// MarshalText renders the kind as its lowercase name for JSON.
func (k TransitionKind) MarshalText() ([]byte, error) {
	if int(k) >= len(transitionKindNames) {
		return nil, fmt.Errorf("protomodel: invalid TransitionKind %d", uint8(k))
	}
	return []byte(transitionKindNames[k]), nil
}

// UnmarshalText parses a kind name produced by MarshalText.
func (k *TransitionKind) UnmarshalText(b []byte) error {
	for i, n := range transitionKindNames {
		if n == string(b) {
			*k = TransitionKind(i)
			return nil
		}
	}
	return fmt.Errorf("protomodel: unknown TransitionKind %q", b)
}

// WaiverReason is the reason token of a //dsi:unreachable directive.
type WaiverReason uint8

const (
	// ReasonNone: the transition carries no waiver (Kind != Waived).
	ReasonNone WaiverReason = iota
	// ReasonNotRouted: the network fabric never delivers this message kind
	// to this controller side (machine routing sends it to the other one).
	ReasonNotRouted
	// ReasonInvariant: a protocol invariant excludes the state (e.g. a
	// directory can never observe its own grant).
	ReasonInvariant
)

var waiverReasonNames = [...]string{"", "not-routed", "invariant"}

func (r WaiverReason) String() string {
	if int(r) < len(waiverReasonNames) {
		return waiverReasonNames[r]
	}
	return fmt.Sprintf("WaiverReason(%d)", uint8(r))
}

// MarshalText renders the reason token for JSON ("" for ReasonNone).
func (r WaiverReason) MarshalText() ([]byte, error) {
	if int(r) >= len(waiverReasonNames) {
		return nil, fmt.Errorf("protomodel: invalid WaiverReason %d", uint8(r))
	}
	return []byte(waiverReasonNames[r]), nil
}

// UnmarshalText parses a reason token produced by MarshalText.
func (r *WaiverReason) UnmarshalText(b []byte) error {
	for i, n := range waiverReasonNames {
		if n == string(b) {
			*r = WaiverReason(i)
			return nil
		}
	}
	return fmt.Errorf("protomodel: unknown WaiverReason %q", b)
}

// ParseWaiverReason maps a directive reason token to its enum value; unknown
// tokens return ReasonNone and ok=false.
func ParseWaiverReason(tok string) (WaiverReason, bool) {
	switch tok {
	case "not-routed":
		return ReasonNotRouted, true
	case "invariant":
		return ReasonInvariant, true
	}
	return ReasonNone, false
}

// Transition is the extracted behavior of one (trigger, entry state) pair on
// one controller. Effect lists are unions over every feasible path.
type Transition struct {
	// Trigger names what arrives: a message kind ("GetS"), a processor op
	// ("op:read"), or a timer ("timeout:txn").
	Trigger string `json:"trigger"`
	// State is the subject block's coherence state when the trigger fires.
	State string `json:"state"`
	// Kind classifies the pair (handled / fail / waived / infeasible).
	Kind TransitionKind `json:"kind"`
	// Reason is the waiver's reason token when Kind == Waived.
	Reason WaiverReason `json:"reason,omitempty"`
	// Next lists the states the subject block may be left in (present only
	// when some path writes the state; a missing list means "unchanged").
	Next []string `json:"next,omitempty"`
	// MayFail marks handled transitions that also have assertion paths
	// (defensive "can't happen" checks guarding narrower invariants).
	MayFail bool `json:"mayFail,omitempty"`
	// Sends lists the message kinds some path may emit.
	Sends []string `json:"sends,omitempty"`
	// Counters lists the stats fields some path bumps.
	Counters []string `json:"counters,omitempty"`
	// Emits lists the obs.Sink methods some path calls.
	Emits []string `json:"emits,omitempty"`
}

// Controller is one side's transition table.
type Controller struct {
	// Name is "dir" or "cache".
	Name string `json:"name"`
	// States is the controller's state vocabulary, indexed by enum value.
	States []string `json:"states"`
	// Transitions holds one entry per (trigger, state), triggers in dispatch
	// order, states in enum order.
	Transitions []Transition `json:"transitions"`
}

// Model is the full extracted protocol model.
type Model struct {
	// SchemaVersion guards golden-file compatibility.
	SchemaVersion int `json:"schema"`
	// Package is the import path the model was extracted from.
	Package string `json:"package"`
	// Kinds is the message-kind vocabulary, indexed by netsim.Kind value, so
	// runtime coverage can map observed kinds without importing netsim's
	// String form.
	Kinds []string `json:"kinds"`
	// Controllers lists the per-side tables ("dir" first).
	Controllers []Controller `json:"controllers"`
}

// Controller returns the named controller table, or nil.
func (m *Model) Controller(name string) *Controller {
	for i := range m.Controllers {
		if m.Controllers[i].Name == name {
			return &m.Controllers[i]
		}
	}
	return nil
}

// Lookup returns the transition for (trigger, state), or nil.
func (c *Controller) Lookup(trigger, state string) *Transition {
	for i := range c.Transitions {
		t := &c.Transitions[i]
		if t.Trigger == trigger && t.State == state {
			return t
		}
	}
	return nil
}

// Render serializes the model deterministically: stable field order, one
// transition per line, so the committed golden diffs transition-by-transition.
func (m *Model) Render() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString("{\n")
	fmt.Fprintf(&buf, "  \"schema\": %d,\n", m.SchemaVersion)
	fmt.Fprintf(&buf, "  \"package\": %s,\n", mustJSON(m.Package))
	fmt.Fprintf(&buf, "  \"kinds\": %s,\n", mustJSON(m.Kinds))
	buf.WriteString("  \"controllers\": [\n")
	for ci, c := range m.Controllers {
		buf.WriteString("    {\n")
		fmt.Fprintf(&buf, "      \"name\": %s,\n", mustJSON(c.Name))
		fmt.Fprintf(&buf, "      \"states\": %s,\n", mustJSON(c.States))
		buf.WriteString("      \"transitions\": [\n")
		for ti, t := range c.Transitions {
			line, err := json.Marshal(t)
			if err != nil {
				return nil, err
			}
			buf.WriteString("        ")
			buf.Write(line)
			if ti < len(c.Transitions)-1 {
				buf.WriteByte(',')
			}
			buf.WriteByte('\n')
		}
		buf.WriteString("      ]\n")
		if ci < len(m.Controllers)-1 {
			buf.WriteString("    },\n")
		} else {
			buf.WriteString("    }\n")
		}
	}
	buf.WriteString("  ]\n}\n")
	return buf.Bytes(), nil
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// Parse decodes a rendered model (the committed golden).
func Parse(data []byte) (*Model, error) {
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("protomodel: parsing model: %w", err)
	}
	if m.SchemaVersion != Schema {
		return nil, fmt.Errorf("protomodel: schema %d, want %d (regenerate with dsivet -run protomodel -model)", m.SchemaVersion, Schema)
	}
	return &m, nil
}

// sortedStrings returns the set's members sorted, nil when empty.
func sortedStrings(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
