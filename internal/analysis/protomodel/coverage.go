package protomodel

import (
	"fmt"
	"sort"
	"strings"

	"dsisim/internal/mem"
	"dsisim/internal/obs"
)

// Observed is one runtime-observed transition: a trigger arriving at a
// controller while its block sat in a given entry state.
type Observed struct {
	Controller string // "dir" or "cache"
	Trigger    string // model trigger vocabulary ("GetS", "timeout:txn", ...)
	State      string // entry state name from the controller's States list
}

func (o Observed) String() string {
	return fmt.Sprintf("%s: %s in %s", o.Controller, o.Trigger, o.State)
}

// cacheBound is the set of message kinds CacheCtrl.Handle dispatches on;
// every other kind is home-bound and lands in DirCtrl.Handle. Mirrors the
// routing in internal/proto and is cross-checked against the static model by
// NewCoverage (a cache-bound kind must be waived on the dir side).
var cacheBound = map[string]bool{
	"Inv": true, "Recall": true, "DataS": true, "DataX": true,
	"AckX": true, "FinalAck": true, "Nack": true,
}

// covKey identifies one block's shadow state at one node.
type covKey struct {
	node int32
	addr mem.Addr
}

// Coverage folds an obs event stream into observed (controller, trigger,
// state) triples and checks each against a static Model: the runtime half of
// the protomodel cross-check. It reconstructs per-(node, block) shadow
// states from CacheState/DirState/SelfInval/FIFODisplace events — the
// MsgRecv event for a message fires before its handler runs, so the shadow
// state at that point is the state the handler dispatched on.
type Coverage struct {
	model *Model
	dir   *Controller
	cache *Controller

	dirState   map[covKey]uint8 // absent = Idle (code 0)
	cacheState map[covKey]uint8 // absent = Invalid (code 0)

	seen       map[Observed]uint64
	violations map[Observed]uint64
}

// NewCoverage builds a Coverage over a static model. It fails if the model
// lacks either controller or if the message routing baked into this checker
// disagrees with the model's waivers (a cache-bound kind handled on the dir
// side, or vice versa, means the checker would file triples under the wrong
// controller).
func NewCoverage(m *Model) (*Coverage, error) {
	c := &Coverage{
		model:      m,
		dir:        m.Controller("dir"),
		cache:      m.Controller("cache"),
		dirState:   make(map[covKey]uint8),
		cacheState: make(map[covKey]uint8),
		seen:       make(map[Observed]uint64),
		violations: make(map[Observed]uint64),
	}
	if c.dir == nil || c.cache == nil {
		return nil, fmt.Errorf("protomodel: model %q lacks dir/cache controllers", m.Package)
	}
	for _, kind := range m.Kinds {
		side, other := c.dir, c.cache
		if cacheBound[kind] {
			side, other = c.cache, c.dir
		}
		if t := side.Lookup(kind, side.States[0]); t == nil {
			return nil, fmt.Errorf("protomodel: model has no %s-side entry for %s", sideName(side, c), kind)
		}
		if t := other.Lookup(kind, other.States[0]); t != nil && t.Kind == Handled {
			return nil, fmt.Errorf("protomodel: %s handled on the %s side, but coverage routes it to %s",
				kind, sideName(other, c), sideName(side, c))
		}
	}
	return c, nil
}

func sideName(ctrl *Controller, c *Coverage) string {
	if ctrl == c.dir {
		return "dir"
	}
	return "cache"
}

// Observe folds one event. Events must arrive in emission order (as
// (*obs.Sink).ForEach replays them).
func (c *Coverage) Observe(e *obs.Event) {
	k := covKey{e.Node, e.Addr}
	switch e.Kind {
	case obs.MsgSend, obs.TxnStart, obs.TxnEnd, obs.TearOffGrant, obs.Fault:
		// Not state-attributable: sends precede delivery, txn brackets and
		// tear-off grants duplicate the state-change events, and faulted
		// messages never reach a handler.
	case obs.DirState:
		c.dirState[k] = e.New
	case obs.CacheState:
		c.cacheState[k] = e.New
	case obs.SelfInval, obs.FIFODisplace:
		c.cacheState[k] = 0 // cache.Invalid
	case obs.MsgRecv:
		kind := e.Msg.String()
		if cacheBound[kind] {
			c.record(c.cache, kind, c.cacheState[k])
		} else {
			c.record(c.dir, kind, c.dirState[k])
		}
	case obs.Timeout:
		if e.New == 1 { // directory-side transaction timeout
			c.record(c.dir, "timeout:txn", c.dirState[k])
			return
		}
		// Cache side: the event does not say whether the miss or the
		// final-ack timer fired, so accept whichever the model handles in
		// this state, preferring the miss timer.
		st := c.cacheState[k]
		name := c.stateName(c.cache, st)
		if t := c.cache.Lookup("timeout:miss", name); t != nil && t.Kind == Handled {
			c.record(c.cache, "timeout:miss", st)
			return
		}
		c.record(c.cache, "timeout:final", st)
	}
}

// record checks one observed triple against the static table and tallies it.
func (c *Coverage) record(ctrl *Controller, trigger string, state uint8) {
	o := Observed{sideName(ctrl, c), trigger, c.stateName(ctrl, state)}
	c.seen[o]++
	t := ctrl.Lookup(trigger, o.State)
	if t == nil || t.Kind != Handled {
		c.violations[o]++
	}
}

// stateName maps a raw state code to the model's name for it. The States
// lists are emitted in enum declaration order, so the code indexes directly.
func (c *Coverage) stateName(ctrl *Controller, code uint8) string {
	if int(code) < len(ctrl.States) {
		return ctrl.States[int(code)]
	}
	return fmt.Sprintf("state#%d", code)
}

// FoldSink replays every retained event in s through Observe.
func (c *Coverage) FoldSink(s *obs.Sink) {
	s.ForEach(c.Observe)
}

// Violations returns the observed triples the static model does not admit —
// pairs it marked waived (//dsi:unreachable), infeasible, or never extracted
// at all — sorted, with observation counts. Empty means the run stayed
// inside the static table.
func (c *Coverage) Violations() []ObservedCount {
	return sortCounts(c.violations)
}

// Seen returns every observed triple with its count, sorted.
func (c *Coverage) Seen() []ObservedCount {
	return sortCounts(c.seen)
}

// ObservedCount pairs a triple with how many times it was observed.
type ObservedCount struct {
	Observed
	Count uint64
}

func sortCounts(m map[Observed]uint64) []ObservedCount {
	out := make([]ObservedCount, 0, len(m))
	for o, n := range m {
		out = append(out, ObservedCount{o, n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Observed, out[j].Observed
		if a.Controller != b.Controller {
			return a.Controller < b.Controller
		}
		if a.Trigger != b.Trigger {
			return a.Trigger < b.Trigger
		}
		return a.State < b.State
	})
	return out
}

// Missing returns the handled, runtime-observable transitions the event
// stream never exercised, sorted. Processor-op triggers (op:*) are excluded:
// the event stream has no record distinguishing which op reached the
// controller, so they cannot be attributed.
func (c *Coverage) Missing() []Observed {
	var out []Observed
	for _, ctrl := range []*Controller{c.cache, c.dir} {
		for i := range ctrl.Transitions {
			t := &ctrl.Transitions[i]
			if t.Kind != Handled || !observable(t.Trigger) {
				continue
			}
			o := Observed{sideName(ctrl, c), t.Trigger, t.State}
			if c.seen[o] == 0 {
				out = append(out, o)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Controller != b.Controller {
			return a.Controller < b.Controller
		}
		if a.Trigger != b.Trigger {
			return a.Trigger < b.Trigger
		}
		return a.State < b.State
	})
	return out
}

// observable reports whether a trigger can be attributed from the event
// stream.
func observable(trigger string) bool {
	return !strings.HasPrefix(trigger, "op:")
}

// Summary condenses the fold for reporting.
type Summary struct {
	Observable int // handled transitions attributable from the event stream
	Exercised  int // of those, how many the stream hit
	Violations int // distinct observed triples outside the static table
}

// Summarize computes coverage totals over the model's handled,
// runtime-observable transitions.
func (c *Coverage) Summarize() Summary {
	var s Summary
	for _, ctrl := range []*Controller{c.cache, c.dir} {
		for i := range ctrl.Transitions {
			t := &ctrl.Transitions[i]
			if t.Kind != Handled || !observable(t.Trigger) {
				continue
			}
			s.Observable++
			if c.seen[Observed{sideName(ctrl, c), t.Trigger, t.State}] > 0 {
				s.Exercised++
			}
		}
	}
	s.Violations = len(c.violations)
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("transition coverage: %d/%d handled transitions exercised, %d violation(s)",
		s.Exercised, s.Observable, s.Violations)
}
