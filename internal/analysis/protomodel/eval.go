package protomodel

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// This file holds the expression side of the walker: abstract evaluation,
// condition assumption (path refinement and pruning), and the call tables
// that give cache-array, directory, policy, and sink calls their protocol
// semantics.

// maskSide is one side of an enum comparison: either the live subject state
// (refines pstate.cur) or a bindable snapshot (refines its binding).
type maskSide struct {
	live bool
	mask uint32
	key  string
	dom  *types.TypeName
}

// maskSideOf classifies e as an enum-valued side.
func (w *walker) maskSideOf(st *pstate, e ast.Expr) (maskSide, bool) {
	if w.isLiveState(st, e) {
		return maskSide{live: true, mask: st.cur, dom: w.space.dom}, true
	}
	v := w.evalExpr(st, e)
	if v.k == kEnum && v.mask != 0 {
		return maskSide{mask: v.mask, key: w.keyOf(e), dom: v.dom}, true
	}
	return maskSide{}, false
}

// isLiveState reports whether e reads the subject's current coherence state.
func (w *walker) isLiveState(st *pstate, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "State" {
		return false
	}
	base := w.evalExpr(st, sel.X)
	return base.k == kSubjEntry || base.k == kSubjFrame
}

func (w *walker) setSide(st *pstate, side maskSide, m uint32) {
	if side.live {
		st.cur = m
		return
	}
	if side.key != "" {
		st.binds[side.key] = symVal{k: kEnum, mask: m, dom: side.dom}
	}
}

// maskOfState interprets v as a state set in the walker's space.
func (w *walker) maskOfState(v symVal) uint32 {
	if v.k == kEnum && v.dom == w.space.dom && v.mask != 0 {
		return v.mask
	}
	return w.space.full
}

// --- expression evaluation --------------------------------------------------

func (w *walker) evalExpr(st *pstate, e ast.Expr) symVal {
	e = ast.Unparen(e)
	// Constants first: qualified enum constants carry their value here.
	if tv, ok := w.x.src.info.Types[e]; ok && tv.Value != nil {
		return w.constVal(tv)
	}
	switch ex := e.(type) {
	case *ast.Ident:
		if key := w.keyOf(ex); key != "" {
			if v, ok := st.binds[key]; ok {
				return v
			}
		}
		return unknownVal
	case *ast.SelectorExpr:
		base := w.evalExpr(st, ex.X)
		sel := ex.Sel.Name
		if (base.k == kSubjEntry || base.k == kSubjFrame) && sel == "State" {
			return symVal{k: kEnum, dom: w.space.dom, mask: st.cur}
		}
		// Path-refined shadow bindings shadow structural lookups.
		if key := w.keyOf(ex); key != "" {
			if v, ok := st.binds[key]; ok {
				return v
			}
		}
		switch base.k {
		case kSubjMsg:
			switch sel {
			case "Kind":
				return symVal{k: kEnum, dom: w.x.kindDom, mask: w.trigKinds}
			case "Addr":
				return symVal{k: kSubjAddr}
			}
		case kStruct:
			if v, ok := base.fields[sel]; ok {
				return v
			}
		}
		return unknownVal
	case *ast.UnaryExpr:
		if ex.Op == token.NOT {
			v := w.evalExpr(st, ex.X)
			if v.k == kBool {
				return symVal{k: kBool, b: !v.b}
			}
		}
		return unknownVal
	case *ast.BinaryExpr:
		return w.evalBinary(st, ex)
	case *ast.CallExpr:
		return w.evalCallPure(st, ex)
	case *ast.CompositeLit:
		return w.evalComposite(st, ex)
	case *ast.StarExpr:
		return w.evalExpr(st, ex.X)
	}
	return unknownVal
}

func (w *walker) constVal(tv types.TypeAndValue) symVal {
	t := tv.Type
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsBoolean != 0 {
		return symVal{k: kBool, b: constant.BoolVal(tv.Value)}
	}
	named, ok := t.(*types.Named)
	if !ok {
		return unknownVal
	}
	if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return unknownVal
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok || v < 0 || v >= 32 {
		return unknownVal
	}
	return symVal{k: kEnum, dom: named.Obj(), mask: 1 << uint(v)}
}

func (w *walker) evalBinary(st *pstate, ex *ast.BinaryExpr) symVal {
	switch ex.Op {
	case token.LAND:
		a, b := w.evalExpr(st, ex.X), w.evalExpr(st, ex.Y)
		if a.k == kBool && !a.b || b.k == kBool && !b.b {
			return symVal{k: kBool, b: false}
		}
		if a.k == kBool && a.b && b.k == kBool && b.b {
			return symVal{k: kBool, b: true}
		}
	case token.LOR:
		a, b := w.evalExpr(st, ex.X), w.evalExpr(st, ex.Y)
		if a.k == kBool && a.b || b.k == kBool && b.b {
			return symVal{k: kBool, b: true}
		}
		if a.k == kBool && !a.b && b.k == kBool && !b.b {
			return symVal{k: kBool, b: false}
		}
	case token.EQL, token.NEQ:
		if tri, ok := w.cmpKnown(st, ex.X, ex.Y); ok {
			if ex.Op == token.NEQ {
				tri = !tri
			}
			return symVal{k: kBool, b: tri}
		}
	}
	return unknownVal
}

// cmpKnown decides X == Y when both sides are known enum sets or booleans.
func (w *walker) cmpKnown(st *pstate, xe, ye ast.Expr) (bool, bool) {
	a, aok := w.maskSideOf(st, xe)
	b, bok := w.maskSideOf(st, ye)
	if aok && bok && a.dom == b.dom {
		if a.mask&b.mask == 0 {
			return false, true
		}
		if singleton(a.mask) && a.mask == b.mask {
			return true, true
		}
		return false, false
	}
	va, vb := w.evalExpr(st, xe), w.evalExpr(st, ye)
	if va.k == kBool && vb.k == kBool {
		return va.b == vb.b, true
	}
	return false, false
}

func singleton(m uint32) bool { return m != 0 && m&(m-1) == 0 }

// evalCallPure evaluates calls usable inside larger expressions: table
// passthroughs and decidable state predicates. No effects, no splitting.
func (w *walker) evalCallPure(st *pstate, call *ast.CallExpr) symVal {
	if tv, ok := w.x.src.info.Types[call.Fun]; ok && tv.IsType() {
		arg := w.evalExpr(st, call.Args[0])
		if arg.k == kSubjAddr {
			return arg
		}
		return unknownVal
	}
	if v, ok := st.binds[callKey(call)]; ok {
		return v
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "IsShared", "IsIdle":
			if side, ok := w.maskSideOf(st, sel.X); ok && side.dom == w.x.dirSpace.dom {
				m := w.x.dirSpace.shared
				if sel.Sel.Name == "IsIdle" {
					m = w.x.dirSpace.idle
				}
				if side.mask&^m == 0 {
					return symVal{k: kBool, b: true}
				}
				if side.mask&m == 0 {
					return symVal{k: kBool, b: false}
				}
			}
			return unknownVal
		case "BlockOf", "BlockIndex":
			if len(call.Args) == 1 {
				if arg := w.evalExpr(st, call.Args[0]); arg.k == kSubjAddr {
					return arg
				}
			}
			return unknownVal
		}
		if decl, _ := w.calleeDecl(call); decl != nil {
			switch tableKeyOf(decl) {
			case "DirCtrl.newTxn", "CacheCtrl.newMshr":
				if len(call.Args) == 1 {
					return w.evalExpr(st, call.Args[0])
				}
			case "DirCtrl.entry":
				return symVal{k: kSubjEntry}
			}
		}
	}
	return unknownVal
}

func (w *walker) evalComposite(st *pstate, lit *ast.CompositeLit) symVal {
	t := w.x.src.info.TypeOf(lit)
	if isNamedType(t, "dsisim/internal/netsim", "Message") {
		v := symVal{k: kMsgLit}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Kind" {
				fv := w.evalExpr(st, kv.Value)
				if fv.k == kEnum && fv.dom == w.x.kindDom {
					v.mask = fv.mask
				}
			}
		}
		return v
	}
	if t != nil {
		if _, ok := t.Underlying().(*types.Struct); ok {
			v := symVal{k: kStruct, fields: make(map[string]symVal)}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					v.fields[key.Name] = w.evalExpr(st, kv.Value)
				}
			}
			return v
		}
	}
	return unknownVal
}

// --- assumption (path refinement) -------------------------------------------

// assume refines st under "e is want", returning false when the path is
// infeasible. Unknown atoms are bound (when bindable) so later tests of the
// same expression stay consistent along the path.
func (w *walker) assume(st *pstate, e ast.Expr, want bool) bool {
	e = ast.Unparen(e)
	switch ex := e.(type) {
	case *ast.UnaryExpr:
		if ex.Op == token.NOT {
			return w.assume(st, ex.X, !want)
		}
	case *ast.BinaryExpr:
		switch ex.Op {
		case token.LAND:
			if want {
				return w.assume(st, ex.X, true) && w.assume(st, ex.Y, true)
			}
			xT, yT := w.mustHold(st, ex.X), w.mustHold(st, ex.Y)
			if xT && yT {
				return false
			}
			if xT {
				return w.assume(st, ex.Y, false)
			}
			if yT {
				return w.assume(st, ex.X, false)
			}
			return true
		case token.LOR:
			if !want {
				return w.assume(st, ex.X, false) && w.assume(st, ex.Y, false)
			}
			xF, yF := w.cannotHold(st, ex.X), w.cannotHold(st, ex.Y)
			if xF && yF {
				return false
			}
			if xF {
				return w.assume(st, ex.Y, true)
			}
			if yF {
				return w.assume(st, ex.X, true)
			}
			return true
		case token.EQL, token.NEQ:
			return w.assumeCmp(st, ex.X, ex.Y, (ex.Op == token.EQL) == want)
		}
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(ex.Fun).(*ast.SelectorExpr); ok && len(ex.Args) == 0 {
			if sel.Sel.Name == "IsShared" || sel.Sel.Name == "IsIdle" {
				if side, ok := w.maskSideOf(st, sel.X); ok && side.dom == w.x.dirSpace.dom {
					m := w.x.dirSpace.shared
					if sel.Sel.Name == "IsIdle" {
						m = w.x.dirSpace.idle
					}
					return w.refineWithin(st, side, m, want)
				}
			}
		}
		if v, ok := st.binds[callKey(ex)]; ok && v.k == kBool {
			return v.b == want
		}
		return true
	}
	// Atom.
	v := w.evalExpr(st, e)
	if v.k == kBool {
		return v.b == want
	}
	if key := w.keyOf(e); key != "" {
		st.binds[key] = symVal{k: kBool, b: want}
	}
	return true
}

// mustHold reports whether e is provably true under st.
func (w *walker) mustHold(st *pstate, e ast.Expr) bool {
	return !w.assume(st.clone(), e, false)
}

// cannotHold reports whether e is provably false under st.
func (w *walker) cannotHold(st *pstate, e ast.Expr) bool {
	return !w.assume(st.clone(), e, true)
}

// refineWithin intersects (want) or subtracts (!want) mask m from side.
func (w *walker) refineWithin(st *pstate, side maskSide, m uint32, want bool) bool {
	var nm uint32
	if want {
		nm = side.mask & m
	} else {
		nm = side.mask &^ m
	}
	if nm == 0 {
		return false
	}
	w.setSide(st, side, nm)
	return true
}

// assumeCmp refines st under "X == Y" (positive) or "X != Y".
func (w *walker) assumeCmp(st *pstate, xe, ye ast.Expr, positive bool) bool {
	if w.isNilExpr(ye) {
		return w.assumeNil(st, xe, positive)
	}
	if w.isNilExpr(xe) {
		return w.assumeNil(st, ye, positive)
	}
	a, aok := w.maskSideOf(st, xe)
	b, bok := w.maskSideOf(st, ye)
	if aok && bok && a.dom == b.dom {
		if positive {
			inter := a.mask & b.mask
			if inter == 0 {
				return false
			}
			w.setSide(st, a, inter)
			w.setSide(st, b, inter)
			return true
		}
		if singleton(a.mask) && a.mask == b.mask {
			return false
		}
		if singleton(b.mask) {
			if !w.refineWithin(st, a, b.mask, false) {
				return false
			}
		} else if singleton(a.mask) {
			if !w.refineWithin(st, b, a.mask, false) {
				return false
			}
		}
		return true
	}
	// Boolean equality against a known constant folds to an atom assumption.
	va, vb := w.evalExpr(st, xe), w.evalExpr(st, ye)
	if vb.k == kBool && (va.k == kBool || w.keyOf(xe) != "") {
		return w.assume(st, xe, vb.b == positive)
	}
	if va.k == kBool && w.keyOf(ye) != "" {
		return w.assume(st, ye, va.b == positive)
	}
	return true
}

func (w *walker) isNilExpr(e ast.Expr) bool {
	tv, ok := w.x.src.info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// assumeNil handles "expr == nil" (positive) / "expr != nil", with shadow
// bindings so repeated nil tests of the same expression agree along a path.
func (w *walker) assumeNil(st *pstate, e ast.Expr, isNil bool) bool {
	// The obs sink is modeled as always attached: emissions are "may" effects,
	// and the runtime cross-check only observes sink-on runs. This also stops
	// per-function `if sk != nil` guards from doubling every inlined path.
	if isNamedType(w.x.src.info.TypeOf(e), "dsisim/internal/obs", "Sink") {
		return !isNil
	}
	v := w.evalExpr(st, e)
	switch v.k {
	case kSubjEntry, kSubjMsg, kStruct, kMsgLit:
		return !isNil
	}
	if key := w.keyOf(e); key != "" {
		nk := key + "\x00nil"
		if b, ok := st.binds[nk]; ok && b.k == kBool {
			return b.b == isNil
		}
		st.binds[nk] = symVal{k: kBool, b: isNil}
	}
	return true
}
