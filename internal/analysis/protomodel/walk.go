package protomodel

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"strings"

	"dsisim/internal/analysis/cfg"
)

// This file is the symbolic CPS walker: it explores every feasible path
// through a dispatch root over the cfg package's graphs, refining the
// subject's coherence-state mask along branches and accumulating effects
// (state writes, sends, counters, emissions) per path. Calls to same-package
// functions are inlined (continuation-passing, so a callee's internal
// branching forks the caller's path); calls into the cache array, the
// directory, the policy interface, and the obs sink go through small semantic
// tables; everything else is opaque and conservatively splits.

const (
	maxDepth = 14
	maxSteps = 600000
)

type cont func(*pstate, []symVal)

// frame is one inlined call's walking context.
type frame struct {
	g     *cfg.Graph
	vis   []bool
	vp    map[*cfg.Block]bool
	depth int
	stack []*ast.FuncDecl
	kRet  cont
}

type walker struct {
	x         *extractor
	space     *space
	trigKinds uint32
	outcomes  []outcome
	steps     int
}

func (w *walker) fail(st *pstate, pos token.Pos) {
	w.outcomes = append(w.outcomes, outcome{
		final: st.cur, wrote: st.wrote, sends: st.sends,
		counters: st.counters, emits: st.emits,
		failed: true, failPos: pos,
	})
}

// callFunc inlines decl: binds args to parameters and walks its graph; kRet
// resumes the caller with the callee's return values.
func (w *walker) callFunc(decl *ast.FuncDecl, st *pstate, args []symVal, depth int, stack []*ast.FuncDecl, k cont) {
	g := w.x.graphFor(decl.Body, decl.Pos())
	i := 0
	for _, field := range decl.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			i++
			continue
		}
		for _, name := range names {
			if name.Name != "_" && i < len(args) {
				if obj := w.x.src.info.Defs[name]; obj != nil {
					st.binds[keyForObj(obj)] = args[i]
				}
			}
			i++
		}
	}
	fr := &frame{g: g, vis: w.x.vis[decl.Body], vp: make(map[*cfg.Block]bool),
		depth: depth, stack: append(stack, decl), kRet: k}
	w.walkBlock(fr, g.Entry, st)
}

// callLit walks a function-literal body once with unknown parameters: the
// conservative "may execute" reading of closures handed to opaque callees
// (NodeSet.ForEach and friends).
func (w *walker) callLit(lit *ast.FuncLit, st *pstate, depth int, stack []*ast.FuncDecl, k func(*pstate)) {
	g := w.x.graphFor(lit.Body, lit.Pos())
	fr := &frame{g: g, vis: w.x.vis[lit.Body], vp: make(map[*cfg.Block]bool),
		depth: depth, stack: stack, kRet: func(st2 *pstate, _ []symVal) { k(st2) }}
	w.walkBlock(fr, g.Entry, st)
}

func (w *walker) walkBlock(fr *frame, blk *cfg.Block, st *pstate) {
	w.steps++
	if w.steps > maxSteps {
		w.x.budgetHit = true
		return
	}
	fr.vp[blk] = true
	fr.vis[blk.Index] = true
	w.walkNodes(fr, blk, 0, st)
	delete(fr.vp, blk)
}

func (w *walker) walkNodes(fr *frame, blk *cfg.Block, i int, st *pstate) {
	if i >= len(blk.Nodes) {
		w.walkBranch(fr, blk, st)
		return
	}
	w.execStmt(fr, blk.Nodes[i], st, func(st2 *pstate) {
		w.walkNodes(fr, blk, i+1, st2)
	})
}

// walkEdge follows one control-flow edge. A back edge (target still on the
// current path) means the loop body has run once: the path continues from the
// loop head's exits instead of re-entering — one-iteration unrolling that
// keeps the body's effects on a completing path.
func (w *walker) walkEdge(fr *frame, to *cfg.Block, st *pstate) {
	if fr.vp[to] {
		w.walkLoopExit(fr, to, st)
		return
	}
	w.walkBlock(fr, to, st)
}

// walkLoopExit resumes a path that looped back to head: every successor of
// head not already on the path is a way out. The head's own nodes (the loop
// header) are deliberately not re-executed. With no way out (for {}), the
// abstract path ends here.
func (w *walker) walkLoopExit(fr *frame, head *cfg.Block, st *pstate) {
	var outs []*cfg.Block
	for _, e := range head.Edges {
		if !fr.vp[e.To] {
			outs = append(outs, e.To)
		}
	}
	for i, to := range outs {
		s2 := st
		if i < len(outs)-1 {
			s2 = st.clone()
		}
		w.walkBlock(fr, to, s2)
	}
}

func (w *walker) walkBranch(fr *frame, blk *cfg.Block, st *pstate) {
	if len(blk.Edges) == 0 {
		if blk == fr.g.Exit {
			fr.kRet(st, nil)
		}
		return
	}
	switch s := blk.Stmt.(type) {
	case *ast.IfStmt, *ast.ForStmt:
		if blk.Cond != nil {
			w.branchCond(fr, st, blk.Cond, func(st2 *pstate, truth bool) {
				want := cfg.EdgeTrue
				if !truth {
					want = cfg.EdgeFalse
				}
				for _, e := range blk.Edges {
					if e.Kind == want {
						w.walkEdge(fr, e.To, st2)
					}
				}
			})
			return
		}
		w.walkAllEdges(fr, blk, st)
	case *ast.SwitchStmt:
		if blk.Cond != nil {
			w.walkTaggedSwitch(fr, blk, st)
		} else {
			w.walkCondSwitch(fr, blk, st)
		}
	default:
		_ = s
		w.walkAllEdges(fr, blk, st)
	}
}

func (w *walker) walkAllEdges(fr *frame, blk *cfg.Block, st *pstate) {
	n := len(blk.Edges)
	for i, e := range blk.Edges {
		s2 := st
		if i < n-1 {
			s2 = st.clone()
		}
		w.walkEdge(fr, e.To, s2)
	}
}

// walkTaggedSwitch dispatches `switch <enum expr>`: clauses with known
// constant sets subtract from the remaining tag mask, so each arm runs with a
// refined view and the default arm only with the leftovers.
func (w *walker) walkTaggedSwitch(fr *frame, blk *cfg.Block, st *pstate) {
	side, ok := w.maskSideOf(st, blk.Cond)
	if !ok {
		w.walkAllEdges(fr, blk, st)
		return
	}
	rem := side.mask
	var defaultEdge *cfg.Edge
	for i := range blk.Edges {
		e := &blk.Edges[i]
		if e.Kind == cfg.EdgeDefault {
			defaultEdge = e
			continue
		}
		if e.Kind != cfg.EdgeCase {
			st2 := st.clone()
			w.walkEdge(fr, e.To, st2)
			continue
		}
		clause, _ := e.Case.(*ast.CaseClause)
		cmask, precise := w.clauseMask(st, clause, side.dom)
		take := rem & cmask
		if !precise {
			take = rem
		}
		if take != 0 {
			st2 := st.clone()
			w.setSide(st2, side, take)
			w.walkEdge(fr, e.To, st2)
		}
		if precise {
			rem &^= cmask
		}
	}
	if defaultEdge != nil && rem != 0 {
		w.setSide(st, side, rem)
		w.walkEdge(fr, defaultEdge.To, st)
	}
}

// clauseMask unions a case clause's constant values in dom; precise=false
// when any expression is not a known constant of the domain.
func (w *walker) clauseMask(st *pstate, clause *ast.CaseClause, dom *types.TypeName) (uint32, bool) {
	if clause == nil {
		return 0, false
	}
	var m uint32
	for _, e := range clause.List {
		v := w.evalExpr(st, e)
		if v.k != kEnum || v.dom != dom {
			return 0, false
		}
		m |= v.mask
	}
	return m, true
}

// walkCondSwitch handles expression-less switches: each clause's expressions
// are boolean guards tried in order.
func (w *walker) walkCondSwitch(fr *frame, blk *cfg.Block, st *pstate) {
	var caseEdges []*cfg.Edge
	var defaultEdge *cfg.Edge
	for i := range blk.Edges {
		e := &blk.Edges[i]
		switch e.Kind {
		case cfg.EdgeCase:
			caseEdges = append(caseEdges, e)
		case cfg.EdgeDefault:
			defaultEdge = e
		default:
			panic("protomodel: non-case edge out of a switch dispatch block")
		}
	}
	var clause func(i int, st *pstate)
	clause = func(i int, st *pstate) {
		if i >= len(caseEdges) {
			if defaultEdge != nil {
				w.walkEdge(fr, defaultEdge.To, st)
			}
			return
		}
		cc, _ := caseEdges[i].Case.(*ast.CaseClause)
		if cc == nil || len(cc.List) == 0 {
			st2 := st.clone()
			w.walkEdge(fr, caseEdges[i].To, st2)
			clause(i+1, st)
			return
		}
		var overExprs func(j int, st *pstate)
		overExprs = func(j int, st *pstate) {
			if j >= len(cc.List) {
				clause(i+1, st)
				return
			}
			w.branchCond(fr, st, cc.List[j], func(st2 *pstate, truth bool) {
				if truth {
					w.walkEdge(fr, caseEdges[i].To, st2)
				} else {
					overExprs(j+1, st2)
				}
			})
		}
		overExprs(0, st)
	}
	clause(0, st)
}

// branchCond evaluates a boolean condition: same-package calls inside it are
// hoisted and executed first (binding their results), then both truth values
// that remain feasible are explored.
func (w *walker) branchCond(fr *frame, st *pstate, e ast.Expr, k func(*pstate, bool)) {
	w.hoistCalls(fr, st, e, func(st2 *pstate) {
		stT := st2.clone()
		if w.assume(stT, e, true) {
			k(stT, true)
		}
		if w.assume(st2, e, false) {
			k(st2, false)
		}
	})
}

// hoistCalls executes the same-package calls syntactically inside cond before
// the condition is assumed, so their effects and result bindings are visible.
// Short-circuit skipping is deliberately ignored: effects become "may" lists.
func (w *walker) hoistCalls(fr *frame, st *pstate, cond ast.Expr, k func(*pstate)) {
	var calls []*ast.CallExpr
	ast.Inspect(cond, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok {
			if decl, _ := w.calleeDecl(c); decl != nil {
				calls = append(calls, c)
			}
		}
		return true
	})
	var run func(i int, st *pstate)
	run = func(i int, st *pstate) {
		if i >= len(calls) {
			k(st)
			return
		}
		c := calls[i]
		w.execCall(fr, st, c, func(st2 *pstate, res []symVal) {
			if len(res) == 1 && res[0].k == kBool {
				st2.binds[callKey(c)] = res[0]
			}
			run(i+1, st2)
		})
	}
	run(0, st)
}

func callKey(c *ast.CallExpr) string { return "call@" + strconv.Itoa(int(c.Pos())) }

// calleeDecl resolves a call to a same-package function declaration.
func (w *walker) calleeDecl(call *ast.CallExpr) (*ast.FuncDecl, types.Object) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := w.x.src.info.Uses[fun]
		return w.x.funcs[obj], obj
	case *ast.SelectorExpr:
		obj := w.x.src.info.Uses[fun.Sel]
		return w.x.funcs[obj], obj
	}
	return nil, nil
}

// --- statement execution ----------------------------------------------------

func (w *walker) execStmt(fr *frame, n ast.Node, st *pstate, k func(*pstate)) {
	switch s := n.(type) {
	case *ast.ReturnStmt:
		if len(s.Results) == 1 {
			if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
				w.execCall(fr, st, call, func(st2 *pstate, res []symVal) {
					fr.kRet(st2, res)
				})
				return
			}
		}
		vals := make([]symVal, len(s.Results))
		for i, r := range s.Results {
			vals[i] = w.evalExpr(st, r)
		}
		fr.kRet(st, vals)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			w.execCall(fr, st, call, func(st2 *pstate, _ []symVal) { k(st2) })
			return
		}
		k(st)
	case *ast.AssignStmt:
		w.execAssign(fr, s, st, k)
	case *ast.IncDecStmt:
		if name := counterName(s.X); name != "" {
			st.counter(name)
		} else {
			w.killLValue(st, s.X)
		}
		k(st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v := unknownVal
					if i < len(vs.Values) {
						v = w.evalExpr(st, vs.Values[i])
					}
					if name.Name != "_" {
						if obj := w.x.src.info.Defs[name]; obj != nil {
							st.binds[keyForObj(obj)] = v
						}
					}
				}
			}
		}
		k(st)
	case *ast.RangeStmt:
		if id, ok := s.Key.(*ast.Ident); ok {
			w.bindIdent(st, id, unknownVal)
		}
		if id, ok := s.Value.(*ast.Ident); ok {
			w.bindIdent(st, id, unknownVal)
		}
		k(st)
	default:
		k(st)
	}
}

func (w *walker) execAssign(fr *frame, s *ast.AssignStmt, st *pstate, k func(*pstate)) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Compound assignment: += on a stats field is a counter bump;
		// anything else just invalidates what we knew about the target.
		if name := counterName(s.Lhs[0]); name != "" {
			st.counter(name)
		} else {
			w.killLValue(st, s.Lhs[0])
		}
		k(st)
		return
	}
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			w.execCall(fr, st, call, func(st2 *pstate, res []symVal) {
				for i, lhs := range s.Lhs {
					w.bindLValue(st2, lhs, at(res, i))
				}
				k(st2)
			})
			return
		}
		if len(s.Lhs) == 1 {
			w.bindLValue(st, s.Lhs[0], w.evalExpr(st, s.Rhs[0]))
		} else {
			// Two-value forms without a call (map index, type assertion).
			for _, lhs := range s.Lhs {
				w.bindLValue(st, lhs, unknownVal)
			}
		}
		k(st)
		return
	}
	vals := make([]symVal, len(s.Rhs))
	for i, r := range s.Rhs {
		vals[i] = w.evalExpr(st, r)
	}
	for i, lhs := range s.Lhs {
		w.bindLValue(st, lhs, at(vals, i))
	}
	k(st)
}

func at(vals []symVal, i int) symVal {
	if i < len(vals) {
		return vals[i]
	}
	return unknownVal
}

// counterName recognizes `<x>.stats.<Field>` lvalues.
func counterName(e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	base, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || base.Sel.Name != "stats" {
		return ""
	}
	return sel.Sel.Name
}

// --- lvalues ----------------------------------------------------------------

func (w *walker) bindIdent(st *pstate, id *ast.Ident, v symVal) {
	if id.Name == "_" {
		return
	}
	key := w.keyOf(id)
	if key == "" {
		return
	}
	killExtensions(st, key)
	st.binds[key] = v
}

func (w *walker) bindLValue(st *pstate, lhs ast.Expr, v symVal) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		w.bindIdent(st, e, v)
	case *ast.SelectorExpr:
		base := w.evalExpr(st, e.X)
		sel := e.Sel.Name
		// Writing the subject's coherence state.
		if (base.k == kSubjEntry || base.k == kSubjFrame) && sel == "State" {
			st.cur = w.maskOfState(v)
			st.wrote = true
			killField(st, sel)
			return
		}
		// Retargeting a message literal's kind before it is sent.
		if sel == "Kind" {
			if bkey := w.keyOf(e.X); bkey != "" {
				if b, ok := st.binds[bkey]; ok && b.k == kMsgLit {
					nb := b
					nb.mask = 0
					if v.k == kEnum && v.dom == w.x.kindDom {
						nb.mask = v.mask
					}
					st.binds[bkey] = nb
					return
				}
			}
		}
		// A message literal parked in a field is a deferred send.
		if v.k == kMsgLit {
			st.sends |= v.mask
		}
		// Updating a known struct's field.
		if bkey := w.keyOf(e.X); bkey != "" {
			if b, ok := st.binds[bkey]; ok && b.k == kStruct {
				nf := make(map[string]symVal, len(b.fields)+1)
				for fk, fv := range b.fields {
					nf[fk] = fv
				}
				nf[sel] = v
				st.binds[bkey] = symVal{k: kStruct, fields: nf}
			}
		}
		killField(st, sel)
	default:
		// Star/index stores: nothing tracked.
	}
}

func (w *walker) killLValue(st *pstate, lhs ast.Expr) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		w.bindIdent(st, e, unknownVal)
	case *ast.SelectorExpr:
		killField(st, e.Sel.Name)
	}
}

// killExtensions drops shadow bindings derived from key (fields, nil facts).
func killExtensions(st *pstate, key string) {
	prefix := key + "."
	nilKey := key + "\x00nil"
	for k := range st.binds {
		if k == nilKey || len(k) > len(prefix) && k[:len(prefix)] == prefix {
			delete(st.binds, k)
		}
	}
}

// killField conservatively drops every binding that mentions field sel, since
// an aliased store may have changed it.
func killField(st *pstate, sel string) {
	needle := "." + sel
	for k := range st.binds {
		if idx := strings.Index(k, needle); idx >= 0 {
			rest := k[idx+len(needle):]
			if rest == "" || rest[0] == '.' || rest[0] == '\x00' {
				delete(st.binds, k)
			}
		}
	}
}

// keyForObj is the canonical binding key for a named object.
func keyForObj(obj types.Object) string {
	return obj.Name() + "@" + strconv.Itoa(int(obj.Pos()))
}

// keyOf renders a bindable expression (an identifier or a selector chain) as
// a canonical key; controller receivers normalize to "<recv>" so
// configuration facts stay consistent across inlined methods.
func (w *walker) keyOf(e ast.Expr) string {
	switch ex := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.x.src.info.Uses[ex]
		if obj == nil {
			obj = w.x.src.info.Defs[ex]
		}
		if obj == nil {
			return ""
		}
		if w.x.recvObjs[obj] {
			return "<recv>"
		}
		return keyForObj(obj)
	case *ast.SelectorExpr:
		base := w.keyOf(ex.X)
		if base == "" {
			return ""
		}
		return base + "." + ex.Sel.Name
	}
	return ""
}
