package protomodel

import (
	"fmt"
	"strings"
)

// Markdown renders the model as one markdown table per controller, triggers
// as rows and entry states as columns. Cell legend:
//
//	·          handled, state unchanged
//	→A/B       handled, may leave the block in A or B
//	!          suffix: some path still dies in a defensive assertion
//	w          waived (//dsi:unreachable): the pair cannot occur
//	-          statically infeasible
func Markdown(m *Model) string {
	var b strings.Builder
	for _, c := range m.Controllers {
		fmt.Fprintf(&b, "#### %s controller\n\n", c.Name)
		b.WriteString("| trigger |")
		for _, s := range c.States {
			fmt.Fprintf(&b, " %s |", s)
		}
		b.WriteString("\n|---|")
		for range c.States {
			b.WriteString("---|")
		}
		b.WriteByte('\n')
		var triggers []string
		seen := make(map[string]bool)
		for _, t := range c.Transitions {
			if !seen[t.Trigger] {
				seen[t.Trigger] = true
				triggers = append(triggers, t.Trigger)
			}
		}
		for _, trig := range triggers {
			fmt.Fprintf(&b, "| %s |", trig)
			for _, s := range c.States {
				t := c.Lookup(trig, s)
				cell := "-"
				if t != nil {
					cell = markdownCell(t)
				}
				fmt.Fprintf(&b, " %s |", cell)
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func markdownCell(t *Transition) string {
	switch t.Kind {
	case Infeasible:
		return "-"
	case Waived, Fail:
		return "w"
	case Handled:
	}
	cell := "·"
	if len(t.Next) > 0 {
		cell = "→" + strings.Join(t.Next, "/")
	}
	if t.MayFail {
		cell += "!"
	}
	return cell
}
