package protomodel

import (
	"go/ast"
	"go/types"

	"dsisim/internal/analysis"
)

// This file classifies calls: terminal assertions fail the path; calls into
// the obs sink, the cache array, the directory, the policy interface, and the
// sync mechanism get protocol semantics from small tables; same-package
// functions inline (with a rewrite for the occupancy-deferred admit→process
// hop); everything else is opaque, with function-literal arguments walked
// once under "may execute" semantics.

// tableKeyOf renders a declaration as its fnIndex key ("Recv.Name" / "Name").
func tableKeyOf(decl *ast.FuncDecl) string {
	key := decl.Name.Name
	if decl.Recv != nil && len(decl.Recv.List) > 0 {
		if rn := recvTypeName(decl.Recv.List[0].Type); rn != "" {
			key = rn + "." + key
		}
	}
	return key
}

func inStack(stack []*ast.FuncDecl, decl *ast.FuncDecl) bool {
	for _, d := range stack {
		if d == decl {
			return true
		}
	}
	return false
}

func (w *walker) evalArgs(st *pstate, call *ast.CallExpr) []symVal {
	args := make([]symVal, len(call.Args))
	for i, a := range call.Args {
		args[i] = w.evalExpr(st, a)
	}
	return args
}

func (w *walker) execCall(fr *frame, st *pstate, call *ast.CallExpr, k cont) {
	// Terminal assertion: the path dies here (recorded as a fail outcome).
	if analysis.IsColdCall(w.x.src.info, w.x.src.dirs, call) {
		w.fail(st, call.Pos())
		return
	}
	// Type conversion: the subject address survives, everything else blurs.
	if tv, ok := w.x.src.info.Types[call.Fun]; ok && tv.IsType() {
		v := unknownVal
		if len(call.Args) == 1 {
			if av := w.evalExpr(st, call.Args[0]); av.k == kSubjAddr || av.k == kEnum {
				v = av
			}
		}
		k(st, []symVal{v})
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := w.x.src.info.Uses[id].(*types.Builtin); ok {
			k(st, []symVal{unknownVal})
			return
		}
	}
	decl, _ := w.calleeDecl(call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		recvT := w.x.src.info.TypeOf(sel.X)
		switch {
		case isNamedType(recvT, "dsisim/internal/obs", "Sink"):
			st.emit(name)
			k(st, nil)
			return
		case isNamedType(recvT, "dsisim/internal/cache", "Cache") && w.space == w.x.cacheSpace:
			w.cacheCall(st, call, name, k)
			return
		case isNamedType(recvT, "dsisim/internal/directory", "Dir") && w.space == w.x.dirSpace:
			if name == "Entry" && len(call.Args) == 1 &&
				w.evalExpr(st, call.Args[0]).k == kSubjAddr {
				k(st, []symVal{{k: kSubjEntry}})
				return
			}
		}
		// Policy decisions arrive through an interface, so they are classified
		// by shape: SetShared/SetIdle on the subject entry moves the directory
		// state into the corresponding family.
		if (name == "SetShared" || name == "SetIdle") && w.space == w.x.dirSpace &&
			len(call.Args) >= 1 && w.evalExpr(st, call.Args[0]).k == kSubjEntry {
			if name == "SetShared" {
				st.cur = w.x.dirSpace.shared
			} else {
				st.cur = w.x.dirSpace.idle
			}
			st.wrote = true
			k(st, nil)
			return
		}
		// The sync mechanism's flush may self-invalidate the subject block.
		if name == "OnSync" && w.space == w.x.cacheSpace {
			st.cur |= w.x.cacheSpace.bitOf("Invalid")
			st.wrote = true
			k(st, []symVal{unknownVal})
			return
		}
		// A send with a known message literal records its kind set; the
		// controllers' send helpers and netsim's Send both match here.
		if (name == "send" || name == "Send") && len(call.Args) == 1 {
			if v := w.evalExpr(st, call.Args[0]); v.k == kMsgLit {
				st.sends |= v.mask
				k(st, nil)
				return
			}
		}
	}
	if decl != nil {
		switch tableKeyOf(decl) {
		case "DirCtrl.admit":
			// admit parks the request across the directory occupancy and the
			// event queue resumes it in process: model the hop as a direct
			// call.
			if p := w.x.fnIndex["DirCtrl.process"]; p != nil &&
				fr.depth < maxDepth && !inStack(fr.stack, p) {
				w.callFunc(p, st, w.evalArgs(st, call), fr.depth+1, fr.stack, k)
				return
			}
		case "DirCtrl.entry":
			k(st, []symVal{{k: kSubjEntry}})
			return
		case "DirCtrl.newTxn", "CacheCtrl.newMshr":
			if len(call.Args) >= 1 {
				k(st, []symVal{w.evalExpr(st, call.Args[0])})
				return
			}
		case "DirCtrl.dequeue", "CacheCtrl.retire":
			// Re-admitting a queued request (dequeue) or re-buffering parked
			// stores (retire) starts a different trigger's transition, modeled
			// by that trigger's own root.
			k(st, nil)
			return
		case "DirCtrl.block", "DirCtrl.pushQueue", "DirCtrl.popQueue",
			"CacheCtrl.freeMshr", "CacheCtrl.block", "CacheCtrl.home", "DirCtrl.home":
			// Pooling and queue plumbing: protocol-neutral by construction.
			k(st, []symVal{unknownVal, unknownVal})
			return
		}
		if fr.depth < maxDepth && !inStack(fr.stack, decl) {
			w.callFunc(decl, st, w.evalArgs(st, call), fr.depth+1, fr.stack, k)
			return
		}
	}
	// Opaque call: any function literal handed in may run (ForEach fan-outs).
	w.walkLitArgs(fr, st, call, 0, func(st2 *pstate) {
		k(st2, []symVal{w.evalCallPure(st2, call)})
	})
}

// walkLitArgs walks each function-literal argument once, in order, then
// resumes with k.
func (w *walker) walkLitArgs(fr *frame, st *pstate, call *ast.CallExpr, i int, k func(*pstate)) {
	for ; i < len(call.Args); i++ {
		if lit, ok := ast.Unparen(call.Args[i]).(*ast.FuncLit); ok {
			next := i + 1
			w.callLit(lit, st, fr.depth, fr.stack, func(st2 *pstate) {
				w.walkLitArgs(fr, st2, call, next, k)
			})
			return
		}
	}
	k(st)
}

// cacheCall gives the cache array's mutators their transition semantics when
// applied to the subject block; other blocks' operations are opaque.
func (w *walker) cacheCall(st *pstate, call *ast.CallExpr, name string, k cont) {
	sp := w.x.cacheSpace
	inv := sp.bitOf("Invalid")
	valid := sp.full &^ inv
	excl := sp.bitOf("Exclusive")
	subj := len(call.Args) >= 1 && w.evalExpr(st, call.Args[0]).k == kSubjAddr
	if !subj {
		k(st, []symVal{unknownVal, unknownVal})
		return
	}
	// split runs the continuation on the "yes" refinement and the "no"
	// refinement of the subject's state, whichever are feasible.
	split := func(yes, no uint32, ky, kn func(*pstate)) {
		if yes != 0 {
			s2 := st
			if no != 0 {
				s2 = st.clone()
			}
			s2.cur = yes
			ky(s2)
		}
		if no != 0 {
			st.cur = no
			kn(st)
		}
	}
	switch name {
	case "Lookup", "Peek":
		split(st.cur&valid, st.cur&inv,
			func(s *pstate) { k(s, []symVal{{k: kSubjFrame}, {k: kBool, b: true}}) },
			func(s *pstate) { k(s, []symVal{unknownVal, {k: kBool, b: false}}) })
	case "Invalidate":
		had := st.cur & valid
		split(had, st.cur&inv,
			func(s *pstate) {
				s.cur = inv
				s.wrote = true
				ev := symVal{k: kStruct, fields: map[string]symVal{
					"State": {k: kEnum, dom: sp.dom, mask: had},
				}}
				k(s, []symVal{ev, {k: kBool, b: true}})
			},
			func(s *pstate) { k(s, []symVal{unknownVal, {k: kBool, b: false}}) })
	case "Downgrade":
		split(st.cur&excl, st.cur&^excl,
			func(s *pstate) {
				s.cur = sp.bitOf("Shared")
				s.wrote = true
				k(s, []symVal{unknownVal, {k: kBool, b: true}})
			},
			func(s *pstate) { k(s, []symVal{unknownVal, {k: kBool, b: false}}) })
	case "Install":
		next := valid
		if len(call.Args) >= 2 {
			if fv := w.evalExpr(st, call.Args[1]); fv.k == kStruct {
				if s, ok := fv.fields["State"]; ok {
					if m := w.maskOfState(s) &^ inv; m != 0 {
						next = m
					}
				}
			}
		}
		st.cur = next
		st.wrote = true
		k(st, []symVal{unknownVal, unknownVal})
	default:
		// Mark, SetVersion, EchoVersion, ...: no state transition.
		k(st, []symVal{unknownVal, unknownVal})
	}
}
