package protomodel

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strconv"
	"strings"

	"dsisim/internal/analysis"
	"dsisim/internal/analysis/cfg"
)

// ProtoPackage is the import path the extractor understands.
const ProtoPackage = "dsisim/internal/proto"

// debugSteps prints per-root path-exploration statistics (set via
// PROTOMODEL_DEBUG=1) for tuning the step budget.
var debugSteps = os.Getenv("PROTOMODEL_DEBUG") != ""

// Problem is one completeness finding from extraction.
type Problem struct {
	Pos token.Pos
	Msg string
}

// source bundles the loaded syntax and type information extraction runs on.
type source struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	dirs  *analysis.Directives
}

// ExtractPass runs extraction from an analyzer pass (the dsivet suite path).
func ExtractPass(pass *analysis.Pass) (*Model, []Problem) {
	return extract(&source{fset: pass.Fset, files: pass.Files, pkg: pass.Pkg, info: pass.TypesInfo, dirs: pass.Directives})
}

// ExtractPackage runs extraction from a loader package (the -model path).
func ExtractPackage(p *analysis.Package) (*Model, []Problem) {
	return extract(&source{fset: p.Fset, files: p.Files, pkg: p.Pkg, info: p.Info, dirs: p.Directives})
}

// --- value domain -----------------------------------------------------------

const (
	kUnknown   byte = iota
	kBool           // known boolean
	kEnum           // set of values of a small integer enum (mask, dom)
	kSubjAddr       // the subject block address
	kSubjMsg        // the trigger message
	kSubjEntry      // the subject's *directory.Entry
	kSubjFrame      // the subject's *cache.Frame
	kStruct         // struct literal value with known fields
	kMsgLit         // a netsim.Message under construction (mask = kind set)
)

// symVal is a value in the walker's abstract domain.
type symVal struct {
	k      byte
	b      bool
	mask   uint32
	dom    *types.TypeName
	fields map[string]symVal
}

var unknownVal = symVal{}

// pstate is one symbolic path: the subject's possible states plus bindings
// and the effects accumulated so far.
type pstate struct {
	cur      uint32 // subject coherence-state mask (walker's space)
	wrote    bool   // some statement wrote the subject state
	sends    uint32 // message kinds sent (bit = netsim.Kind value)
	counters map[string]bool
	emits    map[string]bool
	binds    map[string]symVal
}

func (s *pstate) clone() *pstate {
	c := &pstate{cur: s.cur, wrote: s.wrote, sends: s.sends}
	c.counters = make(map[string]bool, len(s.counters))
	for k := range s.counters {
		c.counters[k] = true
	}
	c.emits = make(map[string]bool, len(s.emits))
	for k := range s.emits {
		c.emits[k] = true
	}
	c.binds = make(map[string]symVal, len(s.binds))
	for k, v := range s.binds {
		c.binds[k] = v
	}
	return c
}

func (s *pstate) counter(name string) { s.counters[name] = true }
func (s *pstate) emit(name string)    { s.emits[name] = true }

// outcome is one completed path through a dispatch root.
type outcome struct {
	final    uint32
	wrote    bool
	sends    uint32
	counters map[string]bool
	emits    map[string]bool
	failed   bool
	failPos  token.Pos
}

// --- state spaces and vocabularies ------------------------------------------

// space is one controller's coherence-state vocabulary.
type space struct {
	names  []string
	dom    *types.TypeName
	full   uint32
	shared uint32 // dir: states State.IsShared() covers
	idle   uint32 // dir: states State.IsIdle() covers
}

func (sp *space) bitOf(name string) uint32 {
	for i, n := range sp.names {
		if n == name {
			return 1 << uint(i)
		}
	}
	return 0
}

// --- extractor --------------------------------------------------------------

type extractor struct {
	src   *source
	probs []Problem

	funcs    map[types.Object]*ast.FuncDecl
	fnIndex  map[string]*ast.FuncDecl // "Recv.Name" -> decl
	recvObjs map[types.Object]bool

	graphs map[*ast.BlockStmt]*cfg.Graph
	vis    map[*ast.BlockStmt][]bool
	owner  map[*ast.BlockStmt]token.Pos

	dirSpace, cacheSpace *space
	kindDom              *types.TypeName
	kindNames            []string
	kindVal              map[string]uint32

	waivers     map[*token.File]map[int]string
	usedWaivers map[string]bool

	budgetHit bool
}

func extract(src *source) (*Model, []Problem) {
	x := &extractor{
		src:         src,
		funcs:       make(map[types.Object]*ast.FuncDecl),
		fnIndex:     make(map[string]*ast.FuncDecl),
		recvObjs:    make(map[types.Object]bool),
		graphs:      make(map[*ast.BlockStmt]*cfg.Graph),
		vis:         make(map[*ast.BlockStmt][]bool),
		owner:       make(map[*ast.BlockStmt]token.Pos),
		usedWaivers: make(map[string]bool),
	}
	if !x.harvest() {
		return nil, x.probs
	}
	x.index()
	model := x.buildModel()
	x.checkDeadArms()
	x.checkStaleWaivers()
	if x.budgetHit {
		x.problem(token.NoPos, "protomodel: path budget exceeded; the model may be incomplete")
	}
	sort.SliceStable(x.probs, func(i, j int) bool { return x.probs[i].Pos < x.probs[j].Pos })
	return model, x.probs
}

func (x *extractor) problem(pos token.Pos, format string, args ...any) {
	x.probs = append(x.probs, Problem{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// harvest resolves the enum vocabularies from the proto package's imports.
func (x *extractor) harvest() bool {
	var dirPkg, cachePkg, netPkg *types.Package
	for _, p := range x.src.pkg.Imports() {
		switch p.Path() {
		case "dsisim/internal/directory":
			dirPkg = p
		case "dsisim/internal/cache":
			cachePkg = p
		case "dsisim/internal/netsim":
			netPkg = p
		}
	}
	if dirPkg == nil || cachePkg == nil || netPkg == nil {
		x.problem(token.NoPos, "protomodel: package does not import the directory/cache/netsim triple; not the proto package")
		return false
	}
	var ok bool
	if x.dirSpace, ok = harvestSpace(dirPkg, "State"); !ok {
		x.problem(token.NoPos, "protomodel: cannot enumerate directory.State")
		return false
	}
	x.dirSpace.shared = x.dirSpace.bitOf("Shared") | x.dirSpace.bitOf("SharedSI")
	x.dirSpace.idle = x.dirSpace.bitOf("Idle") | x.dirSpace.bitOf("IdleX") |
		x.dirSpace.bitOf("IdleS") | x.dirSpace.bitOf("IdleSI")
	if x.cacheSpace, ok = harvestSpace(cachePkg, "State"); !ok {
		x.problem(token.NoPos, "protomodel: cannot enumerate cache.State")
		return false
	}
	kinds, ok := harvestSpace(netPkg, "Kind")
	if !ok {
		x.problem(token.NoPos, "protomodel: cannot enumerate netsim.Kind")
		return false
	}
	x.kindDom = kinds.dom
	x.kindNames = kinds.names
	x.kindVal = make(map[string]uint32, len(kinds.names))
	for i, n := range kinds.names {
		x.kindVal[n] = 1 << uint(i)
	}
	x.waivers = make(map[*token.File]map[int]string)
	for _, s := range x.src.dirs.UnreachableSites() {
		lines := x.waivers[s.File]
		if lines == nil {
			lines = make(map[int]string)
			x.waivers[s.File] = lines
		}
		lines[s.Line] = s.Arg
	}
	return true
}

// harvestSpace enumerates the exported constants of pkg's named integer type,
// indexed by value (skipping Num* sentinels).
func harvestSpace(pkg *types.Package, typeName string) (*space, bool) {
	tn, ok := pkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil, false
	}
	sp := &space{dom: tn}
	for _, n := range pkg.Scope().Names() {
		if !token.IsExported(n) || strings.HasPrefix(n, "Num") {
			continue
		}
		c, ok := pkg.Scope().Lookup(n).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj() != tn {
			continue
		}
		v, ok := constant.Int64Val(c.Val())
		if !ok || v < 0 || v >= 32 {
			continue
		}
		for int64(len(sp.names)) <= v {
			sp.names = append(sp.names, "")
		}
		if sp.names[v] == "" {
			sp.names[v] = n
		}
	}
	if len(sp.names) == 0 {
		return nil, false
	}
	for _, n := range sp.names {
		if n == "" {
			return nil, false
		}
	}
	sp.full = uint32(1)<<uint(len(sp.names)) - 1
	return sp, true
}

// index builds the package's function table.
func (x *extractor) index() {
	for _, f := range x.src.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := x.src.info.Defs[fd.Name]; obj != nil {
				x.funcs[obj] = fd
			}
			key := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				if rn := recvTypeName(fd.Recv.List[0].Type); rn != "" {
					key = rn + "." + key
				}
				for _, name := range fd.Recv.List[0].Names {
					if obj := x.src.info.Defs[name]; obj != nil {
						x.recvObjs[obj] = true
					}
				}
			}
			x.fnIndex[key] = fd
		}
	}
}

func recvTypeName(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	}
	return ""
}

func (x *extractor) graphFor(body *ast.BlockStmt, at token.Pos) *cfg.Graph {
	if g, ok := x.graphs[body]; ok {
		return g
	}
	g := cfg.New(body, cfg.Options{IsTerminal: func(c *ast.CallExpr) bool {
		return analysis.IsColdCall(x.src.info, x.src.dirs, c)
	}})
	x.graphs[body] = g
	x.vis[body] = make([]bool, len(g.Blocks))
	x.owner[body] = at
	return g
}

// --- dispatch roots ---------------------------------------------------------

type rootSpec struct {
	ctrl    string
	trigger string
	fn      *ast.FuncDecl
	kinds   uint32 // subject message kind mask (message roots)
	seedTxn bool   // seed the *txn arg's action with {Inv, Recall}
}

func (x *extractor) roots() []rootSpec {
	need := func(key string) *ast.FuncDecl {
		fd := x.fnIndex[key]
		if fd == nil {
			x.problem(token.NoPos, "protomodel: dispatch root %s not found", key)
		}
		return fd
	}
	dirHandle := need("DirCtrl.Handle")
	ccHandle := need("CacheCtrl.Handle")
	var roots []rootSpec
	for i, n := range x.kindNames {
		if dirHandle != nil {
			roots = append(roots, rootSpec{ctrl: "dir", trigger: n, fn: dirHandle, kinds: 1 << uint(i)})
		}
		if ccHandle != nil {
			roots = append(roots, rootSpec{ctrl: "cache", trigger: n, fn: ccHandle, kinds: 1 << uint(i)})
		}
	}
	for _, r := range []struct{ trig, key string }{
		{"op:read", "CacheCtrl.Read"},
		{"op:write", "CacheCtrl.Write"},
		{"op:swap", "CacheCtrl.Swap"},
		{"op:sync", "CacheCtrl.SyncFlush"},
		{"timeout:miss", "CacheCtrl.onMissTimeout"},
		{"timeout:final", "CacheCtrl.onFinalTimeout"},
	} {
		if fd := need(r.key); fd != nil {
			roots = append(roots, rootSpec{ctrl: "cache", trigger: r.trig, fn: fd})
		}
	}
	if fd := need("DirCtrl.onTxnTimeout"); fd != nil {
		roots = append(roots, rootSpec{ctrl: "dir", trigger: "timeout:txn", fn: fd, seedTxn: true})
	}
	return roots
}

// bindRootArgs maps a root's parameters to initial symbolic values by type.
func (x *extractor) bindRootArgs(spec rootSpec) []symVal {
	var args []symVal
	for _, field := range spec.fn.Type.Params.List {
		v := unknownVal
		switch {
		case isNamedType(x.src.info.TypeOf(field.Type), "dsisim/internal/netsim", "Message"):
			v = symVal{k: kSubjMsg}
		case isNamedType(x.src.info.TypeOf(field.Type), "dsisim/internal/mem", "Addr"):
			v = symVal{k: kSubjAddr}
		case spec.seedTxn && isNamedType(x.src.info.TypeOf(field.Type), ProtoPackage, "txn"):
			v = symVal{k: kStruct, fields: map[string]symVal{
				"action": {k: kEnum, dom: x.kindDom, mask: x.kindVal["Inv"] | x.kindVal["Recall"]},
			}}
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			args = append(args, v)
		}
	}
	return args
}

// isNamedType reports whether t (after pointer stripping) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// --- model assembly ---------------------------------------------------------

func (x *extractor) buildModel() *Model {
	model := &Model{SchemaVersion: Schema, Package: x.src.pkg.Path(), Kinds: x.kindNames}
	roots := x.roots()
	dir := Controller{Name: "dir", States: x.dirSpace.names}
	cache := Controller{Name: "cache", States: x.cacheSpace.names}
	// failUses aggregates unwaived all-fail sites across triples so each
	// site yields one finding listing every pair that dies there.
	failUses := make(map[token.Pos][]string)
	for _, spec := range roots {
		sp := x.dirSpace
		ctl := &dir
		if spec.ctrl == "cache" {
			sp = x.cacheSpace
			ctl = &cache
		}
		for s := range sp.names {
			t := x.runRoot(spec, sp, uint32(1)<<uint(s), failUses)
			ctl.Transitions = append(ctl.Transitions, t)
		}
	}
	var pts []token.Pos
	for pos := range failUses {
		pts = append(pts, pos)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	for _, pos := range pts {
		pairs := failUses[pos]
		sort.Strings(pairs)
		x.problem(pos, "unhandled protocol pairs terminate only in this assertion without a //dsi:unreachable waiver: %s", strings.Join(pairs, ", "))
	}
	model.Controllers = []Controller{dir, cache}
	return model
}

// runRoot walks one (root, entry state) pair and folds its outcomes into a
// Transition.
func (x *extractor) runRoot(spec rootSpec, sp *space, entry uint32, failUses map[token.Pos][]string) Transition {
	w := &walker{x: x, space: sp, trigKinds: spec.kinds}
	st := &pstate{
		cur:      entry,
		counters: make(map[string]bool),
		emits:    make(map[string]bool),
		binds:    make(map[string]symVal),
	}
	w.callFunc(spec.fn, st, x.bindRootArgs(spec), 0, nil, func(st2 *pstate, _ []symVal) {
		w.outcomes = append(w.outcomes, outcome{
			final: st2.cur, wrote: st2.wrote, sends: st2.sends,
			counters: st2.counters, emits: st2.emits,
		})
	})

	stateName := sp.names[bitIndex(entry)]
	if debugSteps {
		fmt.Printf("root %s/%s state %s: steps=%d outcomes=%d\n", spec.ctrl, spec.trigger, stateName, w.steps, len(w.outcomes))
	}
	t := Transition{Trigger: spec.trigger, State: stateName}
	if len(w.outcomes) == 0 {
		t.Kind = Infeasible
		return t
	}
	allFail := true
	anyFail := false
	var finals uint32
	anyWrote := false
	counters := make(map[string]bool)
	emits := make(map[string]bool)
	var sends uint32
	for _, o := range w.outcomes {
		if o.failed {
			anyFail = true
			continue
		}
		allFail = false
		finals |= o.final
		anyWrote = anyWrote || o.wrote
		sends |= o.sends
		for c := range o.counters {
			counters[c] = true
		}
		for e := range o.emits {
			emits[e] = true
		}
	}
	if allFail {
		// Every path dies in an assertion: the pair needs a waiver on each
		// distinct fail site.
		t.Kind = Waived
		seen := make(map[token.Pos]bool)
		for _, o := range w.outcomes {
			if seen[o.failPos] {
				continue
			}
			seen[o.failPos] = true
			if arg, ok := x.waiverAt(o.failPos); ok {
				reason, rok := ParseWaiverReason(firstToken(arg))
				if !rok {
					x.problem(o.failPos, "//dsi:unreachable waiver needs a reason token (not-routed or invariant), got %q", arg)
				}
				if t.Reason == ReasonNone {
					t.Reason = reason
				}
			} else {
				t.Kind = Fail
				key := fmt.Sprintf("(%s, %s, %s)", ctrlName(sp == x.cacheSpace), t.Trigger, t.State)
				failUses[o.failPos] = append(failUses[o.failPos], key)
			}
		}
		return t
	}
	t.Kind = Handled
	t.MayFail = anyFail
	if anyWrote {
		for i, n := range sp.names {
			if finals&(1<<uint(i)) != 0 {
				t.Next = append(t.Next, n)
			}
		}
	}
	for i, n := range x.kindNames {
		if sends&(1<<uint(i)) != 0 {
			t.Sends = append(t.Sends, n)
		}
	}
	t.Counters = sortedStrings(counters)
	t.Emits = sortedStrings(emits)
	if anyWrote && len(t.Counters) == 0 && len(t.Emits) == 0 {
		x.problem(spec.fn.Pos(), "silent transition: (%s, %s, %s) changes coherence state without a stats counter or obs emission on any path",
			ctrlName(sp == x.cacheSpace), t.Trigger, t.State)
	}
	return t
}

func ctrlName(isCache bool) string {
	if isCache {
		return "cache"
	}
	return "dir"
}

func bitIndex(mask uint32) int {
	for i := 0; i < 32; i++ {
		if mask&(1<<uint(i)) != 0 {
			return i
		}
	}
	return 0
}

func firstToken(s string) string {
	fs := strings.Fields(s)
	if len(fs) == 0 {
		return ""
	}
	return fs[0]
}

// waiverAt checks pos's line (or the line above) for a //dsi:unreachable
// directive and marks it used.
func (x *extractor) waiverAt(pos token.Pos) (string, bool) {
	tf := x.src.fset.File(pos)
	if tf == nil {
		return "", false
	}
	lines := x.waivers[tf]
	if lines == nil {
		return "", false
	}
	l := tf.Line(pos)
	if arg, ok := lines[l]; ok {
		x.usedWaivers[tf.Name()+":"+strconv.Itoa(l)] = true
		return arg, true
	}
	if arg, ok := lines[l-1]; ok {
		x.usedWaivers[tf.Name()+":"+strconv.Itoa(l-1)] = true
		return arg, true
	}
	return "", false
}

// --- post-extraction checks -------------------------------------------------

// checkDeadArms reports live blocks of entered functions no feasible
// (controller, trigger, state) walk ever visited. Blocks that exist only to
// assert (fail-terminated) or to return are exempt: unreachable defensive
// arms are the waiver mechanism's domain, not dead code.
func (x *extractor) checkDeadArms() {
	type dead struct {
		pos token.Pos
	}
	var found []dead
	for body, g := range x.graphs {
		vis := x.vis[body]
		for _, blk := range g.Blocks {
			if !blk.Live || blk == g.Exit || vis[blk.Index] {
				continue
			}
			if pos, meaningful := blockAnchor(x, blk); meaningful {
				found = append(found, dead{pos})
			}
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, d := range found {
		x.problem(d.pos, "dead transition arm: no (controller, trigger, state) pair reaches this code")
	}
}

// blockAnchor decides whether an unvisited block is worth reporting and where.
func blockAnchor(x *extractor, blk *cfg.Block) (token.Pos, bool) {
	meaningful := false
	var pos token.Pos
	for _, n := range blk.Nodes {
		switch s := n.(type) {
		case *ast.ReturnStmt, *ast.EmptyStmt:
			continue
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if analysis.IsColdCall(x.src.info, x.src.dirs, call) {
					// A fail-only arm: handled by the waiver checks.
					return token.NoPos, false
				}
			}
		}
		if !meaningful {
			meaningful = true
			pos = n.Pos()
		}
	}
	if !meaningful && blk.Cond != nil {
		return blk.Cond.Pos(), true
	}
	return pos, meaningful
}

func (x *extractor) checkStaleWaivers() {
	for _, s := range x.src.dirs.UnreachableSites() {
		if !x.usedWaivers[s.File.Name()+":"+strconv.Itoa(s.Line)] {
			x.problem(s.File.LineStart(s.Line),
				"stale //dsi:unreachable waiver: no all-fail (controller, trigger, state) pair terminates here")
		}
	}
}
