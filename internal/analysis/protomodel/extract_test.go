package protomodel

import (
	"os"
	"path/filepath"
	"testing"

	"dsisim/internal/analysis"
)

// loadProto loads the real proto package through the export-data loader.
func loadProto(t *testing.T) *analysis.Package {
	t.Helper()
	ld := analysis.NewLoader("../../..")
	pkgs, err := ld.Load("./internal/proto")
	if err != nil {
		t.Fatalf("loading proto: %v", err)
	}
	for _, p := range pkgs {
		if p.Path == ProtoPackage {
			return p
		}
	}
	t.Fatalf("proto package not among %d loaded packages", len(pkgs))
	return nil
}

// TestExtractProtoClean extracts the model from the real protocol sources and
// requires a finding-free run: every (controller, trigger, state) pair is
// handled, waived, or infeasible, with no dead arms or stale waivers.
func TestExtractProtoClean(t *testing.T) {
	p := loadProto(t)
	model, probs := ExtractPackage(p)
	for _, pr := range probs {
		t.Errorf("%s: %s", p.Fset.Position(pr.Pos), pr.Msg)
	}
	if model == nil {
		t.Fatal("no model extracted")
	}
	if got := len(model.Controllers); got != 2 {
		t.Fatalf("controllers = %d, want 2", got)
	}
}

// TestExtractModelShape checks structural invariants of the extracted model:
// full (trigger, state) coverage per controller and well-formed transitions.
func TestExtractModelShape(t *testing.T) {
	p := loadProto(t)
	model, _ := ExtractPackage(p)
	if model == nil {
		t.Fatal("no model extracted")
	}
	if len(model.Kinds) == 0 {
		t.Fatal("empty kind vocabulary")
	}
	kinds := make(map[string]bool, len(model.Kinds))
	for _, k := range model.Kinds {
		kinds[k] = true
	}
	for _, c := range model.Controllers {
		if c.Name != "dir" && c.Name != "cache" {
			t.Errorf("unexpected controller %q", c.Name)
		}
		states := make(map[string]bool, len(c.States))
		for _, s := range c.States {
			states[s] = true
		}
		seen := make(map[[2]string]bool)
		var handled int
		for _, tr := range c.Transitions {
			key := [2]string{tr.Trigger, tr.State}
			if seen[key] {
				t.Errorf("%s: duplicate transition (%s, %s)", c.Name, tr.Trigger, tr.State)
			}
			seen[key] = true
			if !states[tr.State] {
				t.Errorf("%s: transition state %q not in vocabulary", c.Name, tr.State)
			}
			for _, n := range tr.Next {
				if !states[n] {
					t.Errorf("%s: (%s, %s) next state %q not in vocabulary", c.Name, tr.Trigger, tr.State, n)
				}
			}
			for _, s := range tr.Sends {
				if !kinds[s] {
					t.Errorf("%s: (%s, %s) sends unknown kind %q", c.Name, tr.Trigger, tr.State, s)
				}
			}
			if tr.Kind == Handled {
				handled++
			}
			if tr.Kind == Waived && tr.Reason == ReasonNone {
				t.Errorf("%s: (%s, %s) waived without a reason", c.Name, tr.Trigger, tr.State)
			}
		}
		// Every message kind must appear for every state.
		for _, kn := range model.Kinds {
			for _, s := range c.States {
				if !seen[[2]string{kn, s}] {
					t.Errorf("%s: missing transition (%s, %s)", c.Name, kn, s)
				}
			}
		}
		if handled == 0 {
			t.Errorf("%s: no handled transitions at all", c.Name)
		}
	}
}

// TestGoldenStable verifies the committed golden matches a fresh extraction,
// so docs/protomodel.json cannot drift from the sources.
func TestGoldenStable(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "..", "..", "docs", "protomodel.json"))
	if err != nil {
		t.Fatalf("reading golden (regenerate with dsivet -run protomodel -model docs/protomodel.json): %v", err)
	}
	p := loadProto(t)
	model, probs := ExtractPackage(p)
	if model == nil {
		t.Fatalf("no model extracted (%d problems)", len(probs))
	}
	fresh, err := model.Render()
	if err != nil {
		t.Fatalf("rendering: %v", err)
	}
	if string(fresh) != string(golden) {
		t.Fatalf("docs/protomodel.json is stale: regenerate with `go run ./cmd/dsivet -run protomodel -model docs/protomodel.json ./...`")
	}
	// The golden must round-trip through Parse.
	parsed, err := Parse(golden)
	if err != nil {
		t.Fatalf("parsing golden: %v", err)
	}
	if parsed.Controller("dir") == nil || parsed.Controller("cache") == nil {
		t.Fatal("parsed golden missing a controller table")
	}
}
