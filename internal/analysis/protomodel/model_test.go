package protomodel

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTransitionKindNames(t *testing.T) {
	cases := []struct {
		k    TransitionKind
		name string
	}{
		{Handled, "handled"},
		{Fail, "fail"},
		{Waived, "waived"},
		{Infeasible, "infeasible"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.name {
			t.Errorf("%d.String() = %q, want %q", c.k, got, c.name)
		}
		b, err := c.k.MarshalText()
		if err != nil || string(b) != c.name {
			t.Errorf("%d.MarshalText() = %q, %v, want %q", c.k, b, err, c.name)
		}
		var back TransitionKind
		if err := back.UnmarshalText([]byte(c.name)); err != nil || back != c.k {
			t.Errorf("UnmarshalText(%q) = %d, %v, want %d", c.name, back, err, c.k)
		}
	}
	if s := TransitionKind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("invalid kind String() = %q, want the raw value in it", s)
	}
	if _, err := TransitionKind(99).MarshalText(); err == nil {
		t.Error("MarshalText accepted an invalid TransitionKind")
	}
	var k TransitionKind
	if err := k.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("UnmarshalText accepted an unknown kind name")
	}
}

func TestWaiverReasonNames(t *testing.T) {
	cases := []struct {
		r    WaiverReason
		name string
	}{
		{ReasonNone, ""},
		{ReasonNotRouted, "not-routed"},
		{ReasonInvariant, "invariant"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.name {
			t.Errorf("%d.String() = %q, want %q", c.r, got, c.name)
		}
		b, err := c.r.MarshalText()
		if err != nil || string(b) != c.name {
			t.Errorf("%d.MarshalText() = %q, %v, want %q", c.r, b, err, c.name)
		}
		var back WaiverReason
		if err := back.UnmarshalText([]byte(c.name)); err != nil || back != c.r {
			t.Errorf("UnmarshalText(%q) = %d, %v, want %d", c.name, back, err, c.r)
		}
		parsed, ok := ParseWaiverReason(c.name)
		wantOK := c.r != ReasonNone
		if ok != wantOK || (ok && parsed != c.r) {
			t.Errorf("ParseWaiverReason(%q) = %d, %v, want %d, %v", c.name, parsed, ok, c.r, wantOK)
		}
	}
	if _, err := WaiverReason(99).MarshalText(); err == nil {
		t.Error("MarshalText accepted an invalid WaiverReason")
	}
	var r WaiverReason
	if err := r.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("UnmarshalText accepted an unknown reason token")
	}
	if _, ok := ParseWaiverReason("bogus"); ok {
		t.Error("ParseWaiverReason accepted an unknown token")
	}
}

// TestTransitionJSONRoundTrip pins the wire names the committed golden uses:
// kinds and reasons serialize as their lowercase tokens, and zero-valued
// optional fields vanish.
func TestTransitionJSONRoundTrip(t *testing.T) {
	tr := Transition{Trigger: "GetS", State: "Idle", Kind: Waived, Reason: ReasonNotRouted}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"kind":"waived"`, `"reason":"not-routed"`} {
		if !strings.Contains(s, want) {
			t.Errorf("marshaled transition %s lacks %s", s, want)
		}
	}
	for _, reject := range []string{"next", "sends", "counters", "emits", "mayFail"} {
		if strings.Contains(s, reject) {
			t.Errorf("marshaled transition %s carries empty optional field %q", s, reject)
		}
	}
	var back Transition
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != Waived || back.Reason != ReasonNotRouted || back.Trigger != "GetS" {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

func TestParseRejectsWrongSchema(t *testing.T) {
	if _, err := Parse([]byte(`{"schema": 999, "package": "x", "kinds": [], "controllers": []}`)); err == nil {
		t.Error("Parse accepted a future schema version")
	}
}
