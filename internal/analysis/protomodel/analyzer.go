package protomodel

import (
	"dsisim/internal/analysis"
)

// Analyzer wires extraction into the dsivet suite: on the proto package it
// extracts the transition model and reports every completeness finding;
// other packages are skipped.
var Analyzer = &analysis.Analyzer{
	Name: "protomodel",
	Doc:  "check the coherence protocol's transition table for completeness: every (controller, state, trigger) pair is handled, waived with //dsi:unreachable, or statically infeasible; no dead arms; no silent state changes",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != ProtoPackage {
		return nil
	}
	_, probs := ExtractPass(pass)
	for _, p := range probs {
		pass.Reportf(p.Pos, "%s", p.Msg)
	}
	return nil
}
