package protomodel

import (
	"testing"

	"dsisim/internal/mem"
	"dsisim/internal/netsim"
	"dsisim/internal/obs"
)

// synthModel builds a small hand-written model exercising both controllers:
// GetS is home-bound (handled in Idle/Shared, waived in Exclusive), Inv is
// cache-bound (handled in Shared/Exclusive, waived in Invalid), and each
// side has one timeout trigger.
func synthModel() *Model {
	return &Model{
		SchemaVersion: Schema,
		Package:       ProtoPackage,
		Kinds:         []string{"GetS", "Inv"},
		Controllers: []Controller{
			{
				Name:   "cache",
				States: []string{"Invalid", "Shared", "Exclusive"},
				Transitions: []Transition{
					{Trigger: "GetS", State: "Invalid", Kind: Waived, Reason: ReasonNotRouted},
					{Trigger: "GetS", State: "Shared", Kind: Waived, Reason: ReasonNotRouted},
					{Trigger: "GetS", State: "Exclusive", Kind: Waived, Reason: ReasonNotRouted},
					{Trigger: "Inv", State: "Invalid", Kind: Waived, Reason: ReasonInvariant},
					{Trigger: "Inv", State: "Shared", Kind: Handled, Next: []string{"Invalid"}},
					{Trigger: "Inv", State: "Exclusive", Kind: Handled, Next: []string{"Invalid"}},
					{Trigger: "timeout:miss", State: "Invalid", Kind: Handled},
					{Trigger: "timeout:final", State: "Shared", Kind: Handled},
					{Trigger: "op:read", State: "Invalid", Kind: Handled},
				},
			},
			{
				Name:   "dir",
				States: []string{"Idle", "Shared", "Exclusive"},
				Transitions: []Transition{
					{Trigger: "GetS", State: "Idle", Kind: Handled, Next: []string{"Shared"}},
					{Trigger: "GetS", State: "Shared", Kind: Handled},
					{Trigger: "GetS", State: "Exclusive", Kind: Waived, Reason: ReasonInvariant},
					{Trigger: "Inv", State: "Idle", Kind: Waived, Reason: ReasonNotRouted},
					{Trigger: "Inv", State: "Shared", Kind: Waived, Reason: ReasonNotRouted},
					{Trigger: "Inv", State: "Exclusive", Kind: Waived, Reason: ReasonNotRouted},
					{Trigger: "timeout:txn", State: "Exclusive", Kind: Handled},
				},
			},
		},
	}
}

const covBlock = mem.Addr(0x1000)

func deliver(s *obs.Sink, kind netsim.Kind, dst int) {
	s.MsgDelivered(1, netsim.Message{Kind: kind, Src: 0, Dst: dst, Addr: covBlock})
}

func TestCoverageCleanStream(t *testing.T) {
	cov, err := NewCoverage(synthModel())
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink(obs.Config{})
	deliver(sink, netsim.GetS, 3)                    // dir: GetS in Idle
	sink.OnDirState(2, 3, covBlock, 1, 0, 1)         // dir Idle -> Shared
	deliver(sink, netsim.GetS, 3)                    // dir: GetS in Shared
	sink.OnCacheState(3, 5, covBlock, 1, 0, 1, 0)    // cache Invalid -> Shared
	deliver(sink, netsim.Inv, 5)                     // cache: Inv in Shared
	sink.OnRetryTimeout(4, 5, covBlock, 1, 2, false) // cache timeout in... Shared has timeout:final
	cov.FoldSink(sink)

	if vs := cov.Violations(); len(vs) != 0 {
		t.Fatalf("clean stream produced violations: %v", vs)
	}
	sum := cov.Summarize()
	// Observable transitions: cache Inv x2, timeout:miss, timeout:final
	// (op:read excluded), dir GetS x2, timeout:txn = 7. Exercised: dir GetS
	// in Idle + Shared, cache Inv in Shared, cache timeout:final in Shared.
	if sum.Observable != 7 || sum.Exercised != 4 || sum.Violations != 0 {
		t.Fatalf("summary = %+v, want {7 4 0}", sum)
	}
	missing := cov.Missing()
	if len(missing) != 3 {
		t.Fatalf("missing = %v, want 3 entries", missing)
	}
	for _, m := range missing {
		if m.Trigger == "op:read" {
			t.Fatalf("op:* triggers are not runtime-attributable, but Missing lists %s", m)
		}
	}
}

func TestCoverageViolations(t *testing.T) {
	cov, err := NewCoverage(synthModel())
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink(obs.Config{})
	sink.OnCacheState(1, 5, covBlock, 1, 0, 2, 0) // cache -> Exclusive
	deliver(sink, netsim.Inv, 5)                  // handled
	sink.OnSelfInval(2, 5, covBlock, 2, false, false)
	deliver(sink, netsim.Inv, 5) // cache: Inv in Invalid — waived, a violation
	sink.OnDirState(3, 5, covBlock, 1, 0, 2)
	deliver(sink, netsim.GetS, 5) // dir: GetS in Exclusive — waived, a violation
	deliver(sink, netsim.GetX, 5) // dir: GetX not in the model at all — a violation
	cov.FoldSink(sink)

	vs := cov.Violations()
	if len(vs) != 3 {
		t.Fatalf("violations = %v, want 3", vs)
	}
	want := []Observed{
		{Controller: "cache", Trigger: "Inv", State: "Invalid"},
		{Controller: "dir", Trigger: "GetS", State: "Exclusive"},
		{Controller: "dir", Trigger: "GetX", State: "Exclusive"},
	}
	for i, w := range want {
		if vs[i].Observed != w || vs[i].Count != 1 {
			t.Errorf("violation %d = %+v, want %v x1", i, vs[i], w)
		}
	}
}

func TestCoverageShadowReset(t *testing.T) {
	cov, err := NewCoverage(synthModel())
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink(obs.Config{})
	// FIFO displacement resets the cache shadow to Invalid, so the next Inv
	// must be filed under Invalid (the waived pair), not Shared.
	sink.OnCacheState(1, 5, covBlock, 1, 0, 1, 0)
	sink.OnSelfInval(2, 5, covBlock, 1, false, true) // fifo displacement
	deliver(sink, netsim.Inv, 5)
	// Directory-side timeout attributes to timeout:txn with the dir shadow.
	sink.OnDirState(3, 5, covBlock, 1, 0, 2)
	sink.OnRetryTimeout(4, 5, covBlock, 1, 1, true)
	cov.FoldSink(sink)

	vs := cov.Violations()
	if len(vs) != 1 || vs[0].Observed != (Observed{Controller: "cache", Trigger: "Inv", State: "Invalid"}) {
		t.Fatalf("violations = %v, want exactly cache Inv in Invalid", vs)
	}
	seen := cov.Seen()
	found := false
	for _, s := range seen {
		if s.Observed == (Observed{Controller: "dir", Trigger: "timeout:txn", State: "Exclusive"}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("dir timeout not attributed to timeout:txn in Exclusive: %v", seen)
	}
}

func TestCoverageRejectsMisrouting(t *testing.T) {
	m := synthModel()
	// Claim Inv is handled on the dir side: coverage would file its
	// observations under the wrong controller, so NewCoverage must refuse.
	m.Controller("dir").Lookup("Inv", "Idle").Kind = Handled
	if _, err := NewCoverage(m); err == nil {
		t.Fatal("NewCoverage accepted a model whose routing disagrees with the checker")
	}
	m2 := synthModel()
	m2.Controllers = m2.Controllers[:1]
	if _, err := NewCoverage(m2); err == nil {
		t.Fatal("NewCoverage accepted a model without a dir controller")
	}
}
