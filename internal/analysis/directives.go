package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The framework recognizes four //dsi: directives, written like //go:
// compiler directives (no space after the slashes, at the start of a comment
// line):
//
//	//dsi:hotpath   on a function declaration: the hotpath analyzer flags
//	                allocating constructs (closures, interface boxing, fmt
//	                calls, un-capped appends to fresh slices) in its body.
//	//dsi:coldpath  on a function declaration: calls to it are terminal
//	                error paths (panic-or-record); the hotpath and
//	                exhaustive analyzers treat a call to it like panic.
//	//dsi:anyorder  on or immediately above a statement: the determinism
//	                analyzer accepts the map iteration on that line; the
//	                author asserts iteration order cannot reach simulation
//	                state or output.
//	//dsi:parmerge  on or immediately above a go statement: the determinism
//	                analyzer accepts the goroutine spawn; the author asserts
//	                the spawned work is part of the vetted deterministic
//	                partition/merge machinery (the parallel delivery
//	                engine), where every cross-goroutine access is ordered
//	                by the coordinator's channel handshakes and results are
//	                independent of goroutine scheduling.
//	//dsi:unreachable <reason> [— free text]
//	                on or immediately above an assertion call (Env.fail):
//	                the protomodel analyzer accepts that some (controller,
//	                state, message-kind) pairs terminate only in this
//	                assertion. The reason token names why the pair cannot
//	                occur ("not-routed": the network never delivers that
//	                kind to this controller side; "invariant": a protocol
//	                invariant excludes the state).
const (
	DirectiveHotpath     = "dsi:hotpath"
	DirectiveColdpath    = "dsi:coldpath"
	DirectiveAnyorder    = "dsi:anyorder"
	DirectiveParmerge    = "dsi:parmerge"
	DirectiveUnreachable = "dsi:unreachable"
)

// ColdFuncs names functions outside the analyzed package that count as
// //dsi:coldpath at call sites, keyed by (*types.Func).FullName. Directive
// harvesting reads only the analyzed package's own syntax — dependencies are
// imported from export data, which carries no comments — so cross-package
// terminal error paths must register here. The declaration should still
// carry the //dsi:coldpath comment for readers and same-package call sites.
var ColdFuncs = map[string]bool{
	// The workload kernels' panic-or-record assertion.
	"(*dsisim/internal/cpu.Proc).Assert": true,
}

// Directives is the per-package index of //dsi: annotations.
type Directives struct {
	// Hotpath holds the function declarations annotated //dsi:hotpath.
	Hotpath map[*ast.FuncDecl]bool
	// Coldpath holds the objects of functions annotated //dsi:coldpath
	// (same-package resolution: the annotation must be in the analyzed
	// package).
	Coldpath map[types.Object]bool
	// anyorder and parmerge record, per file, the set of lines carrying the
	// corresponding statement-level waiver comment.
	anyorder map[*token.File]map[int]bool
	parmerge map[*token.File]map[int]bool
	// unreachable records, per file, line -> the directive's argument text
	// (reason token plus optional prose), "" when the bare directive was
	// written without a reason.
	unreachable map[*token.File]map[int]string
}

// CollectDirectives scans the package's syntax for //dsi: directives.
func CollectDirectives(fset *token.FileSet, files []*ast.File, info *types.Info) *Directives {
	d := &Directives{
		Hotpath:     make(map[*ast.FuncDecl]bool),
		Coldpath:    make(map[types.Object]bool),
		anyorder:    make(map[*token.File]map[int]bool),
		parmerge:    make(map[*token.File]map[int]bool),
		unreachable: make(map[*token.File]map[int]string),
	}
	mark := func(idx map[*token.File]map[int]bool, tf *token.File, pos token.Pos) {
		lines := idx[tf]
		if lines == nil {
			lines = make(map[int]bool)
			idx[tf] = lines
		}
		lines[tf.Line(pos)] = true
	}
	for _, f := range files {
		tf := fset.File(f.Pos())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if tf == nil {
					continue
				}
				switch {
				case strings.HasPrefix(c.Text, "//"+DirectiveAnyorder):
					mark(d.anyorder, tf, c.Pos())
				case strings.HasPrefix(c.Text, "//"+DirectiveParmerge):
					mark(d.parmerge, tf, c.Pos())
				case strings.HasPrefix(c.Text, "//"+DirectiveUnreachable):
					lines := d.unreachable[tf]
					if lines == nil {
						lines = make(map[int]string)
						d.unreachable[tf] = lines
					}
					arg := strings.TrimPrefix(c.Text, "//"+DirectiveUnreachable)
					lines[tf.Line(c.Pos())] = strings.TrimSpace(arg)
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				switch {
				case strings.HasPrefix(c.Text, "//"+DirectiveHotpath):
					d.Hotpath[fd] = true
				case strings.HasPrefix(c.Text, "//"+DirectiveColdpath):
					if info != nil && fd.Name != nil {
						if obj := info.Defs[fd.Name]; obj != nil {
							d.Coldpath[obj] = true
						}
					}
				}
			}
		}
	}
	return d
}

// Anyorder reports whether pos's line, or the line above it, carries a
// //dsi:anyorder directive (so the waiver can sit on its own line above the
// loop or trail the loop header).
func (d *Directives) Anyorder(fset *token.FileSet, pos token.Pos) bool {
	return onLine(d.anyorder, fset, pos)
}

// Parmerge reports whether pos's line, or the line above it, carries a
// //dsi:parmerge directive waiving the goroutine-spawn check for vetted
// partition/merge code.
func (d *Directives) Parmerge(fset *token.FileSet, pos token.Pos) bool {
	return onLine(d.parmerge, fset, pos)
}

// Unreachable reports whether pos's line, or the line above it, carries a
// //dsi:unreachable waiver, and returns the directive's argument text
// (reason token plus optional prose).
func (d *Directives) Unreachable(fset *token.FileSet, pos token.Pos) (arg string, ok bool) {
	tf := fset.File(pos)
	if tf == nil {
		return "", false
	}
	lines := d.unreachable[tf]
	if lines == nil {
		return "", false
	}
	l := tf.Line(pos)
	if arg, ok := lines[l]; ok {
		return arg, true
	}
	if arg, ok := lines[l-1]; ok {
		return arg, true
	}
	return "", false
}

// UnreachableSite is one //dsi:unreachable directive occurrence.
type UnreachableSite struct {
	// File is the file the directive appears in.
	File *token.File
	// Line is the line the directive comment starts on.
	Line int
	// Arg is the directive's argument text (reason token plus optional
	// prose), "" for a bare directive.
	Arg string
}

// UnreachableSites returns every //dsi:unreachable directive in the package,
// in deterministic (file name, line) order. The protomodel analyzer uses this
// to report stale waivers: directives no fail site consumes.
func (d *Directives) UnreachableSites() []UnreachableSite {
	var out []UnreachableSite
	for tf, lines := range d.unreachable {
		for line, arg := range lines {
			out = append(out, UnreachableSite{File: tf, Line: line, Arg: arg})
		}
	}
	sortSites(out)
	return out
}

func sortSites(sites []UnreachableSite) {
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0; j-- {
			a, b := sites[j-1], sites[j]
			if a.File.Name() < b.File.Name() || (a.File.Name() == b.File.Name() && a.Line <= b.Line) {
				break
			}
			sites[j-1], sites[j] = b, a
		}
	}
}

// onLine reports whether pos's line or the line above carries a mark.
func onLine(idx map[*token.File]map[int]bool, fset *token.FileSet, pos token.Pos) bool {
	tf := fset.File(pos)
	if tf == nil {
		return false
	}
	lines := idx[tf]
	if lines == nil {
		return false
	}
	l := tf.Line(pos)
	return lines[l] || lines[l-1]
}

// IsColdCall reports whether call is panic(...) or a call to a function
// annotated //dsi:coldpath, using the pass's type information.
func IsColdCall(info *types.Info, dirs *Directives, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := info.Uses[fun]
		if b, ok := obj.(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
		return coldObject(dirs, obj)
	case *ast.SelectorExpr:
		return coldObject(dirs, info.Uses[fun.Sel])
	}
	return false
}

// coldObject reports whether obj is coldpath: annotated in the analyzed
// package, or registered in ColdFuncs for cross-package call sites.
func coldObject(dirs *Directives, obj types.Object) bool {
	if obj == nil {
		return false
	}
	if dirs.Coldpath[obj] {
		return true
	}
	f, ok := obj.(*types.Func)
	return ok && ColdFuncs[f.FullName()]
}
