package exhaustive_test

import (
	"path/filepath"
	"testing"

	"dsisim/internal/analysis/analysistest"
	"dsisim/internal/analysis/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "a"), exhaustive.Default())
}
