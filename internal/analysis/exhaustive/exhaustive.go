// Package exhaustive checks that every switch over a protocol enum —
// directory.State, cache.State, netsim.Kind, proto.Consistency, and any
// other module-defined integer enumeration — either covers all of the enum's
// constants or carries an explicit terminating default (panic or a call to a
// //dsi:coldpath function such as proto.Env.fail).
//
// The DSI paper's four additional directory states make the protocol
// transition tables easy to leave incomplete; a switch that silently falls
// through on a state the author forgot is exactly the class of bug exhaustive
// state checking catches (cf. the Tardis and "Mending Fences" verification
// work cited in PAPERS.md). This analyzer is the cheap static version of
// that guarantee.
//
// A type counts as an enum when it is a defined (non-alias) type, its
// underlying type is an integer, it is declared in this module (or the
// analyzed package itself), and at least two package-level constants of the
// exact type exist. Constants whose names begin with "Num" are sentinels
// (NumKinds, NumCategories) and are not required in the arms.
package exhaustive

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dsisim/internal/analysis"
)

// New returns the analyzer. enumPkg reports whether an enum declared in the
// package with the given import path is subject to the check; the analyzed
// package's own enums are always subject.
func New(enumPkg func(path string) bool) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "exhaustive",
		Doc:  "switches over protocol enums must cover every constant or carry a panicking default",
		Run:  func(pass *analysis.Pass) error { return run(pass, enumPkg) },
	}
}

// Default returns the analyzer configured for this module: enums declared in
// any dsisim package are checked.
func Default() *analysis.Analyzer {
	return New(func(path string) bool {
		return path == "dsisim" || strings.HasPrefix(path, "dsisim/")
	})
}

// enum describes one enumeration type's constant set.
type enum struct {
	typeName string
	// members maps constant value (exact string representation) to the names
	// declaring it, in declaration order so aliases defer to the original
	// constant in messages. Sentinels are excluded.
	members map[string][]member
}

type member struct {
	name string
	pos  token.Pos
}

// enumOf classifies the switch tag's type, returning nil when the type is
// not a checked enum.
func enumOf(pass *analysis.Pass, enumPkg func(string) bool, t types.Type) *enum {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	if pkg != pass.Pkg && !enumPkg(pkg.Path()) {
		return nil
	}
	e := &enum{typeName: named.Obj().Name(), members: make(map[string][]member)}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Type() != t {
			continue
		}
		if strings.HasPrefix(name, "Num") || strings.HasPrefix(name, "num") {
			continue // sentinel bounding the enumeration
		}
		key := c.Val().ExactString()
		e.members[key] = append(e.members[key], member{name, c.Pos()})
	}
	for _, ms := range e.members {
		sort.Slice(ms, func(i, j int) bool { return ms[i].pos < ms[j].pos })
	}
	if len(e.members) < 2 {
		return nil
	}
	return e
}

// terminatingDefault reports whether the default clause's body reaches
// panic(...) or a //dsi:coldpath call, directly or inside nested statements.
func terminatingDefault(pass *analysis.Pass, body []ast.Stmt) bool {
	found := false
	for _, st := range body {
		ast.Inspect(st, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if analysis.IsColdCall(pass.TypesInfo, pass.Directives, call) {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

func run(pass *analysis.Pass, enumPkg func(string) bool) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := pass.TypeOf(sw.Tag)
			if t == nil {
				return true
			}
			e := enumOf(pass, enumPkg, t)
			if e == nil {
				return true
			}
			covered := make(map[string]bool)
			var defaultClause *ast.CaseClause
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					defaultClause = cc
					continue
				}
				for _, expr := range cc.List {
					tv, ok := pass.TypesInfo.Types[expr]
					if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
						continue
					}
					covered[tv.Value.ExactString()] = true
				}
			}
			var missing []string
			for val, ms := range e.members {
				if !covered[val] {
					missing = append(missing, ms[0].name)
				}
			}
			if len(missing) == 0 {
				return true
			}
			if defaultClause != nil && terminatingDefault(pass, defaultClause.Body) {
				return true
			}
			sort.Strings(missing)
			what := "no default"
			if defaultClause != nil {
				what = "a silent default"
			}
			pass.Reportf(sw.Pos(),
				"non-exhaustive switch over %s with %s: missing %s (add arms or a panicking default)",
				e.typeName, what, strings.Join(missing, ", "))
			return true
		})
	}
	return nil
}
