// Test fixture for the exhaustive analyzer: switches over a local enum in
// every accepted and rejected shape.
package a

// State is a checked enum: defined type, integer underlying, >= 2 constants.
type State int

const (
	Idle State = iota
	Shared
	Excl
	NumStates // sentinel: bounds the enum, never required in arms
)

// Aliased shares Excl's value; covering either name covers the value.
const Aliased = Excl

// notEnum has a single constant, so it is not classified as an enum.
type notEnum int

const only notEnum = 0

//dsi:coldpath
func fail(msg string) {
	panic(msg)
}

func allArms(s State) int { // ok: every constant covered
	switch s {
	case Idle:
		return 0
	case Shared:
		return 1
	case Excl:
		return 2
	}
	return -1
}

func aliasArm(s State) int { // ok: Aliased covers Excl's value
	switch s {
	case Idle, Shared:
		return 0
	case Aliased:
		return 1
	}
	return -1
}

func panickingDefault(s State) int { // ok: default terminates with panic
	switch s {
	case Idle:
		return 0
	default:
		panic("unhandled state")
	}
}

func coldpathDefault(s State) { // ok: default calls a //dsi:coldpath func
	switch s {
	case Idle:
	default:
		fail("unhandled state")
	}
}

func missingArm(s State) {
	switch s { // want `non-exhaustive switch over State with no default: missing Excl, Shared`
	case Idle:
	}
}

func silentDefault(s State) {
	switch s { // want `non-exhaustive switch over State with a silent default: missing Excl`
	case Idle, Shared:
	default:
	}
}

func notAnEnumSwitch(n int, ne notEnum) { // ok: int and 1-constant types are not enums
	switch n {
	case 0:
	}
	switch ne {
	case only:
	}
}

func tagless(s State) { // ok: tagless switches are condition chains, not enum dispatch
	switch {
	case s == Idle:
	}
}
