// Package hotpath flags allocating constructs in functions annotated
// //dsi:hotpath — the PR-1 kernel paths (event scheduling, message delivery,
// controller dispatch) whose allocation-free steady state is pinned by
// obs_allocs_test.go and the BenchmarkRunOne allocs/op goldens.
//
// Flagged inside an annotated function:
//
//   - function literals: a closure that escapes allocates its capture
//     record; hot paths use the typed event path (event.AtCall with pooled
//     records) instead;
//   - calls into package fmt: every fmt call boxes its operands and walks
//     reflection;
//   - implicit interface conversions at call sites and explicit interface
//     conversions, when the converted value is not pointer-shaped (pointers,
//     maps, channels, and funcs store directly in the interface word;
//     structs, strings, and integers heap-allocate);
//   - append to a fresh, capacity-free slice (var s []T / s := []T{} /
//     make([]T, 0)): growth reallocates every few appends; hot paths
//     preallocate or reuse pooled buffers;
//   - map indexing (m[k], whether read, write, or comma-ok) and range over a
//     map: every access hashes the key, and map ranges have randomized order
//     besides; hot paths index dense tables (internal/blockmap) instead.
//
// Terminal error paths are exempt: the arguments of panic(...) and of calls
// to //dsi:coldpath functions (proto.Env.fail) are not inspected, since a
// simulation that is crashing may allocate freely.
package hotpath

import (
	"go/ast"
	"go/types"

	"dsisim/internal/analysis"
)

// Analyzer is the hotpath checker.
func Analyzer() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "hotpath",
		Doc:  "//dsi:hotpath functions must avoid closures, interface boxing, fmt, un-capped appends, and map access",
		Run:  run,
	}
}

func run(pass *analysis.Pass) error {
	for fd := range pass.Directives.Hotpath {
		if fd.Body == nil {
			continue
		}
		c := &checker{pass: pass, fresh: freshSlices(pass, fd)}
		c.walk(fd.Body)
	}
	return nil
}

// freshSlices collects the local slice variables declared without capacity:
// `var s []T`, `s := []T{}` (empty literal), and `s := make([]T, 0)`.
func freshSlices(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	mark := func(name *ast.Ident) {
		if obj := pass.TypesInfo.Defs[name]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				fresh[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				name, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if uncappedSliceExpr(pass, n.Rhs[i]) {
					mark(name)
				}
			}
		}
		return true
	})
	return fresh
}

// uncappedSliceExpr reports whether e builds an empty slice with no
// capacity: []T{} or make([]T, 0).
func uncappedSliceExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		if _, ok := pass.TypeOf(e).Underlying().(*types.Slice); ok {
			return len(e.Elts) == 0
		}
	case *ast.CallExpr:
		ident, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := pass.TypesInfo.Uses[ident].(*types.Builtin); !ok || b.Name() != "make" {
			return false
		}
		if len(e.Args) != 2 {
			return false // a capacity argument was given
		}
		_, isSlice := pass.TypeOf(e.Args[0]).Underlying().(*types.Slice)
		return isSlice
	}
	return false
}

type checker struct {
	pass  *analysis.Pass
	fresh map[types.Object]bool
}

func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.pass.Reportf(n.Pos(),
				"closure in hot path; use the typed event path with a pooled record instead")
			return false // don't double-report the closure's own body
		case *ast.CallExpr:
			if analysis.IsColdCall(c.pass.TypesInfo, c.pass.Directives, n) {
				return false // terminal error path; arguments are exempt
			}
			c.checkCall(n)
		case *ast.IndexExpr:
			if t := c.pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					c.pass.Reportf(n.Pos(),
						"map index in hot path; use a dense block table (internal/blockmap) instead")
				}
			}
		case *ast.RangeStmt:
			if t := c.pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					c.pass.Reportf(n.X.Pos(),
						"range over map in hot path; iterate a dense block table (internal/blockmap) instead")
				}
			}
		}
		return true
	})
}

// checkCall flags fmt calls, implicit boxing at argument positions, explicit
// interface conversions, and un-capped appends.
func (c *checker) checkCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Explicit conversion T(x): flag when T is an interface and x boxes.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := c.pass.TypeOf(call.Args[0]); at != nil && boxes(at) {
				c.pass.Reportf(call.Pos(),
					"conversion of %s to interface boxes in hot path", at)
			}
		}
		return
	}

	// fmt.* calls.
	if se, ok := fun.(*ast.SelectorExpr); ok {
		if obj := info.Uses[se.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			c.pass.Reportf(call.Pos(), "fmt.%s call in hot path", se.Sel.Name)
			return
		}
	}

	// Builtin append to a fresh un-capped slice.
	if ident, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[ident].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				c.checkAppend(call)
			}
			return // other builtins take no interface params
		}
	}

	// Implicit interface conversions at argument positions.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := c.pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if boxes(at) {
			c.pass.Reportf(arg.Pos(),
				"passing %s as %s boxes in hot path (pass a pointer-shaped value)", at, pt)
		}
	}
}

func (c *checker) checkAppend(call *ast.CallExpr) {
	first := ast.Unparen(call.Args[0])
	if uncappedSliceExpr(c.pass, first) {
		c.pass.Reportf(call.Pos(), "append to a fresh un-capped slice in hot path; preallocate capacity")
		return
	}
	if ident, ok := first.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[ident]; obj != nil && c.fresh[obj] {
			c.pass.Reportf(call.Pos(),
				"append to %s, a fresh un-capped slice, in hot path; preallocate capacity or reuse a pooled buffer", ident.Name)
		}
	}
}

// boxes reports whether converting a value of type t to an interface
// heap-allocates. Pointer-shaped values (pointers, maps, channels, funcs,
// unsafe.Pointer) store directly in the interface's data word.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}
