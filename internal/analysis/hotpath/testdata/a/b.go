// Second file of the hotpath fixture: the annotation harvest and the checks
// must work across files of one package — methods with value receivers
// declared here over types from a.go, and hot functions calling a.go's
// helpers.
package a

import (
	"fmt"

	"dsisim/internal/cpu"
)

type table struct {
	m    map[int]rec
	name string
}

//dsi:hotpath
func (t table) lookupHot(k int) rec {
	return t.m[k] // want `map index in hot path`
}

//dsi:hotpath
func (t table) describeHot() {
	fmt.Printf("%s: %d\n", t.name, len(t.m)) // want `fmt\.Printf call in hot path`
}

func (t table) lookupCold(k int) rec { // ok: unannotated methods are not checked
	return t.m[k]
}

//dsi:hotpath
func (t *table) sumHot() int {
	total := 0
	for _, r := range t.m { // want `range over map in hot path`
		total += r.a
	}
	return total
}

//dsi:hotpath
func crossFileBox(r rec) {
	sinkAny(r)   // want `passing a\.rec as any boxes in hot path`
	sinkPtr(&r)  // ok: no interface involved
	variadic(&r) // ok: pointer-shaped variadic element
}

//dsi:hotpath
func crossFileColdExempt(t *table, k int) {
	if t.m == nil {
		fail("no table %d", k) // ok: coldpath call, arguments exempt
	}
}

//dsi:hotpath
func crossPkgColdExempt(p *cpu.Proc, v uint64) {
	// cpu.Proc.Assert is annotated //dsi:coldpath in its own package, which
	// this package's directive harvest cannot see; the ColdFuncs registry
	// must exempt the call (and its boxing variadic arguments) anyway.
	p.Assert(v == 0, "val %d", v) // ok: registered cross-package coldpath
}
