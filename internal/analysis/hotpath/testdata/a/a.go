// Test fixture for the hotpath analyzer: allocating constructs inside
// //dsi:hotpath functions, with the coldpath/panic exemptions.
package a

import "fmt"

type rec struct{ a, b int }

//dsi:coldpath
func fail(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

func sinkAny(v any)   { _ = v }
func sinkPtr(v *rec)  { _ = v }
func variadic(...any) {}
func spread(vs []any) { variadic(vs...) }

//dsi:hotpath
func hot(r *rec, xs []int) {
	f := func() int { return r.a } // want `closure in hot path`
	_ = f
	fmt.Println(r.a) // want `fmt\.Println call in hot path`
	sinkAny(r.a)     // want `passing int as any boxes in hot path`
	sinkAny(r)       // ok: pointers store directly in the interface word
	sinkPtr(r)       // ok: no interface involved
	variadic(r.b)    // want `passing int as any boxes in hot path`
	variadic(r, r)   // ok: pointer-shaped variadic elements
	var s []int
	s = append(s, r.a) // want `append to s, a fresh un-capped slice, in hot path`
	_ = s
	t := make([]int, 0, 8)
	t = append(t, r.a) // ok: capacity preallocated
	_ = t
	_ = append([]rec{}, *r) // want `append to a fresh un-capped slice in hot path`
	_ = xs
}

//dsi:hotpath
func hotSpread(vs []any) {
	variadic(vs...) // ok: spread passes the slice through, no per-element boxing
}

//dsi:hotpath
func hotConv(r rec) any {
	return any(r) // want `conversion of a\.rec to interface boxes in hot path`
}

//dsi:hotpath
func hotConvPtr(r *rec) any {
	return any(r) // ok: pointer-shaped
}

//dsi:hotpath
func hotMaps(m map[int]*rec, xs []int) int {
	r := m[3] // want `map index in hot path`
	_ = r
	m[4] = nil             // want `map index in hot path`
	if _, ok := m[5]; ok { // want `map index in hot path`
		return 1
	}
	total := 0
	for k := range m { // want `range over map in hot path`
		total += k
	}
	for _, x := range xs { // ok: slice range
		total += x
	}
	_ = xs[0] // ok: slice index
	return total
}

func notHotMaps(m map[int]int) int { // ok: unannotated functions are not checked
	for k := range m {
		m[k]++
	}
	return m[0]
}

//dsi:hotpath
func hotColdExempt(r *rec) {
	if r.b < 0 {
		fail("bad rec %d", r.b) // ok: coldpath call, arguments exempt
	}
	if r.a < 0 {
		panic(fmt.Sprintf("bad rec %d", r.a)) // ok: panic arguments exempt
	}
}

func notHot(r *rec) { // ok: unannotated functions are not checked
	fmt.Println(r.a)
	_ = func() {}
	sinkAny(r.a)
}
