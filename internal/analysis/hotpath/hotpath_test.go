package hotpath_test

import (
	"path/filepath"
	"testing"

	"dsisim/internal/analysis/analysistest"
	"dsisim/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "a"), hotpath.Analyzer())
}
