// Package check implements the coherence audit run over a quiesced machine:
// with no transactions or messages in flight, every directory entry must
// agree with the caches (single writer, tracked sharer sets exact, shared
// copies equal to home memory). Tear-off copies are intentionally untracked
// and may be stale, but must never be writable.
package check

import (
	"fmt"
	"strings"

	"dsisim/internal/cache"
	"dsisim/internal/directory"
	"dsisim/internal/mem"
	"dsisim/internal/proto"
)

// CrossCheckOutcomes compares a program's observed final memory outcomes
// against a reference model's expected outcomes, slot by slot. It is the
// litmus-fuzzer's second oracle (internal/workload/fuzz.go): Audit proves
// the coherence metadata is consistent, CrossCheckOutcomes proves the
// values a sequentially-consistent reference interleaving predicts actually
// landed in memory. label names the slot space in diagnostics (e.g.
// "block"). The returned error lists every mismatching slot.
func CrossCheckOutcomes(label string, got, want []uint64) error {
	if len(got) != len(want) {
		return fmt.Errorf("outcome cross-check: %d observed %ss, reference has %d", len(got), label, len(want))
	}
	var errs []string
	for i := range got {
		if got[i] != want[i] {
			errs = append(errs, fmt.Sprintf("%s %d: got %d, reference says %d", label, i, got[i], want[i]))
		}
	}
	if errs != nil {
		return fmt.Errorf("outcome cross-check: %s", strings.Join(errs, "; "))
	}
	return nil
}

// Audit verifies the machine-wide invariants over a quiesced system and
// returns every violation found. On a system that failed to quiesce it
// reports exactly which transactions are stuck — per-node outstanding
// misses and per-home busy blocks, with their transaction ids and retry
// counts — and skips the entry-level checks, which are only meaningful once
// nothing is in flight.
func Audit(ccs []*proto.CacheCtrl, dcs []*proto.DirCtrl, inFlight int) []error {
	var errs []error
	quiesced := inFlight == 0
	if !quiesced {
		errs = append(errs, fmt.Errorf("audit of non-quiesced system: %d messages in flight", inFlight))
	}
	for n, cc := range ccs {
		if o := cc.Outstanding(); o != 0 {
			errs = append(errs, fmt.Errorf("node %d: %d outstanding misses/entries", n, o))
			for _, om := range cc.DumpOutstanding() {
				errs = append(errs, fmt.Errorf("node %d: stuck %s for %#x (txn %d, %d retries, started t=%d)",
					n, om.Op, uint64(om.Addr), om.Txn, om.Retries, om.Start))
			}
		}
	}
	for _, dc := range dcs {
		if b := dc.BusyBlocks(); b != 0 {
			errs = append(errs, fmt.Errorf("home %d: %d busy blocks", dc.Dir().Node(), b))
			for _, bt := range dc.DumpBusy() {
				errs = append(errs, fmt.Errorf("home %d: stuck txn %d (%v for %#x from node %d) awaiting %v via %v (%d retries, %d queued)",
					dc.Dir().Node(), bt.Txn, bt.Req, uint64(bt.Addr), bt.From, bt.Pending, bt.Action, bt.Retries, bt.Queued))
			}
		}
		if !quiesced {
			continue
		}
		dc.Dir().ForEach(func(b mem.Addr, e *directory.Entry) {
			if err := auditEntry(ccs, dc, b, e); err != nil {
				errs = append(errs, fmt.Errorf("block %#x (home %d): %w", uint64(b), dc.Dir().Node(), err))
			}
		})
	}
	return errs
}

func auditEntry(ccs []*proto.CacheCtrl, dc *proto.DirCtrl, b mem.Addr, e *directory.Entry) error {
	var exclusives, tracked, tearoffs directory.NodeSet
	for n, cc := range ccs {
		f, ok := cc.Cache().Peek(b)
		if !ok {
			continue
		}
		if f.State == cache.Exclusive {
			exclusives = exclusives.Add(n)
		}
		if f.TearOff {
			tearoffs = tearoffs.Add(n)
			if f.State == cache.Exclusive {
				return fmt.Errorf("node %d holds a writable tear-off copy", n)
			}
		} else {
			tracked = tracked.Add(n)
		}
	}
	if exclusives.Count() > 1 {
		return fmt.Errorf("multiple writers: %v", exclusives)
	}
	switch {
	case e.State == directory.Exclusive:
		if !exclusives.Only(e.Owner) {
			return fmt.Errorf("directory says owner %d, caches say %v", e.Owner, exclusives)
		}
		if tracked != exclusives {
			return fmt.Errorf("tracked copies %v beyond owner %d", tracked, e.Owner)
		}
	case e.State.IsShared():
		if !exclusives.Empty() {
			return fmt.Errorf("state %v but writable copy at %v", e.State, exclusives)
		}
		if tracked != e.Sharers {
			return fmt.Errorf("directory sharers %v, tracked copies %v", e.Sharers, tracked)
		}
		want := dc.Memory().Read(b)
		var err error
		e.Sharers.ForEach(func(n int) {
			if f, ok := ccs[n].Cache().Peek(b); ok && f.Data != want && err == nil {
				err = fmt.Errorf("node %d shared copy %v differs from memory %v", n, f.Data, want)
			}
		})
		if err != nil {
			return err
		}
	case e.State.IsIdle():
		if !tracked.Empty() {
			return fmt.Errorf("state %v but tracked copies at %v", e.State, tracked)
		}
	default:
		return fmt.Errorf("unknown directory state %v", e.State)
	}
	return nil
}
