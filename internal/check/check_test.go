package check

import (
	"strings"
	"testing"

	"dsisim/internal/cache"
	"dsisim/internal/directory"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
	"dsisim/internal/proto"
)

// build wires a quiesced 3-node system whose state the tests then corrupt.
func build(t *testing.T) ([]*proto.CacheCtrl, []*proto.DirCtrl) {
	t.Helper()
	q := &event.Queue{}
	layout := mem.NewLayout(3)
	net := netsim.New(q, netsim.Config{Nodes: 3, Latency: 10})
	env := &proto.Env{Q: q, Net: net, Layout: layout, CheckFail: func(string, ...any) {}}
	var ccs []*proto.CacheCtrl
	var dcs []*proto.DirCtrl
	for i := 0; i < 3; i++ {
		cc := proto.NewCacheCtrl(env, i, proto.Config{}, cache.Config{SizeBytes: 16 * mem.BlockSize, Assoc: 4})
		dc := proto.NewDirCtrl(env, i, proto.Config{})
		net.SetHandler(i, func(m netsim.Message) {
			switch m.Kind {
			case netsim.Inv, netsim.Recall, netsim.DataS, netsim.DataX, netsim.AckX, netsim.FinalAck:
				cc.Handle(m)
			default:
				dc.Handle(m)
			}
		})
		ccs = append(ccs, cc)
		dcs = append(dcs, dc)
	}
	// Legitimate traffic: node 0 reads a block homed at node 1, node 2
	// writes another.
	q.At(0, func() { ccs[0].Read(mem.Addr(1*mem.BlockSize), func(proto.Result) {}) })
	q.At(0, func() {
		ccs[2].Write(mem.Addr(2*mem.BlockSize), proto.Store{Writer: 2, Seq: 1}, func(proto.Result) {})
	})
	q.Run()
	return ccs, dcs
}

func TestAuditCleanSystem(t *testing.T) {
	ccs, dcs := build(t)
	if errs := Audit(ccs, dcs, 0); len(errs) != 0 {
		t.Fatalf("clean system failed audit: %v", errs)
	}
}

func TestAuditRejectsInFlight(t *testing.T) {
	ccs, dcs := build(t)
	if errs := Audit(ccs, dcs, 3); len(errs) == 0 {
		t.Fatal("audit accepted a non-quiesced system")
	}
}

func expectViolation(t *testing.T, ccs []*proto.CacheCtrl, dcs []*proto.DirCtrl, substr string) {
	t.Helper()
	errs := Audit(ccs, dcs, 0)
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return
		}
	}
	t.Fatalf("audit missed violation %q; got %v", substr, errs)
}

func TestAuditDetectsPhantomSharer(t *testing.T) {
	ccs, dcs := build(t)
	a := mem.Addr(1 * mem.BlockSize)
	e, _ := dcs[1].Dir().Peek(a)
	e.Sharers = e.Sharers.Add(2) // node 2 holds nothing
	expectViolation(t, ccs, dcs, "tracked copies")
}

func TestAuditDetectsUntrackedCopy(t *testing.T) {
	ccs, dcs := build(t)
	a := mem.Addr(1 * mem.BlockSize)
	// Node 2 conjures a copy the directory does not know about.
	ccs[2].Cache().Install(a, cache.Fill{State: cache.Shared})
	expectViolation(t, ccs, dcs, "tracked copies")
}

func TestAuditDetectsDoubleWriter(t *testing.T) {
	ccs, dcs := build(t)
	a := mem.Addr(2 * mem.BlockSize)
	ccs[0].Cache().Install(a, cache.Fill{State: cache.Exclusive})
	expectViolation(t, ccs, dcs, "multiple writers")
}

func TestAuditDetectsStaleSharedValue(t *testing.T) {
	ccs, dcs := build(t)
	a := mem.Addr(1 * mem.BlockSize)
	f, ok := ccs[0].Cache().Peek(a)
	if !ok {
		t.Fatal("setup: node 0 lost its copy")
	}
	f.Data.Seq = 999
	expectViolation(t, ccs, dcs, "differs from memory")
}

func TestAuditDetectsWritableTearOff(t *testing.T) {
	ccs, dcs := build(t)
	a := mem.Addr(2 * mem.BlockSize)
	// The legitimate owner's copy becomes (illegally) tear-off.
	f, ok := ccs[2].Cache().Peek(a)
	if !ok {
		t.Fatal("setup: owner lost its copy")
	}
	f.TearOff = true
	expectViolation(t, ccs, dcs, "writable tear-off")
}

func TestAuditDetectsIdleWithCopies(t *testing.T) {
	ccs, dcs := build(t)
	a := mem.Addr(2 * mem.BlockSize)
	e, _ := dcs[2].Dir().Peek(a)
	e.State = directory.Idle
	expectViolation(t, ccs, dcs, "tracked copies")
}

func TestAuditDetectsWrongOwner(t *testing.T) {
	ccs, dcs := build(t)
	a := mem.Addr(2 * mem.BlockSize)
	e, _ := dcs[2].Dir().Peek(a)
	e.Owner = 1
	expectViolation(t, ccs, dcs, "owner")
}

func TestAuditIgnoresTearOffStaleness(t *testing.T) {
	ccs, dcs := build(t)
	a := mem.Addr(1 * mem.BlockSize)
	// A stale untracked tear-off copy at node 2 is legal.
	ccs[2].Cache().Install(a, cache.Fill{State: cache.Shared, SI: true, TearOff: true,
		Data: mem.Value{Writer: 9, Seq: 9}})
	if errs := Audit(ccs, dcs, 0); len(errs) != 0 {
		t.Fatalf("legal tear-off staleness flagged: %v", errs)
	}
}

func TestCrossCheckOutcomes(t *testing.T) {
	if err := CrossCheckOutcomes("block", []uint64{1, 2, 3}, []uint64{1, 2, 3}); err != nil {
		t.Fatalf("matching outcomes flagged: %v", err)
	}
	err := CrossCheckOutcomes("block", []uint64{1, 9, 3}, []uint64{1, 2, 3})
	if err == nil {
		t.Fatal("mismatch not flagged")
	}
	if !strings.Contains(err.Error(), "block 1") {
		t.Fatalf("mismatch error does not name the slot: %v", err)
	}
	if err := CrossCheckOutcomes("block", []uint64{1}, []uint64{1, 2}); err == nil {
		t.Fatal("length mismatch not flagged")
	}
}
