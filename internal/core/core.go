// Package core implements the paper's contribution: the dynamic
// self-invalidation (DSI) policies. It is deliberately separated from the
// protocol machinery (internal/proto) and the hardware structures
// (internal/cache, internal/directory) so the policies read like §4 of the
// paper:
//
//   - Identifier: how the directory decides which blocks to hand out marked
//     for self-invalidation — the additional-states scheme or the 4-bit
//     version-number scheme.
//   - Mechanism: how the cache controller performs the self-invalidation —
//     a finite FIFO buffer, or a flush of all marked blocks at each
//     synchronization operation.
//   - Policy: the assembled configuration, including tear-off blocks and
//     the two special cases of §4.1 (no self-invalidation of blocks homed
//     at the requester; no marking of sequentially-consistent upgrades with
//     no other sharers).
package core

import (
	"strconv"

	"dsisim/internal/cache"
	"dsisim/internal/directory"
	"dsisim/internal/mem"
)

// Request carries the facts an Identifier may consult when the directory
// services a miss.
type Request struct {
	Node int // requesting node
	Home int // home node of the block

	// Version echo from the cache (version-number scheme): the version the
	// requester last observed for this block, if its tag memory still held
	// one.
	Ver    uint8
	HasVer bool

	// For write requests: whether the requester already held a shared copy
	// (an upgrade), and whether any other node also holds one.
	WasSharer    bool
	OtherSharers bool
}

// Identifier is a directory-side block identification scheme. Read and
// Write are called while the directory services a request, before the new
// state is installed; they both decide whether to mark the response and
// update any predictor state they maintain (version numbers, read
// counters).
//
// SetShared and SetIdle install the post-transaction state: the
// additional-states scheme needs to choose among Shared/Shared_SI and the
// four idle flavors, while the version scheme and the base protocol use
// only the three base states.
type Identifier interface {
	Name() string
	// Read decides whether a shared grant is marked for self-invalidation.
	Read(e *directory.Entry, r Request) bool
	// Write decides whether an exclusive grant is marked. The special cases
	// of Policy are applied by the caller, not here.
	Write(e *directory.Entry, r Request) bool
	// GrantVersion returns the version number to deliver with the response
	// (after any bookkeeping done by Read/Write).
	GrantVersion(e *directory.Entry) (uint8, bool)
	// SetShared installs the shared state after a read grant; si is the
	// decision Read returned (after special cases).
	SetShared(e *directory.Entry, si bool)
	// SetIdle installs an idle state, with the cause and the state the
	// block was in when the last copy disappeared.
	SetIdle(e *directory.Entry, cause IdleCause, prev directory.State, wasSI bool)
}

// IdleCause says why a block's last outstanding copy disappeared.
type IdleCause int

const (
	// CauseReplace: the last copy was displaced by a cache fill.
	CauseReplace IdleCause = iota
	// CauseSelfInv: the last copy was self-invalidated.
	CauseSelfInv
)

func (c IdleCause) String() string {
	switch c {
	case CauseReplace:
		return "replace"
	case CauseSelfInv:
		return "self-inval"
	default:
		return "IdleCause(" + strconv.Itoa(int(c)) + ")"
	}
}

// ---------------------------------------------------------------------------
// Base protocol: never self-invalidate.

// Never is the identification scheme of the base protocol: nothing is ever
// marked. It is also the correct Identifier for "DSI off".
type Never struct{}

// Name implements Identifier.
func (Never) Name() string { return "base" }

// Read implements Identifier.
func (Never) Read(*directory.Entry, Request) bool { return false }

// Write implements Identifier.
func (Never) Write(*directory.Entry, Request) bool { return false }

// GrantVersion implements Identifier.
func (Never) GrantVersion(*directory.Entry) (uint8, bool) { return 0, false }

// SetShared implements Identifier.
func (Never) SetShared(e *directory.Entry, _ bool) { e.State = directory.Shared }

// SetIdle implements Identifier.
func (Never) SetIdle(e *directory.Entry, _ IdleCause, _ directory.State, _ bool) {
	e.State = directory.Idle
}

// ---------------------------------------------------------------------------
// Additional-states scheme (§4.1, "Additional States").

// States implements identification with four additional directory states.
// Every processor gets the same decision for a given directory state.
type States struct{}

// Name implements Identifier.
func (States) Name() string { return "states" }

// Read implements Identifier: read requests obtain a self-invalidate block
// if the current state is Exclusive, Idle_X, Shared_SI or Idle_SI.
func (States) Read(e *directory.Entry, _ Request) bool {
	switch e.State {
	case directory.Exclusive, directory.IdleX, directory.SharedSI, directory.IdleSI:
		return true
	case directory.Idle, directory.IdleS, directory.Shared:
		return false
	default:
		panic("core: States.Read: unhandled directory state")
	}
}

// Write implements Identifier: write requests obtain a self-invalidate
// block if the current state is Shared, Shared_SI, Exclusive, Idle_S,
// Idle_SI, or Idle_X where a different processor had the block exclusive.
func (States) Write(e *directory.Entry, r Request) bool {
	switch e.State {
	case directory.Shared, directory.SharedSI, directory.Exclusive,
		directory.IdleS, directory.IdleSI:
		return true
	case directory.IdleX:
		return e.LastOwner != r.Node
	case directory.Idle:
		return false
	default:
		panic("core: States.Write: unhandled directory state")
	}
}

// GrantVersion implements Identifier: the states scheme delivers no version.
func (States) GrantVersion(*directory.Entry) (uint8, bool) { return 0, false }

// SetShared implements Identifier: an SI read grant enters Shared_SI so all
// subsequent readers are marked too; joining an existing Shared/Shared_SI
// population keeps its flavor.
func (States) SetShared(e *directory.Entry, si bool) {
	switch {
	case e.State == directory.SharedSI:
		// stays Shared_SI
	case e.State == directory.Shared:
		// stays Shared
	case si:
		e.State = directory.SharedSI
	default:
		e.State = directory.Shared
	}
}

// SetIdle implements Identifier: self-invalidation from Exclusive enters
// Idle_X, from a shared state Idle_S; replacement of a marked block enters
// Idle_SI; everything else is plain Idle.
func (States) SetIdle(e *directory.Entry, cause IdleCause, prev directory.State, wasSI bool) {
	switch {
	case cause == CauseSelfInv && prev == directory.Exclusive:
		e.State = directory.IdleX
	case cause == CauseSelfInv:
		e.State = directory.IdleS
	case wasSI:
		e.State = directory.IdleSI
	default:
		e.State = directory.Idle
	}
}

// ---------------------------------------------------------------------------
// Version-number scheme (§4.1, "Version Numbers").

// Versions implements identification with a 4-bit per-block version number
// plus a 2-bit counter of shared grants for the current version. Each
// processor decides independently, via the version it echoes with its miss.
type Versions struct{}

// Name implements Identifier.
func (Versions) Name() string { return "versions" }

// Read implements Identifier: the response is marked if the requester
// echoed a version and it differs from the current one (the block was
// modified since the requester last held it). It also shifts a one into the
// shared-grant counter.
func (Versions) Read(e *directory.Entry, r Request) bool {
	si := r.HasVer && r.Ver != e.Ver
	e.NoteSharedGrant()
	return si
}

// Write implements Identifier: marked if the versions differ, or if the
// current version has been read by at least two processors (which may
// include the writer itself). Bumps the version, clearing the read counter.
func (Versions) Write(e *directory.Entry, r Request) bool {
	si := (r.HasVer && r.Ver != e.Ver) || e.ReadByTwo()
	e.BumpVersion()
	return si
}

// GrantVersion implements Identifier: responses carry the current (for
// writes: freshly bumped) version for the cache's version memory.
func (Versions) GrantVersion(e *directory.Entry) (uint8, bool) { return e.Ver, true }

// SetShared implements Identifier: the version scheme uses base states only.
func (Versions) SetShared(e *directory.Entry, _ bool) { e.State = directory.Shared }

// SetIdle implements Identifier.
func (Versions) SetIdle(e *directory.Entry, _ IdleCause, _ directory.State, _ bool) {
	e.State = directory.Idle
}

// ---------------------------------------------------------------------------
// Always: mark everything (ablation/stress policy, not from the paper).

// Always marks every grant for self-invalidation. It is not a paper scheme;
// it exists to bound the design space in ablation benchmarks and to stress
// the self-invalidation machinery in tests.
type Always struct{}

// Name implements Identifier.
func (Always) Name() string { return "always" }

// Read implements Identifier.
func (Always) Read(*directory.Entry, Request) bool { return true }

// Write implements Identifier.
func (Always) Write(*directory.Entry, Request) bool { return true }

// GrantVersion implements Identifier.
func (Always) GrantVersion(*directory.Entry) (uint8, bool) { return 0, false }

// SetShared implements Identifier.
func (Always) SetShared(e *directory.Entry, _ bool) { e.State = directory.Shared }

// SetIdle implements Identifier.
func (Always) SetIdle(e *directory.Entry, _ IdleCause, _ directory.State, _ bool) {
	e.State = directory.Idle
}

// ---------------------------------------------------------------------------
// Self-invalidation mechanisms (§4.2).

// Mechanism is a cache-side self-invalidation scheme. OnInstall is called
// when a marked block arrives; it may return blocks that must be
// self-invalidated immediately (the FIFO displacing old entries). OnSync is
// called at each synchronization operation and returns the blocks
// self-invalidated there, in the order the hardware would process them.
// ScanLatency is the cycles the hardware needs to find the marked blocks at
// a sync point, beyond the per-block message injections: zero for the
// linked-list and flash-clear circuits of §4.2, proportional to the number
// of cache frames for the naive sequential scan.
type Mechanism interface {
	Name() string
	OnInstall(c *cache.Cache, block mem.Addr) []cache.Evicted
	OnSync(c *cache.Cache) []cache.Evicted
	ScanLatency(c *cache.Cache, flushed int) int64
}

// SyncFlush performs self-invalidation by walking the hardware linked list
// of marked frames at every synchronization operation. It uses the full
// capacity of the cache (no auxiliary buffer), and the list walk processes
// only blocks that actually need self-invalidation, so its latency hides
// entirely behind the notification injections.
type SyncFlush struct{}

// Name implements Mechanism.
func (SyncFlush) Name() string { return "sync-flush" }

// OnInstall implements Mechanism: nothing happens until a sync point.
func (SyncFlush) OnInstall(*cache.Cache, mem.Addr) []cache.Evicted { return nil }

// OnSync implements Mechanism.
func (SyncFlush) OnSync(c *cache.Cache) []cache.Evicted { return c.MarkedFlush() }

// ScanLatency implements Mechanism: the linked list finds marked frames in
// constant time per frame, overlapped with message injection.
func (SyncFlush) ScanLatency(*cache.Cache, int) int64 { return 0 }

// NaiveFlush is the §4.2 strawman: at each synchronization point the
// controller sequentially examines every cache frame looking for set s
// bits, so the latency is proportional to the number of frames even when
// nothing needs self-invalidation. It exists to quantify what the paper's
// flash-clear/linked-list circuits buy.
type NaiveFlush struct{}

// Name implements Mechanism.
func (NaiveFlush) Name() string { return "naive-flush" }

// OnInstall implements Mechanism.
func (NaiveFlush) OnInstall(*cache.Cache, mem.Addr) []cache.Evicted { return nil }

// OnSync implements Mechanism.
func (NaiveFlush) OnSync(c *cache.Cache) []cache.Evicted { return c.MarkedFlush() }

// ScanLatency implements Mechanism: one cycle per cache frame.
func (NaiveFlush) ScanLatency(c *cache.Cache, _ int) int64 {
	geo := c.Config()
	return int64(geo.Sets() * geo.Assoc)
}

// FIFO performs self-invalidation with a finite first-in-first-out buffer
// of marked block identities (the paper evaluates 64 entries). A block is
// self-invalidated when its entry is displaced from the buffer; the buffer
// is also flushed at synchronization operations.
type FIFO struct {
	Capacity int
	queue    []mem.Addr
	// Displacements counts early self-invalidations forced by finite
	// capacity — the effect Figure 5 attributes sparse's slowdown to.
	Displacements int64

	// scratch backs OnSync's result across calls (consumed synchronously by
	// the cache controller), keeping the sync flush allocation-free.
	scratch []cache.Evicted
}

// NewFIFO returns a FIFO mechanism with the given capacity.
func NewFIFO(capacity int) *FIFO {
	if capacity <= 0 {
		panic("core: FIFO capacity must be positive")
	}
	return &FIFO{Capacity: capacity}
}

// Name implements Mechanism.
func (f *FIFO) Name() string { return "fifo" }

// Len returns the current buffer occupancy.
func (f *FIFO) Len() int { return len(f.queue) }

// OnInstall implements Mechanism: enqueue the block, displacing (and
// self-invalidating) the oldest entry if the buffer is full.
func (f *FIFO) OnInstall(c *cache.Cache, block mem.Addr) []cache.Evicted {
	var out []cache.Evicted
	f.queue = append(f.queue, mem.BlockOf(block))
	for len(f.queue) > f.Capacity {
		victim := f.queue[0]
		f.queue = f.queue[1:]
		if ev, ok := c.SelfInvalidate(victim); ok {
			f.Displacements++
			out = append(out, ev)
		}
	}
	return out
}

// OnSync implements Mechanism: flush the whole buffer.
func (f *FIFO) OnSync(c *cache.Cache) []cache.Evicted {
	out := f.scratch[:0]
	for _, a := range f.queue {
		if ev, ok := c.SelfInvalidate(a); ok {
			out = append(out, ev)
		}
	}
	f.queue = f.queue[:0]
	// Defensively drain the cache's marked list as well: a marked frame can
	// only be missing from the queue if a caller skipped OnInstall, and a
	// silent invalidation would leave the directory with phantom copies —
	// notify for those too.
	out = append(out, c.MarkedFlush()...)
	f.scratch = out
	return out
}

// ScanLatency implements Mechanism: the FIFO knows exactly which blocks to
// process; no scan needed.
func (f *FIFO) ScanLatency(*cache.Cache, int) int64 { return 0 }

// ---------------------------------------------------------------------------
// Policy: the assembled DSI configuration.

// Policy configures DSI for one simulation. The zero value (nil Identifier)
// means DSI is disabled. Mechanisms are per-node state (the FIFO has a
// queue), so Policy carries a constructor.
type Policy struct {
	// Identifier chooses the directory-side scheme; nil disables DSI.
	Identifier Identifier
	// NewMechanism builds the per-node cache-side mechanism; nil with a
	// non-nil Identifier defaults to SyncFlush.
	NewMechanism func() Mechanism
	// TearOff grants untracked shared copies for marked blocks (only sound
	// under weak consistency, where all tear-off copies die at sync points).
	TearOff bool
	// SCTearOff grants tear-off copies under sequential consistency with
	// Scheurich's restriction (§3.3): each cache holds at most one tear-off
	// block and invalidates it at its next cache miss (and, in this
	// implementation, at synchronization points — required for correctness
	// with the hardware barrier, and the natural analogue of the paper's
	// periodic-invalidation forward-progress fix).
	SCTearOff bool
	// NewHistory, if set, adds cache-side identification (§3.1): each node
	// gets an invalidation-history table that marks re-fetched blocks
	// locally, with or without a directory-side Identifier.
	NewHistory func() *InvalHistory
	// Migratory enables the adaptive migratory-sharing optimization the
	// paper cites as complementary related work (Cox & Fowler / Stenström
	// et al., ISCA 1993): the directory detects blocks that migrate
	// write-to-write between processors and answers *read* requests for
	// them with an exclusive grant, saving the later upgrade. Composes
	// with DSI.
	Migratory bool
	// UpgradeExemption applies the paper's sequential-consistency special
	// case: an exclusive grant to a requester that already held a shared
	// copy, with no other outstanding copies, is never marked.
	UpgradeExemption bool
}

// Enabled reports whether the policy performs any self-invalidation.
func (p Policy) Enabled() bool { return p.Identifier != nil }

// ID returns the active identifier, substituting Never when disabled.
func (p Policy) ID() Identifier {
	if p.Identifier == nil {
		return Never{}
	}
	return p.Identifier
}

// Mechanism instantiates the per-node mechanism.
func (p Policy) Mechanism() Mechanism {
	if !p.Enabled() {
		return SyncFlush{} // harmless: nothing is ever marked
	}
	if p.NewMechanism == nil {
		return SyncFlush{}
	}
	return p.NewMechanism()
}

// MarkRead applies the read-side decision with the home-node special case.
// The identifier's bookkeeping (the shared-grant counter) still runs for
// home-node reads; only the marking is suppressed.
func (p Policy) MarkRead(e *directory.Entry, r Request) bool {
	if !p.Enabled() {
		return false
	}
	si := p.ID().Read(e, r)
	if r.Node == r.Home {
		return false
	}
	return si
}

// MarkWrite applies the write-side decision with both special cases.
func (p Policy) MarkWrite(e *directory.Entry, r Request) bool {
	if !p.Enabled() {
		// Keep version bookkeeping out of the disabled path entirely.
		return false
	}
	si := p.ID().Write(e, r)
	if r.Node == r.Home {
		return false
	}
	if p.UpgradeExemption && r.WasSharer && !r.OtherSharers {
		return false
	}
	return si
}
