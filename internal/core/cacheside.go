package core

import (
	"dsisim/internal/cache"
	"dsisim/internal/mem"
)

// This file implements the cache-controller-side identification scheme the
// paper sketches in §3.1: "a cache controller can identify blocks for
// self-invalidation by maintaining information for recently invalidated
// blocks (e.g., the number of times a block is invalidated)". It needs no
// directory support at all — the cache marks its own fills, and the
// existing self-invalidation notifications keep the directory consistent.

// InvalHistory is a small direct-mapped table of recently invalidated
// blocks with a saturating per-block invalidation counter. When a block
// whose count has reached the threshold is re-fetched, the cache marks the
// new copy for self-invalidation locally.
type InvalHistory struct {
	// Entries is the table size (power of two). The paper's analogy is a
	// victim-cache-sized structure; 64 is the default.
	Entries int
	// Threshold is how many observed invalidations qualify a block
	// (default 2: one invalidation may be incidental, two are a pattern).
	Threshold uint8

	tags   []mem.Addr
	counts []uint8

	// Marked counts fills marked by the history table.
	Marked int64
}

// NewInvalHistory builds a table with n entries and the given threshold.
func NewInvalHistory(n int, threshold uint8) *InvalHistory {
	if n <= 0 || n&(n-1) != 0 {
		panic("core: InvalHistory entries must be a positive power of two")
	}
	if threshold == 0 {
		panic("core: InvalHistory threshold must be positive")
	}
	return &InvalHistory{
		Entries:   n,
		Threshold: threshold,
		tags:      make([]mem.Addr, n),
		counts:    make([]uint8, n),
	}
}

func (h *InvalHistory) slot(b mem.Addr) int {
	return int(mem.BlockIndex(b)) & (h.Entries - 1)
}

// OnInvalidate records an explicit invalidation of block b (the conflict
// signal the predictor learns from). Direct-mapped: a conflicting block
// steals the entry and restarts its count.
func (h *InvalHistory) OnInvalidate(b mem.Addr) {
	b = mem.BlockOf(b)
	i := h.slot(b)
	if h.tags[i] != b {
		h.tags[i] = b
		h.counts[i] = 1
		return
	}
	if h.counts[i] < 0xff {
		h.counts[i]++
	}
}

// ShouldMark reports whether a fill of block b should be marked for
// self-invalidation based on its invalidation history.
func (h *InvalHistory) ShouldMark(b mem.Addr) bool {
	b = mem.BlockOf(b)
	i := h.slot(b)
	return h.tags[i] == b && h.counts[i] >= h.Threshold
}

// Count returns the current counter for b (for tests).
func (h *InvalHistory) Count(b mem.Addr) uint8 {
	b = mem.BlockOf(b)
	i := h.slot(b)
	if h.tags[i] != b {
		return 0
	}
	return h.counts[i]
}

// MarkLocal applies the history decision to a freshly installed frame,
// wiring it into the cache's marked list so the configured mechanism will
// self-invalidate it. Returns whether the frame was marked.
func (h *InvalHistory) MarkLocal(c *cache.Cache, b mem.Addr) bool {
	if !h.ShouldMark(b) {
		return false
	}
	if c.Mark(b) {
		h.Marked++
		return true
	}
	return false
}
