package core

import (
	"testing"
	"testing/quick"

	"dsisim/internal/cache"
	"dsisim/internal/directory"
	"dsisim/internal/mem"
)

func entry(st directory.State) *directory.Entry {
	return &directory.Entry{State: st, LastOwner: -1}
}

func req(node, home int) Request { return Request{Node: node, Home: home} }

// --- States scheme ---------------------------------------------------------

func TestStatesReadDecision(t *testing.T) {
	cases := []struct {
		st   directory.State
		want bool
	}{
		{directory.Idle, false},
		{directory.Shared, false},
		{directory.Exclusive, true},
		{directory.SharedSI, true},
		{directory.IdleX, true},
		{directory.IdleS, false},
		{directory.IdleSI, true},
	}
	for _, c := range cases {
		if got := (States{}).Read(entry(c.st), req(1, 0)); got != c.want {
			t.Errorf("Read from %v = %v, want %v", c.st, got, c.want)
		}
	}
}

func TestStatesWriteDecision(t *testing.T) {
	cases := []struct {
		st   directory.State
		want bool
	}{
		{directory.Idle, false},
		{directory.Shared, true},
		{directory.SharedSI, true},
		{directory.Exclusive, true},
		{directory.IdleS, true},
		{directory.IdleSI, true},
	}
	for _, c := range cases {
		if got := (States{}).Write(entry(c.st), req(1, 0)); got != c.want {
			t.Errorf("Write from %v = %v, want %v", c.st, got, c.want)
		}
	}
}

func TestStatesWriteIdleXDependsOnLastOwner(t *testing.T) {
	e := entry(directory.IdleX)
	e.LastOwner = 1
	if (States{}).Write(e, req(1, 0)) {
		t.Error("IdleX write by same last owner marked")
	}
	if !(States{}).Write(e, req(2, 0)) {
		t.Error("IdleX write by different node not marked")
	}
}

func TestStatesSetShared(t *testing.T) {
	e := entry(directory.Exclusive)
	(States{}).SetShared(e, true)
	if e.State != directory.SharedSI {
		t.Fatalf("SI grant -> %v, want Shared_SI", e.State)
	}
	// Later reader joins Shared_SI: flavor sticks.
	(States{}).SetShared(e, true)
	if e.State != directory.SharedSI {
		t.Fatalf("join kept %v", e.State)
	}
	e2 := entry(directory.Idle)
	(States{}).SetShared(e2, false)
	if e2.State != directory.Shared {
		t.Fatalf("normal grant -> %v", e2.State)
	}
	// Plain Shared population keeps flavor even for a (hypothetical) si join.
	(States{}).SetShared(e2, true)
	if e2.State != directory.Shared {
		t.Fatalf("Shared flavor changed to %v", e2.State)
	}
}

func TestStatesSetIdle(t *testing.T) {
	cases := []struct {
		cause IdleCause
		prev  directory.State
		wasSI bool
		want  directory.State
	}{
		{CauseSelfInv, directory.Exclusive, true, directory.IdleX},
		{CauseSelfInv, directory.Shared, true, directory.IdleS},
		{CauseSelfInv, directory.SharedSI, true, directory.IdleS},
		{CauseReplace, directory.Shared, true, directory.IdleSI},
		{CauseReplace, directory.Exclusive, true, directory.IdleSI},
		{CauseReplace, directory.Shared, false, directory.Idle},
		{CauseReplace, directory.Exclusive, false, directory.Idle},
	}
	for _, c := range cases {
		e := entry(c.prev)
		(States{}).SetIdle(e, c.cause, c.prev, c.wasSI)
		if e.State != c.want {
			t.Errorf("SetIdle(%v, %v, si=%v) = %v, want %v", c.cause, c.prev, c.wasSI, e.State, c.want)
		}
	}
}

// --- Versions scheme -------------------------------------------------------

func TestVersionsReadMatchVsMismatch(t *testing.T) {
	e := entry(directory.Idle)
	e.Ver = 5
	if (Versions{}).Read(e, Request{Node: 1, Ver: 5, HasVer: true}) {
		t.Error("matching version marked")
	}
	if !(Versions{}).Read(e, Request{Node: 1, Ver: 4, HasVer: true}) {
		t.Error("mismatched version not marked")
	}
	if (Versions{}).Read(e, Request{Node: 1}) {
		t.Error("no echoed version marked")
	}
}

func TestVersionsReadCountsGrants(t *testing.T) {
	e := entry(directory.Idle)
	(Versions{}).Read(e, req(1, 0))
	(Versions{}).Read(e, req(2, 0))
	if !e.ReadByTwo() {
		t.Fatal("two reads did not set the counter")
	}
}

func TestVersionsWrite(t *testing.T) {
	e := entry(directory.Idle)
	e.Ver = 7
	// No version echo, <2 readers: normal block; version bumps anyway.
	if (Versions{}).Write(e, Request{Node: 1}) {
		t.Error("unmarked case marked")
	}
	if e.Ver != 8 {
		t.Errorf("version after write = %d, want 8", e.Ver)
	}
	// Mismatched echo: marked.
	if !(Versions{}).Write(e, Request{Node: 1, Ver: 7, HasVer: true}) {
		t.Error("stale version write not marked")
	}
	// Matching echo but read by two processors this version: marked.
	e2 := entry(directory.Idle)
	(Versions{}).Read(e2, req(1, 0))
	(Versions{}).Read(e2, req(2, 0))
	if !(Versions{}).Write(e2, Request{Node: 1, Ver: e2.Ver, HasVer: true}) {
		t.Error("read-by-two write not marked")
	}
	if e2.ReadCnt != 0 {
		t.Error("write did not clear read counter")
	}
}

func TestVersionsGrantVersion(t *testing.T) {
	e := entry(directory.Idle)
	e.Ver = 3
	if v, ok := (Versions{}).GrantVersion(e); !ok || v != 3 {
		t.Fatalf("GrantVersion = %d,%v", v, ok)
	}
	if _, ok := (States{}).GrantVersion(e); ok {
		t.Fatal("states scheme granted a version")
	}
	if _, ok := (Never{}).GrantVersion(e); ok {
		t.Fatal("base scheme granted a version")
	}
}

// Version wrap-around is harmless: after 16 writes the version returns, and
// a requester echoing the pre-wrap version sees a match (a missed marking
// opportunity, never a correctness issue).
func TestVersionsWrapAround(t *testing.T) {
	e := entry(directory.Idle)
	start := e.Ver
	for i := 0; i < 16; i++ {
		(Versions{}).Write(e, Request{Node: 1})
	}
	if e.Ver != start {
		t.Fatalf("after 16 writes ver = %d, want %d", e.Ver, start)
	}
	if (Versions{}).Read(e, Request{Node: 2, Ver: start, HasVer: true}) {
		t.Fatal("wrapped version treated as mismatch")
	}
}

// --- Never / Always --------------------------------------------------------

func TestNeverAndAlways(t *testing.T) {
	e := entry(directory.Exclusive)
	if (Never{}).Read(e, req(1, 0)) || (Never{}).Write(e, req(1, 0)) {
		t.Error("Never marked something")
	}
	if !(Always{}).Read(e, req(1, 0)) || !(Always{}).Write(e, req(1, 0)) {
		t.Error("Always failed to mark")
	}
	(Never{}).SetShared(e, true)
	if e.State != directory.Shared {
		t.Error("Never.SetShared flavor wrong")
	}
	(Never{}).SetIdle(e, CauseSelfInv, directory.Exclusive, true)
	if e.State != directory.Idle {
		t.Error("Never.SetIdle flavor wrong")
	}
}

// --- Policy special cases --------------------------------------------------

func TestPolicyHomeNodeExemption(t *testing.T) {
	p := Policy{Identifier: States{}}
	e := entry(directory.Exclusive)
	if p.MarkRead(e, req(3, 3)) {
		t.Error("home-node read marked")
	}
	if !p.MarkRead(e, req(3, 0)) {
		t.Error("remote read not marked")
	}
	if p.MarkWrite(entry(directory.Shared), req(3, 3)) {
		t.Error("home-node write marked")
	}
}

func TestPolicyHomeReadStillCounts(t *testing.T) {
	p := Policy{Identifier: Versions{}}
	e := entry(directory.Idle)
	p.MarkRead(e, req(0, 0)) // home read
	p.MarkRead(e, req(1, 0))
	if !e.ReadByTwo() {
		t.Fatal("home read skipped shared-grant bookkeeping")
	}
}

func TestPolicyUpgradeExemption(t *testing.T) {
	p := Policy{Identifier: States{}, UpgradeExemption: true}
	e := entry(directory.Shared)
	r := Request{Node: 1, Home: 0, WasSharer: true, OtherSharers: false}
	if p.MarkWrite(e, r) {
		t.Error("lone upgrade marked despite exemption")
	}
	r.OtherSharers = true
	if !p.MarkWrite(entry(directory.Shared), r) {
		t.Error("upgrade with other sharers not marked")
	}
	// Without the exemption (weak consistency), lone upgrades are marked.
	p.UpgradeExemption = false
	r.OtherSharers = false
	if !p.MarkWrite(entry(directory.Shared), r) {
		t.Error("lone upgrade unmarked without exemption")
	}
}

func TestPolicyDisabled(t *testing.T) {
	var p Policy
	if p.Enabled() {
		t.Fatal("zero policy enabled")
	}
	if p.MarkRead(entry(directory.Exclusive), req(1, 0)) {
		t.Fatal("disabled policy marked a read")
	}
	if p.ID().Name() != "base" {
		t.Fatalf("disabled ID = %q", p.ID().Name())
	}
	if p.Mechanism().Name() != "sync-flush" {
		t.Fatalf("disabled mechanism = %q", p.Mechanism().Name())
	}
}

func TestPolicyMechanismDefaultsAndFactory(t *testing.T) {
	p := Policy{Identifier: Versions{}}
	if p.Mechanism().Name() != "sync-flush" {
		t.Fatal("default mechanism not sync-flush")
	}
	p.NewMechanism = func() Mechanism { return NewFIFO(8) }
	m1, m2 := p.Mechanism(), p.Mechanism()
	if m1 == m2 {
		t.Fatal("factory returned shared mechanism state")
	}
}

// --- Mechanisms ------------------------------------------------------------

func newCache() *cache.Cache {
	return cache.New(cache.Config{SizeBytes: 64 * 32 * 4, Assoc: 4})
}

func TestSyncFlushMechanism(t *testing.T) {
	c := newCache()
	m := SyncFlush{}
	c.Install(32, cache.Fill{State: cache.Shared, SI: true})
	if out := m.OnInstall(c, 32); out != nil {
		t.Fatal("sync-flush invalidated on install")
	}
	out := m.OnSync(c)
	if len(out) != 1 || out[0].Addr != 32 {
		t.Fatalf("OnSync = %+v", out)
	}
}

func TestFIFODisplacement(t *testing.T) {
	c := newCache()
	f := NewFIFO(2)
	addrs := []mem.Addr{32, 64, 96}
	var displaced []cache.Evicted
	for _, a := range addrs {
		c.Install(a, cache.Fill{State: cache.Shared, SI: true})
		displaced = append(displaced, f.OnInstall(c, a)...)
	}
	if len(displaced) != 1 || displaced[0].Addr != 32 {
		t.Fatalf("displaced = %+v, want block 32", displaced)
	}
	if _, hit := c.Peek(32); hit {
		t.Fatal("displaced block still cached")
	}
	if f.Displacements != 1 {
		t.Fatalf("displacement count = %d", f.Displacements)
	}
	// Sync flushes the remaining two.
	out := f.OnSync(c)
	if len(out) != 2 || out[0].Addr != 64 || out[1].Addr != 96 {
		t.Fatalf("OnSync = %+v", out)
	}
	if f.Len() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestFIFOSkipsAlreadyInvalidated(t *testing.T) {
	c := newCache()
	f := NewFIFO(4)
	c.Install(32, cache.Fill{State: cache.Shared, SI: true})
	f.OnInstall(c, 32)
	c.Invalidate(32) // directory got there first
	if out := f.OnSync(c); len(out) != 0 {
		t.Fatalf("flushed stale entry: %+v", out)
	}
}

func TestFIFOZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFIFO(0) did not panic")
		}
	}()
	NewFIFO(0)
}

// Property: FIFO occupancy never exceeds capacity and OnSync always empties
// it; everything either self-invalidates via the FIFO or was gone already.
func TestFIFOCapacityProperty(t *testing.T) {
	f := func(ops []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		c := newCache()
		fifo := NewFIFO(capacity)
		for _, op := range ops {
			a := mem.Addr(op%32+1) * mem.BlockSize
			c.Install(a, cache.Fill{State: cache.Shared, SI: true})
			fifo.OnInstall(c, a)
			if fifo.Len() > capacity {
				return false
			}
		}
		fifo.OnSync(c)
		if fifo.Len() != 0 {
			return false
		}
		marked := false
		c.ForEachValid(func(fr *cache.Frame) {
			if fr.SI {
				marked = true
			}
		})
		return !marked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for any request pattern, the version scheme never marks a read
// whose echoed version matches the entry, and always marks one that
// mismatches.
func TestVersionsReadDecisionProperty(t *testing.T) {
	f := func(echo uint8, bumps uint8) bool {
		e := entry(directory.Idle)
		for i := uint8(0); i < bumps%20; i++ {
			(Versions{}).Write(e, Request{Node: 0})
		}
		v := echo & directory.VerMask
		got := (Versions{}).Read(e, Request{Node: 1, Ver: v, HasVer: true})
		return got == (v != e.Ver)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
