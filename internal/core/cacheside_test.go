package core

import (
	"testing"
	"testing/quick"

	"dsisim/internal/cache"
	"dsisim/internal/mem"
)

func TestInvalHistoryThreshold(t *testing.T) {
	h := NewInvalHistory(16, 2)
	b := mem.Addr(3 * mem.BlockSize)
	if h.ShouldMark(b) {
		t.Fatal("fresh table marked")
	}
	h.OnInvalidate(b)
	if h.ShouldMark(b) {
		t.Fatal("one invalidation reached threshold 2")
	}
	h.OnInvalidate(b + 5) // same block, sub-block address
	if !h.ShouldMark(b) {
		t.Fatal("two invalidations did not reach threshold")
	}
	if h.Count(b) != 2 {
		t.Fatalf("count = %d", h.Count(b))
	}
}

func TestInvalHistoryConflictEviction(t *testing.T) {
	h := NewInvalHistory(4, 2)
	a := mem.Addr(1 * mem.BlockSize)
	b := a + mem.Addr(4*mem.BlockSize) // same slot (4-entry table)
	h.OnInvalidate(a)
	h.OnInvalidate(a)
	h.OnInvalidate(b) // steals the slot
	if h.ShouldMark(a) {
		t.Fatal("evicted entry still marks")
	}
	if h.Count(b) != 1 {
		t.Fatalf("stealer count = %d", h.Count(b))
	}
}

func TestInvalHistorySaturates(t *testing.T) {
	h := NewInvalHistory(4, 1)
	a := mem.Addr(mem.BlockSize)
	for i := 0; i < 300; i++ {
		h.OnInvalidate(a)
	}
	if h.Count(a) != 0xff {
		t.Fatalf("count = %d, want saturated 255", h.Count(a))
	}
}

func TestInvalHistoryBadConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewInvalHistory(0, 1) },
		func() { NewInvalHistory(3, 1) }, // not a power of two
		func() { NewInvalHistory(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad config did not panic")
				}
			}()
			f()
		}()
	}
}

func TestMarkLocal(t *testing.T) {
	h := NewInvalHistory(16, 1)
	c := cache.New(cache.Config{SizeBytes: 16 * mem.BlockSize, Assoc: 4})
	a := mem.Addr(2 * mem.BlockSize)
	c.Install(a, cache.Fill{State: cache.Shared})
	if h.MarkLocal(c, a) {
		t.Fatal("marked without history")
	}
	h.OnInvalidate(a)
	if !h.MarkLocal(c, a) {
		t.Fatal("did not mark with history")
	}
	f, _ := c.Peek(a)
	if !f.SI {
		t.Fatal("frame s bit not set")
	}
	// Marked frames are flushable through the normal machinery.
	if out := (SyncFlush{}).OnSync(c); len(out) != 1 || out[0].Addr != a {
		t.Fatalf("flush = %+v", out)
	}
	if h.Marked != 1 {
		t.Fatalf("marked counter = %d", h.Marked)
	}
}

func TestNaiveFlushScanLatency(t *testing.T) {
	c := cache.New(cache.Config{SizeBytes: 64 * mem.BlockSize, Assoc: 4})
	if got := (NaiveFlush{}).ScanLatency(c, 0); got != 64 {
		t.Fatalf("naive scan = %d, want 64 (one per frame)", got)
	}
	if got := (SyncFlush{}).ScanLatency(c, 10); got != 0 {
		t.Fatalf("list scan = %d, want 0", got)
	}
	if got := NewFIFO(8).ScanLatency(c, 10); got != 0 {
		t.Fatalf("fifo scan = %d, want 0", got)
	}
}

// Property: ShouldMark is exactly "same block still resident and count >=
// threshold", for any invalidation sequence.
func TestInvalHistoryProperty(t *testing.T) {
	f := func(blocks []uint8, probe uint8) bool {
		h := NewInvalHistory(8, 3)
		counts := map[mem.Addr]uint8{}
		resident := map[int]mem.Addr{}
		for _, raw := range blocks {
			b := mem.Addr(raw%32) * mem.BlockSize
			slot := int(mem.BlockIndex(b)) & 7
			if resident[slot] != b {
				resident[slot] = b
				counts[b] = 0
			}
			counts[b]++
			h.OnInvalidate(b)
		}
		p := mem.Addr(probe%32) * mem.BlockSize
		slot := int(mem.BlockIndex(p)) & 7
		want := resident[slot] == p && counts[p] >= 3
		return h.ShouldMark(p) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
