package workload

import "dsisim/internal/machine"

// OceanParams scales the Ocean grid relaxation.
type OceanParams struct {
	N              int // grid is N x N interior points
	Iters          int
	ComputePerCell int64
	// RelaxedRounds adds the unsynchronized sharing the paper observes in
	// Ocean ("un-synchronized accesses to shared data"): per iteration,
	// this many rounds of boundary-row exchange run with no barrier in
	// between, so a neighbor's read downgrades the owner's fresh exclusive
	// copy and the owner's next write pays a full invalidation — a conflict
	// DSI cannot remove (there is no synchronization point between the
	// accesses for self-invalidation to run at), while the weak-consistency
	// write buffer hides it.
	RelaxedRounds int
}

// OceanDefaults mirrors the paper's 98x98 input at simulation scale.
func OceanDefaults() OceanParams {
	return OceanParams{N: 64, Iters: 3, ComputePerCell: 3, RelaxedRounds: 8}
}

// Ocean is the red-black grid relaxation: rows are block-partitioned, each
// sweep reads the rows adjacent to the partition boundary from the
// neighboring processors, and a lock protects the global residual.
type Ocean struct {
	P OceanParams

	grid     Array // N*N row-major
	residual Array
	lock     Locks
}

// NewOcean builds the workload.
func NewOcean(p OceanParams) *Ocean { return &Ocean{P: p} }

// Name implements Program.
func (w *Ocean) Name() string { return "ocean" }

// WarmupBarriers implements Program.
func (w *Ocean) WarmupBarriers() int { return 1 }

// Setup implements Program.
func (w *Ocean) Setup(m *machine.Machine) {
	l := m.Layout()
	w.grid = NewArrayBlocked(l, "ocean.grid", w.P.N*w.P.N)
	w.residual = NewArrayInterleaved(l, "ocean.residual", 1)
	w.lock = NewLocks(l, "ocean.lock", 1)
}

func (w *Ocean) at(r, c int) int { return r*w.P.N + c }

// Kernel implements Program. Red-black sweeps: cells with (r+c) even update
// in the red phase reading black neighbors, and vice versa, with barriers
// between phases. The grid word carries the sweep count for the producing
// color, asserted where the barrier guarantees freshness.
func (w *Ocean) Kernel(p *Proc) {
	n := w.P.N
	rlo, rhi := span(n, p.ID(), p.N())
	// Initialization: each owner zeroes its rows.
	for r := rlo; r < rhi; r++ {
		for c := 0; c < n; c++ {
			p.WriteWord(w.grid.At(w.at(r, c)), 0)
		}
	}
	p.Barrier() // end of initialization

	sweep := func(color int, write uint64) {
		for r := rlo; r < rhi; r++ {
			for c := 0; c < n; c++ {
				if (r+c)%2 != color {
					continue
				}
				for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					nr, nc := r+d[0], c+d[1]
					if nr < 0 || nr >= n || nc < 0 || nc >= n {
						continue
					}
					p.Read(w.grid.At(w.at(nr, nc)))
				}
				p.Compute(w.P.ComputePerCell)
				p.WriteWord(w.grid.At(w.at(r, c)), write)
			}
		}
	}
	for t := 0; t < w.P.Iters; t++ {
		sweep(0, uint64(2*t+1))
		p.Barrier()
		sweep(1, uint64(2*t+2))
		p.Barrier()
		// Unsynchronized boundary exchange: several rounds of read-neighbor
		// then rewrite-own-edge with no barrier between rounds. Values may
		// be old or new (no assertions); the point is the conflict timing —
		// each rewrite must invalidate the neighbor's fresh copy inside the
		// phase, where self-invalidation (which runs at sync points) cannot
		// have removed it.
		for round := 0; round < w.P.RelaxedRounds; round++ {
			if p.ID()+1 < p.N() {
				for c := 0; c < n; c++ {
					p.Read(w.grid.At(w.at(rhi, c)))
				}
			}
			if p.ID() > 0 {
				for c := 0; c < n; c++ {
					p.Read(w.grid.At(w.at(rlo-1, c)))
				}
			}
			for c := 0; c < n; c++ {
				p.WriteWord(w.grid.At(w.at(rlo, c)), uint64(2*t+2))
				p.WriteWord(w.grid.At(w.at(rhi-1, c)), uint64(2*t+2))
			}
			p.Compute(w.P.ComputePerCell * int64(n/2))
		}
		// Global residual under a lock.
		p.Lock(w.lock.Addr(0))
		v := p.Read(w.residual.At(0))
		p.WriteWord(w.residual.At(0), v.Word+1)
		p.Unlock(w.lock.Addr(0))
		p.Barrier()
	}
	if p.ID() == 0 {
		v := p.Read(w.residual.At(0))
		p.Assert(v.Word == uint64(p.N()*w.P.Iters),
			"ocean: residual %d, want %d", v.Word, p.N()*w.P.Iters)
	}
}
