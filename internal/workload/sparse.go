package workload

import "dsisim/internal/machine"

// SparseParams scales the Sparse iterative solver.
type SparseParams struct {
	N     int // unknowns (shared vector length)
	Iters int
	// Passes is how many times each processor re-traverses the shared
	// vector per iteration (the dense matrix-vector product reads x once
	// per owned row; passes batch that re-traversal). Re-traversal is what
	// makes the finite FIFO fatal in Figure 5: blocks displaced from the
	// buffer mid-iteration miss again on the next pass.
	Passes        int
	ComputePerRow int64 // cycles of matrix arithmetic per element
}

// SparseDefaults mirrors the paper's 512x512 dense input at simulation
// scale.
func SparseDefaults() SparseParams {
	return SparseParams{N: 512, Iters: 5, Passes: 4, ComputePerRow: 3}
}

// Sparse is the locally-written iterative solver: each iteration every
// processor reads the entire shared solution vector x (to multiply its
// block of matrix rows, charged as compute — the matrix itself is private),
// then overwrites its own slice of x with the new values.
//
// This is the paper's strongest case for DSI: every x block is read by all
// 32 processors and rewritten by its owner each iteration, so the base
// protocol pays a full invalidation fan-out per block per iteration, all of
// which self-invalidation removes.
type Sparse struct {
	P SparseParams
	x Array
}

// NewSparse builds the workload.
func NewSparse(p SparseParams) *Sparse { return &Sparse{P: p} }

// Name implements Program.
func (w *Sparse) Name() string { return "sparse" }

// WarmupBarriers implements Program: initialization writes x once.
func (w *Sparse) WarmupBarriers() int { return 1 }

// Setup implements Program.
func (w *Sparse) Setup(m *machine.Machine) {
	w.x = NewArrayInterleaved(m.Layout(), "sparse.x", w.P.N)
}

// Kernel implements Program. Word semantics: x[j] carries the iteration
// count after which it was produced; all reads in iteration t expect t.
func (w *Sparse) Kernel(p *Proc) {
	lo, hi := span(w.P.N, p.ID(), p.N())
	// Initialization: each owner writes its slice (iteration word 0).
	for j := lo; j < hi; j++ {
		p.WriteWord(w.x.At(j), 0)
	}
	p.Barrier() // end of initialization

	passes := w.P.Passes
	if passes <= 0 {
		passes = 1
	}
	for t := 0; t < w.P.Iters; t++ {
		// Multiply owned rows: each batch of rows re-reads the whole
		// vector.
		for pass := 0; pass < passes; pass++ {
			for j := 0; j < w.P.N; j++ {
				v := p.Read(w.x.At(j))
				p.Assert(v.Word == uint64(t), "sparse: x[%d] word %d, want %d", j, v.Word, t)
				p.Compute(w.P.ComputePerRow)
			}
		}
		p.Barrier()
		// Update owned slice with the new values.
		for j := lo; j < hi; j++ {
			p.WriteWord(w.x.At(j), uint64(t+1))
		}
		p.Barrier()
	}
}
