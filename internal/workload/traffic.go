package workload

// The traffic-shaped generators model production serving stacks rather than
// scientific kernels: zipfian hot-block popularity (zipf), pipelined
// producer-consumer rings (prodring), a contended lock convoy (lockconvoy),
// and open-loop request arrival from many simulated clients (openloop).
// They exercise exactly the regime the paper's bet is about — predicting
// when a block's sharing epoch ends — on the sharing patterns of a
// hot-writer/many-readers cache-invalidation workload. Every generator is
// constructed deterministically from a single seed via internal/rng: the
// per-processor operation streams are precomputed in Setup, so two runs of
// the same parameters are bit-identical and the kernels replay flat slices
// without allocating. docs/WORKLOADS.md documents each generator's sharing
// structure and which protocol should win on it.

import (
	"math"

	"dsisim/internal/machine"
	"dsisim/internal/rng"
)

// zipfTable samples ranks with zipfian popularity: rank r is drawn with
// probability proportional to 1/(r+1)^skew. The cumulative table is built
// once per Setup; each draw is one RNG step plus a binary search.
type zipfTable struct {
	cum []float64 // cum[i] = total weight of ranks 0..i
}

// newZipfTable builds the cumulative weight table for n ranks.
func newZipfTable(n int, skew float64) zipfTable {
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), skew)
		cum[i] = total
	}
	return zipfTable{cum: cum}
}

// draw returns a rank in [0, len(cum)).
//
//dsi:hotpath
func (z zipfTable) draw(r *rng.RNG) int {
	x := r.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ZipfParams scales the zipf generator — the CDN/feed-invalidation analogy
// of DSI: a small set of hot writers rewrites popular blocks each round, and
// every processor re-reads blocks drawn from a zipfian popularity
// distribution. The base protocol pays an invalidation fan-out per hot
// block per round; self-invalidation predicts the epoch end at the barrier.
type ZipfParams struct {
	Blocks          int     // shared working set (one word used per block)
	Rounds          int     // write/read rounds, barrier-separated
	ReadsPerProc    int     // zipf-drawn reads per processor per round
	WritesPerWriter int     // zipf-drawn block updates per hot writer per round
	HotWriterFrac   float64 // fraction of processors that write (>= 1 writer)
	Skew            float64 // zipf exponent; higher = hotter head
	ComputePerOp    int64   // cycles of request processing per read
	Seed            uint64
}

// ZipfDefaults is the paper-scale preset: a working set that fits the large
// cache class with a hot head that every processor re-reads each round.
func ZipfDefaults() ZipfParams {
	return ZipfParams{Blocks: 256, Rounds: 8, ReadsPerProc: 160, WritesPerWriter: 40,
		HotWriterFrac: 0.125, Skew: 1.1, ComputePerOp: 2, Seed: 0x21bf}
}

// ZipfScaled returns the preset for a registry scale.
func ZipfScaled(s Scale) ZipfParams {
	p := ZipfDefaults()
	if s == ScaleTest {
		p.Blocks, p.Rounds, p.ReadsPerProc, p.WritesPerWriter = 32, 3, 24, 8
	}
	return p
}

// Zipf is the hot-writer/many-readers generator. Each round, the writer set
// rewrites a zipf-weighted selection of blocks (exactly one writer per block
// per round), a barrier publishes the updates, and then every processor
// performs its zipf-drawn reads, asserting that each block carries the value
// of the round that last wrote it — an end-to-end check that invalidation
// (or self-invalidation) actually happened.
type Zipf struct {
	P ZipfParams

	data   Array
	writes [][][]int32 // proc -> round -> blocks to rewrite (nil for readers)
	reads  [][][]int32 // proc -> round -> blocks to read
	expect [][]uint64  // round -> block -> expected word after the round's writes
}

// NewZipf builds the workload.
func NewZipf(p ZipfParams) *Zipf { return &Zipf{P: p} }

// Name implements Program.
func (w *Zipf) Name() string { return "zipf" }

// WarmupBarriers implements Program: the zero-fill of the working set is
// initialization.
func (w *Zipf) WarmupBarriers() int { return 1 }

// Setup implements Program: allocate the working set and precompute every
// processor's operation stream and the reference values from the seed.
func (w *Zipf) Setup(m *machine.Machine) {
	n := m.Config().Processors
	w.data = NewArrayInterleaved(m.Layout(), "zipf.data", w.P.Blocks*4)

	writers := int(w.P.HotWriterFrac*float64(n) + 0.5)
	if writers < 1 {
		writers = 1
	}
	if writers > n {
		writers = n
	}
	r := rng.New(w.P.Seed)
	zt := newZipfTable(w.P.Blocks, w.P.Skew)

	cur := make([]uint64, w.P.Blocks)
	owner := make([]int, w.P.Blocks) // this round's writer, -1 = unwritten
	w.writes = make([][][]int32, n)
	w.reads = make([][][]int32, n)
	w.expect = make([][]uint64, w.P.Rounds)
	for p := 0; p < writers; p++ {
		w.writes[p] = make([][]int32, w.P.Rounds)
	}
	for p := 0; p < n; p++ {
		w.reads[p] = make([][]int32, w.P.Rounds)
	}
	for t := 0; t < w.P.Rounds; t++ {
		for b := range owner {
			owner[b] = -1
		}
		for p := 0; p < writers; p++ {
			list := make([]int32, 0, w.P.WritesPerWriter)
			for k := 0; k < w.P.WritesPerWriter; k++ {
				b := zt.draw(r)
				if owner[b] != -1 {
					continue // one writer per block per round
				}
				owner[b] = p
				cur[b] = uint64(t + 1)
				list = append(list, int32(b))
			}
			w.writes[p][t] = list
		}
		w.expect[t] = append([]uint64(nil), cur...)
		for p := 0; p < n; p++ {
			list := make([]int32, w.P.ReadsPerProc)
			for k := range list {
				list[k] = int32(zt.draw(r))
			}
			w.reads[p][t] = list
		}
	}
}

// Kernel implements Program.
//
//dsi:hotpath
func (w *Zipf) Kernel(p *Proc) {
	lo, hi := span(w.P.Blocks, p.ID(), p.N())
	for j := lo; j < hi; j++ {
		p.WriteWord(w.data.At(j*4), 0)
	}
	p.Barrier() // end of initialization

	for t := 0; t < w.P.Rounds; t++ {
		if wl := w.writes[p.ID()]; wl != nil {
			for _, b := range wl[t] {
				p.WriteWord(w.data.At(int(b)*4), uint64(t+1))
			}
		}
		p.Barrier() // updates published
		exp := w.expect[t]
		for _, b := range w.reads[p.ID()][t] {
			v := p.Read(w.data.At(int(b) * 4))
			p.Assert(v.Word == exp[b], "zipf: round %d block %d word %d, want %d", t, b, v.Word, exp[b])
			p.Compute(w.P.ComputePerOp)
		}
		p.Barrier() // round done; next round's writers may overwrite
	}
}
