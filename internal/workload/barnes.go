package workload

import (
	"dsisim/internal/machine"
	"dsisim/internal/rng"
)

// BarnesParams scales the Barnes-Hut N-body kernel.
type BarnesParams struct {
	Bodies       int
	Cells        int // tree cells, each with its own lock
	Iters        int
	CellsPerBody int // tree cells visited per body during force computation
	BaseCompute  int64
	Seed         uint64
}

// BarnesDefaults mirrors the paper's 2048-body run at simulation scale.
func BarnesDefaults() BarnesParams {
	return BarnesParams{Bodies: 384, Cells: 64, Iters: 3, CellsPerBody: 12, BaseCompute: 8, Seed: 0xba52}
}

// Barnes approximates the Barnes-Hut phases that drive its memory behavior:
// a tree-build phase inserting bodies into shared cells under fine-grain
// locks, a force phase reading a body-dependent set of cells and other
// bodies (read-mostly sharing, deliberately imbalanced work), and an update
// phase rewriting the owned bodies. The paper observes that synchronization
// (fine-grain locking plus imbalance) dominates Barnes at this scale and
// neither weak consistency nor DSI helps much — the kernel preserves that.
type Barnes struct {
	P BarnesParams

	pos, force Array
	cells      Array
	cellLocks  Locks
	// visit[t][b] lists the cells body b reads in iteration t's force
	// phase; cost[b] is the body's (imbalanced) compute cost.
	visit [][][]int
	cost  []int64
}

// NewBarnes builds the workload.
func NewBarnes(p BarnesParams) *Barnes { return &Barnes{P: p} }

// Name implements Program.
func (w *Barnes) Name() string { return "barnes" }

// WarmupBarriers implements Program.
func (w *Barnes) WarmupBarriers() int { return 1 }

// Setup implements Program.
func (w *Barnes) Setup(m *machine.Machine) {
	l := m.Layout()
	w.pos = NewArrayInterleaved(l, "barnes.pos", w.P.Bodies)
	w.force = NewArrayInterleaved(l, "barnes.force", w.P.Bodies)
	w.cells = NewArrayInterleaved(l, "barnes.cells", w.P.Cells)
	w.cellLocks = NewLocks(l, "barnes.locks", w.P.Cells)
	rnd := rng.New(w.P.Seed)
	w.visit = make([][][]int, w.P.Iters)
	for t := range w.visit {
		w.visit[t] = make([][]int, w.P.Bodies)
		for b := range w.visit[t] {
			vs := make([]int, w.P.CellsPerBody)
			for i := range vs {
				vs[i] = rnd.Intn(w.P.Cells)
			}
			w.visit[t][b] = vs
		}
	}
	w.cost = make([]int64, w.P.Bodies)
	for b := range w.cost {
		// Skewed per-body cost: contiguous ownership spans then inherit
		// different totals, reproducing the load imbalance the paper notes.
		w.cost[b] = w.P.BaseCompute * int64(1+rnd.Intn(8))
	}
}

// Kernel implements Program.
func (w *Barnes) Kernel(p *Proc) {
	lo, hi := span(w.P.Bodies, p.ID(), p.N())
	// Initialization: write owned bodies (generation 0).
	for b := lo; b < hi; b++ {
		p.WriteWord(w.pos.At(b), 0)
		p.WriteWord(w.force.At(b), 0)
	}
	p.Barrier() // end of initialization

	for t := 0; t < w.P.Iters; t++ {
		// Tree build: insert each owned body into a cell under its lock.
		for b := lo; b < hi; b++ {
			cell := w.visit[t][b][0]
			p.Lock(w.cellLocks.Addr(cell))
			v := p.Read(w.cells.At(cell))
			p.WriteWord(w.cells.At(cell), v.Word+1)
			p.Unlock(w.cellLocks.Addr(cell))
		}
		p.Barrier()
		// Force computation: read the visit set and neighboring bodies.
		for b := lo; b < hi; b++ {
			for _, cell := range w.visit[t][b] {
				p.Read(w.cells.At(cell))
			}
			// Read a few other bodies' positions (previous generation).
			for k := 1; k <= 3; k++ {
				nb := (b + k*17) % w.P.Bodies
				v := p.Read(w.pos.At(nb))
				p.Assert(v.Word == uint64(t), "barnes: pos[%d] word %d, want %d", nb, v.Word, t)
			}
			p.Compute(w.cost[b])
			p.WriteWord(w.force.At(b), uint64(t+1))
		}
		p.Barrier()
		// Update: advance owned bodies to the next generation.
		for b := lo; b < hi; b++ {
			v := p.Read(w.force.At(b))
			p.Assert(v.Word == uint64(t+1), "barnes: force[%d] word %d, want %d", b, v.Word, t+1)
			p.WriteWord(w.pos.At(b), uint64(t+1))
		}
		p.Barrier()
	}
	// Tree-build audit: cell insert counts must sum to Bodies*Iters.
	if p.ID() == 0 {
		var sum uint64
		for c := 0; c < w.P.Cells; c++ {
			sum += p.Read(w.cells.At(c)).Word
		}
		p.Assert(sum == uint64(w.P.Bodies*w.P.Iters),
			"barnes: cell inserts %d, want %d", sum, w.P.Bodies*w.P.Iters)
	}
}
