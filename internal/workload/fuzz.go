package workload

// The seeded random-litmus fuzzer. GenLitmus derives a small random program
// — read/write/lock-increment interleavings over a handful of blocks,
// rounds separated by barriers — deterministically from one seed. RunLitmus
// executes the spec on a real machine under a chosen protocol and fault
// plan; the kernel asserts every read against the reference model's allowed
// value set, the machine's quiesce-time check.Audit validates the coherence
// metadata, and check.CrossCheckOutcomes compares the observed final memory
// against the reference interleaving's prediction. Fuzz drives the whole
// protocol × fault-plan matrix over N generated programs, and on failure
// minimizes the spec by greedy op-deletion and persists a replayable JSON
// spec to disk ("Mending Fences" shows self-invalidation bugs are exactly
// the kind only this style of randomized litmus exploration finds).
//
// The reference model is deliberately conservative about weak consistency:
// a read of a block written in the same round (by any processor, writes are
// unique per round×block by construction) may observe either the round's
// previous value or its new value; a read of a block not written this round
// must observe the last value published by an earlier barrier. These are
// exactly the guarantees every simulated protocol — SC, WC's write buffer,
// tear-off self-invalidation, versions/states DSI — must preserve.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"dsisim/internal/check"
	"dsisim/internal/core"
	"dsisim/internal/faultinj"
	"dsisim/internal/machine"
	"dsisim/internal/obs"
	"dsisim/internal/proto"
	"dsisim/internal/rng"
)

// LitmusKind is a litmus operation kind.
type LitmusKind int

const (
	// LitmusRead reads a block and asserts the reference model's allowed set.
	LitmusRead LitmusKind = iota
	// LitmusWrite writes a unique value to a block (at most one writer per
	// block per round, so outcomes stay predictable under weak models).
	LitmusWrite
	// LitmusLockInc increments the shared counter under the global lock.
	LitmusLockInc
)

// String returns the op-kind name.
func (k LitmusKind) String() string {
	switch k {
	case LitmusRead:
		return "read"
	case LitmusWrite:
		return "write"
	case LitmusLockInc:
		return "lockinc"
	}
	return fmt.Sprintf("LitmusKind(%d)", int(k))
}

// LitmusOp is one operation of a litmus program.
type LitmusOp struct {
	Proc  int        `json:"proc"`
	Round int        `json:"round"`
	Kind  LitmusKind `json:"kind"`
	Block int        `json:"block"` // unused for lockinc
	Value uint64     `json:"value"` // writes only: the unique value stored
}

// LitmusSpec is a replayable litmus program: the seed it was generated from
// plus the explicit op list (so minimized specs survive generator changes).
type LitmusSpec struct {
	Seed   uint64     `json:"seed"`
	Procs  int        `json:"procs"`
	Blocks int        `json:"blocks"`
	Rounds int        `json:"rounds"`
	Ops    []LitmusOp `json:"ops"`
}

// GenLitmus derives a litmus program from a seed: 2–4 processors, 2–5
// blocks, 1–3 barrier-separated rounds, up to 4 ops per processor per
// round, with at most one write per (round, block) and globally unique
// write values.
func GenLitmus(seed uint64) *LitmusSpec {
	r := rng.New(seed)
	s := &LitmusSpec{
		Seed:   seed,
		Procs:  2 + r.Intn(3),
		Blocks: 2 + r.Intn(4),
		Rounds: 1 + r.Intn(3),
	}
	nextVal := uint64(1)
	written := make([]bool, s.Blocks)
	for t := 0; t < s.Rounds; t++ {
		for b := range written {
			written[b] = false
		}
		for q := 0; q < s.Procs; q++ {
			nops := r.Intn(5)
			for i := 0; i < nops; i++ {
				op := LitmusOp{Proc: q, Round: t}
				switch r.Intn(4) {
				case 0:
					op.Kind = LitmusLockInc
				case 1:
					op.Kind = LitmusWrite
					op.Block = r.Intn(s.Blocks)
					if written[op.Block] {
						op.Kind = LitmusRead // block already has this round's writer
					} else {
						written[op.Block] = true
						op.Value = nextVal
						nextVal++
					}
				default:
					op.Kind = LitmusRead
					op.Block = r.Intn(s.Blocks)
				}
				s.Ops = append(s.Ops, op)
			}
		}
	}
	return s
}

// litmusOutcome is the reference model's prediction for a spec: the final
// value of every block, the final counter, and the allowed value set for
// every read op (indexed by the op's position in Spec.Ops).
type litmusOutcome struct {
	final   []uint64    // blocks then counter
	allowed [][2]uint64 // indexed by op position in Spec.Ops; {low, high} for read ops
}

// referenceOutcome executes the spec on the sequentially-consistent
// reference interleaving (program order within a round, rounds in order,
// all of a round's writes published by its barrier).
func referenceOutcome(s *LitmusSpec) litmusOutcome {
	out := litmusOutcome{
		final:   make([]uint64, s.Blocks+1),
		allowed: make([][2]uint64, len(s.Ops)),
	}
	cur := make([]uint64, s.Blocks)     // value published by the last barrier
	prev := make([]uint64, s.Blocks)    // value before this round's write
	roundNew := make([]int64, s.Blocks) // this round's written value, -1 = none
	var counter uint64
	for t := 0; t < s.Rounds; t++ {
		for b := 0; b < s.Blocks; b++ {
			prev[b] = cur[b]
			roundNew[b] = -1
		}
		// Pass 1: the round's writes. Processors run concurrently within a
		// round, so a read races with the round's write regardless of where
		// the two ops sit in the spec's op list.
		for i := range s.Ops {
			op := &s.Ops[i]
			if op.Round != t {
				continue
			}
			switch op.Kind {
			case LitmusWrite:
				roundNew[op.Block] = int64(op.Value)
				cur[op.Block] = op.Value
			case LitmusLockInc:
				counter++
			case LitmusRead:
				// Reads are resolved in pass 2.
			}
		}
		// Pass 2: the round's reads, against the full write set.
		for i := range s.Ops {
			op := &s.Ops[i]
			if op.Round != t || op.Kind != LitmusRead {
				continue
			}
			if nv := roundNew[op.Block]; nv >= 0 {
				// Racing with this round's write: either value is legal.
				out.allowed[i] = [2]uint64{prev[op.Block], uint64(nv)}
			} else {
				out.allowed[i] = [2]uint64{prev[op.Block], prev[op.Block]}
			}
		}
	}
	copy(out.final, cur)
	out.final[s.Blocks] = counter
	return out
}

// litmusProgram runs a LitmusSpec as a machine.Program.
type litmusProgram struct {
	spec *LitmusSpec
	ref  litmusOutcome

	data Array
	ctr  Array
	lk   Locks

	perProc [][]int  // proc -> indices into spec.Ops, program order
	got     []uint64 // observed finals, written by proc 0 after the last barrier

	// breakWrites is the test canary: drop all writes to block 0 while the
	// reference model keeps them, so the outcome cross-check must fire.
	breakWrites bool
}

func newLitmusProgram(s *LitmusSpec) *litmusProgram {
	prog := &litmusProgram{
		spec:    s,
		ref:     referenceOutcome(s),
		perProc: make([][]int, s.Procs),
		got:     make([]uint64, s.Blocks+1),
	}
	for i := range s.Ops {
		q := s.Ops[i].Proc
		prog.perProc[q] = append(prog.perProc[q], i)
	}
	// Hand-written (loaded) specs may list ops out of round order; the
	// kernel replays each processor's ops round by round.
	for q := range prog.perProc {
		idx := prog.perProc[q]
		sort.SliceStable(idx, func(a, b int) bool { return s.Ops[idx[a]].Round < s.Ops[idx[b]].Round })
	}
	return prog
}

// Name implements Program.
func (w *litmusProgram) Name() string { return fmt.Sprintf("litmus-%x", w.spec.Seed) }

// WarmupBarriers implements Program: litmus programs measure nothing, so
// everything is "measured" (statistics are irrelevant here).
func (w *litmusProgram) WarmupBarriers() int { return 0 }

// Setup implements Program.
func (w *litmusProgram) Setup(m *machine.Machine) {
	w.data = NewArrayInterleaved(m.Layout(), "litmus.data", w.spec.Blocks*4)
	w.ctr = NewArrayInterleaved(m.Layout(), "litmus.ctr", 4)
	w.lk = NewLocks(m.Layout(), "litmus.lock", 1)
}

// Kernel implements Program. The per-op dispatch loop is the fuzzer's
// simulation hot path: every generated program funnels through it under
// every protocol x fault-plan cell.
//
//dsi:hotpath
func (w *litmusProgram) Kernel(p *Proc) {
	ops := w.perProc[p.ID()]
	k := 0
	for t := 0; t < w.spec.Rounds; t++ {
		for ; k < len(ops) && w.spec.Ops[ops[k]].Round == t; k++ {
			i := ops[k]
			op := &w.spec.Ops[i]
			switch op.Kind {
			case LitmusWrite:
				if w.breakWrites && op.Block == 0 {
					break // canary: silently lose the write
				}
				p.WriteWord(w.data.At(op.Block*4), op.Value)
			case LitmusLockInc:
				p.Lock(w.lk.Addr(0))
				v := p.Read(w.ctr.At(0))
				p.WriteWord(w.ctr.At(0), v.Word+1)
				p.Unlock(w.lk.Addr(0))
			case LitmusRead:
				a := w.ref.allowed[i]
				v := p.Read(w.data.At(op.Block * 4))
				p.Assert(v.Word == a[0] || v.Word == a[1],
					"litmus: op %d round %d block %d read %d, allowed {%d, %d}",
					i, t, op.Block, v.Word, a[0], a[1])
			}
		}
		p.Barrier()
	}
	if p.ID() == 0 {
		for b := 0; b < w.spec.Blocks; b++ {
			w.got[b] = p.Read(w.data.At(b * 4)).Word
		}
		w.got[w.spec.Blocks] = p.Read(w.ctr.At(0)).Word
	}
}

// FuzzProtocol is one protocol under fuzz: a name plus the machine
// configuration fragment that selects it. (The experiments package has a
// richer Label type; it cannot be imported here without a cycle.)
type FuzzProtocol struct {
	Name        string
	Consistency proto.Consistency
	Policy      core.Policy
}

// FuzzProtocols returns the protocols every litmus program is run under:
// the base protocols and the three main DSI variants (ISSUE 7).
func FuzzProtocols() []FuzzProtocol {
	return []FuzzProtocol{
		{Name: "SC", Consistency: proto.SC},
		{Name: "W", Consistency: proto.WC},
		{Name: "S", Consistency: proto.SC,
			Policy: core.Policy{Identifier: core.States{}, UpgradeExemption: true}},
		{Name: "V", Consistency: proto.SC,
			Policy: core.Policy{Identifier: core.Versions{}, UpgradeExemption: true}},
		{Name: "W+DSI", Consistency: proto.WC,
			Policy: core.Policy{Identifier: core.Versions{}, TearOff: true}},
	}
}

// FuzzFaultPlan is one fault plan of the fuzz matrix. A nil Config means
// fault-free. Non-nil plans get a per-spec seed at run time so injected
// chaos is replayable from the spec alone.
type FuzzFaultPlan struct {
	Name   string
	Config *faultinj.Config
}

// FuzzFaultPlans returns the fault plans every litmus program is run under:
// clean, lossy (drop+dup+delay), and reorder-heavy delay.
func FuzzFaultPlans() []FuzzFaultPlan {
	return []FuzzFaultPlan{
		{Name: "none"},
		{Name: "lossy", Config: &faultinj.Config{Drop: 0.02, Dup: 0.01, Delay: 0.05}},
		{Name: "jitter", Config: &faultinj.Config{Delay: 0.2, Jitter: 64}},
	}
}

// runLitmus executes the spec under one protocol × fault-plan cell and
// returns the machine result plus the first failure: a kernel assert or
// audit error recorded in the result, or an outcome cross-check mismatch.
func runLitmus(prog *litmusProgram, pr FuzzProtocol, plan FuzzFaultPlan, sink *obs.Sink) (machine.Result, error) {
	cfg := machine.Config{
		Processors:  prog.spec.Procs,
		Consistency: pr.Consistency,
		Policy:      pr.Policy,
		Seed:        prog.spec.Seed | 1,
		Sink:        sink,
	}
	if plan.Config != nil {
		fc := *plan.Config
		fc.Seed = prog.spec.Seed ^ 0xfa17 // replayable per-spec fault stream
		cfg.Faults = &fc
	}
	res := machine.New(cfg).Run(prog)
	if res.Failed() {
		return res, fmt.Errorf("%s/%s: %s", pr.Name, plan.Name, res.Errors[0])
	}
	return res, check.CrossCheckOutcomes("block", prog.got, prog.ref.final)
}

// RunLitmus executes the spec under one protocol × fault-plan cell.
func RunLitmus(s *LitmusSpec, pr FuzzProtocol, plan FuzzFaultPlan) error {
	_, err := runLitmus(newLitmusProgram(s), pr, plan, nil)
	return err
}

// RunLitmusObserved is RunLitmus with a coherence-event sink attached, for
// consumers that need the run's event stream (the protomodel transition-
// coverage cross-check folds it against the static transition table).
func RunLitmusObserved(s *LitmusSpec, pr FuzzProtocol, plan FuzzFaultPlan, sink *obs.Sink) error {
	_, err := runLitmus(newLitmusProgram(s), pr, plan, sink)
	return err
}

// LitmusRun bundles the optional knobs of one litmus execution beyond the
// spec itself.
type LitmusRun struct {
	// Canary enables the broken-protocol write-dropping canary: the executed
	// kernel silently loses writes to block 0 while the reference model keeps
	// them, so the outcome cross-check must fail. It exists so detection
	// pipelines (the fuzzer's and the soak farm's) can prove, in tests, that
	// a real protocol bug would be caught, minimized, and persisted.
	Canary bool
	// Sink, if set, receives the run's coherence-event stream.
	Sink *obs.Sink
}

// RunLitmusOpts executes the spec under one protocol × fault-plan cell with
// the extra knobs of o, returning the kernel's event count and simulated
// cycles alongside the verdict. Both extras are deterministic per cell —
// the soak engine records them in its journal, where every byte must be
// reproducible across a kill/resume.
func RunLitmusOpts(s *LitmusSpec, pr FuzzProtocol, plan FuzzFaultPlan, o LitmusRun) (events uint64, cycles int64, err error) {
	prog := newLitmusProgram(s)
	prog.breakWrites = o.Canary
	res, err := runLitmus(prog, pr, plan, o.Sink)
	return res.Kernel.Events, int64(res.TotalTime), err
}

// MinimizeLitmus greedily deletes ops while fails still reports failure,
// iterating to a fixpoint: the returned spec fails, but removing any single
// op from it no longer does.
func MinimizeLitmus(s *LitmusSpec, fails func(*LitmusSpec) bool) *LitmusSpec {
	cur := *s
	cur.Ops = append([]LitmusOp(nil), s.Ops...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Ops); i++ {
			cand := cur
			cand.Ops = append(append([]LitmusOp(nil), cur.Ops[:i]...), cur.Ops[i+1:]...)
			if fails(&cand) {
				cur = cand
				changed = true
				i--
			}
		}
	}
	return &cur
}

// MinimizeFaultConfig greedily shrinks a failing fault plan while fails
// still reports failure: scripted rules are dropped one at a time to a
// fixpoint, then each probabilistic knob (drop, dup, delay, the per-kind
// and per-link overrides) is zeroed if the failure survives without it.
// The returned config still fails, but removing any single rule — or any
// one remaining knob — no longer does. A nil config (fault-free cell)
// returns nil: there is nothing to shrink.
func MinimizeFaultConfig(fc *faultinj.Config, fails func(*faultinj.Config) bool) *faultinj.Config {
	if fc == nil {
		return nil
	}
	cur := *fc
	cur.Rules = append([]faultinj.Rule(nil), fc.Rules...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Rules); i++ {
			cand := cur
			cand.Rules = append(append([]faultinj.Rule(nil), cur.Rules[:i]...), cur.Rules[i+1:]...)
			if fails(&cand) {
				cur = cand
				changed = true
				i--
			}
		}
	}
	try := func(mutate func(*faultinj.Config)) {
		cand := cur
		mutate(&cand)
		if fails(&cand) {
			cur = cand
		}
	}
	if cur.Drop != 0 {
		try(func(c *faultinj.Config) { c.Drop = 0 })
	}
	if cur.Dup != 0 {
		try(func(c *faultinj.Config) { c.Dup = 0 })
	}
	if cur.Delay != 0 {
		try(func(c *faultinj.Config) { c.Delay = 0 })
	}
	if cur.DropByKind != nil {
		try(func(c *faultinj.Config) { c.DropByKind = nil })
	}
	if cur.DropByLink != nil {
		try(func(c *faultinj.Config) { c.DropByLink = nil })
	}
	return &cur
}

// MinimizeLitmusFaults jointly shrinks a failing (spec, fault plan) pair to
// a replayable repro. Fault-plan rules are dropped before ops: a scripted
// rule counts occurrences of a message shape, so a superfluous rule can pin
// ops in place — deleting an op shifts the occurrence stream, the rule
// stops firing, the failure vanishes, and op-deletion keeps the op. With
// the noise rules gone first, op-deletion shrinks further (the minimizer
// test pins a case where rules-first finds a strictly smaller repro than
// op-deletion alone). The two passes alternate to a joint fixpoint. fc may
// be nil for a fault-free cell; the returned pair still fails.
func MinimizeLitmusFaults(s *LitmusSpec, fc *faultinj.Config, fails func(*LitmusSpec, *faultinj.Config) bool) (*LitmusSpec, *faultinj.Config) {
	curS := s
	curF := fc
	for changed := true; changed; {
		changed = false
		nf := MinimizeFaultConfig(curF, func(c *faultinj.Config) bool { return fails(curS, c) })
		if !reflect.DeepEqual(nf, curF) {
			curF = nf
			changed = true
		}
		ns := MinimizeLitmus(curS, func(c *LitmusSpec) bool { return fails(c, curF) })
		if len(ns.Ops) != len(curS.Ops) {
			changed = true
		}
		curS = ns
	}
	return curS, curF
}

// SaveLitmus persists a replayable spec as JSON.
func SaveLitmus(s *LitmusSpec, path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadLitmus reads a spec persisted by SaveLitmus.
func LoadLitmus(path string) (*LitmusSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := new(LitmusSpec)
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Procs < 1 || s.Blocks < 1 || s.Rounds < 1 {
		return nil, fmt.Errorf("%s: spec needs at least one proc, block, and round", path)
	}
	for i, op := range s.Ops {
		if op.Proc < 0 || op.Proc >= s.Procs || op.Round < 0 || op.Round >= s.Rounds ||
			op.Block < 0 || op.Block >= s.Blocks {
			return nil, fmt.Errorf("%s: op %d out of range", path, i)
		}
	}
	return s, nil
}

// FuzzFailure records one failing protocol × fault-plan cell: the failing
// program's seed, the first error, and where the minimized replayable spec
// was persisted (empty if OutDir was unset).
type FuzzFailure struct {
	Protocol string
	Plan     string
	Seed     uint64
	Err      string
	MinOps   int
	Path     string
}

// FuzzReport summarizes a Fuzz campaign.
type FuzzReport struct {
	Programs int
	Runs     int
	Failures []FuzzFailure
}

// FuzzOptions configures a Fuzz campaign.
type FuzzOptions struct {
	// OutDir, if set, receives one minimized replayable JSON spec per
	// failing cell.
	OutDir string
	// Log, if set, receives one progress line per program.
	Log func(format string, args ...any)
	// Protocols and FaultPlans override the default matrices (nil = all).
	Protocols  []FuzzProtocol
	FaultPlans []FuzzFaultPlan

	// breakWrites enables the broken-protocol canary (tests only): the
	// executed kernel silently drops writes to block 0 while the reference
	// model keeps them, so the cross-check must detect every affected spec.
	breakWrites bool
}

// Fuzz generates n litmus programs from seed and runs each under every
// protocol × fault-plan combination. Each failing cell is minimized and
// (when OutDir is set) persisted for replay via `dsisim -replay`.
func Fuzz(n int, seed uint64, opt FuzzOptions) (*FuzzReport, error) {
	protos := opt.Protocols
	if protos == nil {
		protos = FuzzProtocols()
	}
	plans := opt.FaultPlans
	if plans == nil {
		plans = FuzzFaultPlans()
	}
	rep := &FuzzReport{}
	seeds := rng.New(seed)
	for i := 0; i < n; i++ {
		specSeed := seeds.Uint64()
		spec := GenLitmus(specSeed)
		rep.Programs++
		for _, pr := range protos {
			for _, plan := range plans {
				rep.Runs++
				prog := newLitmusProgram(spec)
				prog.breakWrites = opt.breakWrites
				_, err := runLitmus(prog, pr, plan, nil)
				if err == nil {
					continue
				}
				fail := FuzzFailure{Protocol: pr.Name, Plan: plan.Name, Seed: specSeed, Err: err.Error()}
				min := MinimizeLitmus(spec, func(c *LitmusSpec) bool {
					p2 := newLitmusProgram(c)
					p2.breakWrites = opt.breakWrites
					_, ferr := runLitmus(p2, pr, plan, nil)
					return ferr != nil
				})
				fail.MinOps = len(min.Ops)
				if opt.OutDir != "" {
					if mkErr := os.MkdirAll(opt.OutDir, 0o755); mkErr != nil {
						return rep, mkErr
					}
					name := fmt.Sprintf("litmus-%016x-%s-%s.json", specSeed,
						sanitizeName(pr.Name), sanitizeName(plan.Name))
					path := filepath.Join(opt.OutDir, name)
					if saveErr := SaveLitmus(min, path); saveErr != nil {
						return rep, saveErr
					}
					fail.Path = path
				}
				rep.Failures = append(rep.Failures, fail)
			}
		}
		if opt.Log != nil {
			opt.Log("fuzz: program %d/%d (seed %016x): %d ops, %d failures so far",
				i+1, n, specSeed, len(spec.Ops), len(rep.Failures))
		}
	}
	return rep, nil
}

// sanitizeName makes a protocol/plan name filesystem-safe ("W+DSI" ->
// "W-DSI").
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '-'
	}, s)
}
