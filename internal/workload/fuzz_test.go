package workload

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Known-seed regression: a bounded campaign over the full protocol ×
// fault-plan matrix must come back clean on the current tree (the ISSUE 7
// acceptance gate, shrunk to unit-test size; dsibench -fuzz 200 runs the
// full-size version).
func TestFuzzKnownSeedClean(t *testing.T) {
	rep, err := Fuzz(12, 1, FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Programs != 12 {
		t.Fatalf("ran %d programs, want 12", rep.Programs)
	}
	if want := 12 * len(FuzzProtocols()) * len(FuzzFaultPlans()); rep.Runs != want {
		t.Fatalf("ran %d cells, want %d", rep.Runs, want)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("clean tree produced fuzz failures: %+v", rep.Failures)
	}
}

// Generation is a pure function of the seed.
func TestGenLitmusDeterministic(t *testing.T) {
	a, b := GenLitmus(42), GenLitmus(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different specs:\n%+v\n%+v", a, b)
	}
	if c := GenLitmus(43); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical specs")
	}
	if a.Procs < 2 || a.Procs > 4 || a.Blocks < 2 || a.Blocks > 5 || a.Rounds < 1 || a.Rounds > 3 {
		t.Fatalf("spec out of documented bounds: %+v", a)
	}
}

// At most one write per (round, block), and write values are unique: the
// invariants the reference model's outcome prediction depends on.
func TestGenLitmusWriteInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		s := GenLitmus(seed)
		writers := make(map[[2]int]bool)
		values := make(map[uint64]bool)
		for _, op := range s.Ops {
			if op.Kind != LitmusWrite {
				continue
			}
			k := [2]int{op.Round, op.Block}
			if writers[k] {
				t.Fatalf("seed %d: two writers for round %d block %d", seed, op.Round, op.Block)
			}
			writers[k] = true
			if values[op.Value] {
				t.Fatalf("seed %d: duplicate write value %d", seed, op.Value)
			}
			values[op.Value] = true
		}
	}
}

// The broken-protocol canary: silently dropping writes to block 0 must be
// detected by the assert/cross-check oracles, minimized to a small spec,
// and persisted as a replayable file that still demonstrates the failure.
func TestFuzzCanaryDetectsBrokenWrites(t *testing.T) {
	dir := t.TempDir()
	rep, err := Fuzz(8, 7, FuzzOptions{
		OutDir:      dir,
		Protocols:   FuzzProtocols()[:1],  // SC alone is enough for the canary
		FaultPlans:  FuzzFaultPlans()[:1], // fault-free
		breakWrites: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("broken kernel produced no fuzz failures; the cross-check oracle is dead")
	}
	f := rep.Failures[0]
	if f.Path == "" {
		t.Fatal("failure not persisted")
	}
	min, err := LoadLitmus(f.Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Ops) != f.MinOps || len(min.Ops) == 0 {
		t.Fatalf("persisted spec has %d ops, failure reports %d", len(min.Ops), f.MinOps)
	}
	// Minimality: the broken cell still fails on the minimized spec, and
	// removing any single op makes the failure disappear.
	brokenFails := func(s *LitmusSpec) bool {
		p := newLitmusProgram(s)
		p.breakWrites = true
		_, rerr := runLitmus(p, FuzzProtocols()[0], FuzzFaultPlans()[0], nil)
		return rerr != nil
	}
	if !brokenFails(min) {
		t.Fatal("minimized spec does not reproduce the failure")
	}
	for i := range min.Ops {
		cand := *min
		cand.Ops = append(append([]LitmusOp(nil), min.Ops[:i]...), min.Ops[i+1:]...)
		if brokenFails(&cand) {
			t.Fatalf("spec not 1-minimal: still fails without op %d", i)
		}
	}
	// The same spec replayed through the honest kernel passes: the bug was
	// in the canary's broken protocol, not the program.
	if err := RunLitmus(min, FuzzProtocols()[0], FuzzFaultPlans()[0]); err != nil {
		t.Fatalf("honest replay of minimized spec failed: %v", err)
	}
}

// Save/Load round-trips a spec exactly.
func TestLitmusSaveLoad(t *testing.T) {
	s := GenLitmus(99)
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := SaveLitmus(s, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLitmus(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round-trip mismatch:\n%+v\n%+v", s, got)
	}
}

// LoadLitmus rejects malformed and out-of-range specs.
func TestLitmusLoadRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	for _, body := range []string{
		"{not json",
		`{"seed":1,"procs":0,"blocks":2,"rounds":1}`,
		`{"seed":1,"procs":2,"blocks":2,"rounds":1,"ops":[{"proc":5,"round":0,"kind":0,"block":0}]}`,
	} {
		if err := os.WriteFile(bad, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadLitmus(bad); err == nil {
			t.Fatalf("accepted invalid spec %q", body)
		}
	}
}

// LitmusKind follows the repo's enum String() convention.
func TestLitmusKindString(t *testing.T) {
	cases := map[LitmusKind]string{
		LitmusRead:    "read",
		LitmusWrite:   "write",
		LitmusLockInc: "lockinc",
		LitmusKind(9): "LitmusKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("LitmusKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

// The minimizer never returns a passing spec and always shrinks or holds.
func TestMinimizeLitmus(t *testing.T) {
	s := GenLitmus(3)
	// Failure predicate: spec contains at least one lockinc.
	fails := func(c *LitmusSpec) bool {
		for _, op := range c.Ops {
			if op.Kind == LitmusLockInc {
				return true
			}
		}
		return false
	}
	if !fails(s) {
		t.Skip("seed 3 generated no lockinc ops")
	}
	min := MinimizeLitmus(s, fails)
	if len(min.Ops) != 1 || min.Ops[0].Kind != LitmusLockInc {
		t.Fatalf("minimizer kept %d ops: %+v", len(min.Ops), min.Ops)
	}
}
