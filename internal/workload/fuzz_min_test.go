package workload

import (
	"reflect"
	"testing"

	"dsisim/internal/faultinj"
)

// minSpec builds the fixture shared by the fault-aware minimizer tests:
// five ops (one write to block 0 among reads) and a two-rule fault plan —
// the "real" rule the failure needs and a noise rule that merely counts
// occurrences.
func minSpec() (*LitmusSpec, *faultinj.Config) {
	s := &LitmusSpec{
		Seed: 0xabc, Procs: 2, Blocks: 2, Rounds: 1,
		Ops: []LitmusOp{
			{Proc: 0, Round: 0, Kind: LitmusRead, Block: 1},
			{Proc: 0, Round: 0, Kind: LitmusWrite, Block: 0, Value: 1},
			{Proc: 1, Round: 0, Kind: LitmusRead, Block: 0},
			{Proc: 1, Round: 0, Kind: LitmusRead, Block: 1},
			{Proc: 1, Round: 0, Kind: LitmusLockInc},
		},
	}
	fc := &faultinj.Config{Rules: []faultinj.Rule{
		{Kind: 7, Src: -1, Dst: -1, Nth: 1, Action: faultinj.Drop},  // the culprit
		{Kind: 9, Src: -1, Dst: -1, Nth: 3, Action: faultinj.Delay}, // noise
	}}
	return s, fc
}

// minFails is a synthetic failure oracle modeling how a superfluous
// scripted rule pins ops in place: the failure needs the kind-7 drop rule
// plus the write to block 0, but while the kind-9 noise rule is present its
// occurrence counting also demands at least 4 ops — deleting ops below that
// makes the rule stop firing and the failure vanish.
func minFails(s *LitmusSpec, fc *faultinj.Config) bool {
	culprit, noise := false, false
	if fc != nil {
		for _, r := range fc.Rules {
			if r.Kind == 7 && r.Action == faultinj.Drop {
				culprit = true
			}
			if r.Kind == 9 {
				noise = true
			}
		}
	}
	writes := 0
	for _, op := range s.Ops {
		if op.Kind == LitmusWrite && op.Block == 0 {
			writes++
		}
	}
	if !culprit || writes == 0 {
		return false
	}
	return !noise || len(s.Ops) >= 4
}

// Dropping fault-plan rules before ops reaches a strictly smaller repro
// than op-deletion alone: with the noise rule still installed, op-deletion
// bottoms out at 4 ops; rules-first shrinks the plan to the single culprit
// rule and then op-deletion reaches the lone write.
func TestMinimizeLitmusFaultsBeatsOpDeletionAlone(t *testing.T) {
	spec, fc := minSpec()
	if !minFails(spec, fc) {
		t.Fatal("fixture does not fail")
	}

	opOnly := MinimizeLitmus(spec, func(c *LitmusSpec) bool { return minFails(c, fc) })
	if len(opOnly.Ops) != 4 {
		t.Fatalf("op-deletion alone minimized to %d ops, fixture expects it stuck at 4", len(opOnly.Ops))
	}

	minS, minF := MinimizeLitmusFaults(spec, fc, minFails)
	if !minFails(minS, minF) {
		t.Fatal("minimized pair no longer fails")
	}
	if len(minF.Rules) != 1 || minF.Rules[0].Kind != 7 {
		t.Fatalf("rules not minimized to the culprit: %+v", minF.Rules)
	}
	if len(minS.Ops) != 1 || minS.Ops[0].Kind != LitmusWrite {
		t.Fatalf("ops not minimized to the lone write: %+v", minS.Ops)
	}
	if len(minS.Ops) >= len(opOnly.Ops) {
		t.Fatalf("rules-first repro (%d ops) not smaller than op-deletion alone (%d ops)",
			len(minS.Ops), len(opOnly.Ops))
	}
}

// The probabilistic knobs are zeroed when the failure survives without
// them, and a nil config passes through untouched.
func TestMinimizeFaultConfigKnobsAndNil(t *testing.T) {
	fc := &faultinj.Config{
		Drop: 0.1, Dup: 0.05, Delay: 0.2,
		DropByKind: map[int]float64{3: 0.5},
		Rules:      []faultinj.Rule{{Kind: 7, Src: -1, Dst: -1, Action: faultinj.Drop}},
	}
	// Failure needs only the rule.
	min := MinimizeFaultConfig(fc, func(c *faultinj.Config) bool {
		for _, r := range c.Rules {
			if r.Kind == 7 {
				return true
			}
		}
		return false
	})
	if min.Drop != 0 || min.Dup != 0 || min.Delay != 0 || min.DropByKind != nil {
		t.Fatalf("probabilistic knobs survived minimization: %+v", min)
	}
	if len(min.Rules) != 1 {
		t.Fatalf("culprit rule dropped: %+v", min.Rules)
	}
	// The original config is not mutated.
	if fc.Drop != 0.1 || len(fc.Rules) != 1 || fc.DropByKind == nil {
		t.Fatalf("input config mutated: %+v", fc)
	}
	if got := MinimizeFaultConfig(nil, func(*faultinj.Config) bool { return true }); got != nil {
		t.Fatalf("nil config minimized to %+v", got)
	}
}

// MinimizeLitmusFaults with a fault-insensitive oracle degenerates to
// MinimizeLitmus: same minimized ops, config untouched.
func TestMinimizeLitmusFaultsFaultFree(t *testing.T) {
	spec := GenLitmus(99)
	hasWrite := func(s *LitmusSpec) bool {
		for _, op := range s.Ops {
			if op.Kind == LitmusWrite {
				return true
			}
		}
		return false
	}
	if !hasWrite(spec) {
		t.Skip("seed produced no writes")
	}
	want := MinimizeLitmus(spec, hasWrite)
	got, gotF := MinimizeLitmusFaults(spec, nil, func(s *LitmusSpec, _ *faultinj.Config) bool { return hasWrite(s) })
	if gotF != nil {
		t.Fatalf("nil config grew rules: %+v", gotF)
	}
	if !reflect.DeepEqual(got.Ops, want.Ops) {
		t.Fatalf("fault-free joint minimization diverged:\n%+v\n%+v", got.Ops, want.Ops)
	}
}
