package workload_test

import (
	"fmt"

	"dsisim/internal/workload"
)

// A fuzz campaign runs n seeded litmus programs, each under every
// protocol × fault-plan cell, through the coherence audit and the
// final-state cross-check against the reference interleaving. On a correct
// tree every cell passes; on failure the spec is minimized by greedy
// op-deletion and (with OutDir set) persisted for `dsisim -replay`.
func ExampleFuzz() {
	rep, err := workload.Fuzz(2, 7, workload.FuzzOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("programs %d, cells %d, failures %d\n",
		rep.Programs, rep.Runs, len(rep.Failures))

	// Every program is derived from a single seed, so any failure names
	// the exact spec that produced it.
	spec := workload.GenLitmus(42)
	fmt.Printf("seed 42: %d procs, %d blocks, %d rounds, %d ops\n",
		spec.Procs, spec.Blocks, spec.Rounds, len(spec.Ops))

	// Minimization deletes ops while the failure predicate keeps firing.
	// A synthetic predicate — "the program still holds a lock increment" —
	// shows the shape of the result: the smallest spec that still fails.
	min := workload.MinimizeLitmus(spec, func(c *workload.LitmusSpec) bool {
		for _, op := range c.Ops {
			if op.Kind == workload.LitmusLockInc {
				return true
			}
		}
		return false
	})
	fmt.Printf("minimized: %d op (%s)\n", len(min.Ops), min.Ops[0].Kind)

	// A minimized spec replays like any generated one — `dsisim -replay`
	// runs this same loop on a spec loaded from disk.
	clean := true
	for _, pr := range workload.FuzzProtocols() {
		for _, plan := range workload.FuzzFaultPlans() {
			if err := workload.RunLitmus(min, pr, plan); err != nil {
				clean = false
				fmt.Printf("%s/%s: %v\n", pr.Name, plan.Name, err)
			}
		}
	}
	fmt.Println("minimized spec replays clean:", clean)
	// Output:
	// programs 2, cells 30, failures 0
	// seed 42: 3 procs, 5 blocks, 1 rounds, 10 ops
	// minimized: 1 op (lockinc)
	// minimized spec replays clean: true
}
