package workload

import (
	"fmt"

	"dsisim/internal/machine"
)

// TomcatvParams scales the Tomcatv mesh-generation kernel.
type TomcatvParams struct {
	N              int // mesh is N x N
	Arrays         int // distinct row-partitioned arrays (the SPEC code uses 7)
	Iters          int
	ComputePerCell int64
}

// TomcatvDefaults mirrors the paper's 512x512 input at simulation scale,
// chosen so the per-processor working set overflows the small cache class
// but fits the large one (the calibration is recorded in EXPERIMENTS.md).
func TomcatvDefaults() TomcatvParams {
	return TomcatvParams{N: 192, Arrays: 7, Iters: 5, ComputePerCell: 4}
}

// Tomcatv is the vectorized mesh generator: several N x N arrays are
// row-partitioned; each iteration sweeps the owned rows, reading the rows
// just across each partition boundary from the previous generation of the
// mesh (double-buffered, so the exchange is race-free), then reduces a
// global residual under a lock. Communication is limited to boundary rows;
// most of the traffic is local capacity misses once the arrays exceed the
// cache.
type Tomcatv struct {
	P TomcatvParams

	mesh     [2]Array // double-buffered mesh generations
	work     []Array  // private working arrays (capacity traffic)
	residual Array
	lock     Locks
}

// NewTomcatv builds the workload.
func NewTomcatv(p TomcatvParams) *Tomcatv { return &Tomcatv{P: p} }

// Name implements Program.
func (w *Tomcatv) Name() string { return "tomcatv" }

// WarmupBarriers implements Program.
func (w *Tomcatv) WarmupBarriers() int { return 1 }

// Setup implements Program.
func (w *Tomcatv) Setup(m *machine.Machine) {
	l := m.Layout()
	w.mesh[0] = NewArrayBlocked(l, "tomcatv.mesh0", w.P.N*w.P.N)
	w.mesh[1] = NewArrayBlocked(l, "tomcatv.mesh1", w.P.N*w.P.N)
	nwork := w.P.Arrays - 2
	if nwork < 0 {
		nwork = 0
	}
	w.work = make([]Array, nwork)
	for i := range w.work {
		w.work[i] = NewArrayBlocked(l, fmt.Sprintf("tomcatv.w%d", i), w.P.N*w.P.N)
	}
	w.residual = NewArrayInterleaved(l, "tomcatv.residual", 1)
	w.lock = NewLocks(l, "tomcatv.lock", 1)
}

// Kernel implements Program. Mesh words carry the generation count;
// boundary-row reads assert the previous generation, which the barrier and
// double buffering guarantee.
func (w *Tomcatv) Kernel(p *Proc) {
	n := w.P.N
	rlo, rhi := span(n, p.ID(), p.N())
	at := func(r, c int) int { return r*n + c }
	// Initialization: generation 0 of the mesh.
	for r := rlo; r < rhi; r++ {
		for c := 0; c < n; c++ {
			p.WriteWord(w.mesh[0].At(at(r, c)), 0)
		}
	}
	p.Barrier() // end of initialization

	for t := 0; t < w.P.Iters; t++ {
		cur, nxt := w.mesh[t%2], w.mesh[(t+1)%2]
		// Boundary rows of the current generation from the neighbors.
		if rlo > 0 {
			for c := 0; c < n; c++ {
				v := p.Read(cur.At(at(rlo-1, c)))
				p.Assert(v.Word == uint64(t), "tomcatv: mesh[%d,%d] word %d, want %d", rlo-1, c, v.Word, t)
			}
		}
		if rhi < n {
			for c := 0; c < n; c++ {
				v := p.Read(cur.At(at(rhi, c)))
				p.Assert(v.Word == uint64(t), "tomcatv: mesh[%d,%d] word %d, want %d", rhi, c, v.Word, t)
			}
		}
		// Sweep the owned rows: read current mesh and working arrays,
		// write the next generation.
		for r := rlo; r < rhi; r++ {
			for c := 0; c < n; c++ {
				p.Read(cur.At(at(r, c)))
				for _, wa := range w.work {
					p.Read(wa.At(at(r, c)))
				}
				p.Compute(w.P.ComputePerCell)
				p.WriteWord(nxt.At(at(r, c)), uint64(t+1))
			}
		}
		// Residual reduction under the global lock.
		p.Lock(w.lock.Addr(0))
		v := p.Read(w.residual.At(0))
		p.WriteWord(w.residual.At(0), v.Word+1)
		p.Unlock(w.lock.Addr(0))
		p.Barrier()
	}
	if p.ID() == 0 {
		v := p.Read(w.residual.At(0))
		p.Assert(v.Word == uint64(p.N()*w.P.Iters),
			"tomcatv: residual %d, want %d", v.Word, p.N()*w.P.Iters)
	}
}
