package workload

import (
	"dsisim/internal/machine"
	"dsisim/internal/rng"
)

// ProdRingParams scales the prodring generator, a pipelined generalization
// of the prodcons microbenchmark: every processor is simultaneously the
// producer of its own ring of Depth slots and a consumer of the rings of its
// FanOut upstream neighbours. Deeper rings let the producer run ahead;
// larger fan-out multiplies the read-sharing of each published slot.
type ProdRingParams struct {
	Depth      int    // slots per ring
	FanOut     int    // upstream producers each processor consumes
	Rounds     int    // produce/consume rounds, barrier-separated
	SlotBlocks int    // cache blocks per slot
	JitterMax  int64  // max per-round compute jitter (cycles), drawn per proc
	Seed       uint64 // seeds the jitter schedule
}

// ProdRingDefaults is the paper-scale preset.
func ProdRingDefaults() ProdRingParams {
	return ProdRingParams{Depth: 4, FanOut: 3, Rounds: 16, SlotBlocks: 2, JitterMax: 12, Seed: 0x9c1}
}

// ProdRingScaled returns the preset for a registry scale.
func ProdRingScaled(s Scale) ProdRingParams {
	p := ProdRingDefaults()
	if s == ScaleTest {
		p.Depth, p.FanOut, p.Rounds, p.SlotBlocks, p.JitterMax = 2, 2, 5, 1, 4
	}
	return p
}

// ProdRing is the producer-consumer ring generator. Each round t, processor
// q overwrites slot t%Depth of its own ring with t+1, a barrier publishes
// the round, and then q reads every slot of its FanOut upstream rings,
// asserting each slot still carries the value of the most recent round that
// wrote it. Writers keep dirtying the same Depth slots, so self-invalidation
// hints must distinguish the rewritten slot from the Depth-1 still-live ones.
type ProdRing struct {
	P ProdRingParams

	rings  Array     // proc-major: ring q occupies [q*Depth*SlotBlocks, ...)
	jitter [][]int64 // proc -> round -> compute jitter
	fan    int       // effective fan-out (clamped to n-1)
}

// NewProdRing builds the workload.
func NewProdRing(p ProdRingParams) *ProdRing { return &ProdRing{P: p} }

// Name implements Program.
func (w *ProdRing) Name() string { return "prodring" }

// WarmupBarriers implements Program: the zero-fill round is initialization.
func (w *ProdRing) WarmupBarriers() int { return 1 }

// Setup implements Program.
func (w *ProdRing) Setup(m *machine.Machine) {
	n := m.Config().Processors
	w.fan = w.P.FanOut
	if w.fan > n-1 {
		w.fan = n - 1
	}
	w.rings = NewArrayInterleaved(m.Layout(), "ring.slots", n*w.P.Depth*w.P.SlotBlocks*4)
	r := rng.New(w.P.Seed)
	w.jitter = make([][]int64, n)
	for q := 0; q < n; q++ {
		js := make([]int64, w.P.Rounds)
		for t := range js {
			if w.P.JitterMax > 0 {
				js[t] = int64(r.Intn(int(w.P.JitterMax) + 1))
			}
		}
		w.jitter[q] = js
	}
}

// slotWord returns the address of the first word of slot s of ring q,
// block k.
func (w *ProdRing) slotWord(q, s, k int) int {
	return ((q*w.P.Depth+s)*w.P.SlotBlocks + k) * 4
}

// Kernel implements Program.
//
//dsi:hotpath
func (w *ProdRing) Kernel(p *Proc) {
	q := p.ID()
	for s := 0; s < w.P.Depth; s++ {
		for k := 0; k < w.P.SlotBlocks; k++ {
			p.WriteWord(w.rings.At(w.slotWord(q, s, k)), 0)
		}
	}
	p.Barrier() // end of initialization

	for t := 0; t < w.P.Rounds; t++ {
		s := t % w.P.Depth
		for k := 0; k < w.P.SlotBlocks; k++ {
			p.WriteWord(w.rings.At(w.slotWord(q, s, k)), uint64(t+1))
		}
		p.Compute(w.jitter[q][t])
		p.Barrier() // round t published

		for up := 1; up <= w.fan; up++ {
			src := q - up
			if src < 0 {
				src += p.N()
			}
			for s2 := 0; s2 < w.P.Depth; s2++ {
				// The most recent round <= t that wrote slot s2, or none yet.
				var want uint64
				if t >= s2 {
					want = uint64(t-(t-s2)%w.P.Depth) + 1
				}
				for k := 0; k < w.P.SlotBlocks; k++ {
					v := p.Read(w.rings.At(w.slotWord(src, s2, k)))
					p.Assert(v.Word == want, "prodring: round %d ring %d slot %d word %d, want %d",
						t, src, s2, v.Word, want)
				}
			}
		}
		p.Barrier() // consumers done; producers may overwrite slot (t+1)%Depth
	}
}
