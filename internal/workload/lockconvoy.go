package workload

import (
	"dsisim/internal/machine"
	"dsisim/internal/rng"
)

// LockConvoyParams scales the lockconvoy generator: every processor
// repeatedly acquires one global lock, mutates a multi-block payload under
// it, and thinks for a seeded random interval outside it. Unlike the locks
// microbenchmark (many locks, one counter each), the convoy keeps all
// processors queued on a single lock whose payload migrates with ownership —
// the worst case for eager invalidation and the pattern DSI's migratory
// detection is supposed to convert into single-message handoffs.
type LockConvoyParams struct {
	Acquisitions  int    // critical sections per processor
	PayloadBlocks int    // blocks mutated under the lock
	HoldCompute   int64  // cycles of work inside the critical section
	ThinkMax      int64  // max cycles of seeded think time outside it
	Seed          uint64 // seeds the think-time schedule
}

// LockConvoyDefaults is the paper-scale preset.
func LockConvoyDefaults() LockConvoyParams {
	return LockConvoyParams{Acquisitions: 24, PayloadBlocks: 4, HoldCompute: 40, ThinkMax: 60, Seed: 0x10c7}
}

// LockConvoyScaled returns the preset for a registry scale.
func LockConvoyScaled(s Scale) LockConvoyParams {
	p := LockConvoyDefaults()
	if s == ScaleTest {
		p.Acquisitions, p.PayloadBlocks, p.HoldCompute, p.ThinkMax = 6, 2, 10, 16
	}
	return p
}

// LockConvoy is the contended-lock generator. The critical section checks
// the invariant that every payload block equals the sequence counter, then
// advances all of them together — any lost or stale update under any
// protocol trips an assert inside the very next critical section.
type LockConvoy struct {
	P LockConvoyParams

	lk      Locks
	seq     Array     // one word: critical-section sequence counter
	payload Array     // PayloadBlocks blocks, all equal to seq
	think   [][]int64 // proc -> acquisition -> think cycles
}

// NewLockConvoy builds the workload.
func NewLockConvoy(p LockConvoyParams) *LockConvoy { return &LockConvoy{P: p} }

// Name implements Program.
func (w *LockConvoy) Name() string { return "lockconvoy" }

// WarmupBarriers implements Program.
func (w *LockConvoy) WarmupBarriers() int { return 0 }

// Setup implements Program.
func (w *LockConvoy) Setup(m *machine.Machine) {
	n := m.Config().Processors
	w.lk = NewLocks(m.Layout(), "convoy.lock", 1)
	w.seq = NewArrayInterleaved(m.Layout(), "convoy.seq", 4)
	w.payload = NewArrayInterleaved(m.Layout(), "convoy.payload", w.P.PayloadBlocks*4)
	r := rng.New(w.P.Seed)
	w.think = make([][]int64, n)
	for q := 0; q < n; q++ {
		ts := make([]int64, w.P.Acquisitions)
		for i := range ts {
			if w.P.ThinkMax > 0 {
				ts[i] = int64(r.Intn(int(w.P.ThinkMax) + 1))
			}
		}
		w.think[q] = ts
	}
}

// Kernel implements Program.
//
//dsi:hotpath
func (w *LockConvoy) Kernel(p *Proc) {
	for i := 0; i < w.P.Acquisitions; i++ {
		p.Lock(w.lk.Addr(0))
		s := p.Read(w.seq.At(0)).Word
		for b := 0; b < w.P.PayloadBlocks; b++ {
			v := p.Read(w.payload.At(b * 4))
			p.Assert(v.Word == s, "lockconvoy: acq %d payload block %d word %d, want seq %d", i, b, v.Word, s)
			p.WriteWord(w.payload.At(b*4), s+1)
		}
		p.Compute(w.P.HoldCompute)
		p.WriteWord(w.seq.At(0), s+1)
		p.Unlock(w.lk.Addr(0))
		p.Compute(w.think[p.ID()][i])
	}
	p.Barrier()
	if p.ID() == 0 {
		total := uint64(p.N() * w.P.Acquisitions)
		s := p.Read(w.seq.At(0)).Word
		p.Assert(s == total, "lockconvoy: final seq %d, want %d", s, total)
		for b := 0; b < w.P.PayloadBlocks; b++ {
			v := p.Read(w.payload.At(b * 4))
			p.Assert(v.Word == total, "lockconvoy: final payload block %d word %d, want %d", b, v.Word, total)
		}
	}
}
