package workload

import (
	"fmt"
	"sync"

	"dsisim/internal/machine"
	"dsisim/internal/rng"
)

// EM3DParams scales the EM3D kernel. NodesPerProc counts E nodes (and H
// nodes) owned by each processor.
type EM3DParams struct {
	NodesPerProc  int
	Degree        int
	PctRemote     float64 // fraction of dependencies crossing processors
	Iters         int
	ComputePerDep int64 // cycles charged per dependency edge
	Seed          uint64
}

// EM3DDefaults mirrors the paper's shape (192,000 nodes, degree 5, 5%
// remote) at simulation scale. The per-processor working set (node values
// plus per-edge weights) is sized to overflow the small cache class and fit
// the large one, preserving the paper's cache-size contrast for EM3D.
func EM3DDefaults() EM3DParams {
	return EM3DParams{NodesPerProc: 320, Degree: 5, PctRemote: 0.05, Iters: 5, ComputePerDep: 2, Seed: 0xe3d}
}

// EM3D is the bipartite-graph relaxation benchmark. Node values live at
// their owner (local allocation); every update happens at the home node,
// and remote processors re-read neighbor values each half-iteration.
type EM3D struct {
	P EM3DParams

	eVals, hVals []Array // per-proc value arrays
	// eWeights/hWeights are each processor's private per-edge coefficient
	// arrays — the streaming capacity traffic that dominates EM3D's misses
	// when the data set exceeds the cache.
	eWeights, hWeights []Array
	// eDeps[proc][node] lists (proc, index) H-dependencies; hDeps likewise
	// into E.
	eDeps, hDeps [][][2]int
}

// NewEM3D builds the workload with the given parameters.
func NewEM3D(p EM3DParams) *EM3D { return &EM3D{P: p} }

// Name implements Program.
func (w *EM3D) Name() string { return "em3d" }

// WarmupBarriers implements Program: the setup barrier ends initialization.
func (w *EM3D) WarmupBarriers() int { return 1 }

// Setup implements Program.
func (w *EM3D) Setup(m *machine.Machine) {
	n := m.Config().Processors
	l := m.Layout()
	w.eVals = make([]Array, n)
	w.hVals = make([]Array, n)
	w.eWeights = make([]Array, n)
	w.hWeights = make([]Array, n)
	edges := w.P.NodesPerProc * w.P.Degree
	for i := 0; i < n; i++ {
		w.eVals[i] = NewArrayLocal(l, fmt.Sprintf("em3d.e%d", i), w.P.NodesPerProc, i)
		w.hVals[i] = NewArrayLocal(l, fmt.Sprintf("em3d.h%d", i), w.P.NodesPerProc, i)
		w.eWeights[i] = NewArrayLocal(l, fmt.Sprintf("em3d.we%d", i), edges, i)
		w.hWeights[i] = NewArrayLocal(l, fmt.Sprintf("em3d.wh%d", i), edges, i)
	}
	w.eDeps, w.hDeps = em3dDeps(w.P, n)
}

// em3dDepKey identifies one generated dependency graph: the graph is a pure
// function of the parameters and the processor count.
type em3dDepKey struct {
	p EM3DParams
	n int
}

type em3dDepPair struct {
	e, h [][][2]int
}

// em3dDepCache shares generated dependency graphs across runs. An
// experiment grid simulates the same (workload, scale, processors) cell
// under many protocol labels; the reference stream is identical for all of
// them, so it is generated once and handed out read-only (the kernel never
// mutates it).
var em3dDepCache = struct {
	sync.Mutex
	m map[em3dDepKey]em3dDepPair
}{m: make(map[em3dDepKey]em3dDepPair)}

// em3dDeps returns the E- and H-phase dependency lists for (p, n), cached.
func em3dDeps(p EM3DParams, n int) (eDeps, hDeps [][][2]int) {
	key := em3dDepKey{p: p, n: n}
	em3dDepCache.Lock()
	defer em3dDepCache.Unlock()
	if d, ok := em3dDepCache.m[key]; ok {
		return d.e, d.h
	}
	rnd := rng.New(p.Seed)
	gen := func() [][][2]int {
		deps := make([][][2]int, n)
		for i := 0; i < n; i++ {
			deps[i] = make([][2]int, 0, p.NodesPerProc*p.Degree)
			for k := 0; k < p.NodesPerProc; k++ {
				for d := 0; d < p.Degree; d++ {
					owner := i
					if n > 1 && rnd.Bool(p.PctRemote) {
						owner = (i + 1 + rnd.Intn(n-1)) % n
					}
					deps[i] = append(deps[i], [2]int{owner, rnd.Intn(p.NodesPerProc)})
				}
			}
		}
		return deps
	}
	d := em3dDepPair{e: gen(), h: gen()}
	em3dDepCache.m[key] = d
	return d.e, d.h
}

// Kernel implements Program. Phase words: after E-phase of iteration t the
// E values carry word 2t+1; after the H-phase the H values carry 2t+2. Each
// phase asserts the freshness of everything it reads — an end-to-end
// coherence check of the protocol under test.
func (w *EM3D) Kernel(p *Proc) {
	id := p.ID()
	deg := w.P.Degree
	p.Barrier() // end of initialization

	phase := func(own, weights Array, deps [][2]int, readVals []Array, expect uint64, write uint64) {
		for k := 0; k < w.P.NodesPerProc; k++ {
			for d := 0; d < deg; d++ {
				dep := deps[k*deg+d]
				v := p.Read(readVals[dep[0]].At(dep[1]))
				p.Assert(v.Word == expect, "em3d: dep (%d,%d) word %d, want %d", dep[0], dep[1], v.Word, expect)
				p.Read(weights.At(k*deg + d)) // private edge coefficient
			}
			p.Compute(w.P.ComputePerDep * int64(deg))
			p.WriteWord(own.At(k), write)
		}
	}
	for t := 0; t < w.P.Iters; t++ {
		tt := uint64(t)
		phase(w.eVals[id], w.eWeights[id], w.eDeps[id], w.hVals, 2*tt, 2*tt+1)
		p.Barrier()
		phase(w.hVals[id], w.hWeights[id], w.hDeps[id], w.eVals, 2*tt+1, 2*tt+2)
		p.Barrier()
	}
}
