// Package workload re-implements the paper's five application programs
// (Table 1) as kernels for the simulator, preserving each benchmark's
// sharing structure at reduced scale, plus a set of microbenchmarks used by
// tests and examples.
//
//	Barnes   — N-body: fine-grain cell locking during tree build, read-shared
//	           tree during force computation, load imbalance.
//	EM3D     — bipartite graph relaxation: locally-allocated node values, a
//	           fraction of remote dependencies, all writes at the home node.
//	Ocean    — red-black grid relaxation with row partitioning, neighbor-row
//	           exchange, and a lock-protected global residual.
//	Sparse   — iterative solve: every processor reads the whole shared
//	           vector each iteration, then rewrites its own slice
//	           (the paper's best case for DSI).
//	Tomcatv  — mesh generation: seven row-partitioned arrays, neighbor rows,
//	           working set sized to overflow the small cache class.
//
// Scale is controlled by each workload's parameter struct; Scaled presets
// keep the paper's fits-in-large-cache / overflows-small-cache relations at
// simulation-friendly sizes (the substitution is documented in DESIGN.md).
package workload

import (
	"dsisim/internal/cpu"
	"dsisim/internal/machine"
	"dsisim/internal/mem"
)

// WordBytes is the element size used by all workload arrays.
const WordBytes = 8

// Array is a 1-D array of 8-byte elements in simulated memory.
type Array struct {
	r mem.Region
	n int
}

// NewArrayInterleaved allocates an n-element array with blocks interleaved
// across all nodes.
func NewArrayInterleaved(l *mem.Layout, name string, n int) Array {
	return Array{r: l.AllocInterleaved(name, uint64(n)*WordBytes), n: n}
}

// NewArrayBlocked allocates an n-element array split contiguously across
// nodes (row-partitioned grids).
func NewArrayBlocked(l *mem.Layout, name string, n int) Array {
	return Array{r: l.AllocBlocked(name, uint64(n)*WordBytes), n: n}
}

// NewArrayLocal allocates an n-element array homed entirely at node.
func NewArrayLocal(l *mem.Layout, name string, n, node int) Array {
	return Array{r: l.AllocLocal(name, uint64(n)*WordBytes, node), n: n}
}

// Len returns the element count.
func (a Array) Len() int { return a.n }

// At returns the address of element i.
func (a Array) At(i int) mem.Addr {
	return a.r.Addr(uint64(i) * WordBytes)
}

// Locks is an array of spin locks, one cache block each (no false sharing).
type Locks struct {
	r mem.Region
	n int
}

// NewLocks allocates n locks with blocks interleaved across nodes.
func NewLocks(l *mem.Layout, name string, n int) Locks {
	return Locks{r: l.AllocInterleaved(name, uint64(n)*mem.BlockSize), n: n}
}

// Addr returns lock i's address.
func (lk Locks) Addr(i int) mem.Addr {
	return lk.r.Addr(uint64(i) * mem.BlockSize)
}

// Len returns the lock count.
func (lk Locks) Len() int { return lk.n }

// span returns the half-open element range [lo, hi) owned by proc id of n
// total elements across nprocs processors.
func span(n, id, nprocs int) (lo, hi int) {
	lo = n * id / nprocs
	hi = n * (id + 1) / nprocs
	return lo, hi
}

// Program is the workload-side alias of machine.Program.
type Program = machine.Program

// Proc is the workload-side alias of the processor handle.
type Proc = cpu.Proc
