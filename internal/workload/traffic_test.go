package workload

import (
	"testing"

	"dsisim/internal/core"
	"dsisim/internal/machine"
	"dsisim/internal/mem"
	"dsisim/internal/proto"
)

// The traffic-shaped generators must be bit-identical across runs: all
// randomness comes from the parameter seed via internal/rng, and the
// operation streams are precomputed in Setup.
func TestTrafficDeterminism(t *testing.T) {
	for _, name := range TrafficNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func() machine.Result {
				return runOne(t, name, machine.Config{
					Consistency: proto.WC,
					Policy:      core.Policy{Identifier: core.Versions{}, TearOff: true},
				}, 8, 64*mem.BlockSize*4)
			}
			a, b := run(), run()
			if a.ExecTime != b.ExecTime || a.TotalTime != b.TotalTime ||
				a.Messages != b.Messages {
				t.Fatalf("nondeterministic: exec %d/%d total %d/%d msgs %d/%d",
					a.ExecTime, b.ExecTime, a.TotalTime, b.TotalTime,
					a.Messages.Total(), b.Messages.Total())
			}
		})
	}
}

// zipf's hot-writer/many-readers rounds are the invalidation fan-out case
// the generator exists to model: the base protocol must pay invalidations,
// and version-based DSI must cut them.
func TestZipfInvalidationProfile(t *testing.T) {
	base := runOne(t, "zipf", machine.Config{Consistency: proto.SC}, 8, 64*mem.BlockSize*4)
	if base.Messages.Invalidation() == 0 {
		t.Fatal("zipf produced no invalidation traffic under the base protocol")
	}
	dsi := runOne(t, "zipf", machine.Config{
		Consistency: proto.SC,
		Policy:      core.Policy{Identifier: core.Versions{}, UpgradeExemption: true},
	}, 8, 64*mem.BlockSize*4)
	if dsi.Messages.Invalidation() >= base.Messages.Invalidation() {
		t.Fatalf("DSI did not reduce zipf invalidations: %d >= %d",
			dsi.Messages.Invalidation(), base.Messages.Invalidation())
	}
}

// The presets must differ so ScaleTest actually shrinks the run.
func TestTrafficPresets(t *testing.T) {
	if p, q := ZipfScaled(ScalePaper), ZipfScaled(ScaleTest); p.Blocks <= q.Blocks {
		t.Fatalf("zipf paper blocks %d <= test blocks %d", p.Blocks, q.Blocks)
	}
	if p, q := ProdRingScaled(ScalePaper), ProdRingScaled(ScaleTest); p.Rounds <= q.Rounds {
		t.Fatalf("prodring paper rounds %d <= test rounds %d", p.Rounds, q.Rounds)
	}
	if p, q := LockConvoyScaled(ScalePaper), LockConvoyScaled(ScaleTest); p.Acquisitions <= q.Acquisitions {
		t.Fatalf("lockconvoy paper acquisitions %d <= test %d", p.Acquisitions, q.Acquisitions)
	}
	if p, q := OpenLoopScaled(ScalePaper), OpenLoopScaled(ScaleTest); p.WorkingSet <= q.WorkingSet {
		t.Fatalf("openloop paper working set %d <= test %d", p.WorkingSet, q.WorkingSet)
	}
}

// Degenerate processor counts must not wedge the generators (fan-out and
// writer-count clamps).
func TestTrafficTwoProcs(t *testing.T) {
	for _, name := range TrafficNames() {
		runOne(t, name, machine.Config{Consistency: proto.SC}, 2, 64*mem.BlockSize*4)
	}
}
