package workload

import (
	"fmt"
	"sort"
)

// Scale selects a size preset for the registry constructors.
type Scale int

const (
	// ScalePaper is the default evaluation size (scaled from the paper's
	// inputs per DESIGN.md §4).
	ScalePaper Scale = iota
	// ScaleTest is a small size for fast unit/integration tests.
	ScaleTest
)

// String returns the preset name.
func (s Scale) String() string {
	switch s {
	case ScalePaper:
		return "paper"
	case ScaleTest:
		return "test"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// builders maps workload names to constructors.
var builders = map[string]func(Scale) Program{
	"barnes": func(s Scale) Program {
		p := BarnesDefaults()
		if s == ScaleTest {
			p.Bodies, p.Cells, p.Iters, p.CellsPerBody = 64, 16, 2, 4
		}
		return NewBarnes(p)
	},
	"em3d": func(s Scale) Program {
		p := EM3DDefaults()
		if s == ScaleTest {
			p.NodesPerProc, p.Iters = 12, 2
		}
		return NewEM3D(p)
	},
	"ocean": func(s Scale) Program {
		p := OceanDefaults()
		if s == ScaleTest {
			p.N, p.Iters = 16, 2
		}
		return NewOcean(p)
	},
	"sparse": func(s Scale) Program {
		p := SparseDefaults()
		if s == ScaleTest {
			p.N, p.Iters, p.Passes = 64, 2, 2
		}
		return NewSparse(p)
	},
	"tomcatv": func(s Scale) Program {
		p := TomcatvDefaults()
		if s == ScaleTest {
			p.N, p.Iters, p.Arrays = 32, 2, 3
		}
		return NewTomcatv(p)
	},
	"prodcons": func(s Scale) Program {
		w := &ProducerConsumer{Blocks: 32, Rounds: 10}
		if s == ScaleTest {
			w.Blocks, w.Rounds = 8, 3
		}
		return w
	},
	"migratory": func(s Scale) Program {
		w := &Migratory{Blocks: 16, Rounds: 5}
		if s == ScaleTest {
			w.Blocks, w.Rounds = 4, 2
		}
		return w
	},
	"readshared": func(s Scale) Program {
		w := &ReadShared{Blocks: 32, Rounds: 10}
		if s == ScaleTest {
			w.Blocks, w.Rounds = 8, 3
		}
		return w
	},
	"locks": func(s Scale) Program {
		w := &LockContention{Locks: 4, Rounds: 20}
		if s == ScaleTest {
			w.Rounds = 5
		}
		return w
	},
	"falseshare": func(s Scale) Program {
		w := &FalseSharing{Rounds: 20}
		if s == ScaleTest {
			w.Rounds = 5
		}
		return w
	},
	// Traffic-shaped generators (docs/WORKLOADS.md). The ring generator is
	// registered as "prodring" because "prodcons" already names the
	// single-producer microbenchmark it generalizes.
	"zipf":       func(s Scale) Program { return NewZipf(ZipfScaled(s)) },
	"prodring":   func(s Scale) Program { return NewProdRing(ProdRingScaled(s)) },
	"lockconvoy": func(s Scale) Program { return NewLockConvoy(LockConvoyScaled(s)) },
	"openloop":   func(s Scale) Program { return NewOpenLoop(OpenLoopScaled(s)) },
}

// Names returns all registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	//dsi:anyorder — keys are sorted before returning.
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperNames returns the five Table 1 applications in the paper's order.
func PaperNames() []string {
	return []string{"barnes", "em3d", "ocean", "sparse", "tomcatv"}
}

// TrafficNames returns the traffic-shaped generators in the order used by
// the experiments.TrafficGrid tables.
func TrafficNames() []string {
	return []string{"zipf", "prodring", "lockconvoy", "openloop"}
}

// New builds a fresh workload instance by name (a Program is single-use,
// like the Machine that runs it).
func New(name string, s Scale) (Program, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown name %q (have %v)", name, Names())
	}
	return b(s), nil
}
