package workload

import "dsisim/internal/machine"

// The microbenchmarks isolate one sharing pattern each. They are used by
// tests, examples, and the ablation benchmarks.

// ProducerConsumer: processor 0 writes a buffer each round; everyone else
// reads it after a barrier. Maximal invalidation fan-out per round.
type ProducerConsumer struct {
	Blocks int
	Rounds int
	data   Array
}

// Name implements Program.
func (w *ProducerConsumer) Name() string { return "prodcons" }

// WarmupBarriers implements Program.
func (w *ProducerConsumer) WarmupBarriers() int { return 0 }

// Setup implements Program.
func (w *ProducerConsumer) Setup(m *machine.Machine) {
	w.data = NewArrayInterleaved(m.Layout(), "pc.data", w.Blocks*4)
}

// Kernel implements Program.
func (w *ProducerConsumer) Kernel(p *Proc) {
	for t := 0; t < w.Rounds; t++ {
		if p.ID() == 0 {
			for b := 0; b < w.Blocks; b++ {
				p.WriteWord(w.data.At(b*4), uint64(t+1))
			}
		}
		p.Barrier()
		if p.ID() != 0 {
			for b := 0; b < w.Blocks; b++ {
				v := p.Read(w.data.At(b * 4))
				p.Assert(v.Word == uint64(t+1), "prodcons: block %d word %d, want %d", b, v.Word, t+1)
			}
		}
		p.Barrier()
	}
}

// Migratory: every processor in turn reads-modifies-writes the same set of
// blocks, the classic migratory pattern DSI marks via exclusive grants.
type Migratory struct {
	Blocks int
	Rounds int
	data   Array
}

// Name implements Program.
func (w *Migratory) Name() string { return "migratory" }

// WarmupBarriers implements Program.
func (w *Migratory) WarmupBarriers() int { return 0 }

// Setup implements Program.
func (w *Migratory) Setup(m *machine.Machine) {
	w.data = NewArrayInterleaved(m.Layout(), "mig.data", w.Blocks*4)
}

// Kernel implements Program.
func (w *Migratory) Kernel(p *Proc) {
	for t := 0; t < w.Rounds; t++ {
		for turn := 0; turn < p.N(); turn++ {
			if turn == p.ID() {
				for b := 0; b < w.Blocks; b++ {
					v := p.Read(w.data.At(b * 4))
					expect := uint64(t*p.N() + turn)
					p.Assert(v.Word == expect, "migratory: block %d word %d, want %d", b, v.Word, expect)
					p.WriteWord(w.data.At(b*4), v.Word+1)
				}
			}
			p.Barrier()
		}
	}
}

// ReadShared: written once, then read repeatedly by everyone — coherence
// traffic only on first touch; DSI should leave it alone.
type ReadShared struct {
	Blocks int
	Rounds int
	data   Array
}

// Name implements Program.
func (w *ReadShared) Name() string { return "readshared" }

// WarmupBarriers implements Program: the write round and the first read
// round (whose first-touch misses recall the writer's exclusive copies) are
// both initialization.
func (w *ReadShared) WarmupBarriers() int { return 2 }

// Setup implements Program.
func (w *ReadShared) Setup(m *machine.Machine) {
	w.data = NewArrayInterleaved(m.Layout(), "rs.data", w.Blocks*4)
}

// Kernel implements Program.
func (w *ReadShared) Kernel(p *Proc) {
	if p.ID() == 0 {
		for b := 0; b < w.Blocks; b++ {
			p.WriteWord(w.data.At(b*4), 7)
		}
	}
	p.Barrier()
	for t := 0; t < w.Rounds; t++ {
		for b := 0; b < w.Blocks; b++ {
			v := p.Read(w.data.At(b * 4))
			p.Assert(v.Word == 7, "readshared: block %d word %d", b, v.Word)
		}
		p.Barrier()
	}
}

// LockContention: all processors hammer a small set of locks guarding
// shared counters.
type LockContention struct {
	Locks  int
	Rounds int
	lk     Locks
	ctr    Array
}

// Name implements Program.
func (w *LockContention) Name() string { return "locks" }

// WarmupBarriers implements Program.
func (w *LockContention) WarmupBarriers() int { return 0 }

// Setup implements Program.
func (w *LockContention) Setup(m *machine.Machine) {
	w.lk = NewLocks(m.Layout(), "lc.locks", w.Locks)
	w.ctr = NewArrayInterleaved(m.Layout(), "lc.ctr", w.Locks*4)
}

// Kernel implements Program.
func (w *LockContention) Kernel(p *Proc) {
	for t := 0; t < w.Rounds; t++ {
		i := (p.ID() + t) % w.Locks
		p.Lock(w.lk.Addr(i))
		v := p.Read(w.ctr.At(i * 4))
		p.WriteWord(w.ctr.At(i*4), v.Word+1)
		p.Unlock(w.lk.Addr(i))
		p.Compute(int64(20 + 5*p.ID()))
	}
	p.Barrier()
	if p.ID() == 0 {
		var sum uint64
		for i := 0; i < w.Locks; i++ {
			sum += p.Read(w.ctr.At(i * 4)).Word
		}
		p.Assert(sum == uint64(p.N()*w.Rounds), "locks: sum %d, want %d", sum, p.N()*w.Rounds)
	}
}

// FalseSharing: processors write disjoint words that share cache blocks,
// producing invalidation ping-pong the protocol must survive (performance
// pathology, correctness unaffected).
type FalseSharing struct {
	Rounds int
	data   Array
}

// Name implements Program.
func (w *FalseSharing) Name() string { return "falseshare" }

// WarmupBarriers implements Program.
func (w *FalseSharing) WarmupBarriers() int { return 0 }

// Setup implements Program.
func (w *FalseSharing) Setup(m *machine.Machine) {
	// One word per processor: four processors share each 32-byte block.
	w.data = NewArrayInterleaved(m.Layout(), "fs.data", m.Config().Processors)
}

// Kernel implements Program.
func (w *FalseSharing) Kernel(p *Proc) {
	for t := 0; t < w.Rounds; t++ {
		p.WriteWord(w.data.At(p.ID()), uint64(t+1))
		p.Compute(10)
	}
	p.Barrier()
	v := p.Read(w.data.At(p.ID()))
	p.Assert(v.Word == uint64(w.Rounds), "falseshare: own word %d, want %d", v.Word, w.Rounds)
}
