package workload

import (
	"dsisim/internal/machine"
	"dsisim/internal/rng"
)

// OpenLoopParams scales the openloop generator: seeded open-loop request
// arrival against a shared working set, the many-clients-one-cache shape of
// a serving stack. Each processor replays a precomputed arrival schedule —
// requests separated by seeded gaps, each performing a few zipf-distributed
// reads and occasionally writing a block it owns — so load is injected at a
// rate independent of how fast the memory system keeps up (open loop), and
// slow protocols accumulate queueing rather than throttling the offered load.
type OpenLoopParams struct {
	WorkingSet      int     // shared blocks
	Epochs          int     // barrier-separated arrival epochs
	ArrivalsPerProc int     // requests per processor per epoch
	ReadsPerReq     int     // zipf-drawn reads per request
	WriteFrac       float64 // fraction of requests that also write an owned block
	MeanGap         int64   // mean inter-arrival compute gap (cycles)
	Skew            float64 // zipf exponent for read popularity
	Seed            uint64
}

// OpenLoopDefaults is the paper-scale preset.
func OpenLoopDefaults() OpenLoopParams {
	return OpenLoopParams{WorkingSet: 192, Epochs: 4, ArrivalsPerProc: 24, ReadsPerReq: 3,
		WriteFrac: 0.2, MeanGap: 30, Skew: 0.9, Seed: 0x0901}
}

// OpenLoopScaled returns the preset for a registry scale.
func OpenLoopScaled(s Scale) OpenLoopParams {
	p := OpenLoopDefaults()
	if s == ScaleTest {
		p.WorkingSet, p.Epochs, p.ArrivalsPerProc, p.ReadsPerReq, p.MeanGap = 32, 2, 6, 2, 8
	}
	return p
}

// openLoopReq is one precomputed request in a processor's arrival schedule.
type openLoopReq struct {
	gap    int64   // compute cycles before this request arrives
	reads  []int32 // blocks to read
	write  int32   // owned block to write, -1 for read-only requests
	newGen uint64  // generation the write publishes
}

// OpenLoop is the open-loop arrival generator. Blocks carry monotone
// generation counters written only by their span owner, so mid-epoch reads
// can assert an upper bound that holds under every memory model (a stale
// copy is always an older generation), while the post-barrier final check
// asserts the exact generation of every block.
type OpenLoop struct {
	P OpenLoopParams

	data     Array
	sched    [][][]openLoopReq // proc -> epoch -> requests
	epochMax [][]uint64        // epoch -> block -> max generation by epoch end
	finalGen []uint64          // block -> generation after the last epoch
}

// NewOpenLoop builds the workload.
func NewOpenLoop(p OpenLoopParams) *OpenLoop { return &OpenLoop{P: p} }

// Name implements Program.
func (w *OpenLoop) Name() string { return "openloop" }

// WarmupBarriers implements Program: the zero-fill of the working set is
// initialization.
func (w *OpenLoop) WarmupBarriers() int { return 1 }

// Setup implements Program: precompute every processor's arrival schedule
// and the per-epoch generation bounds from the seed.
func (w *OpenLoop) Setup(m *machine.Machine) {
	n := m.Config().Processors
	w.data = NewArrayInterleaved(m.Layout(), "ol.data", w.P.WorkingSet*4)
	r := rng.New(w.P.Seed)
	zt := newZipfTable(w.P.WorkingSet, w.P.Skew)

	gen := make([]uint64, w.P.WorkingSet)
	w.sched = make([][][]openLoopReq, n)
	for q := 0; q < n; q++ {
		w.sched[q] = make([][]openLoopReq, w.P.Epochs)
	}
	w.epochMax = make([][]uint64, w.P.Epochs)
	for e := 0; e < w.P.Epochs; e++ {
		for q := 0; q < n; q++ {
			lo, hi := span(w.P.WorkingSet, q, n)
			reqs := make([]openLoopReq, w.P.ArrivalsPerProc)
			for i := range reqs {
				req := &reqs[i]
				req.gap = 1
				if w.P.MeanGap > 0 {
					req.gap += int64(r.Intn(int(2 * w.P.MeanGap)))
				}
				req.reads = make([]int32, w.P.ReadsPerReq)
				for k := range req.reads {
					req.reads[k] = int32(zt.draw(r))
				}
				req.write = -1
				if hi > lo && r.Bool(w.P.WriteFrac) {
					b := lo + r.Intn(hi-lo)
					gen[b]++
					req.write = int32(b)
					req.newGen = gen[b]
				}
			}
			w.sched[q][e] = reqs
		}
		w.epochMax[e] = append([]uint64(nil), gen...)
	}
	w.finalGen = w.epochMax[w.P.Epochs-1]
}

// Kernel implements Program.
//
//dsi:hotpath
func (w *OpenLoop) Kernel(p *Proc) {
	lo, hi := span(w.P.WorkingSet, p.ID(), p.N())
	for b := lo; b < hi; b++ {
		p.WriteWord(w.data.At(b*4), 0)
	}
	p.Barrier() // end of initialization

	for e := 0; e < w.P.Epochs; e++ {
		max := w.epochMax[e]
		for i := range w.sched[p.ID()][e] {
			req := &w.sched[p.ID()][e][i]
			p.Compute(req.gap)
			for _, b := range req.reads {
				v := p.Read(w.data.At(int(b) * 4))
				p.Assert(v.Word <= max[b], "openloop: epoch %d block %d gen %d, max %d", e, b, v.Word, max[b])
			}
			if req.write >= 0 {
				p.WriteWord(w.data.At(int(req.write)*4), req.newGen)
			}
		}
		p.Barrier() // epoch boundary
	}
	if p.ID() == 0 {
		for b := 0; b < w.P.WorkingSet; b++ {
			v := p.Read(w.data.At(b * 4))
			p.Assert(v.Word == w.finalGen[b], "openloop: final block %d gen %d, want %d", b, v.Word, w.finalGen[b])
		}
	}
}
