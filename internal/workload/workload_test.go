package workload

import (
	"sort"
	"testing"

	"dsisim/internal/core"
	"dsisim/internal/machine"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
	"dsisim/internal/proto"
)

// testConfigs covers the protocol space every workload must run correctly
// under. Kernel assertions (generation words, lock-protected counters)
// turn each run into an end-to-end coherence check.
func testConfigs() map[string]machine.Config {
	return map[string]machine.Config{
		"sc":        {Consistency: proto.SC},
		"sc-states": {Consistency: proto.SC, Policy: core.Policy{Identifier: core.States{}, UpgradeExemption: true}},
		"sc-versions-fifo": {Consistency: proto.SC, Policy: core.Policy{
			Identifier:       core.Versions{},
			NewMechanism:     func() core.Mechanism { return core.NewFIFO(16) },
			UpgradeExemption: true,
		}},
		"wc":         {Consistency: proto.WC},
		"wc-tearoff": {Consistency: proto.WC, Policy: core.Policy{Identifier: core.Versions{}, TearOff: true}},
		"sc-tearoff": {Consistency: proto.SC, Policy: core.Policy{
			Identifier: core.Versions{}, SCTearOff: true, UpgradeExemption: true}},
		"sc-migratory": {Consistency: proto.SC, Policy: core.Policy{Migratory: true}},
		"sc-migratory-dsi": {Consistency: proto.SC, Policy: core.Policy{
			Migratory: true, Identifier: core.Versions{}, UpgradeExemption: true}},
		"sc-history": {Consistency: proto.SC, Policy: core.Policy{
			NewHistory: func() *core.InvalHistory { return core.NewInvalHistory(64, 2) }}},
	}
}

func runOne(t *testing.T, name string, cfg machine.Config, procs, cacheBytes int) machine.Result {
	t.Helper()
	w, err := New(name, ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Processors = procs
	cfg.CacheBytes = cacheBytes
	cfg.CacheAssoc = 4
	r := machine.New(cfg).Run(w)
	if r.Failed() {
		t.Fatalf("%s under this config failed: %s", name, r.Errors[0])
	}
	return r
}

func TestAllWorkloadsAllConfigs(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for cname, cfg := range testConfigs() {
				cfg := cfg
				t.Run(cname, func(t *testing.T) {
					runOne(t, name, cfg, 8, 64*mem.BlockSize*4)
				})
			}
		})
	}
}

// Tiny caches force eviction storms through every workload.
func TestAllWorkloadsTinyCache(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			runOne(t, name, machine.Config{
				Consistency: proto.WC,
				Policy:      core.Policy{Identifier: core.Versions{}, TearOff: true},
			}, 4, 8*mem.BlockSize)
		})
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := New("nosuch", ScaleTest); err == nil {
		t.Fatal("unknown workload did not error")
	}
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	if len(names) != 14 {
		t.Fatalf("registry has %d workloads: %v", len(names), names)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, n := range PaperNames() {
		if _, err := New(n, ScaleTest); err != nil {
			t.Fatalf("paper workload %q missing: %v", n, err)
		}
	}
	for _, n := range TrafficNames() {
		if _, err := New(n, ScaleTest); err != nil {
			t.Fatalf("traffic workload %q missing: %v", n, err)
		}
	}
}

func TestScaleString(t *testing.T) {
	cases := map[Scale]string{ScalePaper: "paper", ScaleTest: "test", Scale(7): "Scale(7)"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("Scale(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

// Workloads must be deterministic: identical runs, identical results.
func TestWorkloadDeterminism(t *testing.T) {
	for _, name := range []string{"em3d", "barnes", "sparse", "zipf", "prodring", "lockconvoy", "openloop"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a := runOne(t, name, machine.Config{Consistency: proto.SC,
				Policy: core.Policy{Identifier: core.Versions{}, UpgradeExemption: true}}, 4, 64*mem.BlockSize*4)
			b := runOne(t, name, machine.Config{Consistency: proto.SC,
				Policy: core.Policy{Identifier: core.Versions{}, UpgradeExemption: true}}, 4, 64*mem.BlockSize*4)
			if a.ExecTime != b.ExecTime || a.Messages != b.Messages {
				t.Fatalf("nondeterministic: %d/%d msgs %d/%d",
					a.ExecTime, b.ExecTime, a.Messages.Total(), b.Messages.Total())
			}
		})
	}
}

// The sharing structure must match each benchmark's description.
func TestSparseIsInvalidationHeavyUnderBase(t *testing.T) {
	r := runOne(t, "sparse", machine.Config{Consistency: proto.SC}, 8, 64*mem.BlockSize*4)
	if r.Messages.Invalidation() == 0 {
		t.Fatal("sparse produced no invalidation traffic under the base protocol")
	}
}

func TestReadSharedIsInvalidationFree(t *testing.T) {
	r := runOne(t, "readshared", machine.Config{Consistency: proto.SC}, 8, 64*mem.BlockSize*4)
	if inv := r.Messages.Invalidation(); inv != 0 {
		t.Fatalf("read-only sharing produced %d invalidation messages", inv)
	}
}

func TestDSIReducesSparseInvalidations(t *testing.T) {
	base := runOne(t, "sparse", machine.Config{Consistency: proto.SC}, 8, 64*mem.BlockSize*4)
	dsi := runOne(t, "sparse", machine.Config{
		Consistency: proto.SC,
		Policy:      core.Policy{Identifier: core.Versions{}, UpgradeExemption: true},
	}, 8, 64*mem.BlockSize*4)
	if dsi.Messages.Invalidation() >= base.Messages.Invalidation() {
		t.Fatalf("DSI did not reduce sparse invalidations: %d >= %d",
			dsi.Messages.Invalidation(), base.Messages.Invalidation())
	}
}

func TestTearOffReducesSparseMessages(t *testing.T) {
	base := runOne(t, "sparse", machine.Config{Consistency: proto.WC}, 8, 64*mem.BlockSize*4)
	dsi := runOne(t, "sparse", machine.Config{
		Consistency: proto.WC,
		Policy:      core.Policy{Identifier: core.Versions{}, TearOff: true},
	}, 8, 64*mem.BlockSize*4)
	if dsi.Messages.Invalidation() >= base.Messages.Invalidation() {
		t.Fatalf("tear-off did not cut invalidation messages: %d >= %d",
			dsi.Messages.Invalidation(), base.Messages.Invalidation())
	}
	if dsi.Messages.Total() >= base.Messages.Total() {
		t.Fatalf("tear-off did not cut total messages: %d >= %d",
			dsi.Messages.Total(), base.Messages.Total())
	}
}

// EM3D's writes happen at the home node: the base protocol's read
// invalidation time should be near zero (recalls are local).
func TestEM3DWritesAtHome(t *testing.T) {
	r := runOne(t, "em3d", machine.Config{Consistency: proto.SC}, 8, 64*mem.BlockSize*4)
	// All recalls must be local (owner == home): no Recall network traffic.
	if rc := r.Messages.ByKind[netsim.Recall]; rc != 0 {
		t.Fatalf("em3d generated %d remote recalls; writes should be home-local", rc)
	}
}
