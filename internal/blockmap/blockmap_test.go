package blockmap

import "testing"

func TestZeroValueGetEmpty(t *testing.T) {
	var m Map[int]
	if p := m.Get(0); p != nil {
		t.Fatalf("Get(0) on empty map = %v, want nil", p)
	}
	if p := m.Get(1 << 40); p != nil {
		t.Fatalf("Get(huge) on empty map = %v, want nil", p)
	}
	if m.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", m.Len())
	}
}

func TestEnsureGetRoundTrip(t *testing.T) {
	var m Map[int]
	for i := uint64(0); i < 3000; i += 3 {
		*m.Ensure(i) = int(i) * 7
	}
	for i := uint64(0); i < 3000; i++ {
		p := m.Get(i)
		if i%3 == 0 {
			if p == nil || *p != int(i)*7 {
				t.Fatalf("Get(%d) = %v, want %d", i, p, i*7)
			}
		} else if p != nil {
			t.Fatalf("Get(%d) = %v, want nil", i, *p)
		}
	}
	if m.Len() != 1000 {
		t.Fatalf("Len() = %d, want 1000", m.Len())
	}
}

func TestEnsureIdempotentAndStable(t *testing.T) {
	var m Map[int]
	p1 := m.Ensure(42)
	*p1 = 99
	// Force page and slot growth, then confirm the old pointer still works.
	for i := uint64(0); i < 10*pageSize; i++ {
		m.Ensure(i + 100)
	}
	p2 := m.Ensure(42)
	if p1 != p2 {
		t.Fatalf("Ensure(42) moved: %p vs %p", p1, p2)
	}
	if *p1 != 99 {
		t.Fatalf("record clobbered by growth: %d", *p1)
	}
}

func TestOverflowBeyondDenseCap(t *testing.T) {
	m := New[uint64](128) // tiny dense region to exercise the overflow table
	const n = 500
	for i := uint64(0); i < n; i++ {
		idx := i * 1000003 // strided, mostly beyond the cap
		*m.Ensure(idx) = idx
	}
	for i := uint64(0); i < n; i++ {
		idx := i * 1000003
		p := m.Get(idx)
		if p == nil || *p != idx {
			t.Fatalf("Get(%d) = %v, want %d", idx, p, idx)
		}
	}
	if m.Get(7777777777) != nil {
		t.Fatal("Get of absent overflow key should be nil")
	}
	if m.Len() != n {
		t.Fatalf("Len() = %d, want %d", m.Len(), n)
	}
}

func TestForEachInsertionOrder(t *testing.T) {
	m := New[int](64)
	order := []uint64{9, 3, 1 << 30, 5, 70, 2} // mix of dense and overflow keys
	for i, idx := range order {
		*m.Ensure(idx) = i
	}
	var got []uint64
	m.ForEach(func(idx uint64, r *int) {
		if *r != len(got) {
			t.Fatalf("record %d out of order: %d", idx, *r)
		}
		got = append(got, idx)
	})
	if len(got) != len(order) {
		t.Fatalf("visited %d records, want %d", len(got), len(order))
	}
	for i := range order {
		if got[i] != order[i] {
			t.Fatalf("ForEach order %v, want %v", got, order)
		}
	}
}

func TestResetKeepsCapacityAndZeroesRecords(t *testing.T) {
	var m Map[int]
	for i := uint64(0); i < 1000; i++ {
		*m.Ensure(i) = 1
	}
	*m.Ensure(1 << 30) = 1 // one overflow record
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len() after Reset = %d, want 0", m.Len())
	}
	if m.Get(5) != nil || m.Get(1<<30) != nil {
		t.Fatal("records visible after Reset")
	}
	allocs := testing.AllocsPerRun(10, func() {
		m.Reset()
		for i := uint64(0); i < 1000; i++ {
			if *m.Ensure(i) != 0 {
				t.Fatal("reused record not zeroed")
			}
			*m.Ensure(i) = 2
		}
		if *m.Ensure(1 << 30) != 0 {
			t.Fatal("reused overflow record not zeroed")
		}
	})
	if allocs > 0 {
		t.Fatalf("warm Reset+refill allocated %.1f times, want 0", allocs)
	}
}

func BenchmarkDenseGet(b *testing.B) {
	var m Map[uint64]
	for i := uint64(0); i < 4096; i++ {
		*m.Ensure(i) = i
	}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += *m.Get(uint64(i) & 4095)
	}
	_ = sink
}

func BenchmarkMapGetBaseline(b *testing.B) {
	m := make(map[uint64]uint64, 4096)
	for i := uint64(0); i < 4096; i++ {
		m[i] = i
	}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m[uint64(i)&4095]
	}
	_ = sink
}
