package blockmap

// SoA is a block-index-keyed table whose records are split across two page
// planes — the structure-of-arrays layout the event heap uses for its
// key/payload split, applied to per-block controller state. H holds the hot
// words every handler touches (for the coherence controllers: the in-flight
// transaction pointer); C holds the cold payload only rare paths read
// (queue chains, write-buffer entries). Packing the hot words contiguously
// fits several per-block records in one cache line where the interleaved
// Map layout fit two, so the per-message "is this block busy?" probe walks
// a denser working set.
//
// The same stability rules as Map apply: both planes are paged and never
// reallocated, so *H and *C stay valid for the table's lifetime, and Reset
// keeps every allocation. The zero value is an empty table with
// DefaultDenseCap.
type SoA[H, C any] struct {
	idx index
	// hot and cold store the two record planes: id i lives at
	// plane[i>>pageBits][i&pageMask] in each.
	hot  [][]H
	cold [][]C
}

// NewSoA returns a SoA table whose dense region covers block indexes below
// denseCap (see New).
func NewSoA[H, C any](denseCap uint64) SoA[H, C] {
	return SoA[H, C]{idx: index{cap: denseCap}}
}

// Len returns the number of block records ever created.
func (m *SoA[H, C]) Len() int { return m.idx.n }

// Hot returns the hot plane of record id (which must have come from Ensure
// or ID).
//
//dsi:hotpath
func (m *SoA[H, C]) Hot(id int32) *H {
	return &m.hot[id>>pageBits][id&pageMask]
}

// Cold returns the cold plane of record id.
//
//dsi:hotpath
func (m *SoA[H, C]) Cold(id int32) *C {
	return &m.cold[id>>pageBits][id&pageMask]
}

// Get returns the hot plane of block index idx's record, or nil if none was
// ever created.
//
//dsi:hotpath
func (m *SoA[H, C]) Get(idx uint64) *H {
	if id := m.idx.get(idx); id >= 0 {
		return m.Hot(id)
	}
	return nil
}

// ID returns the record id for block index idx, or -1 if none was ever
// created. Use it to reach the cold plane of a record that may not exist.
//
//dsi:hotpath
func (m *SoA[H, C]) ID(idx uint64) int32 {
	return m.idx.get(idx)
}

// Ensure returns the id and hot plane for block index idx, creating a
// zeroed record (both planes) if none exists. The id reaches the cold plane
// via Cold without a second key lookup.
//
//dsi:hotpath
func (m *SoA[H, C]) Ensure(idx uint64) (int32, *H) {
	id, fresh := m.idx.ensure(idx)
	if !fresh {
		return id, m.Hot(id)
	}
	if int(id)>>pageBits == len(m.hot) {
		m.addPage()
	}
	h := m.Hot(id)
	var zh H
	*h = zh
	c := m.Cold(id)
	var zc C
	*c = zc
	return id, h
}

// addPage appends one page to each plane (cold path: a warm machine never
// grows).
func (m *SoA[H, C]) addPage() {
	m.hot = append(m.hot, make([]H, pageSize))
	m.cold = append(m.cold, make([]C, pageSize))
}

// ForEach calls fn for every record in insertion order with both planes
// (deterministic: first-touch order).
func (m *SoA[H, C]) ForEach(fn func(idx uint64, hot *H, cold *C)) {
	for i := 0; i < m.idx.n; i++ {
		fn(m.idx.keys[i], m.Hot(int32(i)), m.Cold(int32(i)))
	}
}

// Reset empties the table while keeping every allocation, exactly as
// Map.Reset does. Records are re-zeroed on their next Ensure, not here.
func (m *SoA[H, C]) Reset() {
	m.idx.reset()
}
