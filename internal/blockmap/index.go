package blockmap

// index is the shared key machinery behind Map and SoA: it maps a raw block
// index to a small dense record id. Dense block indexes (below cap) resolve
// through a flat slot array — one bounds check and one slice load; sparse
// indexes fall back to an open-addressing table. The index knows nothing
// about record storage; Map keeps one page plane, SoA keeps two.
type index struct {
	// slots maps a dense block index to record id+1; 0 means absent. Grown
	// lazily in powers of two up to the dense cap.
	slots []int32
	// cap is the dense-region bound, fixed at first insert (DefaultDenseCap
	// for the zero value).
	cap uint64

	// Overflow open-addressing table for indexes >= cap. oKeys stores
	// index+1 so 0 can mean an empty slot; oIDs holds the record id.
	oKeys []uint64
	oIDs  []int32
	oLen  int

	// keys records each id's block index in insertion order (ForEach).
	keys []uint64
	n    int
}

// get returns the record id for idx, or -1 if none was ever created.
//
//dsi:hotpath
func (x *index) get(idx uint64) int32 {
	if idx < uint64(len(x.slots)) {
		return x.slots[idx] - 1
	}
	if x.oLen != 0 && idx >= x.cap {
		return x.getOverflow(idx)
	}
	return -1
}

// ensure returns the record id for idx, minting a new id if none exists.
// fresh reports whether the id was just minted (the caller must then zero
// the record storage for it).
//
//dsi:hotpath
func (x *index) ensure(idx uint64) (id int32, fresh bool) {
	if x.cap == 0 {
		x.cap = DefaultDenseCap
	}
	if idx < x.cap {
		if idx < uint64(len(x.slots)) {
			if s := x.slots[idx]; s != 0 {
				return s - 1, false
			}
		} else {
			x.growSlots(idx)
		}
		id := x.push(idx)
		x.slots[idx] = id + 1
		return id, true
	}
	return x.ensureOverflow(idx)
}

// reset empties the index while keeping the slot array and overflow table
// allocations.
func (x *index) reset() {
	clear(x.slots)
	clear(x.oKeys)
	x.oLen = 0
	x.keys = x.keys[:0]
	x.n = 0
}

// push mints a fresh id for idx.
func (x *index) push(idx uint64) int32 {
	id := int32(x.n)
	x.n++
	x.keys = append(x.keys, idx)
	return id
}

// growSlots extends the dense slot array to cover idx (next power of two,
// clamped to the dense cap). Growth happens on first touch of a new high
// block — setup and cold paths only; a warm machine never grows.
func (x *index) growSlots(idx uint64) {
	want := uint64(1024)
	for want <= idx {
		want <<= 1
	}
	if want > x.cap {
		want = x.cap
	}
	ns := make([]int32, want)
	copy(ns, x.slots)
	x.slots = ns
}

// getOverflow probes the open-addressing table for idx.
//
//dsi:hotpath
func (x *index) getOverflow(idx uint64) int32 {
	mask := uint64(len(x.oKeys) - 1)
	for h := hash(idx) & mask; ; h = (h + 1) & mask {
		k := x.oKeys[h]
		if k == 0 {
			return -1
		}
		if k == idx+1 {
			return x.oIDs[h]
		}
	}
}

// ensureOverflow is ensure's slow path for indexes beyond the dense cap.
func (x *index) ensureOverflow(idx uint64) (int32, bool) {
	if x.oLen*4 >= len(x.oKeys)*3 {
		x.growOverflow()
	}
	mask := uint64(len(x.oKeys) - 1)
	for h := hash(idx) & mask; ; h = (h + 1) & mask {
		k := x.oKeys[h]
		if k == idx+1 {
			return x.oIDs[h], false
		}
		if k == 0 {
			id := x.push(idx)
			x.oKeys[h] = idx + 1
			x.oIDs[h] = id
			x.oLen++
			return id, true
		}
	}
}

// growOverflow doubles the overflow table and rehashes the live keys.
func (x *index) growOverflow() {
	nlen := len(x.oKeys) * 2
	if nlen == 0 {
		nlen = 64
	}
	oldK, oldID := x.oKeys, x.oIDs
	x.oKeys = make([]uint64, nlen)
	x.oIDs = make([]int32, nlen)
	mask := uint64(nlen - 1)
	for i, k := range oldK {
		if k == 0 {
			continue
		}
		for h := hash(k-1) & mask; ; h = (h + 1) & mask {
			if x.oKeys[h] == 0 {
				x.oKeys[h] = k
				x.oIDs[h] = oldID[i]
				break
			}
		}
	}
}

// hash is the splitmix64 finalizer — strong enough to spread composite and
// strided block indexes across the overflow table.
//
//dsi:hotpath
func hash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
