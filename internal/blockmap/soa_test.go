package blockmap

import "testing"

type hotRec struct{ v int }
type coldRec struct{ q [3]int32 }

func TestSoAZeroValueGetEmpty(t *testing.T) {
	var m SoA[hotRec, coldRec]
	if p := m.Get(0); p != nil {
		t.Fatalf("Get(0) on empty table = %v, want nil", p)
	}
	if id := m.ID(1 << 40); id != -1 {
		t.Fatalf("ID(huge) on empty table = %d, want -1", id)
	}
	if m.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", m.Len())
	}
}

func TestSoAEnsureRoundTrip(t *testing.T) {
	var m SoA[hotRec, coldRec]
	for i := uint64(0); i < 3000; i += 3 {
		id, h := m.Ensure(i)
		h.v = int(i) * 7
		m.Cold(id).q[0] = int32(i) + 1
	}
	for i := uint64(0); i < 3000; i++ {
		h := m.Get(i)
		id := m.ID(i)
		if i%3 == 0 {
			if h == nil || h.v != int(i)*7 {
				t.Fatalf("Get(%d) = %v, want v=%d", i, h, i*7)
			}
			if id < 0 || m.Cold(id).q[0] != int32(i)+1 {
				t.Fatalf("Cold(%d) mismatch", i)
			}
		} else {
			if h != nil || id != -1 {
				t.Fatalf("Get(%d) = %v id=%d, want absent", i, h, id)
			}
		}
	}
	if m.Len() != 1000 {
		t.Fatalf("Len() = %d, want 1000", m.Len())
	}
}

func TestSoAStablePointersAcrossGrowth(t *testing.T) {
	var m SoA[hotRec, coldRec]
	id1, h1 := m.Ensure(42)
	c1 := m.Cold(id1)
	h1.v = 99
	c1.q[1] = 7
	for i := uint64(0); i < 10*pageSize; i++ {
		m.Ensure(i + 100)
	}
	id2, h2 := m.Ensure(42)
	if id1 != id2 || h1 != h2 || m.Cold(id2) != c1 {
		t.Fatalf("Ensure(42) moved: id %d→%d hot %p→%p", id1, id2, h1, h2)
	}
	if h1.v != 99 || c1.q[1] != 7 {
		t.Fatalf("record clobbered by growth: %d %d", h1.v, c1.q[1])
	}
}

func TestSoAOverflowBeyondDenseCap(t *testing.T) {
	m := NewSoA[hotRec, coldRec](128)
	const n = 500
	for i := uint64(0); i < n; i++ {
		idx := i * 1000003
		_, h := m.Ensure(idx)
		h.v = int(idx)
	}
	for i := uint64(0); i < n; i++ {
		idx := i * 1000003
		h := m.Get(idx)
		if h == nil || h.v != int(idx) {
			t.Fatalf("Get(%d) = %v, want %d", idx, h, idx)
		}
	}
	if m.Get(7777777777) != nil {
		t.Fatal("Get of absent overflow key should be nil")
	}
	if m.Len() != n {
		t.Fatalf("Len() = %d, want %d", m.Len(), n)
	}
}

func TestSoAForEachInsertionOrder(t *testing.T) {
	m := NewSoA[hotRec, coldRec](64)
	order := []uint64{9, 3, 1 << 30, 5, 70, 2}
	for i, idx := range order {
		id, h := m.Ensure(idx)
		h.v = i
		m.Cold(id).q[2] = int32(i)
	}
	var got []uint64
	m.ForEach(func(idx uint64, h *hotRec, c *coldRec) {
		if h.v != len(got) || c.q[2] != int32(len(got)) {
			t.Fatalf("record %d out of order: hot=%d cold=%d", idx, h.v, c.q[2])
		}
		got = append(got, idx)
	})
	if len(got) != len(order) {
		t.Fatalf("visited %d records, want %d", len(got), len(order))
	}
	for i := range order {
		if got[i] != order[i] {
			t.Fatalf("ForEach order %v, want %v", got, order)
		}
	}
}

func TestSoAResetKeepsCapacityAndZeroesBothPlanes(t *testing.T) {
	var m SoA[hotRec, coldRec]
	for i := uint64(0); i < 1000; i++ {
		id, h := m.Ensure(i)
		h.v = 1
		m.Cold(id).q[0] = 1
	}
	m.Ensure(1 << 30)
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len() after Reset = %d, want 0", m.Len())
	}
	if m.Get(5) != nil || m.ID(1<<30) != -1 {
		t.Fatal("records visible after Reset")
	}
	allocs := testing.AllocsPerRun(10, func() {
		m.Reset()
		for i := uint64(0); i < 1000; i++ {
			id, h := m.Ensure(i)
			if h.v != 0 || m.Cold(id).q[0] != 0 {
				t.Fatal("reused record not zeroed")
			}
			h.v = 2
			m.Cold(id).q[0] = 2
		}
		if _, h := m.Ensure(1 << 30); h.v != 0 {
			t.Fatal("reused overflow record not zeroed")
		}
	})
	if allocs > 0 {
		t.Fatalf("warm Reset+refill allocated %.1f times, want 0", allocs)
	}
}
