// Package blockmap provides the dense, address-indexed block tables that
// back every per-block structure on the simulation hot path: directory
// entries, in-flight directory transactions, cache-side MSHRs and
// write-buffer entries, simulated memory contents, and the observability
// tracker. It replaces the per-Addr Go hash maps those layers used before —
// a hash, a bucket probe, and a pointer chase per simulated access — with a
// flat slot array indexed by block number.
//
// Simulated address spaces are block-aligned and bounded by mem.Layout, so
// a block index (Addr >> BlockShift) is a small dense integer: the common
// case is one bounds check and one slice load. Ad-hoc addresses beyond the
// dense bound (hand-built test rigs, replayed traces) fall back to a small
// open-addressing table, so correctness never depends on the layout.
//
// The package is deliberately free of simulator imports (records are keyed
// by raw uint64 block indexes, not mem.Addr) so that internal/mem itself can
// build on it without an import cycle.
//
// Design constraints, in order:
//
//   - Stable pointers. Records live in fixed-size pages that are never
//     reallocated, so a *T returned by Get or Ensure stays valid for the
//     map's lifetime. Controllers cache these pointers across events.
//   - No deletion. Per-block records persist for the machine's lifetime;
//     "no transaction in flight" is a nil field inside the record, not an
//     absent key. This keeps the hot path free of tombstone handling and
//     makes record reuse across a machine Reset trivial.
//   - Deterministic iteration. ForEach visits records in insertion order,
//     which is itself deterministic (it follows the simulation's own event
//     order), so no caller needs to sort just to stay reproducible.
package blockmap

// DefaultDenseCap bounds the dense slot region of a zero-value Map: block
// indexes below it index the flat slot array (lazily grown as high indexes
// are touched), indexes at or above it go to the overflow table. 1<<22
// blocks is 128 MiB of simulated address space at the paper's 32-byte
// blocks — far above any configured workload — while capping the slot
// array at 16 MiB per map even under adversarial addresses.
const DefaultDenseCap = 1 << 22

const (
	pageBits = 8
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// Map is a block-index-keyed table of T records. The zero value is an empty
// map with DefaultDenseCap; it must not be copied after first use (records
// hold into its pages).
type Map[T any] struct {
	// slots maps a dense block index to record id+1; 0 means absent. Grown
	// lazily in powers of two up to the dense cap.
	slots []int32
	// cap is the dense-region bound, fixed at first insert (DefaultDenseCap
	// for the zero value).
	cap uint64

	// Overflow open-addressing table for indexes >= cap. oKeys stores
	// index+1 so 0 can mean an empty slot; oIDs holds the record id.
	oKeys []uint64
	oIDs  []int32
	oLen  int

	// keys records each id's block index in insertion order (ForEach).
	keys []uint64
	// pages stores the records: id i lives at pages[i>>pageBits][i&pageMask].
	// Pages are never reallocated, so record pointers are stable; Reset
	// keeps them for reuse.
	pages [][]T
	n     int
}

// New returns a Map whose dense region covers block indexes below denseCap.
// Most callers can use the zero value; New exists for tests and for tables
// whose keys are known to be composite (and therefore sparse) from the
// start.
func New[T any](denseCap uint64) Map[T] {
	return Map[T]{cap: denseCap}
}

// Len returns the number of block records ever created (records are never
// deleted).
func (m *Map[T]) Len() int { return m.n }

// at returns the record with id i.
//
//dsi:hotpath
func (m *Map[T]) at(i int32) *T {
	return &m.pages[i>>pageBits][i&pageMask]
}

// Get returns the record for block index idx, or nil if none was ever
// created. One bounds check and one slice load in the dense case.
//
//dsi:hotpath
func (m *Map[T]) Get(idx uint64) *T {
	if idx < uint64(len(m.slots)) {
		if s := m.slots[idx]; s != 0 {
			return m.at(s - 1)
		}
		return nil
	}
	if m.oLen != 0 && idx >= m.cap {
		return m.getOverflow(idx)
	}
	return nil
}

// Ensure returns the record for block index idx, creating a zeroed record if
// none exists.
//
//dsi:hotpath
func (m *Map[T]) Ensure(idx uint64) *T {
	if m.cap == 0 {
		m.cap = DefaultDenseCap
	}
	if idx < m.cap {
		if idx < uint64(len(m.slots)) {
			if s := m.slots[idx]; s != 0 {
				return m.at(s - 1)
			}
		} else {
			m.growSlots(idx)
		}
		id := m.push(idx)
		m.slots[idx] = id + 1
		return m.at(id)
	}
	return m.ensureOverflow(idx)
}

// ForEach calls fn for every record in insertion order, which is
// deterministic: it follows the simulation's own first-touch order.
func (m *Map[T]) ForEach(fn func(idx uint64, r *T)) {
	for i := 0; i < m.n; i++ {
		fn(m.keys[i], m.at(int32(i)))
	}
}

// Reset empties the map while keeping every allocation — the slot array,
// the overflow table, and all record pages — so a reused machine reaches
// steady state with zero map growth. Records are re-zeroed on their next
// Ensure, not here.
func (m *Map[T]) Reset() {
	clear(m.slots)
	clear(m.oKeys)
	m.oLen = 0
	m.keys = m.keys[:0]
	m.n = 0
}

// push appends a fresh zeroed record for idx and returns its id.
func (m *Map[T]) push(idx uint64) int32 {
	id := m.n
	if id>>pageBits == len(m.pages) {
		m.pages = append(m.pages, make([]T, pageSize))
	}
	m.n++
	m.keys = append(m.keys, idx)
	p := m.at(int32(id))
	var zero T
	*p = zero
	return int32(id)
}

// growSlots extends the dense slot array to cover idx (next power of two,
// clamped to the dense cap). Growth happens on first touch of a new high
// block — setup and cold paths only; a warm machine never grows.
func (m *Map[T]) growSlots(idx uint64) {
	want := uint64(1024)
	for want <= idx {
		want <<= 1
	}
	if want > m.cap {
		want = m.cap
	}
	ns := make([]int32, want)
	copy(ns, m.slots)
	m.slots = ns
}

// getOverflow probes the open-addressing table for idx.
//
//dsi:hotpath
func (m *Map[T]) getOverflow(idx uint64) *T {
	mask := uint64(len(m.oKeys) - 1)
	for h := hash(idx) & mask; ; h = (h + 1) & mask {
		k := m.oKeys[h]
		if k == 0 {
			return nil
		}
		if k == idx+1 {
			return m.at(m.oIDs[h])
		}
	}
}

// ensureOverflow is Ensure's slow path for indexes beyond the dense cap.
func (m *Map[T]) ensureOverflow(idx uint64) *T {
	if m.oLen*4 >= len(m.oKeys)*3 {
		m.growOverflow()
	}
	mask := uint64(len(m.oKeys) - 1)
	for h := hash(idx) & mask; ; h = (h + 1) & mask {
		k := m.oKeys[h]
		if k == idx+1 {
			return m.at(m.oIDs[h])
		}
		if k == 0 {
			id := m.push(idx)
			m.oKeys[h] = idx + 1
			m.oIDs[h] = id
			m.oLen++
			return m.at(id)
		}
	}
}

// growOverflow doubles the overflow table and rehashes the live keys.
func (m *Map[T]) growOverflow() {
	nlen := len(m.oKeys) * 2
	if nlen == 0 {
		nlen = 64
	}
	oldK, oldID := m.oKeys, m.oIDs
	m.oKeys = make([]uint64, nlen)
	m.oIDs = make([]int32, nlen)
	mask := uint64(nlen - 1)
	for i, k := range oldK {
		if k == 0 {
			continue
		}
		for h := hash(k-1) & mask; ; h = (h + 1) & mask {
			if m.oKeys[h] == 0 {
				m.oKeys[h] = k
				m.oIDs[h] = oldID[i]
				break
			}
		}
	}
}

// hash is the splitmix64 finalizer — strong enough to spread composite and
// strided block indexes across the overflow table.
//
//dsi:hotpath
func hash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
