// Package blockmap provides the dense, address-indexed block tables that
// back every per-block structure on the simulation hot path: directory
// entries, in-flight directory transactions, cache-side MSHRs and
// write-buffer entries, simulated memory contents, and the observability
// tracker. It replaces the per-Addr Go hash maps those layers used before —
// a hash, a bucket probe, and a pointer chase per simulated access — with a
// flat slot array indexed by block number.
//
// Simulated address spaces are block-aligned and bounded by mem.Layout, so
// a block index (Addr >> BlockShift) is a small dense integer: the common
// case is one bounds check and one slice load. Ad-hoc addresses beyond the
// dense bound (hand-built test rigs, replayed traces) fall back to a small
// open-addressing table, so correctness never depends on the layout.
//
// The package is deliberately free of simulator imports (records are keyed
// by raw uint64 block indexes, not mem.Addr) so that internal/mem itself can
// build on it without an import cycle.
//
// Two record layouts share one key structure (the internal index type):
//
//   - Map[T] stores one record plane — the right shape when every handler
//     touches most of the record.
//   - SoA[H, C] splits each record into a hot word plane and a cold payload
//     plane (see soa.go) — the structure-of-arrays layout the event heap
//     uses, for tables where the common path reads one small field and the
//     rest is rare-path state.
//
// Design constraints, in order:
//
//   - Stable pointers. Records live in fixed-size pages that are never
//     reallocated, so a *T returned by Get or Ensure stays valid for the
//     map's lifetime. Controllers cache these pointers across events.
//   - No deletion. Per-block records persist for the machine's lifetime;
//     "no transaction in flight" is a nil field inside the record, not an
//     absent key. This keeps the hot path free of tombstone handling and
//     makes record reuse across a machine Reset trivial.
//   - Deterministic iteration. ForEach visits records in insertion order,
//     which is itself deterministic (it follows the simulation's own event
//     order), so no caller needs to sort just to stay reproducible.
package blockmap

// DefaultDenseCap bounds the dense slot region of a zero-value Map: block
// indexes below it index the flat slot array (lazily grown as high indexes
// are touched), indexes at or above it go to the overflow table. 1<<22
// blocks is 128 MiB of simulated address space at the paper's 32-byte
// blocks — far above any configured workload — while capping the slot
// array at 16 MiB per map even under adversarial addresses.
const DefaultDenseCap = 1 << 22

const (
	pageBits = 8
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// Map is a block-index-keyed table of T records. The zero value is an empty
// map with DefaultDenseCap; it must not be copied after first use (records
// hold into its pages).
type Map[T any] struct {
	idx index
	// pages stores the records: id i lives at pages[i>>pageBits][i&pageMask].
	// Pages are never reallocated, so record pointers are stable; Reset
	// keeps them for reuse.
	pages [][]T
}

// New returns a Map whose dense region covers block indexes below denseCap.
// Most callers can use the zero value; New exists for tests and for tables
// whose keys are known to be composite (and therefore sparse) from the
// start.
func New[T any](denseCap uint64) Map[T] {
	return Map[T]{idx: index{cap: denseCap}}
}

// Len returns the number of block records ever created (records are never
// deleted).
func (m *Map[T]) Len() int { return m.idx.n }

// at returns the record with id i.
//
//dsi:hotpath
func (m *Map[T]) at(i int32) *T {
	return &m.pages[i>>pageBits][i&pageMask]
}

// Get returns the record for block index idx, or nil if none was ever
// created. One bounds check and one slice load in the dense case.
//
//dsi:hotpath
func (m *Map[T]) Get(idx uint64) *T {
	if id := m.idx.get(idx); id >= 0 {
		return m.at(id)
	}
	return nil
}

// Ensure returns the record for block index idx, creating a zeroed record if
// none exists.
//
//dsi:hotpath
func (m *Map[T]) Ensure(idx uint64) *T {
	id, fresh := m.idx.ensure(idx)
	if !fresh {
		return m.at(id)
	}
	if int(id)>>pageBits == len(m.pages) {
		m.addPage()
	}
	p := m.at(id)
	var zero T
	*p = zero
	return p
}

// addPage appends one record page (cold path: a warm machine never grows).
func (m *Map[T]) addPage() {
	m.pages = append(m.pages, make([]T, pageSize))
}

// ForEach calls fn for every record in insertion order, which is
// deterministic: it follows the simulation's own first-touch order.
func (m *Map[T]) ForEach(fn func(idx uint64, r *T)) {
	for i := 0; i < m.idx.n; i++ {
		fn(m.idx.keys[i], m.at(int32(i)))
	}
}

// Reset empties the map while keeping every allocation — the slot array,
// the overflow table, and all record pages — so a reused machine reaches
// steady state with zero map growth. Records are re-zeroed on their next
// Ensure, not here.
func (m *Map[T]) Reset() {
	m.idx.reset()
}
