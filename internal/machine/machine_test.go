package machine

import (
	"testing"

	"dsisim/internal/core"
	"dsisim/internal/cpu"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/proto"
	"dsisim/internal/stats"
)

// prog is an inline test program.
type prog struct {
	name   string
	setup  func(m *Machine)
	kernel func(p *cpu.Proc)
	warmup int
}

func (p *prog) Name() string { return p.name }
func (p *prog) Setup(m *Machine) {
	if p.setup != nil {
		p.setup(m)
	}
}
func (p *prog) Kernel(pr *cpu.Proc) { p.kernel(pr) }
func (p *prog) WarmupBarriers() int { return p.warmup }

// configs lists machine configurations every correctness test runs under.
func configs() map[string]Config {
	return map[string]Config{
		"sc":          {Consistency: proto.SC},
		"sc-states":   {Consistency: proto.SC, Policy: core.Policy{Identifier: core.States{}, UpgradeExemption: true}},
		"sc-versions": {Consistency: proto.SC, Policy: core.Policy{Identifier: core.Versions{}, UpgradeExemption: true}},
		"sc-fifo": {Consistency: proto.SC, Policy: core.Policy{
			Identifier:   core.Versions{},
			NewMechanism: func() core.Mechanism { return core.NewFIFO(8) },
		}},
		"wc":         {Consistency: proto.WC},
		"wc-dsi":     {Consistency: proto.WC, Policy: core.Policy{Identifier: core.Versions{}}},
		"wc-tearoff": {Consistency: proto.WC, Policy: core.Policy{Identifier: core.Versions{}, TearOff: true}},
	}
}

func small(cfg Config, procs int) Config {
	cfg.Processors = procs
	cfg.CacheBytes = 64 * mem.BlockSize // small but multi-set
	cfg.CacheAssoc = 4
	return cfg
}

func mustClean(t *testing.T, r Result) {
	t.Helper()
	if r.Failed() {
		t.Fatalf("run failed:\n%s", r.Errors[0])
	}
}

func TestComputeOnlyTiming(t *testing.T) {
	m := New(small(Config{Consistency: proto.SC}, 1))
	r := m.Run(&prog{name: "compute", kernel: func(p *cpu.Proc) {
		p.Compute(1000)
	}})
	mustClean(t, r)
	if r.ExecTime != 1000 {
		t.Fatalf("exec time = %d, want 1000", r.ExecTime)
	}
	if r.Breakdown.Cycles[stats.Compute] != 1000 {
		t.Fatalf("compute cycles = %d", r.Breakdown.Cycles[stats.Compute])
	}
}

// Producer-consumer through a barrier: the consumer must observe the
// producer's token under every configuration, including tear-off.
func TestProducerConsumerAllConfigs(t *testing.T) {
	for name, cfg := range configs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			var data mem.Region
			p := &prog{
				name: "prodcons",
				setup: func(m *Machine) {
					data = m.Layout().AllocInterleaved("data", 16*mem.BlockSize)
				},
				kernel: func(p *cpu.Proc) {
					const rounds = 5
					for round := 0; round < rounds; round++ {
						if p.ID() == 0 {
							for i := 0; i < 16; i++ {
								p.Write(data.Addr(uint64(i) * mem.BlockSize))
							}
						}
						p.Barrier()
						if p.ID() != 0 {
							for i := 0; i < 16; i++ {
								v := p.Read(data.Addr(uint64(i) * mem.BlockSize))
								p.Assert(v.Writer == 0, "round %d blk %d: writer %d", round, i, v.Writer)
								p.Assert(v.Seq == uint64(round*16+i+1), "round %d blk %d: seq %d", round, i, v.Seq)
							}
						}
						p.Barrier()
					}
				},
			}
			r := New(small(cfg, 4)).Run(p)
			mustClean(t, r)
			if r.Barriers != 10 {
				t.Fatalf("barrier episodes = %d, want 10", r.Barriers)
			}
		})
	}
}

// Lock-protected counter: mutual exclusion must hold under every
// configuration (word increments are read-modify-write on a shared block).
func TestLockedCounterAllConfigs(t *testing.T) {
	for name, cfg := range configs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			var lock, counter mem.Region
			const iters = 10
			p := &prog{
				name: "counter",
				setup: func(m *Machine) {
					lock = m.Layout().AllocInterleaved("lock", mem.BlockSize)
					counter = m.Layout().AllocInterleaved("counter", mem.BlockSize)
				},
				kernel: func(p *cpu.Proc) {
					for i := 0; i < iters; i++ {
						p.Lock(lock.Addr(0))
						v := p.Read(counter.Addr(0))
						p.WriteWord(counter.Addr(0), v.Word+1)
						p.Unlock(lock.Addr(0))
						p.Compute(int64(10 + p.ID()*3))
					}
					p.Barrier()
					if p.ID() == 0 {
						v := p.Read(counter.Addr(0))
						p.Assert(v.Word == uint64(p.N()*iters),
							"counter = %d, want %d", v.Word, p.N()*iters)
					}
				},
			}
			r := New(small(cfg, 4)).Run(p)
			mustClean(t, r)
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		var data mem.Region
		p := &prog{
			name: "det",
			setup: func(m *Machine) {
				data = m.Layout().AllocBlocked("data", 64*mem.BlockSize)
			},
			kernel: func(p *cpu.Proc) {
				rnd := p.RNG()
				for i := 0; i < 200; i++ {
					a := data.Addr(uint64(rnd.Intn(64)) * mem.BlockSize)
					if rnd.Bool(0.3) {
						p.Write(a)
					} else {
						p.Read(a)
					}
					p.Compute(int64(rnd.Intn(20)))
				}
				p.Barrier()
			},
		}
		cfg := small(Config{Consistency: proto.WC, Policy: core.Policy{Identifier: core.Versions{}, TearOff: true}}, 6)
		return New(cfg).Run(p)
	}
	a, b := run(), run()
	mustClean(t, a)
	if a.ExecTime != b.ExecTime {
		t.Fatalf("nondeterministic exec time: %d vs %d", a.ExecTime, b.ExecTime)
	}
	if a.Messages != b.Messages {
		t.Fatalf("nondeterministic traffic:\n%v\n%v", a.Messages, b.Messages)
	}
	if a.Breakdown != b.Breakdown {
		t.Fatalf("nondeterministic breakdown:\n%v\n%v", &a.Breakdown, &b.Breakdown)
	}
}

func TestWarmupClearsStatistics(t *testing.T) {
	var data mem.Region
	p := &prog{
		name:   "warm",
		warmup: 1,
		setup: func(m *Machine) {
			data = m.Layout().AllocInterleaved("data", 32*mem.BlockSize)
		},
		kernel: func(p *cpu.Proc) {
			// Heavy traffic during init, light after.
			for i := 0; i < 32; i++ {
				p.Write(data.Addr(uint64(i) * mem.BlockSize))
			}
			p.Barrier() // end of warm-up
			p.Compute(500)
		},
	}
	r := New(small(Config{Consistency: proto.SC}, 2)).Run(p)
	mustClean(t, r)
	if r.ExecTime < 500 || r.ExecTime > 600 {
		t.Fatalf("measured exec time = %d, want ≈ 500 (init excluded)", r.ExecTime)
	}
	if got := r.Breakdown.Cycles[stats.WriteOther] + r.Breakdown.Cycles[stats.WriteInval]; got != 0 {
		t.Fatalf("write stall cycles leaked into the measured region: %d", got)
	}
	if r.Messages.Total() != 0 {
		t.Fatalf("messages leaked into the measured region: %d", r.Messages.Total())
	}
	if r.TotalTime <= r.ExecTime {
		t.Fatal("total time should exceed the measured region")
	}
}

func TestDeadlockDetected(t *testing.T) {
	p := &prog{
		name: "deadlock",
		kernel: func(p *cpu.Proc) {
			if p.ID() != 0 {
				p.Barrier() // proc 0 never arrives
			}
		},
	}
	r := New(small(Config{Consistency: proto.SC}, 3)).Run(p)
	if !r.Failed() {
		t.Fatal("deadlock not reported")
	}
}

func TestKernelAssertSurfacesAsError(t *testing.T) {
	p := &prog{
		name:   "assert",
		kernel: func(p *cpu.Proc) { p.Assert(false, "boom %d", p.ID()) },
	}
	r := New(small(Config{Consistency: proto.SC}, 2)).Run(p)
	if !r.Failed() {
		t.Fatal("assertion did not surface")
	}
}

func TestTearOffRequiresWC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tear-off under SC did not panic")
		}
	}()
	New(Config{Consistency: proto.SC, Policy: core.Policy{Identifier: core.Versions{}, TearOff: true}})
}

// Migratory data: each processor in turn updates every block; DSI's marked
// exclusive blocks must carry values intact around the ring.
func TestMigratoryRingAllConfigs(t *testing.T) {
	for name, cfg := range configs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			var data mem.Region
			const blocks = 8
			p := &prog{
				name: "ring",
				setup: func(m *Machine) {
					data = m.Layout().AllocInterleaved("ring", blocks*mem.BlockSize)
				},
				kernel: func(p *cpu.Proc) {
					for turn := 0; turn < p.N(); turn++ {
						if turn == p.ID() {
							for i := 0; i < blocks; i++ {
								a := data.Addr(uint64(i) * mem.BlockSize)
								v := p.Read(a)
								p.WriteWord(a, v.Word+1)
							}
						}
						p.Barrier()
					}
					if p.ID() == 0 {
						for i := 0; i < blocks; i++ {
							v := p.Read(data.Addr(uint64(i) * mem.BlockSize))
							p.Assert(v.Word == uint64(p.N()), "block %d word %d", i, v.Word)
						}
					}
				},
			}
			r := New(small(cfg, 4)).Run(p)
			mustClean(t, r)
		})
	}
}

// ExecTime must scale with network latency for a communication-bound
// program.
func TestNetworkLatencySensitivity(t *testing.T) {
	run := func(lat event.Time) event.Time {
		var data mem.Region
		p := &prog{
			name: "lat",
			setup: func(m *Machine) {
				data = m.Layout().AllocInterleaved("d", 16*mem.BlockSize)
			},
			kernel: func(p *cpu.Proc) {
				for r := 0; r < 3; r++ {
					if p.ID() == 0 {
						for i := 0; i < 16; i++ {
							p.Write(data.Addr(uint64(i) * mem.BlockSize))
						}
					}
					p.Barrier()
					for i := 0; i < 16; i++ {
						p.Read(data.Addr(uint64(i) * mem.BlockSize))
					}
					p.Barrier()
				}
			},
		}
		cfg := small(Config{Consistency: proto.SC}, 4)
		cfg.NetworkLatency = lat
		r := New(cfg).Run(p)
		mustClean(t, r)
		return r.ExecTime
	}
	fast, slow := run(100), run(1000)
	if slow <= fast*2 {
		t.Fatalf("1000-cycle network (%d) not much slower than 100-cycle (%d)", slow, fast)
	}
}
