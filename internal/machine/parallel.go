// Conservative parallel delivery engine (Config.Workers > 1).
//
// The machine is partitioned one-node-per-partition: each partition owns its
// node's event queue, cache and directory controllers, processor, network
// port, and (when faults are configured) fault stream. Partitions advance in
// lockstep windows of Δ = NetworkLatency + InjectCycles simulated cycles —
// the minimum time any cross-node message needs between send and delivery —
// so everything inside a window is causally independent across partitions
// and can execute concurrently. At each boundary the coordinator merges the
// partitions' outboxes in a deterministic order, tallies barrier arrivals,
// and opens the next window.
//
// Determinism contract (DESIGN.md §5): for a fixed configuration every
// run with Workers >= 2 is bit-identical — the window schedule, the merge
// order, and all partition-local execution are functions of the simulation
// alone, never of goroutine scheduling; Workers only caps how many
// partitions execute simultaneously. Results legitimately differ from the
// serial engine (Workers == 1): transaction ids are striped across nodes
// instead of globally dense, fault plans draw from per-node streams instead
// of one global send-ordered stream, scripted-rule occurrence counters
// become per source node, and same-cycle events on different nodes
// interleave by partition rather than by global send order. The parallel
// equivalence suite pins the W2 == W8 identity and run-to-run determinism
// over the fault matrix.

package machine

import (
	"fmt"
	"sort"

	"dsisim/internal/cache"
	"dsisim/internal/check"
	"dsisim/internal/core"
	"dsisim/internal/cpu"
	"dsisim/internal/event"
	"dsisim/internal/faultinj"
	"dsisim/internal/netsim"
	"dsisim/internal/proto"
	"dsisim/internal/stats"
)

// parMsg is one cross-partition message parked in its source partition's
// outbox: the message, its fully computed arrival time (NI occupancy, fault
// decision, and FIFO clamp already applied at the source port), and its
// emission index within the window, the tiebreak that keeps the merge order
// a pure function of simulation state.
type parMsg struct {
	m      netsim.Message
	arrive event.Time
	idx    int
}

// parArrival is one processor parked at the machine-wide barrier, recorded
// by its partition's collecting barrier port.
type parArrival struct {
	node int
	at   event.Time
	cont func()
}

// partition is one node's complete simulation stack plus its coordination
// state. Everything here is owned by exactly one goroutine at a time: the
// partition's pump while a window runs, the coordinator between windows
// (the window/did channel pair carries the happens-before edges).
type partition struct {
	node int
	q    *event.Queue
	drv  *cpu.Driver
	net  *netsim.Network
	cc   *proto.CacheCtrl
	dc   *proto.DirCtrl
	bar  *cpu.Barrier
	proc *cpu.Proc
	brk  *stats.Breakdown
	plan *faultinj.Plan

	fails    []string
	outbox   []parMsg
	arrivals []parArrival

	// Warm-up snapshots, captured by a partition-local event at the warm-up
	// barrier's release time (mirroring the serial OnRelease hook).
	warmBrk  stats.Breakdown
	warmMsgs netsim.Counts

	windows chan event.Time
	did     chan bool
}

// pump executes this partition's windows as the coordinator opens them. sem
// caps how many partitions run simultaneously (the Workers knob); it has no
// effect on results, only on concurrency.
func (pt *partition) pump(sem chan struct{}) {
	for limit := range pt.windows {
		sem <- struct{}{}
		ok := pt.drv.RunWindow(limit)
		<-sem
		pt.did <- ok
	}
}

// runParallel is Machine.Run's Workers > 1 engine. The partition world is
// built fresh per run (the serial machine's structural pooling does not
// apply here yet); the machine's layout, configuration, and seed are shared
// with the partitions, everything else is per-partition.
func (m *Machine) runParallel(prog Program) Result {
	prog.Setup(m)
	cfg := m.cfg
	n := cfg.Processors
	// The lookahead window must respect every cross-partition channel's
	// minimum latency: the network (flight time plus the NI's minimum
	// occupancy) and the hardware barrier (whose release lands a fixed
	// latency after the last arrival — with the window no wider than that,
	// the coordinator always observes a completed episode in time to
	// schedule the release at its exact serial instant, never floored).
	delta := cfg.NetworkLatency + netsim.InjectCycles
	if cfg.BarrierLatency < delta {
		delta = cfg.BarrierLatency
	}
	if delta < 1 {
		delta = 1
	}

	retry := cfg.Retry
	faultsOn := cfg.Faults != nil && cfg.Faults.Enabled()
	if retry == nil && faultsOn {
		retry = proto.DefaultRetry(cfg.NetworkLatency)
	}
	pcfg := proto.Config{
		Consistency:        cfg.Consistency,
		WriteBufferEntries: cfg.WriteBufferEntries,
		SharerLimit:        cfg.SharerLimit,
		Policy:             cfg.Policy,
		Retry:              retry,
	}
	geo := cache.Config{SizeBytes: cfg.CacheBytes, Assoc: cfg.CacheAssoc}

	parts := make([]*partition, n)
	for i := 0; i < n; i++ {
		pt := &partition{
			node:    i,
			q:       &event.Queue{},
			brk:     &stats.Breakdown{},
			windows: make(chan event.Time),
			did:     make(chan bool),
		}
		if faultsOn {
			// Per-node fault streams: the serial engine draws one global
			// stream in send order, which no partitioning can reproduce, so
			// each port gets its own plan seeded from the configured seed and
			// its node id — deterministic for every Workers >= 2.
			fcfg := *cfg.Faults
			fcfg.Seed ^= uint64(i+1) * 0x9e3779b97f4a7c15
			pt.plan = faultinj.New(fcfg)
		}
		pt.net = netsim.New(pt.q, netsim.Config{Nodes: n, Latency: cfg.NetworkLatency, Faults: pt.plan})
		pt.net.SetPort(i, func(msg netsim.Message, arrive event.Time) {
			pt.outbox = append(pt.outbox, parMsg{m: msg, arrive: arrive, idx: len(pt.outbox)})
		})
		env := &proto.Env{
			Q: pt.q, Net: pt.net, Layout: m.layout,
			TxnStride: uint64(n), TxnBase: uint64(i),
			CheckFail: func(format string, args ...any) {
				pt.fails = append(pt.fails, fmt.Sprintf("t=%d: ", pt.q.Now())+fmt.Sprintf(format, args...))
			},
		}
		pt.cc = proto.NewCacheCtrl(env, i, pcfg, geo)
		pt.dc = proto.NewDirCtrl(env, i, pcfg)
		cc, dc := pt.cc, pt.dc
		pt.net.SetHandler(i, func(msg netsim.Message) {
			switch msg.Kind {
			case netsim.Inv, netsim.Recall, netsim.DataS, netsim.DataX,
				netsim.AckX, netsim.FinalAck, netsim.Nack:
				cc.Handle(msg)
			case netsim.GetS, netsim.GetX, netsim.Upgrade, netsim.InvAck,
				netsim.InvAckData, netsim.RecallAck, netsim.WB, netsim.Repl,
				netsim.SInvNotify, netsim.SInvWB, netsim.NackHome:
				dc.Handle(msg)
			default:
				panic("machine: message kind with no controller route")
			}
		})
		pt.bar = cpu.NewBarrier(pt.q, n, cfg.BarrierLatency)
		pt.bar.Collect = func(at event.Time, cont func()) {
			pt.arrivals = append(pt.arrivals, parArrival{node: pt.node, at: at, cont: cont})
		}
		pt.drv = cpu.NewDriver(pt.q)
		pt.drv.Reset(cfg.MaxSteps)
		pt.proc = cpu.New(i, n, pt.q, pt.cc, pt.bar, pt.brk, cfg.Seed)
		pt.proc.Bind(pt.drv)
		pt.proc.Start(prog.Kernel)
		parts[i] = pt
	}

	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	sem := make(chan struct{}, workers)
	for _, pt := range parts {
		//dsi:parmerge partition pumps: windows/did handshakes order all state
		go pt.pump(sem)
	}

	var (
		waiting   []parArrival
		episodes  int64
		warmWant  = int64(prog.WarmupBarriers())
		warmTaken = warmWant == 0
		warmEnd   event.Time
		budgetOut bool
		xfer      []parMsg
	)
	for {
		// Open the next window at the earliest pending event anywhere.
		var minNext event.Time
		any := false
		for _, pt := range parts {
			if t, ok := pt.q.NextAt(); ok && (!any || t < minNext) {
				minNext, any = t, true
			}
		}
		if !any {
			break // quiesced: halted, deadlocked, or stuck at the barrier
		}
		limit := minNext + delta
		for _, pt := range parts {
			pt.windows <- limit
		}
		for _, pt := range parts {
			if !<-pt.did {
				budgetOut = true
			}
		}
		if budgetOut {
			break
		}

		// Merge cross-partition traffic. Arrival times are final (source-side
		// physics ran at the port); sorting by (arrive, src, emission index)
		// fixes the destination queues' tie order deterministically and
		// preserves per-(src, dst) FIFO, whose arrivals never decrease.
		xfer = xfer[:0]
		for _, pt := range parts {
			xfer = append(xfer, pt.outbox...)
			pt.outbox = pt.outbox[:0]
		}
		sort.Slice(xfer, func(i, j int) bool {
			a, b := xfer[i], xfer[j]
			if a.arrive != b.arrive {
				return a.arrive < b.arrive
			}
			if a.m.Src != b.m.Src {
				return a.m.Src < b.m.Src
			}
			return a.idx < b.idx
		})
		for _, x := range xfer {
			parts[x.m.Dst].net.Inject(x.m, x.arrive)
		}

		// Tally barrier arrivals; release once every processor has arrived.
		// The release time is the serial rule (last arrival + latency)
		// floored to the boundary where the coordinator — like the hardware
		// it stands in for — first observes completion.
		for _, pt := range parts {
			waiting = append(waiting, pt.arrivals...)
			pt.arrivals = pt.arrivals[:0]
		}
		if len(waiting) == n {
			episodes++
			var lastAt event.Time
			for _, a := range waiting {
				if a.at > lastAt {
					lastAt = a.at
				}
			}
			release := lastAt + cfg.BarrierLatency
			if release < limit {
				release = limit
			}
			if !warmTaken && episodes >= warmWant {
				warmTaken = true
				warmEnd = release
				for _, pt := range parts {
					pt := pt
					pt.q.At(release, func() {
						pt.warmBrk = *pt.brk
						pt.warmMsgs = pt.net.Counts()
					})
				}
			}
			sort.Slice(waiting, func(i, j int) bool { return waiting[i].node < waiting[j].node })
			for _, a := range waiting {
				parts[a.node].q.At(release, a.cont)
			}
			waiting = waiting[:0]
		}
	}
	for _, pt := range parts {
		close(pt.windows)
	}
	for _, pt := range parts {
		if pt.proc.Done() {
			pt.proc.Join()
		}
	}

	// Assemble the Result exactly as the serial engine does, summing the
	// per-partition views.
	var (
		res      Result
		last     event.Time
		steps    uint64
		inflight int
		queueLen int
		ccs      = make([]*proto.CacheCtrl, n)
		dcs      = make([]*proto.DirCtrl, n)
	)
	res.Program = prog.Name()
	res.Barriers = episodes
	for _, pt := range parts {
		if t := pt.q.Now(); t > res.TotalTime {
			res.TotalTime = t
		}
		steps += pt.drv.Steps()
		inflight += pt.net.InFlight()
		queueLen += pt.q.Len()
		ccs[pt.node], dcs[pt.node] = pt.cc, pt.dc
		res.Errors = append(res.Errors, pt.fails...)
		if pt.plan != nil {
			s := pt.plan.Stats()
			res.Faults.Decisions += s.Decisions
			res.Faults.Dropped += s.Dropped
			res.Faults.Duplicated += s.Duplicated
			res.Faults.Delayed += s.Delayed
			res.Faults.Converted += s.Converted
			res.Faults.Scripted += s.Scripted
		}
	}
	if budgetOut {
		res.Errors = append(res.Errors, fmt.Sprintf("watchdog: %d events executed without quiescing", steps))
		res.Errors = append(res.Errors, worldDiagnose(queueLen, inflight, ccs, dcs, nil)...)
		return res
	}
	if worldDeadlocked(ccs, dcs, inflight) {
		res.Errors = append(res.Errors, "watchdog: event queue drained without quiescing (deadlock)")
		res.Errors = append(res.Errors, worldDiagnose(queueLen, inflight, ccs, dcs, nil)...)
	}
	for _, pt := range parts {
		p := pt.proc
		if !p.Done() {
			res.Errors = append(res.Errors, fmt.Sprintf("proc %d deadlocked (%d parked at barrier)", pt.node, len(waiting)))
			continue
		}
		if p.Err() != nil {
			res.Errors = append(res.Errors, fmt.Sprintf("proc %d: %v", pt.node, p.Err()))
		}
		if p.HaltTime() > last {
			last = p.HaltTime()
		}
	}
	if !warmTaken {
		res.Errors = append(res.Errors, fmt.Sprintf("warm-up never ended: %d barrier episodes < %d",
			episodes, prog.WarmupBarriers()))
	}

	res.ExecTime = last - warmEnd
	res.PerProc = make([]stats.Breakdown, n)
	for _, pt := range parts {
		pb := *pt.brk
		for c := range pb.Cycles {
			pb.Cycles[c] -= pt.warmBrk.Cycles[c]
		}
		res.PerProc[pt.node] = pb
		res.Breakdown.Merge(&pb)
		res.Messages = addCounts(res.Messages, pt.net.Counts().Sub(pt.warmMsgs))
		res.Cache = append(res.Cache, pt.cc.Stats())
		res.Dir = append(res.Dir, pt.dc.Stats())
		if f, ok := pt.cc.Mechanism().(*core.FIFO); ok {
			res.FIFODisplacements += f.Displacements
		}
		qs := pt.q.Stats()
		res.Kernel.Events += qs.Executed
		res.Kernel.Scheduled += qs.Scheduled
		res.Kernel.TypedEvents += qs.Typed
		if qs.PeakLen > res.Kernel.PeakQueue {
			res.Kernel.PeakQueue = qs.PeakLen
		}
		res.Kernel.PooledDeliveries += pt.net.Recycled()
	}
	for _, err := range check.Audit(ccs, dcs, inflight) {
		res.Errors = append(res.Errors, "audit: "+err.Error())
	}
	return res
}

// addCounts sums two traffic counters kind by kind.
func addCounts(a, b netsim.Counts) netsim.Counts {
	for i := range a.ByKind {
		a.ByKind[i] += b.ByKind[i]
	}
	return a
}
