package machine

import (
	"testing"

	"dsisim/internal/core"
	"dsisim/internal/cpu"
	"dsisim/internal/mem"
	"dsisim/internal/proto"
)

// Litmus tests: classic two-processor memory-model shapes, run across many
// relative timings. The simulator's SC configurations must never produce a
// non-SC outcome; the WC configurations must still be correct for properly
// synchronized variants.

// scConfigs are all sequentially consistent protocol variants.
func scConfigs() map[string]Config {
	return map[string]Config{
		"sc":          {Consistency: proto.SC},
		"sc-states":   {Consistency: proto.SC, Policy: core.Policy{Identifier: core.States{}, UpgradeExemption: true}},
		"sc-versions": {Consistency: proto.SC, Policy: core.Policy{Identifier: core.Versions{}, UpgradeExemption: true}},
		"sc-tearoff": {Consistency: proto.SC, Policy: core.Policy{
			Identifier: core.Versions{}, SCTearOff: true, UpgradeExemption: true}},
		"sc-migratory": {Consistency: proto.SC, Policy: core.Policy{Migratory: true}},
	}
}

// litmusMP is the message-passing shape: P0 writes data then flag; P1 spins
// on the flag (via swap, the memory-system-visible sync access) and reads
// data. Under SC — and under any configuration that preserves the paper's
// semantics — P1 must observe the data write.
func litmusMP(t *testing.T, cfg Config, skew int64) {
	var data, flag mem.Region
	p := &prog{
		name: "mp",
		setup: func(m *Machine) {
			data = m.Layout().AllocInterleaved("data", mem.BlockSize)
			flag = m.Layout().AllocInterleaved("flag", mem.BlockSize)
		},
		kernel: func(p *cpu.Proc) {
			switch p.ID() {
			case 0:
				p.Compute(int64(1 + skew))
				p.WriteWord(data.Addr(0), 42)
				p.WriteWord(flag.Addr(0), 1)
			case 1:
				// Spin on the flag with plain reads: invalidation
				// propagation must make the new value visible (the copy is
				// tracked — it was fetched before any conflicting write, so
				// no DSI variant hands it out tear-off).
				for p.Read(flag.Addr(0)).Word != 1 {
					p.Compute(30)
				}
				v := p.Read(data.Addr(0))
				p.Assert(v.Word == 42, "mp: read %d after flag", v.Word)
			}
		},
	}
	r := New(small(cfg, 2)).Run(p)
	if r.Failed() {
		t.Fatalf("skew %d: %s", skew, r.Errors[0])
	}
}

func TestLitmusMessagePassing(t *testing.T) {
	for name, cfg := range scConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for skew := int64(0); skew < 400; skew += 37 {
				litmusMP(t, cfg, skew)
			}
		})
	}
}

// Under WC the same shape is correct because the flag spin uses swap (a
// synchronization access that drains the writer's buffer order is
// established by the flag's own propagation) — plus the reader's swap
// flushes its stale tear-off copies before the data read.
func TestLitmusMessagePassingWC(t *testing.T) {
	cfgs := map[string]Config{
		"wc":         {Consistency: proto.WC},
		"wc-tearoff": {Consistency: proto.WC, Policy: core.Policy{Identifier: core.Versions{}, TearOff: true}},
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for skew := int64(0); skew < 400; skew += 37 {
				var data, flag mem.Region
				p := &prog{
					name: "mp-wc",
					setup: func(m *Machine) {
						data = m.Layout().AllocInterleaved("data", mem.BlockSize)
						flag = m.Layout().AllocInterleaved("flag", mem.BlockSize)
					},
					kernel: func(p *cpu.Proc) {
						switch p.ID() {
						case 0:
							p.Compute(1 + skew)
							p.WriteWord(data.Addr(0), 42)
							// Publish with a swap: drains the write buffer
							// first, so data is globally visible before the
							// flag (release semantics). The published value
							// (2) is distinct from the spinner's swap-in (1).
							p.Swap(flag.Addr(0), 2)
						case 1:
							// Swap-spin: each attempt is a sync access, so a
							// stale tear-off copy of the flag can never wedge
							// the loop (§3.3 forward-progress hazard).
							for p.Swap(flag.Addr(0), 1) != 2 {
								p.Compute(30)
							}
							v := p.Read(data.Addr(0))
							p.Assert(v.Word == 42, "mp-wc: read %d after flag", v.Word)
						}
					},
				}
				r := New(small(cfg, 2)).Run(p)
				if r.Failed() {
					t.Fatalf("skew %d: %s", skew, r.Errors[0])
				}
			}
		})
	}
}

// litmusSB is the store-buffering shape done with swaps: both processors
// swap their own flag then read the other's. Under SC at least one must see
// the other's write (the interleaving argument); both reading zero is the
// forbidden weak outcome.
func TestLitmusStoreBuffering(t *testing.T) {
	for name, cfg := range scConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for skew := int64(0); skew < 300; skew += 41 {
				var x, y mem.Region
				got := make([]uint64, 2)
				p := &prog{
					name: "sb",
					setup: func(m *Machine) {
						x = m.Layout().AllocInterleaved("x", mem.BlockSize)
						y = m.Layout().AllocInterleaved("y", mem.BlockSize)
					},
					kernel: func(p *cpu.Proc) {
						mine, theirs := x, y
						if p.ID() == 1 {
							mine, theirs = y, x
							p.Compute(skew)
						}
						p.WriteWord(mine.Addr(0), 1)
						got[p.ID()] = p.Read(theirs.Addr(0)).Word
					},
				}
				r := New(small(cfg, 2)).Run(p)
				if r.Failed() {
					t.Fatalf("skew %d: %s", skew, r.Errors[0])
				}
				if got[0] == 0 && got[1] == 0 {
					t.Fatalf("%s skew %d: both processors read 0 — store buffering under SC", name, skew)
				}
			}
		})
	}
}

// Dekker-style mutual exclusion via the lock primitive under every SC
// variant and every skew.
func TestLitmusLockHandoff(t *testing.T) {
	for name, cfg := range scConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for skew := int64(0); skew < 200; skew += 67 {
				var lock, data mem.Region
				p := &prog{
					name: "handoff",
					setup: func(m *Machine) {
						lock = m.Layout().AllocInterleaved("lock", mem.BlockSize)
						data = m.Layout().AllocInterleaved("data", mem.BlockSize)
					},
					kernel: func(p *cpu.Proc) {
						if p.ID() == 1 {
							p.Compute(skew)
						}
						for i := 0; i < 3; i++ {
							p.Lock(lock.Addr(0))
							v := p.Read(data.Addr(0))
							p.Compute(25)
							p.WriteWord(data.Addr(0), v.Word+1)
							p.Unlock(lock.Addr(0))
						}
						p.Barrier()
						if p.ID() == 0 {
							v := p.Read(data.Addr(0))
							p.Assert(v.Word == 6, "handoff: %d", v.Word)
						}
					},
				}
				r := New(small(cfg, 2)).Run(p)
				if r.Failed() {
					t.Fatalf("%s skew %d: %s", name, skew, r.Errors[0])
				}
			}
		})
	}
}
