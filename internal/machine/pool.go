package machine

import "sync"

// poolCap bounds how many idle machines a Pool retains. Experiment grids
// cycle through a handful of shapes (usually one); anything beyond that is
// better garbage-collected than held.
const poolCap = 4

// Pool recycles machines across runs. An experiment grid or benchmark loop
// that simulates the same machine shape hundreds of times pays the
// structural allocation cost (event queue, network, block tables, cache
// arrays) once: Get returns a Reset machine when a compatible one is idle,
// and Put parks a finished machine for the next Get.
//
// Reuse never changes results — Reset restores a just-assembled state, and
// the kernel determinism goldens run every protocol through pooled machines
// (dsisim.Run uses a package pool). The zero Pool is ready to use and safe
// for concurrent Get/Put; each machine is owned exclusively by its caller
// between the two.
type Pool struct {
	mu   sync.Mutex
	free []*Machine
}

// Get returns a machine for cfg: a pooled one when its structure matches
// (Reset under the new configuration), a freshly assembled one otherwise.
func (p *Pool) Get(cfg Config) *Machine {
	cfg = cfg.Defaults()
	p.mu.Lock()
	for i := len(p.free) - 1; i >= 0; i-- {
		m := p.free[i]
		if m.Reusable(cfg) {
			p.free = append(p.free[:i], p.free[i+1:]...)
			p.mu.Unlock()
			m.Reset(cfg)
			return m
		}
	}
	p.mu.Unlock()
	return New(cfg)
}

// Put parks m for reuse. Machines whose run failed are parked too — Reset
// restores a clean state regardless (abandoned in-flight records are simply
// dropped to the garbage collector). When the pool is full the oldest
// parked machine is evicted.
func (p *Pool) Put(m *Machine) {
	if m == nil {
		return
	}
	p.mu.Lock()
	if len(p.free) >= poolCap {
		p.free = append(p.free[1:], m)
	} else {
		p.free = append(p.free, m)
	}
	p.mu.Unlock()
}
