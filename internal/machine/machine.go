// Package machine assembles the simulated multiprocessor: processors, cache
// controllers, directory controllers, network, and the hardware barrier,
// with the paper's timing parameters. It runs workload programs, clears
// statistics after initialization (as the paper does), and audits coherence
// invariants when the system quiesces.
package machine

import (
	"fmt"

	"dsisim/internal/cache"
	"dsisim/internal/check"
	"dsisim/internal/core"
	"dsisim/internal/cpu"
	"dsisim/internal/event"
	"dsisim/internal/faultinj"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
	"dsisim/internal/obs"
	"dsisim/internal/proto"
	"dsisim/internal/stats"
)

// Config parameterizes one simulated machine. The zero value is completed
// by Defaults: the paper's 32-processor system with a 100-cycle network.
type Config struct {
	Processors         int
	CacheBytes         int
	CacheAssoc         int
	NetworkLatency     event.Time
	BarrierLatency     event.Time
	Consistency        proto.Consistency
	WriteBufferEntries int
	// SharerLimit caps directory sharer pointers per block (0 = full map).
	SharerLimit int
	Policy      core.Policy
	Seed        uint64
	// MaxSteps bounds the event count (a livelock watchdog). 0 means the
	// package default. Under Workers > 1 the budget applies per partition.
	MaxSteps uint64
	// Workers selects the execution engine. 1 (the default) runs the serial
	// conch-driven event loop — the path every shipped experiment and golden
	// uses, byte-for-byte unchanged. Workers > 1 runs the conservative
	// parallel delivery engine (parallel.go): one partition per node, each
	// with its own event queue, controllers, and network port, advancing in
	// lookahead windows of the network's minimum cross-node latency, with at
	// most Workers partitions executing simultaneously. Results are
	// deterministic and identical for every Workers >= 2, but differ from
	// Workers == 1 in timing details (transaction-id layout, fault-stream
	// partitioning, same-cycle interleaving across nodes) — see
	// DESIGN.md §5. Defaults forces 1 when a Sink or Tracer is
	// attached: observability consumers are strictly serial.
	Workers int
	// Tracer, if set, observes every operation each processor issues in
	// program order (internal/trace records with it).
	Tracer func(proc int, op cpu.TraceOp)
	// Sink, if set, receives one coherence event per protocol message, state
	// transition, self-invalidation, FIFO displacement, and tear-off grant,
	// and derives the Result's Blocks metrics. Nil costs nothing (see
	// DESIGN.md §6).
	Sink *obs.Sink
	// Faults, if set and non-empty, installs a deterministic fault-injection
	// plan on the network (internal/faultinj, docs/FAULTS.md): inter-node
	// messages may be dropped, duplicated, or delayed. Enabling faults also
	// enables the hardened protocol (see Retry). Nil costs nothing.
	Faults *faultinj.Config
	// Retry overrides the hardened protocol's parameters (proto.RetryConfig).
	// Nil means: DefaultRetry when Faults is enabled, strict base protocol
	// otherwise.
	Retry *proto.RetryConfig
}

// Defaults fills unset fields with the paper's configuration.
func (c Config) Defaults() Config {
	if c.Processors == 0 {
		c.Processors = 32
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 * 1024
	}
	if c.CacheAssoc == 0 {
		c.CacheAssoc = 4
	}
	if c.NetworkLatency == 0 {
		c.NetworkLatency = 100
	}
	if c.BarrierLatency == 0 {
		c.BarrierLatency = 100
	}
	if c.WriteBufferEntries == 0 {
		c.WriteBufferEntries = 16
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 2_000_000_000
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Workers > 1 && (c.Sink != nil || c.Tracer != nil) {
		// The coherence sink and the trace hook are single-stream consumers
		// ordered by global event execution; run them on the serial engine.
		c.Workers = 1
	}
	if c.Policy.TearOff && c.Consistency != proto.WC {
		panic("machine: tear-off blocks require weak consistency (use SCTearOff for the SC variant)")
	}
	if c.Policy.SCTearOff && c.Consistency != proto.SC {
		panic("machine: SCTearOff applies to sequential consistency only")
	}
	return c
}

// Program is a runnable workload: it allocates its address space in Setup
// and then runs Kernel on every processor. WarmupBarriers declares how many
// barrier episodes constitute initialization; statistics are cleared when
// that many have completed (0 measures everything).
type Program interface {
	Name() string
	Setup(m *Machine)
	Kernel(p *cpu.Proc)
	WarmupBarriers() int
}

// Result reports one simulation run. All quantities cover the measured
// region (after warm-up) unless stated otherwise.
type Result struct {
	Program   string
	ExecTime  event.Time // last processor halt minus warm-up end
	TotalTime event.Time // full run, including initialization
	Breakdown stats.Breakdown
	PerProc   []stats.Breakdown
	Messages  netsim.Counts
	Cache     []proto.CacheStats // full-run structural counters
	Dir       []proto.DirStats
	Barriers  int64
	// FIFODisplacements sums, across nodes, the self-invalidations forced
	// early by a finite FIFO mechanism (zero for flush-at-sync).
	FIFODisplacements int64
	// Kernel reports event-kernel counters for the full run (events
	// executed, peak queue depth, allocations avoided by the typed paths).
	Kernel stats.Kernel
	// Blocks holds per-block lifetime metrics derived by the coherence-event
	// sink; nil unless Config.Sink was set. Covers the full run.
	Blocks *obs.BlockMetrics
	// Faults reports fault-plan statistics for the full run (all zero when
	// Config.Faults was not set).
	Faults faultinj.Stats
	Errors []string
}

// Failed reports whether the run recorded any protocol, kernel, audit, or
// deadlock errors.
func (r *Result) Failed() bool { return len(r.Errors) > 0 }

// Machine is one assembled system.
type Machine struct {
	cfg     Config
	q       *event.Queue
	net     *netsim.Network
	layout  *mem.Layout
	env     *proto.Env
	ccs     []*proto.CacheCtrl
	dcs     []*proto.DirCtrl
	barrier *cpu.Barrier
	drv     *cpu.Driver
	plan    *faultinj.Plan
	fails   []string

	// procs and brks persist across Reset: processors are rebuilt only when
	// a previous run left their kernel goroutine unhalted (deadlock), so a
	// pooled machine re-runs without the per-processor construction cost.
	procs []*cpu.Proc
	brks  []*stats.Breakdown
}

// New assembles a machine from cfg (completed with Defaults).
func New(cfg Config) *Machine {
	cfg = cfg.Defaults()
	m := &Machine{
		cfg:    cfg,
		q:      &event.Queue{},
		layout: mem.NewLayout(cfg.Processors),
	}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		m.plan = faultinj.New(*cfg.Faults)
	}
	m.net = netsim.New(m.q, netsim.Config{Nodes: cfg.Processors, Latency: cfg.NetworkLatency, Faults: m.plan})
	m.env = &proto.Env{
		Q: m.q, Net: m.net, Layout: m.layout,
		CheckFail: func(format string, args ...any) {
			m.fails = append(m.fails, fmt.Sprintf("t=%d: ", m.q.Now())+fmt.Sprintf(format, args...))
		},
	}
	if cfg.Sink != nil {
		m.env.Sink = cfg.Sink
		m.net.SetObserver(cfg.Sink)
	}
	retry := cfg.Retry
	if retry == nil && m.plan != nil {
		// Faults without hardening would deadlock on the first lost message;
		// install the default recovery parameters.
		retry = proto.DefaultRetry(cfg.NetworkLatency)
	}
	pcfg := proto.Config{
		Consistency:        cfg.Consistency,
		WriteBufferEntries: cfg.WriteBufferEntries,
		SharerLimit:        cfg.SharerLimit,
		Policy:             cfg.Policy,
		Retry:              retry,
	}
	geo := cache.Config{SizeBytes: cfg.CacheBytes, Assoc: cfg.CacheAssoc}
	for i := 0; i < cfg.Processors; i++ {
		m.ccs = append(m.ccs, proto.NewCacheCtrl(m.env, i, pcfg, geo))
		m.dcs = append(m.dcs, proto.NewDirCtrl(m.env, i, pcfg))
	}
	for i := 0; i < cfg.Processors; i++ {
		cc, dc := m.ccs[i], m.dcs[i]
		m.net.SetHandler(i, func(msg netsim.Message) {
			switch msg.Kind {
			case netsim.Inv, netsim.Recall, netsim.DataS, netsim.DataX,
				netsim.AckX, netsim.FinalAck, netsim.Nack:
				cc.Handle(msg)
			case netsim.GetS, netsim.GetX, netsim.Upgrade, netsim.InvAck,
				netsim.InvAckData, netsim.RecallAck, netsim.WB, netsim.Repl,
				netsim.SInvNotify, netsim.SInvWB, netsim.NackHome:
				dc.Handle(msg)
			default:
				panic("machine: message kind with no controller route")
			}
		})
	}
	m.barrier = cpu.NewBarrier(m.q, cfg.Processors, cfg.BarrierLatency)
	m.drv = cpu.NewDriver(m.q)
	return m
}

// Reusable reports whether the machine's fixed structure (processor count
// and cache geometry) matches cfg, i.e. whether Reset(cfg) can reuse it.
// cfg must already be defaulted.
func (m *Machine) Reusable(cfg Config) bool {
	return cfg.Processors == m.cfg.Processors &&
		cfg.CacheBytes == m.cfg.CacheBytes &&
		cfg.CacheAssoc == m.cfg.CacheAssoc &&
		cfg.Workers == m.cfg.Workers
}

// Reset rewinds the machine to a just-assembled state under cfg, keeping
// every structural allocation: the event queue's heap, the network's
// interfaces and delivery pool, the controllers' block tables and record
// free lists, the cache arrays, and the address-space allocator. What is
// cleared: all simulated time, traffic counters, cache and directory
// contents, memory images, transaction ids, statistics, and accumulated
// errors. The per-run wiring (sink, fault plan, retry parameters, protocol
// policy, latencies, seed) is re-derived from cfg exactly as New does, so a
// Reset machine is observationally identical to a fresh one — the kernel
// determinism goldens gate this.
//
// Reset panics if Reusable(cfg) is false (the structure cannot change).
func (m *Machine) Reset(cfg Config) {
	cfg = cfg.Defaults()
	if !m.Reusable(cfg) {
		panic("machine: Reset with an incompatible configuration (build a new machine)")
	}
	m.cfg = cfg
	m.q.Reset()
	m.layout.Reset()
	m.fails = m.fails[:0]
	m.plan = nil
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		m.plan = faultinj.New(*cfg.Faults)
	}
	m.net.Reset(netsim.Config{Nodes: cfg.Processors, Latency: cfg.NetworkLatency, Faults: m.plan})
	m.env.Reset(cfg.Sink)
	if cfg.Sink != nil {
		m.net.SetObserver(cfg.Sink)
	}
	retry := cfg.Retry
	if retry == nil && m.plan != nil {
		retry = proto.DefaultRetry(cfg.NetworkLatency)
	}
	pcfg := proto.Config{
		Consistency:        cfg.Consistency,
		WriteBufferEntries: cfg.WriteBufferEntries,
		SharerLimit:        cfg.SharerLimit,
		Policy:             cfg.Policy,
		Retry:              retry,
	}
	for i := 0; i < cfg.Processors; i++ {
		m.ccs[i].Reset(pcfg)
		m.dcs[i].Reset(pcfg)
	}
	m.barrier.Reset(cfg.BarrierLatency)
}

// Config returns the machine's (defaulted) configuration.
func (m *Machine) Config() Config { return m.cfg }

// Layout returns the address-space allocator for Program.Setup.
func (m *Machine) Layout() *mem.Layout { return m.layout }

// CacheCtrl returns node's cache controller (for checkers and examples).
func (m *Machine) CacheCtrl(node int) *proto.CacheCtrl { return m.ccs[node] }

// DirCtrl returns node's directory controller.
func (m *Machine) DirCtrl(node int) *proto.DirCtrl { return m.dcs[node] }

// Run executes the program to completion and returns the measurements. A
// machine runs one program at a time and holds that run's state afterwards:
// call Reset (or go through a Pool) before running it again.
func (m *Machine) Run(prog Program) Result {
	if m.cfg.Workers > 1 {
		return m.runParallel(prog)
	}
	prog.Setup(m)

	n := m.cfg.Processors
	if m.procs == nil {
		m.procs = make([]*cpu.Proc, n)
		m.brks = make([]*stats.Breakdown, n)
		for i := 0; i < n; i++ {
			m.brks[i] = &stats.Breakdown{}
		}
	}
	brks, procs := m.brks, m.procs
	for i := 0; i < n; i++ {
		*brks[i] = stats.Breakdown{}
		if procs[i] != nil && procs[i].Done() {
			procs[i].Reset(m.cfg.Seed)
		} else {
			procs[i] = cpu.New(i, n, m.q, m.ccs[i], m.barrier, brks[i], m.cfg.Seed)
		}
		if tr := m.cfg.Tracer; tr != nil {
			i := i
			procs[i].OnOp = func(op cpu.TraceOp) { tr(i, op) }
		}
	}

	// Warm-up boundary: snapshot statistics when initialization ends.
	var (
		warmEnd   event.Time
		warmBrks  []stats.Breakdown
		warmMsgs  netsim.Counts
		warmTaken = prog.WarmupBarriers() == 0
	)
	if !warmTaken {
		want := int64(prog.WarmupBarriers())
		m.barrier.OnRelease = func(ep int64) {
			if warmTaken || ep < want {
				return
			}
			warmTaken = true
			warmEnd = m.q.Now()
			warmMsgs = m.net.Counts()
			warmBrks = make([]stats.Breakdown, n)
			for i, b := range brks {
				warmBrks[i] = *b
			}
		}
	}

	m.drv.Reset(m.cfg.MaxSteps)
	for i := 0; i < n; i++ {
		procs[i].Bind(m.drv)
		procs[i].Start(prog.Kernel)
	}
	steps, _ := m.drv.Run()
	// Join halted kernels before touching processor state: their goroutines
	// may still be unwinding the drive loop for a few instructions after the
	// outcome was posted, and a subsequent Reset would race with that.
	// Deadlocked kernels are parked forever and get rebuilt instead.
	for _, p := range procs {
		if p.Done() {
			p.Join()
		}
	}

	res := Result{Program: prog.Name(), TotalTime: m.q.Now(), Barriers: m.barrier.Episodes}
	res.Errors = append(res.Errors, m.fails...)
	res.Faults = m.net.FaultStats()
	if steps == m.cfg.MaxSteps && m.q.Len() > 0 {
		// Livelock watchdog: the event budget expired with work still
		// queued. Fail with the structured dump instead of expiring
		// silently.
		res.Errors = append(res.Errors, fmt.Sprintf("watchdog: %d events executed without quiescing", steps))
		res.Errors = append(res.Errors, m.diagnose()...)
		return res
	}
	if m.deadlocked() {
		// Deadlock watchdog: the queue drained but transactions are still
		// open — a message was lost and nothing will ever retry it (or the
		// retry cap was exceeded and the transaction gave up).
		res.Errors = append(res.Errors, "watchdog: event queue drained without quiescing (deadlock)")
		res.Errors = append(res.Errors, m.diagnose()...)
	}

	var last event.Time
	for i, p := range procs {
		if !p.Done() {
			res.Errors = append(res.Errors, fmt.Sprintf("proc %d deadlocked (%d parked at barrier)", i, m.barrier.Waiting()))
			continue
		}
		if p.Err() != nil {
			res.Errors = append(res.Errors, fmt.Sprintf("proc %d: %v", i, p.Err()))
		}
		if p.HaltTime() > last {
			last = p.HaltTime()
		}
	}
	if !warmTaken {
		res.Errors = append(res.Errors, fmt.Sprintf("warm-up never ended: %d barrier episodes < %d",
			m.barrier.Episodes, prog.WarmupBarriers()))
	}

	res.ExecTime = last - warmEnd
	res.Messages = m.net.Counts().Sub(warmMsgs)
	res.PerProc = make([]stats.Breakdown, n)
	for i, b := range brks {
		pb := *b
		if warmBrks != nil {
			for c := range pb.Cycles {
				pb.Cycles[c] -= warmBrks[i].Cycles[c]
			}
		}
		res.PerProc[i] = pb
		res.Breakdown.Merge(&pb)
	}
	for i := 0; i < n; i++ {
		res.Cache = append(res.Cache, m.ccs[i].Stats())
		res.Dir = append(res.Dir, m.dcs[i].Stats())
		if f, ok := m.ccs[i].Mechanism().(*core.FIFO); ok {
			res.FIFODisplacements += f.Displacements
		}
	}
	qs := m.q.Stats()
	res.Kernel = stats.Kernel{
		Events:           qs.Executed,
		Scheduled:        qs.Scheduled,
		PeakQueue:        qs.PeakLen,
		TypedEvents:      qs.Typed,
		PooledDeliveries: m.net.Recycled(),
	}
	res.Blocks = m.cfg.Sink.Metrics() // nil-safe: nil sink, nil metrics
	for _, err := range check.Audit(m.ccs, m.dcs, m.net.InFlight()) {
		res.Errors = append(res.Errors, "audit: "+err.Error())
	}
	return res
}

// deadlocked reports whether the machine stopped with coherence work still
// open: outstanding cache misses, busy directory blocks, or messages in
// flight.
func (m *Machine) deadlocked() bool {
	return worldDeadlocked(m.ccs, m.dcs, m.net.InFlight())
}

// worldDeadlocked is the engine-independent deadlock predicate over a set of
// controllers and an in-flight message count (the parallel engine sums its
// partitions' ports).
func worldDeadlocked(ccs []*proto.CacheCtrl, dcs []*proto.DirCtrl, inFlight int) bool {
	if inFlight != 0 {
		return true
	}
	for _, cc := range ccs {
		if cc.Outstanding() != 0 {
			return true
		}
	}
	for _, dc := range dcs {
		if dc.BusyBlocks() != 0 {
			return true
		}
	}
	return false
}

// diagnoseLimit caps each section of the watchdog dump so a wedged run with
// thousands of open transactions stays readable.
const diagnoseLimit = 24

// diagnose builds the liveness watchdog's structured dump: the stuck
// cache-side transactions, the stuck directory transactions, and the tail
// of the coherence event stream when a sink is attached.
func (m *Machine) diagnose() []string {
	return worldDiagnose(m.q.Len(), m.net.InFlight(), m.ccs, m.dcs, m.cfg.Sink)
}

// worldDiagnose is the engine-independent liveness dump (the parallel engine
// passes summed queue lengths and in-flight counts; its sink is always nil).
func worldDiagnose(queueLen, inFlight int, ccs []*proto.CacheCtrl, dcs []*proto.DirCtrl, sink *obs.Sink) []string {
	out := []string{fmt.Sprintf("liveness: queue len %d, %d messages in flight", queueLen, inFlight)}
	lines := 0
	for n, cc := range ccs {
		for _, om := range cc.DumpOutstanding() {
			if lines++; lines > diagnoseLimit {
				break
			}
			out = append(out, fmt.Sprintf("liveness: node %d stuck %s for %#x txn %d (%d retries, started t=%d)",
				n, om.Op, uint64(om.Addr), om.Txn, om.Retries, om.Start))
		}
	}
	if lines > diagnoseLimit {
		out = append(out, fmt.Sprintf("liveness: ... and %d more stuck cache transactions", lines-diagnoseLimit))
	}
	lines = 0
	for n, dc := range dcs {
		for _, bt := range dc.DumpBusy() {
			if lines++; lines > diagnoseLimit {
				break
			}
			out = append(out, fmt.Sprintf("liveness: home %d stuck txn %d (%v for %#x from node %d) awaiting %v via %v (%d retries, %d queued)",
				n, bt.Txn, bt.Req, uint64(bt.Addr), bt.From, bt.Pending, bt.Action, bt.Retries, bt.Queued))
		}
	}
	if lines > diagnoseLimit {
		out = append(out, fmt.Sprintf("liveness: ... and %d more stuck directory transactions", lines-diagnoseLimit))
	}
	if sk := sink; sk != nil {
		for _, e := range sk.Tail(16) {
			out = append(out, "liveness: recent "+e.String())
		}
	}
	return out
}
