package machine

import (
	"reflect"
	"testing"

	"dsisim/internal/cpu"
	"dsisim/internal/mem"
	"dsisim/internal/proto"
)

// shareProg builds a test program in which every processor streams reads and
// writes over a shared region, generating misses, invalidations, and
// writebacks in proportion to ops.
func shareProg(ops int) *prog {
	return &prog{
		name:  "share",
		setup: func(m *Machine) { m.Layout().AllocInterleaved("share", 64*mem.BlockSize) },
		kernel: func(p *cpu.Proc) {
			for i := 0; i < ops; i++ {
				a := mem.Addr((uint64(i+p.ID()) * 8) % (64 * mem.BlockSize))
				if i%4 == 3 {
					p.WriteWord(a, uint64(i))
				} else {
					p.Read(a)
				}
			}
		},
	}
}

// TestResetReuseBitIdentical is the reuse contract at the machine level: a
// Reset machine must reproduce a fresh machine's result exactly.
func TestResetReuseBitIdentical(t *testing.T) {
	cfg := small(Config{Consistency: proto.SC}, 4)
	fresh := New(cfg).Run(shareProg(500))
	mustClean(t, fresh)

	m := New(cfg)
	mustClean(t, m.Run(shareProg(500)))
	m.Reset(cfg)
	reused := m.Run(shareProg(500))
	mustClean(t, reused)
	if !reflect.DeepEqual(fresh, reused) {
		t.Fatalf("reused machine diverged:\nfresh:  %+v\nreused: %+v", fresh, reused)
	}
}

// TestPoolRecyclesByShape checks that a Pool hands back a parked machine only
// when the requested configuration matches its immutable shape.
func TestPoolRecyclesByShape(t *testing.T) {
	var p Pool
	cfg := small(Config{Consistency: proto.SC}, 4)
	m := p.Get(cfg)
	mustClean(t, m.Run(shareProg(100)))
	p.Put(m)
	if got := p.Get(cfg); got != m {
		t.Fatal("same-shape Get did not recycle the parked machine")
	}
	p.Put(m)
	other := small(Config{Consistency: proto.SC}, 8)
	if got := p.Get(other); got == m {
		t.Fatal("Get recycled a machine with the wrong processor count")
	}
}

// TestWarmRunEventPathAllocFree pins the steady-state allocation contract: on
// a warm (Reset) machine, a full Run's allocations must not scale with the
// number of simulated operations — the event path itself allocates nothing.
// Only the per-run constant (program setup, goroutine starts, result
// assembly) remains.
func TestWarmRunEventPathAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement needs full runs")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; budgets hold only for plain builds")
	}
	cfg := small(Config{Consistency: proto.SC}, 4)
	m := New(cfg)
	// Warm with the largest run so every pool and buffer reaches its
	// high-water mark before measurement.
	mustClean(t, m.Run(shareProg(8000)))

	measure := func(ops int) float64 {
		prog := shareProg(ops)
		return testing.AllocsPerRun(3, func() {
			m.Reset(cfg)
			r := m.Run(prog)
			if r.Failed() {
				t.Fatal(r.Errors[0])
			}
		})
	}
	smallRun := measure(500)
	largeRun := measure(8000)
	if largeRun > smallRun+32 {
		t.Fatalf("allocations scale with operation count: %0.f allocs at 500 ops vs %0.f at 8000 ops",
			smallRun, largeRun)
	}
	if smallRun > 128 {
		t.Fatalf("warm run allocates %0.f objects; the per-run constant should be well under 128", smallRun)
	}
}
