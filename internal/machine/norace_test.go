//go:build !race

package machine

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation adds allocations of its own and would
// trip the exact steady-state budgets.
const raceEnabled = false
