// Package steal implements the work-stealing fan-out runner shared by the
// experiment grids (experiments.RunMatrix) and the soak campaign engine
// (internal/soak). Items are whole, independent simulations — milliseconds
// to seconds each — so the runner optimizes for balance under wildly uneven
// item costs rather than for per-item dispatch overhead: each worker owns a
// deque of contiguous index spans and pops items from its top span; a
// worker that runs dry steals half of a victim's largest remaining span in
// one lock acquisition (chunked stealing), so a worker stuck behind one
// expensive cell sheds the rest of its backlog to idle peers.
//
// Workers are identified by a dense id passed to every callback, which is
// what lets callers keep per-worker state — one machine.Pool per worker, so
// pooled machines are recycled without cross-worker contention — without
// any locking of their own.
//
// The runner makes no ordering promises: callers must key results by item
// index (every caller here writes into a pre-sized slot array or an
// append-only journal keyed by cell index). This package is deliberately
// not in determinism.DefaultSimPackages — it is driver-side orchestration;
// each item's simulation remains internally single-threaded and
// bit-deterministic.
package steal

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// span is a half-open range [lo, hi) of item indices.
type span struct{ lo, hi int }

// deque is one worker's stack of spans. The owner pops single items from
// the top span's front; thieves split the bottom (largest, least recently
// touched) span in half. Both sides take the mutex — items are whole
// simulations, so a lock per item is noise.
type deque struct {
	mu    sync.Mutex
	spans []span
}

// Runner fans the items [0, n) out across a fixed set of workers.
type Runner struct {
	n       int
	deques  []deque
	steals  atomic.Int64
	stolen  atomic.Int64
	started atomic.Bool
}

// New builds a runner for n items and the given worker count. workers <= 0
// selects GOMAXPROCS; the count is clamped to n (but at least 1) so no
// worker starts empty-handed.
func New(n, workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	r := &Runner{n: n, deques: make([]deque, workers)}
	// Initial distribution: one contiguous chunk per worker. Contiguity is
	// what makes chunked stealing meaningful — a stolen half-span is itself
	// a contiguous run of items.
	for w := range r.deques {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo < hi {
			r.deques[w].spans = append(r.deques[w].spans, span{lo, hi})
		}
	}
	return r
}

// Workers returns the effective worker count.
func (r *Runner) Workers() int { return len(r.deques) }

// Steals returns how many steal operations have landed so far (live; safe
// to read concurrently with Run, e.g. from a progress heartbeat).
func (r *Runner) Steals() int64 { return r.steals.Load() }

// Stolen returns how many items have changed owner via steals so far.
func (r *Runner) Stolen() int64 { return r.stolen.Load() }

// Run executes fn(worker, item) for every item in [0, n), fanning out
// across the runner's workers, and blocks until all items are done. fn is
// called at most once per item, concurrently across workers but serially
// within one worker. Run may be called only once per Runner.
func (r *Runner) Run(fn func(worker, item int)) {
	if r.started.Swap(true) {
		panic("steal: Runner.Run called twice")
	}
	if r.n == 0 {
		return
	}
	var wg sync.WaitGroup
	for w := range r.deques {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				item, ok := r.pop(w)
				if !ok {
					item, ok = r.steal(w)
				}
				if !ok {
					return
				}
				fn(w, item)
			}
		}(w)
	}
	wg.Wait()
}

// pop takes the next item from worker w's own deque: the front of the top
// span, so a worker burns through its newest (smallest, stolen-last) work
// first and leaves its big bottom span exposed to thieves.
func (r *Runner) pop(w int) (int, bool) {
	d := &r.deques[w]
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.spans) > 0 {
		top := &d.spans[len(d.spans)-1]
		if top.lo < top.hi {
			item := top.lo
			top.lo++
			if top.lo == top.hi {
				d.spans = d.spans[:len(d.spans)-1]
			}
			return item, true
		}
		d.spans = d.spans[:len(d.spans)-1]
	}
	return 0, false
}

// steal scans the other workers round-robin from w and takes the upper half
// of the first victim span it finds (the whole span when it holds a single
// item). A full scan that comes back empty means every deque is drained —
// the only remaining items are the ones currently executing, which cannot
// be stolen — so the caller can exit.
func (r *Runner) steal(w int) (int, bool) {
	n := len(r.deques)
	for off := 1; off < n; off++ {
		v := &r.deques[(w+off)%n]
		v.mu.Lock()
		for i := range v.spans {
			s := &v.spans[i]
			if s.lo >= s.hi {
				continue
			}
			mid := s.lo + (s.hi-s.lo)/2
			got := span{mid, s.hi}
			if mid == s.lo { // single item: take the whole span
				got = span{s.lo, s.hi}
				s.hi = s.lo
			} else {
				s.hi = mid
			}
			v.mu.Unlock()
			r.steals.Add(1)
			r.stolen.Add(int64(got.hi - got.lo))
			d := &r.deques[w]
			d.mu.Lock()
			item := got.lo
			got.lo++
			if got.lo < got.hi {
				d.spans = append(d.spans, got)
			}
			d.mu.Unlock()
			return item, true
		}
		v.mu.Unlock()
	}
	return 0, false
}
