package steal

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Every item runs exactly once, for assorted item/worker shapes including
// workers > items and a single worker.
func TestRunCoversEveryItemOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {7, 1}, {7, 3}, {100, 4}, {1000, 8}, {5, 16},
	} {
		r := New(tc.n, tc.workers)
		counts := make([]int32, tc.n)
		r.Run(func(w, item int) {
			if w < 0 || w >= r.Workers() {
				t.Errorf("n=%d workers=%d: worker id %d out of range", tc.n, tc.workers, w)
			}
			atomic.AddInt32(&counts[item], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: item %d ran %d times", tc.n, tc.workers, i, c)
			}
		}
	}
}

// A worker id is never used by two goroutines at once: per-worker state
// (the per-worker machine.Pool in the callers) needs no locking.
func TestWorkerIDsAreExclusive(t *testing.T) {
	r := New(500, 8)
	busy := make([]atomic.Bool, r.Workers())
	r.Run(func(w, item int) {
		if busy[w].Swap(true) {
			t.Errorf("worker %d entered concurrently", w)
		}
		busy[w].Store(false)
	})
}

// One expensive item must not serialize the rest of its owner's chunk:
// with 2 workers and one item that blocks until everything else is done,
// the other worker steals the stuck worker's backlog and finishes it.
func TestStealsDrainStuckWorkersBacklog(t *testing.T) {
	const n = 64
	r := New(n, 2)
	var done atomic.Int32
	release := make(chan struct{})
	var once sync.Once
	finish := func() {
		if done.Add(1) == n-1 {
			once.Do(func() { close(release) })
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Run(func(w, item int) {
			if item == 0 {
				// Item 0 is worker 0's first pop; it blocks until every
				// other item — most of them initially worker 0's — is done.
				select {
				case <-release:
				case <-time.After(10 * time.Second):
					t.Error("deadlock: backlog was never stolen")
				}
				return
			}
			finish()
		})
	}()
	wg.Wait()
	if got := done.Load(); got != n-1 {
		t.Fatalf("finished %d of %d unblocked items", got, n-1)
	}
	if r.Steals() == 0 || r.Stolen() == 0 {
		t.Fatalf("expected steals, got %d steals / %d items", r.Steals(), r.Stolen())
	}
}

// Worker-count clamping: <= 0 selects GOMAXPROCS, and the count never
// exceeds the item count.
func TestWorkerClamping(t *testing.T) {
	if got, want := New(100, 0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := New(3, 8).Workers(); got != 3 {
		t.Fatalf("workers clamped to %d, want 3", got)
	}
	if got := New(0, 8).Workers(); got != 1 {
		t.Fatalf("empty runner has %d workers, want 1", got)
	}
}

// Run panics when called twice: the deques are consumed.
func TestRunTwicePanics(t *testing.T) {
	r := New(4, 2)
	r.Run(func(w, item int) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	r.Run(func(w, item int) {})
}
