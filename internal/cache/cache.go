// Package cache implements the node's (second-level) cache as the paper's
// DSI hardware requires: a 4-way set-associative array of 32-byte blocks
// with, per frame,
//
//   - the usual tag/state/LRU metadata,
//   - the s bit marking a block for self-invalidation,
//   - the tear-off flag for untracked copies,
//   - a version-number field that survives invalidation, so a later miss to
//     the same tag can echo the version back to the directory, and
//   - membership in the hardware linked list of marked frames that the
//     flush-at-synchronization mechanism walks.
//
// Policy — when to mark, when to flush, FIFO vs list — lives in
// internal/core; this package is the mechanism.
package cache

import (
	"fmt"

	"dsisim/internal/mem"
)

// State is a cache-side block state. Exclusive is both readable and
// writable and implies the copy may be dirty (the protocol always writes
// back Exclusive copies on eviction or invalidation).
type State int

const (
	Invalid State = iota
	Shared
	Exclusive
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "Invalid"
	case Shared:
		return "Shared"
	case Exclusive:
		return "Exclusive"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Frame is one cache frame. Tag and Ver remain meaningful while
// State == Invalid so the version-number DSI scheme can echo the version of
// a previously-cached block.
type Frame struct {
	Tag     mem.Addr // block address
	State   State
	SI      bool // s bit: block is marked for self-invalidation
	TearOff bool // untracked copy; directory has no record of it
	Ver     uint8
	HasVer  bool
	Data    mem.Value

	lru    uint64
	inList bool // member of the marked-frame list
	// ep is the cache epoch the frame was last written in. A frame whose
	// epoch is behind the cache's is logically empty: Reset bumps the epoch
	// instead of clearing the array, and accessors lazily treat (or rewrite)
	// stale frames as zero. This keeps pooled-machine Reset O(marked) rather
	// than O(frames).
	ep uint32
}

// Valid reports whether the frame holds a usable copy.
func (f *Frame) Valid() bool { return f.State != Invalid }

// Evicted describes a block displaced by a fill or invalidated by a flush;
// the controller turns it into a writeback/notification message.
type Evicted struct {
	Addr    mem.Addr
	State   State
	Data    mem.Value
	SI      bool
	TearOff bool
}

// Config sets the cache geometry. Block size is fixed at mem.BlockSize.
type Config struct {
	SizeBytes int
	Assoc     int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	s := c.SizeBytes / (mem.BlockSize * c.Assoc)
	if s <= 0 || c.SizeBytes%(mem.BlockSize*c.Assoc) != 0 {
		panic(fmt.Sprintf("cache: bad geometry %+v", c))
	}
	return s
}

// Stats counts cache-array events. Controller-level timing is accounted in
// internal/machine; these are structural counts.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	SelfInvals int64 // frames invalidated by the self-invalidation machinery
}

// Cache is the cache array of one node.
type Cache struct {
	cfg    Config
	sets   [][]Frame
	clock  uint64
	epoch  uint32   // frames with ep != epoch are logically empty
	marked []*Frame // the hardware linked list of s-bit frames, arrival order
	stats  Stats

	// flushScratch backs MarkedFlush's result so the per-sync flush walk
	// allocates nothing in steady state. Valid until the next MarkedFlush.
	flushScratch []Evicted
}

// New builds an empty cache.
func New(cfg Config) *Cache {
	n := cfg.Sets()
	sets := make([][]Frame, n)
	frames := make([]Frame, n*cfg.Assoc)
	for i := range sets {
		sets[i] = frames[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return &Cache{cfg: cfg, sets: sets}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the structural counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset empties every frame and clears the marked-frame list, LRU clock, and
// counters, keeping the arrays so a reused machine starts from a cold cache
// without reallocating. Emptying is lazy: bumping the epoch invalidates
// every frame at once, and the array is only physically cleared on the
// (unreachable in practice) epoch wrap.
func (c *Cache) Reset() {
	c.epoch++
	if c.epoch == 0 {
		for _, set := range c.sets {
			for i := range set {
				set[i] = Frame{}
			}
		}
	}
	c.clock = 0
	clear(c.marked)
	c.marked = c.marked[:0]
	c.stats = Stats{}
}

func (c *Cache) set(a mem.Addr) []Frame {
	return c.sets[int(mem.BlockIndex(a))%len(c.sets)]
}

// Lookup returns the frame holding a valid copy of a's block, recording a
// hit or miss and updating LRU on hit.
func (c *Cache) Lookup(a mem.Addr) (*Frame, bool) {
	b := mem.BlockOf(a)
	for i := range c.set(a) {
		f := &c.set(a)[i]
		if f.ep == c.epoch && f.Valid() && f.Tag == b {
			c.clock++
			f.lru = c.clock
			c.stats.Hits++
			return f, true
		}
	}
	c.stats.Misses++
	return nil, false
}

// Peek is Lookup without touching LRU or counters, for checkers and tests.
func (c *Cache) Peek(a mem.Addr) (*Frame, bool) {
	b := mem.BlockOf(a)
	for i := range c.set(a) {
		f := &c.set(a)[i]
		if f.ep == c.epoch && f.Valid() && f.Tag == b {
			return f, true
		}
	}
	return nil, false
}

// EchoVersion returns the stored version for a's block if an invalid frame
// still carries its tag — the condition under which the version-number DSI
// scheme attaches a version to the outgoing miss request.
func (c *Cache) EchoVersion(a mem.Addr) (uint8, bool) {
	b := mem.BlockOf(a)
	for i := range c.set(a) {
		f := &c.set(a)[i]
		if f.ep == c.epoch && !f.Valid() && f.HasVer && f.Tag == b {
			return f.Ver, true
		}
	}
	return 0, false
}

// Fill installs a block. It returns the eviction record if a valid block had
// to be displaced. Fill never evicts a copy of the same block (re-filling an
// existing tag reuses its frame).
type Fill struct {
	State   State
	SI      bool
	TearOff bool
	Ver     uint8
	HasVer  bool
	Data    mem.Value
}

// Install places a's block per fill, returning a displaced valid block if
// any.
func (c *Cache) Install(a mem.Addr, fill Fill) (Evicted, bool) {
	if fill.State == Invalid {
		panic("cache: installing Invalid")
	}
	b := mem.BlockOf(a)
	set := c.set(a)
	victim := -1
	// Prefer: frame already holding this tag (valid or not), then any
	// invalid frame, then LRU.
	for i := range set {
		if set[i].ep == c.epoch && set[i].Tag == b && (set[i].Valid() || set[i].HasVer) {
			victim = i
			break
		}
	}
	if victim < 0 {
		for i := range set {
			if set[i].ep != c.epoch || !set[i].Valid() {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
	}
	f := &set[victim]
	if f.ep != c.epoch {
		*f = Frame{ep: c.epoch}
	}
	var ev Evicted
	evicted := false
	if f.Valid() && f.Tag != b {
		ev = Evicted{Addr: f.Tag, State: f.State, Data: f.Data, SI: f.SI, TearOff: f.TearOff}
		evicted = true
		c.stats.Evictions++
	}
	c.clock++
	f.Tag = b
	f.State = fill.State
	f.SI = fill.SI
	f.TearOff = fill.TearOff
	f.Ver = fill.Ver
	f.HasVer = fill.HasVer
	f.Data = fill.Data
	f.lru = c.clock
	if fill.SI && !f.inList {
		f.inList = true
		c.marked = append(c.marked, f)
	}
	return ev, evicted
}

// Invalidate drops the copy of a's block if present, retaining the tag and
// version so a later miss can echo it. It returns the dropped copy.
func (c *Cache) Invalidate(a mem.Addr) (Evicted, bool) {
	f, ok := c.Peek(a)
	if !ok {
		return Evicted{}, false
	}
	ev := Evicted{Addr: f.Tag, State: f.State, Data: f.Data, SI: f.SI, TearOff: f.TearOff}
	f.State = Invalid
	f.SI = false
	f.TearOff = false
	return ev, true
}

// Downgrade moves a's block from Exclusive to Shared, returning its data for
// the recall response.
func (c *Cache) Downgrade(a mem.Addr) (mem.Value, bool) {
	f, ok := c.Peek(a)
	if !ok || f.State != Exclusive {
		return mem.Value{}, false
	}
	f.State = Shared
	return f.Data, true
}

// SetVersion records the version delivered with a fill or reply for a's
// block, if present.
func (c *Cache) SetVersion(a mem.Addr, ver uint8) {
	if f, ok := c.Peek(a); ok {
		f.Ver = ver
		f.HasVer = true
	}
}

// Mark sets the s bit on a's valid frame (cache-side identification) and
// enters it into the marked list. It reports whether a valid frame was
// marked (false if absent or already marked).
func (c *Cache) Mark(a mem.Addr) bool {
	f, ok := c.Peek(a)
	if !ok || f.SI {
		return false
	}
	f.SI = true
	if !f.inList {
		f.inList = true
		c.marked = append(c.marked, f)
	}
	return true
}

// MarkedFlush walks the hardware list of s-bit frames, invalidates every one
// that still holds a marked valid copy, and returns them in list (arrival)
// order. Tear-off frames are included; callers distinguish them via the
// Evicted record. The list is emptied. The returned slice is scratch state
// reused by the next MarkedFlush call: consume it before flushing again.
func (c *Cache) MarkedFlush() []Evicted {
	out := c.flushScratch[:0]
	for _, f := range c.marked {
		f.inList = false
		if f.Valid() && f.SI {
			out = append(out, Evicted{Addr: f.Tag, State: f.State, Data: f.Data, SI: true, TearOff: f.TearOff})
			f.State = Invalid
			f.SI = false
			f.TearOff = false
			c.stats.SelfInvals++
		}
	}
	c.marked = c.marked[:0]
	c.flushScratch = out
	return out
}

// MarkedLen returns the current length of the marked list (including frames
// whose copies were since displaced), for occupancy reporting.
func (c *Cache) MarkedLen() int { return len(c.marked) }

// SelfInvalidate invalidates a's block if it is still present and marked,
// counting it as a self-invalidation. Used by the FIFO mechanism when an
// entry falls out of the buffer.
func (c *Cache) SelfInvalidate(a mem.Addr) (Evicted, bool) {
	f, ok := c.Peek(a)
	if !ok || !f.SI {
		return Evicted{}, false
	}
	ev := Evicted{Addr: f.Tag, State: f.State, Data: f.Data, SI: true, TearOff: f.TearOff}
	f.State = Invalid
	f.SI = false
	f.TearOff = false
	c.stats.SelfInvals++
	return ev, true
}

// ForEachValid calls fn for every valid frame, for checkers and audits.
func (c *Cache) ForEachValid(fn func(*Frame)) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].ep == c.epoch && set[i].Valid() {
				fn(&set[i])
			}
		}
	}
}

// CountValid returns the number of valid frames.
func (c *Cache) CountValid() int {
	n := 0
	c.ForEachValid(func(*Frame) { n++ })
	return n
}
