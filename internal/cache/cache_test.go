package cache

import (
	"testing"
	"testing/quick"

	"dsisim/internal/mem"
)

func small() *Cache { return New(Config{SizeBytes: 4 * 32 * 2, Assoc: 2}) } // 4 sets, 2-way

func addrForSet(set, n int, numSets int) mem.Addr {
	return mem.Addr((set + n*numSets) * mem.BlockSize)
}

func TestConfigSets(t *testing.T) {
	if s := (Config{SizeBytes: 256 * 1024, Assoc: 4}).Sets(); s != 2048 {
		t.Fatalf("sets = %d, want 2048", s)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry did not panic")
		}
	}()
	_ = Config{SizeBytes: 100, Assoc: 3}.Sets()
}

func TestInstallLookup(t *testing.T) {
	c := small()
	a := mem.Addr(64)
	if _, hit := c.Lookup(a); hit {
		t.Fatal("hit in empty cache")
	}
	c.Install(a, Fill{State: Shared, Data: mem.Value{Writer: 1, Seq: 1}})
	f, hit := c.Lookup(a + 5) // same block
	if !hit || f.State != Shared || f.Data.Seq != 1 {
		t.Fatalf("lookup after install: hit=%v f=%+v", hit, f)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 2-way
	a0 := addrForSet(1, 0, 4)
	a1 := addrForSet(1, 1, 4)
	a2 := addrForSet(1, 2, 4)
	c.Install(a0, Fill{State: Shared})
	c.Install(a1, Fill{State: Shared})
	c.Lookup(a0) // a0 recently used; a1 is LRU
	ev, evicted := c.Install(a2, Fill{State: Shared})
	if !evicted || ev.Addr != a1 {
		t.Fatalf("evicted %+v (%v), want block %#x", ev, evicted, uint64(a1))
	}
	if _, hit := c.Peek(a0); !hit {
		t.Fatal("MRU block was evicted")
	}
}

func TestInstallPrefersInvalidFrame(t *testing.T) {
	c := small()
	a0 := addrForSet(2, 0, 4)
	a1 := addrForSet(2, 1, 4)
	a2 := addrForSet(2, 2, 4)
	c.Install(a0, Fill{State: Shared})
	c.Install(a1, Fill{State: Exclusive})
	c.Invalidate(a0)
	if _, evicted := c.Install(a2, Fill{State: Shared}); evicted {
		t.Fatal("install evicted a valid block while an invalid frame existed")
	}
	if _, hit := c.Peek(a1); !hit {
		t.Fatal("valid block lost")
	}
}

func TestReinstallSameTagNoEviction(t *testing.T) {
	c := small()
	a := mem.Addr(96)
	c.Install(a, Fill{State: Shared})
	if _, evicted := c.Install(a, Fill{State: Exclusive}); evicted {
		t.Fatal("refill of same tag reported eviction")
	}
	f, _ := c.Peek(a)
	if f.State != Exclusive {
		t.Fatalf("state = %v after upgrade refill", f.State)
	}
}

func TestInvalidateRetainsVersion(t *testing.T) {
	c := small()
	a := mem.Addr(128)
	c.Install(a, Fill{State: Shared, Ver: 9, HasVer: true})
	ev, ok := c.Invalidate(a)
	if !ok || ev.State != Shared {
		t.Fatalf("invalidate = %+v %v", ev, ok)
	}
	if v, ok := c.EchoVersion(a); !ok || v != 9 {
		t.Fatalf("EchoVersion = %d,%v; want 9,true", v, ok)
	}
	// Valid copies never echo.
	c.Install(a, Fill{State: Shared, Ver: 10, HasVer: true})
	if _, ok := c.EchoVersion(a); ok {
		t.Fatal("EchoVersion returned for a valid copy")
	}
}

func TestEchoVersionLostOnFrameReuse(t *testing.T) {
	c := small() // 2-way
	a0 := addrForSet(3, 0, 4)
	a1 := addrForSet(3, 1, 4)
	a2 := addrForSet(3, 2, 4)
	c.Install(a0, Fill{State: Shared, Ver: 4, HasVer: true})
	c.Invalidate(a0)
	// Two new blocks displace both frames of the set.
	c.Install(a1, Fill{State: Shared})
	c.Install(a2, Fill{State: Shared})
	if _, ok := c.EchoVersion(a0); ok {
		t.Fatal("version survived frame reuse")
	}
}

func TestDowngrade(t *testing.T) {
	c := small()
	a := mem.Addr(160)
	c.Install(a, Fill{State: Exclusive, Data: mem.Value{Writer: 2, Seq: 5}})
	v, ok := c.Downgrade(a)
	if !ok || v.Seq != 5 {
		t.Fatalf("downgrade = %v,%v", v, ok)
	}
	f, _ := c.Peek(a)
	if f.State != Shared {
		t.Fatalf("state after downgrade = %v", f.State)
	}
	if _, ok := c.Downgrade(a); ok {
		t.Fatal("downgrade of Shared succeeded")
	}
}

func TestMarkedFlushOrderAndClearing(t *testing.T) {
	c := New(Config{SizeBytes: 16 * 32 * 4, Assoc: 4})
	addrs := []mem.Addr{32, 64, 96}
	for _, a := range addrs {
		c.Install(a, Fill{State: Shared, SI: true})
	}
	c.Install(128, Fill{State: Shared}) // unmarked
	out := c.MarkedFlush()
	if len(out) != 3 {
		t.Fatalf("flushed %d, want 3", len(out))
	}
	for i, ev := range out {
		if ev.Addr != addrs[i] {
			t.Fatalf("flush order: got %#x at %d, want %#x", uint64(ev.Addr), i, uint64(addrs[i]))
		}
	}
	for _, a := range addrs {
		if _, hit := c.Peek(a); hit {
			t.Fatalf("block %#x survived flush", uint64(a))
		}
	}
	if _, hit := c.Peek(128); !hit {
		t.Fatal("unmarked block flushed")
	}
	if len(c.MarkedFlush()) != 0 {
		t.Fatal("second flush not empty")
	}
	if c.Stats().SelfInvals != 3 {
		t.Fatalf("self-inval count = %d", c.Stats().SelfInvals)
	}
}

func TestMarkedFlushSkipsDisplacedAndInvalidated(t *testing.T) {
	c := New(Config{SizeBytes: 16 * 32 * 4, Assoc: 4})
	c.Install(32, Fill{State: Shared, SI: true})
	c.Install(64, Fill{State: Shared, SI: true})
	c.Invalidate(32) // explicitly invalidated before the sync point
	out := c.MarkedFlush()
	if len(out) != 1 || out[0].Addr != 64 {
		t.Fatalf("flush = %+v, want only block 64", out)
	}
}

func TestMarkedListNoDuplicates(t *testing.T) {
	c := New(Config{SizeBytes: 16 * 32 * 4, Assoc: 4})
	c.Install(32, Fill{State: Shared, SI: true})
	c.Invalidate(32)
	c.Install(32, Fill{State: Exclusive, SI: true}) // same frame re-marked before any flush
	if c.MarkedLen() != 1 {
		t.Fatalf("marked list len = %d, want 1 (no duplicate entries)", c.MarkedLen())
	}
	out := c.MarkedFlush()
	if len(out) != 1 || out[0].State != Exclusive {
		t.Fatalf("flush = %+v", out)
	}
}

func TestSelfInvalidateOnlyMarked(t *testing.T) {
	c := small()
	c.Install(32, Fill{State: Shared})
	if _, ok := c.SelfInvalidate(32); ok {
		t.Fatal("self-invalidated an unmarked block")
	}
	c.Install(64, Fill{State: Exclusive, SI: true, Data: mem.Value{Writer: 1, Seq: 2}})
	ev, ok := c.SelfInvalidate(64)
	if !ok || ev.State != Exclusive || ev.Data.Seq != 2 {
		t.Fatalf("self-invalidate = %+v,%v", ev, ok)
	}
	if _, hit := c.Peek(64); hit {
		t.Fatal("block survived self-invalidation")
	}
}

func TestTearOffFlagRoundTrip(t *testing.T) {
	c := small()
	c.Install(32, Fill{State: Shared, SI: true, TearOff: true})
	f, _ := c.Peek(32)
	if !f.TearOff || !f.SI {
		t.Fatalf("frame = %+v", f)
	}
	out := c.MarkedFlush()
	if len(out) != 1 || !out[0].TearOff {
		t.Fatalf("flush lost tear-off flag: %+v", out)
	}
}

// Property: the number of valid frames never exceeds capacity, and a block
// just installed is always present.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{SizeBytes: 8 * 32 * 2, Assoc: 2})
		capacity := 16
		for _, op := range ops {
			a := mem.Addr(op%64) * mem.BlockSize
			switch op % 3 {
			case 0:
				c.Install(a, Fill{State: Shared})
				if _, hit := c.Peek(a); !hit {
					return false
				}
			case 1:
				c.Install(a, Fill{State: Exclusive, SI: op%5 == 0})
			case 2:
				c.Invalidate(a)
				if _, hit := c.Peek(a); hit {
					return false
				}
			}
			if c.CountValid() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after any op sequence, every marked-list flush returns only
// blocks that were valid and marked, and afterwards no valid frame has the
// s bit set.
func TestFlushClearsAllMarksProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{SizeBytes: 8 * 32 * 2, Assoc: 2})
		for _, op := range ops {
			a := mem.Addr(op%32) * mem.BlockSize
			c.Install(a, Fill{State: Shared, SI: op%2 == 0})
		}
		for _, ev := range c.MarkedFlush() {
			if !ev.SI {
				return false
			}
		}
		ok := true
		c.ForEachValid(func(f *Frame) {
			if f.SI {
				ok = false
			}
		})
		return ok && c.MarkedLen() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
