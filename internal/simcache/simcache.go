package simcache

import (
	"strconv"
	"sync"
	"unsafe"

	"dsisim/internal/machine"
	"dsisim/internal/stats"
)

// Cache is a bounded, concurrency-safe result store. Do either returns a
// cached Result for a key or computes it exactly once, even when many
// goroutines ask for the same key at the same moment (singleflight): the
// first caller computes while the rest wait on the entry and then read the
// stored value.
//
// A nil *Cache is valid and disabled: Do simply runs the compute function.
// That lets call sites thread an optional cache without nil checks.
type Cache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	m      map[Key]*entry
	// LRU list: head is most recently used, tail the eviction candidate.
	head, tail *entry

	hits, misses, evictions, waits int64
}

// entry is one cached (or in-flight) result. done is open while the first
// caller computes; waiters block on it and re-check the map afterwards.
type entry struct {
	key        Key
	res        machine.Result
	size       int64
	done       chan struct{}
	prev, next *entry
}

// New returns a cache that evicts least-recently-used results once stored
// bytes exceed budgetBytes. A budget <= 0 means unbounded.
func New(budgetBytes int64) *Cache {
	return &Cache{budget: budgetBytes, m: make(map[Key]*entry)}
}

// Do returns the Result for key, computing it with compute on a miss. The
// second return reports whether the result came from the cache. Results for
// failed runs (Result.Failed()) are returned but never stored, so
// re-running a failing cell always re-executes it — triage and flake
// classification see real runs.
func (c *Cache) Do(key Key, compute func() machine.Result) (machine.Result, bool) {
	if c == nil {
		return compute(), false
	}
	for {
		c.mu.Lock()
		if e, ok := c.m[key]; ok {
			if e.done == nil {
				c.hits++
				c.touch(e)
				res := e.res
				c.mu.Unlock()
				return res, true
			}
			// Another caller is computing this key right now: wait for it,
			// then loop to re-check. The entry may be gone if that compute
			// failed — the loop then recomputes here.
			c.waits++
			done := e.done
			c.mu.Unlock()
			<-done
			continue
		}
		e := &entry{key: key, done: make(chan struct{})}
		c.m[key] = e
		c.misses++
		c.mu.Unlock()

		res := compute()

		c.mu.Lock()
		if res.Failed() {
			delete(c.m, key)
		} else {
			e.res = res
			e.size = resultSize(&res)
			c.bytes += e.size
			c.pushFront(e)
			c.evict()
		}
		done := e.done
		e.done = nil
		c.mu.Unlock()
		close(done)
		return res, false
	}
}

// touch moves e to the LRU head. Caller holds mu.
func (c *Cache) touch(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// pushFront links e at the LRU head. Caller holds mu.
func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the LRU list. Caller holds mu.
func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evict drops LRU-tail entries until the byte budget holds, always keeping
// at least one entry so a single oversized result still caches. Caller
// holds mu.
func (c *Cache) evict() {
	if c.budget <= 0 {
		return
	}
	for c.bytes > c.budget && len(c.m) > 1 && c.tail != nil {
		e := c.tail
		c.unlink(e)
		delete(c.m, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// Stats is a point-in-time snapshot of cache behaviour.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Waits counts singleflight suspensions: calls that found the key
	// in-flight and blocked instead of recomputing.
	Waits   int64
	Bytes   int64
	Entries int64
}

// Stats snapshots the counters. Safe on a nil cache (all zero).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Waits: c.waits, Bytes: c.bytes, Entries: int64(len(c.m)),
	}
}

// Counters renders the snapshot for the stats/obs counter surface.
func (s Stats) Counters() []stats.Counter {
	return []stats.Counter{
		{Name: "simcache.hits", Value: s.Hits},
		{Name: "simcache.misses", Value: s.Misses},
		{Name: "simcache.evictions", Value: s.Evictions},
		{Name: "simcache.waits", Value: s.Waits},
		{Name: "simcache.bytes", Value: s.Bytes},
		{Name: "simcache.entries", Value: s.Entries},
	}
}

// Table renders the snapshot as the repo's standard results table — the
// campaign-summary surface cmd/dsibench prints next to the experiment
// artifacts.
func (s Stats) Table() stats.Table {
	t := stats.Table{Title: "Result cache", Header: []string{"counter", "value"}}
	for _, c := range s.Counters() {
		t.AddRow(c.Name, strconv.FormatInt(c.Value, 10))
	}
	return t
}

// resultSize estimates the retained footprint of a Result: the struct
// itself plus the backing arrays of its slices and strings. Good to within
// allocator rounding — the budget is a pressure valve, not an accounting
// ledger.
func resultSize(r *machine.Result) int64 {
	size := int64(unsafe.Sizeof(*r))
	size += int64(len(r.Program))
	if n := len(r.PerProc); n > 0 {
		size += int64(n) * int64(unsafe.Sizeof(r.PerProc[0]))
	}
	if n := len(r.Cache); n > 0 {
		size += int64(n) * int64(unsafe.Sizeof(r.Cache[0]))
	}
	if n := len(r.Dir); n > 0 {
		size += int64(n) * int64(unsafe.Sizeof(r.Dir[0]))
	}
	for _, e := range r.Errors {
		size += int64(unsafe.Sizeof(e)) + int64(len(e))
	}
	return size
}
