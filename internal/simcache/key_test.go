package simcache

import (
	"testing"

	"dsisim/internal/faultinj"
	"dsisim/internal/machine"
	"dsisim/internal/proto"
)

// fullRequest returns a request with every field set to a distinctive
// non-zero value, so single-field perturbation tests exercise real state.
func fullRequest() Request {
	return Request{
		Workload: "em3d", Scale: "test", Protocol: "W+DSI",
		Processors: 8, CacheBytes: 2048, CacheAssoc: 4,
		NetworkLatency: 40, BarrierLatency: 100,
		WriteBufferEntries: 16, SharerLimit: 8,
		Seed: 0x5eed, MaxSteps: 1 << 20, Workers: 1,
		Retry: &proto.RetryConfig{Timeout: 5000, Max: 10, QueueLimit: 4},
		Faults: &faultinj.Config{
			Seed: 99, Drop: 0.01, Dup: 0.002, Delay: 0.05, Jitter: 20,
			DropByKind: map[int]float64{1: 0.1, 3: 0.2},
			DropByLink: map[[2]int]float64{{0, 1}: 0.3, {2, 0}: 0.4},
			Rules: []faultinj.Rule{
				{Kind: 2, Src: 0, Dst: 1, Nth: 3, Action: faultinj.Drop},
				{Kind: -1, Src: -1, Dst: -1, Nth: 0, Action: faultinj.Delay, Delay: 7},
			},
		},
	}
}

func TestKeyFieldOrderIndependence(t *testing.T) {
	fields := []uint64{
		fieldHash("workload", fnv("em3d")),
		fieldHash("processors", 8),
		fieldHash("seed", 0x5eed),
		fieldHash("retry", 1, 5000, 10, 4),
	}
	var fwd, rev digest
	for _, f := range fields {
		fwd.absorb(f)
	}
	for i := len(fields) - 1; i >= 0; i-- {
		rev.absorb(fields[i])
	}
	if fwd.key() != rev.key() {
		t.Fatalf("digest is absorb-order sensitive: %v vs %v", fwd.key(), rev.key())
	}
}

func TestKeyDeterministic(t *testing.T) {
	a, b := fullRequest(), fullRequest()
	// Rebuild the maps in a different insertion order: iteration order must
	// not leak into the key.
	b.Faults.DropByKind = map[int]float64{3: 0.2, 1: 0.1}
	b.Faults.DropByLink = map[[2]int]float64{{2, 0}: 0.4, {0, 1}: 0.3}
	if a.Key() != b.Key() {
		t.Fatalf("equal requests hash differently: %v vs %v", a.Key(), b.Key())
	}
}

// TestKeyPerturbation flips every field of a fully-populated request one at
// a time and checks each flip moves the key — no field is silently dropped
// from the identity.
func TestKeyPerturbation(t *testing.T) {
	base := fullRequest().Key()
	cases := []struct {
		name string
		mut  func(*Request)
	}{
		{"workload", func(r *Request) { r.Workload = "ocean" }},
		{"scale", func(r *Request) { r.Scale = "paper" }},
		{"protocol", func(r *Request) { r.Protocol = "V" }},
		{"processors", func(r *Request) { r.Processors = 16 }},
		{"cachebytes", func(r *Request) { r.CacheBytes = 4096 }},
		{"cacheassoc", func(r *Request) { r.CacheAssoc = 2 }},
		{"netlatency", func(r *Request) { r.NetworkLatency = 41 }},
		{"barlatency", func(r *Request) { r.BarrierLatency = 99 }},
		{"wbentries", func(r *Request) { r.WriteBufferEntries = 8 }},
		{"sharerlimit", func(r *Request) { r.SharerLimit = 4 }},
		{"seed", func(r *Request) { r.Seed++ }},
		{"maxsteps", func(r *Request) { r.MaxSteps++ }},
		{"workers", func(r *Request) { r.Workers = 4 }},
		{"retry-nil", func(r *Request) { r.Retry = nil }},
		{"retry-timeout", func(r *Request) { r.Retry.Timeout++ }},
		{"retry-max", func(r *Request) { r.Retry.Max++ }},
		{"retry-queuelimit", func(r *Request) { r.Retry.QueueLimit++ }},
		{"faults-nil", func(r *Request) { r.Faults = nil }},
		{"fault-seed", func(r *Request) { r.Faults.Seed++ }},
		{"fault-drop", func(r *Request) { r.Faults.Drop = 0.02 }},
		{"fault-dup", func(r *Request) { r.Faults.Dup = 0.003 }},
		{"fault-delay", func(r *Request) { r.Faults.Delay = 0.06 }},
		{"fault-jitter", func(r *Request) { r.Faults.Jitter = 21 }},
		{"fault-dropbykind", func(r *Request) { r.Faults.DropByKind[1] = 0.15 }},
		{"fault-dropbylink", func(r *Request) { r.Faults.DropByLink[[2]int{0, 1}] = 0.35 }},
		{"fault-rule-nth", func(r *Request) { r.Faults.Rules[0].Nth = 4 }},
		{"fault-rule-action", func(r *Request) { r.Faults.Rules[1].Action = faultinj.Duplicate }},
		{"fault-rule-order", func(r *Request) {
			r.Faults.Rules[0], r.Faults.Rules[1] = r.Faults.Rules[1], r.Faults.Rules[0]
		}},
		{"fault-rule-extra", func(r *Request) {
			r.Faults.Rules = append(r.Faults.Rules, faultinj.Rule{Kind: 5, Action: faultinj.Drop})
		}},
	}
	seen := map[Key]string{base: "base"}
	for _, tc := range cases {
		r := fullRequest()
		// fullRequest rebuilds the maps/slices each call, so mutations never
		// alias across cases.
		tc.mut(&r)
		k := r.Key()
		if k == base {
			t.Errorf("%s: perturbation did not change the key", tc.name)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("%s: key collides with %s", tc.name, prev)
		}
		seen[k] = tc.name
	}
}

// TestKeyNilVsZeroDistinct pins the nil-presence bits: a nil Retry/Faults
// must not collide with a zero-valued one.
func TestKeyNilVsZeroDistinct(t *testing.T) {
	r := fullRequest()
	r.Retry = nil
	r.Faults = nil
	withNil := r.Key()
	r.Retry = &proto.RetryConfig{}
	r.Faults = &faultinj.Config{}
	if r.Key() == withNil {
		t.Fatal("nil and zero-valued Retry/Faults hash to the same key")
	}
}

func TestRequestOfRoundTrip(t *testing.T) {
	cfg := machine.Config{
		Processors: 8, CacheBytes: 2048, CacheAssoc: 4,
		NetworkLatency: 40, BarrierLatency: 100,
		WriteBufferEntries: 16, SharerLimit: 8,
		Seed: 0x5eed, MaxSteps: 1 << 20, Workers: 1,
		Retry:  &proto.RetryConfig{Timeout: 5000, Max: 10, QueueLimit: 4},
		Faults: &faultinj.Config{Seed: 99, Drop: 0.01},
	}
	a := RequestOf("em3d", "test", "W+DSI", cfg)
	b := RequestOf("em3d", "test", "W+DSI", cfg)
	if a.Key() != b.Key() {
		t.Fatal("RequestOf is not stable for an identical config")
	}
	cfg.Seed++
	if RequestOf("em3d", "test", "W+DSI", cfg).Key() == a.Key() {
		t.Fatal("config seed not part of the request identity")
	}
	if RequestOf("em3d", "test", "V", cfg).Key() == RequestOf("em3d", "test", "W+DSI", cfg).Key() {
		t.Fatal("protocol label not part of the request identity")
	}
}
