// Package simcache is the content-addressed result cache above the
// simulation kernel. The simulator is fully deterministic: a cell's
// (workload, protocol, machine parameters, fault plan, seed) completely
// determines its Result, so identical requests can be computed once and
// served from memory thereafter — the ROADMAP's service north-star, where
// millions of users hitting the same popular configurations cost one
// simulation each.
//
// The cache is keyed by a canonical digest of the request (this file), holds
// results under an LRU byte budget, and deduplicates concurrent identical
// requests with singleflight semantics (simcache.go). Cached results are
// bit-identical to freshly computed ones: the Result struct is returned by
// value and its slices are treated as read-only by every caller, exactly as
// the rest of the repo already treats Results held in experiment matrices.
package simcache

import (
	"math"
	"sort"

	"dsisim/internal/faultinj"
	"dsisim/internal/machine"
	"dsisim/internal/proto"
)

// SchemaVersion tags every key. Bump it whenever the Result layout or any
// protocol/workload semantics change, so entries cached by an older build
// can never be mistaken for current ones (relevant once keys outlive a
// process — e.g. a persistent or networked cache tier).
const SchemaVersion = 1

// Key is the 128-bit canonical digest of a Request. Two Requests with equal
// Keys describe the same deterministic cell.
type Key struct {
	Hi, Lo uint64
}

// Request names one simulation cell at the request level — the identity a
// service front-end would hash: registry workload and scale by name,
// protocol by label (labels map 1:1 onto (consistency, policy) pairs), and
// the machine parameters that shape the run. Zero-valued fields hash as
// zero: a caller that relies on machine.Config defaults gets a different
// key than one that spells the same values out, which can only cause a
// spurious miss, never a wrong hit.
type Request struct {
	Workload string // registry name, e.g. "em3d", "zipf"
	Scale    string // "test" or "paper"
	Protocol string // experiment/fuzz label, e.g. "SC", "V", "W+DSI"

	Processors         int
	CacheBytes         int
	CacheAssoc         int
	NetworkLatency     int64
	BarrierLatency     int64
	WriteBufferEntries int
	SharerLimit        int
	Seed               uint64
	MaxSteps           uint64
	// Workers is part of the identity: parallel-delivery runs (Workers >= 2)
	// are deterministic but not bit-identical to Workers=1 runs.
	Workers int

	Retry  *proto.RetryConfig
	Faults *faultinj.Config
}

// RequestOf builds the canonical request for a machine config plus the
// workload/scale/protocol names the caller resolved it from. Configs with a
// Tracer or Sink attached have side effects beyond the Result and must not
// be cached — callers gate on that before asking for a key.
func RequestOf(workload, scale, protocol string, cfg machine.Config) Request {
	return Request{
		Workload: workload, Scale: scale, Protocol: protocol,
		Processors: cfg.Processors, CacheBytes: cfg.CacheBytes, CacheAssoc: cfg.CacheAssoc,
		NetworkLatency: int64(cfg.NetworkLatency), BarrierLatency: int64(cfg.BarrierLatency),
		WriteBufferEntries: cfg.WriteBufferEntries, SharerLimit: cfg.SharerLimit,
		Seed: cfg.Seed, MaxSteps: cfg.MaxSteps, Workers: cfg.Workers,
		Retry: cfg.Retry, Faults: cfg.Faults,
	}
}

// Key returns the request's canonical digest. Each field is hashed
// independently as a (name, values) pair and the per-field hashes are
// combined commutatively, so the digest depends on which fields hold which
// values but not on the order they are absorbed — canonicalization by
// construction rather than by careful ordering, and directly testable.
func (r Request) Key() Key {
	var d digest
	d.absorb(fieldHash("schema", SchemaVersion))
	d.absorb(fieldHash("workload", fnv(r.Workload)))
	d.absorb(fieldHash("scale", fnv(r.Scale)))
	d.absorb(fieldHash("protocol", fnv(r.Protocol)))
	d.absorb(fieldHash("processors", uint64(r.Processors)))
	d.absorb(fieldHash("cachebytes", uint64(r.CacheBytes)))
	d.absorb(fieldHash("cacheassoc", uint64(r.CacheAssoc)))
	d.absorb(fieldHash("netlatency", uint64(r.NetworkLatency)))
	d.absorb(fieldHash("barlatency", uint64(r.BarrierLatency)))
	d.absorb(fieldHash("wbentries", uint64(r.WriteBufferEntries)))
	d.absorb(fieldHash("sharerlimit", uint64(r.SharerLimit)))
	d.absorb(fieldHash("seed", r.Seed))
	d.absorb(fieldHash("maxsteps", r.MaxSteps))
	d.absorb(fieldHash("workers", uint64(r.Workers)))
	absorbRetry(&d, r.Retry)
	absorbFaults(&d, r.Faults)
	return d.key()
}

// absorbRetry hashes the retry config, distinguishing nil (strict protocol)
// from a zero-valued config (hardened with zero parameters).
func absorbRetry(d *digest, rc *proto.RetryConfig) {
	if rc == nil {
		d.absorb(fieldHash("retry", 0))
		return
	}
	d.absorb(fieldHash("retry", 1, uint64(rc.Timeout), uint64(rc.Max), uint64(rc.QueueLimit)))
}

// absorbFaults hashes the fault plan. Map-shaped knobs (DropByKind,
// DropByLink) are sorted into a canonical order first; Rules stay in slice
// order because rule order is semantically meaningful (each rule counts its
// own Nth matches).
func absorbFaults(d *digest, fc *faultinj.Config) {
	if fc == nil {
		d.absorb(fieldHash("faults", 0))
		return
	}
	d.absorb(fieldHash("faults", 1))
	d.absorb(fieldHash("fault.seed", fc.Seed))
	d.absorb(fieldHash("fault.drop", math.Float64bits(fc.Drop)))
	d.absorb(fieldHash("fault.dup", math.Float64bits(fc.Dup)))
	d.absorb(fieldHash("fault.delay", math.Float64bits(fc.Delay)))
	d.absorb(fieldHash("fault.jitter", uint64(fc.Jitter)))
	if len(fc.DropByKind) > 0 {
		kinds := make([]int, 0, len(fc.DropByKind))
		//dsi:anyorder the keys are sorted before hashing
		for k := range fc.DropByKind {
			kinds = append(kinds, k)
		}
		sort.Ints(kinds)
		vals := make([]uint64, 0, 2*len(kinds))
		for _, k := range kinds {
			vals = append(vals, uint64(k), math.Float64bits(fc.DropByKind[k]))
		}
		d.absorb(fieldHash("fault.dropbykind", vals...))
	}
	if len(fc.DropByLink) > 0 {
		links := make([][2]int, 0, len(fc.DropByLink))
		//dsi:anyorder the links are sorted before hashing
		for l := range fc.DropByLink {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i][0] != links[j][0] {
				return links[i][0] < links[j][0]
			}
			return links[i][1] < links[j][1]
		})
		vals := make([]uint64, 0, 3*len(links))
		for _, l := range links {
			vals = append(vals, uint64(l[0]), uint64(l[1]), math.Float64bits(fc.DropByLink[l]))
		}
		d.absorb(fieldHash("fault.dropbylink", vals...))
	}
	if len(fc.Rules) > 0 {
		vals := make([]uint64, 0, 6*len(fc.Rules))
		for _, r := range fc.Rules {
			vals = append(vals,
				uint64(r.Kind), uint64(r.Src), uint64(r.Dst),
				uint64(r.Nth), uint64(r.Action), uint64(r.Delay))
		}
		d.absorb(fieldHash("fault.rules", vals...))
	}
}

// digest accumulates per-field hashes in two commutative lanes (sum and
// xor) plus a count, then finalizes both into a 128-bit key. Commutativity
// is what makes the digest field-order independent; the two independent
// lanes and the splitmix finalizer keep accidental cancellation at
// birthday-bound odds.
type digest struct {
	sum, xor uint64
	n        uint64
}

func (d *digest) absorb(field uint64) {
	d.sum += field
	d.xor ^= field
	d.n++
}

func (d *digest) key() Key {
	return Key{
		Hi: mix(d.sum ^ mix(d.xor^d.n)),
		Lo: mix(d.xor + mix(d.sum+d.n)),
	}
}

// fieldHash hashes one (name, values) pair: the fnv of the name seeds a
// splitmix chain over the values, so values are order-sensitive within a
// field while fields stay order-free across the digest.
func fieldHash(name string, vals ...uint64) uint64 {
	x := fnv(name)
	for _, v := range vals {
		x = mix(x ^ v*0x9e3779b97f4a7c15)
	}
	return mix(x ^ uint64(len(vals)))
}

// fnv is the 64-bit FNV-1a string hash.
func fnv(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// mix is the splitmix64 finalizer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
