package simcache

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"dsisim/internal/machine"
	"dsisim/internal/stats"
)

func fakeResult(tag string, procs int) machine.Result {
	return machine.Result{
		Program:   tag,
		ExecTime:  12345,
		Breakdown: stats.Breakdown{Cycles: [stats.NumCategories]int64{100, 50}},
		PerProc:   make([]stats.Breakdown, procs),
	}
}

func TestCacheHitReturnsIdenticalResult(t *testing.T) {
	c := New(1 << 20)
	key := Key{Hi: 1, Lo: 2}
	computes := 0
	compute := func() machine.Result {
		computes++
		return fakeResult("r1", 8)
	}
	first, cached := c.Do(key, compute)
	if cached {
		t.Fatal("first Do reported a cache hit")
	}
	second, cached := c.Do(key, compute)
	if !cached {
		t.Fatal("second Do missed")
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached result differs from computed: %+v vs %+v", first, second)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
}

func TestCacheDistinctKeysDistinctResults(t *testing.T) {
	c := New(1 << 20)
	r1, _ := c.Do(Key{Hi: 1}, func() machine.Result { return fakeResult("a", 2) })
	r2, _ := c.Do(Key{Hi: 2}, func() machine.Result { return fakeResult("b", 2) })
	g1, hit1 := c.Do(Key{Hi: 1}, func() machine.Result { t.Fatal("recompute"); return machine.Result{} })
	g2, hit2 := c.Do(Key{Hi: 2}, func() machine.Result { t.Fatal("recompute"); return machine.Result{} })
	if !hit1 || !hit2 {
		t.Fatal("expected hits on both keys")
	}
	if g1.Program != r1.Program || g2.Program != r2.Program {
		t.Fatalf("results crossed keys: %q/%q vs %q/%q", g1.Program, g2.Program, r1.Program, r2.Program)
	}
}

func TestCacheNilDisabled(t *testing.T) {
	var c *Cache
	computes := 0
	for i := 0; i < 3; i++ {
		res, cached := c.Do(Key{Hi: 9}, func() machine.Result {
			computes++
			return fakeResult("x", 1)
		})
		if cached {
			t.Fatal("nil cache reported a hit")
		}
		if res.Program != "x" {
			t.Fatalf("nil cache mangled the result: %q", res.Program)
		}
	}
	if computes != 3 {
		t.Fatalf("nil cache memoized: %d computes, want 3", computes)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", s)
	}
}

func TestCacheFailedResultsNotStored(t *testing.T) {
	c := New(1 << 20)
	key := Key{Hi: 7}
	computes := 0
	bad := func() machine.Result {
		computes++
		r := fakeResult("bad", 1)
		r.Errors = []string{"deadlock: no runnable events"}
		return r
	}
	for i := 0; i < 2; i++ {
		res, cached := c.Do(key, bad)
		if cached || !res.Failed() {
			t.Fatalf("run %d: cached=%v failed=%v, want fresh failure", i, cached, res.Failed())
		}
	}
	if computes != 2 {
		t.Fatalf("failed result was memoized: %d computes, want 2", computes)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("failed result retained: %+v", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	one := resultSize(&machine.Result{})
	// Budget for roughly three bare results.
	c := New(3*one + one/2)
	for i := uint64(0); i < 5; i++ {
		c.Do(Key{Hi: i}, func() machine.Result { return machine.Result{ExecTime: 1} })
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget after 5 inserts: %+v", c.budget, s)
	}
	if s.Bytes > c.budget {
		t.Fatalf("stored bytes %d exceed budget %d", s.Bytes, c.budget)
	}
	// The most recent key must have survived; the oldest must be gone.
	if _, hit := c.Do(Key{Hi: 4}, func() machine.Result { return machine.Result{} }); !hit {
		t.Fatal("most recently inserted key was evicted")
	}
	if _, hit := c.Do(Key{Hi: 0}, func() machine.Result { return machine.Result{} }); hit {
		t.Fatal("least recently used key survived eviction")
	}
}

func TestCacheLRUTouchOnHit(t *testing.T) {
	one := resultSize(&machine.Result{})
	c := New(2*one + one/2)
	c.Do(Key{Hi: 1}, func() machine.Result { return machine.Result{} })
	c.Do(Key{Hi: 2}, func() machine.Result { return machine.Result{} })
	// Touch key 1 so key 2 becomes the eviction candidate.
	if _, hit := c.Do(Key{Hi: 1}, func() machine.Result { return machine.Result{} }); !hit {
		t.Fatal("warm key missed")
	}
	c.Do(Key{Hi: 3}, func() machine.Result { return machine.Result{} })
	if _, hit := c.Do(Key{Hi: 1}, func() machine.Result { return machine.Result{} }); !hit {
		t.Fatal("recently touched key was evicted")
	}
}

func TestCacheOversizedResultStillCaches(t *testing.T) {
	c := New(1) // absurdly small budget
	key := Key{Hi: 11}
	c.Do(key, func() machine.Result { return fakeResult("big", 32) })
	if _, hit := c.Do(key, func() machine.Result { return machine.Result{} }); !hit {
		t.Fatal("single oversized result was not retained")
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("entries = %d, want 1", s.Entries)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := New(1 << 20)
	key := Key{Hi: 42}
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	const callers = 8
	results := make([]machine.Result, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	go func() {
		// First caller: blocks inside compute until released.
		defer wg.Done()
		results[0], _ = c.Do(key, func() machine.Result {
			close(started)
			<-release
			computes.Add(1)
			return fakeResult("sf", 4)
		})
	}()
	<-started
	for i := 1; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], _ = c.Do(key, func() machine.Result {
				computes.Add(1)
				return fakeResult("sf", 4)
			})
		}(i)
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
	if s := c.Stats(); s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
}

func TestCacheSingleflightFailedComputeRetries(t *testing.T) {
	c := New(1 << 20)
	key := Key{Hi: 43}
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	var waiterCached bool
	go func() {
		defer wg.Done()
		c.Do(key, func() machine.Result {
			close(started)
			<-release
			return machine.Result{Errors: []string{"boom"}}
		})
	}()
	<-started
	go func() {
		defer wg.Done()
		// This caller blocks on the in-flight failure, then recomputes.
		_, waiterCached = c.Do(key, func() machine.Result {
			return fakeResult("ok", 1)
		})
	}()
	close(release)
	wg.Wait()
	if waiterCached {
		t.Fatal("waiter reported a hit off a failed compute")
	}
	if _, hit := c.Do(key, func() machine.Result { return machine.Result{} }); !hit {
		t.Fatal("waiter's successful recompute was not stored")
	}
}

func TestStatsCounters(t *testing.T) {
	s := Stats{Hits: 3, Misses: 2, Evictions: 1, Waits: 4, Bytes: 500, Entries: 2}
	cs := s.Counters()
	want := map[string]int64{
		"simcache.hits": 3, "simcache.misses": 2, "simcache.evictions": 1,
		"simcache.waits": 4, "simcache.bytes": 500, "simcache.entries": 2,
	}
	if len(cs) != len(want) {
		t.Fatalf("got %d counters, want %d", len(cs), len(want))
	}
	for _, ctr := range cs {
		if want[ctr.Name] != ctr.Value {
			t.Errorf("%s = %d, want %d", ctr.Name, ctr.Value, want[ctr.Name])
		}
	}
}
