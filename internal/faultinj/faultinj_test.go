package faultinj

import "testing"

// decideSeq runs a fixed call sequence against a fresh plan and returns the
// decisions.
func decideSeq(cfg Config, n int) []Decision {
	p := New(cfg)
	out := make([]Decision, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, p.Decide(i%7, i%4, (i+1)%4, true))
	}
	return out
}

func TestDeterministicDecisions(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.1, Dup: 0.05, Delay: 0.2, Jitter: 30}
	a := decideSeq(cfg, 5000)
	b := decideSeq(cfg, 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	faults := 0
	for _, d := range a {
		if d.Action != Deliver {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("plan with nonzero probabilities injected no faults in 5000 sends")
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	a := decideSeq(Config{Seed: 1, Drop: 0.3}, 2000)
	b := decideSeq(Config{Seed: 2, Drop: 0.3}, 2000)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision streams")
	}
}

func TestNonDroppableConversion(t *testing.T) {
	p := New(Config{Seed: 7, Drop: 1, Jitter: 10})
	for i := 0; i < 100; i++ {
		d := p.Decide(3, 0, 1, false)
		if d.Action != Delay {
			t.Fatalf("non-droppable kind got action %v, want delay", d.Action)
		}
		if d.Delay < 1 || d.Delay > 10 {
			t.Fatalf("converted delay %d outside [1, 10]", d.Delay)
		}
	}
	st := p.Stats()
	if st.Converted != 100 || st.Delayed != 100 || st.Dropped != 0 {
		t.Fatalf("conversion stats: %+v", st)
	}
}

func TestScriptedNthRule(t *testing.T) {
	cfg := Config{Rules: []Rule{
		{Kind: 5, Src: -1, Dst: 7, Nth: 3, Action: Drop},
	}}
	p := New(cfg)
	for i := 1; i <= 5; i++ {
		d := p.Decide(5, 2, 7, true)
		want := Deliver
		if i == 3 {
			want = Drop
		}
		if d.Action != want {
			t.Fatalf("occurrence %d: got %v, want %v", i, d.Action, want)
		}
		if i == 3 && !d.Scripted {
			t.Fatal("fired rule not marked scripted")
		}
	}
	// Non-matching traffic must not advance the counter.
	if d := p.Decide(4, 2, 7, true); d.Action != Deliver {
		t.Fatalf("non-matching kind got %v", d.Action)
	}
	if hits := p.RuleHits(); hits[0] != 5 {
		t.Fatalf("rule hits = %d, want 5", hits[0])
	}
}

func TestScriptedDropOverridesDroppable(t *testing.T) {
	// Scripted rules may drop kinds the probabilistic model only delays.
	p := New(Config{Rules: []Rule{{Kind: -1, Src: -1, Dst: -1, Nth: 1, Action: Drop}}})
	if d := p.Decide(0, 0, 1, false); d.Action != Drop {
		t.Fatalf("scripted drop on non-droppable kind got %v", d.Action)
	}
}

func TestScriptedEveryOccurrence(t *testing.T) {
	p := New(Config{Rules: []Rule{{Kind: 2, Src: 0, Dst: 1, Action: Delay, Delay: 9}}})
	for i := 0; i < 3; i++ {
		d := p.Decide(2, 0, 1, true)
		if d.Action != Delay || d.Delay != 9 {
			t.Fatalf("occurrence %d: %+v", i, d)
		}
	}
}

func TestPerKindAndPerLinkOverrides(t *testing.T) {
	cfg := Config{
		Seed:       3,
		DropByKind: map[int]float64{4: 1},
		DropByLink: map[[2]int]float64{{2, 3}: 1},
	}
	p := New(cfg)
	if d := p.Decide(4, 0, 1, true); d.Action != Drop {
		t.Fatalf("per-kind override: got %v, want drop", d.Action)
	}
	if d := p.Decide(0, 2, 3, true); d.Action != Drop {
		t.Fatalf("per-link override: got %v, want drop", d.Action)
	}
	if d := p.Decide(0, 1, 2, true); d.Action != Deliver {
		t.Fatalf("unmatched traffic: got %v, want deliver", d.Action)
	}
}

func TestParse(t *testing.T) {
	kinds := func(s string) (int, bool) {
		if s == "Inv" {
			return 6, true
		}
		return 0, false
	}
	cfg, err := Parse("drop=0.05, dup=0.01, delay=0.2, jitter=40, seed=7, dropkind=Inv:0.5, droplink=2-5:0.25", kinds)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Drop != 0.05 || cfg.Dup != 0.01 || cfg.Delay != 0.2 || cfg.Jitter != 40 || cfg.Seed != 7 {
		t.Fatalf("parsed config: %+v", cfg)
	}
	if cfg.DropByKind[6] != 0.5 {
		t.Fatalf("dropkind: %+v", cfg.DropByKind)
	}
	if cfg.DropByLink[[2]int{2, 5}] != 0.25 {
		t.Fatalf("droplink: %+v", cfg.DropByLink)
	}
	if !cfg.Enabled() {
		t.Fatal("parsed config not Enabled")
	}

	if cfg, err := Parse("", nil); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec: cfg=%+v err=%v", cfg, err)
	}
	if cfg, err := Parse("dropkind=9:1", nil); err != nil || cfg.DropByKind[9] != 1 {
		t.Fatalf("numeric kind: cfg=%+v err=%v", cfg, err)
	}

	for _, bad := range []string{
		"bogus=1", "drop=2", "drop=-0.5", "drop", "jitter=-3",
		"dropkind=Nope:0.5", "dropkind=Inv", "droplink=2:0.5", "droplink=a-b:0.5",
	} {
		if _, err := Parse(bad, kinds); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	p := New(Config{Seed: 11, Delay: 1, Jitter: 5})
	for i := 0; i < 200; i++ {
		d := p.Decide(0, 0, 1, true)
		if d.Action != Delay || d.Delay < 1 || d.Delay > 5 {
			t.Fatalf("decision %d: %+v", i, d)
		}
	}
	// Zero jitter falls back to DefaultJitter.
	p = New(Config{Seed: 11, Delay: 1})
	for i := 0; i < 200; i++ {
		if d := p.Decide(0, 0, 1, true); d.Delay < 1 || d.Delay > DefaultJitter {
			t.Fatalf("default jitter decision %d: %+v", i, d)
		}
	}
}

func TestActionString(t *testing.T) {
	want := map[Action]string{Deliver: "deliver", Drop: "drop", Duplicate: "dup", Delay: "delay"}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("Action(%d).String() = %q, want %q", a, a.String(), s)
		}
	}
	if NumActions.String() != "Action(4)" {
		t.Errorf("out-of-range String: %q", NumActions.String())
	}
}
