// Package faultinj provides deterministic fault injection for the simulated
// interconnect. A Plan is built once from a Config and consulted by netsim on
// every network Send; it decides — reproducibly, from a splitmix64 stream
// seeded via internal/rng — whether that message is delivered normally,
// dropped, duplicated, or delayed.
//
// Two classes of faults coexist:
//
//   - Probabilistic faults (Drop/Dup/Delay probabilities, optionally
//     overridden per message kind or per directed link) model a lossy,
//     jittery network. Messages whose loss is unrecoverable by the protocol
//     (single-copy data carriers such as writebacks; netsim tells us via the
//     droppable argument) are never probabilistically dropped or duplicated:
//     those decisions are converted into a bounded extra delay instead, so a
//     fault plan perturbs timing without destroying data the protocol has no
//     end-to-end retention for.
//   - Scripted faults (Rules) target a specific occurrence of a specific
//     message ("drop the 3rd Inv to node 7") for white-box regression tests.
//     Scripted rules bypass the droppable conversion: a test that wants to
//     lose a writeback on purpose may do so.
//
// The package deliberately does not import netsim: message kinds are plain
// ints here, and netsim (which imports faultinj) supplies the droppable
// classification. Determinism is load-bearing — the plan draws exclusively
// from internal/rng, so two runs with the same seed and config make
// bit-identical decisions (dsivet's determinism checker enforces the
// no-math/rand, no-wall-clock rules for this package).
package faultinj

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dsisim/internal/event"
	"dsisim/internal/rng"
)

// Action is the fate a Decision assigns to one message send.
type Action uint8

const (
	// Deliver leaves the message untouched.
	Deliver Action = iota
	// Drop loses the message: it consumes injection bandwidth but is never
	// delivered.
	Drop
	// Duplicate delivers the message and a second identical copy after an
	// extra delay.
	Duplicate
	// Delay delivers the message after a bounded extra delay.
	Delay

	// NumActions bounds the enum for exhaustive switches.
	NumActions
)

var actionNames = [NumActions]string{"deliver", "drop", "dup", "delay"}

// String implements fmt.Stringer.
func (a Action) String() string {
	if a >= NumActions {
		return "Action(" + strconv.Itoa(int(a)) + ")"
	}
	return actionNames[a]
}

// Rule is one scripted fault: it matches messages by kind, source, and
// destination (each -1 = wildcard) and applies Action to the Nth match
// (1-based; Nth == 0 applies to every match). Rules are consulted in order;
// the first rule that fires wins, but every rule whose matcher matches has
// its occurrence counter advanced, so independent rules count independently
// of one another's firing.
type Rule struct {
	Kind int // netsim.Kind as int; -1 matches any kind
	Src  int // source node; -1 matches any
	Dst  int // destination node; -1 matches any
	Nth  int // 1-based occurrence to hit; 0 = every occurrence

	Action Action
	Delay  event.Time // extra delay for Delay, spacing for Duplicate; 0 = drawn from jitter
}

// Config describes a fault plan. The zero value injects nothing.
type Config struct {
	// Seed seeds the plan's private splitmix64 stream. Two plans with equal
	// Config make identical decisions for identical call sequences.
	Seed uint64

	// Drop, Dup, and Delay are per-message probabilities in [0, 1] for the
	// corresponding fault. They are evaluated in that order and at most one
	// fault applies per send.
	Drop  float64
	Dup   float64
	Delay float64

	// Jitter bounds the extra delay attached to Delay faults, Duplicate
	// copies, and converted drops: delays are drawn uniformly from
	// [1, Jitter]. Zero selects DefaultJitter.
	Jitter event.Time

	// DropByKind overrides Drop for specific message kinds (keyed by
	// netsim.Kind as int). nil = no overrides.
	DropByKind map[int]float64

	// DropByLink overrides Drop (after DropByKind) for specific directed
	// links, keyed by [src, dst]. nil = no overrides.
	DropByLink map[[2]int]float64

	// Rules are scripted faults, consulted before the probabilistic draws.
	Rules []Rule
}

// Enabled reports whether the config injects any fault at all.
func (c *Config) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Delay > 0 ||
		len(c.DropByKind) > 0 || len(c.DropByLink) > 0 || len(c.Rules) > 0
}

// DefaultJitter is the delay bound used when Config.Jitter is zero.
const DefaultJitter event.Time = 16

// Stats counts the decisions a plan has made.
type Stats struct {
	Decisions  int64 // total Decide calls
	Dropped    int64 // messages dropped
	Duplicated int64 // messages duplicated
	Delayed    int64 // messages delayed (including conversions)
	Converted  int64 // drop/dup decisions on non-droppable kinds downgraded to delays
	Scripted   int64 // decisions taken by a scripted rule
}

// Decision is the outcome of consulting the plan for one message send.
type Decision struct {
	Action Action
	// Delay is the extra delivery delay for Delay, or the spacing of the
	// second copy for Duplicate. Always >= 1 for those actions.
	Delay event.Time
	// Scripted marks a decision forced by a Rule. Scripted drops and
	// duplicates apply even to message kinds the probabilistic model would
	// only delay.
	Scripted bool
}

// Plan is an instantiated fault plan. It is not safe for concurrent use —
// like the rest of the simulator it runs single-threaded under the event
// queue.
type Plan struct {
	cfg   Config
	rng   *rng.RNG
	hits  []int // per-rule occurrence counters
	stats Stats

	// kindDrop/kindSet are the DropByKind overrides compiled at New time into
	// a dense table indexed by kind, and linkDrop the DropByLink overrides
	// sorted by (src, dst), so Decide never hashes a map key on the hot path.
	kindDrop []float64
	kindSet  []bool
	linkDrop []linkOverride
}

// linkOverride is one compiled DropByLink entry.
type linkOverride struct {
	src, dst int
	prob     float64
}

// New builds a plan from cfg. The config is copied; mutating cfg afterwards
// does not affect the plan.
func New(cfg Config) *Plan {
	p := &Plan{
		cfg: cfg,
		rng: rng.New(cfg.Seed),
	}
	if len(cfg.Rules) > 0 {
		p.cfg.Rules = append([]Rule(nil), cfg.Rules...)
		p.hits = make([]int, len(cfg.Rules))
	}
	if len(cfg.DropByKind) > 0 {
		maxKind := 0
		//dsi:anyorder computing a max over distinct keys is order-independent
		for k := range cfg.DropByKind {
			if k > maxKind {
				maxKind = k
			}
		}
		p.kindDrop = make([]float64, maxKind+1)
		p.kindSet = make([]bool, maxKind+1)
		//dsi:anyorder dense-table writes to distinct keys are order-independent
		for k, v := range cfg.DropByKind {
			if k >= 0 {
				p.kindDrop[k] = v
				p.kindSet[k] = true
			}
		}
	}
	if len(cfg.DropByLink) > 0 {
		p.linkDrop = make([]linkOverride, 0, len(cfg.DropByLink))
		//dsi:anyorder the entries are sorted by (src, dst) below
		for k, v := range cfg.DropByLink {
			p.linkDrop = append(p.linkDrop, linkOverride{src: k[0], dst: k[1], prob: v})
		}
		sort.Slice(p.linkDrop, func(i, j int) bool {
			if p.linkDrop[i].src != p.linkDrop[j].src {
				return p.linkDrop[i].src < p.linkDrop[j].src
			}
			return p.linkDrop[i].dst < p.linkDrop[j].dst
		})
	}
	return p
}

// Stats returns a copy of the plan's decision counters.
func (p *Plan) Stats() Stats { return p.stats }

// RuleHits returns the per-rule match counters (how many messages matched
// each scripted rule's criteria, whether or not the rule fired). The slice
// aliases plan state; callers must not mutate it.
func (p *Plan) RuleHits() []int { return p.hits }

// Decide assigns a fate to one message send. kind is the netsim.Kind as an
// int; droppable reports whether the protocol can recover from losing this
// kind (false converts probabilistic drop/dup into delay). Decide draws from
// the plan's private stream, so call order determines the decision sequence.
//
//dsi:hotpath
func (p *Plan) Decide(kind, src, dst int, droppable bool) Decision {
	p.stats.Decisions++
	for i := range p.cfg.Rules {
		r := &p.cfg.Rules[i]
		if r.Kind >= 0 && r.Kind != kind {
			continue
		}
		if r.Src >= 0 && r.Src != src {
			continue
		}
		if r.Dst >= 0 && r.Dst != dst {
			continue
		}
		p.hits[i]++
		if r.Nth != 0 && p.hits[i] != r.Nth {
			continue
		}
		return p.scripted(r)
	}

	dropP := p.cfg.Drop
	if kind >= 0 && kind < len(p.kindSet) && p.kindSet[kind] {
		dropP = p.kindDrop[kind]
	}
	for i := range p.linkDrop {
		if p.linkDrop[i].src == src && p.linkDrop[i].dst == dst {
			dropP = p.linkDrop[i].prob
			break
		}
	}
	if dropP > 0 && p.rng.Float64() < dropP {
		if !droppable {
			return p.convert()
		}
		p.stats.Dropped++
		return Decision{Action: Drop}
	}
	if p.cfg.Dup > 0 && p.rng.Float64() < p.cfg.Dup {
		if !droppable {
			return p.convert()
		}
		p.stats.Duplicated++
		return Decision{Action: Duplicate, Delay: p.jitter()}
	}
	if p.cfg.Delay > 0 && p.rng.Float64() < p.cfg.Delay {
		p.stats.Delayed++
		return Decision{Action: Delay, Delay: p.jitter()}
	}
	return Decision{}
}

// scripted finalizes a fired rule into a decision.
//
//dsi:hotpath
func (p *Plan) scripted(r *Rule) Decision {
	p.stats.Scripted++
	d := Decision{Action: r.Action, Delay: r.Delay, Scripted: true}
	switch r.Action {
	case Deliver:
	case Drop:
		p.stats.Dropped++
		d.Delay = 0
	case Duplicate:
		p.stats.Duplicated++
		if d.Delay <= 0 {
			d.Delay = p.jitter()
		}
	case Delay:
		p.stats.Delayed++
		if d.Delay <= 0 {
			d.Delay = p.jitter()
		}
	case NumActions:
		panic("faultinj: invalid rule action")
	}
	return d
}

// convert downgrades a probabilistic drop/dup on a non-droppable kind into a
// bounded delay.
//
//dsi:hotpath
func (p *Plan) convert() Decision {
	p.stats.Converted++
	p.stats.Delayed++
	return Decision{Action: Delay, Delay: p.jitter()}
}

// jitter draws an extra delay uniformly from [1, Jitter].
//
//dsi:hotpath
func (p *Plan) jitter() event.Time {
	j := p.cfg.Jitter
	if j <= 0 {
		j = DefaultJitter
	}
	return 1 + event.Time(p.rng.Uint64()%uint64(j))
}

// Parse builds a Config from a comma-separated spec string, e.g.
//
//	drop=0.05,dup=0.01,delay=0.2,jitter=40,seed=7
//	drop=0.1,dropkind=Inv:0.5,droplink=2-5:0.25
//
// Recognized keys:
//
//	seed=<uint>          stream seed (default 0)
//	drop=<p>             global drop probability
//	dup=<p>              duplication probability
//	delay=<p>            delay probability
//	jitter=<cycles>      delay bound (default DefaultJitter)
//	dropkind=<kind>:<p>  per-kind drop override; repeatable
//	droplink=<s>-<d>:<p> per-link drop override; repeatable
//
// kindByName resolves message-kind names (and decimal kind numbers) for
// dropkind; pass nil to accept numeric kinds only. An empty spec yields the
// zero Config.
func Parse(spec string, kindByName func(string) (int, bool)) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return cfg, fmt.Errorf("faultinj: %q: want key=value", field)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 0, 64)
		case "drop":
			cfg.Drop, err = parseProb(val)
		case "dup":
			cfg.Dup, err = parseProb(val)
		case "delay":
			cfg.Delay, err = parseProb(val)
		case "jitter":
			var j int64
			j, err = strconv.ParseInt(val, 0, 64)
			if err == nil && j < 0 {
				err = fmt.Errorf("negative jitter")
			}
			cfg.Jitter = event.Time(j)
		case "dropkind":
			name, pstr, ok := strings.Cut(val, ":")
			if !ok {
				return cfg, fmt.Errorf("faultinj: %q: want dropkind=<kind>:<p>", field)
			}
			kind, kerr := resolveKind(name, kindByName)
			if kerr != nil {
				return cfg, fmt.Errorf("faultinj: %q: %v", field, kerr)
			}
			var prob float64
			if prob, err = parseProb(pstr); err == nil {
				if cfg.DropByKind == nil {
					cfg.DropByKind = make(map[int]float64)
				}
				cfg.DropByKind[kind] = prob
			}
		case "droplink":
			link, pstr, ok := strings.Cut(val, ":")
			srcStr, dstStr, ok2 := strings.Cut(link, "-")
			if !ok || !ok2 {
				return cfg, fmt.Errorf("faultinj: %q: want droplink=<src>-<dst>:<p>", field)
			}
			src, serr := strconv.Atoi(strings.TrimSpace(srcStr))
			dst, derr := strconv.Atoi(strings.TrimSpace(dstStr))
			if serr != nil || derr != nil || src < 0 || dst < 0 {
				return cfg, fmt.Errorf("faultinj: %q: bad link nodes", field)
			}
			var prob float64
			if prob, err = parseProb(pstr); err == nil {
				if cfg.DropByLink == nil {
					cfg.DropByLink = make(map[[2]int]float64)
				}
				cfg.DropByLink[[2]int{src, dst}] = prob
			}
		default:
			return cfg, fmt.Errorf("faultinj: unknown key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("faultinj: %q: %v", field, err)
		}
	}
	return cfg, nil
}

// parseProb parses a probability and range-checks it.
func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

// resolveKind resolves a message-kind name or decimal number.
func resolveKind(name string, kindByName func(string) (int, bool)) (int, error) {
	name = strings.TrimSpace(name)
	if n, err := strconv.Atoi(name); err == nil {
		if n < 0 {
			return 0, fmt.Errorf("negative kind %d", n)
		}
		return n, nil
	}
	if kindByName != nil {
		if k, ok := kindByName(name); ok {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown message kind %q", name)
}
