package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFIFOWithinSameTime(t *testing.T) {
	var q Queue
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5, func() { order = append(order, i) })
	}
	q.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (same-time events must run in insertion order)", i, v, i)
		}
	}
}

func TestTimeOrdering(t *testing.T) {
	var q Queue
	var order []Time
	for _, at := range []Time{30, 10, 20, 10, 0} {
		at := at
		q.At(at, func() { order = append(order, at) })
	}
	end := q.Run()
	want := []Time{0, 10, 10, 20, 30}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if end != 30 {
		t.Fatalf("final time = %d, want 30", end)
	}
}

func TestClockAdvancesDuringEvent(t *testing.T) {
	var q Queue
	var seen Time
	q.At(7, func() { seen = q.Now() })
	q.Run()
	if seen != 7 {
		t.Fatalf("Now() inside event = %d, want 7", seen)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var q Queue
	var hit Time
	q.At(10, func() {
		q.After(5, func() { hit = q.Now() })
	})
	q.Run()
	if hit != 15 {
		t.Fatalf("After fired at %d, want 15", hit)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var q Queue
	q.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		q.At(5, func() {})
	})
	q.Run()
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	var q Queue
	ran := 0
	q.At(5, func() { ran++ })
	q.At(10, func() { ran++ })
	q.At(15, func() { ran++ })
	if drained := q.RunUntil(10); drained {
		t.Fatal("RunUntil(10) reported drained with an event at 15 pending")
	}
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if q.Len() != 1 {
		t.Fatalf("pending = %d, want 1", q.Len())
	}
}

func TestRunStepsWatchdog(t *testing.T) {
	var q Queue
	// A self-perpetuating event chain must be stoppable.
	var rearm func()
	rearm = func() { q.After(1, rearm) }
	q.After(1, rearm)
	if n := q.RunSteps(100); n != 100 {
		t.Fatalf("RunSteps = %d, want 100", n)
	}
}

func TestServerSerializes(t *testing.T) {
	var s Server
	start, done := s.Admit(0, 3)
	if start != 0 || done != 3 {
		t.Fatalf("first admit = (%d,%d), want (0,3)", start, done)
	}
	// Admitted while busy: queues behind.
	start, done = s.Admit(1, 4)
	if start != 3 || done != 7 {
		t.Fatalf("second admit = (%d,%d), want (3,7)", start, done)
	}
	// Admitted after idle gap: starts immediately.
	start, done = s.Admit(100, 2)
	if start != 100 || done != 102 {
		t.Fatalf("third admit = (%d,%d), want (100,102)", start, done)
	}
	if s.Busy() != 9 {
		t.Fatalf("busy = %d, want 9", s.Busy())
	}
}

func TestServerZeroOccupancy(t *testing.T) {
	var s Server
	s.Admit(0, 5)
	start, done := s.Admit(0, 0)
	if start != 5 || done != 5 {
		t.Fatalf("zero-occupancy admit = (%d,%d), want (5,5)", start, done)
	}
}

// Property: for any admission sequence, service intervals never overlap and
// respect both arrival order and arrival times.
func TestServerNoOverlapProperty(t *testing.T) {
	f := func(arrivals []uint8, durs []uint8) bool {
		var s Server
		now := Time(0)
		prevDone := Time(0)
		n := len(arrivals)
		if len(durs) < n {
			n = len(durs)
		}
		for i := 0; i < n; i++ {
			now += Time(arrivals[i] % 16)
			d := Time(durs[i] % 8)
			start, done := s.Admit(now, d)
			if start < now || start < prevDone || done != start+d {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypedPathInterleavesWithClosures(t *testing.T) {
	var q Queue
	var order []int
	push := func(arg any) { order = append(order, *arg.(*int)) }
	vals := [4]int{0, 1, 2, 3}
	q.At(5, func() { order = append(order, vals[0]) })
	q.AtCall(5, push, &vals[1])
	q.At(5, func() { order = append(order, vals[2]) })
	q.AtCall(5, push, &vals[3])
	q.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want [0 1 2 3] (typed and closure events share one FIFO order)", order)
		}
	}
}

func TestAfterCallSchedulesRelative(t *testing.T) {
	var q Queue
	var hit Time
	q.AtCall(10, func(arg any) {
		arg.(*Queue).AfterCall(5, func(any) { hit = q.Now() }, nil)
	}, &q)
	q.Run()
	if hit != 15 {
		t.Fatalf("AfterCall fired at %d, want 15", hit)
	}
}

func TestStatsCounters(t *testing.T) {
	var q Queue
	q.At(1, func() {})
	q.AtCall(2, func(any) {}, nil)
	q.AtCall(3, func(any) {}, nil)
	if s := q.Stats(); s.PeakLen != 3 {
		t.Fatalf("PeakLen = %d, want 3", s.PeakLen)
	}
	q.Run()
	s := q.Stats()
	if s.Executed != 3 || s.Scheduled != 3 || s.Typed != 2 {
		t.Fatalf("Stats = %+v, want Executed=3 Scheduled=3 Typed=2", s)
	}
}

func TestReset(t *testing.T) {
	var q Queue
	q.At(1, func() {})
	q.At(2, func() { t.Error("event survived Reset") })
	q.Step()
	q.Reset()
	if q.Now() != 0 || q.Len() != 0 {
		t.Fatalf("after Reset: now=%d len=%d, want 0, 0", q.Now(), q.Len())
	}
	if s := q.Stats(); s != (Stats{}) {
		t.Fatalf("after Reset: Stats = %+v, want zero", s)
	}
	// The queue must be fully reusable with fresh ordering state.
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		q.At(5, func() { order = append(order, i) })
	}
	q.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("post-Reset order = %v, want insertion order", order)
		}
	}
}

func TestSeqWraparoundPanics(t *testing.T) {
	var q Queue
	q.seq = ^uint64(0) // next increment wraps to 0
	defer func() {
		if recover() == nil {
			t.Error("sequence wraparound did not panic")
		}
	}()
	q.At(1, func() {})
}

// TestHeapOrderingFuzz drives the 4-ary heap with random interleavings of
// pushes and pops and checks every pop sequence against a reference sort by
// (time, seq). This is the heap-shape test: the public ordering properties
// above can't distinguish a correct heap from one that works only for
// monotone schedules.
func TestHeapOrderingFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var q Queue
		type rec struct {
			at  Time
			seq int
		}
		var scheduled, popped []rec
		n := 0
		for op := 0; op < 400; op++ {
			if q.Len() > 0 && rng.Intn(3) == 0 {
				q.Step() // pops the minimum and runs its closure
				continue
			}
			at := q.Now() + Time(rng.Intn(50))
			r := rec{at, n}
			n++
			scheduled = append(scheduled, r)
			q.At(at, func() { popped = append(popped, r) })
		}
		q.Run()
		sort.Slice(scheduled, func(i, j int) bool {
			if scheduled[i].at != scheduled[j].at {
				return scheduled[i].at < scheduled[j].at
			}
			return scheduled[i].seq < scheduled[j].seq
		})
		if len(popped) != len(scheduled) {
			t.Fatalf("trial %d: popped %d of %d events", trial, len(popped), len(scheduled))
		}
		for i := range scheduled {
			if popped[i] != scheduled[i] {
				t.Fatalf("trial %d: pop %d = %+v, reference sort has %+v",
					trial, i, popped[i], scheduled[i])
			}
		}
	}
}

// TestHeapSoAPayloadIntegrityFuzz targets the structure-of-arrays split: the
// heap lanes (keys/slots) move during sifts while payload bodies stay put in
// the side pool and slots are recycled across pops. Each scheduled event
// carries a unique payload identity, mixing typed and closure bodies; every
// pop must surface the body that was scheduled with its key, and the pool
// must not grow beyond the peak number of pending events (slot recycling).
func TestHeapSoAPayloadIntegrityFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		var q Queue
		type rec struct {
			at    Time
			seq   int
			typed bool
		}
		var scheduled, popped []rec
		ids := make([]rec, 0, 600)
		popID := func(arg any) { popped = append(popped, *arg.(*rec)) }
		n := 0
		for op := 0; op < 600; op++ {
			if q.Len() > 0 && rng.Intn(3) == 0 {
				q.Step()
				continue
			}
			at := q.Now() + Time(rng.Intn(40))
			r := rec{at: at, seq: n, typed: rng.Intn(2) == 0}
			n++
			scheduled = append(scheduled, r)
			ids = append(ids, r)
			id := &ids[len(ids)-1]
			if r.typed {
				q.AtCall(at, popID, id)
			} else {
				q.At(at, func() { popped = append(popped, *id) })
			}
		}
		peak := q.Stats().PeakLen
		if got := len(q.pays); got > peak {
			t.Fatalf("trial %d: payload pool has %d slots for peak %d pending (slots not recycled)",
				trial, got, peak)
		}
		q.Run()
		sort.Slice(scheduled, func(i, j int) bool {
			if scheduled[i].at != scheduled[j].at {
				return scheduled[i].at < scheduled[j].at
			}
			return scheduled[i].seq < scheduled[j].seq
		})
		if len(popped) != len(scheduled) {
			t.Fatalf("trial %d: popped %d of %d events", trial, len(popped), len(scheduled))
		}
		for i := range scheduled {
			if popped[i] != scheduled[i] {
				t.Fatalf("trial %d: pop %d delivered payload %+v, key order says %+v",
					trial, i, popped[i], scheduled[i])
			}
		}
	}
}

// TestNextAtAndLastSeq pins the accessors the batching and parallel layers
// build on: NextAt peeks the earliest pending time without running anything,
// and LastSeq advances exactly once per scheduled event.
func TestNextAtAndLastSeq(t *testing.T) {
	var q Queue
	if _, ok := q.NextAt(); ok {
		t.Fatal("NextAt on empty queue reported an event")
	}
	s0 := q.LastSeq()
	q.At(9, func() {})
	q.At(4, func() {})
	if q.LastSeq() != s0+2 {
		t.Fatalf("LastSeq = %d after two schedules from %d", q.LastSeq(), s0)
	}
	if at, ok := q.NextAt(); !ok || at != 4 {
		t.Fatalf("NextAt = (%d, %v), want (4, true)", at, ok)
	}
	q.Step()
	if at, ok := q.NextAt(); !ok || at != 9 {
		t.Fatalf("NextAt after one step = (%d, %v), want (9, true)", at, ok)
	}
}

// Property: events run in nondecreasing time order, and same-time events run
// in insertion order.
func TestQueueOrderingProperty(t *testing.T) {
	f := func(times []uint8) bool {
		var q Queue
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, tt := range times {
			i, at := i, Time(tt%32)
			q.At(at, func() { got = append(got, rec{at, i}) })
		}
		q.Run()
		if len(got) != len(times) {
			return false
		}
		seen := make(map[Time]int)
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
		}
		for _, r := range got {
			if last, ok := seen[r.at]; ok && r.seq < last {
				return false
			}
			seen[r.at] = r.seq
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
