// Package event provides the deterministic discrete-event kernel that drives
// the simulator. Events are ordered by (time, insertion sequence), so two
// runs that schedule the same events in the same order produce identical
// executions regardless of map iteration order or goroutine scheduling.
package event

import "container/heap"

// Time is a simulated clock value in processor cycles.
type Time int64

// Func is an event body. It runs exactly once, at the time it was scheduled
// for, with the Queue's clock already advanced to that time.
type Func func()

type item struct {
	at  Time
	seq uint64
	fn  Func
}

type itemHeap []item

func (h itemHeap) Len() int { return len(h) }

func (h itemHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *itemHeap) Push(x any) { *h = append(*h, x.(item)) }

func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Queue is a discrete-event scheduler. The zero value is ready to use with
// the clock at time 0.
type Queue struct {
	now  Time
	seq  uint64
	heap itemHeap
	ran  uint64
}

// Now returns the current simulated time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Executed returns the total number of events that have run.
func (q *Queue) Executed() uint64 { return q.ran }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a protocol timing bug, not a recoverable condition.
func (q *Queue) At(t Time, fn Func) {
	if t < q.now {
		panic("event: scheduled in the past")
	}
	q.seq++
	heap.Push(&q.heap, item{at: t, seq: q.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (q *Queue) After(d Time, fn Func) {
	if d < 0 {
		panic("event: negative delay")
	}
	q.At(q.now+d, fn)
}

// Step runs the single earliest pending event, advancing the clock to its
// time. It reports whether an event ran.
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	it := heap.Pop(&q.heap).(item)
	q.now = it.at
	q.ran++
	it.fn()
	return true
}

// Run executes events until the queue drains, returning the final time.
func (q *Queue) Run() Time {
	for q.Step() {
	}
	return q.now
}

// RunUntil executes events with time ≤ limit. Events scheduled beyond the
// limit remain queued. It reports whether the queue drained.
func (q *Queue) RunUntil(limit Time) bool {
	for len(q.heap) > 0 && q.heap[0].at <= limit {
		q.Step()
	}
	return len(q.heap) == 0
}

// RunSteps executes at most n events; it reports how many ran. Useful as a
// watchdog in tests that must terminate even if a protocol livelocks.
func (q *Queue) RunSteps(n uint64) uint64 {
	var i uint64
	for ; i < n; i++ {
		if !q.Step() {
			break
		}
	}
	return i
}

// Server models a resource that serves one item at a time (a cache
// controller, a directory controller, a network interface). Admit returns
// the interval during which the resource processes a request admitted now:
// requests queue FIFO behind whatever the server is already committed to.
type Server struct {
	freeAt Time
	busy   Time // total occupied cycles, for utilization stats
}

// Admit reserves the server for dur cycles starting no earlier than now,
// returning the start and completion times of the reservation.
func (s *Server) Admit(now Time, dur Time) (start, done Time) {
	if dur < 0 {
		panic("event: negative occupancy")
	}
	start = now
	if s.freeAt > start {
		start = s.freeAt
	}
	done = start + dur
	s.freeAt = done
	s.busy += dur
	return start, done
}

// FreeAt returns the earliest time a new admission could start service.
func (s *Server) FreeAt() Time { return s.freeAt }

// Busy returns the cumulative cycles the server has been occupied.
func (s *Server) Busy() Time { return s.busy }
