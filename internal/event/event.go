// Package event provides the deterministic discrete-event kernel that drives
// the simulator. Events are ordered by (time, insertion sequence), so two
// runs that schedule the same events in the same order produce identical
// executions regardless of map iteration order or goroutine scheduling.
//
// The queue is a hand-specialized 4-ary min-heap in structure-of-arrays
// layout: the heap proper holds only the 16-byte (time, seq) ordering keys
// plus a 4-byte payload slot index, while the event bodies (fn/act/arg) live
// in a stable side pool addressed by slot. Sift-up and sift-down therefore
// move 20 bytes per level instead of a full 48-byte event record, and the
// key lane packs three heap entries per cache line. No container/heap, no
// interface boxing, no per-event allocation. Callers on hot paths use the
// typed path (AtCall/AfterCall), which dispatches a static Action with a
// caller-pooled argument instead of a fresh closure; the closure path
// (At/After) remains for cold call sites. Both paths share one (time, seq)
// total order, so mixing them cannot perturb determinism.
package event

// Time is a simulated clock value in processor cycles.
type Time int64

// Func is an event body. It runs exactly once, at the time it was scheduled
// for, with the Queue's clock already advanced to that time.
type Func func()

// Action is a typed event body: a static function invoked with the argument
// it was scheduled with. Schedule pointer-shaped arguments (pointers, funcs)
// — they store into the payload pool without allocating, which is the point;
// pooled records let steady-state simulation schedule without any allocation.
type Action func(arg any)

// key is the ordering lane of one pending event: exactly the 16 bytes the
// heap compares. The payload lives in the side pool (see Queue.pays).
type key struct {
	at  Time
	seq uint64
}

// payload is the dispatch lane of one pending event. Exactly one of fn/act
// is set. Payloads never move while pending: the heap refers to them by slot
// index, so sifts touch only the key and slot lanes.
type payload struct {
	fn  Func
	act Action
	arg any
}

// Stats counts kernel activity for observability (reported per run through
// internal/stats and cmd/dsibench -benchjson).
type Stats struct {
	Executed  uint64 // events run
	Scheduled uint64 // events enqueued
	Typed     uint64 // events through AtCall/AfterCall (closure allocs avoided)
	PeakLen   int    // maximum pending events observed
}

// Queue is a discrete-event scheduler. The zero value is ready to use with
// the clock at time 0.
type Queue struct {
	now Time
	seq uint64

	// The heap, split structure-of-arrays: keys[i]/slots[i] describe one
	// pending event, ordered as a 4-ary min-heap over (at, seq); pays[slots[i]]
	// is its body. freeSlots recycles payload slots of executed events.
	keys      []key
	slots     []int32
	pays      []payload
	freeSlots []int32

	ran   uint64
	typed uint64
	peak  int
}

// Now returns the current simulated time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.keys) }

// Executed returns the total number of events that have run.
func (q *Queue) Executed() uint64 { return q.ran }

// LastSeq returns the insertion sequence of the most recently scheduled
// event. Two events are adjacent in the execution order if they share a time
// and were assigned consecutive sequences with none in between — the
// condition internal/netsim uses to chain same-(time, dst) deliveries onto
// one heap entry without reordering anything.
func (q *Queue) LastSeq() uint64 { return q.seq }

// NextAt returns the time of the earliest pending event. ok is false when
// the queue is empty.
//
//dsi:hotpath
func (q *Queue) NextAt() (t Time, ok bool) {
	if len(q.keys) == 0 {
		return 0, false
	}
	return q.keys[0].at, true
}

// Stats returns a snapshot of the kernel counters.
func (q *Queue) Stats() Stats {
	return Stats{Executed: q.ran, Scheduled: q.seq, Typed: q.typed, PeakLen: q.peak}
}

// Reset returns the queue to its zero state (clock 0, empty heap, counters
// cleared) while keeping every lane's capacity, so a pooled machine reused
// across experiments starts from a clean ordering state.
func (q *Queue) Reset() {
	clear(q.pays) // drop fn/arg references so recycled queues don't pin them
	q.keys = q.keys[:0]
	q.slots = q.slots[:0]
	q.pays = q.pays[:0]
	q.freeSlots = q.freeSlots[:0]
	q.now, q.seq, q.ran, q.typed, q.peak = 0, 0, 0, 0, 0
}

// next allocates the insertion sequence number for an event at time t,
// validating the schedule time. The sequence is the FIFO tiebreaker for
// same-time events; if it ever wrapped, ordering between runs would diverge
// silently, so wraparound is a hard stop.
func (q *Queue) next(t Time) uint64 {
	if t < q.now {
		panic("event: scheduled in the past")
	}
	q.seq++
	if q.seq == 0 {
		panic("event: sequence counter wrapped; Reset the queue between runs")
	}
	return q.seq
}

// alloc places a payload in the side pool and returns its slot.
//
//dsi:hotpath
func (q *Queue) alloc(fn Func, act Action, arg any) int32 {
	if n := len(q.freeSlots); n > 0 {
		s := q.freeSlots[n-1]
		q.freeSlots = q.freeSlots[:n-1]
		q.pays[s] = payload{fn: fn, act: act, arg: arg}
		return s
	}
	q.pays = append(q.pays, payload{fn: fn, act: act, arg: arg})
	return int32(len(q.pays) - 1)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a protocol timing bug, not a recoverable condition.
func (q *Queue) At(t Time, fn Func) {
	q.push(key{at: t, seq: q.next(t)}, q.alloc(fn, nil, nil))
}

// After schedules fn to run d cycles from now.
func (q *Queue) After(d Time, fn Func) {
	if d < 0 {
		panic("event: negative delay")
	}
	q.At(q.now+d, fn)
}

// AtCall schedules act(arg) at absolute time t. This is the allocation-free
// path: act is a static function and arg is typically a pooled record, so
// nothing escapes per event.
//
//dsi:hotpath
func (q *Queue) AtCall(t Time, act Action, arg any) {
	q.typed++
	q.push(key{at: t, seq: q.next(t)}, q.alloc(nil, act, arg))
}

// AfterCall schedules act(arg) d cycles from now (typed path).
//
//dsi:hotpath
func (q *Queue) AfterCall(d Time, act Action, arg any) {
	if d < 0 {
		panic("event: negative delay")
	}
	q.AtCall(q.now+d, act, arg)
}

// Step runs the single earliest pending event, advancing the clock to its
// time. It reports whether an event ran.
//
//dsi:hotpath
func (q *Queue) Step() bool {
	if len(q.keys) == 0 {
		return false
	}
	at, s := q.pop()
	q.now = at
	q.ran++
	// Copy the body and release the slot before dispatch: the event may
	// schedule (and the slot be reused) while it runs.
	p := q.pays[s]
	q.pays[s] = payload{}
	q.freeSlots = append(q.freeSlots, s)
	if p.fn != nil {
		p.fn()
	} else {
		p.act(p.arg)
	}
	return true
}

// Run executes events until the queue drains, returning the final time.
func (q *Queue) Run() Time {
	for q.Step() {
	}
	return q.now
}

// RunUntil executes events with time ≤ limit. Events scheduled beyond the
// limit remain queued. It reports whether the queue drained.
func (q *Queue) RunUntil(limit Time) bool {
	for len(q.keys) > 0 && q.keys[0].at <= limit {
		q.Step()
	}
	return len(q.keys) == 0
}

// RunSteps executes at most n events; it reports how many ran. Useful as a
// watchdog in tests that must terminate even if a protocol livelocks.
func (q *Queue) RunSteps(n uint64) uint64 {
	var i uint64
	for ; i < n; i++ {
		if !q.Step() {
			break
		}
	}
	return i
}

// --- 4-ary min-heap -----------------------------------------------------------
//
// A 4-ary layout halves the tree depth of the binary heap, trading slightly
// wider sift-down scans for fewer cache-missing levels — the classic d-ary
// tradeoff, and a consistent win for the simulator's push/pop-dominated
// access pattern. Ordering is the same (time, seq) total order the binary
// heap used; since it is total (seq is unique), heap shape cannot affect
// pop order and results stay bit-exact. The keys/slots lanes move together;
// payloads stay put.

// before reports whether a orders strictly before b.
func before(a, b key) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//dsi:hotpath
func (q *Queue) push(k key, s int32) {
	q.keys = append(q.keys, k)
	q.slots = append(q.slots, s)
	if len(q.keys) > q.peak {
		q.peak = len(q.keys)
	}
	// Sift up: move the hole toward the root until the parent orders first.
	ks, sl := q.keys, q.slots
	i := len(ks) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !before(k, ks[p]) {
			break
		}
		ks[i], sl[i] = ks[p], sl[p]
		i = p
	}
	ks[i], sl[i] = k, s
}

// pop removes the minimum, returning its time and payload slot.
//
//dsi:hotpath
func (q *Queue) pop() (Time, int32) {
	ks, sl := q.keys, q.slots
	at := ks[0].at
	s := sl[0]
	n := len(ks) - 1
	lastK, lastS := ks[n], sl[n]
	q.keys, q.slots = ks[:n], sl[:n]
	if n > 0 {
		q.siftDown(lastK, lastS)
	}
	return at, s
}

// siftDown re-inserts the (k, s) pair starting from the root of the shrunken
// heap.
//
//dsi:hotpath
func (q *Queue) siftDown(k key, s int32) {
	ks, sl := q.keys, q.slots
	n := len(ks)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Select the least of up to four children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if before(ks[j], ks[m]) {
				m = j
			}
		}
		if !before(ks[m], k) {
			break
		}
		ks[i], sl[i] = ks[m], sl[m]
		i = m
	}
	ks[i], sl[i] = k, s
}

// Server models a resource that serves one item at a time (a cache
// controller, a directory controller, a network interface). Admit returns
// the interval during which the resource processes a request admitted now:
// requests queue FIFO behind whatever the server is already committed to.
type Server struct {
	freeAt Time
	busy   Time // total occupied cycles, for utilization stats
}

// Admit reserves the server for dur cycles starting no earlier than now,
// returning the start and completion times of the reservation.
//
//dsi:hotpath
func (s *Server) Admit(now Time, dur Time) (start, done Time) {
	if dur < 0 {
		panic("event: negative occupancy")
	}
	start = now
	if s.freeAt > start {
		start = s.freeAt
	}
	done = start + dur
	s.freeAt = done
	s.busy += dur
	return start, done
}

// FreeAt returns the earliest time a new admission could start service.
func (s *Server) FreeAt() Time { return s.freeAt }

// Reset returns the server to idle at time 0, for machine reuse.
func (s *Server) Reset() { s.freeAt, s.busy = 0, 0 }

// Busy returns the cumulative cycles the server has been occupied.
func (s *Server) Busy() Time { return s.busy }
