// Package event provides the deterministic discrete-event kernel that drives
// the simulator. Events are ordered by (time, insertion sequence), so two
// runs that schedule the same events in the same order produce identical
// executions regardless of map iteration order or goroutine scheduling.
//
// The queue is a hand-specialized 4-ary min-heap over a flat item slice:
// no container/heap, no interface boxing, no per-event allocation. Callers
// on hot paths use the typed path (AtCall/AfterCall), which dispatches a
// static Action with a caller-pooled argument instead of a fresh closure;
// the closure path (At/After) remains for cold call sites. Both paths share
// one (time, seq) total order, so mixing them cannot perturb determinism.
package event

// Time is a simulated clock value in processor cycles.
type Time int64

// Func is an event body. It runs exactly once, at the time it was scheduled
// for, with the Queue's clock already advanced to that time.
type Func func()

// Action is a typed event body: a static function invoked with the argument
// it was scheduled with. Schedule pointer-shaped arguments (pointers, funcs)
// — they store into the item without allocating, which is the point; pooled
// records let steady-state simulation schedule without any allocation.
type Action func(arg any)

// item is one pending event. Exactly one of fn/act is set.
type item struct {
	at  Time
	seq uint64
	fn  Func
	act Action
	arg any
}

// Stats counts kernel activity for observability (reported per run through
// internal/stats and cmd/dsibench -benchjson).
type Stats struct {
	Executed  uint64 // events run
	Scheduled uint64 // events enqueued
	Typed     uint64 // events through AtCall/AfterCall (closure allocs avoided)
	PeakLen   int    // maximum pending events observed
}

// Queue is a discrete-event scheduler. The zero value is ready to use with
// the clock at time 0.
type Queue struct {
	now  Time
	seq  uint64
	heap []item

	ran   uint64
	typed uint64
	peak  int
}

// Now returns the current simulated time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Executed returns the total number of events that have run.
func (q *Queue) Executed() uint64 { return q.ran }

// Stats returns a snapshot of the kernel counters.
func (q *Queue) Stats() Stats {
	return Stats{Executed: q.ran, Scheduled: q.seq, Typed: q.typed, PeakLen: q.peak}
}

// Reset returns the queue to its zero state (clock 0, empty heap, counters
// cleared) while keeping the heap's capacity, so a pooled machine reused
// across experiments starts from a clean ordering state.
func (q *Queue) Reset() {
	clear(q.heap) // drop fn/arg references so recycled queues don't pin them
	q.heap = q.heap[:0]
	q.now, q.seq, q.ran, q.typed, q.peak = 0, 0, 0, 0, 0
}

// next allocates the insertion sequence number for an event at time t,
// validating the schedule time. The sequence is the FIFO tiebreaker for
// same-time events; if it ever wrapped, ordering between runs would diverge
// silently, so wraparound is a hard stop.
func (q *Queue) next(t Time) uint64 {
	if t < q.now {
		panic("event: scheduled in the past")
	}
	q.seq++
	if q.seq == 0 {
		panic("event: sequence counter wrapped; Reset the queue between runs")
	}
	return q.seq
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a protocol timing bug, not a recoverable condition.
func (q *Queue) At(t Time, fn Func) {
	q.push(item{at: t, seq: q.next(t), fn: fn})
}

// After schedules fn to run d cycles from now.
func (q *Queue) After(d Time, fn Func) {
	if d < 0 {
		panic("event: negative delay")
	}
	q.At(q.now+d, fn)
}

// AtCall schedules act(arg) at absolute time t. This is the allocation-free
// path: act is a static function and arg is typically a pooled record, so
// nothing escapes per event.
//
//dsi:hotpath
func (q *Queue) AtCall(t Time, act Action, arg any) {
	q.typed++
	q.push(item{at: t, seq: q.next(t), act: act, arg: arg})
}

// AfterCall schedules act(arg) d cycles from now (typed path).
//
//dsi:hotpath
func (q *Queue) AfterCall(d Time, act Action, arg any) {
	if d < 0 {
		panic("event: negative delay")
	}
	q.AtCall(q.now+d, act, arg)
}

// Step runs the single earliest pending event, advancing the clock to its
// time. It reports whether an event ran.
//
//dsi:hotpath
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	it := q.pop()
	q.now = it.at
	q.ran++
	if it.fn != nil {
		it.fn()
	} else {
		it.act(it.arg)
	}
	return true
}

// Run executes events until the queue drains, returning the final time.
func (q *Queue) Run() Time {
	for q.Step() {
	}
	return q.now
}

// RunUntil executes events with time ≤ limit. Events scheduled beyond the
// limit remain queued. It reports whether the queue drained.
func (q *Queue) RunUntil(limit Time) bool {
	for len(q.heap) > 0 && q.heap[0].at <= limit {
		q.Step()
	}
	return len(q.heap) == 0
}

// RunSteps executes at most n events; it reports how many ran. Useful as a
// watchdog in tests that must terminate even if a protocol livelocks.
func (q *Queue) RunSteps(n uint64) uint64 {
	var i uint64
	for ; i < n; i++ {
		if !q.Step() {
			break
		}
	}
	return i
}

// --- 4-ary min-heap -----------------------------------------------------------
//
// A 4-ary layout halves the tree depth of the binary heap, trading slightly
// wider sift-down scans for fewer cache-missing levels — the classic d-ary
// tradeoff, and a consistent win for the simulator's push/pop-dominated
// access pattern. Ordering is the same (time, seq) total order the binary
// heap used; since it is total (seq is unique), heap shape cannot affect
// pop order and results stay bit-exact.

// before reports whether a orders strictly before b.
func before(a, b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//dsi:hotpath
func (q *Queue) push(it item) {
	q.heap = append(q.heap, it)
	if len(q.heap) > q.peak {
		q.peak = len(q.heap)
	}
	// Sift up: move the hole toward the root until the parent orders first.
	h := q.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !before(&it, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = it
}

//dsi:hotpath
func (q *Queue) pop() item {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = item{} // release fn/arg references
	q.heap = h[:n]
	if n > 0 {
		q.siftDown(last)
	}
	return top
}

// siftDown re-inserts it starting from the root of the shrunken heap.
//
//dsi:hotpath
func (q *Queue) siftDown(it item) {
	h := q.heap
	n := len(h)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Select the least of up to four children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if before(&h[j], &h[m]) {
				m = j
			}
		}
		if !before(&h[m], &it) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = it
}

// Server models a resource that serves one item at a time (a cache
// controller, a directory controller, a network interface). Admit returns
// the interval during which the resource processes a request admitted now:
// requests queue FIFO behind whatever the server is already committed to.
type Server struct {
	freeAt Time
	busy   Time // total occupied cycles, for utilization stats
}

// Admit reserves the server for dur cycles starting no earlier than now,
// returning the start and completion times of the reservation.
//
//dsi:hotpath
func (s *Server) Admit(now Time, dur Time) (start, done Time) {
	if dur < 0 {
		panic("event: negative occupancy")
	}
	start = now
	if s.freeAt > start {
		start = s.freeAt
	}
	done = start + dur
	s.freeAt = done
	s.busy += dur
	return start, done
}

// FreeAt returns the earliest time a new admission could start service.
func (s *Server) FreeAt() Time { return s.freeAt }

// Reset returns the server to idle at time 0, for machine reuse.
func (s *Server) Reset() { s.freeAt, s.busy = 0, 0 }

// Busy returns the cumulative cycles the server has been occupied.
func (s *Server) Busy() Time { return s.busy }
