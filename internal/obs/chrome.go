package obs

import (
	"bufio"
	"fmt"
	"io"

	"dsisim/internal/cache"
	"dsisim/internal/directory"
	"dsisim/internal/faultinj"
	"dsisim/internal/netsim"
)

// WriteChrome exports the recorded stream as Chrome trace_event JSON (the
// "JSON Object Format" with a traceEvents array), loadable in
// chrome://tracing and Perfetto.
//
// Mapping (documented in docs/OBSERVABILITY.md):
//
//   - pid = node: each simulated node is one process, named "node N", so
//     Perfetto renders one lane group per node.
//   - tid 0 = the node's cache controller, tid 1 = its directory controller.
//   - MsgSend/MsgRecv become complete ("X") slices on the sending/receiving
//     controller's lane (requests and unsolicited traffic originate at the
//     cache; coherence actions and replies at the directory). The send
//     slice's duration is the NI injection occupancy.
//   - Each delivered message gets a flow arrow ("s" at the send slice, "f"
//     at the receive slice) so a transaction reads as a chain of arrows
//     across lanes. Send/receive pairs are matched FIFO per (src, dst),
//     which is exact because the simulated network is pairwise FIFO.
//   - TxnStart/TxnEnd become async ("b"/"e") spans on the home node, id'd
//     by transaction, so directory busy periods appear as duration bars.
//   - State transitions, self-invalidations, FIFO displacements, and
//     tear-off grants become instant ("i") events on the owning lane.
//
// Timestamps are simulated cycles written as microseconds (1 cycle = 1 us),
// which preserves relative scale; absolute wall units are meaningless in a
// cycle-accurate simulation. The output is deterministic for a
// deterministic run, which the golden-file test pins.
func (s *Sink) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	sep := ""
	put := func(format string, args ...any) {
		fmt.Fprintf(bw, "%s", sep)
		fmt.Fprintf(bw, format, args...)
		fmt.Fprintf(bw, "\n")
		sep = ","
	}
	if s != nil {
		for n := 0; n < s.nodes; n++ {
			put(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"node %d"}}`, n, n)
			put(`{"ph":"M","pid":%d,"tid":0,"name":"thread_name","args":{"name":"cache"}}`, n)
			put(`{"ph":"M","pid":%d,"tid":1,"name":"thread_name","args":{"name":"directory"}}`, n)
		}
		// FIFO send/recv matching per (src, dst) ordered pair: flow ids are
		// assigned at send time and popped at receive time.
		type pair struct{ src, dst int32 }
		pending := make(map[pair][]uint64)
		var flowSeq uint64
		s.ForEach(func(e *Event) {
			switch e.Kind {
			case MsgSend:
				tid := dirLane(sentByDir(e.Msg))
				dur := int64(netsim.InjectionTime(e.Msg))
				if e.Flags&FlagLocal != 0 {
					dur = 1
				}
				put(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%q,"args":{"blk":"%#x","txn":%d,"to":%d}}`,
					e.Node, tid, e.Cycle, dur, e.Msg.String(), uint64(e.Addr), e.Txn, e.Peer)
				flowSeq++
				p := pair{e.Node, e.Peer}
				pending[p] = append(pending[p], flowSeq)
				put(`{"ph":"s","pid":%d,"tid":%d,"ts":%d,"cat":"msg","id":%d,"name":%q}`,
					e.Node, tid, e.Cycle, flowSeq, e.Msg.String())
			case MsgRecv:
				tid := dirLane(!sentByDir(e.Msg))
				put(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":1,"name":%q,"args":{"blk":"%#x","txn":%d,"from":%d}}`,
					e.Node, tid, e.Cycle, e.Msg.String()+" recv", uint64(e.Addr), e.Txn, e.Peer)
				p := pair{e.Peer, e.Node}
				if q := pending[p]; len(q) > 0 {
					id := q[0]
					pending[p] = q[1:]
					put(`{"ph":"f","bp":"e","pid":%d,"tid":%d,"ts":%d,"cat":"msg","id":%d,"name":%q}`,
						e.Node, tid, e.Cycle, id, e.Msg.String())
				}
			case CacheState:
				put(`{"ph":"i","s":"t","pid":%d,"tid":0,"ts":%d,"name":%q,"args":{"blk":"%#x","txn":%d}}`,
					e.Node, e.Cycle,
					fmt.Sprintf("%s>%s", cache.State(e.Old), cache.State(e.New)),
					uint64(e.Addr), e.Txn)
			case DirState:
				put(`{"ph":"i","s":"t","pid":%d,"tid":1,"ts":%d,"name":%q,"args":{"blk":"%#x","txn":%d}}`,
					e.Node, e.Cycle,
					fmt.Sprintf("%s>%s", directory.State(e.Old), directory.State(e.New)),
					uint64(e.Addr), e.Txn)
			case SelfInval, FIFODisplace:
				put(`{"ph":"i","s":"t","pid":%d,"tid":0,"ts":%d,"name":%q,"args":{"blk":"%#x","was":%q}}`,
					e.Node, e.Cycle, e.Kind.String(), uint64(e.Addr), cache.State(e.Old).String())
			case TearOffGrant:
				put(`{"ph":"i","s":"t","pid":%d,"tid":1,"ts":%d,"name":"tear-off grant","args":{"blk":"%#x","to":%d,"txn":%d}}`,
					e.Node, e.Cycle, uint64(e.Addr), e.Peer, e.Txn)
			case TxnStart:
				put(`{"ph":"b","pid":%d,"tid":1,"ts":%d,"cat":"txn","id":%d,"name":%q,"args":{"blk":"%#x","from":%d}}`,
					e.Node, e.Cycle, e.Txn,
					fmt.Sprintf("txn %s %#x", e.Msg, uint64(e.Addr)), uint64(e.Addr), e.Peer)
			case TxnEnd:
				put(`{"ph":"e","pid":%d,"tid":1,"ts":%d,"cat":"txn","id":%d,"name":%q}`,
					e.Node, e.Cycle, e.Txn,
					fmt.Sprintf("txn end %#x", uint64(e.Addr)))
			case Fault:
				// Dropped messages never emit MsgSend, so flow matching is
				// undisturbed; the fault itself is an instant marker on the
				// sender's lane.
				put(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%d,"name":%q,"args":{"blk":"%#x","to":%d,"txn":%d}}`,
					e.Node, dirLane(sentByDir(e.Msg)), e.Cycle,
					fmt.Sprintf("fault %s %s", faultinj.Action(e.Old), e.Msg),
					uint64(e.Addr), e.Peer, e.Txn)
			case Timeout:
				put(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%d,"name":%q,"args":{"blk":"%#x","txn":%d,"retry":%d}}`,
					e.Node, int(e.New), e.Cycle, "retry timeout", uint64(e.Addr), e.Txn, e.Old)
			}
		})
	}
	fmt.Fprintf(bw, "]}\n")
	return bw.Flush()
}

// sentByDir reports whether messages of kind k originate at a directory
// controller (coherence actions and replies) rather than a cache controller
// (requests, acks, and unsolicited traffic).
func sentByDir(k netsim.Kind) bool {
	switch k {
	case netsim.Inv, netsim.Recall, netsim.DataS, netsim.DataX, netsim.AckX, netsim.FinalAck,
		netsim.Nack:
		return true
	case netsim.GetS, netsim.GetX, netsim.Upgrade, netsim.InvAck, netsim.InvAckData,
		netsim.RecallAck, netsim.WB, netsim.Repl, netsim.SInvNotify, netsim.SInvWB,
		netsim.NackHome:
		return false
	default:
		panic("obs: sentByDir: unknown message kind")
	}
}

// dirLane maps the "is this the directory's lane" bit to a tid.
func dirLane(dir bool) int {
	if dir {
		return 1
	}
	return 0
}
